#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== comtainer-vet (incremental) =="
# The repository's own 16-analyzer suite (digestcmp, digestflow,
# atomicwrite, lockio, lockorder, guardedby, atomicmix, safejoin,
# errpropagate, gonaked, ctxsleep, ctxflow, and the CFG-based
# lifecycle passes bodyclose, closeleak, timerstop, wgbalance).
# Diagnostics are printed as path:line:col: [analyzer] message — the
# [analyzer] tag names the invariant that failed; see DESIGN.md
# "Static analysis", "CFG & dataflow", and "Lockset & shared-state
# model".
#
# -cache replays unchanged packages from COMTAINER_VET_CACHE (CI
# persists the directory across runs via actions/cache). The first run
# populates; the second run must replay at least 90% of packages or
# the incremental keying has regressed.
#
# The vet binary is built once into a temp dir and reused for both the
# gating run and the warm stats run: `go run` would pay the toolchain's
# build-and-link step twice per check.
COMTAINER_VET_CACHE="${COMTAINER_VET_CACHE:-.vetcache}"
export COMTAINER_VET_CACHE
vetbin_dir=$(mktemp -d)
trap 'rm -rf "$vetbin_dir"' EXIT
go build -o "$vetbin_dir/comtainer-vet" ./cmd/comtainer-vet
if ! "$vetbin_dir/comtainer-vet" -cache ./...; then
    echo "comtainer-vet FAILED: an invariant above was violated." >&2
    echo "Fix the finding or, for a deliberate exception, add" >&2
    echo "  //comtainer:allow <analyzer> -- <reason>" >&2
    exit 1
fi
stats=$("$vetbin_dir/comtainer-vet" -cache ./... 2>&1 >/dev/null)
echo "$stats"
ratio=$(echo "$stats" | sed -n 's|^comtainer-vet: \([0-9][0-9]*\)/\([0-9][0-9]*\) packages cached$|\1 \2|p')
if [ -z "$ratio" ]; then
    echo "comtainer-vet printed no cache statistics line" >&2
    exit 1
fi
cached=${ratio% *}
total=${ratio#* }
if [ "$((10 * cached))" -lt "$((9 * total))" ]; then
    echo "comtainer-vet cache regressed: only $cached/$total packages replayed on a warm run (want >=90%)" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== chaos (-race, -short seed subset) =="
# Fast fault-injection smoke: crash-restart-verify cycles over a
# reduced seed subset (-short trims 100 seeds to 10 per suite), plus
# the resume/cancellation/breaker tests, the remote-execution farm
# chaos (worker killed mid-action, lossy result uploads) and the
# registry-fleet chaos (leader killed mid-push: every acknowledged
# write must survive follower promotion). CI's dedicated chaos job
# runs the full 100-seed sweep; this step catches regressions in
# seconds.
go test -race -short -count=1 \
    -run 'Chaos|CrashRestartVerify|SaveLayoutCrashConsistency|Resume|CancelAborts|Breaker|TieredDegrades' \
    ./internal/distrib ./internal/actioncache ./internal/oci ./internal/remoteexec ./internal/fleet

echo "== go test -race =="
go test -race ./...

if [ "${BENCH_GATE:-0}" = "1" ]; then
    echo "== bench gate (BENCH_GATE=1) =="
    # Opt-in performance gate: run the benchmark harness and fail on a
    # >10% regression against the latest committed BENCH_*.json
    # snapshot (warm-rebuild time, pull throughput, vet replay ratio).
    BENCH_GATE=1 scripts/bench.sh
fi

echo "All checks passed."
