#!/bin/sh
# Benchmark harness: runs the rebuild (action-cache) benchmark plus the
# paper's Table benchmarks with -benchmem and writes a timestamped JSON
# summary next to the raw output. Run from anywhere; operates on the
# repository root.
#
#   BENCH='BenchmarkRebuildColdVsWarm|BenchmarkTable2Workloads' scripts/bench.sh
#
# overrides the default benchmark selection; OUT_DIR overrides where the
# results land (default bench-results/).
#
# After writing the summary the script diffs it against the most recent
# committed BENCH_*.json snapshot in the repository root (via
# `comtainer-bench diff`), which gates warm-rebuild time, pull
# throughput and the vet replay ratio at 10%. The diff is informational
# by default; set BENCH_GATE=1 to make a regression fail the script.
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkRebuildColdVsWarm|BenchmarkTable1Systems|BenchmarkTable2Workloads|BenchmarkTable3ImageSizes|BenchmarkParallelPull|BenchmarkFleetPullThroughput|BenchmarkRemoteExecScaling}"
OUT_DIR="${OUT_DIR:-bench-results}"
STAMP=$(date -u +%Y%m%dT%H%M%SZ)
RAW="$OUT_DIR/bench-$STAMP.txt"
JSON="$OUT_DIR/bench-$STAMP.json"

mkdir -p "$OUT_DIR"

# comtainer-bench provides `time` (portable sub-second wall clock; date
# +%s.%N is a GNU extension) and `diff` (the snapshot gate).
BENCH_BIN="$OUT_DIR/comtainer-bench"
go build -o "$BENCH_BIN" ./cmd/comtainer-bench

echo "== go test -bench ($BENCH) =="
go test -run '^$' -bench "$BENCH" -benchmem -benchtime 1x . | tee "$RAW"

echo "== comtainer-vet cold vs warm =="
# Wall-clock the analyzer suite with an empty incremental cache, then
# again fully warm, so the JSON summary tracks the replay speedup
# alongside the paper benchmarks.
VET_BIN="$OUT_DIR/comtainer-vet-bench"
VET_CACHE=$(mktemp -d)
go build -o "$VET_BIN" ./cmd/comtainer-vet
VET_COLD=$("$BENCH_BIN" time "$VET_BIN" -cache -cache-dir "$VET_CACHE" ./...)
VET_WARM=$("$BENCH_BIN" time "$VET_BIN" -cache -cache-dir "$VET_CACHE" ./...)
rm -rf "$VET_CACHE" "$VET_BIN"
echo "vet cold: ${VET_COLD}s  warm: ${VET_WARM}s"

# Parse `BenchmarkName  N  value unit  value unit ...` lines into JSON:
# one object per benchmark with every reported metric keyed by its unit.
awk -v stamp="$STAMP" -v vet_cold="$VET_COLD" -v vet_warm="$VET_WARM" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2)
        entry = entry sprintf(", \"%s\": %s", $(i + 1), $i)
    entry = entry "}"
    lines[n++] = entry
}
END {
    printf "{\n  \"timestamp\": \"%s\",\n", stamp
    printf "  \"vet\": {\"cold_seconds\": %s, \"warm_seconds\": %s},\n", vet_cold, vet_warm
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "%s%s\n", lines[i], (i + 1 < n ? "," : "")
    print "  ]\n}"
}' "$RAW" > "$JSON"

echo "raw output:  $RAW"
echo "json summary: $JSON"

# Diff against the newest committed snapshot (BENCH_<stamp>.json sorts
# lexically by date). Informational unless BENCH_GATE=1.
SNAPSHOT=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
if [ -n "${SNAPSHOT:-}" ]; then
    echo "== snapshot diff vs $SNAPSHOT =="
    if ! "$BENCH_BIN" diff "$SNAPSHOT" "$JSON"; then
        if [ "${BENCH_GATE:-0}" = "1" ]; then
            echo "bench.sh: BENCH_GATE=1 and a gated metric regressed" >&2
            rm -f "$BENCH_BIN"
            exit 1
        fi
        echo "bench.sh: regression noted (set BENCH_GATE=1 to enforce)"
    fi
else
    echo "no committed BENCH_*.json snapshot; skipping diff"
fi
rm -f "$BENCH_BIN"
