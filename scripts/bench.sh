#!/bin/sh
# Benchmark harness: runs the rebuild (action-cache) benchmark plus the
# paper's Table benchmarks with -benchmem and writes a timestamped JSON
# summary next to the raw output. Run from anywhere; operates on the
# repository root.
#
#   BENCH='BenchmarkRebuildColdVsWarm|BenchmarkTable2Workloads' scripts/bench.sh
#
# overrides the default benchmark selection; OUT_DIR overrides where the
# results land (default bench-results/).
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkRebuildColdVsWarm|BenchmarkTable1Systems|BenchmarkTable2Workloads|BenchmarkTable3ImageSizes}"
OUT_DIR="${OUT_DIR:-bench-results}"
STAMP=$(date -u +%Y%m%dT%H%M%SZ)
RAW="$OUT_DIR/bench-$STAMP.txt"
JSON="$OUT_DIR/bench-$STAMP.json"

mkdir -p "$OUT_DIR"

echo "== go test -bench ($BENCH) =="
go test -run '^$' -bench "$BENCH" -benchmem -benchtime 1x . | tee "$RAW"

# Parse `BenchmarkName  N  value unit  value unit ...` lines into JSON:
# one object per benchmark with every reported metric keyed by its unit.
awk -v stamp="$STAMP" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2)
        entry = entry sprintf(", \"%s\": %s", $(i + 1), $i)
    entry = entry "}"
    lines[n++] = entry
}
END {
    printf "{\n  \"timestamp\": \"%s\",\n  \"benchmarks\": [\n", stamp
    for (i = 0; i < n; i++)
        printf "%s%s\n", lines[i], (i + 1 < n ? "," : "")
    print "  ]\n}"
}' "$RAW" > "$JSON"

echo "raw output:  $RAW"
echo "json summary: $JSON"
