#!/bin/sh
# Benchmark harness: runs the rebuild (action-cache) benchmark plus the
# paper's Table benchmarks with -benchmem and writes a timestamped JSON
# summary next to the raw output. Run from anywhere; operates on the
# repository root.
#
#   BENCH='BenchmarkRebuildColdVsWarm|BenchmarkTable2Workloads' scripts/bench.sh
#
# overrides the default benchmark selection; OUT_DIR overrides where the
# results land (default bench-results/).
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkRebuildColdVsWarm|BenchmarkTable1Systems|BenchmarkTable2Workloads|BenchmarkTable3ImageSizes}"
OUT_DIR="${OUT_DIR:-bench-results}"
STAMP=$(date -u +%Y%m%dT%H%M%SZ)
RAW="$OUT_DIR/bench-$STAMP.txt"
JSON="$OUT_DIR/bench-$STAMP.json"

mkdir -p "$OUT_DIR"

echo "== go test -bench ($BENCH) =="
go test -run '^$' -bench "$BENCH" -benchmem -benchtime 1x . | tee "$RAW"

echo "== comtainer-vet cold vs warm =="
# Wall-clock the analyzer suite with an empty incremental cache, then
# again fully warm, so the JSON summary tracks the replay speedup
# alongside the paper benchmarks.
VET_BIN="$OUT_DIR/comtainer-vet-bench"
VET_CACHE=$(mktemp -d)
go build -o "$VET_BIN" ./cmd/comtainer-vet
t0=$(date +%s.%N)
"$VET_BIN" -cache -cache-dir "$VET_CACHE" ./... >/dev/null
t1=$(date +%s.%N)
"$VET_BIN" -cache -cache-dir "$VET_CACHE" ./... >/dev/null
t2=$(date +%s.%N)
rm -rf "$VET_CACHE" "$VET_BIN"
VET_COLD=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
VET_WARM=$(awk -v a="$t1" -v b="$t2" 'BEGIN { printf "%.3f", b - a }')
echo "vet cold: ${VET_COLD}s  warm: ${VET_WARM}s"

# Parse `BenchmarkName  N  value unit  value unit ...` lines into JSON:
# one object per benchmark with every reported metric keyed by its unit.
awk -v stamp="$STAMP" -v vet_cold="$VET_COLD" -v vet_warm="$VET_WARM" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2)
        entry = entry sprintf(", \"%s\": %s", $(i + 1), $i)
    entry = entry "}"
    lines[n++] = entry
}
END {
    printf "{\n  \"timestamp\": \"%s\",\n", stamp
    printf "  \"vet\": {\"cold_seconds\": %s, \"warm_seconds\": %s},\n", vet_cold, vet_warm
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "%s%s\n", lines[i], (i + 1 < n ? "," : "")
    print "  ]\n}"
}' "$RAW" > "$JSON"

echo "raw output:  $RAW"
echo "json summary: $JSON"
