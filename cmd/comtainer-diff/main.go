// Command comtainer-diff compares two images in an OCI layout — typically
// a dist image against its redirected, system-optimized descendant — and
// reports what changed, file by file, annotated with the origin classes
// of the extended image's models when available.
//
// Usage:
//
//	comtainer-diff -layout ./lulesh.dist.oci -from lulesh.dist -to lulesh.dist.redirect
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"comtainer/internal/core/cache"
	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/toolchain"
)

func main() {
	layout := flag.String("layout", "", "OCI layout directory")
	from := flag.String("from", "", "baseline image tag")
	to := flag.String("to", "", "derived image tag")
	flag.Parse()
	if *layout == "" || *from == "" || *to == "" {
		fmt.Fprintln(os.Stderr, "usage: comtainer-diff -layout <dir.oci> -from <tag> -to <tag>")
		os.Exit(2)
	}
	if err := run(*layout, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-diff:", err)
		os.Exit(1)
	}
}

// describe summarizes a file's content for the diff listing.
func describe(f *fsim.File) string {
	if f.Type == fsim.TypeSymlink {
		return "-> " + f.Target
	}
	if toolchain.IsArtifact(f.Data) {
		art, err := toolchain.Decode(f.Data)
		if err == nil {
			s := fmt.Sprintf("%s (%s, %s, -O%s", art.Kind, art.Toolchain, art.March, art.OptLevel)
			if art.LTO {
				s += ", lto"
			}
			if art.PGOOptimized {
				s += ", pgo"
			}
			if art.Optimized {
				s += ", optimized"
			}
			return s + ")"
		}
	}
	return fmt.Sprintf("%d bytes", f.Size())
}

func run(layoutDir, fromTag, toTag string) error {
	repo, err := oci.LoadLayout(layoutDir)
	if err != nil {
		return err
	}
	fromImg, err := repo.LoadByTag(fromTag)
	if err != nil {
		return err
	}
	toImg, err := repo.LoadByTag(toTag)
	if err != nil {
		return err
	}
	fromFS, err := fromImg.Flatten()
	if err != nil {
		return err
	}
	toFS, err := toImg.Flatten()
	if err != nil {
		return err
	}

	// Origins from the extended image's models, when present.
	origins := map[string]model.FileOrigin{}
	for _, tag := range repo.Index.Tags() {
		img, err := repo.LoadByTag(tag)
		if err != nil {
			continue
		}
		if m, _, err := cache.Read(img); err == nil {
			for _, fe := range m.Image.Files {
				origins[fe.Path] = fe.Origin
			}
			break
		}
	}
	origin := func(p string) string {
		if o, ok := origins[p]; ok {
			return string(o)
		}
		return "-"
	}

	var added, removed, changed []string
	seen := map[string]bool{}
	for _, p := range toFS.Paths() {
		seen[p] = true
		tf, err := toFS.Stat(p)
		if err != nil || tf.Type == fsim.TypeDir {
			continue
		}
		ff, err := fromFS.Stat(p)
		switch {
		case err != nil:
			added = append(added, p)
		case string(ff.Data) != string(tf.Data) || ff.Target != tf.Target || ff.Type != tf.Type:
			changed = append(changed, p)
		}
	}
	for _, p := range fromFS.Paths() {
		if seen[p] {
			continue
		}
		if f, err := fromFS.Stat(p); err == nil && f.Type != fsim.TypeDir {
			removed = append(removed, p)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	sort.Strings(changed)

	fmt.Printf("diff %s -> %s: %d added, %d changed, %d removed\n\n",
		fromTag, toTag, len(added), len(changed), len(removed))
	for _, p := range added {
		//comtainer:allow errpropagate -- p comes from Paths() of the same FS; Stat cannot fail
		f, _ := toFS.Stat(p)
		fmt.Printf("A %-9s %-45s %s\n", origin(p), p, describe(f))
	}
	for _, p := range changed {
		//comtainer:allow errpropagate -- p comes from Paths() of the same FS; Stat cannot fail
		f, _ := toFS.Stat(p)
		fmt.Printf("M %-9s %-45s %s\n", origin(p), p, describe(f))
	}
	for _, p := range removed {
		//comtainer:allow errpropagate -- p comes from Paths() of the same FS; Stat cannot fail
		f, _ := fromFS.Stat(p)
		fmt.Printf("D %-9s %-45s %s\n", origin(p), p, describe(f))
	}
	return nil
}
