// Command comtainer-build performs the user side of the coMtainer
// workflow for one of the evaluation applications: the two-stage container
// build on coMtainer's Env/Base images with the hijacker recording, the
// front-end analysis, and the cache-layer injection. The resulting OCI
// layout directory holds the dist image and the extended image (+coM),
// ready to be shipped to an HPC system.
//
// Usage:
//
//	comtainer-build -app lulesh -isa x86-64 -o ./lulesh.dist.oci
//	comtainer-build -containerfile ./Containerfile -context ./src-dir \
//	                -name myapp -isa x86-64 -o ./myapp.dist.oci
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comtainer/internal/core"
	"comtainer/internal/core/cache"
	"comtainer/internal/fsim"
	"comtainer/internal/workloads"
)

func main() {
	appName := flag.String("app", "", "application to build (one of the Table-2 apps)")
	cfPath := flag.String("containerfile", "", "build a custom two-stage Containerfile instead of a named app")
	ctxDir := flag.String("context", "", "build-context directory for -containerfile")
	name := flag.String("name", "app", "image name for -containerfile builds")
	isa := flag.String("isa", "x86-64", "target ISA: x86-64 or aarch64")
	out := flag.String("o", "", "output OCI layout directory")
	conventional := flag.Bool("conventional", false, "build the generic image only (no coMtainer analysis)")
	obfuscate := flag.Bool("obfuscate", false, "obfuscate sources in the cache layer")
	ir := flag.Bool("ir", false, "distribute compiler IR instead of sources (locks package versions and ISA)")
	list := flag.Bool("list", false, "list available applications and exit")
	flag.Parse()

	if *list {
		var names []string
		for _, a := range workloads.Apps() {
			names = append(names, a.Name)
		}
		fmt.Println(strings.Join(names, " "))
		return
	}
	if (*appName == "" && *cfPath == "") || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: comtainer-build (-app <name> | -containerfile <file> -context <dir>) -isa <isa> -o <dir.oci>")
		os.Exit(2)
	}
	if err := run(*appName, *cfPath, *ctxDir, *name, *isa, *out, *conventional, *obfuscate, *ir); err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-build:", err)
		os.Exit(1)
	}
}

func run(appName, cfPath, ctxDir, name, isa, out string, conventional, obfuscate, ir bool) error {
	user, err := core.NewUserSide(canonISA(isa))
	if err != nil {
		return err
	}
	opts := cache.Options{Obfuscate: obfuscate}
	if ir {
		opts.Format = cache.FormatIR
	}
	var res core.BuildResult
	switch {
	case cfPath != "":
		cfText, err := os.ReadFile(cfPath)
		if err != nil {
			return err
		}
		ctx := fsim.New()
		if ctxDir != "" {
			ctx, err = fsim.ImportDir(ctxDir)
			if err != nil {
				return err
			}
		}
		res, err = user.BuildContainerfile(name, string(cfText), ctx, !conventional, opts)
		if err != nil {
			return err
		}
	default:
		app, err := workloads.Find(appName)
		if err != nil {
			return err
		}
		switch {
		case conventional:
			res, err = user.BuildOriginal(app)
		case ir:
			res, err = user.BuildExtendedIR(app)
		case obfuscate:
			res, err = user.BuildExtendedObfuscated(app)
		default:
			res, err = user.BuildExtended(app)
		}
		if err != nil {
			return err
		}
	}
	if err := user.Repo.SaveLayout(out); err != nil {
		return err
	}
	fmt.Printf("built %s -> %s\n", res.DistTag, out)
	if res.ExtendedTag != "" {
		fmt.Printf("extended image tagged %s (cache layer injected)\n", res.ExtendedTag)
	}
	return nil
}

func canonISA(isa string) string {
	switch isa {
	case "aarch64", "arm64", "arm":
		return "aarch64"
	default:
		return "x86-64"
	}
}
