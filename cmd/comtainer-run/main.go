// Command comtainer-run executes a container image from an OCI layout on
// a simulated HPC system (the ch-run step of the evaluation) and prints
// the modeled execution time and the factors behind it.
//
// Usage:
//
//	comtainer-run -layout ./lulesh.dist.oci -tag lulesh.dist.redirect \
//	              -workload lulesh -system x86-64 -nodes 16
package main

import (
	"flag"
	"fmt"
	"os"

	"comtainer/internal/chrun"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/workloads"
)

func main() {
	layout := flag.String("layout", "", "OCI layout directory")
	tag := flag.String("tag", "", "image tag to run")
	workload := flag.String("workload", "", "workload id (e.g. lulesh, lammps.lj)")
	sysName := flag.String("system", "x86-64", "system to run on")
	nodes := flag.Int("nodes", 16, "number of nodes")
	export := flag.String("export", "", "also unpack the flattened image root into this host directory")
	flag.Parse()
	if *layout == "" || *tag == "" || *workload == "" {
		fmt.Fprintln(os.Stderr, "usage: comtainer-run -layout <dir.oci> -tag <tag> -workload <id> [-system s] [-nodes n] [-export dir]")
		os.Exit(2)
	}
	if err := run(*layout, *tag, *workload, *sysName, *nodes, *export); err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-run:", err)
		os.Exit(1)
	}
}

func run(layoutDir, tag, workloadID, sysName string, nodes int, export string) error {
	repo, err := oci.LoadLayout(layoutDir)
	if err != nil {
		return err
	}
	sys, err := sysprofile.ByName(sysName)
	if err != nil {
		return err
	}
	var ref workloads.Ref
	found := false
	for _, r := range workloads.AllRefs() {
		if r.ID() == workloadID {
			ref, found = r, true
		}
	}
	if !found {
		return fmt.Errorf("unknown workload %q", workloadID)
	}
	img, err := repo.LoadByTag(tag)
	if err != nil {
		return err
	}
	if export != "" {
		flat, err := img.Flatten()
		if err != nil {
			return err
		}
		if err := flat.ExportDir(export); err != nil {
			return err
		}
		fmt.Printf("exported flattened root of %s to %s\n", tag, export)
	}
	res, err := chrun.RunImage(sys, ref, img, nodes)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s, %d node(s): %.2f s (compute %.2f s, communication %.2f s)\n",
		workloadID, sys.Name, nodes, res.Seconds, res.CompSeconds, res.CommSeconds)
	fmt.Printf("binary: toolchain=%s march=%s O%s lto=%v pgo=%v\n",
		res.Binary.Toolchain, res.Binary.March, res.Binary.OptLevel, res.Binary.LTO, res.Binary.PGOOptimized)
	fmt.Printf("factors: lib=%.2f (%.0f%% of key libs optimized) cc=%.2f libc=%.2f lto=%.2f pgo=%.2f net=%v\n",
		res.LibFactor, res.LibFraction*100, res.CCFactor, res.LibcFactor, res.LTOFactor, res.PGOFactor, res.NetPath)
	return nil
}
