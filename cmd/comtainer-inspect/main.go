// Command comtainer-inspect dumps the contents of an OCI layout: its
// tags and manifests, and — for coMtainer extended images — the embedded
// process models: image-model origin statistics, the build graph, and the
// recorded compilation commands.
//
// Usage:
//
//	comtainer-inspect -layout ./lulesh.dist.oci
//	comtainer-inspect -layout ./lulesh.dist.oci -tag lulesh.dist+coM -graph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comtainer/internal/core/cache"

	"comtainer/internal/oci"
)

func main() {
	layout := flag.String("layout", "", "OCI layout directory")
	tag := flag.String("tag", "", "inspect one tag in depth (default: list all)")
	graph := flag.Bool("graph", false, "print the full build graph of an extended image")
	flag.Parse()
	if *layout == "" {
		fmt.Fprintln(os.Stderr, "usage: comtainer-inspect -layout <dir.oci> [-tag t] [-graph]")
		os.Exit(2)
	}
	if err := run(*layout, *tag, *graph); err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-inspect:", err)
		os.Exit(1)
	}
}

func run(layoutDir, tag string, showGraph bool) error {
	repo, err := oci.LoadLayout(layoutDir)
	if err != nil {
		return err
	}
	if tag == "" {
		fmt.Printf("%-36s %-14s %s\n", "tag", "digest", "layers")
		for _, t := range repo.Index.Tags() {
			img, err := repo.LoadByTag(t)
			if err != nil {
				return err
			}
			roles := make([]string, 0, len(img.Manifest.Layers))
			for _, l := range img.Manifest.Layers {
				if r, ok := l.Annotations[oci.AnnotationLayerRole]; ok {
					roles = append(roles, r)
				} else {
					roles = append(roles, "rootfs")
				}
			}
			fmt.Printf("%-36s %-14s %s\n", t, img.Desc.Digest.Short(), strings.Join(roles, ","))
		}
		return nil
	}

	img, err := repo.LoadByTag(tag)
	if err != nil {
		return err
	}
	fmt.Printf("tag:          %s\n", tag)
	fmt.Printf("digest:       %s\n", img.Desc.Digest)
	fmt.Printf("architecture: %s\n", img.Config.Architecture)
	fmt.Printf("entrypoint:   %v\n", img.Config.Config.Entrypoint)
	fmt.Printf("layers:       %d\n", len(img.Manifest.Layers))
	m, _, err := cache.Read(img)
	if err != nil {
		fmt.Println("(no coMtainer cache layer)")
		return nil
	}
	fmt.Printf("build ISA:    %s\n", m.BuildISA)
	fmt.Println("image model origins:")
	for origin, n := range m.Image.CountByOrigin() {
		fmt.Printf("  %-8s %d files\n", origin, n)
	}
	fmt.Printf("packages:     %d\n", len(m.Image.Packages))
	fmt.Printf("build graph:  %d nodes (%d sources, %d products)\n",
		m.Graph.Len(), len(m.Graph.Sources()), len(m.Graph.Products()))
	fmt.Printf("installed products: %d\n", len(m.Installed))
	if showGraph {
		order, err := m.Graph.Topo()
		if err != nil {
			return err
		}
		for _, n := range order {
			if n.Cmd == nil {
				fmt.Printf("  [%3d] %-13s %s\n", n.ID, n.Kind, n.Path)
				continue
			}
			fmt.Printf("  [%3d] %-13s %s\n        <- %s\n",
				n.ID, n.Kind, n.Path, strings.Join(n.Cmd.Argv, " "))
		}
	}
	return nil
}
