// Command comtainer-registry serves a minimal OCI distribution registry —
// the repository hop between the user side and the HPC systems.
//
// Usage:
//
//	comtainer-registry -addr 127.0.0.1:5000
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"comtainer/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5000", "listen address")
	flag.Parse()
	srv := registry.NewServer()
	fmt.Printf("comtainer-registry listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
