// Command comtainer-registry serves an OCI distribution registry — the
// repository hop between the user side and the HPC systems.
//
// By default images live in memory and vanish with the process. With
// -data the registry persists blobs (sharded content-addressed files),
// tags and in-progress upload spools under the given directory, so a
// restarted registry serves everything previously pushed.
//
// Usage:
//
//	comtainer-registry -addr 127.0.0.1:5000 [-data /var/lib/comtainer-registry] [-gc] [-fsck] [-upload-ttl 1h]
//
// -gc runs reference-counting garbage collection on startup, deleting
// every blob unreachable from the tagged manifests.
//
// -fsck (requires -data) runs a full consistency repair on startup:
// every blob is rehashed against its name, corrupt or misplaced files
// are quarantined, orphaned upload temps are removed and tags pointing
// at missing manifests are swept, with a report printed before
// serving. A lighter version of the same recovery (temp sweep, corrupt
// quarantine, dangling-ref sweep) runs on every -data open regardless.
//
// -upload-ttl expires upload sessions idle longer than the given
// duration, reclaiming their spool files (0 disables expiry).
//
// -exec additionally mounts the remote-execution farm scheduler under
// /farm/v1 on the same listener, turning the registry into the farm's
// combined control plane and blob plane: comtainer-worker nodes
// register here and comtainer-rebuild -remote-exec submits here.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"comtainer/internal/registry"
	"comtainer/internal/remoteexec"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5000", "listen address")
	data := flag.String("data", "", "persist blobs and tags under this directory (default: in memory)")
	gc := flag.Bool("gc", false, "garbage-collect unreachable blobs on startup")
	fsck := flag.Bool("fsck", false, "verify and repair the blob store on startup (requires -data)")
	uploadTTL := flag.Duration("upload-ttl", time.Hour, "expire upload sessions idle longer than this (0 = never)")
	execFarm := flag.Bool("exec", false, "also serve the remote-execution farm scheduler under /farm/v1")
	flag.Parse()

	var srv *registry.Server
	if *data != "" {
		var err error
		srv, err = registry.NewServerAt(*data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("comtainer-registry persisting under %s (%d blobs)\n", *data, len(srv.Blobs().Digests()))
	} else {
		srv = registry.NewServer()
		fmt.Println("comtainer-registry running in memory (use -data to persist)")
	}
	srv.SetUploadTTL(*uploadTTL)
	if *fsck {
		rep, swept, err := srv.Fsck(true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
		for _, ref := range swept {
			fmt.Printf("fsck: swept dangling ref %s\n", ref)
		}
	}
	if *gc {
		dropped, err := srv.GC()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gc: dropped %d unreachable blobs\n", dropped)
	}
	handler := srv.Handler()
	if *execFarm {
		mux := http.NewServeMux()
		mux.Handle(remoteexec.APIPrefix+"/", remoteexec.NewScheduler().Handler())
		mux.Handle("/", handler)
		handler = mux
		fmt.Printf("comtainer-registry serving the farm scheduler under %s\n", remoteexec.APIPrefix)
	}
	fmt.Printf("comtainer-registry listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
