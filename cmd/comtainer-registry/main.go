// Command comtainer-registry serves an OCI distribution registry — the
// repository hop between the user side and the HPC systems.
//
// By default images live in memory and vanish with the process. With
// -data the registry persists blobs (sharded content-addressed files),
// tags and in-progress upload spools under the given directory, so a
// restarted registry serves everything previously pushed.
//
// Usage:
//
//	comtainer-registry -addr 127.0.0.1:5000 [-data /var/lib/comtainer-registry] [-gc] [-fsck] [-upload-ttl 1h]
//
// -gc runs reference-counting garbage collection on startup, deleting
// every blob unreachable from the tagged manifests.
//
// -fsck (requires -data) runs a full consistency repair on startup:
// every blob is rehashed against its name, corrupt or misplaced files
// are quarantined, orphaned upload temps are removed and tags pointing
// at missing manifests are swept, with a report printed before
// serving. A lighter version of the same recovery (temp sweep, corrupt
// quarantine, dangling-ref sweep) runs on every -data open regardless.
//
// -upload-ttl expires upload sessions idle longer than the given
// duration, reclaiming their spool files (0 disables expiry).
//
// -exec additionally mounts the remote-execution farm scheduler under
// /farm/v1 on the same listener, turning the registry into the farm's
// combined control plane and blob plane: comtainer-worker nodes
// register here and comtainer-rebuild -remote-exec submits here.
//
// # Fleet mode
//
// The registry also scales out into a sharded, replicated fleet.
//
// A storage shard replica adds -fleet-member (skip local referential
// checks — the fronting proxy performs them fleet-wide) and, on the
// replica currently leading, -follower for each peer replica:
//
//	comtainer-registry -addr :5001 -data /srv/shard-a1 -fleet-member -follower http://host2:5001
//
// Every commit is appended to a durable write log (replication.log
// under -data) and pushed to each follower before the client's push is
// acknowledged, so killing a leader loses no acknowledged write.
//
// The stateless front-end runs with -proxy and one -shard flag per
// shard group (comma-separated replica URLs, first is the initial
// leader):
//
//	comtainer-registry -addr :5000 -proxy \
//	    -shard http://host1:5001,http://host2:5001 \
//	    -shard http://host3:5001,http://host4:5001 \
//	    [-proxy-cache /var/cache/comtainer -proxy-cache-cap 1073741824] \
//	    [-redirect-reads] [-farm http://scheduler:6000] [-heartbeat 5s]
//
// The proxy speaks the same /v2 API: it routes blob traffic to the
// owning shard by consistent hashing, fans manifests and tags out to
// every shard, pull-through caches blobs in a bounded local store,
// promotes a follower when a leader stops answering (per-request and
// via -heartbeat pings), publishes its routing table at
// /fleet/v1/table for fleet-aware clients, and with -farm forwards
// /farm/v1 to a scheduler so farm workers need only the proxy URL.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"comtainer/internal/distrib"
	"comtainer/internal/fleet"
	"comtainer/internal/registry"
	"comtainer/internal/remoteexec"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:5000", "listen address")
	data := flag.String("data", "", "persist blobs and tags under this directory (default: in memory)")
	gc := flag.Bool("gc", false, "garbage-collect unreachable blobs on startup")
	fsck := flag.Bool("fsck", false, "verify and repair the blob store on startup (requires -data)")
	uploadTTL := flag.Duration("upload-ttl", time.Hour, "expire upload sessions idle longer than this (0 = never)")
	execFarm := flag.Bool("exec", false, "also serve the remote-execution farm scheduler under /farm/v1")
	fleetMember := flag.Bool("fleet-member", false, "run as a fleet shard replica: trust manifest references (the proxy checks them fleet-wide)")
	var followers multiFlag
	flag.Var(&followers, "follower", "replicate every commit to this peer replica URL before acknowledging (repeatable)")
	proxyMode := flag.Bool("proxy", false, "run as the fleet front-end proxy instead of a storage registry")
	var shards multiFlag
	flag.Var(&shards, "shard", "proxy: one shard group as comma-separated replica URLs, first is the initial leader (repeatable)")
	proxyCache := flag.String("proxy-cache", "", "proxy: pull-through cache directory (default: no cache)")
	proxyCacheCap := flag.Int64("proxy-cache-cap", 1<<30, "proxy: pull-through cache capacity in bytes (0 = unbounded)")
	redirectReads := flag.Bool("redirect-reads", false, "proxy: answer uncached blob GETs with a redirect to the owning shard")
	farm := flag.String("farm", "", "proxy: forward /farm/v1 to this scheduler URL")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "proxy: leader heartbeat interval (0 = promote only on request failure)")
	flag.Parse()

	if *proxyMode {
		runProxy(*addr, shards, *proxyCache, *proxyCacheCap, *redirectReads, *farm, *heartbeat)
		return
	}

	var srv *registry.Server
	if *data != "" {
		var err error
		srv, err = registry.NewServerAt(*data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("comtainer-registry persisting under %s (%d blobs)\n", *data, len(srv.Blobs().Digests()))
	} else {
		srv = registry.NewServer()
		fmt.Println("comtainer-registry running in memory (use -data to persist)")
	}
	srv.SetUploadTTL(*uploadTTL)
	if *fleetMember {
		srv.TrustReferences = true
		fmt.Println("comtainer-registry running as a fleet shard replica")
	}
	if len(followers) > 0 {
		logPath := ""
		if *data != "" {
			logPath = filepath.Join(*data, "replication.log")
		}
		//comtainer:allow closeleak -- ownership transfers to the replicator; the log lives for the process lifetime
		wlog, err := fleet.NewWriteLog(logPath)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetCommitHook(fleet.NewReplicator(srv.Blobs(), wlog, followers...))
		fmt.Printf("comtainer-registry replicating commits to %s\n", strings.Join(followers, ", "))
	}
	if *fsck {
		rep, swept, err := srv.Fsck(true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
		for _, ref := range swept {
			fmt.Printf("fsck: swept dangling ref %s\n", ref)
		}
	}
	if *gc {
		dropped, err := srv.GC()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gc: dropped %d unreachable blobs\n", dropped)
	}
	handler := srv.Handler()
	if *execFarm {
		mux := http.NewServeMux()
		mux.Handle(remoteexec.APIPrefix+"/", remoteexec.NewScheduler().Handler())
		mux.Handle("/", handler)
		handler = mux
		fmt.Printf("comtainer-registry serving the farm scheduler under %s\n", remoteexec.APIPrefix)
	}
	fmt.Printf("comtainer-registry listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}

// runProxy assembles and serves the fleet front-end.
func runProxy(addr string, shards []string, cacheDir string, cacheCap int64, redirectReads bool, farm string, heartbeat time.Duration) {
	if len(shards) == 0 {
		log.Fatal("comtainer-registry: -proxy requires at least one -shard")
	}
	groups := make([]*fleet.ShardGroup, 0, len(shards))
	for _, s := range shards {
		replicas := strings.Split(s, ",")
		for i := range replicas {
			replicas[i] = strings.TrimRight(strings.TrimSpace(replicas[i]), "/")
		}
		g, err := fleet.NewShardGroup(replicas[0], replicas...)
		if err != nil {
			log.Fatal(err)
		}
		groups = append(groups, g)
	}
	p, err := fleet.NewProxy(groups, 0)
	if err != nil {
		log.Fatal(err)
	}
	p.RedirectReads = redirectReads
	p.FarmBackend = farm
	if cacheDir != "" {
		store, err := distrib.NewDiskStore(cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.SetCache(store, cacheCap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("comtainer-registry proxy caching blobs under %s (cap %d bytes)\n", cacheDir, cacheCap)
	}
	if heartbeat > 0 {
		//comtainer:allow gonaked,ctxflow -- process-lifetime heartbeat loop; it ends when the process does
		go p.Watch(context.Background(), heartbeat)
	}
	if farm != "" {
		fmt.Printf("comtainer-registry proxy forwarding /farm/v1 to %s\n", farm)
	}
	fmt.Printf("comtainer-registry proxy fronting %d shard group(s), listening on %s\n", len(groups), addr)
	log.Fatal(http.ListenAndServe(addr, p.Handler()))
}
