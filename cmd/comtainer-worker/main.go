// Command comtainer-worker is a build-farm execution node: it
// registers with a comtainer-registry running the farm scheduler
// (-exec), leases rebuild actions matching its system's ISA and
// toolchain fingerprint, executes them against the executor's shipped
// file-system snapshot, and publishes the results — warming the
// registry's shared action cache with every execution.
//
// Usage:
//
//	comtainer-worker -scheduler http://127.0.0.1:5000 -system x86-64 -toolchain sysenv -slots 4
//
// The scheduler URL also serves the blob traffic (snapshots, overlays,
// payloads) and the shared action cache; point it at a registry
// started with -exec. -toolchain selects which registry the worker
// executes under: sysenv (the system's vendor toolchain), generic
// (stock base-image toolchain) or llvm (redistributable Sysenv).
// Workers only receive tasks whose toolchain fingerprint matches, so
// running the wrong flavor is safe — just useless.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"comtainer/internal/actioncache"
	"comtainer/internal/remoteexec"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

func main() {
	scheduler := flag.String("scheduler", "http://127.0.0.1:5000", "farm scheduler base URL (a comtainer-registry with -exec)")
	sysName := flag.String("system", "x86-64", "system profile to execute as: x86-64 or aarch64")
	tcFlavor := flag.String("toolchain", "sysenv", "toolchain registry to execute under: sysenv, generic or llvm")
	slots := flag.Int("slots", 4, "concurrent execution slots")
	name := flag.String("name", "", "worker name in farm status (default: system name)")
	noCache := flag.Bool("no-action-cache", false, "do not write results through to the registry's shared action cache")
	execDelay := flag.Duration("exec-delay", 0, "artificial per-action delay (testing/benchmarking)")
	flag.Parse()

	if err := run(*scheduler, *sysName, *tcFlavor, *name, *slots, *noCache, *execDelay); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "comtainer-worker:", err)
		os.Exit(1)
	}
}

func registryFor(sys *sysprofile.System, flavor string) (*toolchain.Registry, error) {
	switch flavor {
	case "sysenv":
		return sys.Toolchains, nil
	case "generic":
		return sys.GenericToolchains, nil
	case "llvm":
		return sys.LLVMRegistry(), nil
	default:
		return nil, fmt.Errorf("unknown toolchain flavor %q (have sysenv, generic, llvm)", flavor)
	}
}

func run(scheduler, sysName, tcFlavor, name string, slots int, noCache bool, execDelay time.Duration) error {
	sys, err := sysprofile.ByName(sysName)
	if err != nil {
		return err
	}
	reg, err := registryFor(sys, tcFlavor)
	if err != nil {
		return err
	}
	w := remoteexec.NewWorker(scheduler, sys, reg)
	w.Slots = slots
	w.ExecDelay = execDelay
	if name != "" {
		w.Name = name
	}
	if !noCache {
		w.Cache = actioncache.NewBreaker(actioncache.NewRemoteCacheClient(w.Client, ""))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("comtainer-worker %q serving %s/%s with %d slots at %s\n",
		w.Name, sys.Name, tcFlavor, slots, scheduler)
	return w.Run(ctx)
}
