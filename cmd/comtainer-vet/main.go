// Command comtainer-vet runs coMtainer's custom static-analysis suite
// — the multichecker over internal/analysis/passes — enforcing the
// repository's concurrency, digest, and filesystem invariants:
//
//	digestcmp     typed digest construction and comparison
//	atomicwrite   temp+rename writes under store roots
//	lockio        no file/network I/O while a shard mutex is held
//	safejoin      sanitized joins for tar entry names and fsim paths
//	errpropagate  no discarded errors from the storage packages
//	gonaked       no fire-and-forget goroutines
//
// Usage:
//
//	go run ./cmd/comtainer-vet ./...
//	go run ./cmd/comtainer-vet -only lockio,safejoin ./internal/distrib
//
// Exit status is non-zero when any diagnostic survives the
// //comtainer:allow suppression filter. The loader is self-contained
// (stdlib + the go command); it is not a `go vet -vettool` unitchecker
// because this module deliberately carries no golang.org/x/tools
// dependency.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/passes"
)

func main() {
	var (
		list = flag.Bool("list", false, "list analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		dir  = flag.String("C", ".", "directory to resolve package patterns in")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: comtainer-vet [-list] [-only a,b] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := passes.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		suite = suite.ByName(strings.Split(*only, ",")...)
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "comtainer-vet: no analyzers match -only=%s (have %s)\n",
				*only, strings.Join(passes.All().Names(), ", "))
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Check(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "comtainer-vet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
