// Command comtainer-vet runs coMtainer's custom static-analysis suite
// — the multichecker over internal/analysis/passes — enforcing the
// repository's concurrency, digest, and filesystem invariants:
//
//	digestcmp     typed digest construction and comparison
//	digestflow    compared digests trace to sanctioned constructors
//	atomicwrite   temp+rename writes under store roots
//	lockio        no file/network I/O while a shard mutex is held
//	lockorder     no cycles in the global lock-acquisition order
//	guardedby     a field's inferred guard lock is held on every access (lockset)
//	atomicmix     no mixing of sync/atomic and plain access to one field
//	safejoin      sanitized joins for tar entry names and fsim paths
//	errpropagate  no discarded errors from the storage packages
//	gonaked       no fire-and-forget goroutines
//	ctxsleep      no raw time.Sleep in retry loops
//	ctxflow       received contexts are plumbed, not discarded
//	bodyclose     *http.Response bodies closed on every path (CFG)
//	closeleak     acquired io.Closers closed or handed off on every path (CFG)
//	timerstop     time.Timer/Ticker stopped on every path (CFG)
//	wgbalance     WaitGroup.Add answered by a Done provider on every path (CFG)
//
// Usage:
//
//	go run ./cmd/comtainer-vet ./...
//	go run ./cmd/comtainer-vet -only lockio,safejoin ./internal/distrib
//	go run ./cmd/comtainer-vet -cache -json ./...
//	go run ./cmd/comtainer-vet -cache -stats ./...
//	go run ./cmd/comtainer-vet -sarif ./... > vet.sarif
//
// With -cache, per-package results and facts are keyed by analyzer
// versions, toolchain, source bytes, and dependency keys, and replayed
// from $COMTAINER_VET_CACHE (or the user cache dir) on later runs; a
// warm run re-analyzes only what changed. Exit status is non-zero when
// any diagnostic survives the //comtainer:allow suppression filter.
// The loader is self-contained (stdlib + the go command); it is not a
// `go vet -vettool` unitchecker because this module deliberately
// carries no golang.org/x/tools dependency.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/passes"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list analyzers and exit")
		only       = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		dir        = flag.String("C", ".", "directory to resolve package patterns in")
		useCache   = flag.Bool("cache", false, "replay unchanged packages from the incremental cache")
		cacheDir   = flag.String("cache-dir", "", "cache location (default: $COMTAINER_VET_CACHE or the user cache dir)")
		jsonOut    = flag.Bool("json", false, "emit findings as JSON (including suppressed ones, flagged)")
		sarifOut   = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for GitHub code scanning upload)")
		stats      = flag.Bool("stats", false, "print per-analyzer wall time and cache replay counts to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: comtainer-vet [-list] [-only a,b] [-C dir] [-cache] [-cache-dir dir] [-json] [-sarif] [-stats] [-cpuprofile out] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := passes.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		suite = suite.ByName(strings.Split(*only, ",")...)
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "comtainer-vet: no analyzers match -only=%s (have %s)\n",
				*only, strings.Join(passes.All().Names(), ", "))
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "comtainer-vet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	os.Exit(run(suite, *dir, flag.Args(), *useCache, *cacheDir, *jsonOut, *sarifOut, *stats))
}

// run executes the suite and returns the process exit code (0 clean,
// 1 findings, 2 operational error). It is separate from main so the
// pprof defers above fire before exit.
func run(suite analysis.Suite, dir string, patterns []string, useCache bool, cacheDir string, jsonOut, sarifOut, stats bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := analysis.Resolve(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
		return 2
	}

	opts := &analysis.Options{}
	if useCache {
		if cacheDir == "" {
			cacheDir = analysis.DefaultCacheDir()
		}
		cache, err := analysis.OpenCache(cacheDir)
		if err != nil {
			// A broken cache directory degrades to a cold run.
			fmt.Fprintf(os.Stderr, "comtainer-vet: %v (running uncached)\n", err)
		} else {
			opts.Cache = cache
		}
	}

	res, err := analysis.Run(targets, suite, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
		return 2
	}
	if opts.Cache != nil {
		fmt.Fprintf(os.Stderr, "comtainer-vet: %d/%d packages cached\n", res.Cached, res.Total)
	}
	if stats {
		printStats(res)
	}

	findings := res.Findings()
	switch {
	case jsonOut:
		out, err := analysis.EncodeFindings(analysis.FindingsOf(res.Diags))
		if err != nil {
			fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
			return 2
		}
		os.Stdout.Write(out)
	case sarifOut:
		root, err := filepath.Abs(dir)
		if err != nil {
			root = dir
		}
		out, err := analysis.EncodeSARIF(analysis.FindingsOf(res.Diags), suite, root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comtainer-vet: %v\n", err)
			return 2
		}
		os.Stdout.Write(out)
	default:
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "comtainer-vet: %d diagnostic(s)\n", len(findings))
		return 1
	}
	return 0
}

// printStats writes the per-analyzer cost table to stderr: wall time
// in Run over fresh packages, Finish time, and how many packages each
// analyzer actually saw (replayed packages cost nothing and appear in
// the cached count above instead).
func printStats(res *analysis.Result) {
	fresh := res.Total - res.Cached
	fmt.Fprintf(os.Stderr, "comtainer-vet: stats: %d fresh, %d replayed of %d packages\n",
		fresh, res.Cached, res.Total)
	fmt.Fprintf(os.Stderr, "  %-14s %10s %10s %6s\n", "analyzer", "run", "finish", "pkgs")
	var totalRun, totalFinish time.Duration
	for _, st := range res.Stats {
		fmt.Fprintf(os.Stderr, "  %-14s %10s %10s %6d\n",
			st.Name, st.RunTime.Round(time.Microsecond), st.FinishTime.Round(time.Microsecond), st.Packages)
		totalRun += st.RunTime
		totalFinish += st.FinishTime
	}
	fmt.Fprintf(os.Stderr, "  %-14s %10s %10s\n", "total",
		totalRun.Round(time.Microsecond), totalFinish.Round(time.Microsecond))
}
