// Command comtainer-rebuild performs the system-side rebuild step on an
// extended image stored in an OCI layout directory: system adapters
// transform the cached process models and the build graph re-executes
// under the target system's toolchain, appending a rebuild layer (+coMre).
//
// Usage:
//
//	comtainer-rebuild -layout ./lulesh.dist.oci -system x86-64 -adapters libo,cxxo,lto \
//	                  -action-cache ~/.cache/comtainer-actions -action-cache-remote http://127.0.0.1:5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comtainer/internal/actioncache"
	"comtainer/internal/core/adapter"
	"comtainer/internal/core/backend"
	"comtainer/internal/core/cache"
	"comtainer/internal/oci"
	"comtainer/internal/remoteexec"
	"comtainer/internal/sysprofile"
)

func main() {
	layout := flag.String("layout", "", "OCI layout directory holding the extended image")
	sysName := flag.String("system", "x86-64", "target system: x86-64 or aarch64")
	adapterList := flag.String("adapters", "libo,cxxo", "comma-separated adapter chain: libo,cxxo,lto,cross-isa")
	cacheDir := flag.String("action-cache", "", "directory for the local action-cache tier (empty = caching off)")
	cacheRemote := flag.String("action-cache-remote", "", "registry URL of the shared remote action-cache tier, e.g. http://127.0.0.1:5000")
	cacheCap := flag.Int64("action-cache-cap", 0, "byte cap of the local action-cache tier (0 = unbounded)")
	workers := flag.Int("j", 0, "max concurrent build commands (0 = min(GOMAXPROCS, 8))")
	remoteExec := flag.String("remote-exec", "", "scheduler URL of a remote-execution farm (a comtainer-registry with -exec); cache misses execute there, with local fallback")
	flag.Parse()
	if *layout == "" {
		fmt.Fprintln(os.Stderr, "usage: comtainer-rebuild -layout <dir.oci> -system <name> [-adapters ...] [-action-cache <dir>] [-action-cache-remote <url>] [-remote-exec <url>] [-j N]")
		os.Exit(2)
	}
	if err := run(*layout, *sysName, *adapterList, *cacheDir, *cacheRemote, *remoteExec, *cacheCap, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-rebuild:", err)
		os.Exit(1)
	}
}

// buildMemo assembles the action-cache tier stack from the flags; a nil
// memoizer means caching is off.
func buildMemo(cacheDir, cacheRemote string, cacheCap int64) (*actioncache.Memoizer, error) {
	var local, remote actioncache.Cache
	if cacheDir != "" {
		disk, err := actioncache.NewDiskCache(cacheDir, cacheCap)
		if err != nil {
			return nil, err
		}
		local = disk
	}
	if cacheRemote != "" {
		// The breaker sheds calls to a down registry after a few
		// consecutive failures, so a rebuild degrades to the local tier
		// instead of paying a network timeout per action.
		remote = actioncache.NewBreaker(actioncache.NewRemoteCache(cacheRemote, ""))
	}
	tiers := actioncache.NewTiered(local, remote)
	if tiers == nil {
		return nil, nil
	}
	return actioncache.NewMemoizer(tiers), nil
}

// parseAdapters resolves adapter names to the built-in chain.
func parseAdapters(spec string) ([]adapter.Adapter, error) {
	var out []adapter.Adapter
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "libo":
			out = append(out, adapter.Libo())
		case "cxxo":
			out = append(out, adapter.Toolchain())
		case "lto":
			out = append(out, adapter.LTO())
		case "cross-isa":
			// Cross-ISA must run first so later adapters see a coherent ISA.
			out = append([]adapter.Adapter{adapter.CrossISA()}, out...)
		case "":
		default:
			return nil, fmt.Errorf("unknown adapter %q (have libo, cxxo, lto, cross-isa)", name)
		}
	}
	if len(out) == 0 {
		out = adapter.DefaultAdapted()
	}
	return out, nil
}

// findDistTag locates the <tag>+coM manifest in the layout's index.
func findDistTag(repo *oci.Repository) (string, error) {
	for _, tag := range repo.Index.Tags() {
		if strings.HasSuffix(tag, cache.ExtendedSuffix) {
			return strings.TrimSuffix(tag, cache.ExtendedSuffix), nil
		}
	}
	return "", fmt.Errorf("layout holds no extended image (+coM tag); run comtainer-build first")
}

func run(layoutDir, sysName, adapterSpec, cacheDir, cacheRemote, remoteExec string, cacheCap int64, workers int) error {
	repo, err := oci.LoadLayout(layoutDir)
	if err != nil {
		return err
	}
	memo, err := buildMemo(cacheDir, cacheRemote, cacheCap)
	if err != nil {
		return err
	}
	sys, err := sysprofile.ByName(sysName)
	if err != nil {
		return err
	}
	// The rebuild container's base images come from the system side.
	if err := sysprofile.PopulateSystemSide(repo, sys); err != nil {
		return err
	}
	adapters, err := parseAdapters(adapterSpec)
	if err != nil {
		return err
	}
	distTag, err := findDistTag(repo)
	if err != nil {
		return err
	}
	var farm *remoteexec.Executor
	if remoteExec != "" {
		// The rebuild executes under the system's Sysenv registry (the
		// backend default), so the farm platform carries its fingerprint.
		farm = remoteexec.NewExecutor(remoteExec, sys, sys.Toolchains)
	}
	desc, report, err := backend.Rebuild(repo, distTag, backend.RebuildOptions{
		System:     sys,
		Adapters:   adapters,
		Memo:       memo,
		Workers:    workers,
		RemoteExec: farm,
	})
	if err != nil {
		return err
	}
	if err := repo.SaveLayout(layoutDir); err != nil {
		return err
	}
	fmt.Printf("rebuilt %s for %s -> %s (%s)\n", distTag, sys.Name, cache.RebuiltTag(distTag), desc.Digest.Short())
	fmt.Printf("adapted %d build commands\n", report.ChangedCommands)
	if memo != nil {
		fmt.Printf("action cache: %s\n", memo.Stats())
	}
	if farm != nil {
		fmt.Printf("remote exec: %s\n", farm.Stats())
	}
	for _, n := range report.Notes {
		fmt.Println(" ", n)
	}
	return nil
}
