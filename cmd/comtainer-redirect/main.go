// Command comtainer-redirect performs the system-side redirect step:
// starting from the Rebase image, it installs the (vendor-optimized)
// runtime packages, extracts the rebuilt artifacts and carried data from
// the +coMre image, and commits the final optimized image.
//
// Usage:
//
//	comtainer-redirect -layout ./lulesh.dist.oci -system x86-64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comtainer/internal/core/backend"
	"comtainer/internal/core/cache"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
)

func main() {
	layout := flag.String("layout", "", "OCI layout directory holding the rebuilt image")
	sysName := flag.String("system", "x86-64", "target system: x86-64 or aarch64")
	outTag := flag.String("tag", "", "tag for the optimized image (default <dist>.redirect)")
	flag.Parse()
	if *layout == "" {
		fmt.Fprintln(os.Stderr, "usage: comtainer-redirect -layout <dir.oci> -system <name>")
		os.Exit(2)
	}
	if err := run(*layout, *sysName, *outTag); err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-redirect:", err)
		os.Exit(1)
	}
}

func run(layoutDir, sysName, outTag string) error {
	repo, err := oci.LoadLayout(layoutDir)
	if err != nil {
		return err
	}
	sys, err := sysprofile.ByName(sysName)
	if err != nil {
		return err
	}
	if err := sysprofile.PopulateSystemSide(repo, sys); err != nil {
		return err
	}
	var distTag string
	for _, tag := range repo.Index.Tags() {
		if strings.HasSuffix(tag, cache.RebuiltSuffix) {
			distTag = strings.TrimSuffix(tag, cache.RebuiltSuffix)
		}
	}
	if distTag == "" {
		return fmt.Errorf("layout holds no rebuilt image (+coMre tag); run comtainer-rebuild first")
	}
	desc, err := backend.Redirect(repo, distTag, backend.RedirectOptions{
		System:       sys,
		OptimizedTag: outTag,
	})
	if err != nil {
		return err
	}
	if outTag == "" {
		outTag = distTag + ".redirect"
	}
	if err := repo.SaveLayout(layoutDir); err != nil {
		return err
	}
	fmt.Printf("redirected %s -> %s (%s), optimized for %s\n", distTag, outTag, desc.Digest.Short(), sys.Name)
	return nil
}
