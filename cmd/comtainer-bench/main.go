// Command comtainer-bench regenerates the tables and figures of the
// paper's evaluation section by driving the full pipeline: builds,
// analyses, rebuilds, redirects and simulated runs.
//
// Usage:
//
//	comtainer-bench -all
//	comtainer-bench -table 3
//	comtainer-bench -figure 9
//
// Two helper subcommands serve scripts/bench.sh:
//
//	comtainer-bench time <cmd> [args...]
//
// runs the command with stdout discarded and prints the elapsed wall
// clock as fractional seconds — a portable replacement for
// `date +%s.%N`, which busybox/BSD date does not support.
//
//	comtainer-bench diff <old.json> <new.json>
//
// compares two bench.sh JSON snapshots and exits non-zero when a gated
// metric (warm-rebuild time, pull throughput, vet replay ratio)
// regressed by more than 10%.
package main

import (
	"flag"
	"fmt"
	"os"

	"comtainer/internal/experiments"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "time":
			os.Exit(timeMain(os.Args[2:]))
		case "diff":
			os.Exit(diffMain(os.Args[2:]))
		}
	}
	table := flag.Int("table", 0, "regenerate a table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "regenerate a figure (3, 9, 10 or 11)")
	all := flag.Bool("all", false, "regenerate everything")
	csvDir := flag.String("csv", "", "also export every result as CSV into this directory")
	check := flag.Bool("check", false, "verify every paper claim against this run and exit non-zero on drift")
	flag.Parse()

	env := experiments.NewEnvironment()
	if *check {
		results, err := experiments.Check(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comtainer-bench: check:", err)
			os.Exit(1)
		}
		text, ok := experiments.RenderChecks(results)
		fmt.Print(text)
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *csvDir != "" {
		files, err := experiments.ExportAll(env, *csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comtainer-bench: csv export:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		if !*all && *table == 0 && *figure == 0 {
			return
		}
	}
	run := func(what string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "comtainer-bench: %s: %v\n", what, err)
			os.Exit(1)
		}
	}
	want := func(t, f int) bool {
		return *all || *table == t || *figure == f
	}
	any := false

	if want(1, 0) {
		any = true
		fmt.Println(experiments.RenderTable1())
	}
	if want(2, 0) {
		any = true
		fmt.Println(experiments.RenderTable2())
	}
	if want(0, 3) {
		any = true
		run("figure 3", func() error {
			rows, err := experiments.Figure3(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure3(rows))
			return nil
		})
	}
	if want(0, 9) || want(0, 10) {
		any = true
		run("figures 9/10", func() error {
			for _, sys := range []string{"x86-64", "aarch64"} {
				rows, err := experiments.Figure9(env, sys)
				if err != nil {
					return err
				}
				if *all || *figure == 9 {
					fmt.Println(experiments.RenderFigure9(sys, rows))
				}
				if *all || *figure == 10 {
					fmt.Println(experiments.RenderFigure10(sys, experiments.Figure10(rows)))
				}
			}
			return nil
		})
	}
	if want(3, 0) {
		any = true
		run("table 3", func() error {
			rows, err := experiments.Table3(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTable3(rows))
			return nil
		})
	}
	if want(0, 11) {
		any = true
		run("figure 11", func() error {
			rows, failed, err := experiments.Figure11(env)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure11(rows, failed))
			return nil
		})
	}
	if !any {
		fmt.Fprintln(os.Stderr, "usage: comtainer-bench -all | -table {1,2,3} | -figure {3,9,10,11}")
		os.Exit(2)
	}
}
