// Subcommands backing scripts/bench.sh: `time` is a portable wall-clock
// helper and `diff` is the snapshot regression gate.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"
)

// regressionLimit is how much worse a gated metric may get before diff
// fails: >10% and the snapshot comparison exits non-zero.
const regressionLimit = 0.10

// timeMain runs the given command with stdout discarded (so only the
// elapsed time lands on our stdout) and stderr passed through, then
// prints the wall-clock duration as fractional seconds.
func timeMain(args []string) int {
	if len(args) > 0 && args[0] == "--" {
		args = args[1:]
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: comtainer-bench time <cmd> [args...]")
		return 2
	}
	cmd := exec.Command(args[0], args[1:]...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	start := time.Now()
	err := cmd.Run()
	elapsed := time.Since(start).Seconds()
	if err != nil {
		fmt.Fprintf(os.Stderr, "comtainer-bench: time: %s: %v\n", args[0], err)
		return 1
	}
	fmt.Printf("%.3f\n", elapsed)
	return 0
}

// snapshot mirrors the JSON written by scripts/bench.sh.
type snapshot struct {
	Timestamp string `json:"timestamp"`
	Vet       struct {
		ColdSeconds float64 `json:"cold_seconds"`
		WarmSeconds float64 `json:"warm_seconds"`
	} `json:"vet"`
	Benchmarks []map[string]any `json:"benchmarks"`
}

// metric returns the named metric of the named benchmark, if present.
// Benchmark entries key every reported value by its unit string, which
// may contain characters ("%", "-") that rule out a fixed struct.
func (s *snapshot) metric(bench, unit string) (float64, bool) {
	for _, b := range s.Benchmarks {
		if name, _ := b["name"].(string); name != bench {
			continue
		}
		if v, ok := b[unit].(float64); ok {
			return v, true
		}
	}
	return 0, false
}

// vetRatio is the warm/cold wall-clock ratio of the analyzer suite: the
// fraction of a cold run that a fully cached run still costs. Lower is
// better; a rising ratio means cache replay is losing ground.
func (s *snapshot) vetRatio() (float64, bool) {
	if s.Vet.ColdSeconds <= 0 {
		return 0, false
	}
	return s.Vet.WarmSeconds / s.Vet.ColdSeconds, true
}

func loadSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// diffMain compares two snapshots and fails on >regressionLimit
// regression of any gated metric. Metrics missing from either side are
// reported and skipped, so older snapshots that predate a benchmark
// never hard-fail the gate.
func diffMain(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: comtainer-bench diff <old.json> <new.json>")
		return 2
	}
	oldS, err := loadSnapshot(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-bench: diff:", err)
		return 1
	}
	newS, err := loadSnapshot(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "comtainer-bench: diff:", err)
		return 1
	}
	fmt.Printf("comparing %s (old) vs %s (new)\n", oldS.Timestamp, newS.Timestamp)

	gates := []struct {
		label        string
		bench, unit  string // empty bench = vet replay ratio
		higherBetter bool
	}{
		{"warm rebuild ms", "BenchmarkRebuildColdVsWarm", "warm-ms", false},
		{"pull speedup x", "BenchmarkParallelPull", "speedup-x", true},
		{"fleet shards x", "BenchmarkFleetPullThroughput", "shards3-vs-1-x", true},
		{"vet replay ratio", "", "", false},
	}
	failed := false
	for _, g := range gates {
		var oldV, newV float64
		var oldOK, newOK bool
		if g.bench == "" {
			oldV, oldOK = oldS.vetRatio()
			newV, newOK = newS.vetRatio()
		} else {
			oldV, oldOK = oldS.metric(g.bench, g.unit)
			newV, newOK = newS.metric(g.bench, g.unit)
		}
		// A metric present on only one side is informational, never a
		// gate: a snapshot predating a benchmark (or trailing a removed
		// one) has nothing to regress against. Show the value we do
		// have so the report still carries it.
		switch {
		case !oldOK && !newOK:
			fmt.Printf("  %-18s skipped (metric missing from both snapshots)\n", g.label)
			continue
		case !oldOK:
			fmt.Printf("  %-18s        (-) -> %10.3f  info only (new metric, no baseline)\n", g.label, newV)
			continue
		case !newOK:
			fmt.Printf("  %-18s %10.3f -> (-)         info only (metric absent from new snapshot)\n", g.label, oldV)
			continue
		}
		// Regression is measured as the relative move in the "worse"
		// direction; improvements come out negative and always pass.
		var change float64
		if oldV != 0 {
			if g.higherBetter {
				change = (oldV - newV) / oldV
			} else {
				change = (newV - oldV) / oldV
			}
		}
		verdict := "ok"
		if change > regressionLimit {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("  %-18s %10.3f -> %10.3f  (%+.1f%% worse)  %s\n",
			g.label, oldV, newV, change*100, verdict)
	}
	if failed {
		fmt.Printf("FAIL: a gated metric regressed more than %.0f%%\n", regressionLimit*100)
		return 1
	}
	fmt.Println("ok: no gated metric regressed")
	return 0
}
