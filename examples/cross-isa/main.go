// cross-isa demonstrates the paper's §5.5 study: an extended image built
// on x86-64 is pulled by the AArch64 system, whose cross-ISA adapter
// patches the recorded build (dropping foreign machine flags, switching
// guarded inline assembly to the portable path) so the rebuild targets the
// new ISA. ISA-bound applications fail, exactly as in the paper.
package main

import (
	"fmt"
	"log"

	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

func main() {
	armSys := sysprofile.ArmCluster()
	chain := append([]adapter.Adapter{adapter.CrossISA()}, adapter.DefaultAdapted()...)

	for _, appName := range []string{"lulesh", "comd", "hpl"} {
		fmt.Printf("== %s: x86-64 image -> %s system ==\n", appName, armSys.Name)
		user, err := core.NewUserSide(toolchain.ISAx86)
		if err != nil {
			log.Fatal(err)
		}
		app, err := workloads.Find(appName)
		if err != nil {
			log.Fatal(err)
		}
		res, err := user.BuildExtended(app)
		if err != nil {
			log.Fatal(err)
		}
		system, err := core.NewSystemSide(armSys)
		if err != nil {
			log.Fatal(err)
		}
		if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
			log.Fatal(err)
		}
		_, report, err := system.Rebuild(res.DistTag, chain, nil)
		if err != nil {
			fmt.Printf("  cannot cross ISA: %v\n\n", err)
			continue
		}
		if _, err := system.Redirect(res.DistTag); err != nil {
			log.Fatal(err)
		}
		ref := workloads.Ref{App: app, Workload: app.Workloads[0]}
		run, err := system.Run(res.DistTag+".redirect", ref, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  crossed with %d script-line changes; now a %s/%s binary, runs in %.2f s\n\n",
			2+report.PerAdapter["cross-isa"], run.Binary.TargetISA, run.Binary.March, run.Seconds)
	}
}
