// registry-flow runs the coMtainer workflow across a real HTTP boundary:
// the user side pushes the extended image to an OCI registry served over
// localhost, the "remote" HPC system pulls it, rebuilds, redirects and
// runs — the full Figure-1 distribution picture.
//
// The registry persists to disk via internal/distrib: after the push the
// example kills the server and starts a fresh one over the same data
// directory, proving the pull works across a registry restart. Transfers
// run through the concurrent client (parallel layers, resumable chunked
// uploads, cross-image blob dedup).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/registry"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// serve starts a disk-backed registry on an ephemeral localhost port,
// returning its base URL and a shutdown function.
func serve(dataDir string) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv, err := registry.NewServerAt(dataDir)
	if err != nil {
		ln.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	//comtainer:allow gonaked,errpropagate -- server goroutine ends when shutdown() closes hs; Serve then returns ErrServerClosed
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

func main() {
	ctx := context.Background()
	dataDir, err := os.MkdirTemp("", "comtainer-registry-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	base, shutdown, err := serve(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry listening at %s, persisting under %s\n", base, dataDir)

	// User side: build and push with the concurrent client.
	user, err := core.NewUserSide(toolchain.ISAx86)
	if err != nil {
		log.Fatal(err)
	}
	app, err := workloads.Find("hpcg")
	if err != nil {
		log.Fatal(err)
	}
	res, err := user.BuildExtended(app)
	if err != nil {
		log.Fatal(err)
	}
	client := registry.NewClient(base)
	client.Workers = 8
	if err := client.Ping(ctx); err != nil {
		log.Fatal(err)
	}
	if err := client.Push(ctx, user.Repo, res.ExtendedTag, "user/hpcg", "v1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pushed %s as user/hpcg:v1 (8 parallel layer uploads)\n", res.ExtendedTag)

	// Restart the registry over the same data directory: everything
	// pushed must survive.
	shutdown()
	base, shutdown, err = serve(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	fmt.Printf("registry restarted at %s from persisted state\n", base)

	// System side: pull over HTTP into its own store, then adapt and run.
	sys := sysprofile.X86Cluster()
	system, err := core.NewSystemSide(sys)
	if err != nil {
		log.Fatal(err)
	}
	client = registry.NewClient(base)
	client.Workers = 8
	if err := client.Pull(ctx, system.Repo, "user/hpcg", "v1", res.ExtendedTag); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pulled user/hpcg:v1 on the %s system (parallel layer fetch)\n", sys.Name)
	optTag, err := system.Adapt(res.DistTag, adapter.DefaultAdapted())
	if err != nil {
		log.Fatal(err)
	}
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "hpcg" {
			ref = r
		}
	}
	out, err := system.Run(optTag, ref, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adapted image runs hpcg in %.2f s on %d nodes (binary: %s/%s)\n",
		out.Seconds, 16, out.Binary.Toolchain, out.Binary.March)
}
