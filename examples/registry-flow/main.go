// registry-flow runs the coMtainer workflow across a real HTTP boundary:
// the user side pushes the extended image to an OCI registry served over
// localhost, the "remote" HPC system pulls it, rebuilds, redirects and
// runs — the full Figure-1 distribution picture.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/registry"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

func main() {
	// Serve a registry on an ephemeral localhost port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := registry.NewServer()
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("registry listening at %s\n", base)

	// User side: build and push.
	user, err := core.NewUserSide(toolchain.ISAx86)
	if err != nil {
		log.Fatal(err)
	}
	app, err := workloads.Find("hpcg")
	if err != nil {
		log.Fatal(err)
	}
	res, err := user.BuildExtended(app)
	if err != nil {
		log.Fatal(err)
	}
	client := registry.NewClient(base)
	if err := client.Ping(); err != nil {
		log.Fatal(err)
	}
	if err := client.Push(user.Repo, res.ExtendedTag, "user/hpcg", "v1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pushed %s as user/hpcg:v1\n", res.ExtendedTag)

	// System side: pull over HTTP into its own store, then adapt and run.
	sys := sysprofile.X86Cluster()
	system, err := core.NewSystemSide(sys)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Pull(system.Repo, "user/hpcg", "v1", res.ExtendedTag); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pulled user/hpcg:v1 on the %s system\n", sys.Name)
	optTag, err := system.Adapt(res.DistTag, adapter.DefaultAdapted())
	if err != nil {
		log.Fatal(err)
	}
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "hpcg" {
			ref = r
		}
	}
	out, err := system.Run(optTag, ref, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adapted image runs hpcg in %.2f s on %d nodes (binary: %s/%s)\n",
		out.Seconds, 16, out.Binary.Toolchain, out.Binary.March)
}
