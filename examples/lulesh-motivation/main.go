// lulesh-motivation reproduces the paper's Figure-3 study: LULESH in a
// generic image versus incrementally enabled system-specific
// optimizations (library replacement, native toolchain, LTO, PGO), on a
// single node of each HPC system.
package main

import (
	"fmt"
	"log"

	"comtainer/internal/experiments"
)

func main() {
	env := experiments.NewEnvironment()
	rows, err := experiments.Figure3(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFigure3(rows))
}
