// Quickstart: the complete coMtainer workflow for one application.
//
// A user builds LULESH into a generic container image, coMtainer-build
// embeds the build-time data, the x86-64 HPC system rebuilds and redirects
// the image with its vendor toolchain and optimized libraries, and the
// run times before and after show the adaptability gap closing.
package main

import (
	"fmt"
	"log"

	"comtainer/internal/chrun"
	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

func main() {
	// --- User side: build and publish the extended image. ---
	user, err := core.NewUserSide(toolchain.ISAx86)
	if err != nil {
		log.Fatal(err)
	}
	app, err := workloads.Find("lulesh")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== user side: two-stage build + coMtainer-build ==")
	res, err := user.BuildExtended(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dist image:     %s\nextended image: %s\n\n", res.DistTag, res.ExtendedTag)

	// --- System side: pull, rebuild, redirect. ---
	sys := sysprofile.X86Cluster()
	system, err := core.NewSystemSide(sys)
	if err != nil {
		log.Fatal(err)
	}
	if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== system side (%s): coMtainer-rebuild + coMtainer-redirect ==\n", sys.Name)
	optTag, err := system.Adapt(res.DistTag, adapter.DefaultAdapted())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized image: %s\n\n", optTag)

	// --- Run both versions. ---
	ref, _ := refFor("lulesh")
	distDesc, err := user.Repo.Resolve(res.DistTag)
	if err != nil {
		log.Fatal(err)
	}
	origImg, err := oci.LoadImage(user.Repo.Store, distDesc)
	if err != nil {
		log.Fatal(err)
	}
	tOrig, err := chrun.RunImage(sys, ref, origImg, 16)
	if err != nil {
		log.Fatal(err)
	}
	tOpt, err := system.Run(optTag, ref, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== results (16 nodes) ==")
	fmt.Printf("generic image:   %6.2f s  (MPI on fallback path: %v)\n", tOrig.Seconds, tOrig.NetPath)
	fmt.Printf("optimized image: %6.2f s  (vendor toolchain %s, %.0f%% of key libs optimized)\n",
		tOpt.Seconds, tOpt.Binary.Toolchain, tOpt.LibFraction*100)
	fmt.Printf("speedup:         %6.2fx\n", tOrig.Seconds/tOpt.Seconds)
}

func refFor(id string) (workloads.Ref, error) {
	for _, r := range workloads.AllRefs() {
		if r.ID() == id {
			return r, nil
		}
	}
	return workloads.Ref{}, fmt.Errorf("unknown workload %s", id)
}
