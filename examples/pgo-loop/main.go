// pgo-loop demonstrates coMtainer's automated profile-guided-optimization
// feedback loop (paper §4.4): the system rebuilds the application with
// instrumentation, runs a trial to collect a profile, rebuilds against
// the profile, and redirects — all without user involvement. The loop is
// shown step by step rather than through the SystemSide.PGOLoop helper.
package main

import (
	"fmt"
	"log"

	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

const profilePath = "/.comtainer/profile/default.profdata"

func main() {
	user, err := core.NewUserSide(toolchain.ISAx86)
	if err != nil {
		log.Fatal(err)
	}
	app, err := workloads.Find("minimd")
	if err != nil {
		log.Fatal(err)
	}
	res, err := user.BuildExtended(app)
	if err != nil {
		log.Fatal(err)
	}
	sys := sysprofile.X86Cluster()
	system, err := core.NewSystemSide(sys)
	if err != nil {
		log.Fatal(err)
	}
	if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
		log.Fatal(err)
	}
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "minimd" {
			ref = r
		}
	}
	base := adapter.DefaultOptimized() // libo + cxxo + lto

	// Baseline: adapted+LTO, no PGO.
	if _, err := system.Adapt(res.DistTag, base); err != nil {
		log.Fatal(err)
	}
	baseline, err := system.Run(res.DistTag+".redirect", ref, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adapted+LTO baseline:     %.3f s\n", baseline.Seconds)

	// Phase 1: instrumented rebuild and trial run.
	instr := append(append([]adapter.Adapter{}, base...), adapter.PGOInstrument())
	if _, _, err := system.Rebuild(res.DistTag, instr, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := system.Redirect(res.DistTag); err != nil {
		log.Fatal(err)
	}
	trial, err := system.Run(res.DistTag+".redirect", ref, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented trial run:   %.3f s (overhead %.0f%%, %d profile bytes)\n",
		trial.Seconds, (trial.Seconds/baseline.Seconds-1)*100, len(trial.Profile))

	// Phase 2: rebuild against the collected profile.
	use := append(append([]adapter.Adapter{}, base...), adapter.PGOUse(profilePath))
	extra := map[string][]byte{profilePath: trial.Profile}
	if _, _, err := system.Rebuild(res.DistTag, use, extra); err != nil {
		log.Fatal(err)
	}
	if _, err := system.Redirect(res.DistTag); err != nil {
		log.Fatal(err)
	}
	final, err := system.Run(res.DistTag+".redirect", ref, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PGO-optimized:            %.3f s (%.1f%% over the baseline)\n",
		final.Seconds, (baseline.Seconds/final.Seconds-1)*100)
	fmt.Printf("final binary: lto=%v pgo=%v profile=%.12s...\n",
		final.Binary.LTO, final.Binary.PGOOptimized, final.Binary.ProfileData)
}
