// ip-protection contrasts the two §4.6 options for shipping build-time
// data without exposing source code: obfuscated sources (full adaptation
// flexibility) versus compiler IR (stronger protection, but packages are
// version-locked and the image cannot cross ISAs).
package main

import (
	"fmt"
	"log"
	"strings"

	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/core/cache"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

func main() {
	sys := sysprofile.X86Cluster()
	app, err := workloads.Find("minife")
	if err != nil {
		log.Fatal(err)
	}
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "minife" {
			ref = r
		}
	}

	type mode struct {
		name  string
		build func(*core.UserSide) (core.BuildResult, error)
	}
	for _, m := range []mode{
		{"plain sources", func(u *core.UserSide) (core.BuildResult, error) { return u.BuildExtended(app) }},
		{"obfuscated sources", func(u *core.UserSide) (core.BuildResult, error) { return u.BuildExtendedObfuscated(app) }},
		{"compiler IR", func(u *core.UserSide) (core.BuildResult, error) { return u.BuildExtendedIR(app) }},
	} {
		user, err := core.NewUserSide(toolchain.ISAx86)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.build(user)
		if err != nil {
			log.Fatal(err)
		}
		// Peek into the cache layer.
		extImg, err := user.Repo.LoadByTag(res.ExtendedTag)
		if err != nil {
			log.Fatal(err)
		}
		models, srcFS, err := cache.Read(extImg)
		if err != nil {
			log.Fatal(err)
		}
		leaks := 0
		for _, p := range models.SourcePaths {
			data, err := srcFS.ReadFile(p)
			if err != nil {
				continue
			}
			if strings.Contains(string(data), "translation unit") {
				leaks++ // an original identifier made it into the cache
			}
		}
		// Adapt and run on the system side.
		system, err := core.NewSystemSide(sys)
		if err != nil {
			log.Fatal(err)
		}
		if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
			log.Fatal(err)
		}
		optTag, err := system.Adapt(res.DistTag, adapter.DefaultAdapted())
		if err != nil {
			log.Fatal(err)
		}
		run, err := system.Run(optTag, ref, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s adapted run %6.2f s | optimized libs %3.0f%% | source identifiers visible in cache: %v\n",
			m.name, run.Seconds, run.LibFraction*100, leaks > 0)
	}
	fmt.Println("\nIR trades adaptation flexibility for protection: the libraries stay")
	fmt.Println("version-locked (0% optimized), exactly the coupling §4.6 warns about.")
}
