module comtainer

go 1.22
