// Package comtainer's root benchmark suite regenerates every table and
// figure of the paper's evaluation (run with `go test -bench=. -benchmem`)
// and benchmarks the substrates. Each BenchmarkTableN / BenchmarkFigureN
// drives the full pipeline — container builds, front-end analysis,
// adapter rebuilds, redirects and simulated runs — and reports the
// headline quantities as benchmark metrics so the paper-vs-measured
// comparison appears directly in the bench output.
package comtainer

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"comtainer/internal/actioncache"
	"comtainer/internal/cclang"
	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/digest"
	"comtainer/internal/dpkg"
	"comtainer/internal/experiments"
	"comtainer/internal/fleet"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/perfmodel"
	"comtainer/internal/registry"
	"comtainer/internal/remoteexec"
	"comtainer/internal/sysprofile"
	"comtainer/internal/tarfs"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// env is shared: pipelines cache across benchmarks.
var (
	env     = experiments.NewEnvironment()
	fig9Mu  sync.Mutex
	fig9Mem = map[string][]experiments.Fig9Row{}
)

func fig9Rows(b *testing.B, sys string) []experiments.Fig9Row {
	b.Helper()
	fig9Mu.Lock()
	defer fig9Mu.Unlock()
	if rows, ok := fig9Mem[sys]; ok {
		return rows
	}
	rows, err := experiments.Figure9(env, sys)
	if err != nil {
		b.Fatal(err)
	}
	fig9Mem[sys] = rows
	return rows
}

// --- One benchmark per table and figure ---

func BenchmarkTable1Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.RenderTable1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(float64(len(sysprofile.Both())), "systems")
	b.ReportMetric(float64(sysprofile.X86Cluster().Nodes), "nodes/system")
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.RenderTable2()) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(float64(len(workloads.AllRefs())), "workloads")
	b.ReportMetric(float64(len(workloads.Apps())), "apps")
}

func BenchmarkFigure3LuleshMotivation(b *testing.B) {
	var rows []experiments.Figure3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure3(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: libo+cxxo cut ~50% (x86) / ~72% (aarch64); lto +17.5%, pgo +9.6%.
	x86 := rows[0]
	b.ReportMetric((1-x86.Cxxo/x86.Cost)*100, "x86-cut-%")
	b.ReportMetric((1-rows[1].Cxxo/rows[1].Cost)*100, "arm-cut-%")
	b.ReportMetric((x86.Cxxo/x86.LTO-1)*100, "x86-lto-%")
	b.ReportMetric((x86.LTO/x86.PGO-1)*100, "x86-pgo-%")
}

func BenchmarkFigure9PerformanceRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig9Mu.Lock()
		fig9Mem = map[string][]experiments.Fig9Row{}
		fig9Mu.Unlock()
		for _, sys := range []string{"x86-64", "aarch64"} {
			fig9Rows(b, sys)
		}
	}
	// Paper: avg improvement 96.3% (x86) / 66.5% (aarch64); adapted ≈ native.
	ax := experiments.Averages(fig9Rows(b, "x86-64"))
	aa := experiments.Averages(fig9Rows(b, "aarch64"))
	b.ReportMetric(ax.AvgImprovement*100, "x86-improv-%")
	b.ReportMetric(aa.AvgImprovement*100, "arm-improv-%")
	b.ReportMetric(ax.Adapted, "x86-adapted-s")
	b.ReportMetric(ax.Native, "x86-native-s")
	b.ReportMetric(aa.Adapted, "arm-adapted-s")
	b.ReportMetric(aa.Native, "arm-native-s")
}

func BenchmarkFigure10RelativeTime(b *testing.B) {
	var avgX, avgA float64
	for i := 0; i < b.N; i++ {
		for _, sys := range []string{"x86-64", "aarch64"} {
			rows := experiments.Figure10(fig9Rows(b, sys))
			var sum float64
			for _, r := range rows {
				sum += r.Adapted/r.Optimized - 1
			}
			if sys == "x86-64" {
				avgX = sum / float64(len(rows))
			} else {
				avgA = sum / float64(len(rows))
			}
		}
	}
	// Paper: LTO+PGO beat adapted by ~8% (x86) / ~5.6% (aarch64).
	b.ReportMetric(avgX*100, "x86-ltopgo-%")
	b.ReportMetric(avgA*100, "arm-ltopgo-%")
}

func BenchmarkTable3ImageSizes(b *testing.B) {
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table3(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	byApp := map[string]experiments.Table3Row{}
	var maxFrac float64
	for _, r := range rows {
		byApp[r.App] = r
		if f := r.Cache / r.ImageX86; f > maxFrac {
			maxFrac = f
		}
	}
	// Paper: comd 170.36/94.87 MiB, lammps cache 14.42, openmx 23.99,
	// cache ≤ 7.1% of the x86 image.
	b.ReportMetric(byApp["comd"].ImageX86, "comd-x86-MiB")
	b.ReportMetric(byApp["comd"].ImageArm, "comd-arm-MiB")
	b.ReportMetric(byApp["lammps"].Cache, "lammps-cache-MiB")
	b.ReportMetric(byApp["openmx"].Cache, "openmx-cache-MiB")
	b.ReportMetric(maxFrac*100, "max-cache-%")
}

func BenchmarkFigure11CrossISA(b *testing.B) {
	var rows []experiments.Fig11Row
	var failed []string
	var err error
	for i := 0; i < b.N; i++ {
		rows, failed, err = experiments.Figure11(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sumC, sumX int
	for _, r := range rows {
		sumC += r.CoMtainer
		sumX += r.XBuild
	}
	// Paper: ~5 lines with coMtainer vs ~47 cross-building (~10%).
	b.ReportMetric(float64(sumC)/float64(len(rows)), "comtainer-lines")
	b.ReportMetric(float64(sumX)/float64(len(rows)), "xbuild-lines")
	b.ReportMetric(float64(len(rows)), "crossed-apps")
	b.ReportMetric(float64(len(failed)), "failed-apps")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationAdapterChains measures lulesh x86 time under partial
// adapter chains, isolating each optimization's contribution.
func BenchmarkAblationAdapterChains(b *testing.B) {
	ref, err := experiments.RefByID("lulesh")
	if err != nil {
		b.Fatal(err)
	}
	sys := sysprofile.X86Cluster()
	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		b.Fatal(err)
	}
	res, err := user.BuildExtended(ref.App)
	if err != nil {
		b.Fatal(err)
	}
	chains := []struct {
		name     string
		adapters []adapter.Adapter
		generic  bool
	}{
		{"libo-only", []adapter.Adapter{adapter.Libo()}, true},
		{"cxxo-only", []adapter.Adapter{adapter.Toolchain()}, false},
		{"libo+cxxo", adapter.DefaultAdapted(), false},
		{"libo+cxxo+lto", adapter.DefaultOptimized(), false},
	}
	times := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, c := range chains {
			system, err := core.NewSystemSide(sys)
			if err != nil {
				b.Fatal(err)
			}
			if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
				b.Fatal(err)
			}
			reg := sys.Toolchains
			if c.generic {
				reg = sys.GenericToolchains
			}
			if _, _, err := system.RebuildWith(res.DistTag, c.adapters, nil, reg); err != nil {
				b.Fatal(err)
			}
			if _, err := system.Redirect(res.DistTag); err != nil {
				b.Fatal(err)
			}
			out, err := system.Run(res.DistTag+".redirect", ref, 1)
			if err != nil {
				b.Fatal(err)
			}
			times[c.name] = out.Seconds
		}
	}
	for name, t := range times {
		b.ReportMetric(t, name+"-s")
	}
}

// BenchmarkAblationMarchLevels measures how much of the vendor-compiler
// gain comes from micro-architecture targeting alone.
func BenchmarkAblationMarchLevels(b *testing.B) {
	ref, err := experiments.RefByID("openmx.pt13")
	if err != nil {
		b.Fatal(err)
	}
	sys := sysprofile.X86Cluster()
	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		b.Fatal(err)
	}
	res, err := user.BuildExtended(ref.App)
	if err != nil {
		b.Fatal(err)
	}
	levels := []string{"x86-64", "x86-64-v3", "icelake-server"}
	times := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, march := range levels {
			system, err := core.NewSystemSide(sys)
			if err != nil {
				b.Fatal(err)
			}
			if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
				b.Fatal(err)
			}
			chain := []adapter.Adapter{adapter.Libo(), adapter.March(march)}
			if _, _, err := system.Rebuild(res.DistTag, chain, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := system.Redirect(res.DistTag); err != nil {
				b.Fatal(err)
			}
			out, err := system.Run(res.DistTag+".redirect", ref, 16)
			if err != nil {
				b.Fatal(err)
			}
			times[march] = out.Seconds
		}
	}
	for march, t := range times {
		b.ReportMetric(t, "march-"+march+"-s")
	}
}

// BenchmarkLTOCompileCost quantifies the compile-time price of LTO that
// makes it "prohibitive on the user side, yet feasible on the system side"
// (paper §3).
func BenchmarkLTOCompileCost(b *testing.B) {
	app, err := workloads.Find("openmx")
	if err != nil {
		b.Fatal(err)
	}
	sys := sysprofile.X86Cluster()
	var plain, lto float64
	for i := 0; i < b.N; i++ {
		for _, withLTO := range []bool{false, true} {
			fs := fsim.New()
			for name, content := range app.Sources(sys.ISA) {
				fs.WriteFile("/w/"+name, []byte(content), 0o644)
			}
			runner := toolchain.NewRunner(fs, sys.Toolchains)
			runner.Cwd = "/w"
			flags := []string{"-O2"}
			if withLTO {
				flags = append(flags, "-flto")
			}
			var objs []string
			for j := 0; j < app.NumSrcFiles; j++ {
				src := fmt.Sprintf("%s_%02d.c", app.Name, j)
				obj := fmt.Sprintf("%s_%02d.o", app.Name, j)
				argv := append(append([]string{"gcc"}, flags...), "-c", src, "-o", obj)
				if err := runner.Run(argv); err != nil {
					b.Fatal(err)
				}
				objs = append(objs, obj)
			}
			link := append(append([]string{"gcc"}, flags...), objs...)
			link = append(link, "-o", "app")
			if err := runner.Run(link); err != nil {
				b.Fatal(err)
			}
			if withLTO {
				lto = runner.Stats.CompileUnits
			} else {
				plain = runner.Stats.CompileUnits
			}
		}
	}
	b.ReportMetric(plain, "plain-units")
	b.ReportMetric(lto, "lto-units")
	b.ReportMetric(lto/plain, "lto-cost-x")
}

// BenchmarkScalingLuleshNodes sweeps node counts on the x86-64 cluster
// and reports the original-over-adapted ratio at each scale. On this
// system the fallback fabric path is nearly as good as the native one, so
// as LULESH turns communication-bound the compute-side adaptation win is
// diluted — the paper's observation that the 16-node improvement (Fig 9)
// "becomes unobvious compared with the result in Figure 3" (one node).
func BenchmarkScalingLuleshNodes(b *testing.B) {
	ref, err := experiments.RefByID("lulesh")
	if err != nil {
		b.Fatal(err)
	}
	ratios := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, nodes := range []int{1, 2, 4, 8, 16} {
			times, err := env.SchemeTimes("x86-64", ref, nodes)
			if err != nil {
				b.Fatal(err)
			}
			ratios[nodes] = times.Original / times.Adapted
		}
	}
	for nodes, r := range ratios {
		b.ReportMetric(r, fmt.Sprintf("n%02d-orig/adapted", nodes))
	}
	if ratios[16] >= ratios[1] {
		b.Errorf("communication should dilute the x86 gap with scale: n1=%.2f n16=%.2f", ratios[1], ratios[16])
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkTarMarshal(b *testing.B) {
	fs := fsim.New()
	for i := 0; i < 100; i++ {
		fs.WriteFile(fmt.Sprintf("/usr/lib/f%03d", i), make([]byte, 512), 0o644)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tarfs.Marshal(fs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayerApply(b *testing.B) {
	base := fsim.New()
	layer := fsim.New()
	for i := 0; i < 200; i++ {
		base.WriteFile(fmt.Sprintf("/base/f%03d", i), []byte("x"), 0o644)
		if i%3 == 0 {
			layer.WriteFile(fmt.Sprintf("/base/f%03d", i), []byte("y"), 0o644)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fsim.Apply(base, layer)
	}
}

func BenchmarkDebVersionCompare(b *testing.B) {
	a, c := dpkg.Version("2:1.0~rc1+dfsg-3ubuntu2"), dpkg.Version("2:1.0~rc1+dfsg-3ubuntu10")
	for i := 0; i < b.N; i++ {
		if a.Compare(c) >= 0 {
			b.Fatal("wrong order")
		}
	}
}

func BenchmarkCclangParse(b *testing.B) {
	argv := []string{"g++", "-O3", "-march=icelake-server", "-mtune=native", "-flto",
		"-fprofile-use=/p/a.profdata", "-I", "include", "-Iother", "-DNDEBUG",
		"-Wall", "-Wextra", "-std=c++17", "-c", "lulesh.cc", "-o", "lulesh.o"}
	for i := 0; i < b.N; i++ {
		cmd, err := cclang.Parse(argv)
		if err != nil {
			b.Fatal(err)
		}
		if cmd.OptLevel() != "3" {
			b.Fatal("parse broken")
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	store := oci.NewStore()
	blob := make([]byte, 4096)
	b.SetBytes(int64(len(blob)))
	for i := 0; i < b.N; i++ {
		blob[0] = byte(i)
		blob[1] = byte(i >> 8)
		blob[2] = byte(i >> 16)
		store.Put(blob)
	}
}

func BenchmarkPerfModelEstimate(b *testing.B) {
	sys := sysprofile.X86Cluster()
	ref, err := experiments.RefByID("comd")
	if err != nil {
		b.Fatal(err)
	}
	fs := fsim.New()
	db := dpkg.NewDB()
	idx := sysprofile.GenericIndex(sys.ISA)
	for _, name := range []string{"libc6", "libm6", "libopenmpi3"} {
		p, _ := idx.Latest(name)
		if err := db.InstallWithDeps(fs, idx, p); err != nil {
			b.Fatal(err)
		}
	}
	bin := &toolchain.Artifact{
		Kind: toolchain.KindExecutable, Name: "comd", TargetISA: sys.ISA,
		March: "x86-64", OptLevel: "2",
		DynamicLibs: []string{"/usr/lib/libc.so.6", "/usr/lib/libm.so.6", "/usr/lib/libmpi.so.40"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perfmodel.Estimate(sys, ref, bin, fs, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCacheSpeedup measures the instruction-layer build cache:
// the second build of the same app reuses every layer (and replays the
// hijacker log), mirroring Docker's cache behavior.
func BenchmarkBuildCacheSpeedup(b *testing.B) {
	app, err := workloads.Find("lulesh")
	if err != nil {
		b.Fatal(err)
	}
	var coldNS, warmNS int64
	for i := 0; i < b.N; i++ {
		user, err := core.NewUserSide(toolchain.ISAx86)
		if err != nil {
			b.Fatal(err)
		}
		t0 := nowNano()
		if _, err := user.BuildExtended(app); err != nil {
			b.Fatal(err)
		}
		t1 := nowNano()
		if _, err := user.BuildExtended(app); err != nil {
			b.Fatal(err)
		}
		t2 := nowNano()
		coldNS, warmNS = t1-t0, t2-t1
		hits, _ := user.BuildCache.Stats()
		if hits == 0 {
			b.Fatal("second build took no cache hits")
		}
	}
	b.ReportMetric(float64(coldNS)/1e6, "cold-ms")
	b.ReportMetric(float64(warmNS)/1e6, "warm-ms")
	if warmNS > 0 {
		b.ReportMetric(float64(coldNS)/float64(warmNS), "speedup-x")
	}
}

// BenchmarkRebuildColdVsWarm measures the action cache over the
// Table-2 workload set: every app's extended image is rebuilt twice on
// fresh system sides sharing one on-disk action cache. The cold pass
// populates the cache; the warm pass must replay at least 90% of the
// toolchain invocations (reported via cache Stats) and produce
// byte-identical +coMre images.
func BenchmarkRebuildColdVsWarm(b *testing.B) {
	sys := sysprofile.X86Cluster()
	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		b.Fatal(err)
	}
	type built struct {
		name    string
		extTag  string
		distTag string
	}
	var apps []built
	for _, app := range workloads.Apps() {
		res, err := user.BuildExtended(app)
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, built{app.Name, res.ExtendedTag, res.DistTag})
	}

	// rebuildAll pulls and rebuilds every app on a fresh system side
	// wired to memo, returning the +coMre digests and the wall time.
	rebuildAll := func(memo *actioncache.Memoizer) (map[string]digest.Digest, int64) {
		digests := map[string]digest.Digest{}
		t0 := nowNano()
		for _, a := range apps {
			system, err := core.NewSystemSide(sys)
			if err != nil {
				b.Fatal(err)
			}
			system.ActionMemo = memo
			if err := system.Pull(user.Repo, a.extTag); err != nil {
				b.Fatal(err)
			}
			desc, _, err := system.Rebuild(a.distTag, adapter.DefaultAdapted(), nil)
			if err != nil {
				b.Fatal(err)
			}
			digests[a.name] = desc.Digest
		}
		return digests, nowNano() - t0
	}

	var coldStats, warmStats actioncache.Stats
	var coldNS, warmNS int64
	for i := 0; i < b.N; i++ {
		disk, err := actioncache.NewDiskCache(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		coldMemo := actioncache.NewMemoizer(disk)
		cold, cns := rebuildAll(coldMemo)
		warmMemo := actioncache.NewMemoizer(disk)
		warm, wns := rebuildAll(warmMemo)
		coldStats, warmStats = coldMemo.Stats(), warmMemo.Stats()
		coldNS, warmNS = cns, wns
		for name, d := range cold {
			if warm[name] != d {
				b.Fatalf("%s: warm rebuild digest %s differs from cold %s", name, warm[name], d)
			}
		}
		if warmStats.Misses > coldStats.Misses/10 {
			b.Fatalf("warm rebuild executed %d of %d actions, want <= 10%%",
				warmStats.Misses, coldStats.Misses)
		}
	}
	b.ReportMetric(float64(len(apps)), "images")
	b.ReportMetric(float64(coldStats.Misses), "cold-execs")
	b.ReportMetric(float64(warmStats.Misses), "warm-execs")
	if coldStats.Misses > 0 {
		b.ReportMetric(100*(1-float64(warmStats.Misses)/float64(coldStats.Misses)), "exec-cut-%")
	}
	b.ReportMetric(float64(coldNS)/1e6, "cold-ms")
	b.ReportMetric(float64(warmNS)/1e6, "warm-ms")
	if warmNS > 0 {
		b.ReportMetric(float64(coldNS)/float64(warmNS), "speedup-x")
	}
}

func BenchmarkFullUserBuild(b *testing.B) {
	app, err := workloads.Find("hpccg")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		user, err := core.NewUserSide(toolchain.ISAx86)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := user.BuildExtended(app); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemRebuildRedirect(b *testing.B) {
	sys := sysprofile.X86Cluster()
	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		b.Fatal(err)
	}
	app, err := workloads.Find("hpccg")
	if err != nil {
		b.Fatal(err)
	}
	res, err := user.BuildExtended(app)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		system, err := core.NewSystemSide(sys)
		if err != nil {
			b.Fatal(err)
		}
		if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
			b.Fatal(err)
		}
		if _, err := system.Adapt(res.DistTag, adapter.DefaultAdapted()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelPull measures the distribution subsystem over the
// Table-3 image set: every app's extended image is pushed to an
// in-process registry whose blob endpoints carry injected network
// latency, then the whole set is pulled serially (Workers=1) and
// concurrently (Workers=8) into fresh stores. Cross-image dedup means
// shared base layers transfer once per pull pass; the concurrent pass
// must be at least 2x faster than the serial one.
func BenchmarkParallelPull(b *testing.B) {
	srv := registry.NewServer()
	inner := srv.Handler()
	const blobLatency = 2 * time.Millisecond
	var blobGets int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.Contains(r.URL.Path, "/blobs/") {
			atomic.AddInt64(&blobGets, 1)
			time.Sleep(blobLatency)
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	user, err := core.NewUserSide(toolchain.ISAx86)
	if err != nil {
		b.Fatal(err)
	}
	push := registry.NewClient(ts.URL)
	push.Workers = 8
	var names []string
	for _, app := range workloads.Apps() {
		res, err := user.BuildExtended(app)
		if err != nil {
			b.Fatal(err)
		}
		if err := push.Push(context.Background(), user.Repo, res.ExtendedTag, app.Name, "v1"); err != nil {
			b.Fatal(err)
		}
		names = append(names, app.Name)
	}

	pull := func(workers int) (time.Duration, int64) {
		dst := oci.NewRepository()
		c := registry.NewClient(ts.URL)
		c.Workers = workers
		before := atomic.LoadInt64(&blobGets)
		t0 := time.Now()
		for _, name := range names {
			if err := c.Pull(context.Background(), dst, name, "v1", name); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(t0), atomic.LoadInt64(&blobGets) - before
	}

	var serial, parallel time.Duration
	var transfers int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial, transfers = pull(1)
		parallel, _ = pull(8)
	}
	speedup := float64(serial) / float64(parallel)
	b.ReportMetric(float64(serial)/1e6, "serial-ms")
	b.ReportMetric(float64(parallel)/1e6, "parallel-ms")
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(float64(transfers), "blob-transfers")
	b.ReportMetric(float64(len(names)), "images")
	if speedup < 2 {
		b.Errorf("parallel pull speedup %.2fx, want >= 2x", speedup)
	}
}

// BenchmarkFleetPullThroughput measures the registry fleet's horizontal
// read scaling: the Table-2 image set is pushed through a routing proxy
// backed first by one and then by three single-replica shards whose blob
// reads serialize behind a per-shard 2ms latency (modeling one registry
// node's service capacity), then pulled concurrently (Workers=8) through
// the proxy into a fresh store. With one shard every read queues behind
// that node's lock; with three the hash ring spreads the digests so
// reads proceed on three nodes at once. The proxy runs without a
// pull-through cache so every read pays the shard round-trip. The
// 3-shard pull must be measurably faster.
func BenchmarkFleetPullThroughput(b *testing.B) {
	const blobLatency = 2 * time.Millisecond

	user, err := core.NewUserSide(toolchain.ISAx86)
	if err != nil {
		b.Fatal(err)
	}
	type img struct{ name, localTag string }
	var images []img
	for _, app := range workloads.Apps() {
		res, err := user.BuildExtended(app)
		if err != nil {
			b.Fatal(err)
		}
		images = append(images, img{app.Name, res.ExtendedTag})
	}

	run := func(shardCount int) time.Duration {
		var groups []*fleet.ShardGroup
		var closers []func()
		defer func() {
			for _, c := range closers {
				c()
			}
		}()
		for i := 0; i < shardCount; i++ {
			srv := registry.NewServer()
			srv.TrustReferences = true
			inner := srv.Handler()
			mu := new(sync.Mutex) // one node: its reads serialize
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet && strings.Contains(r.URL.Path, "/blobs/") {
					mu.Lock()
					time.Sleep(blobLatency)
					mu.Unlock()
				}
				inner.ServeHTTP(w, r)
			}))
			closers = append(closers, ts.Close)
			g, err := fleet.NewShardGroup(fmt.Sprintf("shard%d", i+1), ts.URL)
			if err != nil {
				b.Fatal(err)
			}
			groups = append(groups, g)
		}
		p, err := fleet.NewProxy(groups, 0)
		if err != nil {
			b.Fatal(err)
		}
		pts := httptest.NewServer(p.Handler())
		defer pts.Close()

		push := registry.NewClient(pts.URL)
		push.Workers = 8
		for _, im := range images {
			if err := push.Push(context.Background(), user.Repo, im.localTag, im.name, "v1"); err != nil {
				b.Fatal(err)
			}
		}

		var wg sync.WaitGroup
		errs := make(chan error, len(images))
		t0 := time.Now()
		for _, im := range images {
			wg.Add(1)
			go func(im img) {
				defer wg.Done()
				c := registry.NewClient(pts.URL)
				c.Workers = 8
				errs <- c.Pull(context.Background(), oci.NewRepository(), im.name, "v1", im.name)
			}(im)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		close(errs)
		for err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		return elapsed
	}

	var one, three time.Duration
	for i := 0; i < b.N; i++ {
		one = run(1)
		three = run(3)
	}
	b.ReportMetric(float64(one)/1e6, "shards1-ms")
	b.ReportMetric(float64(three)/1e6, "shards3-ms")
	speedup := float64(one) / float64(three)
	b.ReportMetric(speedup, "shards3-vs-1-x")
	if speedup < 1.2 {
		b.Errorf("3-shard pull speedup %.2fx over 1 shard, want >= 1.2x", speedup)
	}
}

// BenchmarkRemoteExecScaling measures the build farm's workers-vs-wall-
// clock curve: the hpl rebuild (six independent compiles plus a link) is
// executed entirely remotely against farms of 1, 2, 4 and 8 single-slot
// workers whose per-action delay simulates real compile cost. Each farm
// is fresh — new scheduler, registry and workers, no shared action
// cache — so every point measures uncached remote execution. The 1->4
// speedup must be measurable (> 1.2x).
func BenchmarkRemoteExecScaling(b *testing.B) {
	sys := sysprofile.X86Cluster()
	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		b.Fatal(err)
	}
	app, err := workloads.Find("hpl")
	if err != nil {
		b.Fatal(err)
	}
	res, err := user.BuildExtended(app)
	if err != nil {
		b.Fatal(err)
	}

	const execDelay = 40 * time.Millisecond
	run := func(workers int) time.Duration {
		sched := remoteexec.NewScheduler()
		reg := registry.NewServer()
		mux := http.NewServeMux()
		mux.Handle(remoteexec.APIPrefix+"/", sched.Handler())
		mux.Handle("/", reg.Handler())
		ts := httptest.NewServer(mux)
		defer ts.Close()

		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		defer func() {
			cancel()
			wg.Wait()
		}()
		for i := 0; i < workers; i++ {
			w := remoteexec.NewWorker(ts.URL, sys, sys.Toolchains)
			w.Slots = 1
			w.ExecDelay = execDelay
			w.Name = fmt.Sprintf("bench-%d", i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = w.Run(ctx)
			}()
		}
		for len(sched.Status().Workers) < workers {
			time.Sleep(time.Millisecond)
		}

		system, err := core.NewSystemSide(sys)
		if err != nil {
			b.Fatal(err)
		}
		system.RebuildWorkers = 8
		farm := remoteexec.NewExecutor(ts.URL, sys, sys.Toolchains)
		system.RemoteExec = farm
		if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if _, _, err := system.Rebuild(res.DistTag, adapter.DefaultAdapted(), nil); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(t0)
		st := farm.Stats()
		if st.Remote == 0 {
			b.Fatalf("%d workers: no action executed remotely (%s)", workers, st)
		}
		if st.Errors > 0 {
			b.Fatalf("%d workers: %d farm errors (%s)", workers, st.Errors, st)
		}
		return elapsed
	}

	counts := []int{1, 2, 4, 8}
	wall := map[int]time.Duration{}
	for i := 0; i < b.N; i++ {
		for _, n := range counts {
			wall[n] = run(n)
		}
	}
	for _, n := range counts {
		b.ReportMetric(float64(wall[n])/1e6, fmt.Sprintf("w%d-ms", n))
	}
	speedup := float64(wall[1]) / float64(wall[4])
	b.ReportMetric(speedup, "speedup-1to4-x")
	if speedup < 1.2 {
		b.Errorf("1->4 worker speedup %.2fx, want > 1.2x", speedup)
	}
}

// nowNano reads the monotonic clock for intra-benchmark phase timing.
func nowNano() int64 { return time.Now().UnixNano() }
