package distrib

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"comtainer/internal/digest"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("layer bytes of a heavy HPC image")
	d, n, err := s.Ingest(bytes.NewReader(content), "")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Errorf("ingested %d bytes, want %d", n, len(content))
	}
	if d != digest.FromBytes(content) {
		t.Errorf("ingest digest = %s", d)
	}
	if !s.Has(d) {
		t.Error("Has = false after ingest")
	}
	r, size, err := s.Open(d)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if size != int64(len(content)) {
		t.Errorf("size = %d, want %d", size, len(content))
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("content round-trip mismatch")
	}
	// Blob lives at the sharded path blobs/sha256/<ab>/<hex>.
	shard := filepath.Join(s.Root(), "blobs", "sha256", d.Hex()[:2], d.Hex())
	if _, err := os.Stat(shard); err != nil {
		t.Errorf("blob not at sharded path: %v", err)
	}
}

func TestDiskStoreIngestVerifies(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wrong := digest.FromString("something else")
	if _, _, err := s.Ingest(strings.NewReader("content"), wrong); err == nil {
		t.Fatal("mismatched digest accepted")
	}
	if s.Has(wrong) {
		t.Error("corrupt blob became addressable")
	}
	// The failed ingest must not leak a temp file.
	entries, err := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d temp files leaked", len(entries))
	}
}

func TestDiskStoreVerifyOnRead(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := s.Ingest(strings.NewReader("pristine"), "")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the blob behind the store's back.
	path := filepath.Join(s.Root(), "blobs", "sha256", d.Hex()[:2], d.Hex())
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, _, err := s.Open(d)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("reading a corrupt blob did not fail verification")
	}
}

func TestDiskStoreDelete(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := s.Ingest(strings.NewReader("doomed"), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(d); err != nil {
		t.Fatal(err)
	}
	if s.Has(d) {
		t.Error("blob survives delete")
	}
	if err := s.Delete(d); err != nil {
		t.Errorf("double delete errored: %v", err)
	}
}

// TestDiskStoreCrashRecovery simulates a crash: blobs written, a stale
// temp file left behind, then the directory is reopened by a fresh
// store. Every blob must still be present and verify, and the temp
// garbage must be gone.
func TestDiskStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []digest.Digest
	for i := 0; i < 20; i++ {
		d, _, err := s.Ingest(strings.NewReader(fmt.Sprintf("blob %d content", i)), "")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	// A crash mid-ingest leaves a partial temp file.
	if err := os.WriteFile(filepath.Join(dir, "tmp", "ingest-crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range want {
		if !reopened.Has(d) {
			t.Fatalf("blob %s lost across reopen", d.Short())
		}
		r, _, err := reopened.Open(d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			t.Fatalf("blob %s failed verify-on-read after reopen: %v", d.Short(), err)
		}
		if digest.FromBytes(b) != d {
			t.Fatalf("blob %s content mismatch after reopen", d.Short())
		}
	}
	if got := reopened.Digests(); len(got) != len(want) {
		t.Errorf("reopened store has %d blobs, want %d", len(got), len(want))
	}
	entries, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("crash garbage not cleared: %d temp files remain", len(entries))
	}
}

func TestDiskStoreConcurrentIngest(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("shared layer "), 1024)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Ingest(bytes.NewReader(content), ""); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Len(); got != 1 {
		t.Errorf("store holds %d blobs after racing identical ingests, want 1", got)
	}
}

func TestDiskStoreTotalSize(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest(strings.NewReader("abcd"), ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest(strings.NewReader("efghij"), ""); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalSize(); got != 10 {
		t.Errorf("TotalSize = %d, want 10", got)
	}
}
