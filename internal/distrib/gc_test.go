package distrib

import (
	"fmt"
	"math/rand"
	"testing"

	"comtainer/internal/digest"
	"comtainer/internal/oci"
)

// buildImage writes nLayers random layer blobs, a config and a
// manifest into s, returning the manifest descriptor.
func buildImage(t *testing.T, s *oci.Store, rng *rand.Rand, nLayers int) oci.Descriptor {
	t.Helper()
	var layers []oci.Descriptor
	for i := 0; i < nLayers; i++ {
		content := make([]byte, 64+rng.Intn(256))
		rng.Read(content)
		d := s.Put(content)
		layers = append(layers, oci.Descriptor{
			MediaType: oci.MediaTypeLayer, Digest: d, Size: int64(len(content)),
		})
	}
	cfg, err := oci.PutJSON(s, oci.ImageConfig{Architecture: "amd64", OS: "linux"}, oci.MediaTypeConfig)
	if err != nil {
		t.Fatal(err)
	}
	m := oci.Manifest{SchemaVersion: 2, MediaType: oci.MediaTypeManifest, Config: cfg, Layers: layers}
	desc, err := oci.PutJSON(s, m, oci.MediaTypeManifest)
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// reachableFrom collects every digest a root descriptor keeps alive.
func reachableFrom(t *testing.T, s *oci.Store, root oci.Descriptor) map[digest.Digest]bool {
	t.Helper()
	out := map[digest.Digest]bool{root.Digest: true}
	var idx oci.Index
	if err := oci.GetJSON(s, root.Digest, &idx); err == nil && len(idx.Manifests) > 0 {
		for _, child := range idx.Manifests {
			for d := range reachableFrom(t, s, child) {
				out[d] = true
			}
		}
		return out
	}
	m, err := oci.LoadManifest(s, root.Digest)
	if err != nil {
		t.Fatal(err)
	}
	out[m.Config.Digest] = true
	for _, l := range m.Layers {
		out[l.Digest] = true
	}
	return out
}

// TestGCProperty builds random forests of images, manifest lists and
// loose garbage blobs, tags a random subset, and checks the invariant:
// GC deletes every unreachable blob and never a reachable one.
func TestGCProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		s := oci.NewStore()

		// Some images, each with 1–5 layers; some grouped into
		// manifest lists; some loose garbage blobs.
		var images []oci.Descriptor
		for i := 0; i < 2+rng.Intn(5); i++ {
			images = append(images, buildImage(t, s, rng, 1+rng.Intn(5)))
		}
		var lists []oci.Descriptor
		if len(images) >= 2 && rng.Intn(2) == 0 {
			entries := []oci.Descriptor{images[0], images[1]}
			entries[0].Platform = &oci.Platform{Architecture: "amd64", OS: "linux"}
			entries[1].Platform = &oci.Platform{Architecture: "arm64", OS: "linux"}
			list, err := oci.WriteManifestList(s, entries)
			if err != nil {
				t.Fatal(err)
			}
			lists = append(lists, list)
		}
		for i := 0; i < rng.Intn(6); i++ {
			s.Put([]byte(fmt.Sprintf("garbage %d.%d", iter, i)))
		}

		// Tag a random subset of images and every list.
		var roots []oci.Descriptor
		for _, img := range images {
			if rng.Intn(2) == 0 {
				roots = append(roots, img)
			}
		}
		roots = append(roots, lists...)

		wantLive := map[digest.Digest]bool{}
		for _, root := range roots {
			for d := range reachableFrom(t, s, root) {
				wantLive[d] = true
			}
		}
		before := len(s.Digests())

		dropped, err := GC(s, roots)
		if err != nil {
			t.Fatal(err)
		}
		after := s.Digests()
		if len(after) != len(wantLive) {
			t.Fatalf("iter %d: %d blobs survive GC, want %d", iter, len(after), len(wantLive))
		}
		for _, d := range after {
			if !wantLive[d] {
				t.Fatalf("iter %d: unreachable blob %s survived", iter, d.Short())
			}
		}
		for d := range wantLive {
			if !s.Has(d) {
				t.Fatalf("iter %d: reachable blob %s was deleted", iter, d.Short())
			}
		}
		if dropped != before-len(wantLive) {
			t.Fatalf("iter %d: dropped = %d, want %d", iter, dropped, before-len(wantLive))
		}
	}
}

// TestGCMissingRootRefuses checks GC deletes nothing when a root's
// manifest blob is absent — a partially-visible tree must never cause
// collection.
func TestGCMissingRootRefuses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := oci.NewStore()
	img := buildImage(t, s, rng, 2)
	ghost := oci.Descriptor{MediaType: oci.MediaTypeManifest, Digest: digest.FromString("missing")}
	before := len(s.Digests())
	if _, err := GC(s, []oci.Descriptor{img, ghost}); err == nil {
		t.Fatal("GC with a missing root did not error")
	}
	if len(s.Digests()) != before {
		t.Error("GC deleted blobs despite erroring")
	}
}

// TestGCProtectedPinsInFlightPush models a sweep racing a concurrent
// push: blobs already committed but not yet referenced by any manifest
// (the window between a blob PUT and the closing manifest PUT) are
// pinned by the protect callback and must survive, while equally
// unreachable garbage outside the pin set is still collected. Once the
// protection lapses — the grace window a registry gives fresh commits —
// a second sweep reclaims them.
func TestGCProtectedPinsInFlightPush(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := oci.NewStore()
	tagged := buildImage(t, s, rng, 2)

	inflight := map[digest.Digest]bool{}
	for i := 0; i < 3; i++ {
		content := make([]byte, 128)
		rng.Read(content)
		inflight[s.Put(content)] = true
	}
	garbage := s.Put([]byte("stale orphan from long ago"))

	dropped, err := GCProtected(s, []oci.Descriptor{tagged}, func(d digest.Digest) bool {
		return inflight[d]
	})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || s.Has(garbage) {
		t.Errorf("dropped = %d, stale garbage present = %v; want exactly the unpinned orphan gone", dropped, s.Has(garbage))
	}
	for d := range inflight {
		if !s.Has(d) {
			t.Errorf("in-flight blob %s collected despite protection", d.Short())
		}
	}

	// Grace expired: the same blobs are plain garbage now.
	dropped, err = GCProtected(s, []oci.Descriptor{tagged}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != len(inflight) {
		t.Errorf("post-grace sweep dropped %d blobs, want %d", dropped, len(inflight))
	}
	for d := range inflight {
		if s.Has(d) {
			t.Errorf("blob %s survived the post-grace sweep", d.Short())
		}
	}
}

// TestGCOnDisk runs the collector against a DiskStore to cover the
// persistent Delete path.
func TestGCOnDisk(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := oci.NewStore()
	rng := rand.New(rand.NewSource(3))
	img := buildImage(t, mem, rng, 3)
	for _, d := range mem.Digests() {
		b, err := mem.Get(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := WriteBlob(disk, b); err != nil {
			t.Fatal(err)
		}
	}
	garbage, err := WriteBlob(disk, []byte("orphaned layer"))
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := GC(disk, []oci.Descriptor{img})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || disk.Has(garbage) {
		t.Errorf("dropped = %d, garbage present = %v", dropped, disk.Has(garbage))
	}
	if len(disk.Digests()) != len(mem.Digests()) {
		t.Errorf("disk holds %d blobs, want %d", len(disk.Digests()), len(mem.Digests()))
	}
}
