package distrib

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"comtainer/internal/digest"
)

// ErrRangeMismatch reports a chunk whose starting offset does not line
// up with the bytes already received — the signal a resuming client
// uses (HTTP 416) to re-query the committed offset and retry from
// there.
var ErrRangeMismatch = errors.New("distrib: upload range mismatch")

// ErrUploadClosed reports an upload that was already committed or
// cancelled.
var ErrUploadClosed = errors.New("distrib: upload closed")

// UploadManager tracks in-progress blob upload sessions for a registry
// server. Sessions spool to files under a directory when one is given
// (persistent stores) or to memory buffers otherwise.
//
// With a positive TTL, sessions idle longer than it are swept — spool
// file and all — the next time a session starts (lazy, so no
// background goroutine), or whenever SweepExpired is called. A client
// that abandons an upload mid-push therefore cannot leak spool space
// forever.
type UploadManager struct {
	spoolDir string

	// TTL is how long an idle session survives; zero disables expiry.
	TTL time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time

	mu       sync.Mutex
	sessions map[string]*Upload
}

func (m *UploadManager) clock() time.Time {
	if m.Now != nil {
		return m.Now()
	}
	return time.Now()
}

// NewUploadManager returns a manager spooling sessions under spoolDir,
// or in memory when spoolDir is empty.
func NewUploadManager(spoolDir string) *UploadManager {
	return &UploadManager{spoolDir: spoolDir, sessions: make(map[string]*Upload)}
}

// Upload is one resumable blob upload session.
type Upload struct {
	// ID is the session identifier carried in upload URLs.
	ID string
	// Name is the repository the upload was opened against.
	Name string

	mu      sync.Mutex
	size    int64
	file    *os.File // spool file, nil when buffering in memory
	buf     bytes.Buffer
	closed  bool
	touched time.Time
}

func (u *Upload) touch(t time.Time) {
	u.mu.Lock()
	u.touched = t
	u.mu.Unlock()
}

func (u *Upload) touchedAt() time.Time {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.touched
}

// Start opens a new upload session for repository name, first sweeping
// any sessions whose TTL has lapsed.
func (m *UploadManager) Start(name string) (*Upload, error) {
	m.SweepExpired()
	idBytes := make([]byte, 16)
	if _, err := rand.Read(idBytes); err != nil {
		return nil, fmt.Errorf("distrib: generating upload id: %w", err)
	}
	u := &Upload{ID: hex.EncodeToString(idBytes), Name: name, touched: m.clock()}
	if m.spoolDir != "" {
		if err := os.MkdirAll(m.spoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("distrib: creating spool dir: %w", err)
		}
		f, err := os.Create(filepath.Join(m.spoolDir, "upload-"+u.ID))
		if err != nil {
			return nil, fmt.Errorf("distrib: creating spool file: %w", err)
		}
		u.file = f
	}
	m.mu.Lock()
	m.sessions[u.ID] = u
	m.mu.Unlock()
	return u, nil
}

// Get returns the session with the given id, refreshing its idle
// timer: every protocol request resolves the session through here, so
// an upload making any progress at all never expires.
func (m *UploadManager) Get(id string) (*Upload, bool) {
	m.mu.Lock()
	u, ok := m.sessions[id]
	m.mu.Unlock()
	if ok {
		u.touch(m.clock())
	}
	return u, ok
}

// SweepExpired cancels every session idle longer than TTL, removing
// its spool file, and returns the swept session IDs sorted. A zero TTL
// makes it a no-op.
func (m *UploadManager) SweepExpired() []string {
	if m.TTL <= 0 {
		return nil
	}
	cutoff := m.clock().Add(-m.TTL)
	m.mu.Lock()
	var stale []*Upload
	for _, u := range m.sessions {
		if u.touchedAt().Before(cutoff) {
			stale = append(stale, u)
		}
	}
	m.mu.Unlock()
	ids := make([]string, 0, len(stale))
	for _, u := range stale {
		m.Cancel(u)
		ids = append(ids, u.ID)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of live sessions.
func (m *UploadManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// drop forgets the session and removes its spool file.
func (m *UploadManager) drop(u *Upload) {
	m.mu.Lock()
	delete(m.sessions, u.ID)
	m.mu.Unlock()
	if u.file != nil {
		name := u.file.Name()
		u.file.Close()
		os.Remove(name)
	}
}

// Size returns the number of bytes received so far.
func (u *Upload) Size() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.size
}

// Append receives one chunk. When expectStart >= 0 it must equal the
// bytes already received, otherwise ErrRangeMismatch is returned and
// nothing is consumed from r; pass -1 to append unconditionally.
// Returns the total size after the append. The copy runs under the
// session mutex on purpose: u.mu is what serializes writers of the
// one spool file, so "outside the lock" does not exist here.
//
//comtainer:allow lockio -- the session mutex is the spool-file serializer
func (u *Upload) Append(r io.Reader, expectStart int64) (int64, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return u.size, ErrUploadClosed
	}
	if expectStart >= 0 && expectStart != u.size {
		return u.size, fmt.Errorf("%w: chunk starts at %d, upload is at %d", ErrRangeMismatch, expectStart, u.size)
	}
	var w io.Writer = &u.buf
	if u.file != nil {
		w = u.file
	}
	n, err := io.Copy(w, r)
	u.size += n
	if err != nil {
		return u.size, fmt.Errorf("distrib: receiving chunk: %w", err)
	}
	return u.size, nil
}

// Commit finalizes the upload into sink, verifying against want (which
// must be non-empty). On success the session ends; a failed commit
// leaves the session open so a client can inspect the offset, correct
// and retry.
func (m *UploadManager) Commit(u *Upload, sink BlobSink, want digest.Digest) (digest.Digest, int64, error) {
	if err := want.Validate(); err != nil {
		return "", 0, err
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return "", 0, ErrUploadClosed
	}
	var content io.Reader
	if u.file != nil {
		if _, err := u.file.Seek(0, io.SeekStart); err != nil {
			u.mu.Unlock()
			return "", 0, fmt.Errorf("distrib: rewinding spool: %w", err)
		}
		content = u.file
	} else {
		content = bytes.NewReader(u.buf.Bytes())
	}
	d, n, err := sink.Ingest(content, want)
	if err != nil {
		u.mu.Unlock()
		return "", 0, err
	}
	u.closed = true
	u.mu.Unlock()
	m.drop(u)
	return d, n, nil
}

// Cancel aborts the session and discards received bytes.
func (m *UploadManager) Cancel(u *Upload) {
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	m.drop(u)
}
