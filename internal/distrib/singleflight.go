package distrib

import (
	"context"
	"sync"

	"comtainer/internal/digest"
)

// flightGroup deduplicates concurrent work keyed by blob digest: when
// several goroutines ask for the same in-flight blob, one fetches and
// the rest wait for its result — the classic singleflight pattern,
// specialized to digests so a shared pull of one image never fetches a
// layer twice.
type flightGroup struct {
	mu    sync.Mutex
	calls map[digest.Digest]*flightCall
}

type flightCall struct {
	done chan struct{}
	err  error
}

// do runs fn for key, unless a call for key is already in flight, in
// which case it waits for that call and returns its error. A waiter
// whose ctx is cancelled stops waiting immediately (the in-flight
// call itself keeps running for the caller that owns it).
func (g *flightGroup) do(ctx context.Context, key digest.Digest, fn func() error) error {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[digest.Digest]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.err
}
