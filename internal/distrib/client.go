package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"comtainer/internal/core/ctxutil"
	"comtainer/internal/digest"
	"comtainer/internal/oci"
)

// Client is a concurrent distribution client: blob transfers fan out
// over a bounded worker pool, in-flight fetches of the same digest are
// deduplicated (singleflight), blobs the other side already holds are
// skipped, and transient failures (5xx, network errors, short reads)
// retry with exponential backoff.
//
// Every method takes a context: cancelling it aborts in-flight
// requests and any retry/backoff wait within one timer tick — there is
// no uncancellable sleep anywhere on the retry path. Interrupted blob
// downloads resume with HTTP Range requests from the bytes already
// received instead of restarting.
type Client struct {
	// Base is the registry root, e.g. "http://127.0.0.1:5000".
	Base string
	// Resolver, when set, maps a blob digest to the base URL of the
	// endpoint owning it — fleet-aware endpoint resolution. Blob
	// operations (HEAD probe, chunked upload, fetch) go straight to the
	// resolved endpoint; manifest and tag operations stay on Base (the
	// front-end proxy, which fans them out). A digest the resolver
	// declines (ok false) falls back to Base. Blob GETs answered with a
	// 307/308 redirect (a routing proxy deferring to the owning shard)
	// are followed transparently by the underlying http.Client.
	Resolver func(d digest.Digest) (base string, ok bool)
	// HTTP is the transport; defaults to http.DefaultClient.
	HTTP *http.Client
	// Workers bounds parallel blob transfers per image (default 4).
	Workers int
	// ChunkSize is the PATCH chunk size for uploads (default 1 MiB).
	ChunkSize int64
	// Retries is how many times a transient failure is retried (default 3).
	Retries int
	// RetryBackoff is the initial backoff, doubled per retry (default 25ms).
	RetryBackoff time.Duration
	// OpTimeout, when positive, bounds each network attempt with a
	// deadline; the attempt is retried (the parent context permitting)
	// rather than hanging on a stalled registry. Zero disables the
	// per-attempt deadline.
	OpTimeout time.Duration

	flights flightGroup
}

// NewClient returns a client for the registry at base with default
// concurrency and retry settings.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 4
}

func (c *Client) chunkSize() int64 {
	if c.ChunkSize > 0 {
		return c.ChunkSize
	}
	return 1 << 20
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 3
}

func (c *Client) backoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 25 * time.Millisecond
}

func (c *Client) url(parts ...string) string {
	return c.Base + "/v2/" + strings.Join(parts, "/")
}

// baseFor resolves the endpoint owning blob d, falling back to Base.
func (c *Client) baseFor(d digest.Digest) string {
	if c.Resolver != nil {
		if b, ok := c.Resolver(d); ok && b != "" {
			return strings.TrimRight(b, "/")
		}
	}
	return c.Base
}

// blobURL builds a blob-scoped URL against the endpoint owning d.
func (c *Client) blobURL(d digest.Digest, parts ...string) string {
	return c.baseFor(d) + "/v2/" + strings.Join(parts, "/")
}

// httpStatusError is a non-2xx response; its code drives the
// transient-vs-permanent retry decision.
type httpStatusError struct {
	Code   int
	Status string
	URL    string
	Body   string
}

func (e *httpStatusError) Error() string {
	msg := fmt.Sprintf("distrib: %s: status %s", e.URL, e.Status)
	if e.Body != "" {
		msg += ": " + strings.TrimSpace(e.Body)
	}
	return msg
}

// statusError drains and closes resp and returns an httpStatusError.
func statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	return &httpStatusError{
		Code:   resp.StatusCode,
		Status: resp.Status,
		URL:    resp.Request.URL.String(),
		Body:   string(body),
	}
}

// IsNotFound reports whether err is a definitive 404 from the
// registry — the reference does not exist, as opposed to a transport
// or server failure. Callers use it to tell "cache miss" from "cache
// broken".
func IsNotFound(err error) bool {
	var he *httpStatusError
	return errors.As(err, &he) && he.Code == http.StatusNotFound
}

// transient reports whether err is worth retrying.
//
// Retryable: server-side statuses (5xx, 429, 408, and 416 — the
// resume-offset handshake restarts from scratch), truncated bodies
// (io.ErrUnexpectedEOF), connection resets/refusals and other
// transport-level failures, and per-attempt deadline expiry.
//
// Permanent: other 4xx client errors, and context cancellation — a
// caller that cancelled must never be held for another attempt.
func transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var he *httpStatusError
	if errors.As(err, &he) {
		return he.Code >= 500 ||
			he.Code == http.StatusTooManyRequests ||
			he.Code == http.StatusRequestTimeout ||
			he.Code == http.StatusRequestedRangeNotSatisfiable
	}
	switch {
	case errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, context.DeadlineExceeded):
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// Unknown failure (e.g. a digest mismatch from a corrupted body):
	// assume transient; the retry budget bounds the damage.
	return true
}

// attempt runs fn once under the per-attempt deadline, if configured.
func (c *Client) attempt(ctx context.Context, fn func(context.Context) error) error {
	if c.OpTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.OpTimeout)
		defer cancel()
	}
	return fn(ctx)
}

// withRetry runs fn, retrying transient failures with exponential
// backoff up to c.Retries times. Cancelling ctx aborts both the
// in-flight attempt and any backoff wait.
func (c *Client) withRetry(ctx context.Context, fn func(context.Context) error) error {
	backoff := c.backoff()
	var err error
	for attempt := 0; ; attempt++ {
		err = c.attempt(ctx, fn)
		if err == nil || !transient(err) || attempt >= c.retries() {
			return err
		}
		if ctx.Err() != nil {
			// The parent was cancelled (fn may have surfaced it as a
			// wrapped transport error): stop retrying immediately and
			// report the cancellation, keeping the last failure for
			// the log line.
			return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), err)
		}
		if serr := ctxutil.Sleep(ctx, backoff); serr != nil {
			return fmt.Errorf("%w (last attempt: %v)", serr, err)
		}
		backoff *= 2
	}
}

// runPool runs tasks with at most c.Workers in flight and returns the
// first error (all tasks are waited for either way).
func (c *Client) runPool(tasks []func() error) error {
	sem := make(chan struct{}, c.workers())
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for _, task := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(task func() error) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := task(); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(task)
	}
	wg.Wait()
	return first
}

// get issues a GET with the context attached.
func (c *Client) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.httpClient().Do(req)
}

// Ping checks the registry is alive.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.get(ctx, c.Base+"/v2/")
	if err != nil {
		return fmt.Errorf("distrib: ping: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("distrib: ping: status %s", resp.Status)
	}
	return nil
}

// ListTags returns the sorted tags of repository name.
func (c *Client) ListTags(ctx context.Context, name string) ([]string, error) {
	resp, err := c.get(ctx, c.url(name, "tags", "list"))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Tags []string `json:"tags"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("distrib: decoding tags list: %w", err)
	}
	return out.Tags, nil
}

// HasBlob asks the registry (HEAD) whether it already holds blob d —
// the cross-image dedup probe.
func (c *Client) HasBlob(ctx context.Context, name string, d digest.Digest) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.blobURL(d, name, "blobs", string(d)), nil)
	if err != nil {
		return false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("distrib: HEAD blob %s: status %s", d.Short(), resp.Status)
	}
}

// --- push side ---

// startUpload opens an upload session for blob d on the endpoint that
// owns it and returns the session's absolute URL.
func (c *Client) startUpload(ctx context.Context, name string, d digest.Digest) (string, error) {
	base := c.baseFor(d)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v2/"+name+"/blobs/uploads/", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("distrib: starting upload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", statusError(resp)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		return "", fmt.Errorf("distrib: upload session has no Location")
	}
	if strings.HasPrefix(loc, "/") {
		loc = base + loc
	}
	return loc, nil
}

// uploadOffset queries a session for its committed offset.
func (c *Client) uploadOffset(ctx context.Context, loc string) (int64, error) {
	resp, err := c.get(ctx, loc)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return 0, statusError(resp)
	}
	return parseUploadRange(resp.Header.Get("Range"))
}

// parseUploadRange turns a session "Range: 0-<end>" header into the
// next write offset. "0-0" means nothing received (the docker
// convention for an empty session).
func parseUploadRange(rng string) (int64, error) {
	start, end, ok := strings.Cut(rng, "-")
	if !ok || start != "0" {
		return 0, fmt.Errorf("distrib: malformed upload range %q", rng)
	}
	n, err := strconv.ParseInt(end, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("distrib: malformed upload range %q", rng)
	}
	if n == 0 {
		return 0, nil
	}
	return n + 1, nil
}

// sendChunks PATCHes the remainder of blob d starting at offset.
func (c *Client) sendChunks(ctx context.Context, loc string, src BlobSource, d digest.Digest, offset int64) error {
	r, size, err := src.Open(d)
	if err != nil {
		return err
	}
	defer r.Close()
	if offset > 0 {
		if _, err := io.CopyN(io.Discard, r, offset); err != nil {
			return fmt.Errorf("distrib: seeking to resume offset %d: %w", offset, err)
		}
	}
	buf := make([]byte, c.chunkSize())
	for offset < size {
		n, err := io.ReadFull(r, buf)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			err = nil
		}
		if err != nil {
			return fmt.Errorf("distrib: reading blob %s: %w", d.Short(), err)
		}
		if n == 0 {
			break
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPatch, loc, bytes.NewReader(buf[:n]))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set("Content-Range", fmt.Sprintf("%d-%d", offset, offset+int64(n)-1))
		req.ContentLength = int64(n)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return fmt.Errorf("distrib: uploading chunk of %s: %w", d.Short(), err)
		}
		if resp.StatusCode != http.StatusAccepted {
			return statusError(resp)
		}
		resp.Body.Close()
		offset += int64(n)
	}
	return nil
}

// finalizeUpload PUTs the digest to close the session.
func (c *Client) finalizeUpload(ctx context.Context, loc string, d digest.Digest) error {
	sep := "?"
	if strings.Contains(loc, "?") {
		sep = "&"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, loc+sep+"digest="+string(d), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("distrib: finalizing upload of %s: %w", d.Short(), err)
	}
	if resp.StatusCode != http.StatusCreated {
		return statusError(resp)
	}
	resp.Body.Close()
	return nil
}

// PushBlob uploads blob d from src into repository name using the
// chunked upload protocol. Blobs the registry already holds are
// skipped. A transfer interrupted mid-PATCH resumes from the offset
// the server reports rather than restarting.
func (c *Client) PushBlob(ctx context.Context, name string, src BlobSource, d digest.Digest) error {
	if ok, err := c.HasBlob(ctx, name, d); err == nil && ok {
		return nil
	}
	return c.withRetry(ctx, func(ctx context.Context) error {
		loc, err := c.startUpload(ctx, name, d)
		if err != nil {
			return err
		}
		backoff := c.backoff()
		var offset int64
		for attempt := 0; ; attempt++ {
			err := c.sendChunks(ctx, loc, src, d, offset)
			if err == nil {
				return c.finalizeUpload(ctx, loc, d)
			}
			if !transient(err) || attempt >= c.retries() {
				return err
			}
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("%w (last attempt: %v)", cerr, err)
			}
			if serr := ctxutil.Sleep(ctx, backoff); serr != nil {
				return fmt.Errorf("%w (last attempt: %v)", serr, err)
			}
			backoff *= 2
			// Resume from the server's committed offset; if the
			// session itself is gone, surface the original error so
			// the outer retry opens a fresh one.
			off, oerr := c.uploadOffset(ctx, loc)
			if oerr != nil {
				return err
			}
			offset = off
		}
	})
}

// PushImage uploads the image (or manifest list) named by desc from
// src as name:tag: every referenced blob first — in parallel — then
// the manifest, so the registry never sees a manifest with dangling
// references.
func (c *Client) PushImage(ctx context.Context, src BlobSource, desc oci.Descriptor, name, tag string) error {
	raw, err := ReadBlob(src, desc.Digest)
	if err != nil {
		return fmt.Errorf("distrib: loading manifest %s: %w", desc.Digest.Short(), err)
	}
	var refs manifestRefs
	if err := json.Unmarshal(raw, &refs); err != nil {
		return fmt.Errorf("distrib: decoding manifest %s: %w", desc.Digest.Short(), err)
	}
	if len(refs.Manifests) > 0 {
		// Manifest list: push each platform image by digest first.
		for _, child := range refs.Manifests {
			if err := c.PushImage(ctx, src, child, name, string(child.Digest)); err != nil {
				return err
			}
		}
	} else {
		var blobs []oci.Descriptor
		if refs.Config != nil && refs.Config.Digest != "" {
			blobs = append(blobs, *refs.Config)
		}
		blobs = append(blobs, refs.Layers...)
		// Fail fast if the source is missing a referenced blob: the
		// registry would reject the manifest anyway.
		for _, bd := range blobs {
			if !src.Has(bd.Digest) {
				return fmt.Errorf("distrib: source is missing referenced blob %s", bd.Digest)
			}
		}
		tasks := make([]func() error, len(blobs))
		for i, bd := range blobs {
			bd := bd
			tasks[i] = func() error { return c.PushBlob(ctx, name, src, bd.Digest) }
		}
		if err := c.runPool(tasks); err != nil {
			return err
		}
	}
	mediaType := desc.MediaType
	if mediaType == "" {
		mediaType = oci.MediaTypeManifest
		if len(refs.Manifests) > 0 {
			mediaType = oci.MediaTypeIndex
		}
	}
	return c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url(name, "manifests", tag), bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", mediaType)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return fmt.Errorf("distrib: pushing manifest: %w", err)
		}
		if resp.StatusCode != http.StatusCreated {
			return statusError(resp)
		}
		resp.Body.Close()
		return nil
	})
}

// --- pull side ---

// FetchManifest retrieves the manifest (or index) at name:ref and
// returns its bytes, digest and media type. The digest is verified
// against the Docker-Content-Digest header and, for digest refs, the
// ref itself.
func (c *Client) FetchManifest(ctx context.Context, name, ref string) ([]byte, digest.Digest, string, error) {
	var body []byte
	var mediaType string
	err := c.withRetry(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(name, "manifests", ref), nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", oci.MediaTypeManifest+", "+oci.MediaTypeIndex)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return fmt.Errorf("distrib: fetching manifest %s:%s: %w", name, ref, err)
		}
		if resp.StatusCode != http.StatusOK {
			return statusError(resp)
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		if err != nil {
			return fmt.Errorf("distrib: reading manifest: %w", err)
		}
		mediaType = resp.Header.Get("Content-Type")
		if hd := resp.Header.Get("Docker-Content-Digest"); hd != "" {
			want, err := digest.Parse(hd)
			if err != nil {
				return fmt.Errorf("distrib: malformed Docker-Content-Digest header %q: %w", hd, err)
			}
			if got := digest.FromBytes(body); want != got {
				return fmt.Errorf("distrib: manifest digest mismatch: header %s, content %s", want.Short(), got.Short())
			}
		}
		return nil
	})
	if err != nil {
		return nil, "", "", err
	}
	d := digest.FromBytes(body)
	if want, perr := digest.Parse(ref); perr == nil && want != d {
		return nil, "", "", fmt.Errorf("distrib: manifest %s served wrong content %s", want.Short(), d.Short())
	}
	return body, d, mediaType, nil
}

// FetchBlob downloads blob d from repository name into dst, verifying
// the digest as it streams. Concurrent fetches of the same digest
// collapse into one transfer.
func (c *Client) FetchBlob(ctx context.Context, dst Store, name string, d digest.Digest) error {
	return c.fetchBlob(ctx, dst, name, d)
}

// fetchBlob downloads blob d from repository name into dst. The bytes
// received so far survive across retries: a transfer cut mid-stream
// resumes with a Range request from the committed offset, and only a
// digest mismatch (the accumulated bytes are wrong, not merely
// incomplete) restarts from scratch. Concurrent fetches of the same
// digest collapse into one transfer; waiters honor their context.
func (c *Client) fetchBlob(ctx context.Context, dst Store, name string, d digest.Digest) error {
	return c.flights.do(ctx, d, func() error {
		if dst.Has(d) {
			return nil
		}
		var buf bytes.Buffer // bytes verified-received across attempts
		return c.withRetry(ctx, func(ctx context.Context) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.blobURL(d, name, "blobs", string(d)), nil)
			if err != nil {
				return err
			}
			resume := buf.Len() > 0
			if resume {
				req.Header.Set("Range", fmt.Sprintf("bytes=%d-", buf.Len()))
			}
			resp, err := c.httpClient().Do(req)
			if err != nil {
				return fmt.Errorf("distrib: fetching blob %s: %w", d.Short(), err)
			}
			switch {
			case resume && resp.StatusCode == http.StatusPartialContent:
				// Continuing from the committed offset.
			case resp.StatusCode == http.StatusOK:
				// Full body (fresh fetch, or a server that ignored the
				// Range): start over.
				buf.Reset()
			default:
				// Includes 416 from a stale resume offset: statusError
				// classifies it transient and the cleared buffer makes
				// the next attempt fetch from scratch.
				buf.Reset()
				return statusError(resp)
			}
			_, cerr := io.Copy(&buf, io.LimitReader(resp.Body, 1<<30))
			resp.Body.Close()
			if cerr != nil {
				return fmt.Errorf("distrib: reading blob %s: %w", d.Short(), cerr)
			}
			// Ingest verifies the digest; a corrupt accumulation fails
			// verification, restarts clean, and is retried.
			if _, _, err := dst.Ingest(bytes.NewReader(buf.Bytes()), d); err != nil {
				buf.Reset()
				return fmt.Errorf("distrib: ingesting blob %s: %w", d.Short(), err)
			}
			return nil
		})
	})
}

// PullImage downloads name:ref (tag or digest; image or manifest
// list) into dst, fetching missing blobs in parallel and skipping
// blobs dst already holds. Returns the manifest descriptor.
func (c *Client) PullImage(ctx context.Context, dst Store, name, ref string) (oci.Descriptor, error) {
	body, d, mediaType, err := c.FetchManifest(ctx, name, ref)
	if err != nil {
		return oci.Descriptor{}, err
	}
	var refs manifestRefs
	if err := json.Unmarshal(body, &refs); err != nil {
		return oci.Descriptor{}, fmt.Errorf("distrib: decoding manifest %s: %w", d.Short(), err)
	}
	if len(refs.Manifests) > 0 {
		for _, child := range refs.Manifests {
			if _, err := c.PullImage(ctx, dst, name, string(child.Digest)); err != nil {
				return oci.Descriptor{}, err
			}
		}
	} else {
		var blobs []oci.Descriptor
		if refs.Config != nil && refs.Config.Digest != "" {
			blobs = append(blobs, *refs.Config)
		}
		blobs = append(blobs, refs.Layers...)
		tasks := make([]func() error, 0, len(blobs))
		for _, bd := range blobs {
			if dst.Has(bd.Digest) {
				continue // cross-image layer dedup: already local
			}
			bd := bd
			tasks = append(tasks, func() error { return c.fetchBlob(ctx, dst, name, bd.Digest) })
		}
		if err := c.runPool(tasks); err != nil {
			return oci.Descriptor{}, err
		}
	}
	if _, _, err := dst.Ingest(bytes.NewReader(body), d); err != nil {
		return oci.Descriptor{}, fmt.Errorf("distrib: storing manifest: %w", err)
	}
	if mediaType == "" {
		mediaType = oci.MediaTypeManifest
		if len(refs.Manifests) > 0 {
			mediaType = oci.MediaTypeIndex
		}
	}
	return oci.Descriptor{MediaType: mediaType, Digest: d, Size: int64(len(body))}, nil
}
