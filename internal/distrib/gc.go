package distrib

import (
	"encoding/json"
	"fmt"

	"comtainer/internal/digest"
	"comtainer/internal/oci"
)

// manifestRefs is the union shape of an image manifest and an image
// index: whichever fields are present name the blobs the document
// keeps alive.
type manifestRefs struct {
	Config    *oci.Descriptor  `json:"config"`
	Layers    []oci.Descriptor `json:"layers"`
	Manifests []oci.Descriptor `json:"manifests"`
}

// GC deletes every blob not reachable from roots — the tagged
// manifests and manifest lists of a registry. Reachability follows
// index → manifest → config/layer edges recursively. It refuses to run
// (and deletes nothing) if any root or intermediate manifest is
// missing or undecodable, so a partially-visible tree can never cause
// reachable blobs to be collected. Returns the number of blobs
// deleted.
func GC(s Store, roots []oci.Descriptor) (int, error) {
	return GCProtected(s, roots, nil)
}

// GCProtected is GC with an extra survival rule: any blob for which
// protect returns true is kept even when unreachable from roots. A
// registry uses this to pin blobs committed by an in-flight push whose
// manifest has not yet registered its references — without it, a sweep
// racing a concurrent push could collect a blob between its commit and
// the ref registration, and the closing manifest PUT would then 400.
func GCProtected(s Store, roots []oci.Descriptor, protect func(digest.Digest) bool) (int, error) {
	reachable := map[digest.Digest]bool{}
	var walk func(d digest.Digest) error
	walk = func(d digest.Digest) error {
		if reachable[d] {
			return nil
		}
		reachable[d] = true
		b, err := ReadBlob(s, d)
		if err != nil {
			return fmt.Errorf("distrib: gc: reading manifest %s: %w", d.Short(), err)
		}
		var refs manifestRefs
		if err := json.Unmarshal(b, &refs); err != nil {
			return fmt.Errorf("distrib: gc: decoding manifest %s: %w", d.Short(), err)
		}
		if refs.Config != nil && refs.Config.Digest != "" {
			reachable[refs.Config.Digest] = true
		}
		for _, l := range refs.Layers {
			reachable[l.Digest] = true
		}
		for _, m := range refs.Manifests {
			if err := walk(m.Digest); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range roots {
		if err := walk(root.Digest); err != nil {
			return 0, err
		}
	}
	dropped := 0
	for _, d := range s.Digests() {
		if reachable[d] {
			continue
		}
		if protect != nil && protect(d) {
			continue
		}
		if err := s.Delete(d); err != nil {
			return dropped, err
		}
		dropped++
	}
	return dropped, nil
}
