package distrib

import (
	"errors"
	"strings"
	"testing"

	"comtainer/internal/digest"
	"comtainer/internal/oci"
)

func TestUploadChunkedCommit(t *testing.T) {
	for _, spool := range []string{"", t.TempDir()} {
		m := NewUploadManager(spool)
		u, err := m.Start("user/app")
		if err != nil {
			t.Fatal(err)
		}
		content := "first-chunk|second-chunk|third"
		var off int64
		for _, chunk := range []string{"first-chunk|", "second-chunk|", "third"} {
			size, err := u.Append(strings.NewReader(chunk), off)
			if err != nil {
				t.Fatal(err)
			}
			off = size
		}
		want := digest.FromString(content)
		sink := oci.NewStore()
		d, n, err := m.Commit(u, sink, want)
		if err != nil {
			t.Fatal(err)
		}
		if d != want || n != int64(len(content)) {
			t.Errorf("commit = %s/%d, want %s/%d", d.Short(), n, want.Short(), len(content))
		}
		if !sink.Has(want) {
			t.Error("committed blob not in sink")
		}
		if _, ok := m.Get(u.ID); ok {
			t.Error("session survives commit")
		}
	}
}

func TestUploadRangeMismatch(t *testing.T) {
	m := NewUploadManager("")
	u, err := m.Start("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Append(strings.NewReader("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	// A chunk claiming the wrong start offset is rejected...
	if _, err := u.Append(strings.NewReader("XYZ"), 4); !errors.Is(err, ErrRangeMismatch) {
		t.Fatalf("mis-aligned chunk error = %v, want ErrRangeMismatch", err)
	}
	// ...without consuming anything, so a correctly-aligned retry works.
	if size, err := u.Append(strings.NewReader("abc"), 10); err != nil || size != 13 {
		t.Fatalf("aligned retry = %d, %v", size, err)
	}
}

func TestUploadCommitVerifies(t *testing.T) {
	m := NewUploadManager("")
	u, err := m.Start("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Append(strings.NewReader("actual content"), -1); err != nil {
		t.Fatal(err)
	}
	sink := oci.NewStore()
	if _, _, err := m.Commit(u, sink, digest.FromString("declared content")); err == nil {
		t.Fatal("commit accepted a digest mismatch")
	}
	if sink.Len() != 0 {
		t.Error("mismatched blob reached the sink")
	}
	// Failed commits leave the session open for a retry.
	if _, ok := m.Get(u.ID); !ok {
		t.Error("session dropped by failed commit")
	}
}

func TestUploadCancel(t *testing.T) {
	m := NewUploadManager(t.TempDir())
	u, err := m.Start("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Append(strings.NewReader("bytes"), -1); err != nil {
		t.Fatal(err)
	}
	m.Cancel(u)
	if _, ok := m.Get(u.ID); ok {
		t.Error("session survives cancel")
	}
	if _, err := u.Append(strings.NewReader("more"), -1); !errors.Is(err, ErrUploadClosed) {
		t.Errorf("append after cancel = %v, want ErrUploadClosed", err)
	}
}
