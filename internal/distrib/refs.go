package distrib

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"comtainer/internal/oci"
)

// TagStore maps repository-qualified tags ("user/app" + "v1") to
// manifest descriptors — the mutable half of a registry, next to the
// immutable blob store.
type TagStore interface {
	// Resolve returns the descriptor tagged name:tag.
	Resolve(name, tag string) (oci.Descriptor, bool)
	// Set records desc under name:tag, replacing any previous mapping.
	Set(name, tag string, desc oci.Descriptor) error
	// Delete removes the name:tag mapping. Absent refs are not an error.
	Delete(name, tag string) error
	// Tags returns the sorted tags of repository name.
	Tags(name string) []string
	// All returns every known "name:tag" key with its descriptor.
	All() map[string]oci.Descriptor
}

// MemTags is an in-memory TagStore.
type MemTags struct {
	mu sync.RWMutex
	m  map[string]oci.Descriptor
}

// NewMemTags returns an empty in-memory tag store.
func NewMemTags() *MemTags {
	return &MemTags{m: make(map[string]oci.Descriptor)}
}

// Resolve returns the descriptor tagged name:tag.
func (t *MemTags) Resolve(name, tag string) (oci.Descriptor, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d, ok := t.m[name+":"+tag]
	return d, ok
}

// Set records desc under name:tag.
func (t *MemTags) Set(name, tag string, desc oci.Descriptor) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[name+":"+tag] = desc
	return nil
}

// Delete removes the name:tag mapping.
func (t *MemTags) Delete(name, tag string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, name+":"+tag)
	return nil
}

// Tags returns the sorted tags of repository name.
func (t *MemTags) Tags(name string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return tagsOf(t.m, name)
}

// All returns a copy of every tag mapping.
func (t *MemTags) All() map[string]oci.Descriptor {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]oci.Descriptor, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

// DiskTags is a TagStore persisted one file per reference under
// <root>/refs/, written atomically (temp+rename) so a crash never
// leaves a torn descriptor. The full map is kept in memory and written
// through.
type DiskTags struct {
	root string
	mu   sync.RWMutex
	m    map[string]oci.Descriptor
}

// NewDiskTags opens (creating if needed) the tag store under dir and
// loads every persisted reference.
func NewDiskTags(dir string) (*DiskTags, error) {
	t := &DiskTags{root: filepath.Join(dir, "refs"), m: make(map[string]oci.Descriptor)}
	if err := os.MkdirAll(t.root, 0o755); err != nil {
		return nil, fmt.Errorf("distrib: creating refs dir: %w", err)
	}
	entries, err := os.ReadDir(t.root)
	if err != nil {
		return nil, fmt.Errorf("distrib: reading refs dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		key, err := url.PathUnescape(strings.TrimSuffix(e.Name(), ".json"))
		if err != nil {
			continue
		}
		b, err := os.ReadFile(filepath.Join(t.root, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("distrib: reading ref %s: %w", key, err)
		}
		var desc oci.Descriptor
		if err := json.Unmarshal(b, &desc); err != nil {
			return nil, fmt.Errorf("distrib: decoding ref %s: %w", key, err)
		}
		t.m[key] = desc
	}
	return t, nil
}

// refFile returns the on-disk file of a "name:tag" key. PathEscape
// keeps slash-bearing repository names inside one flat directory.
func (t *DiskTags) refFile(key string) string {
	return filepath.Join(t.root, url.PathEscape(key)+".json")
}

// Resolve returns the descriptor tagged name:tag.
func (t *DiskTags) Resolve(name, tag string) (oci.Descriptor, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d, ok := t.m[name+":"+tag]
	return d, ok
}

// Set records desc under name:tag and persists it atomically. The
// temp file is prepared outside the lock; only the commit rename and
// the write-through map update run under it, so the on-disk ref and
// the in-memory map can never disagree about which Set won.
func (t *DiskTags) Set(name, tag string, desc oci.Descriptor) error {
	b, err := json.Marshal(desc)
	if err != nil {
		return fmt.Errorf("distrib: encoding ref: %w", err)
	}
	key := name + ":" + tag
	tmp, err := os.CreateTemp(t.root, "ref-*")
	if err != nil {
		return fmt.Errorf("distrib: writing ref: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("distrib: writing ref: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("distrib: writing ref: %w", err)
	}
	tmpName := tmp.Name()
	t.mu.Lock()
	//comtainer:allow lockio -- rename must commit atomically with the map update
	err = os.Rename(tmpName, t.refFile(key))
	if err == nil {
		t.m[key] = desc
	}
	t.mu.Unlock()
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("distrib: committing ref %s: %w", key, err)
	}
	return nil
}

// Delete removes the name:tag mapping and its on-disk ref file. The
// remove runs under the lock for the same reason Set's rename does:
// the file and the map must agree about whether the ref exists.
func (t *DiskTags) Delete(name, tag string) error {
	key := name + ":" + tag
	t.mu.Lock()
	//comtainer:allow lockio -- remove must commit atomically with the map update
	err := os.Remove(t.refFile(key))
	if err == nil || os.IsNotExist(err) {
		delete(t.m, key)
		err = nil
	}
	t.mu.Unlock()
	if err != nil {
		return fmt.Errorf("distrib: deleting ref %s: %w", key, err)
	}
	return nil
}

// Tags returns the sorted tags of repository name.
func (t *DiskTags) Tags(name string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return tagsOf(t.m, name)
}

// All returns a copy of every tag mapping.
func (t *DiskTags) All() map[string]oci.Descriptor {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]oci.Descriptor, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

// tagsOf extracts the sorted tags of one repository from a key map.
// The tag is everything after the last colon, so repository names may
// not contain colons (OCI names cannot).
func tagsOf(m map[string]oci.Descriptor, name string) []string {
	var tags []string
	for k := range m {
		i := strings.LastIndex(k, ":")
		if i >= 0 && k[:i] == name {
			tags = append(tags, k[i+1:])
		}
	}
	sort.Strings(tags)
	return tags
}
