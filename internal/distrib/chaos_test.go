package distrib_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/faultinject"
	"comtainer/internal/oci"
	"comtainer/internal/registry"
)

// chaosCycles returns the seeded cycle count: the full 100-seed sweep
// normally, a subset under -short (CI's -race chaos job runs the
// subset; the full sweep is the release gate).
func chaosCycles() int64 {
	if testing.Short() {
		return 10
	}
	return 100
}

// TestChaosCrashRestartVerify is the core crash-consistency loop: for
// each seed, drive a DiskStore through a fault plan (EIO, short
// writes, and a power cut that freezes the torn on-disk state), then
// "reboot" — reopen the directory over the real filesystem, which runs
// Repair — and verify the recovered store: every blob whose Ingest
// reported success round-trips byte-identical with its digest
// verified, the temp spool is empty, and a fresh Fsck is clean.
func TestChaosCrashRestartVerify(t *testing.T) {
	for seed := int64(1); seed <= chaosCycles(); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			plan := faultinject.NewPlan(seed).
				Rate(faultinject.EIO, 0.02).
				Rate(faultinject.ShortWrite, 0.03).
				Rate(faultinject.PowerCut, 0.015)
			ffs := faultinject.NewFS(faultinject.OS(), plan)
			payloads := rand.New(rand.NewSource(seed))

			committed := make(map[digest.Digest][]byte)
			store, err := distrib.NewDiskStoreFS(dir, ffs)
			if err == nil {
				for i := 0; i < 25 && !ffs.Dead(); i++ {
					content := make([]byte, 128+payloads.Intn(4096))
					payloads.Read(content)
					d, _, err := store.Ingest(bytes.NewReader(content), "")
					if err == nil {
						committed[d] = content
					}
				}
			}

			// Reboot: reopen over the real filesystem. NewDiskStore runs
			// Repair, so recovery is part of opening, not a separate step.
			reopened, err := distrib.NewDiskStore(dir)
			if err != nil {
				t.Fatalf("reopening after crash: %v", err)
			}
			for d, content := range committed {
				rc, _, err := reopened.Open(d)
				if err != nil {
					t.Fatalf("committed blob %s lost after crash: %v", d.Short(), err)
				}
				got, err := io.ReadAll(rc) // digest-verified at EOF
				rc.Close()
				if err != nil {
					t.Fatalf("committed blob %s unreadable after crash: %v", d.Short(), err)
				}
				if !bytes.Equal(got, content) {
					t.Fatalf("committed blob %s content changed after crash", d.Short())
				}
			}
			temps, err := os.ReadDir(filepath.Join(dir, "tmp"))
			if err != nil {
				t.Fatalf("reading tmp dir: %v", err)
			}
			if len(temps) != 0 {
				t.Fatalf("repair left %d orphan temp files", len(temps))
			}
			rep, err := reopened.Fsck()
			if err != nil {
				t.Fatalf("fsck after repair: %v", err)
			}
			if !rep.Clean() {
				t.Fatalf("store not clean after repair: %s", rep)
			}
		})
	}
}

// TestFsckQuarantinesCorruptBlob verifies the fsck invariants on a
// directly corrupted store: Fsck reports the damage without touching
// it, Repair moves the damaged file to quarantine (never deletes), and
// the blob stops being addressable.
func TestFsckQuarantinesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	store, err := distrib.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := store.Ingest(strings.NewReader("precious payload"), "")
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "blobs", "sha256", d.Hex()[:2], d.Hex())
	if err := os.WriteFile(p, []byte("bit rot"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := store.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != d {
		t.Fatalf("fsck reported corrupt=%v, want [%s]", rep.Corrupt, d.Short())
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("read-only fsck moved the file: %v", err)
	}

	rep, err = store.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("repair quarantined %d files, want 1", rep.Quarantined)
	}
	if store.Has(d) {
		t.Fatal("corrupt blob still addressable after repair")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir entries=%v err=%v, want exactly 1 file", q, err)
	}
}

// TestSweepDanglingRefs verifies the referential half of recovery: a
// tag whose manifest blob is missing is removed, healthy tags stay.
func TestSweepDanglingRefs(t *testing.T) {
	tags := distrib.NewMemTags()
	blobs := oci.NewStore()
	alive := blobs.Put([]byte(`{"schemaVersion":2}`))
	if err := tags.Set("app", "good", oci.Descriptor{Digest: alive}); err != nil {
		t.Fatal(err)
	}
	if err := tags.Set("app", "dangling", oci.Descriptor{Digest: digest.FromString("never written")}); err != nil {
		t.Fatal(err)
	}
	removed, err := distrib.SweepDanglingRefs(tags, blobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "app:dangling" {
		t.Fatalf("swept %v, want [app:dangling]", removed)
	}
	if _, ok := tags.Resolve("app", "good"); !ok {
		t.Fatal("sweep removed a healthy tag")
	}
	if _, ok := tags.Resolve("app", "dangling"); ok {
		t.Fatal("dangling tag survived the sweep")
	}
}

// TestUploadSessionTTLSweep verifies abandoned upload sessions and
// their spool files are reclaimed lazily once their TTL lapses, while
// sessions still making requests stay alive.
func TestUploadSessionTTLSweep(t *testing.T) {
	spool := t.TempDir()
	m := distrib.NewUploadManager(spool)
	m.TTL = time.Hour
	now := time.Unix(1000, 0)
	m.Now = func() time.Time { return now }

	abandoned, err := m.Start("repo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := abandoned.Append(strings.NewReader("half an upload"), -1); err != nil {
		t.Fatal(err)
	}

	now = now.Add(30 * time.Minute)
	live, err := m.Start("repo")
	if err != nil {
		t.Fatal(err)
	}
	// The live session keeps making requests (every protocol request
	// resolves the session via Get, which refreshes its timer)...
	now = now.Add(45 * time.Minute)
	if _, ok := m.Get(live.ID); !ok {
		t.Fatal("live session expired while active")
	}
	// ...while the abandoned one crosses its TTL and the next Start
	// sweeps it, spool file and all.
	now = now.Add(30 * time.Minute)
	if _, err := m.Start("repo"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(abandoned.ID); ok {
		t.Fatal("abandoned session survived its TTL")
	}
	if _, err := abandoned.Append(strings.NewReader("more"), -1); !errors.Is(err, distrib.ErrUploadClosed) {
		t.Fatalf("append to swept session: err=%v, want ErrUploadClosed", err)
	}
	entries, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // live + the just-started session
		t.Fatalf("spool holds %d files, want 2 (abandoned spool not reclaimed)", len(entries))
	}
	if got := m.Len(); got != 2 {
		t.Fatalf("manager tracks %d sessions, want 2", got)
	}
}

// TestCancelAbortsRetryBackoff pins the acceptance criterion that a
// cancelled context aborts an in-flight retry/backoff within one timer
// tick: with a 10s backoff and a registry answering only 503, a cancel
// after 50ms must surface context.Canceled in well under one backoff.
func TestCancelAbortsRetryBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := distrib.NewClient(ts.URL)
	c.Retries = 5
	c.RetryBackoff = 10 * time.Second

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()

	start := time.Now()
	_, _, _, err := c.FetchManifest(ctx, "app", "v1")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff was not aborted", elapsed)
	}
}

// TestPullResumesMidStreamDisconnect injects truncated response bodies
// into blob downloads and verifies the client resumes with HTTP Range
// requests from the bytes already received, ends byte-identical, and
// stays within its bounded retry budget.
func TestPullResumesMidStreamDisconnect(t *testing.T) {
	srv := registry.NewServer()
	inner := srv.Handler()
	var rangedGets, blobGets atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.Contains(r.URL.Path, "/blobs/") && !strings.Contains(r.URL.Path, "/uploads") {
			blobGets.Add(1)
			if r.Header.Get("Range") != "" {
				rangedGets.Add(1)
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src,
		strings.Repeat("layer-one payload ", 400),
		strings.Repeat("layer-two payload ", 600))
	if err := fastClient(ts.URL).PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}

	// Op 1 is the manifest GET; ops 2-4 (the first blob GET and its
	// first two Range resumes) get truncated bodies.
	plan := faultinject.NewPlan(7).Burst(2, 3, faultinject.Truncate)
	c := fastClient(ts.URL)
	c.Workers = 1 // serial fetches keep the op numbering reproducible
	c.HTTP = &http.Client{Transport: faultinject.NewTransport(nil, plan)}

	dst := oci.NewStore()
	got, err := c.PullImage(context.Background(), dst, "app", "v1")
	if err != nil {
		t.Fatalf("pull under truncation: %v", err)
	}
	if got.Digest != desc.Digest {
		t.Fatalf("pulled %s, want %s", got.Digest.Short(), desc.Digest.Short())
	}
	for _, d := range src.Digests() {
		want, _ := src.Get(d)
		have, err := dst.Get(d)
		if err != nil || !bytes.Equal(want, have) {
			t.Fatalf("blob %s not byte-identical after resumed pull (err=%v)", d.Short(), err)
		}
	}
	if rangedGets.Load() == 0 {
		t.Fatal("no Range request observed: client restarted instead of resuming")
	}
	// 3 blobs + 3 injected truncations leaves 6 blob GETs; the budget
	// check catches a client that loops instead of making progress.
	if n := blobGets.Load(); n > 8 {
		t.Fatalf("%d blob GETs for 3 blobs with 3 faults: retries not bounded", n)
	}
	if events := plan.Events(); len(events) != 3 {
		t.Fatalf("expected 3 injected truncations, got %v", events)
	}
}

// TestPushResumesAfterDrop kills the connection under a mid-upload
// PATCH and verifies the client queries the committed offset and
// resumes the chunked upload instead of restarting, finishing with the
// registry holding the exact blob (its digest check at finalize proves
// byte-identity).
func TestPushResumesAfterDrop(t *testing.T) {
	srv := registry.NewServer()
	inner := srv.Handler()
	var offsetQueries atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.Contains(r.URL.Path, "/blobs/uploads/") {
			offsetQueries.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	payload := bytes.Repeat([]byte("sixty-four kibibytes of highly compressible test payload bytes! "), 1024)
	src := oci.NewStore()
	d := src.Put(payload)

	// Op 1 HEAD, op 2 POST, op 3 first PATCH; op 4 — the second PATCH —
	// loses its connection.
	plan := faultinject.NewPlan(11).At(4, faultinject.Drop)
	c := fastClient(ts.URL)
	c.ChunkSize = 8 << 10
	c.HTTP = &http.Client{Transport: faultinject.NewTransport(nil, plan)}

	if err := c.PushBlob(context.Background(), "app", src, d); err != nil {
		t.Fatalf("push across dropped connection: %v", err)
	}
	if !srv.Blobs().Has(d) {
		t.Fatal("registry does not hold the blob after resumed push")
	}
	back, err := distrib.ReadBlob(srv.Blobs(), d)
	if err != nil || !bytes.Equal(back, payload) {
		t.Fatalf("uploaded blob not byte-identical (err=%v)", err)
	}
	if offsetQueries.Load() == 0 {
		t.Fatal("client never queried the committed offset: restarted instead of resuming")
	}
	if events := plan.Events(); len(events) != 1 || events[0].Kind != faultinject.Drop {
		t.Fatalf("expected exactly one injected drop, got %v", events)
	}
}

// TestPullSurvives5xxBurst replays the flaky-registry scenario through
// the injection transport instead of a bespoke handler: a burst of
// fabricated 503s must be retried through transparently.
func TestPullSurvives5xxBurst(t *testing.T) {
	srv := registry.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src, "tiny payload")
	if err := fastClient(ts.URL).PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(3).Burst(1, 2, faultinject.HTTP500)
	c := fastClient(ts.URL)
	c.Workers = 1
	c.HTTP = &http.Client{Transport: faultinject.NewTransport(nil, plan)}

	dst := oci.NewStore()
	if _, err := c.PullImage(context.Background(), dst, "app", "v1"); err != nil {
		t.Fatalf("pull through 5xx burst: %v", err)
	}
	if !dst.Has(desc.Digest) {
		t.Fatal("manifest missing after pull")
	}
}
