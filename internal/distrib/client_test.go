package distrib_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/registry"
)

// fastClient returns a client with short backoff so retry tests stay
// quick.
func fastClient(base string) *distrib.Client {
	c := distrib.NewClient(base)
	c.RetryBackoff = time.Millisecond
	return c
}

// buildTestImage writes an image with the given layer payloads and
// returns its manifest descriptor.
func buildTestImage(t *testing.T, s *oci.Store, payloads ...string) oci.Descriptor {
	t.Helper()
	var layers []*fsim.FS
	for i, p := range payloads {
		l := fsim.New()
		l.WriteFile(fmt.Sprintf("/data/l%d", i), []byte(p), 0o644)
		layers = append(layers, l)
	}
	desc, err := oci.WriteImage(s, oci.ImageConfig{Architecture: "amd64", OS: "linux"}, layers)
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// countingHandler counts blob GETs and upload POSTs by URL shape.
type countingHandler struct {
	inner    http.Handler
	blobGets atomic.Int64
	uploads  atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.URL.Path, "/blobs/") {
		switch {
		case r.Method == http.MethodGet && !strings.Contains(r.URL.Path, "/uploads"):
			h.blobGets.Add(1)
		case r.Method == http.MethodPost:
			h.uploads.Add(1)
		}
	}
	h.inner.ServeHTTP(w, r)
}

func TestClientPushPullRoundTrip(t *testing.T) {
	srv := registry.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src, "alpha", "beta", "gamma")
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "team/app", "v1"); err != nil {
		t.Fatal(err)
	}
	dst := oci.NewStore()
	got, err := c.PullImage(context.Background(), dst, "team/app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != desc.Digest {
		t.Errorf("pulled digest %s, want %s", got.Digest.Short(), desc.Digest.Short())
	}
	for _, d := range src.Digests() {
		if !dst.Has(d) {
			t.Errorf("blob %s missing after pull", d.Short())
		}
	}
}

// TestPushDedupSkipsExistingBlobs pushes two tags of the same image:
// the second push must open zero upload sessions — every blob is
// already on the registry and the HEAD probe skips it.
func TestPushDedupSkipsExistingBlobs(t *testing.T) {
	srv := registry.NewServer()
	counter := &countingHandler{inner: srv.Handler()}
	ts := httptest.NewServer(counter)
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src, "one", "two")
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "team/app", "v1"); err != nil {
		t.Fatal(err)
	}
	first := counter.uploads.Load()
	if first == 0 {
		t.Fatal("first push uploaded nothing")
	}
	// Same blobs, different repository: the content-addressed store is
	// shared, so nothing re-uploads.
	if err := c.PushImage(context.Background(), src, desc, "other/copy", "v2"); err != nil {
		t.Fatal(err)
	}
	if counter.uploads.Load() != first {
		t.Errorf("second push opened %d new upload sessions, want 0", counter.uploads.Load()-first)
	}
}

// TestPullTransfersOnlyMissingBlobs pulls a base image, then an
// extended image sharing its layers: only the new blobs may travel.
func TestPullTransfersOnlyMissingBlobs(t *testing.T) {
	srv := registry.NewServer()
	counter := &countingHandler{inner: srv.Handler()}
	ts := httptest.NewServer(counter)
	defer ts.Close()

	src := oci.NewStore()
	base := buildTestImage(t, src, "shared-1", "shared-2", "shared-3")
	extended, err := oci.AppendLayer(src, base, fsim.New(), "comtainer.cache", "extra")
	if err != nil {
		t.Fatal(err)
	}
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, base, "app", "base"); err != nil {
		t.Fatal(err)
	}
	if err := c.PushImage(context.Background(), src, extended, "app", "extended"); err != nil {
		t.Fatal(err)
	}

	dst := oci.NewStore()
	if _, err := c.PullImage(context.Background(), dst, "app", "base"); err != nil {
		t.Fatal(err)
	}
	before := counter.blobGets.Load()
	if _, err := c.PullImage(context.Background(), dst, "app", "extended"); err != nil {
		t.Fatal(err)
	}
	fetched := counter.blobGets.Load() - before
	// The extended image shares every base layer; only its new layer
	// and new config may be fetched.
	if fetched > 2 {
		t.Errorf("extended pull fetched %d blobs, want <= 2 (base layers are local)", fetched)
	}
	if _, err := oci.LoadImage(dst, extended); err != nil {
		t.Errorf("extended image incomplete after dedup pull: %v", err)
	}
}

// TestConcurrentPullSingleflight has many goroutines pull the same
// image through one client into one store: in-flight dedup must
// collapse the fetches to one per blob.
func TestConcurrentPullSingleflight(t *testing.T) {
	srv := registry.NewServer()
	counter := &countingHandler{inner: srv.Handler()}
	ts := httptest.NewServer(counter)
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src, "l1", "l2", "l3", "l4")
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	counter.blobGets.Store(0)

	dst := oci.NewStore()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.PullImage(context.Background(), dst, "app", "v1"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 4 layers + 1 config; the manifest travels via /manifests/.
	if got := counter.blobGets.Load(); got > 5 {
		t.Errorf("16 concurrent pulls performed %d blob GETs, want <= 5 (singleflight)", got)
	}
	for _, d := range src.Digests() {
		if !dst.Has(d) {
			t.Errorf("blob %s missing", d.Short())
		}
	}
}

// flakyHandler injects transient failures: the first failN blob GETs
// return 503, and the next shortN responses truncate mid-body.
type flakyHandler struct {
	inner  http.Handler
	mu     sync.Mutex
	failN  int
	shortN int
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && strings.Contains(r.URL.Path, "/blobs/") && !strings.Contains(r.URL.Path, "/uploads") {
		h.mu.Lock()
		if h.failN > 0 {
			h.failN--
			h.mu.Unlock()
			http.Error(w, "injected transient failure", http.StatusServiceUnavailable)
			return
		}
		if h.shortN > 0 {
			h.shortN--
			h.mu.Unlock()
			// Declare more bytes than are sent: the client sees a
			// short read and must retry.
			w.Header().Set("Content-Length", "1024")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("truncated"))
			return
		}
		h.mu.Unlock()
	}
	h.inner.ServeHTTP(w, r)
}

func TestPullRetriesTransientFailures(t *testing.T) {
	srv := registry.NewServer()
	flaky := &flakyHandler{inner: srv.Handler(), failN: 3, shortN: 2}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src, "r1", "r2", "r3")
	c := fastClient(ts.URL)
	c.Retries = 6
	if err := c.PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	dst := oci.NewStore()
	if _, err := c.PullImage(context.Background(), dst, "app", "v1"); err != nil {
		t.Fatalf("pull did not survive injected 503s and short reads: %v", err)
	}
	for _, d := range src.Digests() {
		if !dst.Has(d) {
			t.Errorf("blob %s missing", d.Short())
		}
	}
}

func TestPullPermanentFailureFast(t *testing.T) {
	srv := registry.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := fastClient(ts.URL)
	start := time.Now()
	if _, err := c.PullImage(context.Background(), oci.NewStore(), "ghost", "v1"); err == nil {
		t.Fatal("pulled a nonexistent image")
	}
	// 404 is permanent: no retry/backoff spiral.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("permanent failure took %v — was it retried?", elapsed)
	}
}

// TestPushManifestList publishes a multi-arch index and pulls it back,
// covering the recursive index path.
func TestPushManifestList(t *testing.T) {
	srv := registry.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	src := oci.NewStore()
	amd := buildTestImage(t, src, "amd-layer")
	arm := buildTestImage(t, src, "arm-layer")
	amd.Platform = &oci.Platform{Architecture: "amd64", OS: "linux"}
	arm.Platform = &oci.Platform{Architecture: "arm64", OS: "linux"}
	list, err := oci.WriteManifestList(src, []oci.Descriptor{amd, arm})
	if err != nil {
		t.Fatal(err)
	}
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, list, "multi/app", "latest"); err != nil {
		t.Fatal(err)
	}
	dst := oci.NewStore()
	got, err := c.PullImage(context.Background(), dst, "multi/app", "latest")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != list.Digest {
		t.Errorf("pulled index digest %s, want %s", got.Digest.Short(), list.Digest.Short())
	}
	resolved, err := oci.ResolvePlatform(dst, got, "arm64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oci.LoadImage(dst, resolved); err != nil {
		t.Errorf("arm64 member image incomplete: %v", err)
	}
}

// TestPushRefusesDanglingManifest checks the client-side existence
// check: a manifest whose blobs are missing from the source fails fast
// and nothing reaches the registry.
func TestPushRefusesDanglingManifest(t *testing.T) {
	srv := registry.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src, "doomed")
	m, err := oci.LoadManifest(src, desc.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Delete(m.Layers[0].Digest); err != nil {
		t.Fatal(err)
	}
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "app", "v1"); err == nil {
		t.Fatal("pushed an image with a missing layer")
	}
	if len(srv.Tags()) != 0 {
		t.Error("dangling manifest was tagged on the registry")
	}
}

// TestChunkedPushLargeBlob forces multi-chunk PATCH uploads.
func TestChunkedPushLargeBlob(t *testing.T) {
	srv := registry.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload := strings.Repeat("big layer content ", 4096) // ~72 KiB
	src := oci.NewStore()
	desc := buildTestImage(t, src, payload)
	c := fastClient(ts.URL)
	c.ChunkSize = 8 << 10 // 8 KiB chunks → many PATCHes
	if err := c.PushImage(context.Background(), src, desc, "big/app", "v1"); err != nil {
		t.Fatal(err)
	}
	dst := oci.NewStore()
	if _, err := c.PullImage(context.Background(), dst, "big/app", "v1"); err != nil {
		t.Fatal(err)
	}
	for _, d := range src.Digests() {
		if !dst.Has(d) {
			t.Fatalf("blob %s did not survive chunked upload", d.Short())
		}
	}
}

// TestPushBlobStandalone covers PushBlob + HasBlob directly.
func TestPushBlobStandalone(t *testing.T) {
	srv := registry.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	src := oci.NewStore()
	d := src.Put([]byte("standalone blob"))
	c := fastClient(ts.URL)
	if ok, err := c.HasBlob(context.Background(), "solo", d); err != nil || ok {
		t.Fatalf("HasBlob before push = %v, %v", ok, err)
	}
	if err := c.PushBlob(context.Background(), "solo", src, d); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.HasBlob(context.Background(), "solo", d); err != nil || !ok {
		t.Fatalf("HasBlob after push = %v, %v", ok, err)
	}
}

// TestPullVerifiesManifestDigest ensures a digest-addressed pull whose
// served content does not hash to the requested digest is rejected —
// simulated by a man-in-the-middle that swaps the manifest body.
func TestPullVerifiesManifestDigest(t *testing.T) {
	srv := registry.NewServer()
	tamper := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.Contains(r.URL.Path, "/manifests/") {
			w.Header().Set("Content-Type", oci.MediaTypeManifest)
			_, _ = w.Write([]byte(`{"schemaVersion":2,"layers":[]}`))
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(tamper)
	defer ts.Close()

	src := oci.NewStore()
	desc := buildTestImage(t, src, "x")
	c := fastClient(ts.URL)
	if err := c.PushImage(context.Background(), src, desc, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PullImage(context.Background(), oci.NewStore(), "app", string(desc.Digest)); err == nil {
		t.Fatal("pull accepted a manifest that does not hash to the requested digest")
	}
	// An absent digest must also fail (404, no retry storm).
	bogus := digest.FromString("not the manifest")
	if _, err := c.PullImage(context.Background(), oci.NewStore(), "app", string(bogus)); err == nil {
		t.Fatal("pull by unknown digest succeeded")
	}
}
