// Package distrib is the image-distribution substrate beneath
// internal/registry — the production-shaped half of the repository hop
// ("images are then distributed via repositories", paper §1).
//
// It provides:
//
//   - BlobSource/BlobSink/Store: streaming content-addressed blob
//     interfaces that both the in-memory oci.Store and the disk-backed
//     DiskStore satisfy, so a registry can mount either.
//   - DiskStore: a persistent, sharded (blobs/sha256/ab/abcd…),
//     digest-verified blob store with atomic temp-file+rename writes.
//   - TagStore: the tag → manifest-descriptor mapping, in memory or
//     persisted per-ref on disk.
//   - UploadManager: server-side resumable upload sessions backing the
//     OCI distribution push protocol (POST/PATCH/PUT).
//   - Client: a concurrent pull/push client with a bounded worker pool,
//     singleflight dedup of in-flight fetches, cross-image blob dedup,
//     and retry-with-backoff on transient failures.
//   - GC: reference-counting garbage collection over tagged manifests
//     and manifest lists.
package distrib

import (
	"bytes"
	"fmt"
	"io"

	"comtainer/internal/digest"
)

// ReplicatedHeader marks a write request as intra-fleet replication
// traffic: a shard leader forwarding a committed write to its
// followers sets it, and a registry receiving it skips its own commit
// hook — breaking the replication loop in symmetric leader-follower
// pairs where every replica is configured to forward to the others.
const ReplicatedHeader = "Comtainer-Replicated"

// BlobSource is the read side of a content-addressed blob store. Open
// streams blob content so large layers never need to be fully resident.
type BlobSource interface {
	// Has reports whether the store holds blob d.
	Has(d digest.Digest) bool
	// Open returns a reader over blob d and the blob's size.
	Open(d digest.Digest) (io.ReadCloser, int64, error)
	// Digests returns the sorted digests of every stored blob.
	Digests() []digest.Digest
}

// BlobSink is the write side of a content-addressed blob store.
type BlobSink interface {
	// Ingest streams r into the store. If want is non-empty the content
	// must hash to it; otherwise the computed digest is used. Returns
	// the digest and size of the stored blob.
	Ingest(r io.Reader, want digest.Digest) (digest.Digest, int64, error)
}

// Store is a full blob store: readable, writable, collectable.
type Store interface {
	BlobSource
	BlobSink
	// Delete removes blob d. Deleting an absent blob is not an error.
	Delete(d digest.Digest) error
}

// ReadBlob buffers the whole content of blob d — a convenience for
// small blobs (manifests, configs) where streaming buys nothing.
func ReadBlob(src BlobSource, d digest.Digest) ([]byte, error) {
	r, n, err := src.Open(d)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, 0, n)
	b := bytes.NewBuffer(buf)
	if _, err := io.Copy(b, r); err != nil {
		return nil, fmt.Errorf("distrib: reading blob %s: %w", d.Short(), err)
	}
	return b.Bytes(), nil
}

// WriteBlob stores b and returns its digest — the buffered counterpart
// of Ingest.
func WriteBlob(sink BlobSink, b []byte) (digest.Digest, error) {
	d, _, err := sink.Ingest(bytes.NewReader(b), "")
	return d, err
}
