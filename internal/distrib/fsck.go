package distrib

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"comtainer/internal/digest"
)

// FsckReport is the outcome of a store consistency scan. The store's
// invariants after a successful Repair:
//
//  1. every addressable path blobs/sha256/ab/<hex> holds content that
//     hashes to sha256:<hex> (no torn or bit-rotted blob is readable);
//  2. the shard directory matches the first two hex characters;
//  3. tmp/ is empty — an interrupted ingest can never be completed, so
//     its spool is garbage by construction;
//  4. nothing is silently deleted: damaged files move to quarantine/
//     for operator inspection, only temp spools are removed outright.
type FsckReport struct {
	// Scanned counts addressable blob files examined.
	Scanned int
	// Corrupt lists blobs whose content does not hash to their name —
	// truncated by a crash mid-rename-window or rotted on disk.
	Corrupt []digest.Digest
	// Misplaced lists addressable paths whose name is not a digest or
	// whose shard directory disagrees with it.
	Misplaced []string
	// OrphanTemps lists temp spool files left by interrupted writes.
	OrphanTemps []string
	// Quarantined and TempsSwept count what Repair acted on; zero
	// after a plain Fsck.
	Quarantined int
	TempsSwept  int
}

// Clean reports whether the scan found nothing wrong.
func (r FsckReport) Clean() bool {
	return len(r.Corrupt) == 0 && len(r.Misplaced) == 0 && len(r.OrphanTemps) == 0
}

// String renders the report as a one-line operator summary.
func (r FsckReport) String() string {
	return fmt.Sprintf("fsck: %d blobs scanned, %d corrupt, %d misplaced, %d orphan temps (%d quarantined, %d temps swept)",
		r.Scanned, len(r.Corrupt), len(r.Misplaced), len(r.OrphanTemps), r.Quarantined, r.TempsSwept)
}

// Fsck scans the store read-only: it rehashes every addressable blob
// against its name, checks shard placement, and lists orphaned temp
// files. Nothing is modified; run Repair to act on the findings.
func (s *DiskStore) Fsck() (FsckReport, error) {
	var rep FsckReport
	shards, err := os.ReadDir(s.blobRoot())
	if err != nil {
		return rep, fmt.Errorf("distrib: fsck: reading blob root: %w", err)
	}
	for _, shard := range shards {
		shardDir := filepath.Join(s.blobRoot(), shard.Name())
		if !shard.IsDir() {
			rep.Misplaced = append(rep.Misplaced, shardDir)
			continue
		}
		files, err := os.ReadDir(shardDir)
		if err != nil {
			return rep, fmt.Errorf("distrib: fsck: reading shard %s: %w", shard.Name(), err)
		}
		for _, f := range files {
			p := filepath.Join(shardDir, f.Name())
			d, perr := digest.Parse("sha256:" + f.Name())
			if perr != nil || f.IsDir() || !strings.HasPrefix(f.Name(), shard.Name()) {
				rep.Misplaced = append(rep.Misplaced, p)
				continue
			}
			rep.Scanned++
			ok, herr := s.rehash(p, d)
			if herr != nil {
				return rep, fmt.Errorf("distrib: fsck: rehashing %s: %w", d.Short(), herr)
			}
			if !ok {
				rep.Corrupt = append(rep.Corrupt, d)
			}
		}
	}
	temps, err := os.ReadDir(s.tmpDir())
	if err != nil && !os.IsNotExist(err) {
		return rep, fmt.Errorf("distrib: fsck: reading tmp dir: %w", err)
	}
	for _, t := range temps {
		rep.OrphanTemps = append(rep.OrphanTemps, filepath.Join(s.tmpDir(), t.Name()))
	}
	sort.Slice(rep.Corrupt, func(i, j int) bool { return rep.Corrupt[i] < rep.Corrupt[j] })
	return rep, nil
}

// rehash reports whether the file at p hashes to d.
func (s *DiskStore) rehash(p string, d digest.Digest) (bool, error) {
	f, err := s.fs.Open(p)
	if err != nil {
		return false, err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return false, err
	}
	return digest.FromHash(h) == d, nil
}

// Repair runs Fsck and then restores the store invariants: corrupt and
// misplaced files are moved into quarantine/ (never deleted — an
// operator may still want the bytes), and orphaned temp spools are
// removed. It runs automatically on store open and behind the
// comtainer-registry -fsck flag.
func (s *DiskStore) Repair() (FsckReport, error) {
	rep, err := s.Fsck()
	if err != nil {
		return rep, err
	}
	if rep.Clean() {
		return rep, nil
	}
	var damaged []string
	for _, d := range rep.Corrupt {
		damaged = append(damaged, s.blobPath(d))
	}
	damaged = append(damaged, rep.Misplaced...)
	if len(damaged) > 0 {
		if err := s.fs.MkdirAll(s.quarantineDir(), 0o755); err != nil {
			return rep, fmt.Errorf("distrib: fsck: creating quarantine dir: %w", err)
		}
	}
	for i, p := range damaged {
		// The index prefix keeps same-named files from two repairs (or
		// a shard dir and a blob) from colliding in the flat directory.
		dst := filepath.Join(s.quarantineDir(), fmt.Sprintf("%d-%s", i, filepath.Base(p)))
		s.mu.Lock()
		err := s.fs.Rename(p, dst)
		s.mu.Unlock()
		if err != nil {
			return rep, fmt.Errorf("distrib: fsck: quarantining %s: %w", p, err)
		}
		rep.Quarantined++
	}
	for _, p := range rep.OrphanTemps {
		if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
			return rep, fmt.Errorf("distrib: fsck: sweeping temp %s: %w", p, err)
		}
		rep.TempsSwept++
	}
	return rep, nil
}

// SweepDanglingRefs removes every tag whose manifest blob is missing
// from blobs — the referential half of crash recovery: a ref written
// before its manifest committed must not survive, or every pull of it
// would 500. Returns the removed "name:tag" keys, sorted.
func SweepDanglingRefs(tags TagStore, blobs BlobSource) ([]string, error) {
	var removed []string
	for key, desc := range tags.All() {
		if blobs.Has(desc.Digest) {
			continue
		}
		name, tag, ok := strings.Cut(key, ":")
		if !ok {
			continue
		}
		if err := tags.Delete(name, tag); err != nil {
			return removed, fmt.Errorf("distrib: sweeping dangling ref %s: %w", key, err)
		}
		removed = append(removed, key)
	}
	sort.Strings(removed)
	return removed, nil
}
