package distrib

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"comtainer/internal/digest"
	"comtainer/internal/faultinject"
)

// DiskStore is a persistent content-addressed blob store. Blobs live in
// a sharded layout — blobs/sha256/ab/abcd… — keyed by the first two hex
// characters so no single directory grows unbounded. Writes stream into
// a temp file and are renamed into place only after the digest checks
// out, so a crash mid-write never leaves a corrupt blob addressable.
// Reads verify content against the digest as it streams out.
//
// All mutating filesystem calls go through a faultinject.FS seam
// (the real OS by default), so chaos tests can kill the store at an
// arbitrary seeded write point and verify recovery.
type DiskStore struct {
	root string
	fs   faultinject.FS

	// mu serializes commit-time renames with Delete so a concurrent
	// delete cannot observe a half-committed blob.
	mu sync.Mutex

	// openRepair is what the open-time Repair found and acted on —
	// kept so operator tooling can report damage that was already
	// healed before it got a chance to scan.
	openRepair FsckReport
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir
// and repairs any damage a previous crash left behind: torn temp files
// are swept and corrupt or misnamed blobs are quarantined (see Repair).
func NewDiskStore(dir string) (*DiskStore, error) {
	return NewDiskStoreFS(dir, faultinject.OS())
}

// NewDiskStoreFS is NewDiskStore writing through fsys — the hook chaos
// tests use to inject EIO, short writes and power cuts.
func NewDiskStoreFS(dir string, fsys faultinject.FS) (*DiskStore, error) {
	s := &DiskStore{root: dir, fs: fsys}
	for _, d := range []string{s.blobRoot(), s.tmpDir()} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("distrib: creating store dir: %w", err)
		}
	}
	// Crash recovery runs on every open: a store is never handed out
	// with torn temp files or unreadable addressable blobs.
	rep, err := s.Repair()
	if err != nil {
		return nil, err
	}
	s.openRepair = rep
	return s, nil
}

// OpenReport returns what the open-time Repair found and fixed. A
// later Fsck scans the already-healed store and reports it clean, so
// this is the only record of damage repaired at mount.
func (s *DiskStore) OpenReport() FsckReport { return s.openRepair }

// Root returns the directory the store persists under.
func (s *DiskStore) Root() string { return s.root }

func (s *DiskStore) blobRoot() string      { return filepath.Join(s.root, "blobs", "sha256") }
func (s *DiskStore) tmpDir() string        { return filepath.Join(s.root, "tmp") }
func (s *DiskStore) quarantineDir() string { return filepath.Join(s.root, "quarantine") }

// blobPath returns the sharded path of blob d.
func (s *DiskStore) blobPath(d digest.Digest) string {
	hex := d.Hex()
	return filepath.Join(s.blobRoot(), hex[:2], hex)
}

// Has reports whether blob d is on disk.
func (s *DiskStore) Has(d digest.Digest) bool {
	if d.Validate() != nil {
		return false
	}
	fi, err := s.fs.Stat(s.blobPath(d))
	return err == nil && fi.Mode().IsRegular()
}

// Open streams blob d. The returned reader verifies the content hash
// incrementally: reading through to EOF fails if the on-disk bytes do
// not hash to d, so corruption can never pass silently.
func (s *DiskStore) Open(d digest.Digest) (io.ReadCloser, int64, error) {
	if err := d.Validate(); err != nil {
		return nil, 0, err
	}
	f, err := s.fs.Open(s.blobPath(d))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("distrib: blob not found: %s", d)
		}
		return nil, 0, fmt.Errorf("distrib: opening blob %s: %w", d.Short(), err)
	}
	fi, err := s.fs.Stat(s.blobPath(d))
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("distrib: stat blob %s: %w", d.Short(), err)
	}
	return &verifyingReader{f: f, want: d, h: sha256.New()}, fi.Size(), nil
}

// verifyingReader hashes content as it streams and turns EOF into an
// error when the final hash does not match the expected digest.
type verifyingReader struct {
	f    faultinject.File
	want digest.Digest
	h    hash.Hash
	done bool
}

func (v *verifyingReader) Read(p []byte) (int, error) {
	n, err := v.f.Read(p)
	if n > 0 {
		v.h.Write(p[:n])
	}
	if err == io.EOF && !v.done {
		v.done = true
		if got := digest.FromHash(v.h); got != v.want {
			return n, fmt.Errorf("distrib: blob %s corrupt on disk: content hashes to %s", v.want.Short(), got.Short())
		}
	}
	return n, err
}

func (v *verifyingReader) Close() error { return v.f.Close() }

// Ingest streams r into a temp file, verifies the digest, and renames
// the file into its sharded location. The rename is atomic: concurrent
// ingests of the same content race benignly to the same final path.
//
// The stat+rename pair deliberately runs under mu — that is the lock's
// whole purpose: a Delete may never observe a half-committed blob.
//
//comtainer:allow lockio -- mu exists to serialize commit renames with Delete
func (s *DiskStore) Ingest(r io.Reader, want digest.Digest) (digest.Digest, int64, error) {
	if want != "" {
		if err := want.Validate(); err != nil {
			return "", 0, err
		}
	}
	tmp, err := s.fs.CreateTemp(s.tmpDir(), "ingest-*")
	if err != nil {
		return "", 0, fmt.Errorf("distrib: creating temp blob: %w", err)
	}
	tmpName := tmp.Name()
	defer s.fs.Remove(tmpName) // no-op after successful rename
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(tmp, h), r)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", 0, fmt.Errorf("distrib: writing blob: %w", err)
	}
	got := digest.FromHash(h)
	if want != "" && got != want {
		return "", 0, fmt.Errorf("distrib: digest mismatch: content is %s, want %s", got, want)
	}
	dst := s.blobPath(got)
	if err := s.fs.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return "", 0, fmt.Errorf("distrib: creating shard dir: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.fs.Stat(dst); err == nil {
		return got, n, nil // content-addressed: already present, identical
	}
	if err := s.fs.Rename(tmpName, dst); err != nil {
		return "", 0, fmt.Errorf("distrib: committing blob %s: %w", got.Short(), err)
	}
	return got, n, nil
}

// Delete removes blob d from disk. Absent blobs are not an error.
//
//comtainer:allow lockio -- mu exists to serialize Delete with commit renames
func (s *DiskStore) Delete(d digest.Digest) error {
	if err := d.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.Remove(s.blobPath(d)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("distrib: deleting blob %s: %w", d.Short(), err)
	}
	return nil
}

// Digests walks the sharded layout and returns every stored digest,
// sorted.
func (s *DiskStore) Digests() []digest.Digest {
	var out []digest.Digest
	shards, err := os.ReadDir(s.blobRoot())
	if err != nil {
		return nil
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.blobRoot(), shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if d, err := digest.Parse("sha256:" + f.Name()); err == nil {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of stored blobs.
func (s *DiskStore) Len() int { return len(s.Digests()) }

// TotalSize returns the combined on-disk size of all blobs in bytes.
func (s *DiskStore) TotalSize() int64 {
	var n int64
	for _, d := range s.Digests() {
		if fi, err := s.fs.Stat(s.blobPath(d)); err == nil {
			n += fi.Size()
		}
	}
	return n
}
