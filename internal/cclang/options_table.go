package cclang

// This file extends the exact-option table with the concretely-spelled
// options the evaluation's build scripts and adapters encounter most.
// GCC's full surface is 2314 options (paper §4.5); the parser covers the
// remainder through the family rules in options.go, while everything
// listed here gets precise style and category information — the
// difference matters when adapters must know what is safe to rewrite.

// warningOptions are the concretely-modeled -W spellings (the -W family
// rule catches the rest).
var warningOptions = []string{
	"-Wall", "-Wextra", "-Werror", "-Wpedantic", "-Wshadow", "-Wconversion",
	"-Wsign-conversion", "-Wfloat-equal", "-Wundef", "-Wcast-align",
	"-Wcast-qual", "-Wwrite-strings", "-Wswitch-default", "-Wswitch-enum",
	"-Wunreachable-code", "-Wformat", "-Wformat-security", "-Wuninitialized",
	"-Wmaybe-uninitialized", "-Wunused", "-Wunused-variable",
	"-Wunused-parameter", "-Wunused-function", "-Wunused-result",
	"-Wstrict-aliasing", "-Wstrict-overflow", "-Warray-bounds",
	"-Wvla", "-Wpadded", "-Winline", "-Wdouble-promotion",
	"-Wnull-dereference", "-Wimplicit-fallthrough", "-Wmissing-declarations",
	"-Wmissing-prototypes", "-Wold-style-definition", "-Wredundant-decls",
	"-Wnested-externs", "-Wlogical-op", "-Waggregate-return",
	"-Wno-unused", "-Wno-deprecated", "-Wno-error", "-Wno-sign-compare",
}

// optimizationFOptions are concretely-modeled -f optimization switches.
var optimizationFOptions = []string{
	"-funroll-loops", "-funroll-all-loops", "-fomit-frame-pointer",
	"-fno-omit-frame-pointer", "-finline-functions", "-fno-inline",
	"-fstrict-aliasing", "-fno-strict-aliasing", "-ffast-math",
	"-fno-fast-math", "-funsafe-math-optimizations", "-ffinite-math-only",
	"-fno-math-errno", "-freciprocal-math", "-fassociative-math",
	"-ftree-vectorize", "-fno-tree-vectorize", "-ftree-loop-vectorize",
	"-ftree-slp-vectorize", "-fvect-cost-model=dynamic",
	"-fprefetch-loop-arrays", "-fsplit-loops", "-funswitch-loops",
	"-fipa-pta", "-fipa-cp-clone", "-fdevirtualize-at-ltrans",
	"-floop-interchange", "-floop-unroll-and-jam", "-fgraphite-identity",
	"-fprofile-correction", "-fauto-profile", "-fbranch-probabilities",
	"-fschedule-insns", "-fschedule-insns2", "-fmodulo-sched",
	"-fgcse", "-fgcse-after-reload", "-fpredictive-commoning",
	"-falign-functions", "-falign-loops", "-fpeel-loops",
	"-fwhole-program", "-fno-plt", "-fmerge-all-constants",
	"-fsingle-precision-constant", "-fcx-limited-range",
	"-fexcess-precision=fast", "-ffp-contract=fast",
}

// codegenFOptions are concretely-modeled -f codegen switches (ABI- or
// semantics-relevant: adapters must preserve them).
var codegenFOptions = []string{
	"-fPIC", "-fpic", "-fPIE", "-fpie", "-fopenmp", "-fopenmp-simd",
	"-fopenacc", "-fstack-protector", "-fstack-protector-strong",
	"-fstack-protector-all", "-fno-stack-protector", "-fcf-protection",
	"-fvisibility=default", "-fvisibility=hidden", "-fvisibility=protected",
	"-ffunction-sections", "-fdata-sections", "-fcommon", "-fno-common",
	"-fshort-enums", "-fsigned-char", "-funsigned-char", "-fwrapv",
	"-ftrapv", "-fexceptions", "-fnon-call-exceptions", "-fsplit-stack",
	"-fkeep-inline-functions", "-fverbose-asm", "-fpack-struct",
	"-fsanitize=address", "-fsanitize=undefined", "-fsanitize=thread",
	"-fsanitize=leak", "-fno-sanitize-recover",
	"-flto", "-flto=auto", "-flto=thin", "-ffat-lto-objects",
	"-fno-fat-lto-objects", "-fno-lto", "-fuse-linker-plugin",
	"-fprofile-generate", "-fprofile-use", "-fprofile-arcs",
	"-ftest-coverage", "-fcoverage-mapping", "-fprofile-update=atomic",
}

// machineOptions are concretely-modeled -m switches across the two ISAs.
var machineOptions = []string{
	"-m32", "-m64", "-msse", "-msse2", "-msse3", "-mssse3", "-msse4",
	"-msse4.1", "-msse4.2", "-mavx", "-mavx2", "-mavx512f", "-mavx512cd",
	"-mavx512bw", "-mavx512dq", "-mavx512vl", "-mfma", "-mfma4",
	"-mbmi", "-mbmi2", "-mpopcnt", "-mlzcnt", "-maes", "-mpclmul",
	"-mf16c", "-mrdrnd", "-mfsgsbase", "-mxsave", "-mprefer-vector-width=128",
	"-mprefer-vector-width=256", "-mprefer-vector-width=512",
	"-mcmodel=small", "-mcmodel=medium", "-mcmodel=large",
	"-mfpmath=sse", "-mfpmath=387", "-mred-zone", "-mno-red-zone",
	"-msoft-float", "-mhard-float", "-mstackrealign",
	"-mgeneral-regs-only", "-mstrict-align", "-mno-strict-align",
	"-moutline-atomics", "-mno-outline-atomics", "-msve-vector-bits=128",
	"-msve-vector-bits=256", "-msve-vector-bits=scalable",
	"-mbranch-protection=standard", "-mlow-precision-recip-sqrt",
	"-mfix-cortex-a53-835769", "-momit-leaf-frame-pointer",
}

// languageOptions are standard-selection and dialect switches.
var languageOptions = []string{
	"-std=c89", "-std=c90", "-std=c99", "-std=c11", "-std=c17", "-std=c23",
	"-std=gnu89", "-std=gnu99", "-std=gnu11", "-std=gnu17",
	"-std=c++98", "-std=c++03", "-std=c++11", "-std=c++14", "-std=c++17",
	"-std=c++20", "-std=c++23", "-std=gnu++14", "-std=gnu++17",
	"-std=f95", "-std=f2003", "-std=f2008", "-std=f2018",
	"-ffreestanding", "-fhosted", "-fgnu89-inline", "-fpermissive",
	"-fms-extensions", "-fchar8_t", "-fcoroutines", "-fconcepts",
	"-fmodules-ts", "-fimplicit-none", "-ffixed-form", "-ffree-form",
	"-fdefault-real-8", "-fdefault-integer-8", "-fbackslash",
	"-fcray-pointer", "-frecursive", "-fno-automatic",
}

// debugOptions are concretely-modeled -g family spellings.
var debugOptions = []string{
	"-g0", "-g1", "-g2", "-g3", "-ggdb", "-ggdb3", "-gdwarf-2",
	"-gdwarf-4", "-gdwarf-5", "-gsplit-dwarf", "-gz", "-gstrict-dwarf",
	"-grecord-gcc-switches", "-fdebug-types-section",
	"-femit-class-debug-always", "-fvar-tracking",
}

// diagnosticOptions steer driver output and dumps.
var diagnosticOptions = []string{
	"-fdiagnostics-color=always", "-fdiagnostics-color=never",
	"-fdiagnostics-show-option", "-fmessage-length=0", "-fmax-errors=10",
	"-dumpbase", "-dumpdir", "-dD", "-dM", "-dI", "-dN",
	"-fstack-usage", "-fopt-info", "-fopt-info-vec", "-fopt-info-inline",
	"-ftime-report", "-fmem-report", "-Q", "--help=optimizers",
	"--help=warnings", "--help=target", "--version",
}

// FamilySpellings returns the concretely-modeled spellings of one
// category bucket, for introspection and tests.
func FamilySpellings() map[string][]string {
	return map[string][]string{
		"warning":      warningOptions,
		"optimization": optimizationFOptions,
		"codegen":      codegenFOptions,
		"machine":      machineOptions,
		"language":     languageOptions,
		"debug":        debugOptions,
		"diagnostic":   diagnosticOptions,
	}
}

// KnownSpellings reports how many concrete option spellings the model
// recognizes precisely (exact table + the curated family spellings); the
// open-ended family rules extend coverage to the rest of GCC's 2314.
func KnownSpellings() int {
	n := len(exact)
	for _, list := range FamilySpellings() {
		n += len(list)
	}
	return n
}
