// Package cclang models GCC-style compiler-driver command lines as
// structured data.
//
// The paper's compilation model for .o/.so nodes is "structural data
// representing GCC command lines", extracted "by systematically reviewing
// the entire GCC user manual" (§4.3), and the front-end "needs to parse
// command lines ... particularly challenging due to their complexity (2314
// options in total)" (§4.5). This package provides the same capability for
// the simulated toolchain: a categorized option table covering the driver
// option syntaxes (flags, joined, separate, joined-or-separate), a parser
// that turns argv into a semantic Command, a renderer that reproduces argv,
// and a rewriting API the system adapters use to retarget compilations.
package cclang

// Style describes how an option consumes its value.
type Style uint8

// Option syntaxes in the GCC driver.
const (
	// StyleFlag takes no value: -c, -v, -shared.
	StyleFlag Style = iota
	// StyleJoined has the value glued to the option: -O2, -std=c++17.
	StyleJoined
	// StyleSeparate takes the value as the next argv element: -o file.
	StyleSeparate
	// StyleJoinedOrSeparate accepts either form: -Idir and -I dir.
	StyleJoinedOrSeparate
)

// Category groups options by what part of the pipeline they steer; the
// adapters use categories to decide what is safe to rewrite.
type Category uint8

// Option categories.
const (
	CatMode Category = iota // -c, -S, -E: which pipeline stages run
	CatOutput
	CatInputControl // -x, -include...
	CatPreprocessor // -D, -U, -I...
	CatOptimization // -O*, -f* optimization switches
	CatCodegen      // -f codegen, -fPIC, -fprofile*
	CatMachine      // -m*, -march, -mtune
	CatWarning      // -W*, -w, -pedantic
	CatDebug        // -g*
	CatLinker       // -L, -l, -shared, -static, -Wl...
	CatLanguage     // -std=, -ansi
	CatDiagnostic   // -v, -###, --version
	CatOther
)

// Spec describes one driver option.
type Spec struct {
	Name     string // including leading dash(es)
	Style    Style
	Category Category
}

// exact lists options matched verbatim (for StyleFlag) or as a prefix of
// the argument with the remainder as value (for StyleJoined where Name ends
// without '='; "-std=" style names include the '=').
var exact = []Spec{
	// Pipeline-mode options.
	{"-c", StyleFlag, CatMode},
	{"-S", StyleFlag, CatMode},
	{"-E", StyleFlag, CatMode},

	// Output.
	{"-o", StyleJoinedOrSeparate, CatOutput},

	// Input control.
	{"-x", StyleJoinedOrSeparate, CatInputControl},
	{"-include", StyleSeparate, CatInputControl},
	{"-imacros", StyleSeparate, CatInputControl},

	// Preprocessor.
	{"-D", StyleJoinedOrSeparate, CatPreprocessor},
	{"-U", StyleJoinedOrSeparate, CatPreprocessor},
	{"-I", StyleJoinedOrSeparate, CatPreprocessor},
	{"-isystem", StyleJoinedOrSeparate, CatPreprocessor},
	{"-iquote", StyleJoinedOrSeparate, CatPreprocessor},
	{"-idirafter", StyleJoinedOrSeparate, CatPreprocessor},
	{"-iprefix", StyleSeparate, CatPreprocessor},
	{"-nostdinc", StyleFlag, CatPreprocessor},
	{"-M", StyleFlag, CatPreprocessor},
	{"-MM", StyleFlag, CatPreprocessor},
	{"-MD", StyleFlag, CatPreprocessor},
	{"-MMD", StyleFlag, CatPreprocessor},
	{"-MP", StyleFlag, CatPreprocessor},
	{"-MF", StyleSeparate, CatPreprocessor},
	{"-MT", StyleSeparate, CatPreprocessor},
	{"-MQ", StyleSeparate, CatPreprocessor},
	{"-P", StyleFlag, CatPreprocessor},
	{"-C", StyleFlag, CatPreprocessor},
	{"-H", StyleFlag, CatPreprocessor},
	{"-trigraphs", StyleFlag, CatPreprocessor},

	// Language / standards.
	{"-std=", StyleJoined, CatLanguage},
	{"-ansi", StyleFlag, CatLanguage},
	{"-fno-exceptions", StyleFlag, CatLanguage},
	{"-fexceptions", StyleFlag, CatLanguage},
	{"-frtti", StyleFlag, CatLanguage},
	{"-fno-rtti", StyleFlag, CatLanguage},

	// Debug.
	{"-g", StyleJoined, CatDebug}, // -g, -g0..3, -ggdb, -gdwarf-5 all share the prefix
	{"-p", StyleFlag, CatDebug},
	{"-pg", StyleFlag, CatDebug},

	// Warnings.
	{"-w", StyleFlag, CatWarning},
	{"-pedantic", StyleFlag, CatWarning},
	{"-pedantic-errors", StyleFlag, CatWarning},

	// Optimization family head; the -O joined family covers -O0..-O3, -Os,
	// -Ofast, -Og, -Oz and bare -O.
	{"-O", StyleJoined, CatOptimization},

	// Linker-facing options.
	{"-L", StyleJoinedOrSeparate, CatLinker},
	{"-l", StyleJoinedOrSeparate, CatLinker},
	{"-shared", StyleFlag, CatLinker},
	{"-static", StyleFlag, CatLinker},
	{"-static-libgcc", StyleFlag, CatLinker},
	{"-static-libstdc++", StyleFlag, CatLinker},
	{"-rdynamic", StyleFlag, CatLinker},
	{"-s", StyleFlag, CatLinker},
	{"-nostdlib", StyleFlag, CatLinker},
	{"-nodefaultlibs", StyleFlag, CatLinker},
	{"-nostartfiles", StyleFlag, CatLinker},
	{"-pie", StyleFlag, CatLinker},
	{"-no-pie", StyleFlag, CatLinker},
	{"-pthread", StyleFlag, CatLinker},
	{"-T", StyleSeparate, CatLinker},
	{"-u", StyleJoinedOrSeparate, CatLinker},
	{"-z", StyleSeparate, CatLinker},
	{"-Xlinker", StyleSeparate, CatLinker},
	{"-Xpreprocessor", StyleSeparate, CatPreprocessor},
	{"-Xassembler", StyleSeparate, CatOther},
	{"-Wl,", StyleJoined, CatLinker},
	{"-Wp,", StyleJoined, CatPreprocessor},
	{"-Wa,", StyleJoined, CatOther},

	// Diagnostics / driver behavior.
	{"-v", StyleFlag, CatDiagnostic},
	{"-###", StyleFlag, CatDiagnostic},
	{"--version", StyleFlag, CatDiagnostic},
	{"--help", StyleFlag, CatDiagnostic},
	{"-dumpversion", StyleFlag, CatDiagnostic},
	{"-dumpmachine", StyleFlag, CatDiagnostic},
	{"-print-search-dirs", StyleFlag, CatDiagnostic},
	{"-print-file-name=", StyleJoined, CatDiagnostic},
	{"-pipe", StyleFlag, CatOther},
	{"-Q", StyleFlag, CatDiagnostic},
	{"--param", StyleSeparate, CatOptimization},
	{"-specs=", StyleJoined, CatOther},
	{"-wrapper", StyleSeparate, CatOther},
}

// families are open-ended option namespaces matched by prefix when no exact
// spec applies. GCC's thousands of options overwhelmingly live here.
var families = []Spec{
	{"-W", StyleJoined, CatWarning},      // -Wall, -Werror=..., -Wno-unused...
	{"-f", StyleJoined, CatOptimization}, // -funroll-loops, -fomit-frame-pointer...
	{"-m", StyleJoined, CatMachine},      // -march=, -mtune=, -mavx2, -msse4.1...
	{"-d", StyleJoined, CatDiagnostic},   // dump switches
	{"-no", StyleJoined, CatOther},
	{"--", StyleJoined, CatOther},
}

// codegenPrefixes identifies -f options that affect code generation rather
// than optimization proper; the distinction matters to adapters that must
// preserve ABI-relevant switches while retuning optimization.
var codegenPrefixes = []string{
	"-fPIC", "-fpic", "-fPIE", "-fpie", "-fprofile", "-fcoverage", "-flto",
	"-ffat-lto-objects", "-fno-lto", "-fopenmp", "-fstack-protector",
	"-fvisibility", "-fcf-protection", "-ffunction-sections", "-fdata-sections",
}

// lookup finds the Spec matching arg, returning the spec, the value already
// joined to it (if any), and whether a match was found. Longest exact names
// win (e.g. -static-libgcc before -static, -MF before -M).
func lookup(arg string) (Spec, string, bool) {
	best := Spec{}
	bestLen := -1
	for _, s := range exact {
		switch s.Style {
		case StyleFlag:
			if arg == s.Name && len(s.Name) > bestLen {
				best, bestLen = s, len(s.Name)
			}
		case StyleJoined:
			if len(arg) >= len(s.Name) && arg[:len(s.Name)] == s.Name && len(s.Name) > bestLen {
				best, bestLen = s, len(s.Name)
			}
		case StyleSeparate:
			if arg == s.Name && len(s.Name) > bestLen {
				best, bestLen = s, len(s.Name)
			}
		case StyleJoinedOrSeparate:
			if len(arg) >= len(s.Name) && arg[:len(s.Name)] == s.Name && len(s.Name) > bestLen {
				best, bestLen = s, len(s.Name)
			}
		}
	}
	if bestLen >= 0 {
		switch best.Style {
		case StyleFlag, StyleSeparate:
			return best, "", true
		default:
			return best, arg[len(best.Name):], true
		}
	}
	for _, s := range families {
		if len(arg) > len(s.Name) && arg[:len(s.Name)] == s.Name {
			sp := s
			// Refine -f classification into codegen vs optimization.
			if s.Name == "-f" {
				for _, p := range codegenPrefixes {
					if len(arg) >= len(p) && arg[:len(p)] == p {
						sp.Category = CatCodegen
						break
					}
				}
			}
			return sp, arg[len(s.Name):], true
		}
	}
	return Spec{}, "", false
}

// OptionCount reports the number of distinct exact option specs in the
// table (the families extend coverage to the full open-ended namespaces).
func OptionCount() int { return len(exact) }
