package cclang

import (
	"strings"
	"testing"
)

// TestAllCuratedSpellingsParse: every concretely-modeled spelling must
// parse, render back verbatim, and land in a sensible category.
func TestAllCuratedSpellingsParse(t *testing.T) {
	wantCat := map[string][]Category{
		"warning":      {CatWarning},
		"optimization": {CatOptimization, CatCodegen},
		"codegen":      {CatCodegen, CatOptimization, CatLanguage},
		"machine":      {CatMachine},
		"language":     {CatLanguage, CatOptimization, CatCodegen},
		"debug":        {CatDebug, CatOptimization, CatDiagnostic},
		"diagnostic":   {CatDiagnostic, CatOptimization, CatWarning, CatOther},
	}
	for family, spellings := range FamilySpellings() {
		for _, sp := range spellings {
			argv := []string{"gcc", sp, "-c", "x.c"}
			if strings.HasPrefix(sp, "-dump") {
				// -dumpbase/-dumpdir take separate values in real GCC; the
				// family rule treats them as joined, which is fine for
				// model purposes — just ensure they parse.
				argv = []string{"gcc", sp, "-c", "x.c"}
			}
			cmd, err := Parse(argv)
			if err != nil {
				t.Errorf("%s: Parse(%s): %v", family, sp, err)
				continue
			}
			rendered := cmd.Render()
			found := false
			for _, tok := range rendered {
				if tok == sp {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: %s did not round-trip: %v", family, sp, rendered)
			}
			// Category check on the parsed token.
			okCat := false
			for _, tok := range cmd.Tokens {
				if tok.Opt == "" || tok.Opt+tok.Value != sp {
					continue
				}
				for _, want := range wantCat[family] {
					if tok.Category == want {
						okCat = true
					}
				}
			}
			if !okCat {
				// Locate the actual category for the message.
				for _, tok := range cmd.Tokens {
					if tok.Opt+tok.Value == sp {
						t.Errorf("%s: %s classified as %v", family, sp, tok.Category)
					}
				}
			}
		}
	}
}

func TestKnownSpellingsBreadth(t *testing.T) {
	if n := KnownSpellings(); n < 300 {
		t.Errorf("concrete option coverage = %d spellings, want >= 300", n)
	}
}

func TestSanitizerAndLTOVariants(t *testing.T) {
	c := mustParse(t, "gcc", "-fsanitize=address", "-flto=thin", "-c", "x.c")
	if !c.LTO() {
		t.Error("-flto=thin not detected as LTO")
	}
	c = mustParse(t, "gcc", "-flto=auto", "-fno-lto", "-c", "x.c")
	if c.LTO() {
		t.Error("-fno-lto did not cancel -flto=auto")
	}
}

func TestStdVariants(t *testing.T) {
	for _, std := range []string{"c11", "c++20", "f2008", "gnu++17"} {
		c := mustParse(t, "gcc", "-std="+std, "-c", "x.c")
		got, ok := c.Std()
		if !ok || got != std {
			t.Errorf("Std(%s) = %q, %v", std, got, ok)
		}
	}
}

func TestMachineVectorWidthFlags(t *testing.T) {
	c := mustParse(t, "gcc", "-mprefer-vector-width=512", "-mavx512f", "-c", "x.c")
	count := 0
	for _, tok := range c.Tokens {
		if tok.Opt == "-m" && tok.Category == CatMachine {
			count++
		}
	}
	if count != 2 {
		t.Errorf("machine tokens = %d, want 2", count)
	}
}
