package cclang

import (
	"fmt"
	"path"
	"strings"
)

// Mode is the driver pipeline mode selected by a command line.
type Mode uint8

// Driver modes.
const (
	ModeLink        Mode = iota // default: compile inputs as needed, then link
	ModeCompile                 // -c: stop after producing object files
	ModeAssembleSrc             // -S: stop after producing assembly
	ModePreprocess              // -E: stop after preprocessing
	ModeInfo                    // --version and friends: no inputs processed
)

func (m Mode) String() string {
	switch m {
	case ModeLink:
		return "link"
	case ModeCompile:
		return "compile"
	case ModeAssembleSrc:
		return "assemble"
	case ModePreprocess:
		return "preprocess"
	case ModeInfo:
		return "info"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Token is one parsed element of a command line, preserving enough shape
// to render the original argv back.
type Token struct {
	// Input is set (and Opt empty) for non-option arguments.
	Input string
	// Opt holds the option name for option tokens; Value its value.
	Opt      string
	Value    string
	Style    Style
	Category Category
	// SepValue records that a JoinedOrSeparate value arrived as a separate
	// argv element, so rendering reproduces the original spelling.
	SepValue bool
}

// Command is a parsed compiler-driver invocation.
type Command struct {
	// Tool is argv[0] as written (gcc, g++, cc, gfortran, mpicc, ...).
	Tool   string
	Tokens []Token
}

// Parse converts argv (including argv[0]) into a Command.
func Parse(argv []string) (*Command, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("cclang: empty argv")
	}
	cmd := &Command{Tool: argv[0]}
	i := 1
	for i < len(argv) {
		arg := argv[i]
		if arg == "-" || !strings.HasPrefix(arg, "-") {
			cmd.Tokens = append(cmd.Tokens, Token{Input: arg})
			i++
			continue
		}
		spec, joined, ok := lookup(arg)
		if !ok {
			return nil, fmt.Errorf("cclang: unknown option %q", arg)
		}
		tok := Token{Opt: spec.Name, Style: spec.Style, Category: spec.Category}
		switch spec.Style {
		case StyleFlag:
			i++
		case StyleJoined:
			tok.Value = joined
			i++
		case StyleSeparate:
			if i+1 >= len(argv) {
				return nil, fmt.Errorf("cclang: option %q requires an argument", arg)
			}
			tok.Value = argv[i+1]
			tok.SepValue = true
			i += 2
		case StyleJoinedOrSeparate:
			if joined != "" {
				tok.Value = joined
				i++
			} else {
				if i+1 >= len(argv) {
					return nil, fmt.Errorf("cclang: option %q requires an argument", arg)
				}
				tok.Value = argv[i+1]
				tok.SepValue = true
				i += 2
			}
		}
		cmd.Tokens = append(cmd.Tokens, tok)
	}
	return cmd, nil
}

// Render reproduces the argv (including argv[0]) of the command.
func (c *Command) Render() []string {
	out := []string{c.Tool}
	for _, t := range c.Tokens {
		if t.Opt == "" {
			out = append(out, t.Input)
			continue
		}
		switch t.Style {
		case StyleFlag:
			out = append(out, t.Opt)
		case StyleJoined:
			out = append(out, t.Opt+t.Value)
		case StyleSeparate:
			out = append(out, t.Opt, t.Value)
		case StyleJoinedOrSeparate:
			if t.SepValue {
				out = append(out, t.Opt, t.Value)
			} else {
				out = append(out, t.Opt+t.Value)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the command.
func (c *Command) Clone() *Command {
	out := &Command{Tool: c.Tool, Tokens: append([]Token(nil), c.Tokens...)}
	return out
}

// Mode determines the pipeline mode. Later mode flags win, matching the
// driver; any info flag short-circuits.
func (c *Command) Mode() Mode {
	mode := ModeLink
	for _, t := range c.Tokens {
		switch t.Opt {
		case "-c":
			mode = ModeCompile
		case "-S":
			mode = ModeAssembleSrc
		case "-E":
			mode = ModePreprocess
		case "--version", "--help", "-dumpversion", "-dumpmachine", "-print-search-dirs":
			return ModeInfo
		}
	}
	return mode
}

// Inputs returns the non-option arguments (source files, objects, archives).
func (c *Command) Inputs() []string {
	var out []string
	for _, t := range c.Tokens {
		if t.Opt == "" {
			out = append(out, t.Input)
		}
	}
	return out
}

// value returns the last value of option name, and whether it appeared.
func (c *Command) value(name string) (string, bool) {
	v, ok := "", false
	for _, t := range c.Tokens {
		if t.Opt == name {
			v, ok = t.Value, true
		}
	}
	return v, ok
}

// Output returns the explicit -o value, if any.
func (c *Command) Output() (string, bool) { return c.value("-o") }

// DefaultOutput computes the output path the driver would choose for input
// under the command's mode when no -o is given.
func (c *Command) DefaultOutput(input string) string {
	stem := strings.TrimSuffix(path.Base(input), path.Ext(input))
	switch c.Mode() {
	case ModeCompile:
		return stem + ".o"
	case ModeAssembleSrc:
		return stem + ".s"
	case ModePreprocess:
		return "" // stdout
	default:
		return "a.out"
	}
}

// Outputs lists every file the command produces: the -o target, or one
// default-named object per source input in -c mode.
func (c *Command) Outputs() []string {
	if out, ok := c.Output(); ok {
		return []string{out}
	}
	switch c.Mode() {
	case ModeCompile, ModeAssembleSrc:
		var outs []string
		for _, in := range c.Inputs() {
			if IsSourceFile(in) {
				outs = append(outs, c.DefaultOutput(in))
			}
		}
		return outs
	case ModeLink:
		return []string{"a.out"}
	default:
		return nil
	}
}

// OptLevel returns the effective optimization level ("0" when none given;
// later -O flags win). Bare -O means -O1.
func (c *Command) OptLevel() string {
	level := "0"
	for _, t := range c.Tokens {
		if t.Opt == "-O" {
			if t.Value == "" {
				level = "1"
			} else {
				level = t.Value
			}
		}
	}
	return level
}

// March returns the -march= value, if any.
func (c *Command) March() (string, bool) {
	for i := len(c.Tokens) - 1; i >= 0; i-- {
		t := c.Tokens[i]
		if t.Opt == "-m" && strings.HasPrefix(t.Value, "arch=") {
			return strings.TrimPrefix(t.Value, "arch="), true
		}
	}
	return "", false
}

// Mtune returns the -mtune= value, if any.
func (c *Command) Mtune() (string, bool) {
	for i := len(c.Tokens) - 1; i >= 0; i-- {
		t := c.Tokens[i]
		if t.Opt == "-m" && strings.HasPrefix(t.Value, "tune=") {
			return strings.TrimPrefix(t.Value, "tune="), true
		}
	}
	return "", false
}

// HasFlag reports whether the exact option spelling (e.g. "-flto",
// "-fprofile-generate", "-shared") appears.
func (c *Command) HasFlag(spelling string) bool {
	for _, t := range c.Tokens {
		if t.Opt == spelling && t.Value == "" {
			return true
		}
		if t.Style == StyleJoined && t.Opt+t.Value == spelling {
			return true
		}
	}
	return false
}

// LTO reports whether link-time optimization is enabled (-flto or
// -flto=...), honouring a later -fno-lto.
func (c *Command) LTO() bool {
	on := false
	for _, t := range c.Tokens {
		full := t.Opt + t.Value
		if full == "-flto" || strings.HasPrefix(full, "-flto=") {
			on = true
		}
		if full == "-fno-lto" {
			on = false
		}
	}
	return on
}

// ProfileGenerate reports whether -fprofile-generate is active, returning
// the profile directory if one was given.
func (c *Command) ProfileGenerate() (dir string, on bool) {
	for _, t := range c.Tokens {
		full := t.Opt + t.Value
		if full == "-fprofile-generate" {
			on, dir = true, ""
		}
		if strings.HasPrefix(full, "-fprofile-generate=") {
			on, dir = true, strings.TrimPrefix(full, "-fprofile-generate=")
		}
	}
	return dir, on
}

// ProfileUse reports whether -fprofile-use is active, returning the profile
// path if one was given.
func (c *Command) ProfileUse() (p string, on bool) {
	for _, t := range c.Tokens {
		full := t.Opt + t.Value
		if full == "-fprofile-use" {
			on, p = true, ""
		}
		if strings.HasPrefix(full, "-fprofile-use=") {
			on, p = true, strings.TrimPrefix(full, "-fprofile-use=")
		}
	}
	return p, on
}

// Shared reports whether -shared was given.
func (c *Command) Shared() bool { return c.HasFlag("-shared") }

// OpenMP reports whether -fopenmp was given.
func (c *Command) OpenMP() bool { return c.HasFlag("-fopenmp") }

// IncludeDirs returns -I/-isystem/-iquote directories in order.
func (c *Command) IncludeDirs() []string {
	var out []string
	for _, t := range c.Tokens {
		switch t.Opt {
		case "-I", "-isystem", "-iquote", "-idirafter":
			out = append(out, t.Value)
		}
	}
	return out
}

// LibDirs returns -L directories in order.
func (c *Command) LibDirs() []string {
	var out []string
	for _, t := range c.Tokens {
		if t.Opt == "-L" {
			out = append(out, t.Value)
		}
	}
	return out
}

// Libs returns -l library names in order.
func (c *Command) Libs() []string {
	var out []string
	for _, t := range c.Tokens {
		if t.Opt == "-l" {
			out = append(out, t.Value)
		}
	}
	return out
}

// Defines returns -D macro definitions in order.
func (c *Command) Defines() []string {
	var out []string
	for _, t := range c.Tokens {
		if t.Opt == "-D" {
			out = append(out, t.Value)
		}
	}
	return out
}

// Std returns the -std= value, if any.
func (c *Command) Std() (string, bool) { return c.value("-std=") }

// Language guesses the source language from the tool name.
func (c *Command) Language() string {
	base := path.Base(c.Tool)
	switch {
	case strings.Contains(base, "g++"), strings.Contains(base, "c++"), base == "mpicxx", base == "mpic++":
		return "c++"
	case strings.Contains(base, "fortran"), base == "mpifort", base == "mpif90", base == "flang":
		return "fortran"
	default:
		return "c"
	}
}

// --- Rewriting API (used by system adapters) ---

// SetTool replaces the tool (argv[0]).
func (c *Command) SetTool(tool string) { c.Tool = tool }

// SetOptLevel removes existing -O options and appends -O<level>.
func (c *Command) SetOptLevel(level string) {
	c.RemoveOpt("-O")
	c.Tokens = append(c.Tokens, Token{Opt: "-O", Value: level, Style: StyleJoined, Category: CatOptimization})
}

// SetMarch removes existing -march= options and appends -march=<arch>.
func (c *Command) SetMarch(arch string) {
	c.removeMachineValue("arch=")
	c.Tokens = append(c.Tokens, Token{Opt: "-m", Value: "arch=" + arch, Style: StyleJoined, Category: CatMachine})
}

// SetMtune removes existing -mtune= options and appends -mtune=<cpu>.
func (c *Command) SetMtune(cpu string) {
	c.removeMachineValue("tune=")
	c.Tokens = append(c.Tokens, Token{Opt: "-m", Value: "tune=" + cpu, Style: StyleJoined, Category: CatMachine})
}

func (c *Command) removeMachineValue(prefix string) {
	kept := c.Tokens[:0]
	for _, t := range c.Tokens {
		if t.Opt == "-m" && strings.HasPrefix(t.Value, prefix) {
			continue
		}
		kept = append(kept, t)
	}
	c.Tokens = kept
}

// AddFlag appends a flag-or-joined option given its full spelling,
// e.g. "-flto", "-fprofile-use=/p/app.profdata".
func (c *Command) AddFlag(spelling string) error {
	spec, joined, ok := lookup(spelling)
	if !ok {
		return fmt.Errorf("cclang: cannot add unknown option %q", spelling)
	}
	c.Tokens = append(c.Tokens, Token{Opt: spec.Name, Value: joined, Style: spec.Style, Category: spec.Category})
	return nil
}

// RemoveOpt deletes every token whose option name is opt.
func (c *Command) RemoveOpt(opt string) {
	kept := c.Tokens[:0]
	for _, t := range c.Tokens {
		if t.Opt == opt {
			continue
		}
		kept = append(kept, t)
	}
	c.Tokens = kept
}

// RemoveFlag deletes every token whose full spelling (Opt+Value) is s.
func (c *Command) RemoveFlag(s string) {
	kept := c.Tokens[:0]
	for _, t := range c.Tokens {
		if t.Opt+t.Value == s {
			continue
		}
		kept = append(kept, t)
	}
	c.Tokens = kept
}

// SetOutput replaces (or adds) the -o option.
func (c *Command) SetOutput(p string) {
	c.RemoveOpt("-o")
	c.Tokens = append(c.Tokens, Token{Opt: "-o", Value: p, Style: StyleJoinedOrSeparate, SepValue: true, Category: CatOutput})
}

// ReplaceInput substitutes old with new among the non-option arguments.
func (c *Command) ReplaceInput(old, new string) {
	for i, t := range c.Tokens {
		if t.Opt == "" && t.Input == old {
			c.Tokens[i].Input = new
		}
	}
}

// IsSourceFile reports whether p looks like a compilable source file.
func IsSourceFile(p string) bool {
	switch path.Ext(p) {
	case ".c", ".cc", ".cpp", ".cxx", ".C", ".f", ".f90", ".f95", ".F", ".F90", ".s", ".S", ".i", ".ii":
		return true
	default:
		return false
	}
}

// IsObjectFile reports whether p looks like a relocatable object.
func IsObjectFile(p string) bool { return path.Ext(p) == ".o" }

// IsArchiveFile reports whether p looks like a static archive.
func IsArchiveFile(p string) bool { return path.Ext(p) == ".a" }

// IsSharedObject reports whether p looks like a shared library.
func IsSharedObject(p string) bool {
	return path.Ext(p) == ".so" || strings.Contains(path.Base(p), ".so.")
}

// IsCompilerTool reports whether the command name is a compiler driver this
// package models (used by the hijacker to decide what to record).
func IsCompilerTool(name string) bool {
	switch path.Base(name) {
	case "gcc", "g++", "cc", "c++", "gfortran", "clang", "clang++",
		"mpicc", "mpicxx", "mpic++", "mpifort", "mpif90":
		return true
	default:
		return false
	}
}
