package cclang

import (
	"fmt"
	"path"
	"strings"
)

// ArchiveCommand is a parsed `ar` invocation — the compilation model of .a
// nodes, which "represents the archive contents" (paper §4.3).
type ArchiveCommand struct {
	Tool    string
	Ops     string   // the operation/modifier string, e.g. "rcs"
	Archive string   // the .a file operated on
	Members []string // object files added/replaced
}

// ParseArchive parses an ar command line such as "ar rcs libm.a a.o b.o".
func ParseArchive(argv []string) (*ArchiveCommand, error) {
	if len(argv) < 3 {
		return nil, fmt.Errorf("cclang: ar needs an operation and an archive, got %v", argv)
	}
	if base := path.Base(argv[0]); base != "ar" && base != "llvm-ar" {
		return nil, fmt.Errorf("cclang: %q is not an archiver", argv[0])
	}
	ops := strings.TrimPrefix(argv[1], "-")
	if ops == "" {
		return nil, fmt.Errorf("cclang: empty ar operation")
	}
	valid := "qrtpxdmabcfilNoPsSTuvV"
	for _, c := range ops {
		if !strings.ContainsRune(valid, c) {
			return nil, fmt.Errorf("cclang: unknown ar modifier %q in %q", c, ops)
		}
	}
	cmd := &ArchiveCommand{Tool: argv[0], Ops: ops, Archive: argv[2], Members: argv[3:]}
	if !IsArchiveFile(cmd.Archive) {
		return nil, fmt.Errorf("cclang: ar target %q is not a .a file", cmd.Archive)
	}
	return cmd, nil
}

// Render reproduces the argv of the archive command.
func (a *ArchiveCommand) Render() []string {
	out := []string{a.Tool, a.Ops, a.Archive}
	return append(out, a.Members...)
}

// Creates reports whether the operation creates/updates the archive
// (as opposed to only listing or extracting).
func (a *ArchiveCommand) Creates() bool {
	return strings.ContainsAny(a.Ops, "qr")
}

// IsArchiverTool reports whether the command name is an archiver.
func IsArchiverTool(name string) bool {
	switch path.Base(name) {
	case "ar", "llvm-ar", "ranlib":
		return true
	default:
		return false
	}
}
