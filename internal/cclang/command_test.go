package cclang

import (
	"reflect"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, argv ...string) *Command {
	t.Helper()
	c, err := Parse(argv)
	if err != nil {
		t.Fatalf("Parse(%v): %v", argv, err)
	}
	return c
}

func TestParseCompile(t *testing.T) {
	c := mustParse(t, "gcc", "-O2", "-march=x86-64", "-I", "include", "-Iother", "-DNDEBUG", "-c", "src/main.c", "-o", "build/main.o")
	if c.Mode() != ModeCompile {
		t.Errorf("Mode = %v", c.Mode())
	}
	if got := c.Inputs(); !reflect.DeepEqual(got, []string{"src/main.c"}) {
		t.Errorf("Inputs = %v", got)
	}
	out, ok := c.Output()
	if !ok || out != "build/main.o" {
		t.Errorf("Output = %q, %v", out, ok)
	}
	if c.OptLevel() != "2" {
		t.Errorf("OptLevel = %q", c.OptLevel())
	}
	if m, ok := c.March(); !ok || m != "x86-64" {
		t.Errorf("March = %q, %v", m, ok)
	}
	if got := c.IncludeDirs(); !reflect.DeepEqual(got, []string{"include", "other"}) {
		t.Errorf("IncludeDirs = %v", got)
	}
	if got := c.Defines(); !reflect.DeepEqual(got, []string{"NDEBUG"}) {
		t.Errorf("Defines = %v", got)
	}
}

func TestParseLink(t *testing.T) {
	c := mustParse(t, "g++", "main.o", "util.o", "-L/opt/blas/lib", "-lblas", "-lm", "-o", "app", "-flto", "-fopenmp", "-pthread")
	if c.Mode() != ModeLink {
		t.Errorf("Mode = %v", c.Mode())
	}
	if got := c.Libs(); !reflect.DeepEqual(got, []string{"blas", "m"}) {
		t.Errorf("Libs = %v", got)
	}
	if got := c.LibDirs(); !reflect.DeepEqual(got, []string{"/opt/blas/lib"}) {
		t.Errorf("LibDirs = %v", got)
	}
	if !c.LTO() {
		t.Error("LTO not detected")
	}
	if !c.OpenMP() {
		t.Error("OpenMP not detected")
	}
	if c.Language() != "c++" {
		t.Errorf("Language = %q", c.Language())
	}
}

func TestModeLastWinsAndInfo(t *testing.T) {
	c := mustParse(t, "gcc", "-E", "-c", "a.c")
	if c.Mode() != ModeCompile {
		t.Errorf("Mode = %v, want compile (last wins)", c.Mode())
	}
	c = mustParse(t, "gcc", "--version")
	if c.Mode() != ModeInfo {
		t.Errorf("Mode = %v, want info", c.Mode())
	}
}

func TestOptLevelVariants(t *testing.T) {
	cases := map[string]string{
		"-O0": "0", "-O1": "1", "-O2": "2", "-O3": "3",
		"-Os": "s", "-Ofast": "fast", "-Og": "g", "-O": "1",
	}
	for flag, want := range cases {
		c := mustParse(t, "gcc", flag, "-c", "a.c")
		if got := c.OptLevel(); got != want {
			t.Errorf("OptLevel(%s) = %q, want %q", flag, got, want)
		}
	}
	// Later flag wins.
	c := mustParse(t, "gcc", "-O3", "-O0", "-c", "a.c")
	if c.OptLevel() != "0" {
		t.Errorf("OptLevel = %q, want 0", c.OptLevel())
	}
	// No flag at all.
	c = mustParse(t, "gcc", "-c", "a.c")
	if c.OptLevel() != "0" {
		t.Errorf("default OptLevel = %q", c.OptLevel())
	}
}

func TestLTONegation(t *testing.T) {
	c := mustParse(t, "gcc", "-flto", "-fno-lto", "-c", "a.c")
	if c.LTO() {
		t.Error("-fno-lto did not cancel -flto")
	}
	c = mustParse(t, "gcc", "-flto=8", "-c", "a.c")
	if !c.LTO() {
		t.Error("-flto=8 not detected")
	}
}

func TestProfileFlags(t *testing.T) {
	c := mustParse(t, "gcc", "-fprofile-generate=/prof", "-c", "a.c")
	dir, on := c.ProfileGenerate()
	if !on || dir != "/prof" {
		t.Errorf("ProfileGenerate = %q, %v", dir, on)
	}
	c = mustParse(t, "gcc", "-fprofile-use", "-c", "a.c")
	if _, on := c.ProfileUse(); !on {
		t.Error("ProfileUse not detected")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	argvs := [][]string{
		{"gcc", "-O2", "-c", "main.c", "-o", "main.o"},
		{"g++", "-std=c++17", "-Iinclude", "-I", "sep", "-Wall", "-Wextra", "-c", "a.cc"},
		{"gcc", "a.o", "b.o", "-lm", "-o", "app"},
		{"gfortran", "-O3", "-march=armv8-a", "-funroll-loops", "-c", "solve.f90"},
		{"gcc", "-shared", "-fPIC", "x.o", "-o", "libx.so"},
		{"gcc", "-Wl,-rpath,/opt/lib", "-L", "/opt/lib", "a.o", "-o", "a"},
		{"mpicc", "-DUSE_MPI", "-O2", "lulesh.cc", "-o", "lulesh", "-lmpi"},
	}
	for _, argv := range argvs {
		c := mustParse(t, argv...)
		got := c.Render()
		if !reflect.DeepEqual(got, argv) {
			t.Errorf("Render(%v) = %v", argv, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"gcc", "-o"},               // missing separate value
		{"gcc", "-I"},               // missing joined-or-separate value
		{"gcc", "-Qbogus"},          // unknown
		{"gcc", "--bogus-long-opt"}, // matched by -- family? ensure it's tolerated or erred consistently
	}
	for i, argv := range bad[:4] {
		if _, err := Parse(argv); err == nil {
			t.Errorf("case %d: Parse(%v) succeeded", i, argv)
		}
	}
}

func TestDefaultOutputs(t *testing.T) {
	c := mustParse(t, "gcc", "-c", "src/kernel.c", "phys.c")
	if got := c.Outputs(); !reflect.DeepEqual(got, []string{"kernel.o", "phys.o"}) {
		t.Errorf("Outputs = %v", got)
	}
	c = mustParse(t, "gcc", "main.o")
	if got := c.Outputs(); !reflect.DeepEqual(got, []string{"a.out"}) {
		t.Errorf("Outputs = %v", got)
	}
}

func TestRewriteSetters(t *testing.T) {
	c := mustParse(t, "gcc", "-O1", "-march=x86-64", "-c", "a.c", "-o", "a.o")
	c.SetOptLevel("3")
	c.SetMarch("icelake-server")
	c.SetMtune("native")
	c.SetTool("vendor-cc")
	if err := c.AddFlag("-flto"); err != nil {
		t.Fatal(err)
	}
	if c.Tool != "vendor-cc" {
		t.Errorf("Tool = %q", c.Tool)
	}
	if c.OptLevel() != "3" {
		t.Errorf("OptLevel = %q", c.OptLevel())
	}
	if m, _ := c.March(); m != "icelake-server" {
		t.Errorf("March = %q", m)
	}
	if m, _ := c.Mtune(); m != "native" {
		t.Errorf("Mtune = %q", m)
	}
	if !c.LTO() {
		t.Error("AddFlag(-flto) had no effect")
	}
	// Inputs/outputs untouched by rewriting.
	if got := c.Inputs(); !reflect.DeepEqual(got, []string{"a.c"}) {
		t.Errorf("Inputs = %v", got)
	}
	out, _ := c.Output()
	if out != "a.o" {
		t.Errorf("Output = %q", out)
	}
	// Only one -O token remains.
	count := 0
	for _, tok := range c.Tokens {
		if tok.Opt == "-O" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("found %d -O tokens", count)
	}
}

func TestRemoveFlagAndReplaceInput(t *testing.T) {
	c := mustParse(t, "gcc", "-flto", "-O2", "a.c", "-c")
	c.RemoveFlag("-flto")
	if c.LTO() {
		t.Error("RemoveFlag(-flto) had no effect")
	}
	c.ReplaceInput("a.c", "b.c")
	if got := c.Inputs(); !reflect.DeepEqual(got, []string{"b.c"}) {
		t.Errorf("Inputs = %v", got)
	}
}

func TestSetOutput(t *testing.T) {
	c := mustParse(t, "gcc", "-c", "a.c")
	c.SetOutput("/build/a.o")
	out, ok := c.Output()
	if !ok || out != "/build/a.o" {
		t.Errorf("Output = %q", out)
	}
}

func TestCategoryClassification(t *testing.T) {
	c := mustParse(t, "gcc", "-fPIC", "-funroll-loops", "-Wall", "-mavx2", "-c", "a.c")
	cats := map[string]Category{}
	for _, tok := range c.Tokens {
		if tok.Opt != "" {
			cats[tok.Opt+tok.Value] = tok.Category
		}
	}
	if cats["-fPIC"] != CatCodegen {
		t.Errorf("-fPIC category = %v", cats["-fPIC"])
	}
	if cats["-funroll-loops"] != CatOptimization {
		t.Errorf("-funroll-loops category = %v", cats["-funroll-loops"])
	}
	if cats["-Wall"] != CatWarning {
		t.Errorf("-Wall category = %v", cats["-Wall"])
	}
	if cats["-mavx2"] != CatMachine {
		t.Errorf("-mavx2 category = %v", cats["-mavx2"])
	}
}

func TestFileKindPredicates(t *testing.T) {
	if !IsSourceFile("a.c") || !IsSourceFile("b.f90") || !IsSourceFile("x.cc") {
		t.Error("source predicate too strict")
	}
	if IsSourceFile("a.o") || IsSourceFile("lib.a") {
		t.Error("source predicate too loose")
	}
	if !IsObjectFile("a.o") || !IsArchiveFile("lib.a") || !IsSharedObject("libx.so") || !IsSharedObject("libx.so.6") {
		t.Error("object/archive/so predicates wrong")
	}
}

func TestLanguageDetection(t *testing.T) {
	cases := map[string]string{
		"gcc": "c", "cc": "c", "mpicc": "c",
		"g++": "c++", "c++": "c++", "mpicxx": "c++", "/usr/bin/g++-12": "c++",
		"gfortran": "fortran", "mpifort": "fortran",
	}
	for tool, want := range cases {
		c := mustParse(t, tool, "-c", "x.c")
		if got := c.Language(); got != want {
			t.Errorf("Language(%s) = %q, want %q", tool, got, want)
		}
	}
}

// Property: parse→render→parse is a fixed point, and semantics survive.
func TestPropertyParseRenderFixedPoint(t *testing.T) {
	pool := [][]string{
		{"gcc", "-O2", "-c", "m.c", "-o", "m.o"},
		{"g++", "-O3", "-march=native", "-flto", "a.o", "b.o", "-lm", "-o", "app"},
		{"gfortran", "-Iinc", "-DX=1", "-c", "f.f90"},
		{"gcc", "-shared", "-fPIC", "-o", "lib.so", "p.o"},
		{"mpicc", "-fprofile-generate", "-O2", "-c", "k.c"},
	}
	f := func(idx uint8) bool {
		argv := pool[int(idx)%len(pool)]
		c1, err := Parse(argv)
		if err != nil {
			return false
		}
		r1 := c1.Render()
		c2, err := Parse(r1)
		if err != nil {
			return false
		}
		r2 := c2.Render()
		return reflect.DeepEqual(r1, r2) &&
			c1.Mode() == c2.Mode() &&
			c1.OptLevel() == c2.OptLevel() &&
			reflect.DeepEqual(c1.Inputs(), c2.Inputs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArchiveParse(t *testing.T) {
	a, err := ParseArchive([]string{"ar", "rcs", "libphysics.a", "eos.o", "hydro.o"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Archive != "libphysics.a" || len(a.Members) != 2 || !a.Creates() {
		t.Errorf("parsed %+v", a)
	}
	if got := a.Render(); !reflect.DeepEqual(got, []string{"ar", "rcs", "libphysics.a", "eos.o", "hydro.o"}) {
		t.Errorf("Render = %v", got)
	}
	for _, bad := range [][]string{
		{"ar"},
		{"gcc", "rcs", "x.a"},
		{"ar", "Z!", "x.a"},
		{"ar", "rcs", "not-an-archive.o"},
	} {
		if _, err := ParseArchive(bad); err == nil {
			t.Errorf("ParseArchive(%v) succeeded", bad)
		}
	}
}

func TestOptionCount(t *testing.T) {
	if OptionCount() < 60 {
		t.Errorf("option table suspiciously small: %d", OptionCount())
	}
}
