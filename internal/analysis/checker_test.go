package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseTestPkg builds the minimal Package (Fset+Files) the suppression
// scanner needs.
func parseTestPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestScanAllowsFlagsMissingReason(t *testing.T) {
	pkg := parseTestPkg(t, `package p

func a() {
	//comtainer:allow lockio
	_ = 1
}

func b() {
	//comtainer:allow lockio -- rename must stay serialized
	_ = 2
}

func c() {
	//comtainer:allow lockio,errpropagate --
	_ = 3
}
`)
	sites, diags := scanAllows(pkg)
	if len(sites) != 3 {
		t.Fatalf("want 3 allow sites, got %d", len(sites))
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 missing-reason diagnostics (bare and empty-reason), got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != AllowAnalyzerName {
			t.Errorf("missing-reason diagnostic attributed to %q, want %q", d.Analyzer, AllowAnalyzerName)
		}
		if !strings.Contains(d.Message, "has no reason") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
	if diags[0].Pos.Line != 4 {
		t.Errorf("first bare allow reported at line %d, want 4", diags[0].Pos.Line)
	}
}

func TestAllowDiagnosticIsNotSuppressible(t *testing.T) {
	// A bare allow cannot be excused by another allow naming "allow".
	pkg := parseTestPkg(t, `package p

func a() {
	//comtainer:allow all -- blanket excuse attempt
	//comtainer:allow lockio
	_ = 1
}
`)
	ck := newChecker(nil)
	if _, err := ck.analyze(mustTypeCheck(t, pkg)); err != nil {
		t.Fatal(err)
	}
	diags, err := ck.finish()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range diags {
		if d.Analyzer == AllowAnalyzerName {
			found = true
			if d.Suppressed {
				t.Error("missing-reason diagnostic was suppressed by a blanket allow")
			}
		}
	}
	if !found {
		t.Fatal("bare allow produced no diagnostic")
	}
}

// mustTypeCheck fills in the type information analyze expects; the
// sources above have no imports, so the importer is never consulted.
func mustTypeCheck(t *testing.T, pkg *Package) *Package {
	t.Helper()
	info := NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		names     []string
		hasReason bool
	}{
		{"//comtainer:allow lockio -- held rename", []string{"lockio"}, true},
		{"//comtainer:allow lockio", []string{"lockio"}, false},
		{"//comtainer:allow lockio --   ", []string{"lockio"}, false},
		{"//comtainer:allow a,b -- spans both", []string{"a", "b"}, true},
		{"// just a comment", nil, false},
		{"//comtainer:allow", nil, false},
	}
	for _, c := range cases {
		names, hasReason := parseAllow(c.text)
		if len(names) != len(c.names) || hasReason != c.hasReason {
			t.Errorf("parseAllow(%q) = %v,%v; want %v,%v",
				c.text, names, hasReason, c.names, c.hasReason)
		}
	}
}
