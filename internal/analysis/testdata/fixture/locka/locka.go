// Package locka seeds a two-mutex, two-package lock-order cycle for
// the end-to-end vet test: CrossAB holds MuA while lockb.LockB takes
// MuB; CrossBA holds MuB while taking MuA. lockorder must stitch the
// two orders together through its exported facts and report the cycle.
package locka

import (
	"sync"

	"fixture/lockb"
)

// MuA is the first mutex of the seeded lock-order cycle.
var MuA sync.Mutex

// CrossAB acquires MuA, then (through lockb.LockB) MuB.
func CrossAB() {
	MuA.Lock()
	defer MuA.Unlock()
	lockb.LockB()
}

// CrossBA acquires MuB, then MuA — the opposite order.
func CrossBA() {
	lockb.MuB.Lock()
	defer lockb.MuB.Unlock()
	MuA.Lock()
	MuA.Unlock()
}
