// Package lockb owns one half of the fixture's seeded deadlock: MuB,
// acquired by LockB while package locka callers may hold MuA.
package lockb

import "sync"

// MuB is the second mutex of the seeded lock-order cycle.
var MuB sync.Mutex

// LockB acquires and releases MuB.
func LockB() {
	MuB.Lock()
	defer MuB.Unlock()
}
