// Package fixture is a tiny module the comtainer-vet end-to-end test
// runs the multichecker against. It deliberately violates nine of the
// enforced invariants (digestcmp, atomicwrite, gonaked, bodyclose,
// closeleak, timerstop, wgbalance here; guardedby and atomicmix in
// racecase.go) once each and contains one clean, suppressed site. It
// must not import comtainer/internal packages: those are invisible
// across the module boundary.
package fixture

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// IsDigest violates digestcmp: raw comparison against a sha256 literal.
func IsDigest(s string) bool {
	return s == "sha256:0000000000000000000000000000000000000000000000000000000000000000"
}

// WriteBlob violates atomicwrite: a direct write into a blobs/ store path.
func WriteBlob(root string, data []byte) error {
	return os.WriteFile(filepath.Join(root, "blobs", "x"), data, 0o644)
}

// Spawn violates gonaked: the goroutine is never joined.
func Spawn(fn func()) {
	go func() { fn() }()
}

// FetchStatus violates bodyclose: nothing ever closes resp.Body.
func FetchStatus(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// ReadHeader violates closeleak: f is never closed.
func ReadHeader(p string) ([]byte, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return buf, err
}

// WaitOne violates timerstop: the ticker is never stopped.
func WaitOne(d time.Duration) {
	t := time.NewTicker(d)
	<-t.C
}

// Begin violates wgbalance: the Add is stranded on the error path.
func Begin(ready bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	if !ready {
		return errors.New("not ready")
	}
	wg.Done()
	wg.Wait()
	return nil
}

// Allowed shows a suppressed site the vet must stay quiet about.
func Allowed(s string) bool {
	//comtainer:allow digestcmp -- fixture: deliberate raw comparison
	return s == "sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
}
