// Package fixture is a tiny module the comtainer-vet end-to-end test
// runs the multichecker against. It deliberately violates three of the
// enforced invariants (digestcmp, atomicwrite, gonaked) and contains
// one clean, suppressed site. It must not import comtainer/internal
// packages: those are invisible across the module boundary.
package fixture

import (
	"os"
	"path/filepath"
)

// IsDigest violates digestcmp: raw comparison against a sha256 literal.
func IsDigest(s string) bool {
	return s == "sha256:0000000000000000000000000000000000000000000000000000000000000000"
}

// WriteBlob violates atomicwrite: a direct write into a blobs/ store path.
func WriteBlob(root string, data []byte) error {
	return os.WriteFile(filepath.Join(root, "blobs", "x"), data, 0o644)
}

// Spawn violates gonaked: the goroutine is never joined.
func Spawn(fn func()) {
	go func() { fn() }()
}

// Allowed shows a suppressed site the vet must stay quiet about.
func Allowed(s string) bool {
	//comtainer:allow digestcmp -- fixture: deliberate raw comparison
	return s == "sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
}
