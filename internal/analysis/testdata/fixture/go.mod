module fixture

go 1.22

require comtainer v0.0.0

replace comtainer => ../../../..
