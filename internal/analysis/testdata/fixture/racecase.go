// racecase.go seeds the two static data-race violations: a field
// guarded by a mutex on most accesses but read bare (guardedby), and
// a field updated through sync/atomic but read plainly (atomicmix).
// The spawned goroutine is joined through a channel receive so the
// seeds trip exactly the intended analyzers and not gonaked.
package fixture

import (
	"sync"
	"sync/atomic"
)

// Counter guards n with mu on two of three accesses.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc holds the guard.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Reset holds the guard.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 0
}

// Peek violates guardedby: the inferred guard is not held.
func (c *Counter) Peek() int {
	return c.n
}

// Watch makes Counter goroutine-shared (joined, so gonaked stays
// quiet).
func Watch(c *Counter) {
	done := make(chan struct{})
	go func() {
		c.Inc()
		close(done)
	}()
	<-done
}

// Gauge updates hits atomically.
type Gauge struct {
	hits int64
}

// Hit updates through sync/atomic.
func (g *Gauge) Hit() {
	atomic.AddInt64(&g.hits, 1)
}

// Snapshot violates atomicmix: a plain read of the atomic word.
func (g *Gauge) Snapshot() int64 {
	return g.hits
}
