// Package analysis is a small, self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, rebuilt on the standard
// library so coMtainer's vettool carries no external dependencies.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The loader resolves packages and their import closure
// through `go list -deps -export -json`, type-checking target packages
// from source against compiler export data, so analyzers see exactly
// the types the compiler sees. The checker runs a suite of analyzers
// over loaded packages and applies the repository-wide suppression
// comment syntax:
//
//	//comtainer:allow <name>[,<name>...] [-- reason]
//
// placed on the flagged line, on the line immediately above it, or in
// the doc comment of the enclosing function declaration.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //comtainer:allow suppression comments. It must be a valid
	// identifier.
	Name string

	// Doc is a one-paragraph description of the enforced invariant.
	Doc string

	// Version participates in the incremental-cache key: bump it
	// whenever the analyzer's logic changes so stale cached results
	// are invalidated. Zero is treated as 1.
	Version int

	// FactType, when non-nil, is a pointer to the zero value of the
	// package-level fact this analyzer exports (its concrete type is
	// what ExportPackageFact accepts and PackageFact returns). Facts
	// must round-trip through encoding/json: cached packages
	// contribute their facts from disk instead of being re-analyzed.
	FactType Fact

	// Run applies the analyzer to one package. Packages are analyzed
	// in dependency order, so facts exported by a package's imports
	// are available through Pass.PackageFact.
	Run func(*Pass) error

	// Finish, when non-nil, runs once after every package has been
	// analyzed, with this analyzer's facts for all of them — the hook
	// whole-program passes (lock-order cycle detection) use.
	Finish func(*FinishPass) error
}

// Fact is a serializable, package-level statement an analyzer exports
// for downstream packages — the stdlib-only analogue of go/analysis
// facts. Implementations are plain structs with exported fields.
type Fact interface{ AFact() }

// Pass carries everything an analyzer may inspect about one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic.
	Report func(Diagnostic)

	// ExportPackageFact publishes fact (of the analyzer's FactType)
	// for the package under analysis. The fact must not be mutated
	// after export. Nil when the analyzer declares no FactType.
	ExportPackageFact func(fact Fact)

	// PackageFact returns the fact this analyzer exported for the
	// package with the given import path, or nil when none exists
	// (package not analyzed, or no fact exported). The returned fact
	// is shared: treat it as read-only.
	PackageFact func(path string) Fact

	// AnalyzerFact returns the fact the named analyzer exported for
	// the package with the given import path — including the package
	// under analysis, when that analyzer ran earlier in the suite.
	// This is how layered analyzers (guardedby over lockorder's lock
	// summaries) share facts without re-deriving them; the consumer
	// must run after the producer in the suite and degrade gracefully
	// to nil when the producer was filtered out with -only.
	AnalyzerFact func(analyzer, path string) Fact
}

// FinishPass is the whole-program view handed to Analyzer.Finish after
// the per-package runs: every package fact this analyzer exported,
// keyed by import path, including facts replayed from the incremental
// cache.
type FinishPass struct {
	Analyzer *Analyzer

	// Facts maps package import path → the fact exported for it.
	Facts map[string]Fact

	// Report records one diagnostic. Positions must be resolved
	// token.Positions carried inside facts — the FileSet of cached
	// packages is not available here.
	Report func(Diagnostic)

	// AnalyzerFacts returns every package fact the named analyzer
	// exported (import path → fact), the whole-program counterpart of
	// Pass.AnalyzerFact. The returned map is shared: read-only.
	AnalyzerFacts func(analyzer string) map[string]Fact
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostic is one analyzer finding, located in resolved file
// coordinates so it can be printed and filtered without the FileSet.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string

	// Pkg is the import path of the package whose analysis produced
	// the diagnostic; "" for whole-program Finish findings, which
	// belong to no single package. It exists so report encoders can
	// order findings deterministically by (package, file, line,
	// analyzer) regardless of map-iteration order.
	Pkg string

	// Suppressed marks a diagnostic covered by a //comtainer:allow
	// comment. The checker keeps suppressed findings (flagged) so the
	// -json report can expose them; plain output drops them.
	Suppressed bool
}

// String formats the diagnostic the way vet does:
// path:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Callee resolves the static callee of call: a package-level function,
// a method (concrete or interface), or nil for calls through function
// values and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call is a static call to one of the named
// functions (or methods) declared in the package with path pkgPath.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// NamedTypePath returns the package path and type name of t's core
// named type, unwrapping pointers; both are "" for unnamed types.
func NamedTypePath(t types.Type) (pkgPath, name string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// FuncScopes walks file and calls fn for every function body — each
// FuncDecl and each FuncLit — passing the body and the enclosing
// *ast.FuncDecl when one exists (nil for file-level var initializers).
// Bodies of nested function literals are visited separately and are
// NOT re-walked as part of their parent, letting per-function
// analyzers treat each lexical function as its own scope.
func FuncScopes(file *ast.File, fn func(body *ast.BlockStmt, decl *ast.FuncDecl)) {
	var visit func(n ast.Node, decl *ast.FuncDecl)
	visit = func(n ast.Node, decl *ast.FuncDecl) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					fn(v.Body, v)
					visit(v.Body, v)
				}
				return false
			case *ast.FuncLit:
				fn(v.Body, decl)
				visit(v.Body, decl)
				return false
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body, d)
				visit(d.Body, d)
			}
		default:
			visit(d, nil)
		}
	}
}

// InspectShallow walks n but does not descend into nested function
// literals, so statement-order reasoning stays within one function.
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m != n {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
		}
		return fn(m)
	})
}
