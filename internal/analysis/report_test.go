package analysis

import (
	"go/token"
	"reflect"
	"testing"
)

func TestFindingsRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "a/a.go", Line: 12, Column: 3},
			Analyzer: "lockorder",
			Message:  "potential deadlock: lock order cycle: a.MuA -> b.MuB -> a.MuA",
		},
		{
			Pos:        token.Position{Filename: "b/b.go", Line: 4, Column: 1},
			Analyzer:   "ctxsleep",
			Message:    "raw time.Sleep in a loop",
			Suppressed: true,
		},
	}
	in := FindingsOf(diags)
	if !in[1].Suppressed {
		t.Fatal("Suppressed flag lost in FindingsOf")
	}

	b, err := EncodeFindings(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeFindings(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestEncodeFindingsEmptyIsArray(t *testing.T) {
	b, err := EncodeFindings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); got != "[]\n" {
		t.Fatalf("nil findings encoded as %q, want %q", got, "[]\n")
	}
	out, err := DecodeFindings(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d findings from empty array", len(out))
	}
}
