package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Target is one package matched by the load patterns, resolved but not
// yet parsed or type-checked. The split lets the incremental checker
// compute cache keys from Target metadata and skip Load entirely for
// packages whose cached results are still valid.
type Target struct {
	// Path is the package import path.
	Path string
	// Dir is the package's source directory (absolute).
	Dir string
	// GoFiles are the package's source file base names, in build
	// order, relative to Dir.
	GoFiles []string
	// Imports are the direct import paths (including stdlib).
	Imports []string

	fset    *token.FileSet
	exports map[string]string
	imp     types.Importer
}

// ExportFile returns the compiler export-data file recorded for the
// import path, or "" when go list produced none.
func (t *Target) ExportFile(path string) string { return t.exports[path] }

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Resolve expands patterns (e.g. "./...") relative to dir with the go
// command and returns one Target per matched package, in go list's
// dependency-first order. Imports — including sibling packages in the
// same module and vendored dependencies — will be satisfied from
// compiler export data produced by `go list -export`, so targets can
// be loaded in any order and see exactly the types the compiler saw.
// Test files are not loaded: the invariants the analyzers enforce
// apply to library and binary code.
func Resolve(dir string, patterns ...string) ([]*Target, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*Target
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", p.ImportPath)
		}
		targets = append(targets, &Target{
			Path:    p.ImportPath,
			Dir:     p.Dir,
			GoFiles: p.GoFiles,
			Imports: p.Imports,
		})
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	for _, t := range targets {
		t.fset, t.exports, t.imp = fset, exports, imp
	}
	return targets, nil
}

// Load parses and type-checks the target. Calls share one FileSet and
// one caching importer across all targets of a Resolve.
func (t *Target) Load() (*Package, error) {
	return typeCheckDir(t.fset, t.imp, t.Path, t.Dir, t.GoFiles)
}

// Load resolves patterns relative to dir and type-checks every matched
// package from source — Resolve plus Target.Load over each result.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := Resolve(dir, patterns...)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := t.Load()
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -deps -export -json` in dir and decodes the
// stream of package objects.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Imports,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}
	var out []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// ExportImporter returns a types.Importer that reads compiler export
// data located by lookup (import path → export file). The importer
// caches, so one instance may be shared across many type-check calls.
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo returns a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// typeCheckDir parses the named files of one package and type-checks
// them against imp.
func typeCheckDir(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
