package analysis_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comtainer/internal/analysis"
)

// writeTree materializes a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadTypeErrorIsCleanDiagnostic(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmod\n\ngo 1.22\n",
		"bad.go": "package tmod\n\nfunc Broken() int { return \"not an int\" }\n",
	})
	_, err := analysis.Load(dir, ".")
	if err == nil {
		t.Fatal("loading a package with a type error succeeded")
	}
	if !strings.Contains(err.Error(), "analysis:") {
		t.Fatalf("type-error diagnostic lost its analysis prefix: %v", err)
	}
}

func TestExportImporterMissingExportData(t *testing.T) {
	imp := analysis.ExportImporter(token.NewFileSet(), func(string) (string, bool) {
		return "", false
	})
	_, err := imp.Import("os")
	if err == nil {
		t.Fatal("importing without export data succeeded")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Fatalf("missing export data surfaced as %v", err)
	}
}

// vendoredModule is a module whose only dependency lives in vendor/,
// so loading exercises the -mod=vendor resolution path offline.
func vendoredModule(t *testing.T, mainSrc string) string {
	t.Helper()
	return writeTree(t, map[string]string{
		"go.mod": "module vmod\n\ngo 1.22\n\nrequire example.com/dep v0.0.0\n",
		"a.go":   mainSrc,
		"vendor/modules.txt": "# example.com/dep v0.0.0\n" +
			"## explicit; go 1.22\n" +
			"example.com/dep\n",
		"vendor/example.com/dep/dep.go": "package dep\n\nfunc V() int { return 1 }\n",
	})
}

func TestLoadVendoredImport(t *testing.T) {
	dir := vendoredModule(t,
		"package vmod\n\nimport \"example.com/dep\"\n\nfunc Use() int { return dep.V() }\n")
	pkgs, err := analysis.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading a vendored module: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "vmod" {
		t.Fatalf("loaded %d packages, want vmod alone", len(pkgs))
	}
	if pkgs[0].Types.Scope().Lookup("Use") == nil {
		t.Fatal("type-checked package lost its declarations")
	}
}

func TestLoadMissingVendoredImport(t *testing.T) {
	dir := vendoredModule(t,
		"package vmod\n\nimport \"example.com/missing\"\n\nvar _ = missing.V\n")
	_, err := analysis.Load(dir, ".")
	if err == nil {
		t.Fatal("loading with a missing vendored import succeeded")
	}
	if !strings.Contains(err.Error(), "analysis:") {
		t.Fatalf("missing-import diagnostic lost its analysis prefix: %v", err)
	}
}
