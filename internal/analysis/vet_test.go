package analysis_test

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetEndToEnd builds and runs the comtainer-vet multichecker, as a
// user would, over the fixture module in testdata/fixture. The fixture
// violates digestcmp, atomicwrite, gonaked, guardedby, atomicmix,
// bodyclose, closeleak, timerstop, and wgbalance once each, seeds a
// two-package lock-order cycle (locka/lockb), and carries one
// suppressed site, so the binary must exit 1 with exactly those ten
// diagnostics.
func TestVetEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	fixture, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "comtainer/cmd/comtainer-vet", "./...")
	cmd.Dir = fixture
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	err = cmd.Run()
	if err == nil {
		t.Fatalf("vet exited 0 over a fixture with known violations\nstdout:\n%s", out.String())
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 1 {
		t.Fatalf("vet did not exit 1: %v\nstdout:\n%s\nstderr:\n%s", err, out.String(), stderr.String())
	}

	text := out.String()
	lines := 0
	for _, l := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.TrimSpace(l) != "" {
			lines++
		}
	}
	if lines != 10 {
		t.Errorf("want exactly 10 diagnostics, got %d:\n%s", lines, text)
	}
	for _, name := range []string{
		"[digestcmp]", "[atomicwrite]", "[gonaked]", "[lockorder]",
		"[guardedby]", "[atomicmix]",
		"[bodyclose]", "[closeleak]", "[timerstop]", "[wgbalance]",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("missing %s diagnostic in output:\n%s", name, text)
		}
	}
	// The seeded resource-lifecycle leaks and static data races must
	// surface verbatim.
	for _, msg := range []string{
		"resp.Body is not closed on every path to return",
		"f (*os.File) is not closed on every path to return",
		"t (*time.Ticker) is not stopped on every path to return",
		"wg.Add is not balanced by a Done provider on every path to return",
		"field fixture.Counter.n is guarded by fixture.Counter.mu on 2/3 accesses; unguarded read",
		"field fixture.Gauge.hits mixes sync/atomic access (1 sites) with a plain read; " +
			"atomic and non-atomic access to the same word is a data race",
	} {
		if !strings.Contains(text, msg) {
			t.Errorf("missing seeded leak message %q in output:\n%s", msg, text)
		}
	}
	// The seeded locka/lockb cycle must be reported with the exact
	// canonical chain, anchored at the cross-package call in CrossAB.
	wantCycle := "potential deadlock: lock order cycle: " +
		"fixture/locka.MuA -> fixture/lockb.MuB -> fixture/locka.MuA"
	if !strings.Contains(text, wantCycle) {
		t.Errorf("missing the seeded lock-order cycle %q in output:\n%s", wantCycle, text)
	}
	// The suppressed Allowed site must not appear.
	if strings.Count(text, "[digestcmp]") != 1 {
		t.Errorf("suppression failed: want exactly one digestcmp diagnostic:\n%s", text)
	}
}
