package analysis_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/passes/ctxsleep"
	"comtainer/internal/analysis/passes/lockorder"
)

// cacheModule is a two-package module with one ctxsleep violation in
// the root and a cross-package lock-order cycle, so both plain
// diagnostics and fact-driven Finish diagnostics must survive replay.
func cacheModule(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod": "module cmod\n\ngo 1.22\n",
		"a.go": `package cmod

import (
	"sync"
	"time"

	"cmod/sub"
)

var MuA sync.Mutex

func SleepLoop(n int) {
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond)
	}
}

func CrossAB() {
	MuA.Lock()
	defer MuA.Unlock()
	sub.LockB()
}

func CrossBA() {
	sub.MuB.Lock()
	defer sub.MuB.Unlock()
	MuA.Lock()
	MuA.Unlock()
}
`,
		"sub/sub.go": `package sub

import "sync"

var MuB sync.Mutex

func LockB() {
	MuB.Lock()
	defer MuB.Unlock()
}
`,
	})
}

func runCached(t *testing.T, dir string, cache *analysis.Cache) *analysis.Result {
	t.Helper()
	targets, err := analysis.Resolve(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	suite := analysis.Suite{ctxsleep.Analyzer, lockorder.Analyzer}
	res, err := analysis.Run(targets, suite, &analysis.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCacheWarmRunReplaysEverything(t *testing.T) {
	dir := cacheModule(t)
	cache, err := analysis.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := runCached(t, dir, cache)
	if cold.Cached != 0 {
		t.Fatalf("cold run replayed %d packages from an empty cache", cold.Cached)
	}
	if cold.Total != 2 {
		t.Fatalf("resolved %d targets, want 2", cold.Total)
	}
	if n := len(cold.Findings()); n != 2 {
		t.Fatalf("cold run found %d diagnostics, want 2 (ctxsleep + lockorder):\n%v",
			n, cold.Diags)
	}

	warm := runCached(t, dir, cache)
	if warm.Cached != warm.Total {
		t.Fatalf("warm run replayed %d/%d packages, want all", warm.Cached, warm.Total)
	}
	if len(warm.Pkgs) != 0 {
		t.Fatalf("warm run loaded %d packages from source", len(warm.Pkgs))
	}
	if !reflect.DeepEqual(cold.Diags, warm.Diags) {
		t.Fatalf("replayed diagnostics differ:\ncold: %v\nwarm: %v", cold.Diags, warm.Diags)
	}
}

func TestCacheInvalidatesDependents(t *testing.T) {
	dir := cacheModule(t)
	cache, err := analysis.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := runCached(t, dir, cache)

	// Touching the leaf package must re-analyze it AND its importer:
	// the root's key embeds sub's key.
	sub := filepath.Join(dir, "sub", "sub.go")
	data, err := os.ReadFile(sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sub, append(data, []byte("\nfunc Extra() {}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	invalidated := runCached(t, dir, cache)
	if invalidated.Cached != 0 {
		t.Fatalf("after editing a dependency, %d/%d packages were still replayed",
			invalidated.Cached, invalidated.Total)
	}
	if !reflect.DeepEqual(cold.Diags, invalidated.Diags) {
		t.Fatalf("diagnostics changed after a semantically neutral edit:\nbefore: %v\nafter:  %v",
			cold.Diags, invalidated.Diags)
	}

	// And the edited state itself caches.
	warm := runCached(t, dir, cache)
	if warm.Cached != warm.Total {
		t.Fatalf("re-warmed run replayed %d/%d packages, want all", warm.Cached, warm.Total)
	}
}
