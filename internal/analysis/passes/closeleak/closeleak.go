// Package closeleak checks that os.File handles and io.Closer-shaped
// values acquired from calls are closed or deliberately handed off on
// every path to the function exit — the error-path variant of "did you
// close that?": the happy path almost always closes, it is the early
// `return err` after a second syscall fails that leaks the first
// handle.
//
// The analysis is path-sensitive over the per-function CFG. Escapes
// end tracking: returning the handle, storing it in a field or
// container, sending it on a channel, capturing it in a closure, or
// passing it to a dynamic callee all transfer ownership. Branches on
// the acquire's error variable are pruned on the side where the
// resource is nil. In-module helpers that close a parameter on every
// path are classified and exported as facts, so forwarding a handle to
// one counts as a release at the call site.
package closeleak

import (
	"fmt"
	"go/ast"
	"go/types"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/passes/lifecycle"
)

// Analyzer reports leaked closers.
var Analyzer = &analysis.Analyzer{
	Name: "closeleak",
	Doc: "a *os.File or io.Closer acquired from a call must be closed or escape " +
		"(returned, stored, handed off) on every path to the function exit",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
}

// Fact records which declared functions close a closer-typed
// parameter on every path, keyed by FuncID; values are flat parameter
// indices.
type Fact struct {
	Closers map[string][]int `json:"closers,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

func run(pass *analysis.Pass) error {
	spec := &lifecycle.Spec{
		IsResource: isCloser,
		IsRelease: func(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
			return lifecycle.MethodOn(info, call, obj, "Close")
		},
		Aliases:       isCloser,
		ConsumesKnown: consumesKnown,
		DepClosers: func(path string) map[string][]int {
			if f, ok := pass.PackageFact(path).(*Fact); ok && f != nil {
				return f.Closers
			}
			return nil
		},
		LeakMessage: func(obj types.Object) string {
			return fmt.Sprintf("%s (%s) is not closed on every path to return", obj.Name(), obj.Type())
		},
	}
	closers := lifecycle.Closers(pass, spec)
	if len(closers) > 0 {
		pass.ExportPackageFact(&Fact{Closers: closers})
	}
	lifecycle.Check(pass, spec, closers)
	return nil
}

// isCloser reports types whose method set includes Close() error:
// *os.File, io.ReadCloser, net.Listener, compression writers, and the
// repository's own store handles. *http.Response is not one (its Body
// is; package bodyclose owns that), and neither are plain buffers.
func isCloser(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m, ok := ms.At(i).Obj().(*types.Func)
		if !ok || m.Name() != "Close" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return false
		}
		named, ok := sig.Results().At(0).Type().(*types.Named)
		return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	return false
}

// consumesKnown records stdlib callees that take ownership of the
// closer they are handed: the HTTP serve loop closes its listener when
// the server shuts down.
func consumesKnown(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return false
	}
	switch fn.Name() {
	case "Serve", "ServeTLS":
		return true
	}
	return false
}
