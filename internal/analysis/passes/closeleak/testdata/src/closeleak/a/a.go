// Package a exercises the closeleak analyzer.
package a

import (
	"compress/gzip"
	"io"
	"net"
	"net/http"
	"os"
)

func leakOnSecondAcquire(p, q string) error {
	src, err := os.Open(p) // want `src \(\*os.File\) is not closed on every path to return`
	if err != nil {
		return err
	}
	dst, err := os.Create(q)
	if err != nil {
		return err // src leaks on this path; dst is nil here
	}
	defer src.Close()
	defer dst.Close()
	_, err = io.Copy(dst, src)
	return err
}

func deferClean(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(io.Discard, f)
	return err
}

func gzipWriterLeak(w io.Writer, b []byte) error {
	zw := gzip.NewWriter(w) // want `zw \(\*compress/gzip.Writer\) is not closed on every path to return`
	if _, err := zw.Write(b); err != nil {
		return err
	}
	return zw.Close()
}

func gzipWriterClean(w io.Writer, b []byte) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(b); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

func returnedClean(p string) (*os.File, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return f, nil // escapes: the caller owns it now
}

func storedClean(p string, sink *struct{ F *os.File }) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	sink.F = f // escapes into the caller's struct
	return nil
}

func closeBoth(a, b *os.File) {
	a.Close()
	b.Close()
}

func helperClean(p, q string) error {
	src, err := os.Open(p)
	if err != nil {
		return err
	}
	dst, err := os.Create(q)
	if err != nil {
		src.Close()
		return err
	}
	_, err = io.Copy(dst, src)
	closeBoth(src, dst) // same-package classification: closes both params
	return err
}

func serveConsumes(ln net.Listener, h http.Handler) error {
	return http.Serve(ln, h)
}

func acceptLeak(ln net.Listener) error {
	conn, err := ln.Accept() // want `conn \(net.Conn\) is not closed on every path to return`
	if err != nil {
		return err
	}
	_, err = conn.Write([]byte("hi"))
	return err
}
