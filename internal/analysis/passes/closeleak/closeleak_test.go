package closeleak_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/closeleak"
)

func TestCloseleak(t *testing.T) {
	analysistest.Run(t, closeleak.Analyzer, "testdata/src/closeleak/a")
}
