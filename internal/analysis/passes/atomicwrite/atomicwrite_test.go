package atomicwrite_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/atomicwrite"
)

func TestAtomicwrite(t *testing.T) {
	analysistest.Run(t, atomicwrite.Analyzer, "testdata/src/a")
}
