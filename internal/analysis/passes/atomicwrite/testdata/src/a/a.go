// Package a exercises the atomicwrite analyzer.
package a

import (
	"os"
	"path/filepath"
)

func writeBlob(root string, data []byte) error {
	p := filepath.Join(root, "blobs", "sha256", "ab")
	return os.WriteFile(p, data, 0o644) // want `direct os.WriteFile into a store root`
}

func createIndex(dir string) (*os.File, error) {
	return os.Create(filepath.Join(dir, "index.json")) // want `direct os.Create into a store root`
}

func openRef(dir string) (*os.File, error) {
	p := filepath.Join(dir, "refs", "latest.json")
	return os.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644) // want `direct os.OpenFile into a store root`
}

// writeRefAtomic is named *Atomic*: it IS the commit idiom and may
// rename into the final path.
func writeRefAtomic(dir string, data []byte) error {
	p := filepath.Join(dir, "refs", "latest.json")
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), p)
}

func writeElsewhere(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "notes.txt"), data, 0o644)
}

func suppressed(dir string, data []byte) error {
	//comtainer:allow atomicwrite -- exercising the suppression syntax
	return os.WriteFile(filepath.Join(dir, "actions", "x"), data, 0o644)
}
