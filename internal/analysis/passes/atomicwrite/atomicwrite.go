// Package atomicwrite enforces the store-write discipline: files under
// a content-addressed store root (blobs/, entries/, actions/, refs/,
// or the OCI layout files) must be committed with the temp-file +
// os.Rename idiom, never written in place. A direct write that dies
// mid-way leaves a torn file at an addressable path, which defeats the
// crash-safety argument every disk store in this repository makes.
package atomicwrite

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"comtainer/internal/analysis"
)

// storeMarkers are path components that identify a store root. An
// expression containing one of these string constants (directly or
// through local assignment) is treated as a store path.
var storeMarkers = map[string]bool{
	"blobs":      true,
	"entries":    true,
	"actions":    true,
	"refs":       true,
	"oci-layout": true,
	"index.json": true,
}

// Analyzer flags direct writes into store-rooted paths.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "files under a store root (blobs/, entries/, actions/, refs/, OCI layout files) " +
		"must be written via temp file + os.Rename, not direct os.WriteFile/os.Create/os.OpenFile",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			// A helper that IS the atomic-write idiom may touch the
			// final path (it renames into it).
			if decl != nil && strings.Contains(strings.ToLower(decl.Name.Name), "atomic") {
				return
			}
			checkBody(pass, body)
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	taint := &analysis.Taint{
		Info:   pass.TypesInfo,
		Source: func(e ast.Expr) bool { return isMarkerConst(pass.TypesInfo, e) },
		Propagate: func(c *ast.CallExpr) bool {
			return analysis.IsPkgFunc(pass.TypesInfo, c, "path/filepath", "Join", "Clean") ||
				analysis.IsPkgFunc(pass.TypesInfo, c, "path", "Join", "Clean") ||
				analysis.IsPkgFunc(pass.TypesInfo, c, "fmt", "Sprintf", "Sprint")
		},
	}
	tainted := taint.Run(body)
	analysis.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !analysis.IsPkgFunc(pass.TypesInfo, call, "os", "WriteFile", "Create", "OpenFile") {
			return true
		}
		if len(call.Args) == 0 || !tainted(call.Args[0]) {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		pass.Reportf(call.Pos(),
			"direct os.%s into a store root; write to a temp file and commit with os.Rename "+
				"(see distrib.DiskStore.Ingest)", fn.Name())
		return true
	})
}

// isMarkerConst reports whether e is a string constant naming a store
// root component.
func isMarkerConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return storeMarkers[constant.StringVal(tv.Value)]
}
