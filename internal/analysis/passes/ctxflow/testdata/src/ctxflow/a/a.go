// Package a exercises the ctxflow analyzer.
package a

import (
	"context"

	"comtainer/internal/analysis/passes/ctxflow/testdata/src/ctxflow/b"
)

func discardsCtx(ctx context.Context) error {
	return b.WithCtx(context.Background()) // want `context.Background\(\) discards the ctx parameter`
}

func mintsTODO(ctx context.Context) error {
	return b.WithCtx(context.TODO()) // want `context.TODO\(\) discards the ctx parameter`
}

func libraryRoot() error {
	return b.WithCtx(context.Background()) // want `context.Background\(\) in library code`
}

func dropsSibling(ctx context.Context) {
	b.Fetch() // want `call to Fetch drops ctx; use FetchContext`
}

func dropsMethodSibling(ctx context.Context, c *b.Client) {
	c.Get() // want `call to Get drops ctx; use GetContext`
}

func blockingDirect(ctx context.Context) {
	b.SlowHelper() // want `SlowHelper blocks \(transitively\) but cannot receive ctx`
}

func blockingIndirect(ctx context.Context) {
	b.Indirect() // want `Indirect blocks \(transitively\) but cannot receive ctx`
}

func localChain(ctx context.Context) {
	localBlocking() // want `localBlocking blocks \(transitively\) but cannot receive ctx`
}

func localBlocking() {
	b.SlowHelper()
}

// Negatives.

func passesCtx(ctx context.Context) error {
	return b.WithCtx(ctx) // ctx flows on: fine
}

func usesSibling(ctx context.Context) error {
	return b.FetchContext(ctx) // ctx-aware variant: fine
}

func noCtxInScope() {
	b.SlowHelper() // no ctx to lose: fine
}

func nonBlockingCallee(ctx context.Context) {
	harmless() // callee does not block: fine
}

func harmless() {}

func closureSeesCtx(ctx context.Context) func() error {
	return func() error {
		return b.WithCtx(context.Background()) // want `context.Background\(\) discards the ctx parameter`
	}
}
