// Package b provides the callees package a exercises ctxflow against:
// a blocking helper chain, plain/Context sibling pairs, and a
// ctx-accepting function.
package b

import (
	"context"
	"time"
)

// SlowHelper blocks directly.
func SlowHelper() {
	time.Sleep(time.Millisecond)
}

// Indirect blocks through SlowHelper.
func Indirect() {
	SlowHelper()
}

// WithCtx accepts the caller's ctx.
func WithCtx(ctx context.Context) error {
	return ctx.Err()
}

// Fetch has a Context sibling; callers holding a ctx must use it.
func Fetch() {}

// FetchContext is the ctx-aware variant of Fetch.
func FetchContext(ctx context.Context) error {
	return ctx.Err()
}

// Client pairs a plain method with a Context variant.
type Client struct{}

// Get has a Context sibling.
func (c *Client) Get() {}

// GetContext is the ctx-aware variant of Get.
func (c *Client) GetContext(ctx context.Context) error {
	return ctx.Err()
}
