// Command cmd shows that package main may mint the root context.
package main

import (
	"context"

	"comtainer/internal/analysis/passes/ctxflow/testdata/src/ctxflow/b"
)

func main() {
	_ = b.WithCtx(context.Background()) // main owns the root context: fine
}
