// Package ctxflow checks that context.Context values actually flow:
// a function that was handed a ctx must not discard it by minting
// context.Background()/context.TODO(), must prefer the ...Context
// variant of a callee when one exists, and must not bury cancellation
// by calling module functions that (transitively) block without
// accepting a ctx. Library packages must not mint root contexts at
// all — only package main owns the root.
//
// The per-package fact records, for every declared function, whether
// it takes a ctx parameter, whether it (transitively) blocks, and
// whether it forwards a ctx to a callee. Blocking is seeded from a
// small set of well-known stdlib calls (time.Sleep, the net and
// net/http dial/roundtrip surface, os/exec waits, WaitGroup.Wait) and
// propagated over static call edges — dependency facts first, then a
// local fixpoint — so "this helper five frames down sleeps" is
// visible at the ctx-holding caller.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"comtainer/internal/analysis"
)

// Analyzer reports dropped or unplumbed contexts.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "a received context.Context must be passed on: no context.Background()/TODO() " +
		"where a ctx is in scope or in library packages, no plain F when FContext exists, " +
		"and no transitively-blocking in-module callee that cannot receive the ctx",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
}

// Fact summarizes the ctx behavior of every function in a package.
type Fact struct {
	Funcs map[string]*FuncCtx `json:"funcs,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

// FuncCtx is one function's ctx summary.
type FuncCtx struct {
	// HasCtx reports a context.Context parameter.
	HasCtx bool `json:"hasCtx,omitempty"`
	// Blocking reports that the function can block, directly or
	// through a static callee chain.
	Blocking bool `json:"blocking,omitempty"`
	// PassesCtx reports that some call site receives a ctx argument.
	PassesCtx bool `json:"passesCtx,omitempty"`
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "context" {
		return nil
	}

	funcs, calls := summarizePackage(pass)
	propagateBlocking(pass, funcs, calls)

	fact := &Fact{Funcs: funcs}
	if len(funcs) > 0 {
		pass.ExportPackageFact(fact)
	}

	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			hasCtx := decl != nil && ctxParam(pass, decl) != nil
			analysis.InspectShallow(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, hasCtx, isMain, funcs)
				return true
			})
		})
	}
	return nil
}

// checkCall applies the three report rules to one call site.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, hasCtx, isMain bool, local map[string]*FuncCtx) {
	if analysis.IsPkgFunc(pass.TypesInfo, call, "context", "Background", "TODO") {
		name := analysis.Callee(pass.TypesInfo, call).Name()
		switch {
		case hasCtx:
			pass.Reportf(call.Pos(),
				"context.%s() discards the ctx parameter already in scope; pass ctx instead", name)
		case !isMain:
			pass.Reportf(call.Pos(),
				"context.%s() in library code mints a root context; accept a ctx parameter and plumb it from the caller", name)
		}
		return
	}
	if !hasCtx {
		return
	}

	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || hasCtxParam(fn) || receivesCtx(pass, call) {
		return
	}

	// Prefer the FContext sibling when the API offers one.
	if sib := ctxSibling(fn); sib != "" {
		pass.Reportf(call.Pos(),
			"call to %s drops ctx; use %s so cancellation propagates", fn.Name(), sib)
		return
	}

	// In-module callee that transitively blocks and has no way to
	// receive the ctx: cancellation dies here. Callees taking function
	// values are exempt — cancellation can reach them through the
	// supplied closures (the worker-pool pattern: runPool waits on
	// tasks that each capture ctx).
	if takesFuncParam(fn) {
		return
	}
	if id := analysis.FuncID(fn); id != "" && calleeBlocks(pass, fn, id, local) {
		pass.Reportf(call.Pos(),
			"%s blocks (transitively) but cannot receive ctx; thread ctx through it or select on ctx.Done()", fn.Name())
	}
}

// ctxSibling returns the name of a ...Context variant of fn visible at
// its declaration site — a package-scope sibling for functions, a
// method-set sibling for methods — provided the variant takes a ctx.
func ctxSibling(fn *types.Func) string {
	want := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() != nil {
		recv := sig.Recv().Type()
		if !types.IsInterface(recv) {
			recv = types.NewPointer(derefNamed(recv))
		}
		mset := types.NewMethodSet(recv)
		if sel := mset.Lookup(fn.Pkg(), want); sel != nil {
			if m, ok := sel.Obj().(*types.Func); ok && hasCtxParam(m) {
				return want
			}
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	if sib, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && hasCtxParam(sib) {
		return want
	}
	return ""
}

func derefNamed(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// calleeBlocks resolves a callee's transitive blocking bit from the
// local summaries or, across packages, from the dependency's fact.
func calleeBlocks(pass *analysis.Pass, fn *types.Func, id string, local map[string]*FuncCtx) bool {
	if fc, ok := local[id]; ok {
		return fc.Blocking
	}
	if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return false
	}
	if f, ok := pass.PackageFact(fn.Pkg().Path()).(*Fact); ok && f != nil {
		if fc, ok := f.Funcs[id]; ok {
			return fc.Blocking
		}
	}
	return false
}

// summarizePackage builds the per-function summaries and the static
// local call edges used by the blocking fixpoint.
func summarizePackage(pass *analysis.Pass) (map[string]*FuncCtx, map[string][]string) {
	funcs := make(map[string]*FuncCtx)
	calls := make(map[string][]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			id := analysis.FuncID(fn)
			if id == "" {
				continue
			}
			fc := &FuncCtx{HasCtx: ctxParam(pass, fd) != nil}
			analysis.InspectShallow(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if directBlocking(pass.TypesInfo, call) {
					fc.Blocking = true
				}
				if receivesCtx(pass, call) {
					fc.PassesCtx = true
				}
				if callee := analysis.Callee(pass.TypesInfo, call); callee != nil {
					if cid := analysis.FuncID(callee); cid != "" {
						calls[id] = append(calls[id], cid)
					}
				}
				return true
			})
			funcs[id] = fc
		}
	}
	return funcs, calls
}

// propagateBlocking closes Blocking over static call edges: dependency
// facts are final (packages are analyzed in dependency order), local
// edges iterate to a fixpoint.
func propagateBlocking(pass *analysis.Pass, funcs map[string]*FuncCtx, calls map[string][]string) {
	blocked := func(id string) bool {
		if fc, ok := funcs[id]; ok {
			return fc.Blocking
		}
		if f, ok := pass.PackageFact(pkgOf(id)).(*Fact); ok && f != nil {
			if fc, ok := f.Funcs[id]; ok {
				return fc.Blocking
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for id, fc := range funcs {
			if fc.Blocking {
				continue
			}
			for _, cid := range calls[id] {
				if blocked(cid) {
					fc.Blocking = true
					changed = true
					break
				}
			}
		}
	}
}

// pkgOf extracts the package path from a FuncID ("path.Name" or
// "path.(Type).Name").
func pkgOf(id string) string {
	if i := strings.Index(id, ".("); i >= 0 {
		return id[:i]
	}
	if i := strings.LastIndexByte(id, '.'); i >= 0 {
		return id[:i]
	}
	return id
}

// directBlocking reports calls known to block: sleeps, the net dial /
// http round-trip surface, subprocess waits, WaitGroup.Wait.
func directBlocking(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		return name == "Sleep"
	case "net":
		// The dial/listen/resolve surface; pure helpers (SplitHostPort,
		// ParseIP) stay non-blocking. net/url and friends are not here
		// at all: string manipulation does not block.
		return strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") ||
			strings.HasPrefix(name, "Lookup") || name == "Accept"
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head", "Do", "RoundTrip",
			"Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS":
			return true
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return true
		}
	case "sync":
		return name == "Wait"
	}
	return false
}

// ctxParam returns the first context.Context parameter of decl.
func ctxParam(pass *analysis.Pass, decl *ast.FuncDecl) *types.Var {
	fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	return ctxParamOf(fn)
}

func ctxParamOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isCtxType(p.Type()) {
			return p
		}
	}
	return nil
}

func hasCtxParam(fn *types.Func) bool { return ctxParamOf(fn) != nil }

// takesFuncParam reports whether fn accepts a function value (directly
// or inside a slice/variadic), i.e. a callback cancellation can travel
// through.
func takesFuncParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if s, ok := t.Underlying().(*types.Slice); ok {
			t = s.Elem()
		}
		if _, ok := t.Underlying().(*types.Signature); ok {
			return true
		}
	}
	return false
}

// receivesCtx reports whether any argument of call has type
// context.Context.
func receivesCtx(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isCtxType(tv.Type) {
			return true
		}
	}
	return false
}

func isCtxType(t types.Type) bool {
	path, name := analysis.NamedTypePath(t)
	return path == "context" && name == "Context"
}
