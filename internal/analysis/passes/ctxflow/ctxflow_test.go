package ctxflow_test

import (
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.RunSuite(t, analysis.Suite{ctxflow.Analyzer},
		"testdata/src/ctxflow", "./a", "./b", "./cmd")
}
