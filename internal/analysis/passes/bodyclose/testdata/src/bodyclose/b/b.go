// Package b provides the helpers package a exercises bodyclose
// against: a status helper that closes the body it is handed (the
// closer fact), one that does not, and a fetch helper returning a
// fresh response.
package b

import (
	"errors"
	"io"
	"net/http"
)

// StatusError drains and closes resp.Body on every path before
// wrapping the status — classified as a closer for parameter 0.
func StatusError(resp *http.Response) error {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return errors.New(resp.Status)
}

// Passthrough inspects the response but closes nothing.
func Passthrough(resp *http.Response) error {
	if resp.StatusCode >= 400 {
		return errors.New(resp.Status)
	}
	return nil
}

// Fetch returns a fresh response; closing is the caller's job.
func Fetch(url string) (*http.Response, error) {
	return http.Get(url)
}
