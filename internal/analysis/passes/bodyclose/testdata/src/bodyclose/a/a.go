// Package a exercises the bodyclose analyzer.
package a

import (
	"errors"
	"io"
	"net/http"

	"comtainer/internal/analysis/passes/bodyclose/testdata/src/bodyclose/b"
)

func plainLeak(url string) error {
	resp, err := http.Get(url) // want `resp.Body is not closed on every path to return`
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func deferClean(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return nil
}

func statusPathLeak(url string) error {
	resp, err := http.Get(url) // want `resp.Body is not closed on every path to return`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errors.New("bad status") // leaks: body never closed on this path
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return nil
}

func statusHelperClean(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		err := b.StatusError(resp) // dependency fact: StatusError closes resp
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return nil
}

func passthroughLeak(url string) error {
	resp, err := http.Get(url) // want `resp.Body is not closed on every path to return`
	if err != nil {
		return err
	}
	b.Passthrough(resp) // no fact: Passthrough does not close
	return nil
}

func helperAcquireLeak(url string) error {
	resp, err := b.Fetch(url) // want `resp.Body is not closed on every path to return`
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func statusOnlyLeak(url string) (int, error) {
	resp, err := http.Get(url) // want `resp.Body is not closed on every path to return`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil // returns an int, not the body: still this function's leak
}

func discarded(url string) {
	http.Get(url) // want `\*http.Response result is discarded; its Body must be closed`
}

func aliasEscapes(url string) (io.ReadCloser, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	body := resp.Body // aliases the closable part: tracking transfers
	return body, nil
}

func localCloser(resp *http.Response) {
	resp.Body.Close()
}

func localHelperClean(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		localCloser(resp) // same-package classification
		return errors.New("bad status")
	}
	defer resp.Body.Close()
	return nil
}

func returnedClean(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil // escapes: the caller closes
}
