package bodyclose_test

import (
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/bodyclose"
)

func TestBodyclose(t *testing.T) {
	analysistest.RunSuite(t, analysis.Suite{bodyclose.Analyzer},
		"testdata/src/bodyclose", "./a", "./b")
}
