// Package bodyclose checks that every *http.Response acquired —
// whether from the stdlib client surface or from an in-module helper
// that returns one — has its Body closed on every path to the
// function exit. The analysis is path-sensitive over the per-function
// CFG: an early `return err` taken only when the acquire failed is
// pruned (the response is nil there), a `defer resp.Body.Close()`
// counts from its registration point onward, and responses that
// escape (returned, stored, captured) are the new owner's problem.
//
// Helpers that close a response handed to them — the repository's
// `statusError(resp)`, which drains and closes the body before
// wrapping the status — are classified per package and exported as
// facts, so call sites in dependent packages count them as releases.
package bodyclose

import (
	"fmt"
	"go/ast"
	"go/types"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/passes/lifecycle"
)

// Analyzer reports leaked response bodies.
var Analyzer = &analysis.Analyzer{
	Name: "bodyclose",
	Doc: "every *http.Response acquired (directly or via in-module helpers) " +
		"must have its Body closed on every path to the function exit",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
}

// Fact records which declared functions close a *http.Response
// parameter on every path, keyed by FuncID; values are flat parameter
// indices.
type Fact struct {
	Closers map[string][]int `json:"closers,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "net/http" {
		return nil
	}
	spec := &lifecycle.Spec{
		IsResource: isResponse,
		IsRelease:  isBodyClose,
		Aliases:    hasCloser,
		DepClosers: func(path string) map[string][]int {
			if f, ok := pass.PackageFact(path).(*Fact); ok && f != nil {
				return f.Closers
			}
			return nil
		},
		LeakMessage: func(obj types.Object) string {
			return fmt.Sprintf("%s.Body is not closed on every path to return", obj.Name())
		},
		DiscardMessage: func(types.Type) string {
			return "*http.Response result is discarded; its Body must be closed"
		},
	}
	closers := lifecycle.Closers(pass, spec)
	if len(closers) > 0 {
		pass.ExportPackageFact(&Fact{Closers: closers})
	}
	lifecycle.Check(pass, spec, closers)
	return nil
}

// isResponse reports *net/http.Response.
func isResponse(t types.Type) bool {
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	path, name := analysis.NamedTypePath(t)
	return path == "net/http" && name == "Response"
}

// isBodyClose matches `resp.Body.Close()` on the tracked object.
func isBodyClose(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || body.Sel.Name != "Body" {
		return false
	}
	id, ok := ast.Unparen(body.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// hasCloser reports whether t's method set includes Close() error —
// assigning resp.Body (io.ReadCloser) away aliases the closable part.
func hasCloser(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if m, ok := ms.At(i).Obj().(*types.Func); ok && m.Name() == "Close" {
			return true
		}
	}
	return false
}
