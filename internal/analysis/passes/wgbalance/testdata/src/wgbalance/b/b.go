// Package b provides the WaitGroup worker package a exercises
// wgbalance against: it always signals the group it is handed and is
// classified (and exported) as a finisher for parameter 0.
package b

import "sync"

// Work runs one task and always signals the group.
func Work(wg *sync.WaitGroup) {
	defer wg.Done()
}
