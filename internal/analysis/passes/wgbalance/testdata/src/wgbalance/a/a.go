// Package a exercises the wgbalance analyzer.
package a

import (
	"sync"

	"comtainer/internal/analysis/passes/wgbalance/testdata/src/wgbalance/b"
)

func work() {}

func addThenBail(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1) // want `wg.Add is not balanced by a Done provider on every path to return`
	if cond {
		return // the Add is stranded: any Wait blocks forever
	}
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func spawnClean(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func helperClean(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go b.Work(&wg) // dependency fact: Work calls Done on every path
	}
	wg.Wait()
}

func localDone(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	if cond {
		wg.Done() // direct Done on this path
		return
	}
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `wg.Add inside the goroutine races the Wait; call Add before the go statement`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) run(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			work()
		}()
	}
	p.wg.Wait()
}

func (p *pool) addThenError(ok bool) error {
	p.wg.Add(1) // want `wg.Add is not balanced by a Done provider on every path to return`
	if !ok {
		return errFailed
	}
	go func() {
		defer p.wg.Done()
	}()
	return nil
}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }
