// Package wgbalance checks sync.WaitGroup accounting along CFG paths.
// Every wg.Add must be answered: on each path from the Add to the
// function exit there must be a Done provider — a direct or deferred
// wg.Done, a function literal capturing the group (the goroutine that
// will call Done), or a call handing the group to a function known to
// call Done on every path (interprocedural facts). An Add followed by
// an early `return err` with no provider on that path strands any
// later Wait forever.
//
// It also flags the classic startup race at the AST level: calling
// wg.Add inside the spawned goroutine itself, while the spawning scope
// Waits on the same group — Wait may run before the goroutine is
// scheduled and see a zero counter.
package wgbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/cfg"
)

// Analyzer reports unbalanced WaitGroup arithmetic.
var Analyzer = &analysis.Analyzer{
	Name: "wgbalance",
	Doc: "every sync.WaitGroup.Add must reach a Done provider on all paths to return, " +
		"and Add must not run inside the goroutine a Wait is waiting on",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
}

// Fact records which declared functions call Done on a WaitGroup
// parameter on every path, keyed by FuncID; values are flat parameter
// indices.
type Fact struct {
	Finishers map[string][]int `json:"finishers,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "sync" {
		return nil
	}
	finishers := classifyFinishers(pass)
	if len(finishers) > 0 {
		pass.ExportPackageFact(&Fact{Finishers: finishers})
	}
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			name := "func literal"
			if decl != nil {
				name = decl.Name.Name
			}
			checkScope(pass, finishers, name, body)
			checkAddInGoroutine(pass, body)
		})
	}
	return nil
}

// isWaitGroup reports sync.WaitGroup / *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	path, name := analysis.NamedTypePath(t)
	return path == "sync" && name == "WaitGroup"
}

// wgMethodObj returns the object the WaitGroup method named method is
// invoked on (`wg.Add(1)` → wg's object, `s.wg.Done()` → the field
// object), or nil if call is not that method.
func wgMethodObj(info *types.Info, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	return recvObj(info, sel.X)
}

// recvObj resolves the receiver expression to the variable or field
// object holding the WaitGroup. Unresolvable shapes (map/slice
// elements) return nil and the call site is skipped conservatively.
func recvObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return recvObj(info, e.X)
		}
	case *ast.StarExpr:
		return recvObj(info, e.X)
	}
	return nil
}

// mentionsObj reports whether obj is used anywhere inside n — idents
// and selector fields alike.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// argIsGroup reports whether arg is the group or its address.
func argIsGroup(info *types.Info, arg ast.Expr, obj types.Object) bool {
	return recvObj(info, arg) == obj
}

// checkScope verifies every Add in one function scope.
func checkScope(pass *analysis.Pass, finishers map[string][]int, name string, body *ast.BlockStmt) {
	g := cfg.New(name, body)
	for _, blk := range g.Blocks {
		if blk == g.Exit {
			continue
		}
		for i, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			obj := wgMethodObj(pass.TypesInfo, call, "Add")
			if obj == nil {
				continue
			}
			stop := providerStop(pass, finishers, obj, true)
			if cfg.ReachesExit(g, blk, i, stop, nil) {
				pass.Reportf(call.Pos(),
					"%s.Add is not balanced by a Done provider on every path to return", obj.Name())
			}
		}
	}
}

// providerStop builds the settles predicate for ReachesExit: nodes
// that answer (or take over) an Add. With escapes true, handing the
// group to unknown code, storing it, or returning it also stops
// tracking quietly; with escapes false only genuine Done providers
// count (the interprocedural classifier).
func providerStop(pass *analysis.Pass, finishers map[string][]int, obj types.Object, escapes bool) func(ast.Node) bool {
	info := pass.TypesInfo
	var stops func(n ast.Node) bool
	stops = func(n ast.Node) bool {
		hit := false
		ast.Inspect(n, func(m ast.Node) bool {
			if hit {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				// The goroutine body. A literal capturing the group is
				// assumed to Done it — flagging `go func() { defer
				// wg.Done(); ... }()` would be noise; a literal that
				// captures and never calls Done is the rare bug this
				// trade-off accepts.
				if mentionsObj(info, m, obj) {
					hit = true
				}
				return false
			case *ast.CallExpr:
				if wgMethodObj(info, m, "Done") == obj {
					hit = true
					return false
				}
				if wgMethodObj(info, m, "Wait") == obj || wgMethodObj(info, m, "Add") == obj {
					return true // neither provides a Done; keep scanning args
				}
				for i, arg := range m.Args {
					if !argIsGroup(info, arg, obj) {
						continue
					}
					fn := analysis.Callee(info, m)
					if fn == nil {
						if escapes {
							hit = true // dynamic callee: ownership left
						}
						return false
					}
					if finisherAt(pass, finishers, fn, i) || escapes {
						hit = true
					}
					return false
				}
			case *ast.ReturnStmt:
				if escapes && mentionsObj(info, m, obj) {
					hit = true
					return false
				}
			case *ast.SendStmt:
				if escapes && mentionsObj(info, m, obj) {
					hit = true
					return false
				}
			case *ast.AssignStmt:
				if !escapes {
					return true
				}
				for _, r := range m.Rhs {
					if _, isCall := ast.Unparen(r).(*ast.CallExpr); isCall {
						continue
					}
					if mentionsObj(info, r, obj) {
						hit = true // aliased or stored: someone else's ledger now
						return false
					}
				}
			}
			return true
		})
		return hit
	}
	return stops
}

// finisherAt consults the local classification and dependency facts
// for "fn calls Done on parameter i on every path".
func finisherAt(pass *analysis.Pass, finishers map[string][]int, fn *types.Func, i int) bool {
	id := analysis.FuncID(fn)
	if id == "" {
		return false
	}
	var idxs []int
	if fn.Pkg() == pass.Pkg {
		idxs = finishers[id]
	} else if fn.Pkg() != nil {
		if f, ok := pass.PackageFact(fn.Pkg().Path()).(*Fact); ok && f != nil {
			idxs = f.Finishers[id]
		}
	}
	for _, j := range idxs {
		if j == i {
			return true
		}
	}
	return false
}

// classifyFinishers computes, per declared function, the WaitGroup
// parameters that are Done'd on every path to the exit. Fixpoint
// covers helper-forwards-to-helper chains.
func classifyFinishers(pass *analysis.Pass) map[string][]int {
	type candidate struct {
		id     string
		g      *cfg.CFG
		params []paramSite
	}
	var cands []candidate
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			id := analysis.FuncID(fn)
			if id == "" {
				continue
			}
			params := groupParams(pass, fd)
			if len(params) == 0 {
				continue
			}
			cands = append(cands, candidate{id: id, g: cfg.New(fd.Name.Name, fd.Body), params: params})
		}
	}
	finishers := make(map[string][]int)
	for changed := true; changed; {
		changed = false
		for _, c := range cands {
			for _, p := range c.params {
				if hasIndex(finishers[c.id], p.index) {
					continue
				}
				stop := providerStop(pass, finishers, p.obj, false)
				if !cfg.ReachesExit(c.g, c.g.Entry, -1, stop, nil) {
					finishers[c.id] = append(finishers[c.id], p.index)
					changed = true
				}
			}
		}
	}
	return finishers
}

// paramSite is one WaitGroup-typed parameter of a declared function.
type paramSite struct {
	index int
	obj   types.Object
}

// groupParams returns the flat indices (receiver excluded) of
// WaitGroup-typed, named parameters.
func groupParams(pass *analysis.Pass, fd *ast.FuncDecl) []paramSite {
	var out []paramSite
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range field.Names {
			obj := pass.TypesInfo.Defs[nm]
			if obj != nil && nm.Name != "_" && isWaitGroup(obj.Type()) {
				out = append(out, paramSite{index: idx, obj: obj})
			}
			idx++
		}
	}
	return out
}

func hasIndex(idxs []int, i int) bool {
	for _, j := range idxs {
		if j == i {
			return true
		}
	}
	return false
}

// checkAddInGoroutine flags Add calls made inside a go-statement's
// function literal when the launching scope Waits on the same group:
// the scheduler may run Wait first and release it at zero.
func checkAddInGoroutine(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	waited := map[types.Object]bool{}
	analysis.InspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := wgMethodObj(info, call, "Wait"); obj != nil {
				waited[obj] = true
			}
		}
		return true
	})
	if len(waited) == 0 {
		return
	}
	analysis.InspectShallow(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := wgMethodObj(info, call, "Add"); obj != nil && waited[obj] {
				pass.Reportf(call.Pos(),
					"%s.Add inside the goroutine races the Wait; call Add before the go statement", obj.Name())
			}
			return true
		})
		return true
	})
}
