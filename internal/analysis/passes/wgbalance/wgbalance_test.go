package wgbalance_test

import (
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/wgbalance"
)

func TestWgbalance(t *testing.T) {
	analysistest.RunSuite(t, analysis.Suite{wgbalance.Analyzer},
		"testdata/src/wgbalance", "./a", "./b")
}
