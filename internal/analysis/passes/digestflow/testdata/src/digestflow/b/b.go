// Package b provides digest producers for package a: sanctioned
// constructors and raw-conversion launderers whose dirtiness must
// travel through the exported fact.
package b

import "comtainer/internal/digest"

// Bad launders a raw string into a Digest without Parse.
func Bad(s string) digest.Digest {
	return digest.Digest(s)
}

// Chain is dirty through Bad.
func Chain(s string) digest.Digest {
	return Bad(s)
}

// Good builds a digest through a sanctioned constructor.
func Good(s string) digest.Digest {
	return digest.FromString(s)
}

// Parsed vets its input.
func Parsed(s string) (digest.Digest, error) {
	return digest.Parse(s)
}
