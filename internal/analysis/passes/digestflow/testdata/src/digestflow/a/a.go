// Package a exercises the digestflow analyzer.
package a

import (
	"comtainer/internal/digest"

	"comtainer/internal/analysis/passes/digestflow/testdata/src/digestflow/b"
)

func rawCompare(s string, want digest.Digest) bool {
	d := digest.Digest(s)
	return d == want // want `digest comparison may involve a raw digest.Digest\(...\) conversion`
}

func crossPackage(s string, want digest.Digest) bool {
	return b.Bad(s) == want // want `digest comparison may involve a raw digest.Digest\(...\) conversion`
}

func crossPackageChain(s string, want digest.Digest) bool {
	d := b.Chain(s)
	return d != want // want `digest comparison may involve a raw digest.Digest\(...\) conversion`
}

func rawVerify(s string, content []byte) bool {
	d := digest.Digest(s)
	return d.Verify(content) // want `Verify called on a digest that may come from a raw digest.Digest\(...\) conversion`
}

// localDirty is dirty via a local helper chain.
func localDirty(s string) digest.Digest {
	return localLaunder(s)
}

func localLaunder(s string) digest.Digest {
	return digest.Digest(s)
}

func localChainCompare(s string, want digest.Digest) bool {
	return localDirty(s) == want // want `digest comparison may involve a raw digest.Digest\(...\) conversion`
}

// Negatives.

func sanctionedCompare(s string, want digest.Digest) bool {
	return b.Good(s) == want // sanctioned constructor: fine
}

func parsedCompare(s string, want digest.Digest) bool {
	d, err := b.Parsed(s)
	if err != nil {
		return false
	}
	return d == want // parsed: fine
}

func paramCompare(d1, d2 digest.Digest) bool {
	return d1 == d2 // parameters are presumed sanctioned: fine
}

func zeroSentinel(d digest.Digest) bool {
	return d == digest.Digest("") // the zero-digest sentinel: fine
}

func nonDigestCompare(a, b string) bool {
	return a == b // not digests at all: fine
}
