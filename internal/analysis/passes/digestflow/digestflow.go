// Package digestflow is the interprocedural companion to digestcmp:
// any digest.Digest value that reaches a comparison or verification
// must trace back to a sanctioned constructor
// (FromBytes/FromString/FromHash/FromReader or Parse). digestcmp
// catches raw assembly at the expression level; digestflow follows the
// value across assignments and call edges, so a helper three packages
// away that launders a string through digest.Digest(s) is still caught
// at the comparison site.
//
// The analysis is an inverted taint: the unsanctioned sources are
// direct digest.Digest(...) conversions (except the "" zero sentinel)
// and calls to functions whose exported fact says some return path
// yields such a conversion. Everything else — constructors, parameters,
// struct fields, unknown callees — is presumed sanctioned, keeping the
// pass quiet on code that merely transports digests.
package digestflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"comtainer/internal/analysis"
)

// digestPkg is the package owning the Digest representation.
const digestPkg = "comtainer/internal/digest"

// Analyzer reports comparisons and verifications of digests that may
// originate from raw conversions.
var Analyzer = &analysis.Analyzer{
	Name: "digestflow",
	Doc: "digest values reaching ==/!= comparisons or Verify/Validate must trace to " +
		"sanctioned constructors (digest.FromBytes/FromString/FromHash/FromReader, digest.Parse) " +
		"across assignments and call edges, never to raw digest.Digest(...) conversions",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
}

// Fact lists the functions in a package with at least one return path
// yielding an unsanctioned digest. Functions absent from the map are
// sanctioned.
type Fact struct {
	Dirty map[string]bool `json:"dirty,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == digestPkg {
		return nil // the digest package owns the representation
	}
	exempt := strings.HasPrefix(pass.Pkg.Path(), "comtainer/internal/analysis") &&
		!strings.Contains(pass.Pkg.Path(), "/testdata/")

	dirty := computeDirty(pass)
	if len(dirty) > 0 {
		pass.ExportPackageFact(&Fact{Dirty: dirty})
	}
	if exempt {
		return nil
	}

	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			tainted := newTaint(pass, dirty).Run(body)
			analysis.InspectShallow(body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.BinaryExpr:
					checkCompare(pass, v, tainted)
				case *ast.CallExpr:
					checkVerify(pass, v, tainted)
				}
				return true
			})
		})
	}
	return nil
}

// checkCompare flags ==/!= between Digest values when either operand
// may be unsanctioned.
func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr, tainted func(ast.Expr) bool) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isDigestType(pass.TypesInfo.TypeOf(b.X)) && !isDigestType(pass.TypesInfo.TypeOf(b.Y)) {
		return
	}
	if tainted(b.X) || tainted(b.Y) {
		pass.Reportf(b.Pos(),
			"digest comparison may involve a raw digest.Digest(...) conversion; "+
				"construct digests with digest.FromBytes/FromString/FromHash/FromReader or digest.Parse")
	}
}

// checkVerify flags Verify/Validate calls on an unsanctioned receiver:
// verifying content against a digest nobody vetted verifies nothing.
func checkVerify(pass *analysis.Pass, call *ast.CallExpr, tainted func(ast.Expr) bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != digestPkg {
		return
	}
	switch fn.Name() {
	case "Verify", "Validate", "NewVerifier":
	default:
		return
	}
	if isDigestType(pass.TypesInfo.TypeOf(sel.X)) && tainted(sel.X) {
		pass.Reportf(call.Pos(),
			"%s called on a digest that may come from a raw digest.Digest(...) conversion; "+
				"parse untrusted input with digest.Parse first", fn.Name())
	}
}

// computeDirty finds the package's functions with a return path
// yielding an unsanctioned digest, iterating to a fixpoint so dirt
// flows through same-package call chains (dependency facts are final
// and consulted through the taint source).
func computeDirty(pass *analysis.Pass) map[string]bool {
	type fnDecl struct {
		id string
		fd *ast.FuncDecl
	}
	var decls []fnDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			id := analysis.FuncID(fn)
			if id == "" {
				continue
			}
			returnsDigest := false
			for _, f := range fd.Type.Results.List {
				if isDigestType(pass.TypesInfo.TypeOf(f.Type)) {
					returnsDigest = true
				}
			}
			if returnsDigest {
				decls = append(decls, fnDecl{id, fd})
			}
		}
	}

	dirty := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if dirty[d.id] {
				continue
			}
			tainted := newTaint(pass, dirty).Run(d.fd.Body)
			found := false
			analysis.InspectShallow(d.fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || found {
					return !found
				}
				for _, e := range ret.Results {
					if isDigestType(pass.TypesInfo.TypeOf(e)) && tainted(e) {
						found = true
					}
				}
				return true
			})
			if found {
				dirty[d.id] = true
				changed = true
			}
		}
	}
	return dirty
}

// newTaint builds the unsanctioned-digest taint for one body: sources
// are raw digest.Digest conversions (non-empty argument) and calls to
// dirty functions, locally or via dependency facts.
func newTaint(pass *analysis.Pass, dirty map[string]bool) *analysis.Taint {
	return &analysis.Taint{
		Info: pass.TypesInfo,
		Source: func(e ast.Expr) bool {
			call, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok {
				return false
			}
			if rawConversion(pass, call) {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil {
				return false
			}
			id := analysis.FuncID(fn)
			if id == "" {
				return false
			}
			if dirty[id] {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
				if f, ok := pass.PackageFact(fn.Pkg().Path()).(*Fact); ok && f != nil {
					return f.Dirty[id]
				}
			}
			return false
		},
	}
}

// rawConversion reports whether call is digest.Digest(x) for a raw
// (non-Digest) x other than the constant "" zero sentinel.
func rawConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	if !isDigestType(tv.Type) {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if isDigestType(pass.TypesInfo.TypeOf(arg)) {
		return false // Digest→Digest, a no-op re-typing
	}
	if atv, ok := pass.TypesInfo.Types[arg]; ok && atv.Value != nil &&
		atv.Value.Kind() == constant.String && constant.StringVal(atv.Value) == "" {
		return false // the zero-digest sentinel
	}
	return true
}

func isDigestType(t types.Type) bool {
	path, name := analysis.NamedTypePath(t)
	return path == digestPkg && name == "Digest"
}
