package digestflow_test

import (
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/digestflow"
)

func TestDigestflow(t *testing.T) {
	analysistest.RunSuite(t, analysis.Suite{digestflow.Analyzer},
		"testdata/src/digestflow", "./a", "./b")
}
