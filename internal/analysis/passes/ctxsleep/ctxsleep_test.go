package ctxsleep_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/ctxsleep"
)

func TestCtxsleep(t *testing.T) {
	analysistest.Run(t, ctxsleep.Analyzer, "testdata/src/a")
}
