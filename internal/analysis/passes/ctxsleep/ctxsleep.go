// Package ctxsleep bans raw time.Sleep inside loops: a sleep in a
// retry loop is an uncancellable wait — a caller that cancels its
// context still blocks for the full backoff, multiplied by the retry
// budget. The repo invariant (what distrib.Client's sleepCtx encodes)
// is that every backoff waits on a time.Timer raced against
// ctx.Done(), so cancellation aborts within one timer tick.
// time.Sleep outside a loop — a one-shot settle delay in setup code —
// is left alone.
package ctxsleep

import (
	"go/ast"
	"go/token"

	"comtainer/internal/analysis"
)

// Analyzer flags time.Sleep calls inside for/range loops.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsleep",
	Doc: "no raw time.Sleep inside a loop; retry backoff must select a " +
		"time.Timer against ctx.Done() so cancellation is not held hostage",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			checkBody(pass, body)
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	analysis.InspectShallow(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch v := n.(type) {
		case *ast.ForStmt:
			loopBody = v.Body
		case *ast.RangeStmt:
			loopBody = v.Body
		default:
			return true
		}
		guards := doneSelects(pass, loopBody)
		// The loop body is inspected in full, including nested loops
		// (they re-match above; a second report at the same position is
		// harmless because ast.Inspect below only reports Sleep calls).
		ast.Inspect(loopBody, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				// A function literal is its own scope; its body is
				// checked when FuncScopes visits it.
				_ = lit
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isTimeSleep(pass, call) && !guardedBefore(guards, call.Pos()) {
				pass.Reportf(call.Pos(), "raw time.Sleep in a loop: back off with a time.Timer selected against ctx.Done() instead")
			}
			return true
		})
		return false
	})
}

// doneSelects collects the positions of select statements in the loop
// body that have a `<-ctx.Done()` case. A Sleep after such a select in
// the same iteration is already cancellation-aware — the loop observes
// ctx before each wait — so flagging it would be a false positive.
func doneSelects(pass *analysis.Pass, loopBody *ast.BlockStmt) []token.Pos {
	var guards []token.Pos
	ast.Inspect(loopBody, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if commReceivesDone(pass, cc.Comm) {
				guards = append(guards, sel.Pos())
				break
			}
		}
		return true
	})
	return guards
}

// commReceivesDone reports whether a select comm clause receives from
// a ctx.Done() channel.
func commReceivesDone(pass *analysis.Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Done"
}

// guardedBefore reports whether any guard select precedes pos.
func guardedBefore(guards []token.Pos, pos token.Pos) bool {
	for _, g := range guards {
		if g < pos {
			return true
		}
	}
	return false
}

// isTimeSleep reports whether call is time.Sleep.
func isTimeSleep(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep"
}
