// Package ctxsleep bans raw time.Sleep inside loops: a sleep in a
// retry loop is an uncancellable wait — a caller that cancels its
// context still blocks for the full backoff, multiplied by the retry
// budget. The repo invariant (what distrib.Client's sleepCtx encodes)
// is that every backoff waits on a time.Timer raced against
// ctx.Done(), so cancellation aborts within one timer tick.
// time.Sleep outside a loop — a one-shot settle delay in setup code —
// is left alone.
package ctxsleep

import (
	"go/ast"

	"comtainer/internal/analysis"
)

// Analyzer flags time.Sleep calls inside for/range loops.
var Analyzer = &analysis.Analyzer{
	Name: "ctxsleep",
	Doc: "no raw time.Sleep inside a loop; retry backoff must select a " +
		"time.Timer against ctx.Done() so cancellation is not held hostage",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			checkBody(pass, body)
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	analysis.InspectShallow(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch v := n.(type) {
		case *ast.ForStmt:
			loopBody = v.Body
		case *ast.RangeStmt:
			loopBody = v.Body
		default:
			return true
		}
		// The loop body is inspected in full, including nested loops
		// (they re-match above; a second report at the same position is
		// harmless because ast.Inspect below only reports Sleep calls).
		ast.Inspect(loopBody, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				// A function literal is its own scope; its body is
				// checked when FuncScopes visits it.
				_ = lit
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isTimeSleep(pass, call) {
				pass.Reportf(call.Pos(), "raw time.Sleep in a loop: back off with a time.Timer selected against ctx.Done() instead")
			}
			return true
		})
		return false
	})
}

// isTimeSleep reports whether call is time.Sleep.
func isTimeSleep(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep"
}
