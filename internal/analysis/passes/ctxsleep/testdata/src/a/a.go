// Package a exercises the ctxsleep analyzer.
package a

import (
	"context"
	"time"
)

func retryLoop(n int) {
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond) // want `raw time.Sleep in a loop`
	}
}

func rangeLoop(xs []int) {
	for range xs {
		time.Sleep(time.Millisecond) // want `raw time.Sleep in a loop`
	}
}

func nestedBlock(n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			time.Sleep(time.Millisecond) // want `raw time.Sleep in a loop`
		}
	}
}

func oneShotSettle() {
	time.Sleep(time.Millisecond) // outside a loop: allowed
}

func timerBackoff(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		t := time.NewTimer(time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

func literalIsOwnScope(n int) func() {
	for i := 0; i < n; i++ {
		_ = func() {
			time.Sleep(time.Millisecond) // literal body outside any loop of its own: allowed
		}
	}
	return nil
}

func selectGuardedSleep(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		time.Sleep(time.Millisecond) // guarded by the select on ctx.Done() above: allowed
	}
	return nil
}

func selectGuardTooLate(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond) // want `raw time.Sleep in a loop`
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

func allowed(n int) {
	for i := 0; i < n; i++ {
		//comtainer:allow ctxsleep -- test fixture pacing, no ctx in scope
		time.Sleep(time.Millisecond)
	}
}
