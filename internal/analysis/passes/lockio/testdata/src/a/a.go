// Package a exercises the lockio analyzer.
package a

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	m  map[string]bool
}

func (s *store) deferHeld(p string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(p) // want `os.ReadFile called while s.mu is held`
}

func (s *store) explicitHeld(p string) error {
	s.mu.Lock()
	err := os.Remove(p) // want `os.Remove called while s.mu is held`
	s.mu.Unlock()
	return err
}

func (s *store) outside(p string) ([]byte, error) {
	s.mu.Lock()
	ok := s.m[p]
	s.mu.Unlock()
	if !ok {
		return nil, os.ErrNotExist
	}
	return os.ReadFile(p)
}

func (s *store) pure(err error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.IsNotExist(err)
}

type rw struct {
	mu sync.RWMutex
}

func (r *rw) readHeld(p string) (os.FileInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return os.Stat(p) // want `os.Stat called while r.mu is held`
}

func (r *rw) literalScope(p string) func() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// The literal is its own scope: it does not run under the lock.
	return func() error {
		return os.Remove(p)
	}
}

func (s *store) suppressed(p string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//comtainer:allow lockio -- exercising the suppression syntax
	return os.Remove(p)
}
