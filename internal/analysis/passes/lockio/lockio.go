// Package lockio enforces the shard-lock discipline used throughout
// the distrib and actioncache stores: a sync.Mutex/RWMutex critical
// section must not perform file or network I/O. Disk latency under a
// shard lock convoys every other goroutine touching the shard — the
// exact regression the DiskCache Get/Put split (stat, read, and write
// outside the lock; index bookkeeping inside) exists to prevent.
//
// The check is lexical, per function: a section opens at mu.Lock() /
// mu.RLock() and closes at the next matching unlock of the same
// receiver expression, or at the end of the function when the unlock
// is deferred. Calls into package os, io, net, or net/http inside a
// section are flagged. Nested function literals are independent
// scopes. Deliberate holds (e.g. serializing commit-time renames
// against deletes) carry a //comtainer:allow lockio comment.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"

	"comtainer/internal/analysis"
)

// ioPkgs are packages whose calls count as I/O.
var ioPkgs = map[string]bool{
	"os":       true,
	"io":       true,
	"net":      true,
	"net/http": true,
}

// pureFuncs are calls into ioPkgs that do no I/O and are always fine
// to make under a lock.
var pureFuncs = map[string]bool{
	"os.IsNotExist":   true,
	"os.IsExist":      true,
	"os.IsPermission": true,
	"os.IsTimeout":    true,
	"os.Getenv":       true,
}

// Analyzer flags I/O performed while a sync mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: "no os/io/net call while a sync.Mutex or sync.RWMutex is held; " +
		"do disk and network work outside the critical section",
	Run: run,
}

// event is one lock-relevant occurrence inside a function body, in
// source order.
type event struct {
	pos  token.Pos
	kind string // "lock", "unlock", "defer-unlock", "io"
	key  string // lock receiver expression + lock flavor
	desc string // io call description
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			checkBody(pass, body)
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	analysis.InspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			if key, kind, ok := lockCall(pass.TypesInfo, v.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
				events = append(events, event{pos: v.Pos(), kind: "defer-unlock", key: key + flavor(kind)})
			}
			return true
		case *ast.CallExpr:
			if key, kind, ok := lockCall(pass.TypesInfo, v); ok {
				switch kind {
				case "Lock", "RLock":
					events = append(events, event{pos: v.Pos(), kind: "lock", key: key + flavor(kind)})
				case "Unlock", "RUnlock":
					events = append(events, event{pos: v.Pos(), kind: "unlock", key: key + flavor(kind)})
				}
				return true
			}
			if desc, ok := ioCall(pass.TypesInfo, v); ok {
				events = append(events, event{pos: v.Pos(), kind: "io", desc: desc})
			}
		}
		return true
	})

	reported := map[token.Pos]bool{}
	for _, lock := range events {
		if lock.kind != "lock" {
			continue
		}
		end := body.End()
		// The section closes at the first explicit matching unlock
		// after the lock, unless a deferred unlock intervenes — then
		// it runs to the end of the function.
		var explicit token.Pos
		for _, e := range events {
			if e.kind == "unlock" && e.key == lock.key && e.pos > lock.pos {
				explicit = e.pos
				break
			}
		}
		deferred := false
		for _, e := range events {
			if e.kind == "defer-unlock" && e.key == lock.key && e.pos > lock.pos &&
				(explicit == token.NoPos || e.pos < explicit) {
				deferred = true
				break
			}
		}
		if !deferred && explicit != token.NoPos {
			end = explicit
		}
		for _, e := range events {
			if e.kind == "io" && e.pos > lock.pos && e.pos < end && !reported[e.pos] {
				reported[e.pos] = true
				pass.Reportf(e.pos, "%s called while %s is held; move I/O outside the critical section",
					e.desc, lock.key[:len(lock.key)-2])
			}
		}
	}
}

// flavor collapses Lock/Unlock and RLock/RUnlock into a matching key
// suffix so write sections pair with Unlock and read sections with
// RUnlock.
func flavor(kind string) string {
	if kind == "RLock" || kind == "RUnlock" {
		return "/r"
	}
	return "/w"
}

// lockCall reports whether call is a sync.Mutex/RWMutex (un)lock and
// returns the receiver expression string and method name.
func lockCall(info *types.Info, call *ast.CallExpr) (key, kind string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// ioCall reports whether call enters one of the I/O packages and
// returns a printable description.
func ioCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || !ioPkgs[fn.Pkg().Path()] {
		return "", false
	}
	desc := fn.Pkg().Name() + "." + fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if _, name := analysis.NamedTypePath(recv.Type()); name != "" {
			desc = fn.Pkg().Name() + "." + name + "." + fn.Name()
		}
	}
	if pureFuncs[desc] || pureFuncs[fn.Pkg().Name()+"."+fn.Name()] {
		return "", false
	}
	return desc, true
}
