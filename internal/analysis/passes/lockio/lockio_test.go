package lockio_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/lockio"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, lockio.Analyzer, "testdata/src/a")
}
