// Package passes assembles the full comtainer-vet analyzer suite.
package passes

import (
	"comtainer/internal/analysis"
	"comtainer/internal/analysis/passes/atomicmix"
	"comtainer/internal/analysis/passes/atomicwrite"
	"comtainer/internal/analysis/passes/bodyclose"
	"comtainer/internal/analysis/passes/closeleak"
	"comtainer/internal/analysis/passes/ctxflow"
	"comtainer/internal/analysis/passes/ctxsleep"
	"comtainer/internal/analysis/passes/digestcmp"
	"comtainer/internal/analysis/passes/digestflow"
	"comtainer/internal/analysis/passes/errpropagate"
	"comtainer/internal/analysis/passes/gonaked"
	"comtainer/internal/analysis/passes/guardedby"
	"comtainer/internal/analysis/passes/lockio"
	"comtainer/internal/analysis/passes/lockorder"
	"comtainer/internal/analysis/passes/safejoin"
	"comtainer/internal/analysis/passes/timerstop"
	"comtainer/internal/analysis/passes/wgbalance"
)

// All returns every analyzer in the comtainer-vet suite, in the order
// diagnostics should be grouped. Order is also a dependency statement:
// guardedby consumes the lock summaries and CHA bindings lockorder
// exports, so lockorder must run first.
func All() analysis.Suite {
	return analysis.Suite{
		digestcmp.Analyzer,
		digestflow.Analyzer,
		atomicwrite.Analyzer,
		lockio.Analyzer,
		lockorder.Analyzer,
		guardedby.Analyzer,
		atomicmix.Analyzer,
		safejoin.Analyzer,
		errpropagate.Analyzer,
		gonaked.Analyzer,
		ctxsleep.Analyzer,
		ctxflow.Analyzer,
		bodyclose.Analyzer,
		closeleak.Analyzer,
		timerstop.Analyzer,
		wgbalance.Analyzer,
	}
}
