package digestcmp_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/digestcmp"
)

func TestDigestcmp(t *testing.T) {
	analysistest.Run(t, digestcmp.Analyzer, "testdata/src/a")
}
