// Package a exercises the digestcmp analyzer.
package a

import (
	"strings"

	"comtainer/internal/digest"
)

func concat(hex string) digest.Digest {
	return digest.Digest("sha256:" + hex) // want `digest assembled by string concatenation`
}

func prefix(s string) bool {
	return strings.HasPrefix(s, "sha256:") // want `string inspection of a "sha256:" literal`
}

func trim(s string) string {
	return strings.TrimPrefix(s, "sha256:") // want `string inspection of a "sha256:" literal`
}

func compareConverted(d digest.Digest, s string) bool {
	return string(d) == s // want `digest compared through string\(\.\.\.\) conversion`
}

func compareRaw(s string) bool {
	return s == "sha256:0000000000000000000000000000000000000000000000000000000000000000" // want `raw string compared against a "sha256:" literal`
}

func good(b []byte, s string) (bool, error) {
	d := digest.FromBytes(b)
	p, err := digest.Parse(s)
	if err != nil {
		return false, err
	}
	return d == p, nil
}

func suppressed(s string) bool {
	//comtainer:allow digestcmp -- exercising the suppression syntax
	return s == "sha256:ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
}
