// Package digestcmp enforces coMtainer's digest-handling invariant:
// content digests are values of comtainer/internal/digest.Digest,
// constructed and parsed by that package's helpers, never assembled or
// compared as raw "sha256:..." strings. Raw-string digest handling is
// how verify-on-read checks silently stop verifying — a typed Digest
// must exist before any comparison so that Validate/Parse has seen it.
package digestcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"comtainer/internal/analysis"
)

// digestPkg is the package whose helpers are mandatory.
const digestPkg = "comtainer/internal/digest"

// Analyzer flags raw-string digest construction and comparison.
var Analyzer = &analysis.Analyzer{
	Name: "digestcmp",
	Doc: "digests must be built and compared via comtainer/internal/digest " +
		"(FromBytes/FromReader/FromHash/Parse and typed Digest comparison), " +
		"never assembled from or compared against raw \"sha256:...\" strings",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == digestPkg {
		return nil // the digest package owns the representation
	}
	if strings.HasPrefix(pass.Pkg.Path(), "comtainer/internal/analysis") &&
		!strings.Contains(pass.Pkg.Path(), "/testdata/") {
		return nil // the analyzers themselves inspect digest literals
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, v)
			case *ast.BinaryExpr:
				checkCompare(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkCall flags digest.Digest(<string concatenation>) conversions
// and strings-package prefix fiddling on "sha256:..." literals.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Conversion to digest.Digest from a concatenation: the caller is
	// hashing or re-assembling by hand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if p, name := analysis.NamedTypePath(tv.Type); p == digestPkg && name == "Digest" {
			if _, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr); ok {
				pass.Reportf(call.Pos(),
					"digest assembled by string concatenation; use digest.FromBytes/FromReader/FromHash or digest.Parse")
			}
		}
		return
	}
	// strings.HasPrefix(x, "sha256:") and friends.
	if analysis.IsPkgFunc(pass.TypesInfo, call, "strings",
		"HasPrefix", "HasSuffix", "TrimPrefix", "TrimSuffix", "Contains", "Cut") {
		for _, arg := range call.Args {
			if isDigestLiteral(pass.TypesInfo, arg) {
				pass.Reportf(call.Pos(),
					"string inspection of a %q literal; parse with digest.Parse and use Digest.Algorithm/Hex instead", "sha256:")
				return
			}
		}
	}
}

// checkCompare flags ==/!= where digests leak back into raw strings:
// either a string(d) conversion of a Digest, or a plain-string operand
// compared against a "sha256:..." literal.
func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if conv, ok := ast.Unparen(side).(*ast.CallExpr); ok && len(conv.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[conv.Fun]; ok && tv.IsType() {
				if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.String {
					if p, name := analysis.NamedTypePath(pass.TypesInfo.TypeOf(conv.Args[0])); p == digestPkg && name == "Digest" {
						pass.Reportf(b.Pos(),
							"digest compared through string(...) conversion; compare digest.Digest values directly")
						return
					}
				}
			}
		}
	}
	lit, other := b.X, b.Y
	if !isDigestLiteral(pass.TypesInfo, lit) {
		lit, other = b.Y, b.X
	}
	if !isDigestLiteral(pass.TypesInfo, lit) {
		return
	}
	if t, ok := pass.TypesInfo.TypeOf(other).(*types.Basic); ok && t.Kind() == types.String {
		pass.Reportf(b.Pos(),
			"raw string compared against a %q literal; parse both sides with digest.Parse and compare Digest values", "sha256:")
	}
}

// isDigestLiteral reports whether e is a constant string starting with
// the sha256 algorithm prefix.
func isDigestLiteral(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.HasPrefix(constant.StringVal(tv.Value), "sha256:")
}
