// Package lockorder builds the repository-wide lock-acquisition order
// graph and reports any cycle in it as a potential deadlock.
//
// Per package, the analyzer summarizes every declared function: the
// mutex classes it acquires (a class is the declaring package/type/
// field of the sync.Mutex or RWMutex, e.g. distrib.DiskStore.mu — all
// instances of a type share a class), the classes lexically held at
// each acquisition, and its outgoing call sites with the classes held
// there. The summaries, plus the package's visible interface→
// implementation bindings (class-hierarchy analysis), are exported as
// facts. The whole-program Finish step links call sites to callees —
// static calls directly, interface calls to every known
// implementation — computes each function's transitive acquisition
// set, and adds an edge A→B whenever B is acquired (directly or via a
// callee chain) while A is held. A cycle in that graph means two
// executions can acquire the same locks in opposite orders.
//
// Known approximations, accepted for a linter backed by suppression
// comments: function literals are not summarized (goroutine bodies
// run without the spawner's locks anyway), calls through plain
// function values are invisible, classes collapse all instances of a
// type (two distinct stores of the same type look like one lock), and
// RLock is ordered like Lock (conservative for writer interleavings).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"comtainer/internal/analysis"
)

// Analyzer reports cycles in the global lock-acquisition order graph.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "no cycles in the repository-wide lock acquisition order; a cycle " +
		"means two call paths can take the same mutexes in opposite orders and deadlock",
	Version:  2,
	FactType: (*Fact)(nil),
	Run:      run,
	Finish:   finish,
}

// Fact is the per-package summary lockorder exports.
type Fact struct {
	// Funcs maps analysis.FuncID → lock summary for every function
	// declared in the package that acquires or calls.
	Funcs map[string]*FuncLocks `json:"funcs,omitempty"`
	// Impls maps interface-method FuncIDs to the in-module methods
	// implementing them, as visible from this package.
	Impls map[string][]string `json:"impls,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

// FuncLocks summarizes one function.
type FuncLocks struct {
	Acquires []Acquire  `json:"acquires,omitempty"`
	Calls    []CallSite `json:"calls,omitempty"`

	// Leaves are the lock classes still held when the function
	// returns — acquired with neither a later explicit unlock nor a
	// deferred unlock. A lock() helper leaves its class held; callers'
	// lockset dataflow (cfg.ComputeLockSets) adds these on the call.
	Leaves []string `json:"leaves,omitempty"`
	// Releases are the classes the function unlocks without having
	// acquired them itself — an unlock() helper running with the
	// caller's lock held. Callers' lockset dataflow removes these.
	Releases []string `json:"releases,omitempty"`
}

// Acquire is one mutex acquisition with the classes lexically held at
// that point.
type Acquire struct {
	Class string         `json:"class"`
	Held  []string       `json:"held,omitempty"`
	Pos   token.Position `json:"pos"`
}

// CallSite is one outgoing call with the classes held at the call.
type CallSite struct {
	Callee string         `json:"callee"`
	Iface  bool           `json:"iface,omitempty"`
	Held   []string       `json:"held,omitempty"`
	Pos    token.Position `json:"pos"`
}

func run(pass *analysis.Pass) error {
	fact := &Fact{Funcs: make(map[string]*FuncLocks)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			id := analysis.FuncID(fn)
			if id == "" {
				continue
			}
			if fl := summarize(pass, fd.Body); fl != nil {
				fact.Funcs[id] = fl
			}
		}
	}
	fact.Impls = moduleImpls(pass.Pkg)
	if len(fact.Funcs) > 0 || len(fact.Impls) > 0 {
		pass.ExportPackageFact(fact)
	}
	return nil
}

// moduleImpls keeps only CHA bindings whose implementation lives in
// the current module (same leading path segment as the package):
// foreign code cannot acquire this repository's lock classes.
func moduleImpls(pkg *types.Package) map[string][]string {
	seg := firstSegment(pkg.Path())
	out := make(map[string][]string)
	for iface, impls := range analysis.Implementations(pkg) {
		for _, impl := range impls {
			if firstSegment(impl) == seg {
				out[iface] = append(out[iface], impl)
			}
		}
	}
	for _, impls := range out {
		sort.Strings(impls)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// event is one lock-relevant occurrence inside a function body, in
// source order.
type event struct {
	pos   token.Pos
	kind  string // "lock", "unlock", "defer-unlock", "call"
	key   string // receiver expression + flavor, for pairing
	class string // resolved lock class ("" = local/unresolvable)

	callee string // for "call"
	iface  bool
}

// summarize scans one function body (shallow: nested function
// literals are independent and skipped) and produces its summary, or
// nil when the function neither locks nor calls anything relevant.
func summarize(pass *analysis.Pass, body *ast.BlockStmt) *FuncLocks {
	seg := firstSegment(pass.Pkg.Path())
	var events []event
	analysis.InspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			if key, class, kind, ok := lockCall(pass.TypesInfo, v.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
				events = append(events, event{pos: v.Pos(), kind: "defer-unlock", key: key, class: class})
			}
			return true
		case *ast.CallExpr:
			if key, class, kind, ok := lockCall(pass.TypesInfo, v); ok {
				switch kind {
				case "Lock", "RLock":
					events = append(events, event{pos: v.Pos(), kind: "lock", key: key, class: class})
				case "Unlock", "RUnlock":
					events = append(events, event{pos: v.Pos(), kind: "unlock", key: key, class: class})
				}
				return true
			}
			if id, iface, ok := analysis.CallTarget(pass.TypesInfo, v); ok {
				// Only in-module callees can acquire in-module lock
				// classes; foreign calls are omitted to keep facts
				// small. (Interface methods are kept regardless: the
				// implementation may be local even when the interface
				// is foreign.)
				if iface || firstSegment(id) == seg {
					events = append(events, event{pos: v.Pos(), kind: "call", callee: id, iface: iface})
				}
			}
		}
		return true
	})

	heldAt := heldSets(events, body.End())
	out := &FuncLocks{}
	for i, e := range events {
		switch e.kind {
		case "lock":
			if e.class == "" {
				continue
			}
			out.Acquires = append(out.Acquires, Acquire{
				Class: e.class,
				Held:  heldAt[i],
				Pos:   pass.Fset.Position(e.pos),
			})
		case "call":
			out.Calls = append(out.Calls, CallSite{
				Callee: e.callee,
				Iface:  e.iface,
				Held:   heldAt[i],
				Pos:    pass.Fset.Position(e.pos),
			})
		}
	}
	out.Leaves, out.Releases = netEffect(events)
	if len(out.Acquires) == 0 && len(out.Calls) == 0 &&
		len(out.Leaves) == 0 && len(out.Releases) == 0 {
		return nil
	}
	return out
}

// netEffect derives the function's lock summary for callers: the
// classes still held at return (leaves) and the classes unlocked
// without a prior acquisition (releases). Lexical, matching heldSets:
// an acquisition is released by a later explicit unlock of the same
// receiver, or by a deferred unlock anywhere (defers run at return
// regardless of registration order relative to the Lock).
func netEffect(events []event) (leaves, releases []string) {
	leave := map[string]bool{}
	release := map[string]bool{}
	for _, l := range events {
		if l.kind != "lock" || l.class == "" {
			continue
		}
		settled := false
		for _, e := range events {
			if e.key != l.key {
				continue
			}
			if (e.kind == "unlock" && e.pos > l.pos) || e.kind == "defer-unlock" {
				settled = true
				break
			}
		}
		if !settled {
			leave[l.class] = true
		}
	}
	for _, u := range events {
		if u.kind != "unlock" || u.class == "" {
			continue
		}
		acquired := false
		for _, e := range events {
			if e.kind == "lock" && e.key == u.key && e.pos < u.pos {
				acquired = true
				break
			}
		}
		if !acquired {
			release[u.class] = true
		}
	}
	return setToSorted(leave), setToSorted(release)
}

func setToSorted(s map[string]bool) []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// heldSets computes, for each event index, the sorted set of lock
// classes lexically held at that event: a lock is held from its
// acquisition to the first later explicit unlock of the same receiver
// expression, or to the end of the function when a deferred unlock
// intervenes first.
func heldSets(events []event, funcEnd token.Pos) [][]string {
	type section struct {
		class      string
		start, end token.Pos
	}
	var sections []section
	for _, l := range events {
		if l.kind != "lock" || l.class == "" {
			continue
		}
		end := funcEnd
		var explicit token.Pos
		for _, e := range events {
			if e.kind == "unlock" && e.key == l.key && e.pos > l.pos {
				explicit = e.pos
				break
			}
		}
		deferred := false
		for _, e := range events {
			if e.kind == "defer-unlock" && e.key == l.key && e.pos > l.pos &&
				(explicit == token.NoPos || e.pos < explicit) {
				deferred = true
				break
			}
		}
		if !deferred && explicit != token.NoPos {
			end = explicit
		}
		sections = append(sections, section{class: l.class, start: l.pos, end: end})
	}

	out := make([][]string, len(events))
	for i, e := range events {
		seen := map[string]bool{}
		for _, s := range sections {
			if s.start < e.pos && e.pos < s.end && !seen[s.class] {
				seen[s.class] = true
				out[i] = append(out[i], s.class)
			}
		}
		sort.Strings(out[i])
	}
	return out
}

// lockCall reports whether call is a sync.Mutex/RWMutex (un)lock,
// returning the pairing key (receiver expression + flavor), the
// resolved lock class, and the method name.
func lockCall(info *types.Info, call *ast.CallExpr) (key, class, kind string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", "", false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock":
		return types.ExprString(sel.X) + "/w", analysis.LockClass(info, sel.X), fn.Name(), true
	case "RLock", "RUnlock":
		return types.ExprString(sel.X) + "/r", analysis.LockClass(info, sel.X), fn.Name(), true
	}
	return "", "", "", false
}

// --- whole-program step ---

// edge is one ordered pair in the acquisition graph with its first
// (position-wise) witness.
type edge struct {
	from, to string
	pos      token.Position
}

func finish(fp *analysis.FinishPass) error {
	funcs := make(map[string]*FuncLocks)
	impls := make(map[string][]string)
	for _, f := range fp.Facts {
		fact, ok := f.(*Fact)
		if !ok {
			continue
		}
		for id, fl := range fact.Funcs {
			funcs[id] = fl
		}
		analysis.MergeImplementations(impls, fact.Impls)
	}

	trans := transitiveAcquires(funcs, impls)

	edges := make(map[[2]string]token.Position)
	addEdge := func(from, to string, pos token.Position) {
		if from == to {
			// Self-edges are dropped: the class abstraction cannot
			// tell two instances of one type apart, so re-acquisition
			// across instances would drown real cycles in noise.
			return
		}
		k := [2]string{from, to}
		if old, ok := edges[k]; !ok || before(pos, old) {
			edges[k] = pos
		}
	}
	for _, fl := range funcs {
		for _, a := range fl.Acquires {
			for _, h := range a.Held {
				addEdge(h, a.Class, a.Pos)
			}
		}
		for _, c := range fl.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for _, callee := range resolve(c, impls) {
				for cls := range trans[callee] {
					for _, h := range c.Held {
						addEdge(h, cls, c.Pos)
					}
				}
			}
		}
	}

	reportCycles(fp, edges)
	return nil
}

// resolve expands a call site to its possible callees.
func resolve(c CallSite, impls map[string][]string) []string {
	if !c.Iface {
		return []string{c.Callee}
	}
	return impls[c.Callee]
}

// transitiveAcquires computes, per function, every lock class it can
// acquire directly or through its callees (fixpoint over the call
// graph, interface calls fanned out to all implementations).
func transitiveAcquires(funcs map[string]*FuncLocks, impls map[string][]string) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(funcs))
	for id, fl := range funcs {
		set := make(map[string]bool)
		for _, a := range fl.Acquires {
			set[a.Class] = true
		}
		out[id] = set
	}
	for changed := true; changed; {
		changed = false
		for id, fl := range funcs {
			set := out[id]
			for _, c := range fl.Calls {
				for _, callee := range resolve(c, impls) {
					for cls := range out[callee] {
						if !set[cls] {
							set[cls] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return out
}

// reportCycles finds strongly connected components of the edge graph
// and reports one canonical cycle per component: starting from the
// lexicographically smallest class, the shortest path back to itself.
func reportCycles(fp *analysis.FinishPass, edges map[[2]string]token.Position) {
	adj := make(map[string][]string)
	nodes := map[string]bool{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for _, outs := range adj {
		sort.Strings(outs)
	}

	for _, scc := range tarjan(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		sort.Strings(scc)
		start := scc[0]
		cycle := shortestCycle(start, adj, inSCC)
		if cycle == nil {
			continue
		}
		pos := edges[[2]string{cycle[0], cycle[1]}]
		fp.Report(analysis.Diagnostic{
			Pos:      pos,
			Analyzer: fp.Analyzer.Name,
			Message: fmt.Sprintf("potential deadlock: lock order cycle: %s",
				strings.Join(cycle, " -> ")),
		})
	}
}

// shortestCycle BFSes from start back to start inside one SCC and
// returns the node sequence start…start, or nil if none is found.
func shortestCycle(start string, adj map[string][]string, in map[string]bool) []string {
	parent := map[string]string{}
	queue := []string{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if !in[m] {
				continue
			}
			if m == start {
				cycle := []string{start}
				for at := n; at != start; at = parent[at] {
					cycle = append(cycle, at)
				}
				if len(cycle) == 1 {
					return nil // only a self-loop; filtered earlier
				}
				cycle = append(cycle, start)
				// Reverse the middle back into walk order.
				for i, j := 1, len(cycle)-2; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return cycle
			}
			if _, seen := parent[m]; !seen && m != start {
				parent[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}

// tarjan returns the strongly connected components of the graph in a
// deterministic order (nodes visited sorted).
func tarjan(nodes map[string]bool, adj map[string][]string) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strong func(n string)
	strong = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range adj[n] {
			if _, seen := index[m]; !seen {
				strong(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccs
}

// before orders positions for deterministic witness selection.
func before(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
