package lockorder_test

import (
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.RunSuite(t, analysis.Suite{lockorder.Analyzer},
		"testdata/src/lockorder", "./a", "./b")
}
