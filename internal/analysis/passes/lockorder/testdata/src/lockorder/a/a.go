// Package a exercises the lockorder analyzer: a two-package
// lock-order cycle through a cross-package call, a one-package cycle
// through interface dispatch, and consistently-ordered negatives.
package a

import (
	"sync"

	"comtainer/internal/analysis/passes/lockorder/testdata/src/lockorder/b"
)

// MuA participates in a cycle with b.MuB.
var MuA sync.Mutex

// CrossAB holds MuA while (transitively) acquiring b.MuB.
func CrossAB() {
	MuA.Lock()
	defer MuA.Unlock()
	b.LockB() // want `potential deadlock: lock order cycle`
}

// CrossBA acquires in the opposite order: b.MuB, then MuA.
func CrossBA() {
	b.MuB.Lock()
	defer b.MuB.Unlock()
	MuA.Lock()
	MuA.Unlock()
}

// MuC and MuD cycle through an interface call.
var (
	MuC sync.Mutex
	MuD sync.Mutex
)

type locker interface{ Hit() }

type impl struct{}

func (impl) Hit() {
	MuD.Lock()
	MuD.Unlock()
}

// UseIface holds MuC across interface dispatch; CHA resolves l.Hit to
// impl.Hit, which acquires MuD.
func UseIface(l locker) {
	MuC.Lock()
	defer MuC.Unlock()
	l.Hit() // want `potential deadlock: lock order cycle`
}

// Reverse acquires MuD then MuC, closing the cycle.
func Reverse() {
	MuD.Lock()
	defer MuD.Unlock()
	MuC.Lock()
	MuC.Unlock()
}

// Ordered mutexes are taken in one consistent order everywhere: fine.
var (
	MuX sync.Mutex
	MuY sync.Mutex
)

func orderedOne() {
	MuX.Lock()
	defer MuX.Unlock()
	MuY.Lock()
	MuY.Unlock()
}

func orderedTwo() {
	MuX.Lock()
	MuY.Lock()
	MuY.Unlock()
	MuX.Unlock()
}

// released drops MuX before taking MuY in the opposite-order path, so
// no cycle exists.
func released() {
	MuY.Lock()
	MuY.Unlock()
	MuX.Lock()
	MuX.Unlock()
}

// shards of one type share a class; re-acquisition across instances is
// a self-edge and deliberately not reported.
type shard struct{ mu sync.Mutex }

func twoShards(s1, s2 *shard) {
	s1.mu.Lock()
	defer s1.mu.Unlock()
	s2.mu.Lock()
	s2.mu.Unlock()
}
