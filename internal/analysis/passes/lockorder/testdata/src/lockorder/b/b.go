// Package b owns MuB; LockB is the cross-package acquisition helper
// that package a calls while holding its own mutex.
package b

import "sync"

// MuB is a package-level lock class.
var MuB sync.Mutex

// LockB acquires and releases MuB.
func LockB() {
	MuB.Lock()
	defer MuB.Unlock()
}
