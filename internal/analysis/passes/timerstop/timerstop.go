// Package timerstop checks that time.Timer and time.Ticker values are
// stopped on every path to the function exit. A ticker that outlives
// its loop keeps a goroutine-visible channel and its runtime timer
// alive forever — the classic slow leak in long-running services like
// the registry fleet's heartbeat and long-poll paths.
//
// The analysis is path-sensitive over the per-function CFG: `defer
// t.Stop()` counts from its registration point, escaped timers
// (returned, stored, handed to another function) become the new
// owner's responsibility, and a loop that never exits vacuously
// satisfies the property. Two unstoppable idioms are reported
// outright: time.Tick (its ticker can never be stopped; fine in main,
// a leak in library code) and time.After inside a loop (one orphaned
// timer per iteration).
package timerstop

import (
	"fmt"
	"go/ast"
	"go/types"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/passes/lifecycle"
)

// Analyzer reports unstopped timers and tickers.
var Analyzer = &analysis.Analyzer{
	Name: "timerstop",
	Doc: "time.Timer/time.Ticker must be stopped on every path to the function exit; " +
		"no time.Tick in library code, no time.After in loops",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
}

// Fact records which declared functions stop a timer/ticker parameter
// on every path, keyed by FuncID; values are flat parameter indices.
type Fact struct {
	Stoppers map[string][]int `json:"stoppers,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "time" {
		return nil
	}
	spec := &lifecycle.Spec{
		IsResource: isTimer,
		IsRelease: func(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
			return lifecycle.MethodOn(info, call, obj, "Stop")
		},
		DepClosers: func(path string) map[string][]int {
			if f, ok := pass.PackageFact(path).(*Fact); ok && f != nil {
				return f.Stoppers
			}
			return nil
		},
		LeakMessage: func(obj types.Object) string {
			return fmt.Sprintf("%s (%s) is not stopped on every path to return", obj.Name(), obj.Type())
		},
		DiscardMessage: func(t types.Type) string {
			return fmt.Sprintf("%s result is discarded; it can never be stopped", t)
		},
	}
	stoppers := lifecycle.Closers(pass, spec)
	if len(stoppers) > 0 {
		pass.ExportPackageFact(&Fact{Stoppers: stoppers})
	}
	lifecycle.Check(pass, spec, stoppers)
	checkUnstoppable(pass)
	return nil
}

// isTimePkgFunc reports a call to the package-level time function
// named name — NOT the (time.Time).After / (time.Time).Tick-alike
// methods, which share names with the package functions.
func isTimePkgFunc(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isTimer reports *time.Timer / *time.Ticker.
func isTimer(t types.Type) bool {
	path, name := analysis.NamedTypePath(t)
	return path == "time" && (name == "Timer" || name == "Ticker")
}

// checkUnstoppable flags the two idioms with no Stop at all:
// time.Tick outside package main, and time.After under a loop.
func checkUnstoppable(pass *analysis.Pass) {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			var walk func(n ast.Node, inLoop bool)
			walk = func(n ast.Node, inLoop bool) {
				ast.Inspect(n, func(m ast.Node) bool {
					if m == n {
						return true
					}
					switch m := m.(type) {
					case *ast.FuncLit:
						return false // a separate scope; FuncScopes revisits it
					case *ast.ForStmt:
						if m.Init != nil {
							walk(m.Init, inLoop)
						}
						if m.Cond != nil {
							walk(m.Cond, inLoop)
						}
						if m.Post != nil {
							walk(m.Post, inLoop)
						}
						walk(m.Body, true)
						return false
					case *ast.RangeStmt:
						walk(m.X, inLoop)
						walk(m.Body, true)
						return false
					case *ast.CallExpr:
						if isTimePkgFunc(pass.TypesInfo, m, "Tick") && !isMain {
							pass.Reportf(m.Pos(),
								"time.Tick leaks its Ticker in library code; use time.NewTicker and Stop it")
						}
						if isTimePkgFunc(pass.TypesInfo, m, "After") && inLoop {
							pass.Reportf(m.Pos(),
								"time.After in a loop leaks one Timer per iteration; hoist a time.NewTimer and Stop it")
						}
					}
					return true
				})
			}
			walk(body, false)
		})
	}
}
