// Package a exercises the timerstop analyzer.
package a

import (
	"context"
	"time"
)

func waitOnceLeak(d time.Duration) {
	t := time.NewTicker(d) // want `t \(\*time.Ticker\) is not stopped on every path to return`
	<-t.C
}

func deferClean(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func stopTooLate(d time.Duration, ready bool) {
	t := time.NewTimer(d) // want `t \(\*time.Timer\) is not stopped on every path to return`
	if !ready {
		return
	}
	defer t.Stop()
	<-t.C
}

func pumpForever(d time.Duration) {
	t := time.NewTicker(d) // never exits: vacuously stopped
	for {
		<-t.C
	}
}

func returnedClean(d time.Duration) *time.Ticker {
	t := time.NewTicker(d)
	return t // the caller stops it
}

func discarded(d time.Duration) {
	time.NewTicker(d) // want `\*time.Ticker result is discarded; it can never be stopped`
}

func tickInLibrary(d time.Duration) <-chan time.Time {
	return time.Tick(d) // want `time.Tick leaks its Ticker in library code`
}

func afterInLoop(ctx context.Context, d time.Duration) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(d): // want `time.After in a loop leaks one Timer per iteration`
		}
	}
}

func afterOnce(d time.Duration) {
	<-time.After(d) // outside a loop: one timer, fires and is collected
}

func methodAfterIsFine(deadline time.Time) bool {
	return time.Now().After(deadline) // the Time method, not the package function
}
