package timerstop_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/timerstop"
)

func TestTimerstop(t *testing.T) {
	analysistest.Run(t, timerstop.Analyzer, "testdata/src/timerstop/a")
}
