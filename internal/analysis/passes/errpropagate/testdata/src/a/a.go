// Package a exercises the errpropagate analyzer.
package a

import "comtainer/internal/fsim"

func blanked(fs *fsim.FS) {
	_ = fs.Remove("/x") // want `error from fsim.FS.Remove discarded with _`
}

func bare(fs *fsim.FS) {
	fs.Remove("/x") // want `error from fsim.FS.Remove discarded by bare call`
}

func multi(fs *fsim.FS) *fsim.File {
	f, _ := fs.Stat("/x") // want `error from fsim.FS.Stat discarded with _`
	return f
}

func deferred(fs *fsim.FS) {
	defer fs.Remove("/x") // want `error from fsim.FS.Remove discarded`
}

func handled(fs *fsim.FS) error {
	if err := fs.Remove("/x"); err != nil {
		return err
	}
	return nil
}

func unguardedIsFine(m map[string]bool) {
	_ = len(m)
	delete(m, "x")
}

func suppressed(fs *fsim.FS) {
	//comtainer:allow errpropagate -- exercising the suppression syntax
	_ = fs.Remove("/x")
}
