package errpropagate_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/errpropagate"
)

func TestErrpropagate(t *testing.T) {
	analysistest.Run(t, errpropagate.Analyzer, "testdata/src/a")
}
