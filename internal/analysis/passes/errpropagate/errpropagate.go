// Package errpropagate enforces error discipline at the boundaries of
// the storage and image-manipulation packages: an error returned by
// internal/fsim, internal/oci, internal/distrib, or internal/actioncache
// must be propagated or logged, never dropped with `_ =` or a bare
// call statement. These are exactly the APIs whose errors signal
// corruption (digest mismatch, torn write, missing blob); swallowing
// one converts an integrity failure into silent bad output. Genuinely
// best-effort call sites carry //comtainer:allow errpropagate with a
// reason.
package errpropagate

import (
	"go/ast"
	"go/types"

	"comtainer/internal/analysis"
)

// guardedPkgs are the packages whose returned errors must not be
// discarded.
var guardedPkgs = map[string]bool{
	"comtainer/internal/fsim":        true,
	"comtainer/internal/oci":         true,
	"comtainer/internal/distrib":     true,
	"comtainer/internal/actioncache": true,
}

// Analyzer flags discarded errors from the guarded packages.
var Analyzer = &analysis.Analyzer{
	Name: "errpropagate",
	Doc: "errors returned by internal/fsim, internal/oci, internal/distrib and " +
		"internal/actioncache must be handled, not discarded with `_ =` or a bare call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, s)
			case *ast.ExprStmt:
				checkBare(pass, s)
			case *ast.GoStmt, *ast.DeferStmt:
				// go/defer of a guarded call discards its error too.
				var call *ast.CallExpr
				if g, ok := s.(*ast.GoStmt); ok {
					call = g.Call
				} else {
					call = s.(*ast.DeferStmt).Call
				}
				if name, ok := discardsGuardedError(pass, call, -1); ok {
					pass.Reportf(call.Pos(), "error from %s discarded; handle or propagate it", name)
				}
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `_ = call` and `x, _ = call` forms where the
// blanked value is an error from a guarded package.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value call: find blanked error results positionally.
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for i, l := range s.Lhs {
			if !isBlank(l) {
				continue
			}
			if name, ok := discardsGuardedError(pass, call, i); ok {
				pass.Reportf(s.Pos(), "error from %s discarded with _; handle or propagate it", name)
				return
			}
		}
		return
	}
	for i := range s.Lhs {
		if i >= len(s.Rhs) || !isBlank(s.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if name, ok := discardsGuardedError(pass, call, 0); ok {
			pass.Reportf(s.Pos(), "error from %s discarded with _; handle or propagate it", name)
		}
	}
}

// checkBare flags a guarded call used as a bare statement while it
// returns an error.
func checkBare(pass *analysis.Pass, s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if name, ok := discardsGuardedError(pass, call, -1); ok {
		pass.Reportf(call.Pos(), "error from %s discarded by bare call; handle or propagate it", name)
	}
}

// discardsGuardedError reports whether call targets a guarded package
// and returns an error at result index idx (-1: any result). The
// returned name is package.Function for diagnostics.
func discardsGuardedError(pass *analysis.Pass, call *ast.CallExpr, idx int) (string, bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !guardedPkgs[fn.Pkg().Path()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	match := false
	for i := 0; i < res.Len(); i++ {
		if idx >= 0 && i != idx {
			continue
		}
		if isErrorType(res.At(i).Type()) {
			match = true
		}
	}
	if !match {
		return "", false
	}
	name := fn.Pkg().Name() + "." + fn.Name()
	if recv := sig.Recv(); recv != nil {
		if _, tn := analysis.NamedTypePath(recv.Type()); tn != "" {
			name = fn.Pkg().Name() + "." + tn + "." + fn.Name()
		}
	}
	return name, true
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
