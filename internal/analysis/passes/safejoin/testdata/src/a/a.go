// Package a exercises the safejoin analyzer.
package a

import (
	"archive/tar"
	"os"
	"path/filepath"

	"comtainer/internal/fsim"
)

func hostJoin(hdr *tar.Header, root string) error {
	p := filepath.Join(root, hdr.Name) // want `tar entry name reaches filepath.Join`
	return os.WriteFile(p, nil, 0o644)
}

func hostWrite(hdr *tar.Header, data []byte) error {
	return os.WriteFile(hdr.Name, data, 0o644) // want `tar entry name reaches os.WriteFile`
}

func trimmedStaysTainted(hdr *tar.Header, root string) string {
	name := filepath.Clean(hdr.Name)
	return filepath.Join(root, name) // want `tar entry name reaches filepath.Join`
}

func simEntry(hdr *tar.Header, out *fsim.FS) {
	out.WriteFile(fsim.Clean(hdr.Name), nil, 0o644) // want `tar entry name reaches fsim.Clean`
}

func exportPath(f *fsim.File, dir string) error {
	return os.WriteFile(filepath.Join(dir, f.Path), f.Data, 0o644) // want `fsim path reaches filepath.Join`
}

func exportPaths(fs *fsim.FS, dir string) {
	for _, p := range fs.Paths() {
		os.Remove(filepath.Join(dir, p)) // want `fsim path reaches filepath.Join`
	}
}

func sanitized(hdr *tar.Header, root string) error {
	p, err := fsim.SafeJoin(root, hdr.Name)
	if err != nil {
		return err
	}
	return os.WriteFile(p, nil, 0o644)
}

func suppressed(hdr *tar.Header, root string) string {
	//comtainer:allow safejoin -- exercising the suppression syntax
	return filepath.Join(root, hdr.Name)
}
