package safejoin_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/safejoin"
)

func TestSafejoin(t *testing.T) {
	analysistest.Run(t, safejoin.Analyzer, "testdata/src/a")
}
