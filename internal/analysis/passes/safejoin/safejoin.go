// Package safejoin is the Zip-Slip guard: names read out of tar
// archives (archive/tar Header.Name / Header.Linkname) and simulated
// file-system paths (fsim.File.Path, fsim.FS.Paths) are untrusted and
// must pass through a sanitizing join — a helper whose name contains
// "safe" or "sanitize", such as fsim.SafeJoin or tarfs's entry-name
// sanitizer — before they reach a path constructor or the host file
// system. A crafted layer with "../../etc/cron.d/x" or an absolute
// entry name must be rejected, not silently re-rooted.
package safejoin

import (
	"go/ast"
	"go/types"
	"strings"

	"comtainer/internal/analysis"
)

const fsimPkg = "comtainer/internal/fsim"

// Analyzer flags unsanitized tar entry names and fsim paths flowing
// into path joins or host file-system calls.
var Analyzer = &analysis.Analyzer{
	Name: "safejoin",
	Doc: "tar entry names and fsim paths must pass a sanitizing join " +
		"(fsim.SafeJoin or a safe*/sanitize* helper) before filepath.Join or any host fs call",
	Run: run,
}

// osPathFuncs maps os functions to the index of their (first)
// path-like argument.
var osPathFuncs = map[string]int{
	"WriteFile": 0, "Create": 0, "OpenFile": 0, "Open": 0,
	"Mkdir": 0, "MkdirAll": 0, "Remove": 0, "RemoveAll": 0,
	"Rename": 0, "Symlink": 1, "Chtimes": 0, "ReadFile": 0,
}

// fsimPathMethods maps fsim.FS mutator methods to the index of their
// path argument — the sinks a raw tar name must not reach.
var fsimPathMethods = map[string]int{
	"WriteFile": 0, "MkdirAll": 0, "Symlink": 1, "Remove": 0, "Exists": 0, "Stat": 0,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			if decl != nil && sanitizerName(decl.Name.Name) {
				return // the sanitizer itself joins raw names by design
			}
			checkBody(pass, body)
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	propagate := func(c *ast.CallExpr) bool {
		return analysis.IsPkgFunc(pass.TypesInfo, c, "strings",
			"TrimPrefix", "TrimSuffix", "TrimLeft", "TrimRight", "Trim", "ToLower", "ReplaceAll") ||
			analysis.IsPkgFunc(pass.TypesInfo, c, "path", "Clean") ||
			analysis.IsPkgFunc(pass.TypesInfo, c, "path/filepath", "Clean", "FromSlash", "ToSlash") ||
			analysis.IsPkgFunc(pass.TypesInfo, c, "fmt", "Sprintf", "Sprint")
	}
	sanitize := func(c *ast.CallExpr) bool {
		fn := analysis.Callee(pass.TypesInfo, c)
		return fn != nil && sanitizerName(fn.Name())
	}

	tarTaint := (&analysis.Taint{
		Info:      pass.TypesInfo,
		Source:    func(e ast.Expr) bool { return isTarName(pass, e) },
		Propagate: propagate,
		Sanitize:  sanitize,
	}).Run(body)
	fsTaint := (&analysis.Taint{
		Info:      pass.TypesInfo,
		Source:    func(e ast.Expr) bool { return isFsimPath(pass, e) },
		Propagate: propagate,
		Sanitize:  sanitize,
	}).Run(body)

	analysis.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkSink(pass, call, tarTaint, fsTaint)
		return true
	})
}

// checkSink reports tainted arguments reaching a path sink. Tar names
// are rejected at every path constructor (they may not even enter the
// simulated tree unsanitized); fsim paths only at the host boundary
// (filepath.Join and os calls) — inside the simulator they are clean
// by construction.
func checkSink(pass *analysis.Pass, call *ast.CallExpr, tarTaint, fsTaint func(ast.Expr) bool) {
	info := pass.TypesInfo
	report := func(arg ast.Expr, what, sink string) {
		pass.Reportf(arg.Pos(),
			"%s reaches %s without sanitization; use a safe join (e.g. fsim.SafeJoin) "+
				"that rejects absolute and dot-dot names", what, sink)
	}
	// Host-boundary sinks: both taints.
	if analysis.IsPkgFunc(info, call, "path/filepath", "Join") {
		for _, a := range call.Args {
			if tarTaint(a) {
				report(a, "tar entry name", "filepath.Join")
				return
			}
			if fsTaint(a) {
				report(a, "fsim path", "filepath.Join")
				return
			}
		}
	}
	if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		if idx, ok := osPathFuncs[fn.Name()]; ok && idx < len(call.Args) {
			a := call.Args[idx]
			if tarTaint(a) {
				report(a, "tar entry name", "os."+fn.Name())
				return
			}
			if fsTaint(a) {
				report(a, "fsim path", "os."+fn.Name())
				return
			}
		}
	}
	// Simulator-entry sinks: tar taint only.
	if analysis.IsPkgFunc(info, call, "path", "Join") {
		for _, a := range call.Args {
			if tarTaint(a) {
				report(a, "tar entry name", "path.Join")
				return
			}
		}
	}
	if analysis.IsPkgFunc(info, call, fsimPkg, "Clean") && len(call.Args) == 1 && tarTaint(call.Args[0]) {
		report(call.Args[0], "tar entry name", "fsim.Clean")
		return
	}
	if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == fsimPkg {
		if recv := recvTypeName(fn); recv == "FS" {
			if idx, ok := fsimPathMethods[fn.Name()]; ok && idx < len(call.Args) && tarTaint(call.Args[idx]) {
				report(call.Args[idx], "tar entry name", "fsim.FS."+fn.Name())
			}
		}
	}
}

// recvTypeName returns the receiver type name of a method, or "".
func recvTypeName(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	_, name := analysis.NamedTypePath(recv.Type())
	return name
}

// sanitizerName reports whether a function name marks a sanitizer.
func sanitizerName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "safe") || strings.Contains(l, "sanitiz")
}

// isTarName reports whether e reads Header.Name or Header.Linkname of
// an archive/tar.Header.
func isTarName(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Name" && sel.Sel.Name != "Linkname") {
		return false
	}
	p, name := analysis.NamedTypePath(pass.TypesInfo.TypeOf(sel.X))
	return p == "archive/tar" && name == "Header"
}

// isFsimPath reports whether e reads fsim.File.Path or calls
// fsim.FS.Paths (whose elements are simulated absolute paths).
func isFsimPath(pass *analysis.Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v.Sel.Name != "Path" {
			return false
		}
		p, name := analysis.NamedTypePath(pass.TypesInfo.TypeOf(v.X))
		return p == fsimPkg && name == "File"
	case *ast.CallExpr:
		fn := analysis.Callee(pass.TypesInfo, v)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != fsimPkg {
			return false
		}
		return fn.Name() == "Paths"
	}
	return false
}
