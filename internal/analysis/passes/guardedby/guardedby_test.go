package guardedby_test

import (
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/guardedby"
	"comtainer/internal/analysis/passes/lockorder"
)

// TestGuardedBy runs lockorder and guardedby together — the real suite
// ordering — so guardedby's lockset dataflow sees lockorder's
// lock()-helper summaries, and checks both in-package and
// cross-package (field guarded in a, raced in b) findings.
func TestGuardedBy(t *testing.T) {
	analysistest.RunSuite(t, analysis.Suite{lockorder.Analyzer, guardedby.Analyzer},
		"testdata/src/guardedby", "./a", "./b")
}
