// Package guardedby infers, for every struct field declared in this
// module, which lock protects it — by majority vote over all of the
// field's accesses — and reports the accesses where the inferred guard
// is provably not held, the RacerD-style static data-race check.
//
// Per package, every function scope is lowered to its CFG and run
// through the must-hold lockset dataflow (cfg.ComputeLockSets): sync
// (R)Lock/(R)Unlock calls acquire and release lock classes
// (analysis.LockClass identities), `defer mu.Unlock()` keeps the class
// held to the synthetic exit, and calls into in-module functions apply
// the acquire/release summaries lockorder exported as facts (a
// `lock()` helper leaves its class held; an `unlock()` helper removes
// it). Each field access is recorded with the classes definitely held
// at its CFG node, whether it is a read or a write, and whether it
// runs on a spawned goroutine. The whole-program Finish step merges
// the access records of every package, computes the set of functions
// reachable from a goroutine spawn site through the CHA call graph
// (interface calls fanned out via lockorder's Impls facts), and for
// each field with at least one concurrent access takes the vote: if
// one lock class is held at a strict majority of at least two
// accesses, every access without it is reported — "field Proxy.table
// is guarded by Proxy.mu on 9/11 accesses; unguarded write".
//
// Accepted unsoundness, documented for a linter backed by audited
// //comtainer:allow comments: lock classes collapse all instances of a
// type, aliasing through pointers copied into other structures is
// invisible, reflection and unsafe bypass the AST entirely, and
// RLock counts as holding the class (a write under RLock still
// satisfies the vote). Accesses through locals the function itself
// allocated (`p := &Proxy{...}; p.table = ...`) are skipped as owned —
// unpublished values cannot race.
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/cfg"
	"comtainer/internal/analysis/passes/lockorder"
)

// Analyzer reports field accesses that do not hold the field's
// inferred guard lock.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "a struct field protected by a lock on most accesses must hold that lock on " +
		"every access reachable from a goroutine; an unguarded access is a data race",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
	Finish:   finish,
}

// Fact is the per-package summary guardedby exports: every field
// access with its held lockset, plus the call and spawn edges the
// Finish step needs for goroutine reachability.
type Fact struct {
	// Fields maps field class ("pkg.Type.Field") → accesses observed
	// in this package.
	Fields map[string][]Access `json:"fields,omitempty"`
	// Funcs maps analysis.FuncID → the function's outgoing edges.
	Funcs map[string]*FuncConc `json:"funcs,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

// Access is one read or write of a shared struct field.
type Access struct {
	// Fn is the FuncID of the enclosing declared function ("" for
	// file-level initializers).
	Fn string `json:"fn,omitempty"`
	// Write marks assignments, ++/--, and address-taken uses.
	Write bool `json:"write,omitempty"`
	// Go marks accesses lexically inside a go-statement's function
	// literal: directly concurrent regardless of reachability.
	Go bool `json:"go,omitempty"`
	// Held are the lock classes definitely held at the access.
	Held []string `json:"held,omitempty"`
	// Pos locates the access for reporting.
	Pos token.Position `json:"pos"`
}

// FuncConc is one function's outgoing edges for the reachability walk.
type FuncConc struct {
	// Calls are in-module callees invoked synchronously (static
	// FuncIDs and interface-method IDs, resolved via Impls at Finish).
	Calls []string `json:"calls,omitempty"`
	// Spawns are callees invoked on a new goroutine: `go f()` targets
	// and every call made inside a go-statement's literal body.
	Spawns []string `json:"spawns,omitempty"`
}

func run(pass *analysis.Pass) error {
	w := &walker{
		pass:  pass,
		seg:   firstSegment(pass.Pkg.Path()),
		fact:  &Fact{Fields: make(map[string][]Access), Funcs: make(map[string]*FuncConc)},
		cache: make(map[string]*lockorder.Fact),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			w.scope(fd.Name.Name, analysis.FuncID(fn), fd.Body, false)
		}
	}
	if len(w.fact.Fields) > 0 || len(w.fact.Funcs) > 0 {
		for class := range w.fact.Fields {
			sortAccesses(w.fact.Fields[class])
		}
		pass.ExportPackageFact(w.fact)
	}
	return nil
}

// walker accumulates one package's fact while descending through
// function scopes.
type walker struct {
	pass  *analysis.Pass
	seg   string
	fact  *Fact
	cache map[string]*lockorder.Fact
}

// scope analyzes one function body: lockset dataflow, field accesses,
// call/spawn edges, then recurses into nested literals. fnID
// attributes everything to the enclosing declared function; inGo marks
// bodies that execute on a spawned goroutine.
func (w *walker) scope(name, fnID string, body *ast.BlockStmt, inGo bool) {
	g := cfg.New(name, body)
	ls := cfg.ComputeLockSets(g, w.lockOps)
	owned := ownedLocals(w.pass.TypesInfo, body)
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer && blk != g.Exit {
				continue // its call is interpreted in the exit block
			}
			held := ls.Held(blk, i)
			w.accesses(n, fnID, inGo, held, owned)
			w.edges(n, fnID, inGo)
		}
	}
	// Nested literals are their own scopes with empty entry locksets —
	// a callback or goroutine body does not inherit the spawner's
	// locks. A literal that is the operand of `go lit()` is concurrent;
	// the GoStmt is visited before its literal, so the mark is in place
	// when the literal's scope is built.
	spawned := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		case *ast.FuncLit:
			w.scope(name+".func", fnID, v.Body, inGo || spawned[v])
			return false
		}
		return true
	})
}

// lockOps classifies one CFG node's lock-state effects: sync mutex
// calls directly, in-module calls through lockorder's Leaves/Releases
// summaries.
func (w *walker) lockOps(n ast.Node) []cfg.LockOp {
	info := w.pass.TypesInfo
	var ops []cfg.LockOp
	analysis.InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, acquire, ok := syncLockCall(info, call); ok {
			if class != "" {
				ops = append(ops, cfg.LockOp{Class: class, Acquire: acquire})
			}
			return true
		}
		fn := analysis.Callee(info, call)
		if fn == nil || fn.Pkg() == nil || firstSegment(fn.Pkg().Path()) != w.seg {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			return true // dynamic dispatch: no single summary applies
		}
		if fl := w.lockSummary(fn.Pkg().Path(), analysis.FuncID(fn)); fl != nil {
			for _, c := range fl.Releases {
				ops = append(ops, cfg.LockOp{Class: c})
			}
			for _, c := range fl.Leaves {
				ops = append(ops, cfg.LockOp{Class: c, Acquire: true})
			}
		}
		return true
	})
	return ops
}

// lockSummary fetches the lockorder summary of one in-module function
// (the current package's own facts included: lockorder runs earlier in
// the suite). Nil when lockorder was filtered out or the function has
// no summary — the dataflow then treats the call as lock-neutral.
func (w *walker) lockSummary(pkgPath, id string) *lockorder.FuncLocks {
	if id == "" {
		return nil
	}
	f, ok := w.cache[pkgPath]
	if !ok {
		f, _ = w.pass.AnalyzerFact(lockorder.Analyzer.Name, pkgPath).(*lockorder.Fact)
		w.cache[pkgPath] = f
	}
	if f == nil {
		return nil
	}
	return f.Funcs[id]
}

// accesses records every shared-field read and write inside one CFG
// node (not descending into literals, which are separate scopes).
func (w *walker) accesses(n ast.Node, fnID string, inGo bool, held []string, owned map[types.Object]bool) {
	info := w.pass.TypesInfo
	writes := writeTargets(n)
	var visit func(m ast.Node) bool
	visit = func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if analysis.IsPkgFunc(info, v, "sync/atomic") || isAtomicMethod(info, v) {
				return false // atomicmix's domain, not a plain access
			}
		case *ast.SelectorExpr:
			class, field := fieldClass(info, v)
			if class == "" || field.Pkg() == nil || firstSegment(field.Pkg().Path()) != w.seg ||
				excludedFieldType(field.Type()) {
				break
			}
			if obj := rootObj(info, v); obj != nil && owned[obj] {
				break
			}
			w.fact.Fields[class] = append(w.fact.Fields[class], Access{
				Fn:    fnID,
				Write: writes[v],
				Go:    inGo,
				Held:  held,
				Pos:   w.pass.Fset.Position(v.Sel.Pos()),
			})
		}
		return true
	}
	ast.Inspect(n, visit)
}

// edges records call and spawn edges out of one CFG node.
func (w *walker) edges(n ast.Node, fnID string, inGo bool) {
	if fnID == "" {
		return
	}
	info := w.pass.TypesInfo
	goCalls := make(map[*ast.CallExpr]bool)
	analysis.InspectShallow(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.GoStmt:
			goCalls[v.Call] = true // visited before its child call
		case *ast.CallExpr:
			fn := analysis.Callee(info, v)
			if fn == nil || fn.Pkg() == nil || firstSegment(fn.Pkg().Path()) != w.seg {
				return true
			}
			id, _, ok := analysis.CallTarget(info, v)
			if !ok {
				return true
			}
			c := w.conc(fnID)
			if inGo || goCalls[v] {
				c.Spawns = appendUnique(c.Spawns, id)
			} else {
				c.Calls = appendUnique(c.Calls, id)
			}
		}
		return true
	})
}

func (w *walker) conc(id string) *FuncConc {
	c := w.fact.Funcs[id]
	if c == nil {
		c = &FuncConc{}
		w.fact.Funcs[id] = c
	}
	return c
}

// --- whole-program step ---

func finish(fp *analysis.FinishPass) error {
	fields := make(map[string][]Access)
	funcs := make(map[string]*FuncConc)
	for _, f := range fp.Facts {
		fact, ok := f.(*Fact)
		if !ok {
			continue
		}
		for class, accs := range fact.Fields {
			fields[class] = append(fields[class], accs...)
		}
		for id, c := range fact.Funcs {
			funcs[id] = c
		}
	}

	// CHA bindings come from lockorder's facts: guardedby piggybacks
	// on the same interface→implementation view rather than exporting
	// a second copy.
	impls := make(map[string][]string)
	for _, f := range fp.AnalyzerFacts(lockorder.Analyzer.Name) {
		if lf, ok := f.(*lockorder.Fact); ok {
			analysis.MergeImplementations(impls, lf.Impls)
		}
	}

	reachable := goroutineReachable(funcs, impls)

	classes := make([]string, 0, len(fields))
	for class := range fields {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		accs := fields[class]
		sortAccesses(accs)
		voteAndReport(fp, class, accs, reachable)
	}
	return nil
}

// goroutineReachable computes the FuncIDs reachable from any spawn
// site: spawn targets seed the set, and both synchronous calls and
// further spawns propagate it. Interface-method IDs fan out to their
// known implementations.
func goroutineReachable(funcs map[string]*FuncConc, impls map[string][]string) map[string]bool {
	reachable := make(map[string]bool)
	var queue []string
	add := func(id string) {
		if !reachable[id] {
			reachable[id] = true
			queue = append(queue, id)
		}
		for _, impl := range impls[id] {
			if !reachable[impl] {
				reachable[impl] = true
				queue = append(queue, impl)
			}
		}
	}
	for _, c := range funcs {
		for _, id := range c.Spawns {
			add(id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		c := funcs[id]
		if c == nil {
			continue
		}
		for _, callee := range c.Calls {
			add(callee)
		}
		for _, callee := range c.Spawns {
			add(callee)
		}
	}
	return reachable
}

// voteAndReport takes the majority vote over one field's accesses and
// reports the accesses missing the winning guard. The field must have
// at least one concurrent access (inside a spawned literal, or in a
// function reachable from a spawn site); the winner must be held at a
// strict majority of at least two accesses.
func voteAndReport(fp *analysis.FinishPass, class string, accs []Access, reachable map[string]bool) {
	concurrent := false
	for _, a := range accs {
		if a.Go || reachable[a.Fn] {
			concurrent = true
			break
		}
	}
	if !concurrent {
		return
	}

	count := make(map[string]int)
	for _, a := range accs {
		for _, h := range a.Held {
			count[h]++
		}
	}
	guard, n := "", 0
	for _, h := range sortedKeys(count) {
		if count[h] > n {
			guard, n = h, count[h]
		}
	}
	if guard == "" || n < 2 || 2*n <= len(accs) {
		return // no inferable invariant, or too weak a majority
	}
	for _, a := range accs {
		if hasClass(a.Held, guard) {
			continue
		}
		kind := "read"
		if a.Write {
			kind = "write"
		}
		fp.Report(analysis.Diagnostic{
			Pos:      a.Pos,
			Analyzer: fp.Analyzer.Name,
			Message: fmt.Sprintf("field %s is guarded by %s on %d/%d accesses; unguarded %s",
				class, guard, n, len(accs), kind),
		})
	}
}

// --- helpers ---

// syncLockCall classifies sync.Mutex/RWMutex method calls: the
// resolved lock class ("" for local mutexes) and whether the call
// acquires. TryLock/TryRLock are ignored: their success is
// conditional, so they never add to the must-hold set.
func syncLockCall(info *types.Info, call *ast.CallExpr) (class string, acquire, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return analysis.LockClass(info, sel.X), true, true
	case "Unlock", "RUnlock":
		return analysis.LockClass(info, sel.X), false, true
	}
	return "", false, false
}

// fieldClass resolves a selector to its field-class identity
// ("pkgpath.Owner.field", mirroring analysis.LockClass) and the field
// object; "" when the selector is not a struct-field access on a
// named type.
func fieldClass(info *types.Info, sel *ast.SelectorExpr) (string, *types.Var) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return "", nil
	}
	rpath, rname := analysis.NamedTypePath(s.Recv())
	if rname == "" {
		return "", nil
	}
	if rpath == "" && field.Pkg() != nil {
		rpath = field.Pkg().Path()
	}
	return rpath + "." + rname + "." + field.Name(), field
}

// excludedFieldType reports fields that are synchronization primitives
// themselves (mutexes, wait groups, atomics — their access discipline
// is their own) or channels (synchronized by construction).
func excludedFieldType(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	path, _ := analysis.NamedTypePath(t)
	return path == "sync" || path == "sync/atomic"
}

// isAtomicMethod reports method calls on sync/atomic value types
// (atomic.Int64.Add and family).
func isAtomicMethod(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && fn.Pkg().Path() == "sync/atomic"
}

// writeTargets collects the selector expressions n writes through:
// assignment left-hand sides, ++/-- operands, and address-taken
// operands (a pointer to the field may be written by anyone).
func writeTargets(n ast.Node) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(v.X)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				mark(v.X)
			}
		}
		return true
	})
	return writes
}

// rootObj unwraps a selector/index chain to its base identifier's
// object (`p.cache.table` → p, `s.shards[i].n` → s); nil for chains
// rooted in calls or other expressions.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.Ident:
			return info.Uses[v]
		default:
			return nil
		}
	}
}

// ownedLocals collects variables the body itself allocates (`p :=
// &Proxy{...}`, `var p = new(Proxy)`, `q := Proxy{}`): accesses
// through them touch unpublished memory and carry no race risk until
// the value escapes — by which point other functions' accesses, not
// these, vote on the guard.
func ownedLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	analysis.InspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := info.Defs[id]; obj != nil && allocExpr(info, v.Rhs[i]) {
					owned[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) != len(v.Values) {
				return true
			}
			for i, id := range v.Names {
				if obj := info.Defs[id]; obj != nil && allocExpr(info, v.Values[i]) {
					owned[obj] = true
				}
			}
		}
		return true
	})
	return owned
}

// allocExpr reports expressions that denote fresh, unshared memory.
func allocExpr(info *types.Info, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return v.Op == token.AND && allocExpr(info, v.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func hasClass(held []string, class string) bool {
	for _, h := range held {
		if h == class {
			return true
		}
	}
	return false
}

func appendUnique(list []string, id string) []string {
	for _, have := range list {
		if have == id {
			return list
		}
	}
	return append(list, id)
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortAccesses(accs []Access) {
	sort.Slice(accs, func(i, j int) bool {
		a, b := accs[i].Pos, accs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
