// Package a exercises the guardedby analyzer: majority-vote guard
// inference, lock()-helper summaries from lockorder facts, deferred
// unlocks, owned-local suppression, and a goroutine-reachability
// negative.
package a

import "sync"

// Counter's n is guarded by mu on three of four accesses; the fourth
// is the race.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc is called from a goroutine (see Spin), which makes Counter.n a
// shared field and turns every access into a vote.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Dec holds the guard through a deferred unlock.
func (c *Counter) Dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

// Get reads under the guard.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Racy loses the vote: three guarded accesses against this one.
func (c *Counter) Racy() int {
	return c.n // want `field .*a\.Counter\.n is guarded by .*a\.Counter\.mu on 3/4 accesses; unguarded read`
}

// NewCounter writes through a fresh, unpublished value: owned, not a
// vote, and not a diagnostic.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 0
	return c
}

// Spin spawns the goroutine that makes Counter shared.
func Spin(c *Counter) {
	done := make(chan struct{})
	go func() {
		c.Inc()
		close(done)
	}()
	<-done
}

// Gate guards val behind lock/unlock helper methods: the lockset
// dataflow must apply lockorder's Leaves/Releases summaries to see
// Set and Bump as guarded.
type Gate struct {
	mu  sync.Mutex
	val int
}

func (g *Gate) lock()   { g.mu.Lock() }
func (g *Gate) unlock() { g.mu.Unlock() }

// Set holds the guard between the helper calls.
func (g *Gate) Set(v int) {
	g.lock()
	g.val = v
	g.unlock()
}

// Bump holds the guard through a deferred helper unlock.
func (g *Gate) Bump() {
	g.lock()
	defer g.unlock()
	g.val++
}

// Peek loses the vote two guarded accesses to one.
func (g *Gate) Peek() int {
	return g.val // want `field .*a\.Gate\.val is guarded by .*a\.Gate\.mu on 2/3 accesses; unguarded read`
}

// RunGate makes Gate goroutine-reachable through a joined spawn.
func RunGate(g *Gate) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Set(1)
	}()
	wg.Wait()
}

// Table's map M is written under Mu here and read bare in package b:
// the cross-package fact case.
type Table struct {
	Mu sync.Mutex
	M  map[string]int
}

// Put writes under the guard.
func (t *Table) Put(k string, v int) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	t.M[k] = v
}

// Del reads under the guard.
func (t *Table) Del(k string) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	delete(t.M, k)
}

// Unshared is never reachable from a goroutine: its unguarded access
// in B stays silent even though A locks.
type Unshared struct {
	mu sync.Mutex
	n  int
}

// A accesses under the lock often enough that the vote would succeed
// were the field ever shared.
func (u *Unshared) A() {
	u.mu.Lock()
	u.n++
	u.n = u.n * 2
	u.mu.Unlock()
}

// B accesses bare — but nothing concurrent ever touches Unshared.
func (u *Unshared) B() {
	u.n--
}
