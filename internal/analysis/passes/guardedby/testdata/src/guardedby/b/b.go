// Package b races against the guard invariant package a established:
// a.Table.M is written under a.Table.Mu over there, and read bare on a
// goroutine here — the cross-package fact case.
package b

import (
	"sync"

	"comtainer/internal/analysis/passes/guardedby/testdata/src/guardedby/a"
)

// Race reads a.Table.M from a spawned goroutine without its guard.
func Race(t *a.Table) int {
	var wg sync.WaitGroup
	wg.Add(1)
	n := 0
	go func() {
		defer wg.Done()
		n = len(t.M) // want `field .*a\.Table\.M is guarded by .*a\.Table\.Mu on 2/3 accesses; unguarded read`
	}()
	wg.Wait()
	return n
}
