// Package lifecycle is the shared engine behind the path-sensitive
// resource passes (bodyclose, closeleak, timerstop). Each pass
// supplies a Spec describing its resource family — what types are
// tracked, what call releases one, which callees take ownership — and
// lifecycle does the rest: it finds acquisition sites (call results
// bound to locals) in every function scope, builds the scope's CFG,
// and asks cfg.Tracked whether any path reaches the function exit with
// the resource neither released nor escaped.
//
// It also provides the interprocedural classifier: Closers computes,
// per declared function, the parameter indices of resource type that
// the function releases on every path (a local fixpoint over
// helper-calls-helper chains, seeded with dependency facts), so
// `statusError(resp)` — which drains and closes resp.Body — counts as
// a release at its call sites.
package lifecycle

import (
	"go/ast"
	"go/types"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/cfg"
)

// Spec configures one resource family.
type Spec struct {
	// IsResource reports whether a call result of type t is tracked.
	IsResource func(t types.Type) bool
	// IsRelease reports whether call releases the resource held in
	// obj directly (obj.Close(), obj.Body.Close(), obj.Stop()).
	IsRelease func(info *types.Info, call *ast.CallExpr, obj types.Object) bool
	// Aliases reports whether assigning a selector/index of the
	// resource to a variable aliases the closable part (resp.Body
	// does; resp.StatusCode does not). Nil means never.
	Aliases func(t types.Type) bool
	// ConsumesKnown reports extra ownership-transfer knowledge about
	// a resolved callee (http.Serve consumes its net.Listener).
	// Unknown and dynamic callees always consume. Nil means no known
	// callee consumes.
	ConsumesKnown func(fn *types.Func) bool
	// DepClosers returns the closer fact of a dependency package:
	// FuncID → flat parameter indices released on every path. Nil
	// means no interprocedural facts.
	DepClosers func(pkgPath string) map[string][]int
	// LeakMessage renders the diagnostic for obj leaking.
	LeakMessage func(obj types.Object) string
	// DiscardMessage, when non-nil, enables reporting resource
	// results that are discarded outright (blank identifier or bare
	// call statement); t is the discarded resource type.
	DiscardMessage func(t types.Type) string
}

// Check runs the leak analysis over every function scope of the
// package and reports findings through pass. closers is the local
// classification from Closers (may be nil).
func Check(pass *analysis.Pass, spec *Spec, closers map[string][]int) {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			name := "func literal"
			if decl != nil {
				name = decl.Name.Name
			}
			g := cfg.New(name, body)
			for _, blk := range g.Blocks {
				if blk == g.Exit {
					continue
				}
				for i, n := range blk.Nodes {
					checkNode(pass, spec, closers, g, blk, i, n)
				}
			}
		})
	}
}

// checkNode inspects one CFG node for acquisition sites.
func checkNode(pass *analysis.Pass, spec *Spec, closers map[string][]int, g *cfg.CFG, blk *cfg.Block, idx int, n ast.Node) {
	call, lhs := acquireParts(n)
	if call == nil {
		return
	}
	results := resultTypes(pass.TypesInfo, call)
	for k, rt := range results {
		if rt == nil || !spec.IsResource(rt) {
			continue
		}
		var id *ast.Ident
		if k < len(lhs) {
			if l, ok := ast.Unparen(lhs[k]).(*ast.Ident); ok {
				id = l
			} else {
				// Assigned straight into a field/index: stored, the
				// resource escaped at birth.
				continue
			}
		}
		if id == nil || id.Name == "_" {
			if spec.DiscardMessage != nil {
				pass.Reportf(call.Pos(), "%s", spec.DiscardMessage(rt))
			}
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		tracked := &cfg.Tracked{
			Info:      pass.TypesInfo,
			Obj:       obj,
			Err:       errSibling(pass.TypesInfo, lhs, results),
			ErrBlock:  blk,
			Releases:  releasePredicate(pass, spec, closers, obj),
			Consumes:  consumePredicate(pass, spec),
			AliasType: spec.Aliases,
		}
		if tracked.Leaks(g, blk, idx) {
			pass.Reportf(id.Pos(), "%s", spec.LeakMessage(obj))
		}
	}
}

// acquireParts decomposes a node into (call, destinations) when it
// binds call results: `x, err := f()`, `var x, err = f()`, or a bare
// call statement (nil destinations).
func acquireParts(n ast.Node) (*ast.CallExpr, []ast.Expr) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				return call, s.Lhs
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || len(gd.Specs) != 1 {
			return nil, nil
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok || len(vs.Values) != 1 {
			return nil, nil
		}
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			lhs := make([]ast.Expr, len(vs.Names))
			for i, nm := range vs.Names {
				lhs[i] = nm
			}
			return call, lhs
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			return call, nil
		}
	}
	return nil, nil
}

// resultTypes flattens the call's result tuple.
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tup.Len())
		for i := 0; i < tup.Len(); i++ {
			out[i] = tup.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}

// errSibling finds the error variable bound by the same acquire, for
// nil-branch pruning.
func errSibling(info *types.Info, lhs []ast.Expr, results []types.Type) types.Object {
	for j, rt := range results {
		if rt == nil || j >= len(lhs) {
			continue
		}
		if named, ok := rt.(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
			continue
		}
		if id, ok := ast.Unparen(lhs[j]).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				return obj
			}
			return info.Uses[id]
		}
	}
	return nil
}

// releasePredicate builds the Tracked.Releases hook: a direct release
// on obj, or obj forwarded as an argument to a callee classified as a
// closer for that position.
func releasePredicate(pass *analysis.Pass, spec *Spec, closers map[string][]int, obj types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		if spec.IsRelease(pass.TypesInfo, call, obj) {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return false
		}
		for i, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				if calleeReleasesArg(pass, spec, closers, fn, i) {
					return true
				}
			}
		}
		return false
	}
}

// calleeReleasesArg consults the local closer classification and
// dependency facts.
func calleeReleasesArg(pass *analysis.Pass, spec *Spec, closers map[string][]int, fn *types.Func, i int) bool {
	id := analysis.FuncID(fn)
	if id == "" {
		return false
	}
	var idxs []int
	if fn.Pkg() == pass.Pkg {
		idxs = closers[id]
	} else if spec.DepClosers != nil && fn.Pkg() != nil {
		idxs = spec.DepClosers(fn.Pkg().Path())[id]
	}
	for _, j := range idxs {
		if j == i {
			return true
		}
	}
	return false
}

// consumePredicate builds the Tracked.Consumes hook.
func consumePredicate(pass *analysis.Pass, spec *Spec) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true // dynamic call: assume ownership transfers
		}
		return spec.ConsumesKnown != nil && spec.ConsumesKnown(fn)
	}
}

// Closers classifies every function declared in the package: for each
// resource-typed parameter, does every path to the function exit
// release it? Escapes do not count — a helper that stores or returns
// the resource leaves closing to someone else. Helper-calls-helper
// chains converge by fixpoint; dependency facts are final.
func Closers(pass *analysis.Pass, spec *Spec) map[string][]int {
	type candidate struct {
		id     string
		g      *cfg.CFG
		params []paramSite
	}
	var cands []candidate
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			id := analysis.FuncID(fn)
			if id == "" {
				continue
			}
			params := resourceParams(pass, spec, fd)
			if len(params) == 0 {
				continue
			}
			cands = append(cands, candidate{id: id, g: cfg.New(fd.Name.Name, fd.Body), params: params})
		}
	}
	closers := make(map[string][]int)
	for changed := true; changed; {
		changed = false
		for _, c := range cands {
			for _, p := range c.params {
				if hasIndex(closers[c.id], p.index) {
					continue
				}
				tracked := &cfg.Tracked{
					Info:     pass.TypesInfo,
					Obj:      p.obj,
					Releases: releasePredicate(pass, spec, closers, p.obj),
				}
				if tracked.ReleasedOnEveryPath(c.g) {
					closers[c.id] = append(closers[c.id], p.index)
					changed = true
				}
			}
		}
	}
	return closers
}

// paramSite is one resource-typed parameter of a declared function.
type paramSite struct {
	index int
	obj   types.Object
}

// resourceParams returns the flat indices (receiver excluded) of
// resource-typed, named parameters.
func resourceParams(pass *analysis.Pass, spec *Spec, fd *ast.FuncDecl) []paramSite {
	var out []paramSite
	idx := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++ // unnamed parameter still occupies an index
			continue
		}
		for _, nm := range names {
			obj := pass.TypesInfo.Defs[nm]
			if obj != nil && nm.Name != "_" && spec.IsResource(obj.Type()) {
				out = append(out, paramSite{index: idx, obj: obj})
			}
			idx++
		}
	}
	return out
}

func hasIndex(idxs []int, i int) bool {
	for _, j := range idxs {
		if j == i {
			return true
		}
	}
	return false
}

// MethodOn reports whether call is a niladic-or-any method named
// method invoked directly on obj (`obj.Close()`, `obj.Stop()`).
func MethodOn(info *types.Info, call *ast.CallExpr, obj types.Object, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}
