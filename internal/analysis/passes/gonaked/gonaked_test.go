package gonaked_test

import (
	"testing"

	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/gonaked"
)

func TestGonaked(t *testing.T) {
	analysistest.Run(t, gonaked.Analyzer, "testdata/src/a")
}
