// Package gonaked forbids fire-and-forget goroutines in library code:
// every `go func() {...}()` must be observably waited on by its
// enclosing function — a sync.WaitGroup it calls Done/Add on that the
// enclosing function Waits on, or a channel it sends on (or closes)
// that the enclosing function receives from. An unwaited goroutine
// outlives the call that spawned it, races the caller's cleanup, and
// is invisible to the counter-based scheduler's accounting — the
// concurrency bugs the -race gate exists to catch.
package gonaked

import (
	"go/ast"
	"go/token"
	"go/types"

	"comtainer/internal/analysis"
)

// Analyzer flags goroutine launches with no visible join.
var Analyzer = &analysis.Analyzer{
	Name: "gonaked",
	Doc: "go func literals must be joined by the enclosing function via a " +
		"sync.WaitGroup it Waits on or a channel it receives from; no fire-and-forget goroutines",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.FuncScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			checkBody(pass, body)
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Evidence available anywhere in the enclosing function.
	enclosingWaits := false    // wg.Wait() call
	enclosingReceives := false // <-ch, range over channel, or select receive
	analysis.InspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupCall(pass, v, "Wait") {
				enclosingWaits = true
			}
		case *ast.UnaryExpr:
			if isChanRecv(pass, v) {
				enclosingReceives = true
			}
		case *ast.RangeStmt:
			if isChanType(pass, v.X) {
				enclosingReceives = true
			}
		case *ast.SelectStmt:
			enclosingReceives = true
		}
		return true
	})

	analysis.InspectShallow(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			// `go method()` — require the same enclosing evidence.
			if !enclosingWaits && !enclosingReceives {
				pass.Reportf(g.Pos(), "fire-and-forget goroutine: no WaitGroup.Wait or channel receive joins it in the enclosing function")
			}
			return true
		}
		signals := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.CallExpr:
				if isWaitGroupCall(pass, v, "Done") && enclosingWaits {
					signals = true
				}
				if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" && enclosingReceives {
					signals = true
				}
			case *ast.SendStmt:
				if enclosingReceives {
					signals = true
				}
			}
			return true
		})
		if !signals {
			pass.Reportf(g.Pos(), "fire-and-forget goroutine: body neither signals a WaitGroup the enclosing function Waits on nor sends on a channel it receives from")
		}
		return true
	})
}

// isWaitGroupCall reports whether call is (*sync.WaitGroup).<name>.
func isWaitGroupCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != name {
		return false
	}
	return true
}

// isChanRecv reports whether u is a channel receive expression.
func isChanRecv(pass *analysis.Pass, u *ast.UnaryExpr) bool {
	return u.Op == token.ARROW
}

// isChanType reports whether e has channel type.
func isChanType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
