// Package a exercises the gonaked analyzer.
package a

import "sync"

func fire() {
	go func() {}() // want `fire-and-forget goroutine`
}

func fireMethod() {
	go helper() // want `fire-and-forget goroutine`
}

func helper() {}

func waited(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func channeled() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

func closed() []int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		ch <- 1
	}()
	var out []int
	for v := range ch {
		out = append(out, v)
	}
	return out
}

func suppressed() {
	//comtainer:allow gonaked -- exercising the suppression syntax
	go func() {}()
}
