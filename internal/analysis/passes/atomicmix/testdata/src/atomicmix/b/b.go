// Package b breaks the atomic discipline package a established:
// a.Shared.N is updated through atomic.AddInt64 over there and read
// bare here — the cross-package fact case.
package b

import "comtainer/internal/analysis/passes/atomicmix/testdata/src/atomicmix/a"

// Read loads a.Shared.N without sync/atomic.
func Read(s *a.Shared) int64 {
	return s.N // want `field .*a\.Shared\.N mixes sync/atomic access \(1 sites\) with a plain read; atomic and non-atomic access to the same word is a data race`
}
