// Package a exercises the atomicmix analyzer: an integer field mixing
// atomic.AddInt64 with a plain read, an atomic.Int64 value field
// leaked by copy, and clean positives of both disciplines.
package a

import "sync/atomic"

// Hits mixes sync/atomic functions with a plain read.
type Hits struct {
	n int64
}

// Inc updates atomically.
func (h *Hits) Inc() {
	atomic.AddInt64(&h.n, 1)
}

// Load reads atomically.
func (h *Hits) Load() int64 {
	return atomic.LoadInt64(&h.n)
}

// Racy reads the same word bare.
func (h *Hits) Racy() int64 {
	return h.n // want `field .*a\.Hits\.n mixes sync/atomic access \(2 sites\) with a plain read; atomic and non-atomic access to the same word is a data race`
}

// Gauge uses the atomic.Int64 value type; method calls are atomic,
// copying the value out is not.
type Gauge struct {
	v atomic.Int64
}

// Add updates through the atomic method.
func (g *Gauge) Add() {
	g.v.Add(1)
}

// Level reads through the atomic method.
func (g *Gauge) Level() int64 {
	return g.v.Load()
}

// Escape hands the field to a helper by pointer: accepted silently,
// operating on *atomic.Int64 is the idiomatic composition.
func Escape(g *Gauge, f func(*atomic.Int64)) {
	f(&g.v)
}

// Snapshot copies the atomic value — a torn, unsynchronized read.
func (g *Gauge) Snapshot() int64 {
	copied := g.v // want `field .*a\.Gauge\.v mixes sync/atomic access \(2 sites\) with a plain read; atomic and non-atomic access to the same word is a data race`
	return copied.Load()
}

// Shared.N is updated atomically here and read bare in package b: the
// cross-package fact case.
type Shared struct {
	N int64
}

// Bump updates atomically.
func Bump(s *Shared) {
	atomic.AddInt64(&s.N, 1)
}

// Clean is atomic on every access: no diagnostic.
type Clean struct {
	n int64
}

// Inc updates atomically.
func (c *Clean) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Get reads atomically.
func (c *Clean) Get() int64 {
	return atomic.LoadInt64(&c.n)
}

// PlainOnly never goes near sync/atomic: no diagnostic.
type PlainOnly struct {
	n int64
}

// Inc updates bare, everywhere, consistently.
func (p *PlainOnly) Inc() {
	p.n++
}
