// Package atomicmix flags struct fields that are accessed through
// sync/atomic in one place and by plain loads or stores in another.
// Atomic operations only synchronize with other atomic operations on
// the same word: `atomic.AddInt64(&s.hits, 1)` in one goroutine and
// `s.hits++` (or even a bare read of s.hits) in another is a data
// race, and one that is easy to introduce when a counter gains a fast
// path years after it was made atomic.
//
// Per package the pass records, for every module-declared field of an
// atomically-eligible type (the fixed-size integers sync/atomic
// operates on, plus the atomic.Int64 family of value types), each
// access site classified as atomic — an `&s.f` argument to a
// sync/atomic function, or a method call on an atomic.* typed field —
// or plain. The whole-program Finish step merges the sites of all
// packages and, for each field with both kinds, reports every plain
// site, so the atomic discipline is enforced even when the atomic
// update and the plain read live in different packages.
//
// Taking a field's address outside a sync/atomic call counts as a
// plain (write) access for integer fields — the pointer may be
// written through by anyone — but is accepted silently for atomic.*
// value types, where passing &s.ctr to a helper operating on
// *atomic.Int64 is the idiomatic composition.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"comtainer/internal/analysis"
)

// Analyzer reports fields mixing sync/atomic with plain access.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a field updated through sync/atomic must be accessed atomically everywhere; " +
		"mixing atomic and plain access to the same word is a data race",
	Version:  1,
	FactType: (*Fact)(nil),
	Run:      run,
	Finish:   finish,
}

// Fact is the per-package access record atomicmix exports.
type Fact struct {
	// Fields maps field class ("pkg.Type.Field") → its access sites in
	// this package.
	Fields map[string]*Mix `json:"fields,omitempty"`
}

// AFact marks Fact as a serializable analysis fact.
func (*Fact) AFact() {}

// Mix separates one field's atomic and plain access sites.
type Mix struct {
	Atomic []Site `json:"atomic,omitempty"`
	Plain  []Site `json:"plain,omitempty"`
}

// Site is one access.
type Site struct {
	Write bool           `json:"write,omitempty"`
	Pos   token.Position `json:"pos"`
}

func run(pass *analysis.Pass) error {
	c := &collector{
		pass: pass,
		seg:  firstSegment(pass.Pkg.Path()),
		fact: &Fact{Fields: make(map[string]*Mix)},
	}
	for _, file := range pass.Files {
		c.file(file)
	}
	if len(c.fact.Fields) > 0 {
		for _, mix := range c.fact.Fields {
			sortSites(mix.Atomic)
			sortSites(mix.Plain)
		}
		pass.ExportPackageFact(c.fact)
	}
	return nil
}

type collector struct {
	pass *analysis.Pass
	seg  string
	fact *Fact
}

func (c *collector) file(file *ast.File) {
	writes := writeTargets(file)
	// consumed marks selectors already accounted for as atomic
	// operands (or silently accepted &atomicField uses); pre-order
	// traversal guarantees the consuming parent is visited first.
	consumed := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			c.call(v, consumed)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok {
					if class, field := c.fieldClass(sel); class != "" && isAtomicType(field.Type()) {
						consumed[sel] = true // &s.ctr handed to a helper: idiomatic
					}
				}
			}
		case *ast.SelectorExpr:
			if consumed[v] {
				return true // descend: the chain below may hold more fields
			}
			class, field := c.fieldClass(v)
			if class == "" || !eligible(field.Type()) {
				return true
			}
			c.record(class, false, Site{Write: writes[v], Pos: c.pass.Fset.Position(v.Sel.Pos())})
		}
		return true
	})
}

// call records atomic access sites made by one call expression:
// sync/atomic package functions taking &s.f, and method calls on
// atomic.* typed fields.
func (c *collector) call(call *ast.CallExpr, consumed map[*ast.SelectorExpr]bool) {
	info := c.pass.TypesInfo
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// atomic.Int64-family method: the receiver chain names the field.
		funSel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		recv, ok := ast.Unparen(funSel.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if class, _ := c.fieldClass(recv); class != "" {
			consumed[recv] = true
			c.record(class, true, Site{Write: atomicWrites(fn.Name()), Pos: c.pass.Fset.Position(recv.Sel.Pos())})
		}
		return
	}
	// Package function: atomic.AddInt64(&s.f, 1) and friends.
	for _, arg := range call.Args {
		and, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || and.Op != token.AND {
			continue
		}
		sel, ok := ast.Unparen(and.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if class, _ := c.fieldClass(sel); class != "" {
			consumed[sel] = true
			c.record(class, true, Site{Write: atomicWrites(fn.Name()), Pos: c.pass.Fset.Position(sel.Sel.Pos())})
		}
	}
}

// record appends one site to the field's entry.
func (c *collector) record(class string, atomic bool, site Site) {
	mix := c.fact.Fields[class]
	if mix == nil {
		mix = &Mix{}
		c.fact.Fields[class] = mix
	}
	if atomic {
		mix.Atomic = append(mix.Atomic, site)
	} else {
		mix.Plain = append(mix.Plain, site)
	}
}

// fieldClass resolves a selector to an in-module field's class
// identity, mirroring guardedby and analysis.LockClass.
func (c *collector) fieldClass(sel *ast.SelectorExpr) (string, *types.Var) {
	info := c.pass.TypesInfo
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil || firstSegment(field.Pkg().Path()) != c.seg {
		return "", nil
	}
	rpath, rname := analysis.NamedTypePath(s.Recv())
	if rname == "" {
		return "", nil
	}
	if rpath == "" {
		rpath = field.Pkg().Path()
	}
	return rpath + "." + rname + "." + field.Name(), field
}

// --- whole-program step ---

func finish(fp *analysis.FinishPass) error {
	merged := make(map[string]*Mix)
	for _, f := range fp.Facts {
		fact, ok := f.(*Fact)
		if !ok {
			continue
		}
		for class, mix := range fact.Fields {
			m := merged[class]
			if m == nil {
				m = &Mix{}
				merged[class] = m
			}
			m.Atomic = append(m.Atomic, mix.Atomic...)
			m.Plain = append(m.Plain, mix.Plain...)
		}
	}
	classes := make([]string, 0, len(merged))
	for class := range merged {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		mix := merged[class]
		if len(mix.Atomic) == 0 || len(mix.Plain) == 0 {
			continue
		}
		sortSites(mix.Plain)
		for _, site := range mix.Plain {
			kind := "read"
			if site.Write {
				kind = "write"
			}
			fp.Report(analysis.Diagnostic{
				Pos:      site.Pos,
				Analyzer: fp.Analyzer.Name,
				Message: fmt.Sprintf("field %s mixes sync/atomic access (%d sites) with a plain %s; "+
					"atomic and non-atomic access to the same word is a data race",
					class, len(mix.Atomic), kind),
			})
		}
	}
	return nil
}

// --- helpers ---

// eligible reports field types sync/atomic can operate on: the
// fixed-size integers and the atomic.* value types.
func eligible(t types.Type) bool {
	if isAtomicType(t) {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// isAtomicType reports named types declared in sync/atomic
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	path, _ := analysis.NamedTypePath(t)
	return path == "sync/atomic"
}

// atomicWrites classifies sync/atomic operation names: everything but
// the pure loads mutates.
func atomicWrites(name string) bool {
	return !strings.HasPrefix(name, "Load")
}

// writeTargets collects the selectors the file writes through:
// assignment left-hand sides, ++/--, and address-taken operands
// (integer fields only reach here; &atomicField is consumed earlier).
func writeTargets(file *ast.File) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(v.X)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				mark(v.X)
			}
		}
		return true
	})
	return writes
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func sortSites(sites []Site) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i].Pos, sites[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
