package atomicmix_test

import (
	"testing"

	"comtainer/internal/analysis"
	"comtainer/internal/analysis/analysistest"
	"comtainer/internal/analysis/passes/atomicmix"
)

// TestAtomicMix checks in-package mixing (plain read of an atomically
// updated counter, copy of an atomic.Int64 field) and the
// cross-package case (field updated atomically in a, read bare in b).
func TestAtomicMix(t *testing.T) {
	analysistest.RunSuite(t, analysis.Suite{atomicmix.Analyzer},
		"testdata/src/atomicmix", "./a", "./b")
}
