package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the call-graph substrate the interprocedural passes
// share. There is deliberately no materialized whole-program graph
// object: with the incremental cache, most packages are replayed from
// serialized facts and have no AST or type information in memory. Each
// pass therefore records, per function, its outgoing call edges as
// stable string identifiers (FuncID) while the package is live, and
// the whole-program step links them — class-hierarchy analysis (CHA):
// static calls resolve to their one callee, interface-method calls
// resolve to every visible implementation (Implementations).

// FuncID returns the stable package-qualified identifier of fn:
// "path.Name" for a package function, "path.(Type).Name" for a method
// (pointer receivers collapse onto the named type, so (*T).M and
// (T).M share an identity). The empty string identifies nothing.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	rpath, rname := NamedTypePath(sig.Recv().Type())
	if rname == "" {
		return pkg + "." + fn.Name()
	}
	if rpath == "" {
		rpath = pkg
	}
	return rpath + ".(" + rname + ")." + fn.Name()
}

// CallTarget classifies one call site: the callee's FuncID and whether
// dispatch goes through an interface method (to be fanned out to
// implementations by the whole-program link step). Calls through plain
// function values return ok=false — a soundness gap the passes accept
// and document.
func CallTarget(info *types.Info, call *ast.CallExpr) (id string, iface bool, ok bool) {
	fn := Callee(info, call)
	if fn == nil {
		return "", false, false
	}
	if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return FuncID(fn), true, true
		}
	}
	return FuncID(fn), false, true
}

// Implementations enumerates the CHA bindings visible to pkg: for
// every named interface I and every named non-interface type T
// declared in pkg or one of its direct imports, if *T satisfies I,
// each interface method id maps to the implementing method id. The
// whole-program step unions the maps of every package, so a binding
// is found as long as one analyzed package sees both types.
func Implementations(pkg *types.Package) map[string][]string {
	scopes := []*types.Package{pkg}
	scopes = append(scopes, pkg.Imports()...)

	var ifaces []*types.Named
	var concretes []*types.Named
	for _, p := range scopes {
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				if named.Underlying().(*types.Interface).NumMethods() > 0 {
					ifaces = append(ifaces, named)
				}
			} else {
				concretes = append(concretes, named)
			}
		}
	}

	out := make(map[string][]string)
	seen := make(map[string]map[string]bool)
	for _, iface := range ifaces {
		it := iface.Underlying().(*types.Interface)
		for _, c := range concretes {
			ptr := types.NewPointer(c)
			if !types.Implements(ptr, it) && !types.Implements(c, it) {
				continue
			}
			mset := types.NewMethodSet(ptr)
			for i := 0; i < it.NumMethods(); i++ {
				im := it.Method(i)
				sel := mset.Lookup(im.Pkg(), im.Name())
				if sel == nil {
					continue
				}
				impl, ok := sel.Obj().(*types.Func)
				if !ok {
					continue
				}
				iid, cid := FuncID(im), FuncID(impl)
				if iid == "" || cid == "" {
					continue
				}
				if seen[iid] == nil {
					seen[iid] = make(map[string]bool)
				}
				if !seen[iid][cid] {
					seen[iid][cid] = true
					out[iid] = append(out[iid], cid)
				}
			}
		}
	}
	for _, impls := range out {
		sort.Strings(impls)
	}
	return out
}

// MergeImplementations unions CHA binding maps from many packages into
// dst, deduplicating implementation lists.
func MergeImplementations(dst map[string][]string, src map[string][]string) {
	for iface, impls := range src {
		have := make(map[string]bool, len(dst[iface]))
		for _, id := range dst[iface] {
			have[id] = true
		}
		for _, id := range impls {
			if !have[id] {
				have[id] = true
				dst[iface] = append(dst[iface], id)
			}
		}
		sort.Strings(dst[iface])
	}
}

// LockClass resolves the repository-wide identity of the mutex behind
// a lock receiver expression (the x in x.Lock()):
//
//   - a field selector s.mu → "pkgpath.Owner.mu" where Owner is the
//     named type declaring the field (index expressions in between,
//     as in c.shards[i].mu, resolve through the element type);
//   - a package-level var mu → "pkgpath.mu".
//
// Function-local mutexes (and shapes the resolver cannot attribute to
// a named declaration) return "": they cannot participate in a
// cross-function ordering cycle under this abstraction.
func LockClass(info *types.Info, recv ast.Expr) string {
	switch v := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj, ok := info.Uses[v].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		// Package-level mutex: declared directly in package scope.
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *ast.SelectorExpr:
		sel, ok := info.Selections[v]
		if !ok {
			// Qualified identifier pkg.Mu: a package-level var of the
			// imported package (no Selections entry exists for these).
			if x, xok := ast.Unparen(v.X).(*ast.Ident); xok {
				if _, isPkg := info.Uses[x].(*types.PkgName); isPkg {
					if obj, vok := info.Uses[v.Sel].(*types.Var); vok && obj.Pkg() != nil {
						return obj.Pkg().Path() + "." + obj.Name()
					}
				}
			}
			return ""
		}
		if sel.Kind() != types.FieldVal {
			return ""
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok {
			return ""
		}
		rpath, rname := NamedTypePath(sel.Recv())
		if rname == "" {
			// Unnamed receiver (e.g. a slice element of an anonymous
			// struct); fall back to the field's own package.
			return ""
		}
		if rpath == "" && field.Pkg() != nil {
			rpath = field.Pkg().Path()
		}
		return rpath + "." + rname + "." + field.Name()
	}
	return ""
}
