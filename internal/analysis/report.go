package analysis

import (
	"encoding/json"
	"fmt"
)

// Finding is the machine-readable form of one diagnostic, the unit of
// comtainer-vet's -json output. Suppressed findings are included so CI
// annotation tooling can audit the allow inventory, flagged as such.
type Finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Pass       string `json:"pass"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// FindingsOf converts diagnostics to their JSON form.
func FindingsOf(diags []Diagnostic) []Finding {
	out := make([]Finding, len(diags))
	for i, d := range diags {
		out[i] = Finding{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Pass:       d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
	}
	return out
}

// EncodeFindings renders findings as indented JSON (an array, never
// null, so consumers can range without a nil check).
func EncodeFindings(findings []Finding) ([]byte, error) {
	if findings == nil {
		findings = []Finding{}
	}
	b, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("analysis: encoding findings: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeFindings parses EncodeFindings output.
func DecodeFindings(b []byte) ([]Finding, error) {
	var out []Finding
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("analysis: decoding findings: %w", err)
	}
	return out, nil
}
