package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Finding is the machine-readable form of one diagnostic, the unit of
// comtainer-vet's -json output. Suppressed findings are included so CI
// annotation tooling can audit the allow inventory, flagged as such.
type Finding struct {
	Pkg        string `json:"pkg,omitempty"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Pass       string `json:"pass"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// FindingsOf converts diagnostics to their JSON form, sorted
// deterministically by (package, file, line, column, analyzer,
// message) so report output is byte-stable across runs regardless of
// map-iteration and goroutine scheduling order.
func FindingsOf(diags []Diagnostic) []Finding {
	out := make([]Finding, len(diags))
	for i, d := range diags {
		out[i] = Finding{
			Pkg:        d.Pkg,
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Pass:       d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by (package, file, line, column,
// analyzer, message), the canonical report order shared by -json and
// -sarif output.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// EncodeFindings renders findings as indented JSON (an array, never
// null, so consumers can range without a nil check).
func EncodeFindings(findings []Finding) ([]byte, error) {
	if findings == nil {
		findings = []Finding{}
	}
	b, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("analysis: encoding findings: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeFindings parses EncodeFindings output.
func DecodeFindings(b []byte) ([]Finding, error) {
	var out []Finding
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("analysis: decoding findings: %w", err)
	}
	return out, nil
}
