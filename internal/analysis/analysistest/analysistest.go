// Package analysistest runs analyzers over small source packages on
// disk and checks their diagnostics against `// want "regexp"`
// comments, a minimal analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// A want comment sits on the line the diagnostic is expected on and may
// carry several quoted regular expressions, one per expected
// diagnostic. Diagnostics suppressed by //comtainer:allow comments are
// filtered before matching, so testdata can exercise the suppression
// syntax itself.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"comtainer/internal/analysis"
)

// want is one expectation parsed from a `// want` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// quoted matches one Go-quoted string or backquoted string inside a
// want comment.
var quoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the package rooted at dir (a path relative to the calling
// test, conventionally testdata/src/<name>), applies a through the
// full checker (facts, Finish, suppression), and reports mismatches
// against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunSuite(t, analysis.Suite{a}, dir, ".")
}

// RunSuite loads every package matched by patterns under dir and runs
// the whole suite over them with the real checker, so facts flow
// between the loaded packages and whole-program Finish steps execute.
// Diagnostics from all packages are matched against all want comments
// (suppressed diagnostics are dropped first).
func RunSuite(t *testing.T, suite analysis.Suite, dir string, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	all, err := analysis.CheckPackages(pkgs, suite)
	if err != nil {
		t.Fatalf("checking %s: %v", dir, err)
	}
	var diags []analysis.Diagnostic
	for _, d := range all {
		if !d.Suppressed {
			diags = append(diags, d)
		}
	}

	var wants []*want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every `// want "re" ...` comment in the package.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				qs := quoted.FindAllString(rest, -1)
				if len(qs) == 0 {
					t.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, q := range qs {
					var s string
					if strings.HasPrefix(q, "`") {
						s = strings.Trim(q, "`")
					} else {
						var err error
						s, err = strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
							continue
						}
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: s})
				}
			}
		}
	}
	return wants
}
