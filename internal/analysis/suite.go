package analysis

// The suite is assembled in cmd/comtainer-vet (and tests) from the
// passes subpackages; this file only defines the shared registry type
// so callers don't depend on each pass individually.

// Suite is an ordered list of analyzers run together.
type Suite []*Analyzer

// Names returns the analyzer names in order.
func (s Suite) Names() []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name
	}
	return out
}

// ByName returns the named analyzers, or all when names is empty.
// Unknown names are ignored.
func (s Suite) ByName(names ...string) Suite {
	if len(names) == 0 {
		return s
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out Suite
	for _, a := range s {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
