// Package cfg builds per-function control-flow graphs over the
// standard go/ast, with no dependency on go/types or external
// packages, plus a small forward "must-happen-before-exit" dataflow
// engine (flow.go) and resource-lifetime tracking on top of it
// (lifetime.go).
//
// The graph is intraprocedural and statement-granular: every function
// body becomes a set of basic blocks whose Nodes slices hold the
// statements (and branch-condition expressions) executed in order.
// Control constructs are lowered structurally — if/for/range/switch/
// type-switch/select, labeled break and continue, goto (forward and
// backward), fallthrough — and every return, panic(...), os.Exit,
// log.Fatal*, and runtime.Goexit call edges into one synthetic exit
// block. Deferred calls are recorded in the exit block in LIFO order
// (they run on every exit), while the registering *ast.DeferStmt stays
// in its own block so path-sensitive analyses see exactly where the
// deferral becomes effective: an early return *before* a defer is
// registered does not execute it.
//
// Function literals are not descended into; each literal body is its
// own function and gets its own graph (analysis.FuncScopes hands both
// out separately).
package cfg

import (
	"go/ast"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Name labels the graph in dumps (the function's name, or a
	// caller-chosen tag for literals).
	Name string
	// Blocks holds every block, indexed by Block.Index. Entry is
	// always Blocks[0] and Exit Blocks[1]; blocks statically
	// unreachable from Entry (code after return, unlabeled loop exits
	// of `for {}`) are kept.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Block is one basic block: Nodes execute in order, then control moves
// to one of Succs.
type Block struct {
	Index int
	// Kind names the construct that created the block ("entry",
	// "if.then", "for.head", "select.case", ...) for dumps and
	// debugging.
	Kind string
	// Nodes are the statements and condition expressions executed in
	// this block, in order. Composite statements are lowered: a block
	// never contains a node with nested control flow, except GoStmt /
	// DeferStmt (whose bodies run elsewhere) and function literals
	// (separate scopes).
	Nodes []ast.Node
	// Succs are the possible successors in evaluation order. When Cond
	// is non-nil there are exactly two: Succs[0] is taken when Cond is
	// true, Succs[1] when it is false.
	Succs []*Block
	// Cond is the branch condition ending the block, when the block
	// ends in a two-way conditional branch (if and for headers).
	Cond ast.Expr
}

// New builds the CFG of one function body. name is used only for
// dumps.
func New(name string, body *ast.BlockStmt) *CFG {
	b := &builder{
		g:      &CFG{Name: name},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.block("entry")
	b.g.Exit = b.block("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.g.Exit)
	// Deferred calls run on every exit, last registered first. They are
	// recorded here for completeness and dumps; path-sensitive clients
	// key releases off the DeferStmt registration nodes instead (see
	// the package comment).
	for i := len(b.deferred) - 1; i >= 0; i-- {
		b.g.Exit.Nodes = append(b.g.Exit.Nodes, b.deferred[i])
	}
	return b.g
}

// builder carries the construction state.
type builder struct {
	g   *CFG
	cur *Block
	// frames is the stack of enclosing breakable/continuable
	// constructs.
	frames []frame
	// labels maps a label name to its target block, created on first
	// reference so forward gotos resolve.
	labels map[string]*Block
	// pendingLabel is the label naming the construct about to be
	// built ("outer: for {...}").
	pendingLabel string
	// fall is the target of a fallthrough in the clause being built.
	fall *Block
	// deferred collects deferred calls in registration order.
	deferred []*ast.CallExpr
}

// frame is one enclosing loop/switch/select for break and continue
// resolution.
type frame struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target; nil for switch and select
}

func (b *builder) block(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// edge adds an edge from the current block to to.
func (b *builder) edge(to *Block) { b.cur.Succs = append(b.cur.Succs, to) }

// terminate ends the current block with an edge to to and continues
// building in a fresh block that nothing jumps to (dead code until a
// label lands on it).
func (b *builder) terminate(to *Block) {
	b.edge(to)
	b.cur = b.block("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.labelTarget(s.Label.Name)
		b.edge(lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, "switch")
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.Exit)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.deferred = append(b.deferred, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if terminalCall(s.X) {
			b.terminate(b.g.Exit)
		}
	case *ast.EmptyStmt:
		// no effect, no node
	default:
		// Assign, Decl, Go, Send, IncDec, ...: straight-line.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Cond = s.Cond
	then := b.block("if.then")
	var els *Block
	if s.Else != nil {
		els = b.block("if.else")
	}
	done := b.block("if.done")
	if els != nil {
		cond.Succs = []*Block{then, els}
	} else {
		cond.Succs = []*Block{then, done}
	}
	b.cur = then
	b.stmt(s.Body)
	b.edge(done)
	if els != nil {
		b.cur = els
		b.stmt(s.Else)
		b.edge(done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.block("for.head")
	body := b.block("for.body")
	var post *Block
	if s.Post != nil {
		post = b.block("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		post.Succs = []*Block{head}
	}
	done := b.block("for.done")
	b.edge(head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		head.Succs = []*Block{body, done}
	} else {
		// `for { ... }`: done is reachable only through break.
		head.Succs = []*Block{body}
	}
	cont := head
	if post != nil {
		cont = post
	}
	b.frames = append(b.frames, frame{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmt(s.Body)
	b.edge(cont)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.block("range.head")
	body := b.block("range.body")
	done := b.block("range.done")
	b.edge(head)
	// Only the ranged expression is a node: the RangeStmt itself
	// contains the body, which must not appear inside one block.
	head.Nodes = append(head.Nodes, s.X)
	head.Succs = []*Block{body, done} // zero iterations possible
	b.frames = append(b.frames, frame{label: label, brk: done, cont: head})
	b.cur = body
	b.stmt(s.Body)
	b.edge(head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// switchBody lowers the clause list shared by switch and type switch.
func (b *builder) switchBody(body *ast.BlockStmt, label, kind string) {
	head := b.cur
	done := b.block(kind + ".done")
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	// Clause blocks are created up front so fallthrough can chain to
	// the next clause before its statements are built.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		k := kind + ".case"
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		blocks[i] = b.block(k)
		head.Succs = append(head.Succs, blocks[i])
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done) // no clause matched
	}
	b.frames = append(b.frames, frame{label: label, brk: done})
	savedFall := b.fall
	for i, cc := range clauses {
		b.fall = done
		if i+1 < len(blocks) {
			b.fall = blocks[i+1]
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.edge(done)
	}
	b.fall = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.block("select.done")
	b.frames = append(b.frames, frame{label: label, brk: done})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.block(kind)
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(done)
	}
	// A select with no default blocks until a case fires; `select {}`
	// blocks forever (head keeps no successor).
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.brk != nil && (name == "" || f.label == name) {
				b.terminate(f.brk)
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (name == "" || f.label == name) {
				b.terminate(f.cont)
				return
			}
		}
	case token.GOTO:
		if name != "" {
			b.terminate(b.labelTarget(name))
			return
		}
	case token.FALLTHROUGH:
		if b.fall != nil {
			b.terminate(b.fall)
			return
		}
	}
	// Malformed input (break outside a loop, goto without label):
	// treat as an exit so the graph stays well formed.
	b.terminate(b.g.Exit)
}

// labelTarget returns the block for a label, creating it on first
// reference (forward gotos resolve when the LabeledStmt is reached).
func (b *builder) labelTarget(name string) *Block {
	if lb, ok := b.labels[name]; ok {
		return lb
	}
	lb := b.block("label." + name)
	b.labels[name] = lb
	return lb
}

// terminalCall reports calls that never return, by syntax alone:
// panic(...), os.Exit, log.Fatal*, runtime.Goexit. A purely lexical
// test suffices here — shadowing `panic` or aliasing the os import is
// not something this codebase does, and a miss only makes the graph
// more conservative (an extra path to exit).
func terminalCall(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			return strings.HasPrefix(fun.Sel.Name, "Fatal")
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}
