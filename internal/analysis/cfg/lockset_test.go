package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"reflect"
	"strings"
	"testing"
)

// lexicalLockOps classifies nodes for the lockset tests without type
// information: method calls named Lock/RLock acquire the receiver's
// rendered text as a lock class, Unlock/RUnlock release it, and the
// lockHelper/unlockHelper functions stand in for lockorder call
// summaries acquiring and releasing class "h". The real classifier
// (passes/guardedby) resolves classes through go/types instead; the
// dataflow under test is the same.
func lexicalLockOps(n ast.Node) []LockOp {
	var ops []LockOp
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			switch fun.Name {
			case "lockHelper":
				ops = append(ops, LockOp{Class: "h", Acquire: true})
			case "unlockHelper":
				ops = append(ops, LockOp{Class: "h"})
			}
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Lock", "RLock":
				ops = append(ops, LockOp{Class: nodeText(fun.X), Acquire: true})
			case "Unlock", "RUnlock":
				ops = append(ops, LockOp{Class: nodeText(fun.X)})
			}
		}
		return true
	})
	return ops
}

// TestLockSetGolden runs the must-hold dataflow over every function in
// testdata/lockfuncs.go and compares the annotated dumps against
// testdata/lockfuncs.golden. Regenerate with
// CFG_UPDATE=1 go test ./internal/analysis/cfg.
func TestLockSetGolden(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "testdata/lockfuncs.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := New(fd.Name.Name, fd.Body)
		ls := ComputeLockSets(g, lexicalLockOps)
		b.WriteString(ls.Dump())
		b.WriteString("\n")
	}
	got := b.String()

	const golden = "testdata/lockfuncs.golden"
	if os.Getenv("CFG_UPDATE") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with CFG_UPDATE=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("lockset dump drifted from %s.\nRegenerate with CFG_UPDATE=1 after reviewing.\n--- got ---\n%s", golden, got)
	}
}

// TestAtExit pins the Leaves-summary view: what is still held when the
// function returns, after deferred releases run.
func TestAtExit(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "lock helper leaves its class held",
			src:  `func f() { mu.Lock() }`,
			want: []string{"mu"},
		},
		{
			name: "deferred unlock releases at exit",
			src:  `func f() { mu.Lock(); defer mu.Unlock() }`,
			want: nil,
		},
		{
			name: "explicit unlock releases",
			src:  `func f() { mu.Lock(); mu.Unlock() }`,
			want: nil,
		},
		{
			name: "partial release leaves nothing definite",
			src: `func f() {
				mu.Lock()
				if cond() {
					mu.Unlock()
				}
			}`,
			want: nil,
		},
		{
			name: "two classes, one deferred",
			src: `func f() {
				a.Lock()
				b.Lock()
				defer b.Unlock()
			}`,
			want: []string{"a"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := parseFunc(t, tc.src)
			ls := ComputeLockSets(g, lexicalLockOps)
			if got := ls.AtExit(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("AtExit = %v, want %v\n%s", got, tc.want, ls.Dump())
			}
		})
	}
}

// TestHolds spot-checks the per-node query used by guardedby: the
// access after a defer registration still holds the lock; the access
// after a conditional release does not.
func TestHolds(t *testing.T) {
	g := parseFunc(t, `func f() {
		mu.Lock()
		defer mu.Unlock()
		n++
	}`)
	ls := ComputeLockSets(g, lexicalLockOps)
	// Entry block nodes: mu.Lock(), defer, n++.
	if !ls.Holds(g.Entry, 2, "mu") {
		t.Errorf("n++ after defer mu.Unlock() should hold mu\n%s", ls.Dump())
	}
	if ls.Holds(g.Entry, 0, "mu") {
		t.Errorf("mu must not be held before mu.Lock()\n%s", ls.Dump())
	}

	g2 := parseFunc(t, `func f() {
		mu.Lock()
		if cond() {
			mu.Unlock()
		}
		n++
	}`)
	ls2 := ComputeLockSets(g2, lexicalLockOps)
	var merge *Block
	for _, blk := range g2.Blocks {
		if blk.Kind == "if.done" {
			merge = blk
		}
	}
	if merge == nil {
		t.Fatalf("no if.done block\n%s", g2.Dump())
	}
	if ls2.Holds(merge, 0, "mu") {
		t.Errorf("mu released on one path must not be definitely held at the merge\n%s", ls2.Dump())
	}
}
