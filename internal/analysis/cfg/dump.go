package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders the graph in a stable, diff-friendly text form — the
// format the golden-file tests pin down:
//
//	func name
//	  b0 entry -> b2
//	  b2 for.head -> b3 b4 [cond]
//	      i < n
//	  ...
//	  b1 exit
//	      defer f.Close()
//
// Blocks appear in index order with the exit block last. Blocks not
// reachable from the entry are marked "(unreachable)"; empty
// unreachable blocks with no successors besides their fallthrough are
// still printed so indices stay dense and stable.
func (g *CFG) Dump() string {
	reach := g.reachable()
	var b strings.Builder
	fmt.Fprintf(&b, "func %s\n", g.Name)
	emit := func(blk *Block) {
		fmt.Fprintf(&b, "  b%d %s", blk.Index, blk.Kind)
		if len(blk.Succs) > 0 {
			b.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&b, " b%d", s.Index)
			}
		}
		if blk.Cond != nil {
			b.WriteString(" [cond]")
		}
		if !reach[blk] && blk != g.Exit {
			b.WriteString(" (unreachable)")
		}
		b.WriteString("\n")
		for _, n := range blk.Nodes {
			fmt.Fprintf(&b, "      %s\n", nodeText(n))
		}
	}
	for _, blk := range g.Blocks {
		if blk == g.Exit {
			continue
		}
		emit(blk)
	}
	emit(g.Exit)
	return b.String()
}

// reachable returns the set of blocks reachable from the entry.
func (g *CFG) reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var visit func(*Block)
	visit = func(blk *Block) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

// nodeText renders one node as a single collapsed line, truncated so
// goldens stay readable.
func nodeText(n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 80 {
		s = s[:77] + "..."
	}
	return s
}
