package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestGolden builds the CFG of every function in testdata/funcs.go and
// compares the concatenated dumps against testdata/funcs.golden.
// Regenerate with CFG_UPDATE=1 go test ./internal/analysis/cfg.
func TestGolden(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "testdata/funcs.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := New(fd.Name.Name, fd.Body)
		b.WriteString(g.Dump())
		b.WriteString("\n")
	}
	got := b.String()

	const golden = "testdata/funcs.golden"
	if os.Getenv("CFG_UPDATE") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with CFG_UPDATE=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dump drifted from %s.\nRegenerate with CFG_UPDATE=1 after reviewing.\n--- got ---\n%s", golden, got)
	}
}

// parseFunc builds the CFG of a single function given as source text.
func parseFunc(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package x\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Name.Name, fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// stopOn returns a stop predicate matching any call whose rendered
// text contains the substring.
func stopOn(sub string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		return strings.Contains(nodeText(n), sub)
	}
}

func TestReachesExitStructural(t *testing.T) {
	tests := []struct {
		name string
		src  string
		stop string
		leak bool // some path reaches exit without the stop node
	}{
		{
			name: "release on every path",
			src: `func f() {
				acquire()
				if cond() {
					release()
					return
				}
				release()
			}`,
			stop: "release",
			leak: false,
		},
		{
			name: "early return skips release",
			src: `func f() {
				acquire()
				if cond() {
					return
				}
				release()
			}`,
			stop: "release",
			leak: true,
		},
		{
			name: "defer before branches covers all",
			src: `func f() {
				acquire()
				defer release()
				if cond() {
					return
				}
			}`,
			stop: "release",
			leak: false,
		},
		{
			name: "return before defer registration",
			src: `func f() {
				acquire()
				if cond() {
					return
				}
				defer release()
			}`,
			stop: "release",
			leak: true,
		},
		{
			name: "labeled break bypasses release",
			src: `func f() {
				acquire()
			outer:
				for {
					for {
						if cond() {
							break outer
						}
						release()
						return
					}
				}
			}`,
			stop: "release",
			leak: true,
		},
		{
			name: "infinite loop never exits",
			src: `func f() {
				acquire()
				for {
					work()
				}
			}`,
			stop: "release",
			leak: false,
		},
		{
			name: "panic path still exits",
			src: `func f() {
				acquire()
				if cond() {
					panic("boom")
				}
				release()
			}`,
			stop: "release",
			leak: true,
		},
		{
			name: "select with default: release only in one case",
			src: `func f(ch chan int) {
				acquire()
				select {
				case <-ch:
					release()
				default:
				}
			}`,
			stop: "release",
			leak: true,
		},
		{
			name: "goto loops back through release",
			src: `func f() {
				acquire()
			again:
				if cond() {
					goto again
				}
				release()
			}`,
			stop: "release",
			leak: false,
		},
		{
			name: "switch without default falls through",
			src: `func f(n int) {
				acquire()
				switch n {
				case 1:
					release()
				}
			}`,
			stop: "release",
			leak: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := parseFunc(t, tc.src)
			got := ReachesExit(g, g.Entry, -1, stopOn(tc.stop), nil)
			if got != tc.leak {
				t.Errorf("ReachesExit = %v, want %v\n%s", got, tc.leak, g.Dump())
			}
		})
	}
}

// TestExitCollectsDefers checks that deferred calls land in the exit
// block in LIFO order.
func TestExitCollectsDefers(t *testing.T) {
	g := parseFunc(t, `func f() {
		defer first()
		defer second()
	}`)
	if len(g.Exit.Nodes) != 2 {
		t.Fatalf("exit has %d nodes, want 2:\n%s", len(g.Exit.Nodes), g.Dump())
	}
	if got := nodeText(g.Exit.Nodes[0]); !strings.Contains(got, "second") {
		t.Errorf("exit node 0 = %q, want the LIFO-first deferred call second()", got)
	}
	if got := nodeText(g.Exit.Nodes[1]); !strings.Contains(got, "first") {
		t.Errorf("exit node 1 = %q, want first()", got)
	}
}
