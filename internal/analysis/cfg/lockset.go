package cfg

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// This file is the lockset layer: a forward "must-hold" dataflow over
// the CFG computing, at every node, the set of lock classes that are
// definitely held when the node executes — the substrate the static
// race passes (guardedby, atomicmix) stand on.
//
// The lattice is the powerset of lock classes ordered by ⊇: the top
// element is "all classes held" (the optimistic value of unvisited
// blocks), the entry fact is the empty set (a function's caller may
// hold anything, but nothing is *definitely* held without evidence),
// and the join at a control-flow merge is set intersection — a lock is
// held after the merge only when it is held on every incoming edge.
// Acquisitions add a class, releases remove it, and the iteration runs
// to fixpoint, so locks acquired in loop headers and released across
// back edges converge to their weakest (smallest) sound set.
//
// Deferred releases are the reason the analysis runs over this CFG and
// not over source order: `defer mu.Unlock()` keeps mu held on every
// path from the defer statement to the function return, and the
// builder records the deferred call expressions in the synthetic exit
// block (LIFO). ComputeLockSets therefore ignores DeferStmt nodes
// where they are registered — the release takes effect only when the
// exit block's nodes are interpreted — which is exactly the must-hold
// semantics: a field access after `defer mu.Unlock()` still runs under
// mu.

// LockOp is one lock-state effect of a CFG node, produced by the
// caller-supplied classifier: an acquisition or release of a named
// lock class.
type LockOp struct {
	// Class is the repository-wide lock-class identity (see
	// analysis.LockClass); classifiers must never emit "".
	Class string
	// Acquire is true for Lock/RLock (and calls whose summary says a
	// class is still held at return), false for Unlock/RUnlock (and
	// calls into unlock helpers).
	Acquire bool
}

// LockSets is the result of the must-hold dataflow over one CFG: for
// every block and node index, the set of lock classes definitely held
// just before the node executes.
type LockSets struct {
	g *CFG
	// in maps each block to its entry fact. nil means the block was
	// never reached by the iteration (statically dead): its fact is
	// top, and Held reports every class seen anywhere as held — the
	// standard convention that keeps dead code from diluting merges.
	in map[*Block]map[string]bool
	// ops memoizes the classifier's answer per block, per node.
	ops map[*Block][][]LockOp
	// classes collects every class any op mentions, for the top value.
	classes map[string]bool
}

// ComputeLockSets runs the forward must-hold dataflow over g. The
// classify callback maps one CFG node to its lock-state effects in
// evaluation order; it is consulted once per node and must be
// deterministic. DeferStmt nodes are never classified (their calls
// take effect in the exit block — see the file comment); classifiers
// inspecting node subtrees must not descend into *ast.FuncLit bodies,
// which execute elsewhere.
func ComputeLockSets(g *CFG, classify func(n ast.Node) []LockOp) *LockSets {
	ls := &LockSets{
		g:       g,
		in:      make(map[*Block]map[string]bool, len(g.Blocks)),
		ops:     make(map[*Block][][]LockOp, len(g.Blocks)),
		classes: make(map[string]bool),
	}
	for _, blk := range g.Blocks {
		perNode := make([][]LockOp, len(blk.Nodes))
		for i, n := range blk.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue // releases at exit, not at registration
			}
			perNode[i] = classify(n)
			for _, op := range perNode[i] {
				ls.classes[op.Class] = true
			}
		}
		ls.ops[blk] = perNode
	}

	// Worklist iteration. The entry starts at bottom (empty set); every
	// other block starts at top (absent from `in`). Because the lattice
	// is finite and transfer functions are monotone, this terminates.
	ls.in[g.Entry] = map[string]bool{}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := ls.transfer(blk, ls.in[blk])
		for _, s := range blk.Succs {
			if ls.merge(s, out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return ls
}

// transfer applies blk's ops to a copy of the entry fact and returns
// the exit fact.
func (ls *LockSets) transfer(blk *Block, in map[string]bool) map[string]bool {
	cur := copySet(in)
	for _, ops := range ls.ops[blk] {
		applyOps(cur, ops)
	}
	return cur
}

// merge intersects out into blk's entry fact, reporting whether the
// fact changed (first arrival always changes: top ∩ out = out).
func (ls *LockSets) merge(blk *Block, out map[string]bool) bool {
	old, seen := ls.in[blk]
	if !seen {
		ls.in[blk] = copySet(out)
		return true
	}
	changed := false
	for c := range old {
		if !out[c] {
			delete(old, c)
			changed = true
		}
	}
	return changed
}

// Held returns the sorted set of lock classes definitely held just
// before node index i of block blk executes. For the synthetic exit
// block, i indexes the LIFO deferred calls, so Held(exit, 0) is the
// set at return before any deferred release has run.
func (ls *LockSets) Held(blk *Block, i int) []string {
	in, seen := ls.in[blk]
	if !seen {
		// Unreachable block: top. Report every known class so dead
		// code never produces "lock not held" evidence.
		return sortedKeys(ls.classes)
	}
	cur := copySet(in)
	for j := 0; j < i && j < len(ls.ops[blk]); j++ {
		applyOps(cur, ls.ops[blk][j])
	}
	return sortedKeys(cur)
}

// Holds reports whether class is definitely held just before node i of
// block blk.
func (ls *LockSets) Holds(blk *Block, i int, class string) bool {
	for _, c := range ls.Held(blk, i) {
		if c == class {
			return true
		}
	}
	return false
}

// AtExit returns the sorted set of classes still held when the
// function returns, after every deferred release recorded in the exit
// block has run — the "Leaves" summary of a lock() helper.
func (ls *LockSets) AtExit() []string {
	in, seen := ls.in[ls.g.Exit]
	if !seen {
		return nil // the function never returns
	}
	cur := copySet(in)
	for _, ops := range ls.ops[ls.g.Exit] {
		applyOps(cur, ops)
	}
	return sortedKeys(cur)
}

// Dump renders the lockset at every node in the same block order as
// CFG.Dump, each node prefixed with the classes held before it — the
// format the golden-file tests pin:
//
//	func name
//	  b0 entry
//	      {} mu.Lock()
//	      {p.mu} n++
//	  b1 exit
//	      {p.mu} mu.Unlock()
func (ls *LockSets) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s\n", ls.g.Name)
	emit := func(blk *Block) {
		fmt.Fprintf(&b, "  b%d %s\n", blk.Index, blk.Kind)
		for i, n := range blk.Nodes {
			fmt.Fprintf(&b, "      {%s} %s\n", strings.Join(ls.Held(blk, i), ","), nodeText(n))
		}
	}
	for _, blk := range ls.g.Blocks {
		if blk == ls.g.Exit {
			continue
		}
		emit(blk)
	}
	emit(ls.g.Exit)
	return b.String()
}

func applyOps(set map[string]bool, ops []LockOp) {
	for _, op := range ops {
		if op.Acquire {
			set[op.Class] = true
		} else {
			delete(set, op.Class)
		}
	}
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = v
		}
	}
	return out
}

func sortedKeys(s map[string]bool) []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
