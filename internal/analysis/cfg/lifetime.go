package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Tracked follows one resource-holding variable through a CFG and
// decides, per node, whether the node settles the resource's fate.
// "Settled" covers both release (the Close/Stop call, directly,
// deferred, or forwarded to a callee known to release it) and escape
// (returned, stored into a field/global/container, sent on a channel,
// captured by a function literal, or handed to a call that takes
// ownership) — in either case this function is no longer responsible
// on that path, so tracking stops.
//
// The escape rules err on the quiet side: aliasing (`g := f`) and any
// store with the resource as a direct operand end tracking rather
// than attempting alias analysis.
type Tracked struct {
	Info *types.Info
	// Obj is the variable holding the resource.
	Obj types.Object
	// Err, when non-nil, is the error variable assigned by the same
	// acquire; branches on it prune paths where the resource is nil
	// (the `if err != nil { return err }` right after an acquire).
	Err types.Object
	// ErrBlock, when non-nil, restricts Err pruning to conditions
	// evaluated in that block — the acquire's own. The err variable is
	// routinely reassigned by later acquires (`dst, err :=` after
	// `src, err :=`), and a test of the NEW err says nothing about the
	// OLD resource; the idiomatic check straight after an acquire
	// always shares its block.
	ErrBlock *Block
	// Releases reports whether call releases the resource: the
	// resource's own Close/Stop, or a call forwarding it to a known
	// closer (interprocedural facts). The predicate sees every call in
	// the node, including deferred ones.
	Releases func(call *ast.CallExpr) bool
	// Consumes reports whether passing the resource as an argument to
	// call transfers ownership. Typical policy: unknown or dynamic
	// callees consume (assume the ecosystem behaves), known callees
	// do not (they would be Releases if they closed).
	Consumes func(call *ast.CallExpr) bool
	// AliasType, when non-nil, decides whether assigning a
	// selector/index rooted at the resource aliases its closable part
	// and therefore escapes it: `body := resp.Body` does (io.ReadCloser),
	// `code := resp.StatusCode` does not (int).
	AliasType func(t types.Type) bool
}

// Leaks reports whether some path from the acquisition — node index i
// of block b — reaches the function exit with the resource neither
// released nor escaped.
func (t *Tracked) Leaks(g *CFG, b *Block, i int) bool {
	return ReachesExit(g, b, i, t.settles, t.deadEdge)
}

// ReleasedOnEveryPath reports whether every path from the function
// entry to its exit releases the resource (escapes do NOT count) —
// the classifier behind "this helper closes the argument it is
// handed" interprocedural facts, run with Obj bound to a parameter.
func (t *Tracked) ReleasedOnEveryPath(g *CFG) bool {
	stop := func(n ast.Node) bool {
		released := false
		ast.Inspect(n, func(m ast.Node) bool {
			if released {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false // a literal body runs elsewhere, maybe never
			}
			if call, ok := m.(*ast.CallExpr); ok && t.Releases != nil && t.Releases(call) {
				released = true
				return false
			}
			return true
		})
		return released
	}
	return !ReachesExit(g, g.Entry, -1, stop, t.deadEdge)
}

// settles reports whether node n releases or escapes the resource.
func (t *Tracked) settles(n ast.Node) bool {
	settled := false
	ast.Inspect(n, func(m ast.Node) bool {
		if settled {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			// A closure capturing the resource may release it later
			// (cleanup callbacks) — ownership has escaped either way.
			if t.mentions(m) {
				settled = true
			}
			return false
		case *ast.CallExpr:
			if t.Releases != nil && t.Releases(m) {
				settled = true
				return false
			}
			if t.argMentions(m) && t.Consumes != nil && t.Consumes(m) {
				settled = true
				return false
			}
		case *ast.ReturnStmt:
			// Only returning the resource itself (or an alias of its
			// closable part) escapes it; `return resp.StatusCode` hands
			// back an int and keeps the body this function's problem.
			// Calls among the results are judged by the CallExpr case.
			for _, r := range m.Results {
				if t.directOperand(r) {
					settled = true
					return false
				}
			}
		case *ast.SendStmt:
			if t.directOperand(m.Value) {
				settled = true
				return false
			}
		case *ast.AssignStmt:
			// Storing or aliasing the resource itself (`u.file = f`,
			// `g := f`, `m[k] = f`, `x = &T{f: f}`) escapes it. Calls
			// on the right-hand side are judged by the CallExpr case,
			// not here.
			for _, r := range m.Rhs {
				if t.directOperand(r) {
					settled = true
					return false
				}
			}
		}
		return true
	})
	return settled
}

// mentions reports whether the resource variable is used anywhere in
// n.
func (t *Tracked) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && t.Info.Uses[id] == t.Obj {
			found = true
		}
		return true
	})
	return found
}

// argMentions reports whether the resource appears in call's argument
// list outside nested calls (a nested call receiving it is judged on
// its own) and outside function literals (judged as captures).
func (t *Tracked) argMentions(call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.CallExpr, *ast.FuncLit:
				return false
			case *ast.Ident:
				if t.Info.Uses[m] == t.Obj {
					found = true
				}
			}
			return true
		})
	}
	return found
}

// directOperand reports whether e is the resource itself, its address,
// a composite literal embedding it, or (subject to AliasType) a
// selector/index rooted at it whose type aliases the closable part —
// the forms whose assignment aliases or stores the resource.
func (t *Tracked) directOperand(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Info.Uses[e] == t.Obj
	case *ast.UnaryExpr:
		return e.Op == token.AND && t.directOperand(e.X)
	case *ast.CompositeLit:
		return t.mentions(e)
	case *ast.SelectorExpr, *ast.IndexExpr:
		if t.AliasType == nil || !t.mentions(e) {
			return false
		}
		if tv, ok := t.Info.Types[e]; ok && tv.Type != nil {
			return t.AliasType(tv.Type)
		}
	}
	return false
}

// deadEdge prunes conditional edges along which the resource is known
// nil: after `x, err := acquire()`, the true branch of `err != nil`
// (and the false branch of `err == nil`), and branches testing the
// resource itself against nil. This is what makes the engine
// path-sensitive enough for the idiomatic
//
//	resp, err := client.Do(req)
//	if err != nil {
//		return err // no body to close here
//	}
//	defer resp.Body.Close()
//
// sequence to come out clean.
func (t *Tracked) deadEdge(from, to *Block) bool {
	if from.Cond == nil || len(from.Succs) != 2 {
		return false
	}
	be, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false
	}
	var x ast.Expr
	switch {
	case t.isNil(be.Y):
		x = be.X
	case t.isNil(be.X):
		x = be.Y
	default:
		return false
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	obj := t.Info.Uses[id]
	if obj == nil {
		return false
	}
	var liveWhenTrue bool
	switch obj {
	case t.Err:
		if t.ErrBlock != nil && from != t.ErrBlock {
			return false // stale err: reassigned since the acquire
		}
		// err == nil ⇒ the acquire succeeded ⇒ resource live.
		liveWhenTrue = be.Op == token.EQL
	case t.Obj:
		// resource != nil ⇒ live.
		liveWhenTrue = be.Op == token.NEQ
	default:
		return false
	}
	if liveWhenTrue {
		return to == from.Succs[1] // false branch: resource is nil
	}
	return to == from.Succs[0] // true branch: resource is nil
}

func (t *Tracked) isNil(e ast.Expr) bool {
	if tv, ok := t.Info.Types[e]; ok {
		return tv.IsNil()
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
