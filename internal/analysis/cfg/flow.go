package cfg

import "go/ast"

// ReachesExit is the forward "must-happen-before-exit" engine: it
// reports whether execution starting in block from, just after node
// index start (pass -1 to include the whole block), can reach the
// function exit without executing a node for which stop returns true.
//
// Used contrapositively it answers the lifecycle question every
// resource pass asks: with stop = "this node releases the resource", a
// true result is a witness path on which the release never happens — a
// leak. A false result means every exiting path hits a release first,
// i.e. the release must happen before exit.
//
// dead, when non-nil, prunes edges the analysis knows cannot be taken
// in the tracked state (the `if err != nil` branch right after an
// acquire that succeeded — see Tracked.deadEdge); pruned edges are not
// traversed.
//
// The synthetic exit block's own nodes (the LIFO deferred calls) are
// deliberately NOT scanned: a deferred release only counts from its
// registration node onward, which is where the DeferStmt sits in the
// graph. Cycles are handled by memoizing visited blocks — an infinite
// loop that never exits vacuously satisfies any must-before-exit
// property.
func ReachesExit(g *CFG, from *Block, start int, stop func(ast.Node) bool, dead func(from, to *Block) bool) bool {
	if from != g.Exit {
		for _, n := range from.Nodes[start+1:] {
			if stop(n) {
				return false
			}
		}
	}
	seen := make(map[*Block]bool)
	var visit func(*Block) bool
	visit = func(blk *Block) bool {
		if blk == g.Exit {
			return true
		}
		if seen[blk] {
			return false
		}
		seen[blk] = true
		for _, n := range blk.Nodes {
			if stop(n) {
				return false
			}
		}
		for _, s := range blk.Succs {
			if dead != nil && dead(blk, s) {
				continue
			}
			if visit(s) {
				return true
			}
		}
		return false
	}
	if from == g.Exit {
		return true
	}
	for _, s := range from.Succs {
		if dead != nil && dead(from, s) {
			continue
		}
		if visit(s) {
			return true
		}
	}
	return false
}
