// Package lockfuncs is the golden-file corpus for the lockset
// dataflow: each function exercises one must-hold scenario. Like
// funcs.go it is parsed, never compiled, so the stub identifiers need
// no imports; the test's lexical classifier maps X.Lock()/X.Unlock()
// (and RLock/RUnlock) to the receiver's rendered text as the lock
// class, and lockHelper()/unlockHelper() to acquire/release of class
// "h", standing in for lockorder call summaries.
package lockfuncs

func straightLine() {
	mu.Lock()
	n++
	mu.Unlock()
	n--
}

func deferredUnlock() {
	mu.Lock()
	defer mu.Unlock()
	n++
	if cond() {
		return
	}
	n--
}

func earlyReturnBeforeDefer() {
	if cond() {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	n++
}

func partialRelease() {
	mu.Lock()
	if cond() {
		mu.Unlock()
	}
	n++
}

func bothBranchesAcquire() {
	if cond() {
		mu.Lock()
	} else {
		mu.Lock()
	}
	n++
	mu.Unlock()
}

func loopKeepsHeld() {
	mu.Lock()
	for i := 0; i < 10; i++ {
		n++
	}
	mu.Unlock()
}

func loopReleasesOnBackEdge() {
	mu.Lock()
	for cond() {
		n++
		mu.Unlock()
	}
	n--
}

func nestedClasses() {
	a.Lock()
	s.mu.Lock()
	n++
	s.mu.Unlock()
	n--
	a.Unlock()
}

func readLock() {
	mu.RLock()
	defer mu.RUnlock()
	n++
}

func helperSummaries() {
	lockHelper()
	n++
	unlockHelper()
	n--
}

func deferredHelper() {
	lockHelper()
	defer unlockHelper()
	n++
}

func deadCodeIsTop() {
	mu.Lock()
	mu.Unlock()
	return
	n++
}
