// Package funcs is the golden-file corpus for the CFG builder: each
// function exercises one tricky lowering. It is parsed, never
// compiled, so the stub identifiers below need no imports.
package funcs

func straightLine(a, b int) int {
	c := a + b
	c *= 2
	return c
}

func ifElse(n int) string {
	if n > 0 {
		return "pos"
	} else if n < 0 {
		return "neg"
	}
	return "zero"
}

func deferInLoop(paths []string) error {
	for _, p := range paths {
		f, err := open(p)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return nil
}

func labeledBreakContinue(rows [][]int) int {
	total := 0
outer:
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			total += v
		}
	}
	return total
}

func gotoRetry(limit int) error {
	tries := 0
retry:
	err := attempt()
	if err != nil {
		tries++
		if tries < limit {
			goto retry
		}
		return err
	}
	return nil
}

func selectCtxDone(ctx ctxT, ch chan int) (int, error) {
	t := newTimer()
	defer t.Stop()
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	case v := <-ch:
		return v, nil
	case <-t.C:
		return -1, nil
	}
}

func panicRecover(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = asError(r)
		}
	}()
	if f == nil {
		panic("nil func")
	}
	f()
	return nil
}

func switchFallthrough(n int) int {
	score := 0
	switch n {
	case 0:
		score++
		fallthrough
	case 1:
		score += 10
	default:
		score = -1
	}
	return score
}

func typeSwitchLoop(vals []interface{}) int {
	count := 0
	for _, v := range vals {
		switch x := v.(type) {
		case int:
			count += x
		case string:
			if x == "" {
				continue
			}
			count++
		default:
			return -1
		}
	}
	return count
}

func forForever(work chan func()) {
	for {
		w, ok := <-work
		if !ok {
			break
		}
		w()
	}
}
