package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Check runs every analyzer over every package and returns the
// surviving diagnostics sorted by position. Diagnostics silenced by a
// //comtainer:allow comment are dropped.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: running %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				if !allow.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowIndex records, per file, which analyzer names are allowed on
// which lines.
type allowIndex struct {
	// byLine maps filename → line → analyzer names allowed there.
	byLine map[string]map[int]map[string]bool
}

// suppressed reports whether d is covered by an allow comment on its
// own line or the line above (function-doc allows are expanded onto
// every line of the function when the index is built).
func (ix *allowIndex) suppressed(d Diagnostic) bool {
	lines := ix.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[ln]; names[d.Analyzer] || names["all"] {
			return true
		}
	}
	return false
}

// collectAllows indexes every //comtainer:allow comment in the
// package. A comment in a function's doc block applies to the whole
// function body.
func collectAllows(pkg *Package) *allowIndex {
	ix := &allowIndex{byLine: make(map[string]map[int]map[string]bool)}
	add := func(filename string, line int, names []string) {
		lines := ix.byLine[filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			ix.byLine[filename] = lines
		}
		set := lines[line]
		if set == nil {
			set = make(map[string]bool)
			lines[line] = set
		}
		for _, n := range names {
			set[n] = true
		}
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				add(pos.Filename, pos.Line, names)
			}
		}
		// Doc-comment allows cover the whole declared function.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			var names []string
			for _, c := range fd.Doc.List {
				names = append(names, parseAllow(c.Text)...)
			}
			if len(names) == 0 {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			for ln := start.Line; ln <= end.Line; ln++ {
				add(start.Filename, ln, names)
			}
		}
	}
	return ix
}

// parseAllow extracts analyzer names from one comment, returning nil
// when the comment is not an allow directive. Accepted forms:
//
//	//comtainer:allow lockio
//	//comtainer:allow lockio,errpropagate -- rename must stay serialized
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "comtainer:allow")
	if !ok {
		return nil
	}
	if reason := strings.Index(rest, "--"); reason >= 0 {
		rest = rest[:reason]
	}
	rest = strings.TrimSuffix(rest, "*/")
	var names []string
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f != "" {
			names = append(names, f)
		}
	}
	return names
}

// FilterSuppressed applies the //comtainer:allow filtering to an
// externally produced diagnostic list — the hook the analysistest
// harness uses so testdata can exercise the suppression syntax.
func FilterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	allow := collectAllows(pkg)
	var out []Diagnostic
	for _, d := range diags {
		if !allow.suppressed(d) {
			out = append(out, d)
		}
	}
	return out
}
