package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"time"

	"comtainer/internal/digest"
)

// Options configures a checker run.
type Options struct {
	// Cache, when non-nil, replays per-package results and facts for
	// packages whose key (analyzer versions, source hashes, dependency
	// keys) is unchanged, skipping parse, type-check, and analysis.
	Cache *Cache
}

// Result is the outcome of one checker run.
type Result struct {
	// Diags holds every diagnostic, including suppressed ones
	// (flagged), sorted by position.
	Diags []Diagnostic
	// Total and Cached count analyzed packages and how many of them
	// were replayed from the incremental cache.
	Total, Cached int
	// Pkgs are the packages that were actually loaded from source
	// this run (cache misses); cached packages do not appear.
	Pkgs []*Package
	// Stats holds per-analyzer cost over the run, in suite order.
	// Replayed packages contribute nothing: their results came from
	// the cache, which is the point.
	Stats []AnalyzerStat
}

// AnalyzerStat aggregates one analyzer's cost over a checker run.
type AnalyzerStat struct {
	// Name is the analyzer name.
	Name string
	// RunTime is the wall time spent in Run across fresh packages.
	RunTime time.Duration
	// FinishTime is the wall time of the whole-program Finish step.
	FinishTime time.Duration
	// Packages counts the fresh packages the analyzer ran over.
	Packages int
}

// Findings returns the diagnostics that survived suppression.
func (r *Result) Findings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Run analyzes targets with suite in dependency order, so facts
// exported by a package are visible to its dependents, then executes
// each analyzer's Finish step over the union of facts. With a cache
// configured, unchanged packages are replayed instead of re-analyzed.
func Run(targets []*Target, suite Suite, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	ck := newChecker(suite)
	res := &Result{Total: len(targets)}
	// Seed the filename→package map from target metadata so Finish
	// diagnostics attribute positions in replayed packages (whose
	// sources are never loaded) exactly like cold ones.
	for _, t := range targets {
		for _, f := range t.GoFiles {
			ck.fileToPkg[filepath.Join(t.Dir, f)] = t.Path
		}
	}

	keys := make(map[string]keyState, len(targets))
	for _, t := range sortTargets(targets) {
		var entry *cacheEntry
		if opts.Cache != nil {
			key, err := opts.Cache.key(t, suite, keys)
			if err == nil {
				keys[t.Path] = keyState{key: key, ok: true}
				entry = opts.Cache.get(key)
			} else {
				keys[t.Path] = keyState{}
			}
		}
		if entry != nil {
			if err := ck.replay(t.Path, entry); err == nil {
				res.Cached++
				continue
			}
			// A corrupt or stale-schema entry falls through to a
			// fresh analysis below.
			ck.forget(t.Path)
		}
		pkg, err := t.Load()
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
		fresh, err := ck.analyze(pkg)
		if err != nil {
			return nil, err
		}
		if ks := keys[t.Path]; ks.ok && opts.Cache != nil {
			opts.Cache.put(ks.key, fresh)
		}
	}
	diags, err := ck.finish()
	if err != nil {
		return nil, err
	}
	res.Diags = diags
	res.Stats = ck.statsList()
	return res, nil
}

// keyState records a target's cache key, or that keying failed and
// the package must not be cached this run.
type keyState struct {
	key digest.Digest
	ok  bool
}

// CheckPackages runs suite over already-loaded packages, in the order
// given, with an in-memory fact store and the Finish step; no caching.
// It returns every diagnostic with its Suppressed flag set.
func CheckPackages(pkgs []*Package, suite []*Analyzer) ([]Diagnostic, error) {
	ck := newChecker(suite)
	for _, pkg := range pkgs {
		if _, err := ck.analyze(pkg); err != nil {
			return nil, err
		}
	}
	return ck.finish()
}

// Check runs every analyzer over every package and returns the
// surviving diagnostics sorted by position — the historical entry
// point, kept for callers that do not need caching or the suppressed
// view.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := CheckPackages(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out, nil
}

// sortTargets orders targets dependency-first (imports before
// importers). go list -deps already emits this order; the explicit
// sort keeps the facts pipeline correct for any caller-built slice.
func sortTargets(targets []*Target) []*Target {
	byPath := make(map[string]*Target, len(targets))
	for _, t := range targets {
		byPath[t.Path] = t
	}
	var out []*Target
	state := make(map[string]int, len(targets)) // 0 new, 1 visiting, 2 done
	var visit func(t *Target)
	visit = func(t *Target) {
		if state[t.Path] != 0 {
			return // visiting (import cycle: impossible in Go) or done
		}
		state[t.Path] = 1
		for _, imp := range t.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[t.Path] = 2
		out = append(out, t)
	}
	for _, t := range targets {
		visit(t)
	}
	return out
}

// checker accumulates per-package diagnostics, allow sites, and facts
// across one run, whether packages were analyzed fresh or replayed.
type checker struct {
	suite []*Analyzer
	diags []Diagnostic
	sites []allowSite
	facts map[string]map[string]Fact // analyzer → package path → fact
	stats map[string]*AnalyzerStat   // analyzer → accumulated cost

	// perPkg remembers what each package contributed, so a replay
	// that later proves corrupt can be forgotten cleanly.
	perPkg map[string]*cacheEntry

	// fileToPkg maps absolute source filenames to import paths, so
	// whole-program Finish diagnostics (whose positions may land in
	// any analyzed package, including ones replayed without loading)
	// can be attributed to a package for report sorting.
	fileToPkg map[string]string
}

func newChecker(suite []*Analyzer) *checker {
	return &checker{
		suite:     suite,
		facts:     make(map[string]map[string]Fact),
		stats:     make(map[string]*AnalyzerStat),
		perPkg:    make(map[string]*cacheEntry),
		fileToPkg: make(map[string]string),
	}
}

// analyze loads allow sites, runs every analyzer over pkg, installs
// exported facts, and returns the package's serializable contribution
// for the cache.
func (ck *checker) analyze(pkg *Package) (*cacheEntry, error) {
	entry := &cacheEntry{Facts: make(map[string]json.RawMessage)}
	for _, f := range pkg.Files {
		if p := pkg.Fset.Position(f.Pos()); p.Filename != "" {
			ck.fileToPkg[p.Filename] = pkg.Path
		}
	}
	sites, reasonDiags := scanAllows(pkg)
	entry.Allows = sites
	entry.Diags = append(entry.Diags, reasonDiags...)

	for _, a := range ck.suite {
		a := a
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				d.Pkg = pkg.Path
				diags = append(diags, d)
			},
			PackageFact: func(path string) Fact {
				return ck.facts[a.Name][path]
			},
			AnalyzerFact: func(analyzer, path string) Fact {
				return ck.facts[analyzer][path]
			},
		}
		if a.FactType != nil {
			pass.ExportPackageFact = func(f Fact) {
				ck.installFact(a.Name, pkg.Path, f)
				raw, err := json.Marshal(f)
				if err == nil {
					entry.Facts[a.Name] = raw
				}
			}
		}
		start := time.Now()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: running %s on %s: %w", a.Name, pkg.Path, err)
		}
		st := ck.statsFor(a.Name)
		st.RunTime += time.Since(start)
		st.Packages++
		entry.Diags = append(entry.Diags, diags...)
	}
	ck.adopt(pkg.Path, entry)
	return entry, nil
}

// replay installs a cached package contribution: its diagnostics,
// allow sites, and decoded facts.
func (ck *checker) replay(path string, entry *cacheEntry) error {
	for name, raw := range entry.Facts {
		a := findAnalyzer(ck.suite, name)
		if a == nil || a.FactType == nil {
			continue
		}
		f, err := decodeFact(a.FactType, raw)
		if err != nil {
			return fmt.Errorf("analysis: cached fact %s/%s: %w", name, path, err)
		}
		ck.installFact(name, path, f)
	}
	ck.adopt(path, entry)
	return nil
}

// adopt records entry's diagnostics and allow sites under path.
func (ck *checker) adopt(path string, entry *cacheEntry) {
	ck.perPkg[path] = entry
	ck.diags = append(ck.diags, entry.Diags...)
	ck.sites = append(ck.sites, entry.Allows...)
}

// forget removes everything a (failed) replay installed for path.
func (ck *checker) forget(path string) {
	entry := ck.perPkg[path]
	if entry == nil {
		return
	}
	delete(ck.perPkg, path)
	ck.diags = ck.diags[:len(ck.diags)-len(entry.Diags)]
	ck.sites = ck.sites[:len(ck.sites)-len(entry.Allows)]
	for _, byPkg := range ck.facts {
		delete(byPkg, path)
	}
}

func (ck *checker) installFact(analyzer, path string, f Fact) {
	byPkg := ck.facts[analyzer]
	if byPkg == nil {
		byPkg = make(map[string]Fact)
		ck.facts[analyzer] = byPkg
	}
	byPkg[path] = f
}

// finish runs the whole-program steps, applies suppression, and
// returns the sorted diagnostics.
func (ck *checker) finish() ([]Diagnostic, error) {
	for _, a := range ck.suite {
		if a.Finish == nil {
			continue
		}
		facts := ck.facts[a.Name]
		if facts == nil {
			facts = make(map[string]Fact)
		}
		fp := &FinishPass{
			Analyzer: a,
			Facts:    facts,
			Report: func(d Diagnostic) {
				if d.Pkg == "" {
					d.Pkg = ck.fileToPkg[d.Pos.Filename]
				}
				ck.diags = append(ck.diags, d)
			},
			AnalyzerFacts: func(analyzer string) map[string]Fact { return ck.facts[analyzer] },
		}
		start := time.Now()
		if err := a.Finish(fp); err != nil {
			return nil, fmt.Errorf("analysis: finishing %s: %w", a.Name, err)
		}
		ck.statsFor(a.Name).FinishTime += time.Since(start)
	}

	ix := buildAllowIndex(ck.sites)
	out := make([]Diagnostic, len(ck.diags))
	for i, d := range ck.diags {
		// The reason-enforcement diagnostic is not itself
		// suppressible: an allow comment cannot vouch for its own
		// missing justification.
		if d.Analyzer != AllowAnalyzerName {
			d.Suppressed = ix.suppressed(d)
		}
		out[i] = d
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// statsFor returns (creating on first use) the accumulator for name.
func (ck *checker) statsFor(name string) *AnalyzerStat {
	st := ck.stats[name]
	if st == nil {
		st = &AnalyzerStat{Name: name}
		ck.stats[name] = st
	}
	return st
}

// statsList flattens the accumulators into suite order.
func (ck *checker) statsList() []AnalyzerStat {
	out := make([]AnalyzerStat, 0, len(ck.suite))
	for _, a := range ck.suite {
		if st := ck.stats[a.Name]; st != nil {
			out = append(out, *st)
		} else {
			out = append(out, AnalyzerStat{Name: a.Name})
		}
	}
	return out
}

func findAnalyzer(suite []*Analyzer, name string) *Analyzer {
	for _, a := range suite {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// decodeFact unmarshals raw into a fresh value of proto's concrete
// type (proto must be a non-nil pointer, per Analyzer.FactType).
func decodeFact(proto Fact, raw []byte) (Fact, error) {
	t := reflect.TypeOf(proto)
	if t == nil || t.Kind() != reflect.Pointer {
		return nil, fmt.Errorf("fact prototype %T is not a pointer", proto)
	}
	v := reflect.New(t.Elem()).Interface().(Fact)
	if err := json.Unmarshal(raw, v); err != nil {
		return nil, err
	}
	return v, nil
}

// AllowAnalyzerName tags the diagnostics the suppression scanner
// itself emits: a //comtainer:allow comment with no "-- reason".
const AllowAnalyzerName = "allow"

// allowSite is one suppression range: Names are allowed on lines
// Line..EndLine (plus the line after EndLine, matching the historical
// "comment above the flagged line" behavior).
type allowSite struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	EndLine int      `json:"endLine"`
	Names   []string `json:"names"`
}

// allowIndex answers suppression queries over a set of sites.
type allowIndex struct {
	byFile map[string][]allowSite
}

func buildAllowIndex(sites []allowSite) *allowIndex {
	ix := &allowIndex{byFile: make(map[string][]allowSite)}
	for _, s := range sites {
		ix.byFile[s.File] = append(ix.byFile[s.File], s)
	}
	return ix
}

// suppressed reports whether d is covered by an allow site: the
// diagnostic's line falls inside the site's range extended one line
// past its end (the comment-above-the-line form), and the site names
// the analyzer or "all".
func (ix *allowIndex) suppressed(d Diagnostic) bool {
	for _, s := range ix.byFile[d.Pos.Filename] {
		if d.Pos.Line < s.Line || d.Pos.Line > s.EndLine+1 {
			continue
		}
		for _, n := range s.Names {
			if n == d.Analyzer || n == "all" {
				return true
			}
		}
	}
	return false
}

// scanAllows indexes every //comtainer:allow comment in the package
// and emits a diagnostic for each one lacking a reason. A comment in
// a function's doc block applies to the whole function body.
func scanAllows(pkg *Package) ([]allowSite, []Diagnostic) {
	var sites []allowSite
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, hasReason := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sites = append(sites, allowSite{
					File: pos.Filename, Line: pos.Line, EndLine: pos.Line, Names: names,
				})
				if !hasReason {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: AllowAnalyzerName,
						Message: fmt.Sprintf("//comtainer:allow %s has no reason; append \" -- <why this exception is safe>\"",
							strings.Join(names, ",")),
					})
				}
			}
		}
		// Doc-comment allows cover the whole declared function.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			var names []string
			for _, c := range fd.Doc.List {
				ns, _ := parseAllow(c.Text)
				names = append(names, ns...)
			}
			if len(names) == 0 {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			sites = append(sites, allowSite{
				File: start.Filename, Line: start.Line, EndLine: end.Line, Names: names,
			})
		}
	}
	return sites, diags
}

// parseAllow extracts analyzer names from one comment, returning nil
// names when the comment is not an allow directive, and whether a
// non-empty reason follows the "--" separator. Accepted forms:
//
//	//comtainer:allow lockio -- rename must stay serialized
//	//comtainer:allow lockio,errpropagate -- reason spans both
func parseAllow(text string) (names []string, hasReason bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "comtainer:allow")
	if !ok {
		return nil, false
	}
	rest = strings.TrimSuffix(rest, "*/")
	if i := strings.Index(rest, "--"); i >= 0 {
		hasReason = strings.TrimSpace(rest[i+2:]) != ""
		rest = rest[:i]
	}
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f != "" {
			names = append(names, f)
		}
	}
	if names == nil {
		return nil, false
	}
	return names, hasReason
}

// FilterSuppressed applies the //comtainer:allow filtering to an
// externally produced diagnostic list — the hook the analysistest
// harness uses so testdata can exercise the suppression syntax.
func FilterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	sites, _ := scanAllows(pkg)
	ix := buildAllowIndex(sites)
	var out []Diagnostic
	for _, d := range diags {
		if !ix.suppressed(d) {
			out = append(out, d)
		}
	}
	return out
}
