package analysis

import (
	"encoding/json"
	"fmt"
	"path/filepath"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning
// ingests. Only the slice of the spec the upload endpoint requires is
// modeled: one run, the driver's rule table built from the analyzer
// suite, and one result per finding. Suppressed findings are included
// with an in-source suppression record — code scanning then shows them
// as dismissed instead of open, preserving the allow audit trail.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifText     `json:"shortDescription"`
	DefaultConfig    sarifRuleConf `json:"defaultConfiguration"`
}

type sarifRuleConf struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// EncodeSARIF renders findings as a SARIF 2.1.0 log. The rule table
// comes from suite (every analyzer appears, found something or not, so
// code scanning can close previously-open alerts for clean rules).
// root anchors the artifact URIs: absolute finding paths are rewritten
// relative to it, with forward slashes, as %SRCROOT%-based URIs.
// Findings are emitted in SortFindings order.
func EncodeSARIF(findings []Finding, suite Suite, root string) ([]byte, error) {
	SortFindings(findings)

	rules := make([]sarifRule, len(suite))
	index := make(map[string]int, len(suite))
	for i, a := range suite {
		rules[i] = sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			DefaultConfig:    sarifRuleConf{Level: "error"},
		}
		index[a.Name] = i
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, known := index[f.Pass]
		if !known {
			continue // finding from an analyzer outside the suite
		}
		line := f.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based; Finish diags may lack positions
		}
		r := sarifResult{
			RuleID:    f.Pass,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(root, f.File), URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Col},
				},
			}},
		}
		if f.Suppressed {
			r.Suppressions = []sarifSuppression{{
				Kind:          "inSource",
				Justification: "//comtainer:allow " + f.Pass,
			}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "comtainer-vet", Rules: rules}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("analysis: encoding SARIF: %w", err)
	}
	return append(b, '\n'), nil
}

// sarifURI rewrites an absolute finding path as a slash-separated URI
// relative to root; paths outside root (or when root is empty) pass
// through slash-normalized.
func sarifURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) &&
			rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
