package analysis

import (
	"go/ast"
	"go/types"
)

// Taint performs flow-insensitive local taint propagation over one
// function body. It is deliberately simple — sound enough for a
// repository linter backed by suppression comments, with the precision
// coming from the analyzer-supplied predicates.
type Taint struct {
	Info *types.Info

	// Source reports whether expr introduces taint by itself
	// (independent of any local data flow).
	Source func(ast.Expr) bool

	// Propagate reports whether call forwards taint from its
	// arguments to its results (e.g. strings.TrimPrefix).
	Propagate func(*ast.CallExpr) bool

	// Sanitize reports whether call cleanses its arguments: its
	// results are never tainted (e.g. a SafeJoin helper).
	Sanitize func(*ast.CallExpr) bool

	tainted map[types.Object]bool
}

// Run propagates taint through assignments, declarations, and range
// statements in body until a fixed point, then returns a predicate
// reporting whether an expression is tainted.
func (t *Taint) Run(body ast.Node) func(ast.Expr) bool {
	t.tainted = make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		InspectShallow(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if t.assign(s.Lhs, s.Rhs) {
					changed = true
				}
			case *ast.DeclStmt:
				gd, ok := s.Decl.(*ast.GenDecl)
				if !ok {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) == 0 {
						continue
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					if t.assign(lhs, vs.Values) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if t.Tainted(s.X) && s.Value != nil {
					if t.mark(s.Value) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return t.Tainted
}

// assign marks LHS expressions whose RHS counterpart is tainted and
// reports whether anything new was marked.
func (t *Taint) assign(lhs, rhs []ast.Expr) bool {
	changed := false
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if t.Tainted(rhs[i]) && t.mark(lhs[i]) {
				changed = true
			}
		}
	case len(rhs) == 1:
		// Multi-value call or comma-ok: taint every LHS when the
		// single RHS is tainted.
		if t.Tainted(rhs[0]) {
			for _, l := range lhs {
				if t.mark(l) {
					changed = true
				}
			}
		}
	}
	return changed
}

// mark records the object behind an assignable expression as tainted.
func (t *Taint) mark(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.Info.Defs[id]
	if obj == nil {
		obj = t.Info.Uses[id]
	}
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// Tainted reports whether e carries taint.
func (t *Taint) Tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if t.Source != nil && t.Source(e) {
		return true
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := t.Info.Uses[v]
		if obj == nil {
			obj = t.Info.Defs[v]
		}
		return obj != nil && t.tainted[obj]
	case *ast.BinaryExpr:
		return t.Tainted(v.X) || t.Tainted(v.Y)
	case *ast.UnaryExpr:
		return t.Tainted(v.X)
	case *ast.IndexExpr:
		return t.Tainted(v.X)
	case *ast.SliceExpr:
		return t.Tainted(v.X)
	case *ast.CallExpr:
		if t.Sanitize != nil && t.Sanitize(v) {
			return false
		}
		if conv, ok := t.Info.Types[v.Fun]; ok && conv.IsType() && len(v.Args) == 1 {
			return t.Tainted(v.Args[0]) // type conversion passes taint
		}
		if t.Propagate != nil && t.Propagate(v) {
			for _, a := range v.Args {
				if t.Tainted(a) {
					return true
				}
			}
		}
		return false
	}
	return false
}
