package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"comtainer/internal/actioncache"
	"comtainer/internal/digest"
)

// cacheSchema is the on-disk format version; bump to invalidate every
// entry when the entry layout or keying scheme changes. v3: the
// 16-analyzer suite (guardedby, atomicmix), lockorder facts with
// Leaves/Releases summaries, and Diagnostic.Pkg in cached entries.
const cacheSchema = "comtainer-vet-cache/v3"

// defaultCacheCap bounds the vet cache: entries are small JSON
// documents, so 256 MiB is effectively unbounded in practice while
// still guaranteeing an abandoned cache directory cannot grow forever.
const defaultCacheCap = 256 << 20

// Cache replays per-package analysis results keyed by everything that
// can change them: the analyzer suite (names and versions), the Go
// toolchain, the package's source bytes, and — transitively — the
// keys of its in-repo dependencies plus the export data of external
// ones. Storage is an actioncache.DiskCache, reusing its sharded
// layout, atomic writes, digest verify-on-read, and LRU eviction.
type Cache struct {
	disk *actioncache.DiskCache

	// exportHashes memoizes export-data file hashes within one run;
	// many targets import the same dependency.
	exportHashes map[string]digest.Digest
}

// OpenCache opens (creating if needed) a vet cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	disk, err := actioncache.NewDiskCache(dir, defaultCacheCap)
	if err != nil {
		return nil, fmt.Errorf("analysis: opening cache: %w", err)
	}
	return &Cache{disk: disk, exportHashes: make(map[string]digest.Digest)}, nil
}

// DefaultCacheDir returns the cache location used when the caller
// does not choose one: $COMTAINER_VET_CACHE, or comtainer-vet under
// the user cache directory.
func DefaultCacheDir() string {
	if env := os.Getenv("COMTAINER_VET_CACHE"); env != "" {
		return env
	}
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "comtainer-vet")
}

// cacheEntry is one package's serialized contribution to a run:
// its raw (pre-suppression) diagnostics, the facts each analyzer
// exported, and its allow sites, so suppression and whole-program
// steps work without the package's source.
type cacheEntry struct {
	Diags  []Diagnostic               `json:"diags,omitempty"`
	Facts  map[string]json.RawMessage `json:"facts,omitempty"`
	Allows []allowSite                `json:"allows,omitempty"`
}

// key derives the cache key for target t under suite. deps carries
// the key state of already-keyed targets (dependency-first order
// guarantees t's in-repo imports are present); an unkeyable
// dependency makes t unkeyable too.
func (c *Cache) key(t *Target, suite Suite, deps map[string]keyState) (digest.Digest, error) {
	var b strings.Builder
	b.WriteString(cacheSchema)
	b.WriteByte(0)
	b.WriteString(runtime.Version())
	b.WriteByte(0)
	for _, a := range suite {
		v := a.Version
		if v == 0 {
			v = 1
		}
		fmt.Fprintf(&b, "%s@%d\x00", a.Name, v)
	}
	b.WriteString(t.Path)
	b.WriteByte(0)
	b.WriteString(t.Dir)
	b.WriteByte(0)
	for _, name := range t.GoFiles {
		data, err := os.ReadFile(filepath.Join(t.Dir, name))
		if err != nil {
			return "", fmt.Errorf("analysis: keying %s: %w", t.Path, err)
		}
		fmt.Fprintf(&b, "src %s %s\x00", name, digest.FromBytes(data))
	}
	for _, imp := range t.Imports {
		if dep, ok := deps[imp]; ok {
			if !dep.ok {
				return "", fmt.Errorf("analysis: keying %s: dependency %s is unkeyable", t.Path, imp)
			}
			fmt.Fprintf(&b, "dep %s %s\x00", imp, dep.key)
			continue
		}
		h, err := c.exportHash(t.ExportFile(imp))
		if err != nil {
			return "", fmt.Errorf("analysis: keying %s: import %s: %w", t.Path, imp, err)
		}
		fmt.Fprintf(&b, "imp %s %s\x00", imp, h)
	}
	return digest.FromString(b.String()), nil
}

// exportHash hashes one export-data file, memoized per run. Imports
// without export data (only "unsafe" in practice) hash to a marker.
func (c *Cache) exportHash(file string) (digest.Digest, error) {
	if file == "" {
		return digest.FromString("noexport"), nil
	}
	if h, ok := c.exportHashes[file]; ok {
		return h, nil
	}
	f, err := os.Open(file)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h, _, err := digest.FromReader(f)
	if err != nil {
		return "", err
	}
	c.exportHashes[file] = h
	return h, nil
}

// get returns the cached entry under key, or nil on any miss or
// decode failure (the caller re-analyzes and overwrites).
func (c *Cache) get(key digest.Digest) *cacheEntry {
	var entry cacheEntry
	ok, err := actioncache.GetJSON(c.disk, key, &entry)
	if err != nil || !ok {
		return nil
	}
	return &entry
}

// put stores entry under key; failures are deliberately swallowed —
// a broken cache degrades to a cold run, never to a failed one.
func (c *Cache) put(key digest.Digest, entry *cacheEntry) {
	//comtainer:allow errpropagate -- cache writes are best-effort; a failed Put means a cold re-run, not a wrong result
	_ = actioncache.PutJSON(c.disk, key, entry)
}
