package experiments

import (
	"fmt"
	"strings"
)

// CheckResult is one verified claim: a paper-reported quantity, this
// run's measured value, and whether it lands inside the acceptance band.
type CheckResult struct {
	Experiment string
	Claim      string
	Paper      string
	Measured   string
	OK         bool
}

// Check regenerates every experiment and verifies the paper's headline
// claims against the measured output — the artifact-evaluation pass in
// one call. It returns one result per claim; any !OK result means the
// reproduction drifted.
func Check(env *Environment) ([]CheckResult, error) {
	var out []CheckResult
	add := func(exp, claim, paper string, measured float64, lo, hi float64, format string) {
		out = append(out, CheckResult{
			Experiment: exp,
			Claim:      claim,
			Paper:      paper,
			Measured:   fmt.Sprintf(format, measured),
			OK:         measured >= lo && measured <= hi,
		})
	}

	// Figure 3.
	f3, err := Figure3(env)
	if err != nil {
		return nil, err
	}
	add("figure 3", "libo+cxxo time cut, x86-64", "~50%", (1-f3[0].Cxxo/f3[0].Cost)*100, 42, 58, "%.1f%%")
	add("figure 3", "libo+cxxo time cut, aarch64", "~72%", (1-f3[1].Cxxo/f3[1].Cost)*100, 64, 80, "%.1f%%")
	add("figure 3", "extra LTO gain, x86-64", "17.5%", (f3[0].Cxxo/f3[0].LTO-1)*100, 12, 24, "%.1f%%")
	add("figure 3", "extra PGO gain, x86-64", "9.6%", (f3[0].LTO/f3[0].PGO-1)*100, 6, 14, "%.1f%%")

	// Figures 9/10.
	type sysBand struct {
		name               string
		improvLo, improvHi float64
		improvPaper        string
		nativeLo, nativeHi float64
		nativePaper        string
		ltoLo, ltoHi       float64
		ltoPaper           string
		best, worst        string
	}
	bands := []sysBand{
		{"x86-64", 75, 125, "96.3%", 19, 24, "21.35 s", 4, 13, "+8%", "openmx.pt13", "lammps.chain"},
		{"aarch64", 50, 90, "66.5%", 60, 75, "67.0 s", 2, 10, "+5.6%", "lammps.lj", "hpcg"},
	}
	for _, band := range bands {
		rows, err := Figure9(env, band.name)
		if err != nil {
			return nil, err
		}
		a := Averages(rows)
		add("figure 9", "avg improvement, "+band.name, band.improvPaper, a.AvgImprovement*100,
			band.improvLo, band.improvHi, "%.1f%%")
		add("figure 9", "native avg time, "+band.name, band.nativePaper, a.Native,
			band.nativeLo, band.nativeHi, "%.2f s")
		add("figure 9", "adapted within 8% of native, "+band.name, "comparable",
			(a.Adapted/a.Native-1)*100, 0, 8, "+%.1f%%")

		rel := Figure10(rows)
		var sum float64
		best, worst := "", ""
		bestV, worstV := -1e9, 1e9
		for _, r := range rel {
			g := r.Adapted/r.Optimized - 1
			sum += g
			if g > bestV {
				bestV, best = g, r.ID
			}
			if g < worstV {
				worstV, worst = g, r.ID
			}
		}
		add("figure 10", "avg LTO+PGO gain, "+band.name, band.ltoPaper,
			sum/float64(len(rel))*100, band.ltoLo, band.ltoHi, "%.1f%%")
		out = append(out, CheckResult{
			Experiment: "figure 10",
			Claim:      "best workload, " + band.name,
			Paper:      band.best,
			Measured:   best,
			OK:         best == band.best,
		}, CheckResult{
			Experiment: "figure 10",
			Claim:      "worst workload, " + band.name,
			Paper:      band.worst,
			Measured:   worst,
			OK:         worst == band.worst,
		})
	}

	// Table 3.
	t3, err := Table3(env)
	if err != nil {
		return nil, err
	}
	var maxFrac float64
	allX86Bigger := true
	for _, r := range t3 {
		if f := r.Cache / r.ImageX86; f > maxFrac {
			maxFrac = f
		}
		if r.ImageX86 <= r.ImageArm {
			allX86Bigger = false
		}
	}
	add("table 3", "max cache share of x86 image", "7.1%", maxFrac*100, 0, 12, "%.1f%%")
	out = append(out, CheckResult{
		Experiment: "table 3",
		Claim:      "x86 images larger than aarch64",
		Paper:      "yes",
		Measured:   fmt.Sprint(allX86Bigger),
		OK:         allX86Bigger,
	})

	// Figure 11.
	f11, failed, err := Figure11(env)
	if err != nil {
		return nil, err
	}
	var sumC, sumX int
	for _, r := range f11 {
		sumC += r.CoMtainer
		sumX += r.XBuild
	}
	add("figure 11", "cross-ISA capable apps", "many", float64(len(f11)), 6, 8, "%.0f")
	add("figure 11", "effort ratio vs cross-build", "~10%", float64(sumC)/float64(sumX)*100, 5, 20, "%.1f%%")
	out = append(out, CheckResult{
		Experiment: "figure 11",
		Claim:      "ISA-bound apps fail",
		Paper:      "hpl, miniaero, lammps, openmx",
		Measured:   strings.Join(failed, ", "),
		OK:         len(failed) == 4,
	})
	return out, nil
}

// RenderChecks formats check results, returning the text and whether all
// claims passed.
func RenderChecks(results []CheckResult) (string, bool) {
	var b strings.Builder
	ok := true
	b.WriteString("Artifact check: paper claims vs this run\n")
	fmt.Fprintf(&b, "%-10s %-42s %-28s %-22s %s\n", "experiment", "claim", "paper", "measured", "status")
	for _, r := range results {
		status := "ok"
		if !r.OK {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "%-10s %-42s %-28s %-22s %s\n", r.Experiment, r.Claim, r.Paper, r.Measured, status)
	}
	return b.String(), ok
}
