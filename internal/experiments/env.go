// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): the testbed and workload tables (1, 2), the LULESH
// motivation study (Fig. 3), performance retention across all workloads
// and schemes (Fig. 9), relative time with LTO+PGO (Fig. 10), image and
// cache sizes (Table 3) and the cross-ISA study (Fig. 11).
//
// Everything is driven through the real pipeline: images are built with
// the Containerfile engine, extended by the front-end, rebuilt/redirected
// by the backend with adapters, and executed by chrun — a scheme gets its
// performance only if the corresponding transformation actually happened.
package experiments

import (
	"fmt"
	"sync"

	"comtainer/internal/chrun"
	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/workloads"
)

// Schemes of the evaluation (§5.1.3), in presentation order.
const (
	SchemeOriginal  = "original"
	SchemeNative    = "native"
	SchemeAdapted   = "adapted"
	SchemeOptimized = "optimized"
)

// Environment caches the expensive per-(system, app) pipeline work so the
// figures can share it. It is safe for concurrent use; distinct pipelines
// build in parallel.
type Environment struct {
	mu        sync.Mutex
	pipelines map[string]*pipelineEntry
}

// pipelineEntry builds its pipeline exactly once, without holding the
// environment lock.
type pipelineEntry struct {
	once sync.Once
	p    *pipeline
	err  error
}

// NewEnvironment returns an empty experiment environment.
func NewEnvironment() *Environment {
	return &Environment{pipelines: make(map[string]*pipelineEntry)}
}

// pipeline holds everything needed to time one app's schemes on one
// system: the pulled images, the adapted image, and the native build.
// The mutex serializes operations that mutate the system repository's
// tags (PGO loops, Figure-3 stage rebuilds).
type pipeline struct {
	mu      sync.Mutex
	sys     *sysprofile.System
	system  *core.SystemSide
	app     *workloads.App
	distTag string

	origDesc    oci.Descriptor
	adaptedDesc oci.Descriptor

	nativeFS  *fsim.FS
	nativeBin string
}

// Pipeline builds (or returns the cached) pipeline for an app on a system.
// Concurrent callers for the same key share one build; different keys
// build in parallel.
func (e *Environment) Pipeline(sysName, appName string) (*pipeline, error) {
	key := sysName + "/" + appName
	e.mu.Lock()
	entry, ok := e.pipelines[key]
	if !ok {
		entry = &pipelineEntry{}
		e.pipelines[key] = entry
	}
	e.mu.Unlock()
	entry.once.Do(func() {
		entry.p, entry.err = buildPipeline(sysName, appName)
	})
	return entry.p, entry.err
}

// buildPipeline does the heavy per-(system, app) work.
func buildPipeline(sysName, appName string) (*pipeline, error) {
	sys, err := sysprofile.ByName(sysName)
	if err != nil {
		return nil, err
	}
	app, err := workloads.Find(appName)
	if err != nil {
		return nil, err
	}

	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		return nil, err
	}
	// The conventional generic image (original scheme)...
	orig, err := user.BuildOriginal(app)
	if err != nil {
		return nil, fmt.Errorf("experiments: original build of %s: %w", appName, err)
	}
	origDesc, err := user.Repo.Resolve(orig.DistTag)
	if err != nil {
		return nil, err
	}
	origTag := appName + ".orig"
	user.Repo.Tag(origTag, origDesc)
	// ...then the coMtainer extended image (reuses the dist tag).
	ext, err := user.BuildExtended(app)
	if err != nil {
		return nil, fmt.Errorf("experiments: extended build of %s: %w", appName, err)
	}

	system, err := core.NewSystemSide(sys)
	if err != nil {
		return nil, err
	}
	if err := system.Pull(user.Repo, origTag); err != nil {
		return nil, err
	}
	if err := system.Pull(user.Repo, ext.ExtendedTag); err != nil {
		return nil, err
	}
	adaptedTag, err := system.Adapt(ext.DistTag, adapter.DefaultAdapted())
	if err != nil {
		return nil, fmt.Errorf("experiments: adapting %s on %s: %w", appName, sysName, err)
	}
	adaptedDesc, err := system.Repo.Resolve(adaptedTag)
	if err != nil {
		return nil, err
	}

	nativeFS, nativeBin, err := core.NativeBuild(sys, app)
	if err != nil {
		return nil, fmt.Errorf("experiments: native build of %s on %s: %w", appName, sysName, err)
	}

	p := &pipeline{
		sys:         sys,
		system:      system,
		app:         app,
		distTag:     ext.DistTag,
		origDesc:    origDesc,
		adaptedDesc: adaptedDesc,
		nativeFS:    nativeFS,
		nativeBin:   nativeBin,
	}
	return p, nil
}

// SchemeSet holds the four execution times of one workload.
type SchemeSet struct {
	Original  float64
	Native    float64
	Adapted   float64
	Optimized float64
}

// Get returns the time of a named scheme.
func (s SchemeSet) Get(scheme string) (float64, error) {
	switch scheme {
	case SchemeOriginal:
		return s.Original, nil
	case SchemeNative:
		return s.Native, nil
	case SchemeAdapted:
		return s.Adapted, nil
	case SchemeOptimized:
		return s.Optimized, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}
}

// runImage executes an image descriptor from the pipeline's system store.
func (p *pipeline) runImage(desc oci.Descriptor, ref workloads.Ref, nodes int) (float64, error) {
	img, err := oci.LoadImage(p.system.Repo.Store, desc)
	if err != nil {
		return 0, err
	}
	res, err := chrun.RunImage(p.sys, ref, img, nodes)
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// SchemeTimes measures all four schemes for one workload at a node count.
// The optimized scheme runs the full LTO + automated-PGO feedback loop,
// training the profile on the same workload.
func (e *Environment) SchemeTimes(sysName string, ref workloads.Ref, nodes int) (SchemeSet, error) {
	p, err := e.Pipeline(sysName, ref.App.Name)
	if err != nil {
		return SchemeSet{}, err
	}
	var out SchemeSet
	if out.Original, err = p.runImage(p.origDesc, ref, nodes); err != nil {
		return SchemeSet{}, fmt.Errorf("experiments: %s original: %w", ref.ID(), err)
	}
	nat, err := chrun.RunFS(p.sys, ref, p.nativeFS, p.nativeBin, nodes)
	if err != nil {
		return SchemeSet{}, fmt.Errorf("experiments: %s native: %w", ref.ID(), err)
	}
	out.Native = nat.Seconds
	if out.Adapted, err = p.runImage(p.adaptedDesc, ref, nodes); err != nil {
		return SchemeSet{}, fmt.Errorf("experiments: %s adapted: %w", ref.ID(), err)
	}
	// Optimized: LTO plus the PGO loop trained on this workload. The loop
	// rewrites the pipeline's redirect tag, so refs of the same app
	// serialize here while different apps proceed in parallel.
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.system.PGOLoop(p.distTag, adapter.DefaultOptimized(), ref, nodes); err != nil {
		return SchemeSet{}, fmt.Errorf("experiments: %s PGO loop: %w", ref.ID(), err)
	}
	optRes, err := p.system.Run(p.distTag+".redirect", ref, nodes)
	if err != nil {
		return SchemeSet{}, fmt.Errorf("experiments: %s optimized: %w", ref.ID(), err)
	}
	out.Optimized = optRes.Seconds
	return out, nil
}
