package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CSV writers give every regenerated table and figure a machine-readable
// form, so the results can be re-plotted against the paper's charts.

// writeCSV writes rows (first row = header) to path, creating parents.
func writeCSV(path string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("experiments: creating %s: %w", filepath.Dir(path), err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: creating %s: %w", path, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: writing %s: %w", path, err)
	}
	w.Flush()
	return w.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// Figure3CSV writes the motivation-study series.
func Figure3CSV(rows []Figure3Row, path string) error {
	out := [][]string{{"system", "cost_s", "libo_s", "cxxo_s", "lto_s", "pgo_s"}}
	for _, r := range rows {
		out = append(out, []string{r.System, f2s(r.Cost), f2s(r.Libo), f2s(r.Cxxo), f2s(r.LTO), f2s(r.PGO)})
	}
	return writeCSV(path, out)
}

// Figure9CSV writes one system's scheme times.
func Figure9CSV(sysName string, rows []Fig9Row, path string) error {
	out := [][]string{{"system", "workload", "original_s", "native_s", "adapted_s", "optimized_s"}}
	for _, r := range rows {
		out = append(out, []string{sysName, r.ID, f2s(r.Original), f2s(r.Native), f2s(r.Adapted), f2s(r.Optimized)})
	}
	return writeCSV(path, out)
}

// Figure10CSV writes one system's relative times.
func Figure10CSV(sysName string, rows []Fig10Row, path string) error {
	out := [][]string{{"system", "workload", "original_rel", "adapted_rel", "optimized_rel"}}
	for _, r := range rows {
		out = append(out, []string{sysName, r.ID, f2s(r.Original), f2s(r.Adapted), f2s(r.Optimized)})
	}
	return writeCSV(path, out)
}

// Table3CSV writes the size table.
func Table3CSV(rows []Table3Row, path string) error {
	out := [][]string{{"app", "image_x86_mib", "image_arm_mib", "cache_mib"}}
	for _, r := range rows {
		out = append(out, []string{r.App, f2s(r.ImageX86), f2s(r.ImageArm), f2s(r.Cache)})
	}
	return writeCSV(path, out)
}

// Figure11CSV writes the cross-ISA line-change table.
func Figure11CSV(rows []Fig11Row, failed []string, path string) error {
	out := [][]string{{"app", "comtainer_lines", "xbuild_lines", "crossed"}}
	for _, r := range rows {
		out = append(out, []string{r.App, strconv.Itoa(r.CoMtainer), strconv.Itoa(r.XBuild), "true"})
	}
	for _, app := range failed {
		out = append(out, []string{app, "", "", "false"})
	}
	return writeCSV(path, out)
}

// ExportAll regenerates everything and writes one CSV per table/figure
// into dir. It returns the files written.
func ExportAll(env *Environment, dir string) ([]string, error) {
	var written []string
	add := func(name string, err error) error {
		if err != nil {
			return err
		}
		written = append(written, filepath.Join(dir, name))
		return nil
	}

	f3, err := Figure3(env)
	if err != nil {
		return nil, err
	}
	if err := add("figure3.csv", Figure3CSV(f3, filepath.Join(dir, "figure3.csv"))); err != nil {
		return nil, err
	}
	for _, sysName := range []string{"x86-64", "aarch64"} {
		rows, err := Figure9(env, sysName)
		if err != nil {
			return nil, err
		}
		slug := strings.ReplaceAll(sysName, "-", "")
		n9 := "figure9_" + slug + ".csv"
		if err := add(n9, Figure9CSV(sysName, rows, filepath.Join(dir, n9))); err != nil {
			return nil, err
		}
		n10 := "figure10_" + slug + ".csv"
		if err := add(n10, Figure10CSV(sysName, Figure10(rows), filepath.Join(dir, n10))); err != nil {
			return nil, err
		}
	}
	t3, err := Table3(env)
	if err != nil {
		return nil, err
	}
	if err := add("table3.csv", Table3CSV(t3, filepath.Join(dir, "table3.csv"))); err != nil {
		return nil, err
	}
	f11, failed, err := Figure11(env)
	if err != nil {
		return nil, err
	}
	if err := add("figure11.csv", Figure11CSV(f11, failed, filepath.Join(dir, "figure11.csv"))); err != nil {
		return nil, err
	}
	return written, nil
}
