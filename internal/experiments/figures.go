package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/core/cache"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// RefByID finds a workload reference by its paper-style id.
func RefByID(id string) (workloads.Ref, error) {
	for _, r := range workloads.AllRefs() {
		if r.ID() == id {
			return r, nil
		}
	}
	return workloads.Ref{}, fmt.Errorf("experiments: unknown workload %q", id)
}

// --- Figure 3: the LULESH motivation study ---

// Figure3Row is one system's incremental-optimization series: the generic
// image cost, then library replacement, toolchain swap, LTO and PGO
// applied cumulatively, all on a single node.
type Figure3Row struct {
	System string
	Cost   float64 // generic image (COST in the paper's figure)
	Libo   float64 // + optimized libraries
	Cxxo   float64 // + native toolchain
	LTO    float64 // + link-time optimization
	PGO    float64 // + profile-guided optimization
}

// Figure3 regenerates the motivation study on both systems.
func Figure3(env *Environment) ([]Figure3Row, error) {
	ref, err := RefByID("lulesh")
	if err != nil {
		return nil, err
	}
	var out []Figure3Row
	for _, sys := range sysprofile.Both() {
		p, err := env.Pipeline(sys.Name, "lulesh")
		if err != nil {
			return nil, err
		}
		row := Figure3Row{System: sys.Name}
		p.mu.Lock()
		if row.Cost, err = p.runImage(p.origDesc, ref, 1); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		// libo alone: optimized libraries, but the binary stays a stock-
		// toolchain build — the rebuild runs under the generic registry.
		runStage := func(adapters []adapter.Adapter, generic bool) (float64, error) {
			reg := sys.Toolchains
			if generic {
				reg = sys.GenericToolchains
			}
			if _, _, err := p.system.RebuildWith(p.distTag, adapters, nil, reg); err != nil {
				return 0, err
			}
			if _, err := p.system.Redirect(p.distTag); err != nil {
				return 0, err
			}
			return p.runTagged(ref, 1)
		}
		if row.Libo, err = runStage([]adapter.Adapter{adapter.Libo()}, true); err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("figure 3 libo: %w", err)
		}
		if row.Cxxo, err = runStage(adapter.DefaultAdapted(), false); err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("figure 3 cxxo: %w", err)
		}
		if row.LTO, err = runStage(adapter.DefaultOptimized(), false); err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("figure 3 lto: %w", err)
		}
		if err := p.system.PGOLoop(p.distTag, adapter.DefaultOptimized(), ref, 1); err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("figure 3 pgo: %w", err)
		}
		if row.PGO, err = p.runTagged(ref, 1); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		p.mu.Unlock()
		out = append(out, row)
	}
	return out, nil
}

// runTagged runs the current <dist>.redirect image.
func (p *pipeline) runTagged(ref workloads.Ref, nodes int) (float64, error) {
	res, err := p.system.Run(p.distTag+".redirect", ref, nodes)
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// RenderFigure3 formats the rows for terminal output.
func RenderFigure3(rows []Figure3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: LULESH single-node performance, generic image vs incremental native optimizations\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %10s\n", "system", "cost(s)", "libo(s)", "cxxo(s)", "lto(s)", "pgo(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			r.System, r.Cost, r.Libo, r.Cxxo, r.LTO, r.PGO)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s: libo+cxxo cut time by %.0f%%; lto adds %.1f%%, pgo adds %.1f%%\n",
			r.System,
			(1-r.Cxxo/r.Cost)*100,
			(r.Cxxo/r.LTO-1)*100,
			(r.LTO/r.PGO-1)*100)
	}
	return b.String()
}

// --- Figures 9 and 10: performance retention and optimization ---

// Fig9Row is one workload's four scheme times.
type Fig9Row struct {
	ID string
	SchemeSet
}

// Figure9 measures all workloads under all four schemes on one system at
// the paper's full 16-node scale. Workloads are measured concurrently
// (bounded by the CPU count); refs of the same application serialize on
// their pipeline.
func Figure9(env *Environment, sysName string) ([]Fig9Row, error) {
	refs := workloads.AllRefs()
	rows := make([]Fig9Row, len(refs))
	errs := make([]error, len(refs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, ref := range refs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, ref workloads.Ref) {
			defer wg.Done()
			defer func() { <-sem }()
			times, err := env.SchemeTimes(sysName, ref, 16)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = Fig9Row{ID: ref.ID(), SchemeSet: times}
		}(i, ref)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig9Averages summarizes a system's rows the way §5.2 reports them.
type Fig9Averages struct {
	Original, Native, Adapted, Optimized float64
	// AvgImprovement is the mean of per-workload (original/native - 1).
	AvgImprovement float64
}

// Averages computes the Figure-9 summary statistics.
func Averages(rows []Fig9Row) Fig9Averages {
	var a Fig9Averages
	for _, r := range rows {
		a.Original += r.Original
		a.Native += r.Native
		a.Adapted += r.Adapted
		a.Optimized += r.Optimized
		a.AvgImprovement += r.Original/r.Native - 1
	}
	n := float64(len(rows))
	if n == 0 {
		return a
	}
	a.Original /= n
	a.Native /= n
	a.Adapted /= n
	a.Optimized /= n
	a.AvgImprovement /= n
	return a
}

// RenderFigure9 formats one system's rows.
func RenderFigure9(sysName string, rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 (%s): execution time (s) per workload and scheme, 16 nodes\n", sysName)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s\n", "workload", "original", "native", "adapted", "optimized")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f %10.2f\n",
			r.ID, r.Original, r.Native, r.Adapted, r.Optimized)
	}
	a := Averages(rows)
	fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f %10.2f\n", "average", a.Original, a.Native, a.Adapted, a.Optimized)
	fmt.Fprintf(&b, "avg native-vs-original improvement: %.1f%%\n", a.AvgImprovement*100)
	return b.String()
}

// Fig10Row is one workload's times relative to native.
type Fig10Row struct {
	ID        string
	Original  float64
	Adapted   float64
	Optimized float64
}

// Figure10 derives the relative-time view from Figure-9 rows.
func Figure10(rows []Fig9Row) []Fig10Row {
	out := make([]Fig10Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Fig10Row{
			ID:        r.ID,
			Original:  r.Original / r.Native,
			Adapted:   r.Adapted / r.Native,
			Optimized: r.Optimized / r.Native,
		})
	}
	return out
}

// RenderFigure10 formats the relative rows and the §5.3 summary deltas.
func RenderFigure10(sysName string, rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 (%s): execution time relative to native (lower is better)\n", sysName)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", "workload", "original", "adapted", "optimized")
	var sumOptVsAdapted, sumOptVsNative float64
	best, worst := rows[0], rows[0]
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.3f %10.3f %10.3f\n", r.ID, r.Original, r.Adapted, r.Optimized)
		sumOptVsAdapted += r.Adapted/r.Optimized - 1
		sumOptVsNative += 1/r.Optimized - 1
		if r.Adapted/r.Optimized > best.Adapted/best.Optimized {
			best = r
		}
		if r.Adapted/r.Optimized < worst.Adapted/worst.Optimized {
			worst = r
		}
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "LTO+PGO vs adapted: avg %+.1f%% (best %s %+.1f%%, worst %s %+.1f%%)\n",
		sumOptVsAdapted/n*100,
		best.ID, (best.Adapted/best.Optimized-1)*100,
		worst.ID, (worst.Adapted/worst.Optimized-1)*100)
	fmt.Fprintf(&b, "optimized vs native: avg %+.1f%%\n", sumOptVsNative/n*100)
	return b.String()
}

// --- Figure 11: cross-ISA ---

// Fig11Row is one application's build-script line-change effort under the
// two approaches.
type Fig11Row struct {
	App string
	// CoMtainer is the measured change count when coMtainer crosses the
	// ISA: the FROM lines of the two stages plus every build command its
	// cross-ISA adapter had to rewrite.
	CoMtainer int
	// XBuild is the traditional cross-compilation effort (paper-reported;
	// see DESIGN.md).
	XBuild int
}

// Figure11 pulls every x86-64 extended image onto the AArch64 system and
// attempts the cross-ISA rebuild, measuring the script-change effort for
// the apps that succeed and confirming the ISA-bound apps fail.
func Figure11(env *Environment) ([]Fig11Row, []string, error) {
	armSys := sysprofile.ArmCluster()
	var rows []Fig11Row
	var failed []string
	for _, app := range workloads.Apps() {
		user, err := core.NewUserSide(toolchain.ISAx86)
		if err != nil {
			return nil, nil, err
		}
		res, err := user.BuildExtended(app)
		if err != nil {
			return nil, nil, fmt.Errorf("figure 11: building %s: %w", app.Name, err)
		}
		system, err := core.NewSystemSide(armSys)
		if err != nil {
			return nil, nil, err
		}
		if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
			return nil, nil, err
		}
		chain := append([]adapter.Adapter{adapter.CrossISA()}, adapter.DefaultAdapted()...)
		_, report, err := system.Rebuild(res.DistTag, chain, nil)
		if err != nil {
			failed = append(failed, app.Name)
			continue
		}
		if _, err := system.Redirect(res.DistTag); err != nil {
			return nil, nil, fmt.Errorf("figure 11: redirecting %s: %w", app.Name, err)
		}
		// Verify the crossed image actually runs on the ARM cluster.
		ref := workloads.Ref{App: app, Workload: app.Workloads[0]}
		if _, err := system.Run(res.DistTag+".redirect", ref, 16); err != nil {
			return nil, nil, fmt.Errorf("figure 11: crossed %s does not run: %w", app.Name, err)
		}
		rows = append(rows, Fig11Row{
			App: app.Name,
			// Two FROM lines (Env and Base images switch to the target
			// ISA's) plus each build command line the *cross-ISA* adapter
			// had to rewrite — the cxxo retune is transparent and costs
			// the user no script edits.
			CoMtainer: 2 + report.PerAdapter[adapter.CrossISA().Name()],
			XBuild:    app.XBuildLines,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].App < rows[j].App })
	sort.Strings(failed)
	return rows, failed, nil
}

// RenderFigure11 formats the rows and the headline ratio.
func RenderFigure11(rows []Fig11Row, failed []string) string {
	var b strings.Builder
	b.WriteString("Figure 11: build-script line changes to cross ISA (x86-64 image -> AArch64 system)\n")
	fmt.Fprintf(&b, "%-10s %12s %10s\n", "app", "comtainer", "xbuild")
	var sumC, sumX int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %10d\n", r.App, r.CoMtainer, r.XBuild)
		sumC += r.CoMtainer
		sumX += r.XBuild
	}
	if len(rows) > 0 {
		avgC := float64(sumC) / float64(len(rows))
		avgX := float64(sumX) / float64(len(rows))
		fmt.Fprintf(&b, "%-10s %12.1f %10.1f  (coMtainer needs %.0f%% of the cross-build effort)\n",
			"average", avgC, avgX, avgC/avgX*100)
	}
	fmt.Fprintf(&b, "not cross-ISA capable (unguarded ISA-specific code): %s\n", strings.Join(failed, ", "))
	return b.String()
}

// --- Table 3: image and cache-layer sizes ---

// Table3Row is one application's size accounting, in simulated MiB.
type Table3Row struct {
	App      string
	ImageX86 float64
	ImageArm float64
	Cache    float64
}

// imageMiB measures an image's content size (flattened file bytes) in
// simulated MiB — the figure a `docker images`-style size column reports.
func imageMiB(repo *oci.Repository, tag string) (float64, error) {
	img, err := repo.LoadByTag(tag)
	if err != nil {
		return 0, err
	}
	flat, err := img.Flatten()
	if err != nil {
		return 0, err
	}
	return float64(flat.TotalSize()) / sysprofile.SizeUnit, nil
}

// Table3 builds every Table-3 app's original image on both ISAs plus its
// extended image, and reports the sizes.
func Table3(env *Environment) ([]Table3Row, error) {
	// Table 3 lists these nine apps (minife/minimd are omitted in the
	// paper's table as well).
	names := []string{"comd", "hpccg", "hpcg", "hpl", "lulesh", "miniaero", "miniamr", "lammps", "openmx"}
	var rows []Table3Row
	for _, name := range names {
		app, err := workloads.Find(name)
		if err != nil {
			return nil, err
		}
		row := Table3Row{App: name}
		for _, isa := range []string{toolchain.ISAx86, toolchain.ISAArm} {
			user, err := core.NewUserSide(isa)
			if err != nil {
				return nil, err
			}
			res, err := user.BuildExtended(app)
			if err != nil {
				return nil, fmt.Errorf("table 3: building %s on %s: %w", name, isa, err)
			}
			size, err := imageMiB(user.Repo, res.DistTag)
			if err != nil {
				return nil, err
			}
			if isa == toolchain.ISAx86 {
				row.ImageX86 = size
				extDesc, err := user.Repo.Resolve(res.ExtendedTag)
				if err != nil {
					return nil, err
				}
				cacheBytes, err := cache.ContentSize(user.Repo, extDesc)
				if err != nil {
					return nil, err
				}
				row.Cache = float64(cacheBytes) / sysprofile.SizeUnit
			} else {
				row.ImageArm = size
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats the size table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: size (simulated MiB) of original images and cache layers\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %8s %9s\n", "app", "image(x86-64)", "image(aarch64)", "cache", "cache/img")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.2f %14.2f %8.2f %8.1f%%\n",
			r.App, r.ImageX86, r.ImageArm, r.Cache, r.Cache/r.ImageX86*100)
	}
	return b.String()
}

// --- Tables 1 and 2 ---

// RenderTable1 formats the testbed table.
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: HPC systems\n")
	fmt.Fprintf(&b, "%-8s %-38s %-8s %-30s %s\n", "system", "CPU", "RAM", "OS", "nodes")
	for _, r := range sysprofile.Table1() {
		fmt.Fprintf(&b, "%-8s %-38s %-8s %-30s %d\n", r.System, r.CPU, r.RAM, r.OS, r.Nodes)
	}
	return b.String()
}

// RenderTable2 formats the workload table.
func RenderTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: workloads used in evaluation\n")
	fmt.Fprintf(&b, "%-10s %-10s %10s\n", "app", "workload", "LoC")
	for _, r := range workloads.Table2() {
		fmt.Fprintf(&b, "%-10s %-10s %10d\n", r.App, r.Workload, r.LoC)
	}
	return b.String()
}
