package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The environment is shared across tests in this package: pipelines are
// cached, so building it once keeps the suite fast.
var env = NewEnvironment()

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Monotone improvement through the incremental optimizations
		// (lto/pgo are positive for lulesh on both systems).
		if !(r.Cost > r.Libo && r.Libo > r.Cxxo && r.Cxxo > r.LTO && r.LTO > r.PGO) {
			t.Errorf("%s: not monotone: %+v", r.System, r)
		}
	}
	// Paper: libo+cxxo cut ~50% on x86-64 and ~72% on AArch64.
	for _, c := range []struct {
		idx    int
		lo, hi float64
	}{{0, 0.42, 0.58}, {1, 0.64, 0.80}} {
		cut := 1 - rows[c.idx].Cxxo/rows[c.idx].Cost
		if cut < c.lo || cut > c.hi {
			t.Errorf("%s: libo+cxxo cut = %.1f%%, want in [%v, %v]",
				rows[c.idx].System, cut*100, c.lo*100, c.hi*100)
		}
	}
	// Paper: LTO ~17.5% and PGO ~9.6% extra on x86-64.
	x := rows[0]
	if lto := x.Cxxo/x.LTO - 1; lto < 0.12 || lto > 0.24 {
		t.Errorf("x86 LTO gain = %.3f, want ~0.175", lto)
	}
	if pgo := x.LTO/x.PGO - 1; pgo < 0.06 || pgo > 0.14 {
		t.Errorf("x86 PGO gain = %.3f, want ~0.096", pgo)
	}
	out := RenderFigure3(rows)
	if !strings.Contains(out, "lulesh") && !strings.Contains(out, "x86-64") {
		t.Errorf("render output: %s", out)
	}
}

// figure9 caches the full 18-workload sweep per system for the tests.
var fig9Cache = map[string][]Fig9Row{}

func figure9(t *testing.T, sysName string) []Fig9Row {
	t.Helper()
	if rows, ok := fig9Cache[sysName]; ok {
		return rows
	}
	rows, err := Figure9(env, sysName)
	if err != nil {
		t.Fatal(err)
	}
	fig9Cache[sysName] = rows
	return rows
}

func TestFigure9X86Shape(t *testing.T) {
	rows := figure9(t, "x86-64")
	if len(rows) != 18 {
		t.Fatalf("rows = %d", len(rows))
	}
	a := Averages(rows)
	// Paper: ~96.3% average improvement; adapted ≈ native (22.0 vs 21.35).
	if a.AvgImprovement < 0.75 || a.AvgImprovement > 1.25 {
		t.Errorf("avg improvement = %.3f, want ~0.96", a.AvgImprovement)
	}
	if a.Adapted < a.Native || a.Adapted > a.Native*1.08 {
		t.Errorf("adapted avg %.2f vs native avg %.2f: not comparable", a.Adapted, a.Native)
	}
	if a.Native < 19 || a.Native > 24 {
		t.Errorf("native avg = %.2f, want ~21.35", a.Native)
	}
	byID := map[string]Fig9Row{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	// hpccg is the lone workload where native/adapted regress.
	for id, r := range byID {
		slower := r.Adapted > r.Original
		if id == "hpccg" && !slower {
			t.Error("hpccg should regress under adaptation on x86-64")
		}
		if id != "hpccg" && slower {
			t.Errorf("%s: adapted slower than original", id)
		}
	}
	// lammps.eam carries the maximum improvement (+253%).
	eam := byID["lammps.eam"]
	if imp := eam.Original/eam.Native - 1; imp < 2.0 {
		t.Errorf("lammps.eam improvement = %.2f, want ~2.53", imp)
	}
}

func TestFigure9ArmShape(t *testing.T) {
	rows := figure9(t, "aarch64")
	a := Averages(rows)
	// Paper: ~66.5% average improvement, native avg ~67s.
	if a.AvgImprovement < 0.5 || a.AvgImprovement > 0.9 {
		t.Errorf("avg improvement = %.3f, want ~0.665", a.AvgImprovement)
	}
	if a.Native < 60 || a.Native > 75 {
		t.Errorf("native avg = %.2f, want ~67", a.Native)
	}
	// lulesh: the +231% communication-dominated anchor.
	for _, r := range rows {
		if r.ID == "lulesh" {
			if imp := r.Original/r.Native - 1; imp < 1.8 || imp > 3.0 {
				t.Errorf("lulesh aarch64 improvement = %.2f, want ~2.31", imp)
			}
		}
	}
	out := RenderFigure9("aarch64", rows)
	if !strings.Contains(out, "lulesh") || !strings.Contains(out, "average") {
		t.Error("render output incomplete")
	}
}

func TestFigure10Shape(t *testing.T) {
	for _, sysName := range []string{"x86-64", "aarch64"} {
		rows9 := figure9(t, sysName)
		rows := Figure10(rows9)
		var sum float64
		best, worst := "", ""
		bestV, worstV := -1e9, 1e9
		for _, r := range rows {
			gain := r.Adapted/r.Optimized - 1
			sum += gain
			if gain > bestV {
				bestV, best = gain, r.ID
			}
			if gain < worstV {
				worstV, worst = gain, r.ID
			}
		}
		avg := sum / float64(len(rows))
		switch sysName {
		case "x86-64":
			// Paper: +8% avg; best openmx.pt13 (+30.4%), worst lammps.chain (-12.1%).
			if avg < 0.04 || avg > 0.13 {
				t.Errorf("x86 avg LTO+PGO gain = %.3f, want ~0.08", avg)
			}
			if best != "openmx.pt13" {
				t.Errorf("x86 best = %s (%.3f), want openmx.pt13", best, bestV)
			}
			if worst != "lammps.chain" || worstV > -0.05 {
				t.Errorf("x86 worst = %s (%.3f), want lammps.chain ~-0.12", worst, worstV)
			}
		case "aarch64":
			// Paper: +5.6% avg; best lammps.lj (+17.7%), worst hpcg (-14.9%).
			if avg < 0.02 || avg > 0.10 {
				t.Errorf("arm avg LTO+PGO gain = %.3f, want ~0.056", avg)
			}
			if best != "lammps.lj" {
				t.Errorf("arm best = %s (%.3f), want lammps.lj", best, bestV)
			}
			if worst != "hpcg" || worstV > -0.08 {
				t.Errorf("arm worst = %s (%.3f), want hpcg ~-0.149", worst, worstV)
			}
		}
		out := RenderFigure10(sysName, rows)
		if !strings.Contains(out, "LTO+PGO vs adapted") {
			t.Error("render output incomplete")
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// x86 images are substantially larger than aarch64 (bloated stack).
		if r.ImageX86 <= r.ImageArm {
			t.Errorf("%s: x86 image (%.1f) not larger than arm (%.1f)", r.App, r.ImageX86, r.ImageArm)
		}
		// Cache layer stays a small fraction of the image (≤ ~7.1% on x86).
		frac := r.Cache / r.ImageX86
		if frac > 0.12 {
			t.Errorf("%s: cache fraction = %.1f%%", r.App, frac*100)
		}
		if r.Cache <= 0 {
			t.Errorf("%s: empty cache layer", r.App)
		}
	}
	byApp := map[string]Table3Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// The large applications dominate the cache sizes (lammps ~14.4,
	// openmx ~24.0 in the paper's units).
	if byApp["lammps"].Cache < 10 || byApp["openmx"].Cache < 18 {
		t.Errorf("large-app caches: lammps %.2f openmx %.2f", byApp["lammps"].Cache, byApp["openmx"].Cache)
	}
	if byApp["comd"].Cache > 2 {
		t.Errorf("comd cache = %.2f, want < 2", byApp["comd"].Cache)
	}
	// Benchmarks' x86 images cluster near the paper's ~170 scale.
	if byApp["comd"].ImageX86 < 150 || byApp["comd"].ImageX86 > 190 {
		t.Errorf("comd x86 image = %.2f, want ~170", byApp["comd"].ImageX86)
	}
	// lammps and openmx ship data, so their images are bigger.
	if byApp["lammps"].ImageX86 < byApp["comd"].ImageX86+20 {
		t.Error("lammps image not visibly larger than comd's")
	}
	if byApp["openmx"].ImageX86 < byApp["lammps"].ImageX86+100 {
		t.Error("openmx image not visibly larger than lammps's")
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "openmx") {
		t.Error("render output incomplete")
	}
}

func TestFigure11Shape(t *testing.T) {
	rows, failed, err := Figure11(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Errorf("capable apps = %d, want 7: %+v", len(rows), rows)
	}
	failedSet := map[string]bool{}
	for _, f := range failed {
		failedSet[f] = true
	}
	for _, want := range []string{"hpl", "miniaero", "lammps", "openmx"} {
		if !failedSet[want] {
			t.Errorf("%s should fail to cross ISA", want)
		}
	}
	var sumC, sumX int
	for _, r := range rows {
		if r.CoMtainer <= 0 || r.XBuild <= 0 {
			t.Errorf("%s: degenerate row %+v", r.App, r)
		}
		if r.CoMtainer >= r.XBuild {
			t.Errorf("%s: coMtainer (%d) not cheaper than xbuild (%d)", r.App, r.CoMtainer, r.XBuild)
		}
		sumC += r.CoMtainer
		sumX += r.XBuild
	}
	// Paper: ~5 lines vs ~47 (about 10% of the effort).
	ratio := float64(sumC) / float64(sumX)
	if ratio < 0.05 || ratio > 0.2 {
		t.Errorf("effort ratio = %.3f, want ~0.10", ratio)
	}
	out := RenderFigure11(rows, failed)
	if !strings.Contains(out, "average") {
		t.Error("render output incomplete")
	}
}

func TestTables1And2Render(t *testing.T) {
	t1 := RenderTable1()
	if !strings.Contains(t1, "8358P") || !strings.Contains(t1, "Kylin") {
		t.Errorf("table 1: %s", t1)
	}
	t2 := RenderTable2()
	if !strings.Contains(t2, "lammps") || !strings.Contains(t2, "2273423") {
		t.Errorf("table 2: %s", t2)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	files, err := ExportAll(env, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 7 {
		t.Fatalf("wrote %d files: %v", len(files), files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", f, lines)
		}
	}
	// Spot-check one file's shape.
	data, err := os.ReadFile(filepath.Join(dir, "figure9_x8664.csv"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "system,workload,original_s,native_s,adapted_s,optimized_s\n") {
		t.Errorf("header: %q", strings.SplitN(text, "\n", 2)[0])
	}
	if !strings.Contains(text, "lammps.eam") {
		t.Error("figure9 CSV missing workloads")
	}
}

func TestCheckAllClaimsPass(t *testing.T) {
	results, err := Check(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 20 {
		t.Errorf("only %d claims checked", len(results))
	}
	text, ok := RenderChecks(results)
	if !ok {
		t.Errorf("artifact check failed:\n%s", text)
	}
	if !strings.Contains(text, "openmx.pt13") {
		t.Error("render incomplete")
	}
}

func TestSchemeSetGet(t *testing.T) {
	s := SchemeSet{Original: 1, Native: 2, Adapted: 3, Optimized: 4}
	for scheme, want := range map[string]float64{
		SchemeOriginal: 1, SchemeNative: 2, SchemeAdapted: 3, SchemeOptimized: 4,
	} {
		got, err := s.Get(scheme)
		if err != nil || got != want {
			t.Errorf("Get(%s) = %f, %v", scheme, got, err)
		}
	}
	if _, err := s.Get("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}
