package dpkg

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"

	"comtainer/internal/fsim"
)

// Locations of the dpkg database inside an image file system.
const (
	StatusPath = "/var/lib/dpkg/status"
	InfoDir    = "/var/lib/dpkg/info"
)

// DB is the set of packages installed in an image, as recorded by the
// status file and per-package file lists.
type DB struct {
	packages map[string]*Package
	// owner maps each installed file path to the owning package name.
	owner map[string]string
}

// NewDB returns an empty installed-package database.
func NewDB() *DB {
	return &DB{packages: make(map[string]*Package), owner: make(map[string]string)}
}

// Installed returns the installed package with the given name.
func (db *DB) Installed(name string) (*Package, bool) {
	p, ok := db.packages[name]
	return p, ok
}

// Names returns the sorted names of all installed packages.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.packages))
	for n := range db.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of installed packages.
func (db *DB) Len() int { return len(db.packages) }

// OwnerOf returns the package owning path, if any.
func (db *DB) OwnerOf(path string) (string, bool) {
	name, ok := db.owner[fsim.Clean(path)]
	return name, ok
}

// checkConflicts verifies pkg can coexist with the installed set: nothing
// installed satisfies pkg's Conflicts, and pkg satisfies no installed
// package's Conflicts. Upgrades of the same name are exempt.
func (db *DB) checkConflicts(pkg *Package) error {
	for _, c := range pkg.Conflicts {
		if c.Name == pkg.Name {
			continue
		}
		if cur, ok := db.packages[c.Name]; ok && cur.Satisfies(c) {
			return fmt.Errorf("dpkg: %s conflicts with installed %s %s", pkg.Name, cur.Name, cur.Version)
		}
	}
	for _, cur := range db.packages {
		if cur.Name == pkg.Name {
			continue
		}
		for _, c := range cur.Conflicts {
			if pkg.Satisfies(c) {
				return fmt.Errorf("dpkg: installed %s conflicts with %s %s", cur.Name, pkg.Name, pkg.Version)
			}
		}
	}
	return nil
}

// Install writes pkg's files into fsys, records them in the db, and updates
// the on-image status database. It does not resolve dependencies — use
// InstallWithDeps for that.
func (db *DB) Install(fsys *fsim.FS, pkg *Package) error {
	if err := db.checkConflicts(pkg); err != nil {
		return err
	}
	if existing, ok := db.packages[pkg.Name]; ok {
		// Reinstalling replaces: drop old file ownership and files that the
		// new version no longer ships.
		newPaths := make(map[string]bool, len(pkg.Files))
		for _, f := range pkg.Files {
			newPaths[fsim.Clean(f.Path)] = true
		}
		for _, f := range existing.Files {
			p := fsim.Clean(f.Path)
			delete(db.owner, p)
			if !newPaths[p] && fsys.Exists(p) {
				if err := fsys.Remove(p); err != nil {
					return fmt.Errorf("dpkg: removing stale file %s: %w", p, err)
				}
			}
		}
	}
	var list []string
	for _, f := range pkg.Files {
		p := fsim.Clean(f.Path)
		if f.Link != "" {
			fsys.Symlink(f.Link, p)
		} else {
			fsys.WriteFile(p, f.Data, fs.FileMode(f.Mode))
		}
		db.owner[p] = pkg.Name
		list = append(list, p)
	}
	db.packages[pkg.Name] = pkg
	sort.Strings(list)
	fsys.WriteFile(InfoDir+"/"+pkg.Name+".list", []byte(strings.Join(list, "\n")+"\n"), 0o644)
	return db.writeStatus(fsys)
}

// InstallWithDeps resolves pkg's dependency closure against idx and
// installs everything in topological order, then pkg itself.
func (db *DB) InstallWithDeps(fsys *fsim.FS, idx *Index, pkg *Package) error {
	order, err := idx.Resolve(pkg.Depends)
	if err != nil {
		return fmt.Errorf("dpkg: resolving dependencies of %s: %w", pkg.Name, err)
	}
	for _, dep := range order {
		if cur, ok := db.packages[dep.Name]; ok && !cur.Version.Less(dep.Version) {
			continue
		}
		if err := db.Install(fsys, dep); err != nil {
			return err
		}
	}
	return db.Install(fsys, pkg)
}

// Remove deletes pkg's files from fsys and the database.
func (db *DB) Remove(fsys *fsim.FS, name string) error {
	pkg, ok := db.packages[name]
	if !ok {
		return fmt.Errorf("dpkg: package %s is not installed", name)
	}
	for _, f := range pkg.Files {
		p := fsim.Clean(f.Path)
		delete(db.owner, p)
		if fsys.Exists(p) {
			if err := fsys.Remove(p); err != nil {
				return err
			}
		}
	}
	delete(db.packages, name)
	if err := fsys.Remove(InfoDir + "/" + name + ".list"); err != nil && !errors.Is(err, fsim.ErrNotExist) {
		return fmt.Errorf("dpkg: removing file list of %s: %w", name, err)
	}
	return db.writeStatus(fsys)
}

// writeStatus serializes the database as control stanzas to StatusPath.
func (db *DB) writeStatus(fsys *fsim.FS) error {
	var b strings.Builder
	for _, name := range db.Names() {
		p := db.packages[name]
		fmt.Fprintf(&b, "Package: %s\n", p.Name)
		fmt.Fprintf(&b, "Status: install ok installed\n")
		fmt.Fprintf(&b, "Version: %s\n", p.Version)
		if p.Architecture != "" {
			fmt.Fprintf(&b, "Architecture: %s\n", p.Architecture)
		}
		if p.Section != "" {
			fmt.Fprintf(&b, "Section: %s\n", p.Section)
		}
		if len(p.Depends) > 0 {
			deps := make([]string, len(p.Depends))
			for i, d := range p.Depends {
				deps[i] = d.String()
			}
			fmt.Fprintf(&b, "Depends: %s\n", strings.Join(deps, ", "))
		}
		if len(p.Conflicts) > 0 {
			cs := make([]string, len(p.Conflicts))
			for i, c := range p.Conflicts {
				cs[i] = c.String()
			}
			fmt.Fprintf(&b, "Conflicts: %s\n", strings.Join(cs, ", "))
		}
		if len(p.Provides) > 0 {
			fmt.Fprintf(&b, "Provides: %s\n", strings.Join(p.Provides, ", "))
		}
		if p.Optimized {
			fmt.Fprintf(&b, "Optimized: yes\n")
		}
		if p.Vendor != "" {
			fmt.Fprintf(&b, "Vendor: %s\n", p.Vendor)
		}
		if p.PerfGain > 1 {
			fmt.Fprintf(&b, "Perf-Gain: %s\n", strconv.FormatFloat(p.PerfGain, 'f', -1, 64))
		}
		if p.Description != "" {
			fmt.Fprintf(&b, "Description: %s\n", p.Description)
		}
		b.WriteString("\n")
	}
	fsys.WriteFile(StatusPath, []byte(b.String()), 0o644)
	return nil
}

// Load parses the dpkg database out of an image file system. Images without
// a status file yield an empty database.
func Load(fsys *fsim.FS) (*DB, error) {
	db := NewDB()
	if !fsys.Exists(StatusPath) {
		return db, nil
	}
	data, err := fsys.ReadFile(StatusPath)
	if err != nil {
		return nil, err
	}
	stanzas, err := ParseControl(string(data))
	if err != nil {
		return nil, fmt.Errorf("dpkg: parsing %s: %w", StatusPath, err)
	}
	for _, st := range stanzas {
		pkg, err := packageFromStanza(st)
		if err != nil {
			return nil, err
		}
		db.packages[pkg.Name] = pkg
		listPath := InfoDir + "/" + pkg.Name + ".list"
		if fsys.Exists(listPath) {
			listData, err := fsys.ReadFile(listPath)
			if err != nil {
				return nil, err
			}
			for _, line := range strings.Split(strings.TrimSpace(string(listData)), "\n") {
				if line == "" {
					continue
				}
				p := fsim.Clean(line)
				db.owner[p] = pkg.Name
				if file, err := fsys.Stat(p); err == nil && file.Type == fsim.TypeRegular {
					pkg.Files = append(pkg.Files, PackageFile{Path: p, Data: file.Data, Mode: uint32(file.Mode)})
				}
			}
		}
	}
	return db, nil
}

// Stanza is one control-file paragraph as ordered field/value pairs.
type Stanza map[string]string

// ParseControl splits a Debian control file into stanzas.
func ParseControl(text string) ([]Stanza, error) {
	var out []Stanza
	cur := Stanza{}
	lastField := ""
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			if len(cur) > 0 {
				out = append(out, cur)
				cur = Stanza{}
				lastField = ""
			}
		case line[0] == ' ' || line[0] == '\t':
			// Continuation line.
			if lastField == "" {
				return nil, fmt.Errorf("dpkg: line %d: continuation with no preceding field", lineNo)
			}
			cur[lastField] += "\n" + strings.TrimSpace(line)
		default:
			field, value, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("dpkg: line %d: malformed field %q", lineNo, line)
			}
			lastField = strings.TrimSpace(field)
			cur[lastField] = strings.TrimSpace(value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// packageFromStanza builds a Package from a parsed control stanza.
func packageFromStanza(st Stanza) (*Package, error) {
	name := st["Package"]
	if name == "" {
		return nil, fmt.Errorf("dpkg: stanza missing Package field: %v", st)
	}
	p := &Package{
		Name:         name,
		Version:      Version(st["Version"]),
		Architecture: st["Architecture"],
		Section:      st["Section"],
		Description:  st["Description"],
		Optimized:    st["Optimized"] == "yes",
		Vendor:       st["Vendor"],
	}
	if g := st["Perf-Gain"]; g != "" {
		v, err := strconv.ParseFloat(g, 64)
		if err != nil {
			return nil, fmt.Errorf("dpkg: package %s has invalid Perf-Gain %q", name, g)
		}
		p.PerfGain = v
	}
	if deps := st["Depends"]; deps != "" {
		for _, part := range strings.Split(deps, ",") {
			d, err := ParseDependency(part)
			if err != nil {
				return nil, fmt.Errorf("dpkg: package %s: %w", name, err)
			}
			p.Depends = append(p.Depends, d)
		}
	}
	if conf := st["Conflicts"]; conf != "" {
		for _, part := range strings.Split(conf, ",") {
			d, err := ParseDependency(part)
			if err != nil {
				return nil, fmt.Errorf("dpkg: package %s: %w", name, err)
			}
			p.Conflicts = append(p.Conflicts, d)
		}
	}
	if prov := st["Provides"]; prov != "" {
		for _, part := range strings.Split(prov, ",") {
			p.Provides = append(p.Provides, strings.TrimSpace(part))
		}
	}
	return p, nil
}
