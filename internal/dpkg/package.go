package dpkg

import (
	"fmt"
	"sort"
	"strings"
)

// Dependency is one element of a package's Depends list.
type Dependency struct {
	Name    string
	Op      ConstraintOp
	Version Version
}

// String renders the dependency in control-file syntax,
// e.g. "libc6 (>= 2.36)".
func (d Dependency) String() string {
	if d.Op == OpAny {
		return d.Name
	}
	return fmt.Sprintf("%s (%s %s)", d.Name, d.Op, d.Version)
}

// ParseDependency parses control-file dependency syntax.
func ParseDependency(s string) (Dependency, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if s == "" || strings.ContainsAny(s, " \t") {
			return Dependency{}, fmt.Errorf("dpkg: invalid dependency %q", s)
		}
		return Dependency{Name: s}, nil
	}
	name := strings.TrimSpace(s[:open])
	rest := strings.TrimSpace(s[open+1:])
	if !strings.HasSuffix(rest, ")") {
		return Dependency{}, fmt.Errorf("dpkg: unterminated version constraint in %q", s)
	}
	rest = strings.TrimSuffix(rest, ")")
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return Dependency{}, fmt.Errorf("dpkg: malformed version constraint in %q", s)
	}
	op := ConstraintOp(fields[0])
	switch op {
	case OpLT, OpLE, OpEQ, OpGE, OpGT:
	default:
		return Dependency{}, fmt.Errorf("dpkg: unknown relation %q in %q", fields[0], s)
	}
	return Dependency{Name: name, Op: op, Version: Version(fields[1])}, nil
}

// PackageFile is one file shipped by a package. When Link is non-empty the
// entry is a symlink to Link instead of a regular file (the lib.so ->
// lib.so.N convention).
type PackageFile struct {
	Path string
	Data []byte
	Mode uint32
	Link string
}

// Package is a single installable package at a specific version.
type Package struct {
	Name         string
	Version      Version
	Architecture string
	Section      string
	Description  string
	Depends      []Dependency
	Conflicts    []Dependency
	Provides     []string
	Files        []PackageFile

	// Optimized marks a system-side vendor build of the package (the
	// replacements the libo adapter installs). Vendor identifies who built
	// it, and PerfGain is the library-level speedup factor its optimized
	// routines deliver relative to the default build (1.0 = none).
	Optimized bool
	Vendor    string
	PerfGain  float64
}

// ID returns the name=version identity of the package.
func (p *Package) ID() string { return p.Name + "=" + string(p.Version) }

// Satisfies reports whether this package satisfies dep, either directly or
// through Provides.
func (p *Package) Satisfies(dep Dependency) bool {
	if p.Name == dep.Name {
		return p.Version.Satisfies(dep.Op, dep.Version)
	}
	for _, prov := range p.Provides {
		// Provided (virtual) names satisfy only unversioned deps.
		if prov == dep.Name && dep.Op == OpAny {
			return true
		}
	}
	return false
}

// Index is a package repository: the available packages, possibly several
// versions of each.
type Index struct {
	packages map[string][]*Package
}

// NewIndex returns an empty repository index.
func NewIndex() *Index {
	return &Index{packages: make(map[string][]*Package)}
}

// Add inserts a package into the index, keeping each name's version list
// sorted descending (newest first).
func (idx *Index) Add(p *Package) {
	list := append(idx.packages[p.Name], p)
	sort.Slice(list, func(i, j int) bool { return list[j].Version.Less(list[i].Version) })
	idx.packages[p.Name] = list
}

// Names returns the sorted package names available.
func (idx *Index) Names() []string {
	out := make([]string, 0, len(idx.packages))
	for n := range idx.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct package names.
func (idx *Index) Len() int { return len(idx.packages) }

// Versions returns all versions of name, newest first.
func (idx *Index) Versions(name string) []*Package {
	return idx.packages[name]
}

// Latest returns the newest version of name.
func (idx *Index) Latest(name string) (*Package, bool) {
	list := idx.packages[name]
	if len(list) == 0 {
		return nil, false
	}
	return list[0], true
}

// Find returns the newest package satisfying dep, searching direct names
// first and then virtual provides.
func (idx *Index) Find(dep Dependency) (*Package, bool) {
	for _, p := range idx.packages[dep.Name] {
		if p.Satisfies(dep) {
			return p, true
		}
	}
	if dep.Op == OpAny {
		for _, name := range idx.Names() {
			for _, p := range idx.packages[name] {
				if p.Satisfies(dep) {
					return p, true
				}
			}
		}
	}
	return nil, false
}

// All returns every package in the index (all versions), sorted by name
// then descending version.
func (idx *Index) All() []*Package {
	var out []*Package
	for _, name := range idx.Names() {
		out = append(out, idx.packages[name]...)
	}
	return out
}

// Pinned derives an index in which every named package is restricted to
// its pinned version; unpinned names keep all versions. It is how a
// redirect reproduces exact package versions while still resolving
// transitive dependencies.
func (idx *Index) Pinned(pins map[string]Version) *Index {
	out := NewIndex()
	for _, p := range idx.All() {
		if want, ok := pins[p.Name]; ok && p.Version.Compare(want) != 0 {
			continue
		}
		out.Add(p)
	}
	return out
}

// Resolve computes an installation order for deps: a topologically sorted
// list (dependencies before dependents) of the packages needed, deduplicated.
// It fails on missing packages or dependency cycles.
func (idx *Index) Resolve(deps []Dependency) ([]*Package, error) {
	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(dep Dependency, chain []string) error
	visit = func(dep Dependency, chain []string) error {
		p, ok := idx.Find(dep)
		if !ok {
			return fmt.Errorf("dpkg: no package satisfies %s (required via %s)",
				dep, strings.Join(chain, " -> "))
		}
		switch state[p.Name] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("dpkg: dependency cycle: %s -> %s",
				strings.Join(chain, " -> "), p.Name)
		}
		state[p.Name] = 1
		for _, d := range p.Depends {
			if err := visit(d, append(chain, p.Name)); err != nil {
				return err
			}
		}
		state[p.Name] = 2
		order = append(order, p)
		return nil
	}
	for _, dep := range deps {
		if err := visit(dep, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
