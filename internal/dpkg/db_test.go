package dpkg

import (
	"strings"
	"testing"

	"comtainer/internal/fsim"
)

func pkg(name, version string, deps ...Dependency) *Package {
	return &Package{
		Name:         name,
		Version:      Version(version),
		Architecture: "amd64",
		Section:      "libs",
		Depends:      deps,
		Files: []PackageFile{
			{Path: "/usr/lib/" + name + ".so", Data: []byte(name + " " + version), Mode: 0o644},
		},
	}
}

func TestParseDependency(t *testing.T) {
	d, err := ParseDependency("libc6 (>= 2.36)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "libc6" || d.Op != OpGE || d.Version != "2.36" {
		t.Errorf("parsed %+v", d)
	}
	d, err = ParseDependency("  libm  ")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "libm" || d.Op != OpAny {
		t.Errorf("parsed %+v", d)
	}
	for _, bad := range []string{"", "a b", "x (>= 1", "x (~~ 1)", "x (>= )"} {
		if _, err := ParseDependency(bad); err == nil {
			t.Errorf("ParseDependency(%q) succeeded", bad)
		}
	}
}

func TestDependencyStringRoundTrip(t *testing.T) {
	for _, s := range []string{"libc6 (>= 2.36)", "libm", "zlib1g (= 1.3-1)"} {
		d, err := ParseDependency(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseDependency(d.String())
		if err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Errorf("round trip %q -> %+v -> %+v", s, d, back)
		}
	}
}

func TestIndexLatestAndFind(t *testing.T) {
	idx := NewIndex()
	idx.Add(pkg("libblas", "3.11.0-1"))
	idx.Add(pkg("libblas", "3.12.0-3"))
	idx.Add(pkg("libblas", "3.12.0-1"))
	latest, ok := idx.Latest("libblas")
	if !ok || latest.Version != "3.12.0-3" {
		t.Errorf("Latest = %v", latest)
	}
	p, ok := idx.Find(Dependency{Name: "libblas", Op: OpLT, Version: "3.12.0-1"})
	if !ok || p.Version != "3.11.0-1" {
		t.Errorf("Find(<<3.12.0-1) = %v", p)
	}
	if _, ok := idx.Find(Dependency{Name: "libblas", Op: OpGE, Version: "4.0"}); ok {
		t.Error("Find matched unsatisfiable constraint")
	}
	if _, ok := idx.Find(Dependency{Name: "nonexistent"}); ok {
		t.Error("Find matched missing package")
	}
}

func TestVirtualProvides(t *testing.T) {
	idx := NewIndex()
	mpi := pkg("vendor-mpi", "5.0")
	mpi.Provides = []string{"mpi"}
	idx.Add(mpi)
	p, ok := idx.Find(Dependency{Name: "mpi"})
	if !ok || p.Name != "vendor-mpi" {
		t.Errorf("virtual provide lookup = %v, %v", p, ok)
	}
	// Versioned constraint must not match a virtual name.
	if _, ok := idx.Find(Dependency{Name: "mpi", Op: OpGE, Version: "1"}); ok {
		t.Error("versioned dep matched virtual provide")
	}
}

func TestResolveTopologicalOrder(t *testing.T) {
	idx := NewIndex()
	idx.Add(pkg("libc6", "2.39-0"))
	idx.Add(pkg("libgfortran5", "14.2.0-1", Dependency{Name: "libc6", Op: OpGE, Version: "2.36"}))
	idx.Add(pkg("libblas", "3.12.0-3", Dependency{Name: "libgfortran5"}))
	idx.Add(pkg("liblapack", "3.12.0-3", Dependency{Name: "libblas"}, Dependency{Name: "libgfortran5"}))

	order, err := idx.Resolve([]Dependency{{Name: "liblapack"}})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, p := range order {
		pos[p.Name] = i
	}
	if !(pos["libc6"] < pos["libgfortran5"] && pos["libgfortran5"] < pos["libblas"] && pos["libblas"] < pos["liblapack"]) {
		var names []string
		for _, p := range order {
			names = append(names, p.Name)
		}
		t.Errorf("order = %v", names)
	}
	if len(order) != 4 {
		t.Errorf("len(order) = %d, want 4 (deduplication)", len(order))
	}
}

func TestResolveMissingAndCycle(t *testing.T) {
	idx := NewIndex()
	idx.Add(pkg("a", "1", Dependency{Name: "b"}))
	idx.Add(pkg("b", "1", Dependency{Name: "a"}))
	if _, err := idx.Resolve([]Dependency{{Name: "a"}}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
	if _, err := idx.Resolve([]Dependency{{Name: "ghost"}}); err == nil {
		t.Error("missing package not reported")
	}
}

func TestInstallAndLoad(t *testing.T) {
	fsys := fsim.New()
	db := NewDB()
	libc := pkg("libc6", "2.39-0")
	app := pkg("lulesh-deps", "1.0", Dependency{Name: "libc6", Op: OpGE, Version: "2.36"})
	if err := db.Install(fsys, libc); err != nil {
		t.Fatal(err)
	}
	if err := db.Install(fsys, app); err != nil {
		t.Fatal(err)
	}
	if !fsys.Exists("/usr/lib/libc6.so") {
		t.Error("package file not written")
	}
	owner, ok := db.OwnerOf("/usr/lib/libc6.so")
	if !ok || owner != "libc6" {
		t.Errorf("OwnerOf = %q, %v", owner, ok)
	}

	// Reload from the image alone.
	db2, err := Load(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 2 {
		t.Fatalf("loaded %d packages, want 2", db2.Len())
	}
	got, ok := db2.Installed("lulesh-deps")
	if !ok {
		t.Fatal("lulesh-deps not loaded")
	}
	if len(got.Depends) != 1 || got.Depends[0].Name != "libc6" || got.Depends[0].Op != OpGE {
		t.Errorf("Depends = %+v", got.Depends)
	}
	owner, ok = db2.OwnerOf("/usr/lib/libc6.so")
	if !ok || owner != "libc6" {
		t.Errorf("reloaded OwnerOf = %q, %v", owner, ok)
	}
}

func TestInstallWithDeps(t *testing.T) {
	idx := NewIndex()
	idx.Add(pkg("libc6", "2.39-0"))
	idx.Add(pkg("libopenblas", "0.3.26-1", Dependency{Name: "libc6"}))
	app := pkg("hpl", "2.3-1", Dependency{Name: "libopenblas"})
	fsys := fsim.New()
	db := NewDB()
	if err := db.InstallWithDeps(fsys, idx, app); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"libc6", "libopenblas", "hpl"} {
		if _, ok := db.Installed(name); !ok {
			t.Errorf("%s not installed", name)
		}
	}
}

func TestReinstallReplacesFiles(t *testing.T) {
	fsys := fsim.New()
	db := NewDB()
	v1 := &Package{Name: "libfoo", Version: "1.0", Files: []PackageFile{
		{Path: "/usr/lib/libfoo.so.1", Data: []byte("v1"), Mode: 0o644},
		{Path: "/usr/lib/removed-in-v2", Data: []byte("gone"), Mode: 0o644},
	}}
	v2 := &Package{Name: "libfoo", Version: "2.0", Optimized: true, Vendor: "intel", PerfGain: 1.8,
		Files: []PackageFile{
			{Path: "/usr/lib/libfoo.so.1", Data: []byte("v2 optimized"), Mode: 0o644},
		}}
	if err := db.Install(fsys, v1); err != nil {
		t.Fatal(err)
	}
	if err := db.Install(fsys, v2); err != nil {
		t.Fatal(err)
	}
	if fsys.Exists("/usr/lib/removed-in-v2") {
		t.Error("stale file survived upgrade")
	}
	data, err := fsys.ReadFile("/usr/lib/libfoo.so.1")
	if err != nil || string(data) != "v2 optimized" {
		t.Errorf("file content = %q, %v", data, err)
	}
	// Round trip preserves the optimization metadata.
	db2, err := Load(fsys)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := db2.Installed("libfoo")
	if !got.Optimized || got.Vendor != "intel" || got.PerfGain != 1.8 {
		t.Errorf("optimization metadata lost: %+v", got)
	}
}

func TestConflicts(t *testing.T) {
	fsys := fsim.New()
	db := NewDB()
	openmpi := pkg("libopenmpi3", "4.1")
	mpich := pkg("libmpich12", "4.2")
	mpich.Conflicts = []Dependency{{Name: "libopenmpi3"}}
	if err := db.Install(fsys, openmpi); err != nil {
		t.Fatal(err)
	}
	if err := db.Install(fsys, mpich); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("conflicting install: %v", err)
	}
	// The reverse direction too: installed package's Conflicts blocks.
	fsys2 := fsim.New()
	db2 := NewDB()
	if err := db2.Install(fsys2, mpich); err != nil {
		t.Fatal(err)
	}
	if err := db2.Install(fsys2, openmpi); err == nil {
		t.Error("installed-side conflict not detected")
	}
	// Upgrading the same package is never a self-conflict.
	v2 := pkg("libmpich12", "4.3")
	v2.Conflicts = []Dependency{{Name: "libopenmpi3"}}
	if err := db2.Install(fsys2, v2); err != nil {
		t.Errorf("self upgrade blocked: %v", err)
	}
	// Versioned conflicts only bite in range.
	fsys3 := fsim.New()
	db3 := NewDB()
	old := pkg("libfoo", "1.0")
	bar := pkg("libbar", "1.0")
	bar.Conflicts = []Dependency{{Name: "libfoo", Op: OpLT, Version: "2.0"}}
	if err := db3.Install(fsys3, old); err != nil {
		t.Fatal(err)
	}
	if err := db3.Install(fsys3, bar); err == nil {
		t.Error("in-range versioned conflict not detected")
	}
	if err := db3.Install(fsys3, pkg("libfoo", "2.1")); err != nil {
		t.Fatal(err)
	}
	if err := db3.Install(fsys3, bar); err != nil {
		t.Errorf("out-of-range conflict blocked: %v", err)
	}
	// Conflicts survive the status-file round trip.
	db4, err := Load(fsys3)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := db4.Installed("libbar")
	if len(got.Conflicts) != 1 || got.Conflicts[0].Name != "libfoo" {
		t.Errorf("reloaded conflicts = %+v", got.Conflicts)
	}
}

func TestRemove(t *testing.T) {
	fsys := fsim.New()
	db := NewDB()
	p := pkg("libx", "1.0")
	if err := db.Install(fsys, p); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(fsys, "libx"); err != nil {
		t.Fatal(err)
	}
	if fsys.Exists("/usr/lib/libx.so") {
		t.Error("files not removed")
	}
	if db.Len() != 0 {
		t.Error("db entry not removed")
	}
	if err := db.Remove(fsys, "libx"); err == nil {
		t.Error("removing missing package succeeded")
	}
}

func TestParseControlMultiStanza(t *testing.T) {
	text := "Package: a\nVersion: 1\n\nPackage: b\nVersion: 2\nDescription: line one\n continued line\n"
	stanzas, err := ParseControl(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(stanzas) != 2 {
		t.Fatalf("got %d stanzas", len(stanzas))
	}
	if !strings.Contains(stanzas[1]["Description"], "continued line") {
		t.Errorf("continuation lost: %q", stanzas[1]["Description"])
	}
}

func TestParseControlErrors(t *testing.T) {
	if _, err := ParseControl(" leading continuation\n"); err == nil {
		t.Error("orphan continuation accepted")
	}
	if _, err := ParseControl("no colon here\n"); err == nil {
		t.Error("malformed field accepted")
	}
}

func TestLoadEmptyImage(t *testing.T) {
	db, err := Load(fsim.New())
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 0 {
		t.Error("empty image yielded packages")
	}
}
