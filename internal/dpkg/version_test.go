package dpkg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareKnownOrderings(t *testing.T) {
	// Each pair (a, b) asserts a < b.
	less := [][2]Version{
		{"1.0", "1.1"},
		{"1.0", "2.0"},
		{"1.9", "1.10"},    // numeric, not lexicographic
		{"1.0~rc1", "1.0"}, // tilde sorts before release
		{"1.0~rc1", "1.0~rc2"},
		{"1.0", "1.0a"},
		{"1.0-1", "1.0-2"},
		{"1.0-1", "1.0.1-1"},
		{"1:0.9", "2:0.1"},      // epoch dominates
		{"0.9", "1:0.1"},        // implicit epoch 0
		{"1.0-1", "1.0-1.1"},    // revision comparison
		{"2.36-9", "2.36-9+b1"}, // binNMU suffix
		{"1.0+dfsg-1", "1.0+dfsg-2"},
		{"3.12.0-3", "3.12.1-1"},
		{"1.0-alpha", "1.0-beta"},
		{"12.3.0-1ubuntu1", "12.3.0-1ubuntu2"},
	}
	for _, pair := range less {
		a, b := pair[0], pair[1]
		if c := a.Compare(b); c != -1 {
			t.Errorf("Compare(%q, %q) = %d, want -1", a, b, c)
		}
		if c := b.Compare(a); c != 1 {
			t.Errorf("Compare(%q, %q) = %d, want 1", b, a, c)
		}
		if !a.Less(b) || b.Less(a) {
			t.Errorf("Less(%q, %q) inconsistent", a, b)
		}
	}
}

func TestCompareEqual(t *testing.T) {
	pairs := [][2]Version{
		{"1.0", "1.0"},
		{"0:1.0", "1.0"}, // explicit epoch 0 == implicit
		{"1.0-1", "1.0-1"},
		{"00:1.0", "0:1.0"},
	}
	for _, p := range pairs {
		if c := p[0].Compare(p[1]); c != 0 {
			t.Errorf("Compare(%q, %q) = %d, want 0", p[0], p[1], c)
		}
	}
}

func TestSatisfies(t *testing.T) {
	cases := []struct {
		v    Version
		op   ConstraintOp
		want Version
		ok   bool
	}{
		{"2.36", OpGE, "2.36", true},
		{"2.36", OpGE, "2.37", false},
		{"2.36", OpGT, "2.36", false},
		{"2.37", OpGT, "2.36", true},
		{"2.36", OpLE, "2.36", true},
		{"2.36", OpLT, "2.36", false},
		{"2.35", OpLT, "2.36", true},
		{"2.36", OpEQ, "2.36", true},
		{"2.36", OpEQ, "2.36-1", false},
		{"anything", OpAny, "", true},
	}
	for _, c := range cases {
		if got := c.v.Satisfies(c.op, c.want); got != c.ok {
			t.Errorf("%q Satisfies(%q %q) = %v, want %v", c.v, c.op, c.want, got, c.ok)
		}
	}
}

// randVersion builds a plausible pseudo-random version string.
func randVersion(rng *rand.Rand) Version {
	parts := []string{"0", "1", "2", "10", "3.12", "1.0~rc", "2.36", "9a", "1.0+dfsg"}
	v := parts[rng.Intn(len(parts))]
	if rng.Intn(2) == 0 {
		v = string(rune('0'+rng.Intn(3))) + ":" + v
	}
	if rng.Intn(2) == 0 {
		v += "-" + parts[rng.Intn(len(parts))]
	}
	return Version(v)
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVersion(rng), randVersion(rng)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareReflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVersion(rng)
		return a.Compare(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randVersion(rng), randVersion(rng), randVersion(rng)
		// Sort the triple by Compare and verify pairwise consistency.
		vs := []Version{a, b, c}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if vs[j].Less(vs[i]) {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
		}
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 && vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
