// Package dpkg implements a Debian-style package management model: version
// ordering, package metadata, repository indexes, dependency resolution,
// and an installed-package database stored inside an image file system
// (/var/lib/dpkg) exactly where coMtainer's front-end looks for it.
//
// The paper relies on dpkg/apt data "inside the image ... parsed further to
// get the dependency list needed by the image model" (§4.5), and on package
// replacement as the `libo` optimization (§4.4): swapping default-stack
// packages for system-side optimized equivalents of the same name.
package dpkg

import (
	"strings"
)

// Version is a Debian package version string: [epoch:]upstream[-revision].
type Version string

// Epoch returns the numeric epoch prefix (0 when absent).
func (v Version) Epoch() string {
	if i := strings.IndexByte(string(v), ':'); i >= 0 {
		return string(v)[:i]
	}
	return "0"
}

// upstreamAndRevision splits off the epoch and returns the upstream version
// and the Debian revision (empty when absent).
func (v Version) upstreamAndRevision() (string, string) {
	s := string(v)
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.LastIndexByte(s, '-'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// Compare orders two versions by the Debian algorithm. It returns -1, 0 or
// +1 as v is earlier than, equal to, or later than other.
func (v Version) Compare(other Version) int {
	if c := compareNumericString(v.Epoch(), other.Epoch()); c != 0 {
		return c
	}
	au, ar := v.upstreamAndRevision()
	bu, br := other.upstreamAndRevision()
	if c := compareDebianPart(au, bu); c != 0 {
		return c
	}
	return compareDebianPart(ar, br)
}

// Less reports whether v sorts strictly before other.
func (v Version) Less(other Version) bool { return v.Compare(other) < 0 }

// compareNumericString compares two decimal strings as integers without
// overflow concerns.
func compareNumericString(a, b string) int {
	a = strings.TrimLeft(a, "0")
	b = strings.TrimLeft(b, "0")
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	return strings.Compare(a, b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// charOrder assigns the Debian sort weight of a character at a string
// position (or end of string): '~' sorts before everything including end
// of string, end of string and digits weigh 0, letters sort before
// non-letters, and otherwise byte order (shifted past the letters) applies.
func charOrder(s string, i int) int {
	if i >= len(s) {
		return 0
	}
	c := s[i]
	switch {
	case isDigit(c):
		return 0
	case c == '~':
		return -1
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		return int(c)
	default:
		return int(c) + 256
	}
}

// compareDebianPart implements dpkg's verrevcmp: alternate comparing runs
// of non-digits (by charOrder) and runs of digits (numerically).
func compareDebianPart(a, b string) int {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		// Non-digit run.
		for (i < len(a) && !isDigit(a[i])) || (j < len(b) && !isDigit(b[j])) {
			ca, cb := charOrder(a, i), charOrder(b, j)
			if ca != cb {
				if ca < cb {
					return -1
				}
				return 1
			}
			i++
			j++
		}
		// Digit run, compared numerically.
		si, sj := i, j
		for i < len(a) && isDigit(a[i]) {
			i++
		}
		for j < len(b) && isDigit(b[j]) {
			j++
		}
		if c := compareNumericString(a[si:i], b[sj:j]); c != 0 {
			return c
		}
	}
	return 0
}

// ConstraintOp is a dependency version relation.
type ConstraintOp string

// Debian relationship operators.
const (
	OpAny ConstraintOp = ""   // any version
	OpLT  ConstraintOp = "<<" // strictly earlier
	OpLE  ConstraintOp = "<=" // earlier or equal
	OpEQ  ConstraintOp = "="  // exactly equal
	OpGE  ConstraintOp = ">=" // later or equal
	OpGT  ConstraintOp = ">>" // strictly later
)

// Satisfies reports whether version v satisfies the relation (op, want).
func (v Version) Satisfies(op ConstraintOp, want Version) bool {
	c := v.Compare(want)
	switch op {
	case OpAny:
		return true
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpEQ:
		return c == 0
	case OpGE:
		return c >= 0
	case OpGT:
		return c > 0
	default:
		return false
	}
}
