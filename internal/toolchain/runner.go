package toolchain

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"comtainer/internal/actioncache"
	"comtainer/internal/cclang"
	"comtainer/internal/digest"
	"comtainer/internal/fsim"
)

// DefaultLibPath is the search path the linker and loader use after any
// explicit -L directories, mirroring a conventional Linux layout.
var DefaultLibPath = []string{"/usr/lib", "/usr/local/lib", "/opt/hpc/lib"}

// portabilityDefine is the macro workloads use to guard ISA-specific inline
// assembly; defining it selects the portable fallback path. The cross-ISA
// adapter adds -D of this macro — one of the "minor modifications to build
// scripts" Figure 11 counts.
const portabilityDefine = "COMT_PORTABLE"

// Stats accumulates simulated compilation cost, the quantity the paper
// argues is "intolerable for normal users [but] viable on HPC clusters"
// for LTO (§4.4).
type Stats struct {
	Commands     int
	CompileUnits float64 // abstract compile work (LoC × optimization factor)
	LTOLinks     int
}

// Runner executes toolchain commands against an image file system, the way
// a RUN step in a build container would.
type Runner struct {
	FS       *fsim.FS
	Cwd      string
	Registry *Registry
	Stats    Stats

	// Memo, when set, memoizes each command through the action cache:
	// a previously seen command whose inputs are unchanged replays its
	// recorded outputs instead of executing. Commands are still
	// counted in Stats.Commands, but replayed ones accrue no compile
	// cost — that is the point.
	Memo *actioncache.Memoizer

	// Remote, when set alongside Memo, is offered every cacheable
	// command that missed the cache before it is executed locally.
	// Returning a non-nil RemoteResult means a farm worker ran the
	// command: its inputs are re-observed against this runner's FS and
	// its outputs written through the recorder, so the local cache
	// entry stays authoritative. Returning (nil, nil) declines and the
	// command dispatches locally as usual.
	Remote RemoteExec

	// LastResult is the input/output record of the most recent Run
	// that went through the action cache (executed, replayed, or
	// remote), nil for uncacheable commands. The rebuild scheduler
	// reads it to assemble dependency overlays for remote execution.
	LastResult *actioncache.Result

	// rec is the recorder of the action currently executing, nil when
	// uncached. The FS helper methods report through it.
	rec *actioncache.Recorder
}

// RemoteExec delegates one expanded command (argv, to run in cwd) to
// a remote executor. See Runner.Remote for the contract.
type RemoteExec func(argv []string, cwd string) (*RemoteResult, error)

// RemoteResult is what a remote execution hands back: the input edges
// the worker observed while running the command and the output files
// it produced.
type RemoteResult struct {
	Inputs  []actioncache.Input
	Outputs []actioncache.Output
}

// NewRunner returns a Runner rooted at / on fsys.
func NewRunner(fsys *fsim.FS, reg *Registry) *Runner {
	return &Runner{FS: fsys, Cwd: "/", Registry: reg}
}

// abs resolves p against the runner's working directory.
func (r *Runner) abs(p string) string {
	if strings.HasPrefix(p, "/") {
		return fsim.Clean(p)
	}
	return fsim.Clean(path.Join(r.Cwd, p))
}

// CanRun reports whether argv names a tool this runner executes.
func (r *Runner) CanRun(argv []string) bool {
	if len(argv) == 0 {
		return false
	}
	base := path.Base(argv[0])
	return cclang.IsCompilerTool(base) || cclang.IsArchiverTool(base) || base == BoltTool
}

// ExpandResponseFiles resolves GCC-style @file arguments: each @path is
// replaced by the whitespace-separated tokens of that file (quotes
// honored). Large HPC link lines routinely arrive this way.
func (r *Runner) ExpandResponseFiles(argv []string) ([]string, error) {
	needs := false
	for _, a := range argv {
		if strings.HasPrefix(a, "@") && len(a) > 1 {
			needs = true
		}
	}
	if !needs {
		return argv, nil
	}
	out := make([]string, 0, len(argv))
	for _, a := range argv {
		if !strings.HasPrefix(a, "@") || len(a) == 1 {
			out = append(out, a)
			continue
		}
		data, err := r.FS.ReadFile(r.abs(a[1:]))
		if err != nil {
			return nil, fmt.Errorf("toolchain: %s: cannot open response file", a)
		}
		toks, err := splitResponse(string(data))
		if err != nil {
			return nil, fmt.Errorf("toolchain: %s: %w", a, err)
		}
		out = append(out, toks...)
	}
	return out, nil
}

// splitResponse tokenizes response-file content: whitespace separated,
// single/double quotes group, backslash escapes.
func splitResponse(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inWord := false
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if inWord {
				out = append(out, cur.String())
				cur.Reset()
				inWord = false
			}
			i++
		case c == '\'' || c == '"':
			q := c
			i++
			start := i
			for i < len(s) && s[i] != q {
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated quote")
			}
			cur.WriteString(s[start:i])
			inWord = true
			i++
		case c == '\\' && i+1 < len(s):
			cur.WriteByte(s[i+1])
			inWord = true
			i += 2
		default:
			cur.WriteByte(c)
			inWord = true
			i++
		}
	}
	if inWord {
		out = append(out, cur.String())
	}
	return out, nil
}

// Run executes one command, replaying it from the action cache when a
// Memo is attached and the command's inputs are unchanged.
func (r *Runner) Run(argv []string) error {
	if len(argv) == 0 {
		return fmt.Errorf("toolchain: empty command")
	}
	expanded, err := r.ExpandResponseFiles(argv)
	if err != nil {
		return err
	}
	argv = expanded
	r.Stats.Commands++
	r.LastResult = nil
	base := path.Base(argv[0])
	if r.Memo != nil {
		if id, ok := r.actionKey(argv, base); ok {
			res, replay, err := r.Memo.Do(id, runnerState{r}, func(rec *actioncache.Recorder) error {
				r.rec = rec
				defer func() { r.rec = nil }()
				if r.Remote != nil {
					rr, rerr := r.Remote(argv, r.Cwd)
					if rerr != nil {
						return rerr
					}
					if rr != nil {
						r.applyRemote(rr)
						return nil
					}
				}
				return r.dispatch(argv, base)
			})
			if err != nil {
				return err
			}
			if replay {
				r.applyResult(res)
			}
			r.LastResult = res
			return nil
		}
	}
	return r.dispatch(argv, base)
}

// dispatch routes one expanded command to its tool implementation.
func (r *Runner) dispatch(argv []string, base string) error {
	switch {
	case cclang.IsCompilerTool(base):
		return r.runCompiler(argv)
	case base == "ar", base == "llvm-ar":
		return r.runArchiver(argv)
	case base == BoltTool:
		return r.runBolt(argv)
	case base == "ranlib":
		if len(argv) < 2 {
			return fmt.Errorf("toolchain: ranlib needs an archive argument")
		}
		if !r.exists(argv[1]) {
			return fmt.Errorf("toolchain: ranlib: %s: no such file", argv[1])
		}
		return nil
	default:
		return fmt.Errorf("toolchain: %s: command not found", argv[0])
	}
}

// optCost maps an optimization level to its relative compile cost.
func optCost(level string) float64 {
	switch level {
	case "0":
		return 1.0
	case "1", "g":
		return 1.4
	case "2", "s":
		return 2.0
	default: // 3, fast
		return 3.0
	}
}

// countLines returns the number of lines in source text.
func countLines(data []byte) int {
	n := 0
	for _, c := range data {
		if c == '\n' {
			n++
		}
	}
	return n + 1
}

// checkISAMarkers scans source text for "isa:<isa>" markers (the stand-in
// for inline assembly) and fails when the marker targets another ISA and
// the portability guard is not defined.
func checkISAMarkers(src []byte, srcPath, targetISA string, defines []string) error {
	guarded := false
	for _, d := range defines {
		if d == portabilityDefine || strings.HasPrefix(d, portabilityDefine+"=") {
			guarded = true
		}
	}
	for _, line := range strings.Split(string(src), "\n") {
		idx := strings.Index(line, "isa:")
		if idx < 0 {
			continue
		}
		marker := strings.TrimSpace(line[idx+len("isa:"):])
		if f := strings.Fields(marker); len(f) > 0 {
			marker = strings.TrimSuffix(f[0], "*/")
		}
		if marker != "" && marker != targetISA && !guarded {
			return fmt.Errorf("toolchain: %s: inline assembly targets %s, cannot compile for %s (define %s for the portable path)",
				srcPath, marker, targetISA, portabilityDefine)
		}
	}
	return nil
}

// validateMachineFlags rejects -m switches the toolchain does not know —
// the way -mavx2 fails on an AArch64 compiler.
func validateMachineFlags(cmd *cclang.Command, tc *Toolchain) error {
	for _, tok := range cmd.Tokens {
		if tok.Opt != "-m" {
			continue
		}
		if !tc.AcceptsMachineFlag(tok.Value) {
			return fmt.Errorf("toolchain %s: unrecognized command-line option '-m%s'", tc.Name, tok.Value)
		}
	}
	if m, ok := cmd.March(); ok {
		if _, err := tc.ResolveMarch(m); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) runCompiler(argv []string) error {
	cmd, err := cclang.Parse(argv)
	if err != nil {
		return err
	}
	tc, ok := r.Registry.Lookup(cmd.Tool)
	if !ok {
		return fmt.Errorf("toolchain: %s: command not found", cmd.Tool)
	}
	if cmd.Mode() == cclang.ModeInfo {
		return nil
	}
	if err := validateMachineFlags(cmd, tc); err != nil {
		return err
	}
	reqMarch, _ := cmd.March()
	march, err := tc.ResolveMarch(reqMarch)
	if err != nil {
		return err
	}
	mtune, _ := cmd.Mtune()
	if cmd.LTO() && !tc.SupportsLTO {
		return fmt.Errorf("toolchain %s: -flto is not supported", tc.Name)
	}
	if _, gen := cmd.ProfileGenerate(); gen && !tc.SupportsPGO {
		return fmt.Errorf("toolchain %s: -fprofile-generate is not supported", tc.Name)
	}

	switch cmd.Mode() {
	case cclang.ModeCompile, cclang.ModeAssembleSrc:
		return r.compileObjects(cmd, tc, march, mtune)
	case cclang.ModePreprocess:
		// Preprocessing to stdout has no image-visible effect.
		return nil
	default:
		return r.link(cmd, tc, march, mtune)
	}
}

// makeObject compiles one source file (or a distributed bitcode stand-in
// at the source's path) to an object artifact.
func (r *Runner) makeObject(cmd *cclang.Command, tc *Toolchain, march, mtune, src string) (*Artifact, error) {
	srcAbs := r.abs(src)
	data, err := r.readFile(srcAbs)
	if err != nil {
		return nil, fmt.Errorf("toolchain: %s: no such file or directory", src)
	}
	var fromIR *Artifact
	if IsArtifact(data) {
		bc, err := Decode(data)
		if err != nil || bc.Kind != KindBitcode {
			return nil, fmt.Errorf("toolchain: %s: not source code and not bitcode", src)
		}
		// IR is target-specific: recompiling for another ISA is the
		// paper's stated limitation of IR-level distribution.
		if bc.TargetISA != tc.TargetISA {
			return nil, fmt.Errorf("toolchain: %s: bitcode targets %s, cannot lower for %s",
				src, bc.TargetISA, tc.TargetISA)
		}
		fromIR = bc
	}
	if fromIR == nil {
		if err := checkISAMarkers(data, src, tc.TargetISA, cmd.Defines()); err != nil {
			return nil, err
		}
	}
	_, pgoGen := cmd.ProfileGenerate()
	profPath, pgoUse := cmd.ProfileUse()
	if pgoUse {
		resolved := r.abs(profPath)
		if profPath == "" {
			resolved = r.abs("default.profdata")
		}
		if !r.exists(resolved) {
			return nil, fmt.Errorf("toolchain: -fprofile-use: %s: cannot open profile data", resolved)
		}
		prof, _ := r.readFile(resolved)
		profPath = string(digest.FromBytes(prof))
	}
	loc := countLines(data)
	lang := cmd.Language()
	if fromIR != nil {
		loc = fromIR.SourceLines
		if fromIR.Lang != "" {
			lang = fromIR.Lang
		}
	}
	cost := float64(loc) * optCost(cmd.OptLevel())
	if cmd.LTO() {
		cost *= 1.3 // emitting IR alongside code
	}
	r.Stats.CompileUnits += cost
	return &Artifact{
		Kind:            KindObject,
		Name:            path.Base(src),
		Toolchain:       tc.Name,
		Vendor:          tc.Vendor,
		TargetISA:       tc.TargetISA,
		March:           march,
		Mtune:           mtune,
		OptLevel:        cmd.OptLevel(),
		Lang:            lang,
		OpenMP:          cmd.OpenMP(),
		Defines:         cmd.Defines(),
		LTOObjects:      cmd.LTO(),
		PGOInstrumented: pgoGen,
		PGOOptimized:    pgoUse,
		ProfileData:     profPath,
		Sources:         []string{srcAbs},
	}, nil
}

func (r *Runner) compileObjects(cmd *cclang.Command, tc *Toolchain, march, mtune string) error {
	inputs := cmd.Inputs()
	if len(inputs) == 0 {
		return fmt.Errorf("toolchain: no input files")
	}
	explicit, hasOut := cmd.Output()
	if hasOut && len(inputs) > 1 {
		return fmt.Errorf("toolchain: cannot specify -o with -c and multiple files")
	}
	for _, src := range inputs {
		if !cclang.IsSourceFile(src) {
			return fmt.Errorf("toolchain: %s: file not recognized as source", src)
		}
		art, err := r.makeObject(cmd, tc, march, mtune, src)
		if err != nil {
			return err
		}
		out := cmd.DefaultOutput(src)
		if hasOut {
			out = explicit
		}
		r.writeFile(out, art.Encode(), 0o644)
	}
	return nil
}

// loadArtifact reads and decodes an artifact file.
func (r *Runner) loadArtifact(p string) (*Artifact, error) {
	data, err := r.readFile(p)
	if err != nil {
		return nil, fmt.Errorf("toolchain: %s: no such file or directory", p)
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("toolchain: %s: file format not recognized", p)
	}
	return a, nil
}

// findLibrary resolves -lname against the -L path and default directories,
// preferring shared over static in each directory like the real linker.
func (r *Runner) findLibrary(name string, libDirs []string) (string, *Artifact, error) {
	dirs := append(append([]string{}, libDirs...), DefaultLibPath...)
	for _, d := range dirs {
		for _, cand := range []string{"lib" + name + ".so", "lib" + name + ".a"} {
			p := fsim.Clean(path.Join(r.abs(d), cand))
			if !r.exists(p) {
				continue
			}
			// Follow symlinked .so names (libm.so -> libm.so.6).
			resolved, err := r.resolveSymlink(p)
			if err != nil {
				return "", nil, err
			}
			a, err := r.loadArtifact(resolved)
			if err != nil {
				return "", nil, err
			}
			return resolved, a, nil
		}
	}
	return "", nil, fmt.Errorf("toolchain: cannot find -l%s", name)
}

// optRank orders optimization levels for merging.
func optRank(level string) int {
	switch level {
	case "0":
		return 0
	case "g":
		return 1
	case "1":
		return 2
	case "s":
		return 3
	case "2":
		return 4
	case "3":
		return 5
	case "fast":
		return 6
	default:
		return 0
	}
}

func (r *Runner) link(cmd *cclang.Command, tc *Toolchain, march, mtune string) error {
	inputs := cmd.Inputs()
	if len(inputs) == 0 {
		return fmt.Errorf("toolchain: no input files")
	}

	var objects []*Artifact
	var objectPaths []string
	for _, in := range inputs {
		switch {
		case cclang.IsSourceFile(in):
			// Compile-and-link in one step.
			art, err := r.makeObject(cmd, tc, march, mtune, in)
			if err != nil {
				return err
			}
			objects = append(objects, art)
			objectPaths = append(objectPaths, r.abs(in))
		case cclang.IsObjectFile(in):
			a, err := r.loadArtifact(in)
			if err != nil {
				return err
			}
			if a.Kind != KindObject {
				return fmt.Errorf("toolchain: %s is a %s, expected object", in, a.Kind)
			}
			objects = append(objects, a)
			objectPaths = append(objectPaths, r.abs(in))
		case cclang.IsArchiveFile(in):
			a, err := r.loadArtifact(in)
			if err != nil {
				return err
			}
			if a.Kind != KindArchive {
				return fmt.Errorf("toolchain: %s is a %s, expected archive", in, a.Kind)
			}
			objects = append(objects, a)
			objectPaths = append(objectPaths, r.abs(in))
		default:
			return fmt.Errorf("toolchain: %s: file not recognized", in)
		}
	}

	// ISA consistency — linking foreign objects is the classic cross-ISA
	// failure ("file in wrong format").
	for i, o := range objects {
		if o.TargetISA != tc.TargetISA {
			return fmt.Errorf("toolchain: %s: file in wrong format (built for %s, linking for %s)",
				objectPaths[i], o.TargetISA, tc.TargetISA)
		}
	}

	// Resolve libraries.
	var dynamicLibs []string
	for _, lib := range cmd.Libs() {
		p, a, err := r.findLibrary(lib, cmd.LibDirs())
		if err != nil {
			return err
		}
		switch a.Kind {
		case KindSharedObject:
			dynamicLibs = append(dynamicLibs, p)
		case KindArchive:
			objects = append(objects, a)
			objectPaths = append(objectPaths, p)
		default:
			return fmt.Errorf("toolchain: %s: unexpected artifact kind %s", p, a.Kind)
		}
	}
	// Implicit runtime libraries, when the image ships them: every driver
	// pulls in libc; g++ adds the C++ runtime, gfortran its own.
	implicit := []string{"/usr/lib/libc.so"}
	switch cmd.Language() {
	case "c++":
		implicit = append(implicit, "/usr/lib/libstdc++.so")
	case "fortran":
		implicit = append(implicit, "/usr/lib/libgfortran.so")
	}
	for _, link := range implicit {
		p, err := r.resolveSymlink(link)
		if err != nil {
			continue
		}
		already := false
		for _, d := range dynamicLibs {
			if d == p {
				already = true
			}
		}
		if !already {
			dynamicLibs = append(dynamicLibs, p)
		}
	}

	// Merge object metadata into the final artifact.
	out := Artifact{
		Kind:      KindExecutable,
		Toolchain: tc.Name,
		Vendor:    tc.Vendor,
		TargetISA: tc.TargetISA,
		Mtune:     mtune,
	}
	if cmd.Shared() {
		out.Kind = KindSharedObject
	}
	seenSrc := map[string]bool{}
	allLTO := true
	allPGOInstr := len(objects) > 0
	allPGOOpt := len(objects) > 0
	marchSet := map[string]bool{}
	for _, o := range objects {
		for _, s := range o.Sources {
			if !seenSrc[s] {
				seenSrc[s] = true
				out.Sources = append(out.Sources, s)
			}
		}
		out.Objects = append(out.Objects, o.Name)
		if !o.LTOObjects {
			allLTO = false
		}
		if !o.PGOInstrumented {
			allPGOInstr = false
		}
		if !o.PGOOptimized {
			allPGOOpt = false
		}
		if optRank(o.OptLevel) > optRank(out.OptLevel) {
			out.OptLevel = o.OptLevel
		}
		marchSet[o.March] = true
		if o.OpenMP {
			out.OpenMP = true
		}
		if o.Lang == "c++" || (out.Lang == "" && o.Lang != "") {
			out.Lang = o.Lang
		}
		if o.ProfileData != "" {
			out.ProfileData = o.ProfileData
		}
	}
	sort.Strings(out.Sources)
	switch len(marchSet) {
	case 0:
		out.March = march
	case 1:
		for m := range marchSet {
			out.March = m
		}
	default:
		out.March = "mixed"
	}
	out.LTO = cmd.LTO() && allLTO
	if cmd.LTO() && !allLTO {
		// Fat-object-less objects silently lose LTO, as GCC warns.
		out.LTO = false
	}
	out.PGOInstrumented = allPGOInstr
	if _, gen := cmd.ProfileGenerate(); gen {
		out.PGOInstrumented = true
	}
	out.PGOOptimized = allPGOOpt
	out.DynamicLibs = dynamicLibs

	if out.LTO {
		// Whole-program optimization re-optimizes everything at link time.
		r.Stats.LTOLinks++
		var loc float64
		for _, s := range out.Sources {
			if data, err := r.readFile(s); err == nil {
				loc += float64(countLines(data))
			}
		}
		r.Stats.CompileUnits += loc * 4.0
	}

	dest := "a.out"
	if o, ok := cmd.Output(); ok {
		dest = o
	}
	out.Name = path.Base(dest)
	r.writeFile(dest, out.Encode(), 0o755)
	return nil
}

func (r *Runner) runArchiver(argv []string) error {
	ac, err := cclang.ParseArchive(argv)
	if err != nil {
		return err
	}
	if !ac.Creates() {
		return nil
	}
	merged := Artifact{Kind: KindArchive, Name: path.Base(ac.Archive)}
	seenSrc := map[string]bool{}
	first := true
	allLTO := true
	for _, m := range ac.Members {
		a, err := r.loadArtifact(m)
		if err != nil {
			return err
		}
		if a.Kind != KindObject {
			return fmt.Errorf("toolchain: ar: %s is a %s, expected object", m, a.Kind)
		}
		if first {
			merged.Toolchain = a.Toolchain
			merged.Vendor = a.Vendor
			merged.TargetISA = a.TargetISA
			merged.March = a.March
			merged.OptLevel = a.OptLevel
			merged.Lang = a.Lang
			first = false
		} else if a.TargetISA != merged.TargetISA {
			return fmt.Errorf("toolchain: ar: %s built for %s, archive is %s", m, a.TargetISA, merged.TargetISA)
		}
		if !a.LTOObjects {
			allLTO = false
		}
		if a.OpenMP {
			merged.OpenMP = true
		}
		if optRank(a.OptLevel) > optRank(merged.OptLevel) {
			merged.OptLevel = a.OptLevel
		}
		for _, s := range a.Sources {
			if !seenSrc[s] {
				seenSrc[s] = true
				merged.Sources = append(merged.Sources, s)
			}
		}
		merged.Objects = append(merged.Objects, a.Name)
	}
	if len(ac.Members) == 0 {
		return fmt.Errorf("toolchain: ar: creating empty archive %s not supported", ac.Archive)
	}
	merged.LTOObjects = allLTO
	sort.Strings(merged.Sources)
	r.writeFile(ac.Archive, merged.Encode(), 0o644)
	return nil
}
