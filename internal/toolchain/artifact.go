// Package toolchain implements the simulated compiler toolchains coMtainer
// orchestrates: GCC-like drivers, vendor compilers, archivers and a dynamic
// linker model.
//
// Real compilation is replaced by metadata propagation (see DESIGN.md §1):
// a compiled object, archive, shared library or executable is a file whose
// content is an encoded Artifact recording everything performance-relevant
// about how it was built — toolchain, target ISA, -march, -O level, LTO,
// PGO state, and the libraries it links. The performance model derives
// execution time exclusively from this metadata, so an image is only fast
// if the toolchain actually compiled it that way — which is precisely the
// paper's adaptability argument.
package toolchain

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// ArtifactKind discriminates compiled outputs.
type ArtifactKind string

// Artifact kinds.
const (
	KindObject       ArtifactKind = "object"
	KindArchive      ArtifactKind = "archive"
	KindSharedObject ArtifactKind = "shared-object"
	KindExecutable   ArtifactKind = "executable"
	// KindBitcode is compiler IR distributed in place of source code (the
	// paper's §4.6 LLVM-IR alternative). It recompiles to any march of
	// the same ISA but is no longer source: foreign-ISA rebuilds and
	// API-incompatible library swaps are off the table.
	KindBitcode ArtifactKind = "bitcode"
)

// artifactMagic prefixes every encoded artifact so they are recognizable
// in an image file system, like an ELF magic number.
const artifactMagic = "#!COMT-ARTIFACT\n"

// Artifact is the metadata of one compiled output.
type Artifact struct {
	Kind      ArtifactKind `json:"kind"`
	Name      string       `json:"name"`
	Toolchain string       `json:"toolchain"` // e.g. "gnu-gcc-13", "ixc-2025"
	Vendor    string       `json:"vendor"`    // e.g. "gnu", "intellic", "phytium"
	TargetISA string       `json:"targetISA"` // "x86-64" or "aarch64"
	March     string       `json:"march"`     // architecture level compiled for
	Mtune     string       `json:"mtune,omitempty"`
	OptLevel  string       `json:"optLevel"`
	Lang      string       `json:"lang,omitempty"`
	OpenMP    bool         `json:"openmp,omitempty"`
	Defines   []string     `json:"defines,omitempty"`

	// LTOObjects marks objects carrying IR for link-time optimization;
	// LTO marks a final link where whole-program optimization ran.
	LTOObjects bool `json:"ltoObjects,omitempty"`
	LTO        bool `json:"lto,omitempty"`

	// PGO state: an instrumented binary emits a profile when run; an
	// optimized binary was compiled against a collected profile.
	PGOInstrumented bool   `json:"pgoInstrumented,omitempty"`
	PGOOptimized    bool   `json:"pgoOptimized,omitempty"`
	ProfileData     string `json:"profileData,omitempty"`

	// Sources lists the source file paths compiled into this artifact
	// (transitively, for links). Objects lists member objects of archives
	// and links. DynamicLibs lists resolved shared-library paths the
	// loader must find at run time.
	Sources     []string `json:"sources,omitempty"`
	Objects     []string `json:"objects,omitempty"`
	DynamicLibs []string `json:"dynamicLibs,omitempty"`

	// Library metadata, set on shared objects shipped by packages:
	// PerfGain is the routine-level speedup of this build relative to the
	// default-stack build of the same library (1.0 = baseline).
	PerfGain  float64 `json:"perfGain,omitempty"`
	Optimized bool    `json:"optimized,omitempty"`

	// MPINetPlugin marks an MPI library build that carries the plugin for
	// the system's high-speed interconnect (the paper's LULESH story).
	MPINetPlugin bool `json:"mpiNetPlugin,omitempty"`

	// LayoutOptimized marks binaries post-processed by the BOLT-style
	// profile-guided layout optimizer (the paper's §3 "binary-level
	// layout optimization" extension).
	LayoutOptimized bool `json:"layoutOptimized,omitempty"`

	// SourceLines preserves the original line count on bitcode artifacts
	// so recompilation cost stays faithful after the source is gone.
	SourceLines int `json:"sourceLines,omitempty"`
}

// BitcodeArtifact lowers a source file to distributable compiler IR.
func BitcodeArtifact(srcPath string, src []byte, isa, lang string) *Artifact {
	lines := 1
	for _, c := range src {
		if c == '\n' {
			lines++
		}
	}
	return &Artifact{
		Kind:        KindBitcode,
		Name:        srcPath,
		Toolchain:   "ir-frontend",
		TargetISA:   isa,
		Lang:        lang,
		Sources:     []string{srcPath},
		SourceLines: lines,
	}
}

// Encode serializes the artifact with its magic prefix, suitable for use
// as file content in an image.
func (a *Artifact) Encode() []byte {
	// Keep slices sorted where order is not meaningful so encoding is
	// deterministic regardless of link input discovery order.
	sort.Strings(a.Defines)
	b, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		// Artifact contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("toolchain: encoding artifact: %v", err))
	}
	return append([]byte(artifactMagic), b...)
}

// IsArtifact reports whether data looks like an encoded artifact.
func IsArtifact(data []byte) bool {
	return bytes.HasPrefix(data, []byte(artifactMagic))
}

// Decode parses an encoded artifact.
func Decode(data []byte) (*Artifact, error) {
	if !IsArtifact(data) {
		return nil, fmt.Errorf("toolchain: not an artifact (missing magic)")
	}
	var a Artifact
	if err := json.Unmarshal(bytes.TrimPrefix(data, []byte(artifactMagic)), &a); err != nil {
		return nil, fmt.Errorf("toolchain: decoding artifact: %w", err)
	}
	return &a, nil
}

// LibraryArtifact builds the artifact for a shared library shipped by a
// package — the vehicle for the libo (library replacement) optimization.
func LibraryArtifact(name, vendor, isa string, gain float64, optimized bool) *Artifact {
	return &Artifact{
		Kind:      KindSharedObject,
		Name:      name,
		Toolchain: vendor + "-prebuilt",
		Vendor:    vendor,
		TargetISA: isa,
		March:     "generic",
		OptLevel:  "2",
		PerfGain:  gain,
		Optimized: optimized,
	}
}

// MPILibraryArtifact builds the artifact for an MPI shared library;
// netPlugin marks vendor MPI builds that can drive the high-speed fabric.
func MPILibraryArtifact(name, vendor, isa string, gain float64, netPlugin bool) *Artifact {
	a := LibraryArtifact(name, vendor, isa, gain, netPlugin)
	a.MPINetPlugin = netPlugin
	return a
}
