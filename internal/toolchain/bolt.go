package toolchain

import (
	"fmt"

	"comtainer/internal/digest"
)

// BoltTool is the name of the simulated post-link binary layout optimizer
// (a BOLT-style tool, see Panchenko et al.; the paper's §3 names binary
// layout optimization as further headroom beyond LTO and PGO).
const BoltTool = "comt-bolt"

// runBolt executes: comt-bolt -profile <path> -o <out> <binary>.
// It reads a linked executable, verifies the profile exists, and emits a
// layout-optimized copy of the artifact.
func (r *Runner) runBolt(argv []string) error {
	var profile, out, input string
	i := 1
	for i < len(argv) {
		switch argv[i] {
		case "-profile":
			if i+1 >= len(argv) {
				return fmt.Errorf("toolchain: %s: -profile needs an argument", BoltTool)
			}
			profile = argv[i+1]
			i += 2
		case "-o":
			if i+1 >= len(argv) {
				return fmt.Errorf("toolchain: %s: -o needs an argument", BoltTool)
			}
			out = argv[i+1]
			i += 2
		default:
			if input != "" {
				return fmt.Errorf("toolchain: %s: multiple inputs (%s, %s)", BoltTool, input, argv[i])
			}
			input = argv[i]
			i++
		}
	}
	if profile == "" || input == "" {
		return fmt.Errorf("toolchain: %s: usage: %s -profile <prof> [-o out] <binary>", BoltTool, BoltTool)
	}
	if out == "" {
		out = input
	}
	profData, err := r.readFile(profile)
	if err != nil {
		return fmt.Errorf("toolchain: %s: cannot open profile %s", BoltTool, profile)
	}
	binData, err := r.readFile(input)
	if err != nil {
		return fmt.Errorf("toolchain: %s: %s: no such file", BoltTool, input)
	}
	art, err := Decode(binData)
	if err != nil {
		return fmt.Errorf("toolchain: %s: %s is not an executable", BoltTool, input)
	}
	if art.Kind != KindExecutable {
		return fmt.Errorf("toolchain: %s: %s is a %s, need an executable", BoltTool, input, art.Kind)
	}
	optimized := *art
	optimized.LayoutOptimized = true
	if optimized.ProfileData == "" {
		optimized.ProfileData = string(digest.FromBytes(profData))
	}
	// Layout optimization is cheap relative to recompilation, but not free.
	r.Stats.CompileUnits += float64(len(art.Sources)) * 10
	r.writeFile(out, optimized.Encode(), 0o755)
	return nil
}
