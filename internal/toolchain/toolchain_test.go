package toolchain

import (
	"strings"
	"testing"
)

func TestToolchainMarchResolution(t *testing.T) {
	tc := GNUx86()
	got, err := tc.ResolveMarch("")
	if err != nil || got != "x86-64" {
		t.Errorf("default march = %q, %v", got, err)
	}
	got, err = tc.ResolveMarch("native")
	if err != nil || got != tc.NativeMarch {
		t.Errorf("native march = %q, %v", got, err)
	}
	if _, err := tc.ResolveMarch("armv8-a"); err == nil {
		t.Error("foreign march accepted")
	}
	if !tc.AcceptsMarch("native") || !tc.AcceptsMarch("x86-64-v3") || tc.AcceptsMarch("ft2000plus") {
		t.Error("AcceptsMarch wrong")
	}
	if !tc.AcceptsMachineFlag("arch=anything") || !tc.AcceptsMachineFlag("tune=native") {
		t.Error("arch=/tune= must pass the flag gate (validated separately)")
	}
	if tc.AcceptsMachineFlag("sve") {
		t.Error("x86 toolchain accepted an ARM flag")
	}
}

func TestLLVMVariants(t *testing.T) {
	x := LLVM(ISAx86)
	a := LLVM(ISAArm)
	if x.TargetISA != ISAx86 || a.TargetISA != ISAArm {
		t.Error("LLVM targets wrong")
	}
	if !a.AcceptsMarch("armv8-a") || a.AcceptsMarch("x86-64") {
		t.Error("LLVM arm march set wrong")
	}
	if !x.SupportsLTO || !x.SupportsPGO {
		t.Error("LLVM must support LTO and PGO")
	}
}

func TestRegistryTools(t *testing.T) {
	r := VendorRegistry(ISAx86)
	tools := strings.Join(r.Tools(), " ")
	for _, want := range []string{"gcc", "g++", "mpicc", "ixc"} {
		if !strings.Contains(tools, want) {
			t.Errorf("vendor registry missing %s: %s", want, tools)
		}
	}
	l := LLVMRegistry(ISAArm)
	if _, ok := l.Lookup("clang"); !ok {
		t.Error("LLVM registry missing clang")
	}
	if tc, ok := l.Lookup("gcc"); !ok || tc.Vendor != "llvm" {
		t.Error("LLVM registry must shadow the standard driver names")
	}
}

func TestCompileErrors(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	// -c with -o and multiple inputs.
	if err := r.Run(strings.Fields("gcc -c main.c util.c -o both.o")); err == nil {
		t.Error("-c -o with multiple files accepted")
	}
	// -c with an object input.
	run(t, r, "gcc -c main.c")
	if err := r.Run(strings.Fields("gcc -c main.o")); err == nil {
		t.Error("-c of an object accepted")
	}
	// Linking a text file.
	f.WriteFile("/src/readme.o", []byte("not an artifact"), 0o644)
	if err := r.Run(strings.Fields("gcc readme.o -o app")); err == nil {
		t.Error("linked a non-artifact object")
	}
	// No inputs at all.
	if err := r.Run([]string{"gcc"}); err == nil {
		t.Error("no-input link accepted")
	}
	if err := r.Run([]string{"gcc", "-c"}); err == nil {
		t.Error("no-input compile accepted")
	}
	// Empty command.
	if err := r.Run(nil); err == nil {
		t.Error("empty argv accepted")
	}
}

func TestArchiveErrors(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	if err := r.Run(strings.Fields("ar rcs empty.a")); err == nil {
		t.Error("empty archive accepted")
	}
	run(t, r, "gcc -c main.c")
	// Archiving an archive member of the wrong kind.
	run(t, r, "ar rcs one.a main.o")
	if err := r.Run(strings.Fields("ar rcs nested.a one.a")); err == nil {
		t.Error("archived an archive as a member")
	}
	// Listing operations are no-ops.
	if err := r.Run(strings.Fields("ar t one.a")); err != nil {
		t.Errorf("ar t failed: %v", err)
	}
}

func TestResponseFiles(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O2 -c main.c")
	run(t, r, "gcc -O2 -c util.c")
	f.WriteFile("/src/link.rsp", []byte("main.o util.o\n  -lm   'x y.o'\n"), 0o644)
	// The quoted member doesn't exist, so the link must complain about
	// exactly the token the quote protected.
	err := runErr(t, r, "gcc @link.rsp -o app")
	if !strings.Contains(err.Error(), "x y.o") {
		t.Errorf("err = %v", err)
	}
	f.WriteFile("/src/link.rsp", []byte("main.o util.o -lm\n"), 0o644)
	run(t, r, "gcc @link.rsp -o app")
	a := loadArt(t, f, "/src/app")
	if len(a.Sources) != 2 {
		t.Errorf("linked sources = %v", a.Sources)
	}
	if err := r.Run(strings.Fields("gcc @missing.rsp -o app")); err == nil {
		t.Error("missing response file accepted")
	}
	f.WriteFile("/src/bad.rsp", []byte("'unterminated\n"), 0o644)
	if err := r.Run(strings.Fields("gcc @bad.rsp")); err == nil {
		t.Error("malformed response file accepted")
	}
}

func TestBitcodeCompileRoundTrip(t *testing.T) {
	f := buildFS()
	src, _ := f.ReadFile("/src/main.c")
	bc := BitcodeArtifact("/src/main.c", src, ISAx86, "c")
	f.WriteFile("/src/main.c", bc.Encode(), 0o644)

	r := newX86Runner(f)
	run(t, r, "gcc -O2 -c main.c -o main.o")
	a := loadArt(t, f, "/src/main.o")
	if a.Kind != KindObject || a.Lang != "c" {
		t.Errorf("object from bitcode = %+v", a)
	}
	// Foreign-ISA lowering fails.
	arm := NewRunner(f, GenericRegistry(ISAArm))
	arm.Cwd = "/src"
	if err := arm.Run(strings.Fields("gcc -c main.c")); err == nil ||
		!strings.Contains(err.Error(), "bitcode targets") {
		t.Errorf("foreign bitcode err = %v", err)
	}
	// Non-bitcode artifacts at a source path are rejected.
	f.WriteFile("/src/fake.c", LibraryArtifact("x", "gnu", ISAx86, 1, false).Encode(), 0o644)
	if err := r.Run(strings.Fields("gcc -c fake.c")); err == nil {
		t.Error("non-bitcode artifact compiled as source")
	}
}
