package toolchain

import (
	"encoding/json"
	"io/fs"
	"strings"

	"comtainer/internal/actioncache"
	"comtainer/internal/cclang"
	"comtainer/internal/digest"
	"comtainer/internal/fsim"
)

// This file connects the Runner to the action cache. Every file-system
// access the simulated tools make goes through the read/write helpers
// below, which double as the recording taps: on a cache miss the
// helpers report each observed input and produced output to the
// Recorder of the in-flight action, and on a hit the recorded outputs
// are written back without running the tool at all.

// readFile reads p (resolved against Cwd) and records the observation.
func (r *Runner) readFile(p string) ([]byte, error) {
	ap := r.abs(p)
	data, err := r.FS.ReadFile(ap)
	r.rec.NoteInput(actioncache.OpRead, ap, actioncache.ReadState(data, err))
	return data, err
}

// exists probes p and records the observation — negative probes too,
// so a library appearing earlier in the search path invalidates
// results that skipped over its absence.
func (r *Runner) exists(p string) bool {
	ap := r.abs(p)
	ok := r.FS.Exists(ap)
	r.rec.NoteInput(actioncache.OpExists, ap, actioncache.ExistsState(ok))
	return ok
}

// resolveSymlink follows the symlink chain at p and records it.
func (r *Runner) resolveSymlink(p string) (string, error) {
	ap := r.abs(p)
	resolved, err := r.FS.ResolveSymlink(ap)
	r.rec.NoteInput(actioncache.OpResolve, ap, actioncache.ResolveState(resolved, err))
	return resolved, err
}

// writeFile writes p (resolved against Cwd) and records the output.
func (r *Runner) writeFile(p string, data []byte, mode fs.FileMode) {
	ap := r.abs(p)
	r.FS.WriteFile(ap, data, mode)
	r.rec.NoteOutput(ap, data, mode)
}

// applyResult replays a cached action's outputs onto the file system.
func (r *Runner) applyResult(res *actioncache.Result) {
	if res == nil {
		return
	}
	for _, out := range res.Outputs {
		r.FS.WriteFile(out.Path, out.Data, fs.FileMode(out.Mode))
	}
}

// applyRemote adopts a farm execution: every input edge the worker
// observed is re-observed here through the recording helpers — the
// cache entry must reflect *this* file system's states, never the
// worker's, or a skewed worker snapshot could poison future replays —
// and the outputs are then written through the recorder. Inputs go
// first: NoteInput drops self-reads of paths already recorded as
// outputs, and that filter must see the inputs before the outputs
// land.
func (r *Runner) applyRemote(rr *RemoteResult) {
	for _, in := range rr.Inputs {
		switch in.Op {
		case actioncache.OpRead:
			r.readFile(in.Path)
		case actioncache.OpExists:
			r.exists(in.Path)
		case actioncache.OpResolve:
			r.resolveSymlink(in.Path)
		}
	}
	for _, out := range rr.Outputs {
		r.writeFile(out.Path, out.Data, fs.FileMode(out.Mode))
	}
}

// runnerState re-observes recorded inputs against the runner's FS at
// lookup time. It must mirror the helpers above exactly — same path
// normalization, same state encoding — or nothing ever hits.
type runnerState struct{ r *Runner }

func (s runnerState) StateOf(in actioncache.Input) string {
	switch in.Op {
	case actioncache.OpRead:
		data, err := s.r.FS.ReadFile(in.Path)
		return actioncache.ReadState(data, err)
	case actioncache.OpExists:
		return actioncache.ExistsState(s.r.FS.Exists(in.Path))
	case actioncache.OpResolve:
		resolved, err := s.r.FS.ResolveSymlink(in.Path)
		return actioncache.ResolveState(resolved, err)
	default:
		return actioncache.AbsentState
	}
}

// actionKey derives the pre-execution cache identity of argv, or
// ok=false when the command is not safely cacheable (unparseable,
// unknown tool/toolchain — those run uncached and fail normally).
func (r *Runner) actionKey(argv []string, base string) (digest.Digest, bool) {
	spec := actioncache.ActionSpec{Argv: argv, Cwd: fsim.Clean(r.Cwd)}
	switch {
	case cclang.IsCompilerTool(base):
		cmd, err := cclang.Parse(argv)
		if err != nil {
			return "", false
		}
		tc, ok := r.Registry.Lookup(cmd.Tool)
		if !ok {
			return "", false
		}
		// The resolved target profile, not the raw flags: -march=native
		// means different code on different toolchains, and two argv
		// spellings of the same profile may share an entry.
		march, err := tc.ResolveMarch(firstMarch(cmd))
		if err != nil {
			return "", false
		}
		spec.Toolchain = toolchainFingerprint(tc)
		spec.TargetISA = tc.TargetISA
		spec.March = march
		spec.Mtune, _ = cmd.Mtune()
		spec.OptLevel = cmd.OptLevel()
	case cclang.IsArchiverTool(base), base == BoltTool:
		// Pure functions of argv and file content.
	default:
		return "", false
	}
	return spec.ID(), true
}

func firstMarch(cmd *cclang.Command) string {
	m, _ := cmd.March()
	return m
}

// toolchainFingerprint digests every identity and capability field of
// tc, so e.g. a vendor compiler and GCC with identical argv never
// share cache entries.
func toolchainFingerprint(tc *Toolchain) string {
	b, err := json.Marshal(tc)
	if err != nil {
		panic("toolchain: marshaling toolchain fingerprint: " + err.Error())
	}
	return string(digest.FromBytes(b))
}

// Fingerprint digests the registry's complete tool-name→toolchain
// binding. Two registries with equal fingerprints dispatch every tool
// to behaviorally identical toolchains, which is the compatibility
// contract remote execution schedules on: a farm worker whose
// registry fingerprint matches the executor's produces bit-identical
// action results.
func (r *Registry) Fingerprint() string {
	var b strings.Builder
	b.WriteString("comtainer-registry-fp/v1")
	for _, name := range r.Tools() {
		b.WriteByte(0)
		b.WriteString(name)
		b.WriteByte(0)
		b.WriteString(toolchainFingerprint(r.byTool[name]))
	}
	return string(digest.FromString(b.String()))
}
