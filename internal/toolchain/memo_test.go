package toolchain

import (
	"strings"
	"testing"

	"comtainer/internal/actioncache"
	"comtainer/internal/fsim"
)

func memoRunner(f *fsim.FS, memo *actioncache.Memoizer) *Runner {
	r := NewRunner(f, GenericRegistry(ISAx86))
	r.Cwd = "/src"
	r.Memo = memo
	return r
}

func newDiskMemo(t *testing.T) *actioncache.Memoizer {
	t.Helper()
	disk, err := actioncache.NewDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return actioncache.NewMemoizer(disk)
}

// TestRunnerMemoReplay drives a compile+link sequence twice over the
// same cache on fresh file systems: the warm run must replay every
// command (zero compile cost) and produce byte-identical artifacts.
func TestRunnerMemoReplay(t *testing.T) {
	memo := newDiskMemo(t)
	pass := func() (*fsim.FS, Stats) {
		f := buildFS()
		r := memoRunner(f, memo)
		run(t, r, "gcc -O2 -c main.c -o main.o")
		run(t, r, "gcc -O2 -c util.c -o util.o")
		run(t, r, "gcc main.o util.o -lm -o app")
		return f, r.Stats
	}
	cold, coldStats := pass()
	warm, warmStats := pass()

	if coldStats.CompileUnits == 0 {
		t.Fatal("cold run accrued no compile cost")
	}
	if warmStats.CompileUnits != 0 {
		t.Errorf("warm run accrued compile cost %v, want 0 (all replayed)", warmStats.CompileUnits)
	}
	if warmStats.Commands != coldStats.Commands {
		t.Errorf("warm ran %d commands, cold %d", warmStats.Commands, coldStats.Commands)
	}
	if !cold.Equal(warm) {
		t.Error("replayed file system differs from executed one")
	}
	s := memo.Stats()
	if s.Misses != 3 || s.Hits != 3 {
		t.Errorf("stats = %+v, want 3 misses + 3 hits", s)
	}
}

// TestRunnerMemoInvalidatedBySourceEdit edits one source between runs:
// the touched compile re-executes, the untouched one replays. The link
// replays too — the edited source recompiles to a byte-identical
// metadata artifact, so the cache prunes the rebuild there (the same
// early cutoff a content-addressed build system gives you when a
// comment-only edit produces an unchanged object file).
func TestRunnerMemoInvalidatedBySourceEdit(t *testing.T) {
	memo := newDiskMemo(t)
	pass := func(edit bool) *fsim.FS {
		f := buildFS()
		if edit {
			f.WriteFile("/src/util.c", []byte("double f(double x){return x+x;}\n"), 0o644)
		}
		r := memoRunner(f, memo)
		run(t, r, "gcc -O2 -c main.c -o main.o")
		run(t, r, "gcc -O2 -c util.c -o util.o")
		run(t, r, "gcc main.o util.o -lm -o app")
		return f
	}
	pass(false)
	pass(true)
	s := memo.Stats()
	// Cold: 3 misses. Edited: util.c re-executes; main.c and the link
	// (whose object inputs are unchanged) replay.
	if s.Misses != 4 || s.Hits != 2 {
		t.Errorf("stats = %+v, want 4 misses + 2 hits", s)
	}
}

// TestRunnerMemoInvalidatedByLibraryChange swaps the libm artifact the
// link resolves: the compiles replay, the link must not.
func TestRunnerMemoInvalidatedByLibraryChange(t *testing.T) {
	memo := newDiskMemo(t)
	pass := func(newLib bool) *fsim.FS {
		f := buildFS()
		if newLib {
			lib := LibraryArtifact("libm", "vendor-hpc", ISAx86, 2.5, true)
			f.WriteFile("/usr/lib/libm.so.6", lib.Encode(), 0o644)
		}
		r := memoRunner(f, memo)
		run(t, r, "gcc -O2 -c main.c -o main.o")
		run(t, r, "gcc main.o -lm -o app")
		return f
	}
	pass(false)
	f := pass(true)
	s := memo.Stats()
	if s.Misses != 3 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 3 misses + 1 hit", s)
	}
	data, err := f.ReadFile("/src/app")
	if err != nil {
		t.Fatal(err)
	}
	art, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range art.DynamicLibs {
		if strings.Contains(d, "libm") {
			found = true
		}
	}
	if !found {
		t.Errorf("relinked app lost libm: %v", art.DynamicLibs)
	}
}

// TestRunnerMemoDistinctToolchainsDoNotCollide runs the same argv
// under x86 and ARM registries: the ARM run must not replay x86 cache
// entries.
func TestRunnerMemoDistinctToolchainsDoNotCollide(t *testing.T) {
	memo := newDiskMemo(t)

	fx := fsim.New()
	fx.WriteFile("/src/a.c", []byte("int f(void){return 1;}\n"), 0o644)
	rx := memoRunner(fx, memo)
	run(t, rx, "gcc -c a.c -o a.o")

	fa := fsim.New()
	fa.WriteFile("/src/a.c", []byte("int f(void){return 1;}\n"), 0o644)
	ra := NewRunner(fa, GenericRegistry(ISAArm))
	ra.Cwd = "/src"
	ra.Memo = memo
	run(t, ra, "gcc -c a.c -o a.o")

	if s := memo.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Errorf("stats = %+v: cross-toolchain cache collision", s)
	}
	xd, _ := fx.ReadFile("/src/a.o")
	ad, _ := fa.ReadFile("/src/a.o")
	xa, _ := Decode(xd)
	aa, _ := Decode(ad)
	if xa.TargetISA == aa.TargetISA {
		t.Error("ARM build replayed the x86 object")
	}
}

// TestRunnerMemoErrorsStayUncached verifies a failing compile is not
// memoized: fixing the input makes it succeed.
func TestRunnerMemoErrorsStayUncached(t *testing.T) {
	memo := newDiskMemo(t)
	f := fsim.New()
	r := memoRunner(f, memo)
	if err := r.Run(strings.Fields("gcc -c missing.c -o a.o")); err == nil {
		t.Fatal("compile of a missing source succeeded")
	}
	f.WriteFile("/src/missing.c", []byte("int f(void){return 0;}\n"), 0o644)
	run(t, r, "gcc -c missing.c -o a.o")
	if !f.Exists("/src/a.o") {
		t.Fatal("object not produced after the fix")
	}
}
