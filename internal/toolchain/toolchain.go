package toolchain

import (
	"fmt"
	"sort"
	"strings"
)

// ISA identifiers used throughout the repository.
const (
	ISAx86 = "x86-64"
	ISAArm = "aarch64"
)

// Toolchain describes one compiler suite: its identity, target, the
// architecture -march=native resolves to, and which machine options it
// accepts. Quality factors live in the system profiles; the toolchain only
// stamps its name into artifacts.
type Toolchain struct {
	Name        string // stamped into artifacts, e.g. "gnu-gcc-13"
	Vendor      string // "gnu", "llvm", or an HPC vendor
	TargetISA   string
	NativeMarch string // what -march=native means on this toolchain's host
	// DefaultMarch is used when a command names no -march: the baseline
	// the distribution compiles for.
	DefaultMarch string
	// ValidMarch lists the -march= values this toolchain accepts.
	ValidMarch []string
	// ValidMachineFlags lists accepted -m<flag> switches (beyond -march/
	// -mtune), e.g. "avx2" on x86-64. Unknown machine flags are errors,
	// which is how cross-ISA builds fail without script changes.
	ValidMachineFlags []string
	// SupportsLTO / SupportsPGO gate the advanced optimizations.
	SupportsLTO bool
	SupportsPGO bool
}

// AcceptsMarch reports whether the toolchain accepts -march=v.
func (tc *Toolchain) AcceptsMarch(v string) bool {
	if v == "native" {
		return true
	}
	for _, m := range tc.ValidMarch {
		if m == v {
			return true
		}
	}
	return false
}

// AcceptsMachineFlag reports whether the toolchain accepts -m<flag>.
func (tc *Toolchain) AcceptsMachineFlag(flag string) bool {
	if strings.HasPrefix(flag, "arch=") || strings.HasPrefix(flag, "tune=") {
		return true // validated separately
	}
	for _, f := range tc.ValidMachineFlags {
		if f == flag {
			return true
		}
	}
	return false
}

// ResolveMarch maps a requested -march value (possibly empty or "native")
// to the concrete architecture the artifact is built for.
func (tc *Toolchain) ResolveMarch(v string) (string, error) {
	switch v {
	case "":
		return tc.DefaultMarch, nil
	case "native":
		return tc.NativeMarch, nil
	default:
		if !tc.AcceptsMarch(v) {
			return "", fmt.Errorf("toolchain %s: unsupported -march=%s (valid: %s)",
				tc.Name, v, strings.Join(tc.ValidMarch, ", "))
		}
		return v, nil
	}
}

// Registry maps tool names (gcc, g++, cc, ar, ...) to toolchains — the
// contents of a container's $PATH, in effect. The same registry shape
// serves the generic build container and the vendor Sysenv container.
type Registry struct {
	byTool map[string]*Toolchain
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byTool: make(map[string]*Toolchain)}
}

// Register binds the standard driver names (and the given extra aliases)
// to tc. The standard names are cc/gcc/g++/c++/gfortran plus the mpi
// wrappers, mirroring what base images install.
func (r *Registry) Register(tc *Toolchain, aliases ...string) {
	std := []string{"cc", "gcc", "g++", "c++", "gfortran", "mpicc", "mpicxx", "mpifort"}
	for _, n := range append(std, aliases...) {
		r.byTool[n] = tc
	}
}

// RegisterTool binds a single tool name to tc.
func (r *Registry) RegisterTool(name string, tc *Toolchain) {
	r.byTool[name] = tc
}

// Lookup resolves a tool name (basename of argv[0]) to its toolchain.
func (r *Registry) Lookup(tool string) (*Toolchain, bool) {
	if i := strings.LastIndexByte(tool, '/'); i >= 0 {
		tool = tool[i+1:]
	}
	tc, ok := r.byTool[tool]
	return tc, ok
}

// Tools returns the sorted tool names in the registry.
func (r *Registry) Tools() []string {
	out := make([]string, 0, len(r.byTool))
	for n := range r.byTool {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- Stock toolchain definitions ---

// x86MarchLevels are the generic x86-64 micro-architecture levels plus the
// concrete server parts the vendor compiler knows.
var x86MarchLevels = []string{"x86-64", "x86-64-v2", "x86-64-v3", "x86-64-v4", "skylake-avx512", "icelake-server"}

// armMarchLevels are the AArch64 architecture levels.
var armMarchLevels = []string{"armv8-a", "armv8.1-a", "armv8.2-a", "ft2000plus"}

// GNUx86 returns the stock distribution GCC targeting x86-64 — the
// toolchain inside generic base images.
func GNUx86() *Toolchain {
	return &Toolchain{
		Name:              "gnu-gcc-13",
		Vendor:            "gnu",
		TargetISA:         ISAx86,
		NativeMarch:       "x86-64-v3", // a stock build box, not the HPC node
		DefaultMarch:      "x86-64",
		ValidMarch:        x86MarchLevels,
		ValidMachineFlags: []string{"avx2", "avx512f", "sse4.2", "fma", "no-avx256-split-unaligned-load"},
		SupportsLTO:       true,
		SupportsPGO:       true,
	}
}

// GNUArm returns the stock distribution GCC targeting AArch64.
func GNUArm() *Toolchain {
	return &Toolchain{
		Name:              "gnu-gcc-13",
		Vendor:            "gnu",
		TargetISA:         ISAArm,
		NativeMarch:       "armv8.1-a",
		DefaultMarch:      "armv8-a",
		ValidMarch:        armMarchLevels,
		ValidMachineFlags: []string{"outline-atomics", "strict-align", "sve"},
		SupportsLTO:       true,
		SupportsPGO:       true,
	}
}

// VendorX86 returns the x86 HPC system's vendor compiler (the cxxo swap
// target on the Intel-like cluster). Its -march=native resolves to the
// actual node micro-architecture.
func VendorX86() *Toolchain {
	return &Toolchain{
		Name:              "ixc-2025",
		Vendor:            "intellic",
		TargetISA:         ISAx86,
		NativeMarch:       "icelake-server",
		DefaultMarch:      "x86-64-v3",
		ValidMarch:        x86MarchLevels,
		ValidMachineFlags: []string{"avx2", "avx512f", "sse4.2", "fma", "prefer-vector-width=512"},
		SupportsLTO:       true,
		SupportsPGO:       true,
	}
}

// VendorArm returns the AArch64 HPC system's vendor compiler (Phytium-like).
func VendorArm() *Toolchain {
	return &Toolchain{
		Name:              "pcc-11",
		Vendor:            "phytium",
		TargetISA:         ISAArm,
		NativeMarch:       "ft2000plus",
		DefaultMarch:      "armv8-a",
		ValidMarch:        armMarchLevels,
		ValidMachineFlags: []string{"outline-atomics", "strict-align", "sve", "cpu=ft2000plus"},
		SupportsLTO:       true,
		SupportsPGO:       true,
	}
}

// LLVM returns a free LLVM toolchain for the given ISA — the alternative
// the artifact evaluation ships because the proprietary vendor toolchains
// cannot be redistributed.
func LLVM(isa string) *Toolchain {
	tc := &Toolchain{
		Name:        "llvm-clang-18",
		Vendor:      "llvm",
		TargetISA:   isa,
		SupportsLTO: true,
		SupportsPGO: true,
	}
	if isa == ISAArm {
		tc.NativeMarch = "armv8.2-a"
		tc.DefaultMarch = "armv8-a"
		tc.ValidMarch = armMarchLevels
		tc.ValidMachineFlags = []string{"outline-atomics", "sve"}
	} else {
		tc.NativeMarch = "x86-64-v4"
		tc.DefaultMarch = "x86-64"
		tc.ValidMarch = x86MarchLevels
		tc.ValidMachineFlags = []string{"avx2", "avx512f", "sse4.2", "fma"}
	}
	return tc
}

// GenericRegistry returns the registry of a stock base-image build
// environment for the given ISA: distribution GCC plus binutils.
func GenericRegistry(isa string) *Registry {
	r := NewRegistry()
	if isa == ISAArm {
		r.Register(GNUArm())
	} else {
		r.Register(GNUx86())
	}
	return r
}

// VendorRegistry returns the registry of an HPC system's Sysenv container:
// the vendor compiler bound to the standard driver names (so rebuilt
// command lines transparently pick it up) plus its own names.
func VendorRegistry(isa string) *Registry {
	r := NewRegistry()
	if isa == ISAArm {
		tc := VendorArm()
		r.Register(tc, "pcc", "pc++", "pfort")
	} else {
		tc := VendorX86()
		r.Register(tc, "ixc", "ixx", "ifort")
	}
	return r
}

// LLVMRegistry returns a registry serving the free LLVM toolchain under
// both the clang names and the standard driver names.
func LLVMRegistry(isa string) *Registry {
	r := NewRegistry()
	r.Register(LLVM(isa), "clang", "clang++", "flang")
	return r
}
