package toolchain

import (
	"strings"
	"testing"

	"comtainer/internal/fsim"
)

// buildFS returns an image FS with a C runtime, libm, and two sources.
func buildFS() *fsim.FS {
	f := fsim.New()
	libc := LibraryArtifact("libc", "gnu", ISAx86, 1.0, false)
	f.WriteFile("/usr/lib/libc.so.6", libc.Encode(), 0o644)
	f.Symlink("libc.so.6", "/usr/lib/libc.so")
	libm := LibraryArtifact("libm", "gnu", ISAx86, 1.0, false)
	f.WriteFile("/usr/lib/libm.so.6", libm.Encode(), 0o644)
	f.Symlink("libm.so.6", "/usr/lib/libm.so")
	f.WriteFile("/src/main.c", []byte("#include <stdio.h>\nint main(){return 0;}\n"), 0o644)
	f.WriteFile("/src/util.c", []byte("double f(double x){return x*x;}\n"), 0o644)
	return f
}

func newX86Runner(f *fsim.FS) *Runner {
	r := NewRunner(f, GenericRegistry(ISAx86))
	r.Cwd = "/src"
	return r
}

func run(t *testing.T, r *Runner, line string) {
	t.Helper()
	if err := r.Run(strings.Fields(line)); err != nil {
		t.Fatalf("Run(%q): %v", line, err)
	}
}

func runErr(t *testing.T, r *Runner, line string) error {
	t.Helper()
	err := r.Run(strings.Fields(line))
	if err == nil {
		t.Fatalf("Run(%q) succeeded, want error", line)
	}
	return err
}

func loadArt(t *testing.T, f *fsim.FS, p string) *Artifact {
	t.Helper()
	data, err := f.ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", p, err)
	}
	a, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%s): %v", p, err)
	}
	return a
}

func TestCompileObject(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O2 -c main.c -o main.o")
	a := loadArt(t, f, "/src/main.o")
	if a.Kind != KindObject || a.OptLevel != "2" || a.TargetISA != ISAx86 {
		t.Errorf("artifact = %+v", a)
	}
	if a.March != "x86-64" {
		t.Errorf("default march = %q", a.March)
	}
	if len(a.Sources) != 1 || a.Sources[0] != "/src/main.c" {
		t.Errorf("Sources = %v", a.Sources)
	}
	if a.Toolchain != "gnu-gcc-13" {
		t.Errorf("Toolchain = %q", a.Toolchain)
	}
}

func TestCompileDefaultOutputName(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -c main.c util.c")
	if !f.Exists("/src/main.o") || !f.Exists("/src/util.o") {
		t.Error("default-named objects missing")
	}
}

func TestCompileMissingSource(t *testing.T) {
	r := newX86Runner(buildFS())
	err := runErr(t, r, "gcc -c nonexistent.c")
	if !strings.Contains(err.Error(), "no such file") {
		t.Errorf("err = %v", err)
	}
}

func TestLinkExecutable(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O2 -c main.c")
	run(t, r, "gcc -O2 -c util.c")
	run(t, r, "gcc main.o util.o -lm -o app")
	a := loadArt(t, f, "/src/app")
	if a.Kind != KindExecutable {
		t.Errorf("Kind = %s", a.Kind)
	}
	if len(a.Sources) != 2 {
		t.Errorf("Sources = %v", a.Sources)
	}
	// libm resolved through the symlink, libc implicit.
	wantLibs := map[string]bool{"/usr/lib/libm.so.6": true, "/usr/lib/libc.so.6": true}
	if len(a.DynamicLibs) != 2 {
		t.Fatalf("DynamicLibs = %v", a.DynamicLibs)
	}
	for _, l := range a.DynamicLibs {
		if !wantLibs[l] {
			t.Errorf("unexpected dynamic lib %s", l)
		}
	}
}

func TestCompileAndLinkOneStep(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O3 main.c util.c -o app")
	a := loadArt(t, f, "/src/app")
	if a.Kind != KindExecutable || a.OptLevel != "3" || len(a.Sources) != 2 {
		t.Errorf("artifact = %+v", a)
	}
}

func TestLinkMissingLibrary(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -c main.c")
	err := runErr(t, r, "gcc main.o -lblas -o app")
	if !strings.Contains(err.Error(), "cannot find -lblas") {
		t.Errorf("err = %v", err)
	}
}

func TestLinkWrongISA(t *testing.T) {
	f := buildFS()
	x86 := newX86Runner(f)
	run(t, x86, "gcc -c main.c")
	// Try to link the x86 object with an AArch64 toolchain.
	arm := NewRunner(f, GenericRegistry(ISAArm))
	arm.Cwd = "/src"
	err := arm.Run(strings.Fields("gcc main.o -o app"))
	if err == nil || !strings.Contains(err.Error(), "wrong format") {
		t.Errorf("err = %v", err)
	}
}

func TestMachineFlagValidation(t *testing.T) {
	f := buildFS()
	arm := NewRunner(f, GenericRegistry(ISAArm))
	arm.Cwd = "/src"
	err := arm.Run(strings.Fields("gcc -mavx2 -c main.c"))
	if err == nil || !strings.Contains(err.Error(), "unrecognized") {
		t.Errorf("-mavx2 on aarch64: err = %v", err)
	}
	err = arm.Run(strings.Fields("gcc -march=icelake-server -c main.c"))
	if err == nil {
		t.Error("x86 march accepted by aarch64 toolchain")
	}
	// Valid for ARM.
	if err := arm.Run(strings.Fields("gcc -march=armv8.2-a -c main.c")); err != nil {
		t.Errorf("valid arm march rejected: %v", err)
	}
}

func TestMarchNativeResolution(t *testing.T) {
	f := buildFS()
	// Generic GCC on a build box.
	r := newX86Runner(f)
	run(t, r, "gcc -march=native -c main.c -o gen.o")
	if a := loadArt(t, f, "/src/gen.o"); a.March != "x86-64-v3" {
		t.Errorf("generic native march = %q", a.March)
	}
	// Vendor compiler on the HPC node.
	v := NewRunner(f, VendorRegistry(ISAx86))
	v.Cwd = "/src"
	run(t, v, "gcc -march=native -c main.c -o vend.o")
	a := loadArt(t, f, "/src/vend.o")
	if a.March != "icelake-server" || a.Vendor != "intellic" {
		t.Errorf("vendor native artifact = %+v", a)
	}
}

func TestArchiveAndLinkStatic(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O2 -c util.c")
	run(t, r, "ar rcs libutil.a util.o")
	a := loadArt(t, f, "/src/libutil.a")
	if a.Kind != KindArchive || len(a.Objects) != 1 {
		t.Errorf("archive = %+v", a)
	}
	run(t, r, "gcc -O2 -c main.c")
	run(t, r, "gcc main.o -L. -lutil -o app")
	app := loadArt(t, f, "/src/app")
	if len(app.Sources) != 2 {
		t.Errorf("static-linked sources = %v", app.Sources)
	}
	// Static lib contributes no dynamic dependency.
	for _, l := range app.DynamicLibs {
		if strings.Contains(l, "util") {
			t.Errorf("static archive appears as dynamic dep: %v", app.DynamicLibs)
		}
	}
}

func TestLTOPropagation(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O2 -flto -c main.c")
	run(t, r, "gcc -O2 -flto -c util.c")
	run(t, r, "gcc -flto main.o util.o -o app")
	a := loadArt(t, f, "/src/app")
	if !a.LTO {
		t.Error("LTO link not marked")
	}
	if r.Stats.LTOLinks != 1 {
		t.Errorf("LTOLinks = %d", r.Stats.LTOLinks)
	}

	// Mixing a non-LTO object drops whole-program LTO.
	run(t, r, "gcc -O2 -c util.c -o plain.o")
	run(t, r, "gcc -flto main.o plain.o -o app2")
	if a := loadArt(t, f, "/src/app2"); a.LTO {
		t.Error("LTO marked despite non-IR object")
	}
}

func TestPGOWorkflow(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	// Instrumented build.
	run(t, r, "gcc -O2 -fprofile-generate -c main.c")
	run(t, r, "gcc -fprofile-generate main.o -o app")
	a := loadArt(t, f, "/src/app")
	if !a.PGOInstrumented {
		t.Error("instrumented binary not marked")
	}
	// Optimized rebuild fails without profile data...
	err := runErr(t, r, "gcc -O2 -fprofile-use=/prof/app.profdata -c main.c")
	if !strings.Contains(err.Error(), "profile") {
		t.Errorf("err = %v", err)
	}
	// ...and succeeds once the profile exists.
	f.WriteFile("/prof/app.profdata", []byte("profile-bits"), 0o644)
	run(t, r, "gcc -O2 -fprofile-use=/prof/app.profdata -c main.c")
	run(t, r, "gcc main.o -o app")
	a = loadArt(t, f, "/src/app")
	if !a.PGOOptimized || a.ProfileData == "" {
		t.Errorf("PGO-optimized artifact = %+v", a)
	}
}

func TestISAMarkerBlocksCrossCompile(t *testing.T) {
	f := buildFS()
	f.WriteFile("/src/simd.c", []byte(
		"void kernel(){\n__asm__(\"vfmadd231pd\"); /* isa:x86-64 */\n}\n"), 0o644)
	// Native ISA compiles fine.
	x86 := newX86Runner(f)
	run(t, x86, "gcc -c simd.c")
	// Foreign ISA fails...
	arm := NewRunner(f, GenericRegistry(ISAArm))
	arm.Cwd = "/src"
	err := arm.Run(strings.Fields("gcc -c simd.c"))
	if err == nil || !strings.Contains(err.Error(), "inline assembly") {
		t.Errorf("err = %v", err)
	}
	// ...unless the portable guard is defined (the Fig.-11 script change).
	if err := arm.Run(strings.Fields("gcc -DCOMT_PORTABLE -c simd.c")); err != nil {
		t.Errorf("guarded compile failed: %v", err)
	}
}

func TestCompileCostAccounting(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O0 -c main.c -o o0.o")
	afterO0 := r.Stats.CompileUnits
	run(t, r, "gcc -O3 -c main.c -o o3.o")
	afterO3 := r.Stats.CompileUnits - afterO0
	if afterO3 <= afterO0 {
		t.Errorf("O3 cost (%f) not greater than O0 cost (%f)", afterO3, afterO0)
	}
	// LTO link adds substantial cost.
	before := r.Stats.CompileUnits
	run(t, r, "gcc -O2 -flto -c main.c")
	run(t, r, "gcc -flto main.o -o app")
	if r.Stats.CompileUnits-before <= afterO3 {
		t.Error("LTO pipeline not costlier than plain compile")
	}
}

func TestUnknownCommand(t *testing.T) {
	r := newX86Runner(buildFS())
	if err := r.Run([]string{"cmake", ".."}); err == nil {
		t.Error("unknown command accepted")
	}
	if r.CanRun([]string{"cmake"}) {
		t.Error("CanRun(cmake) = true")
	}
	if !r.CanRun([]string{"g++", "-c", "x.cc"}) || !r.CanRun([]string{"ar", "rcs", "x.a"}) {
		t.Error("CanRun false for known tools")
	}
}

func TestRanlib(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -c util.c")
	run(t, r, "ar rcs libu.a util.o")
	run(t, r, "ranlib libu.a")
	if err := r.Run([]string{"ranlib", "missing.a"}); err == nil {
		t.Error("ranlib on missing archive succeeded")
	}
}

func TestArtifactEncodeDecodeRoundTrip(t *testing.T) {
	a := &Artifact{
		Kind: KindExecutable, Name: "app", Toolchain: "gnu-gcc-13", Vendor: "gnu",
		TargetISA: ISAx86, March: "x86-64-v3", OptLevel: "3", LTO: true,
		Sources: []string{"/src/a.c"}, DynamicLibs: []string{"/usr/lib/libc.so.6"},
	}
	enc := a.Encode()
	if !IsArtifact(enc) {
		t.Fatal("encoded artifact not recognized")
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != a.Name || back.LTO != a.LTO || back.March != a.March {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("Decode accepted garbage")
	}
}

func TestRegistryLookup(t *testing.T) {
	r := GenericRegistry(ISAx86)
	if _, ok := r.Lookup("/usr/bin/g++"); !ok {
		t.Error("path-qualified lookup failed")
	}
	if _, ok := r.Lookup("nvcc"); ok {
		t.Error("unknown tool resolved")
	}
	v := VendorRegistry(ISAArm)
	tc, ok := v.Lookup("gcc")
	if !ok || tc.Vendor != "phytium" {
		t.Errorf("vendor registry gcc = %+v", tc)
	}
}

func TestBoltTool(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	run(t, r, "gcc -O2 main.c -o app")
	// Fails without a profile.
	err := runErr(t, r, "comt-bolt -profile /p/run.profdata -o app.bolt app")
	if !strings.Contains(err.Error(), "profile") {
		t.Errorf("err = %v", err)
	}
	f.WriteFile("/p/run.profdata", []byte("profile"), 0o644)
	run(t, r, "comt-bolt -profile /p/run.profdata -o app.bolt app")
	a := loadArt(t, f, "/src/app.bolt")
	if !a.LayoutOptimized {
		t.Error("output not marked layout-optimized")
	}
	if a.ProfileData == "" {
		t.Error("profile reference missing")
	}
	// Only executables are accepted.
	run(t, r, "gcc -c util.c")
	if err := r.Run(strings.Fields("comt-bolt -profile /p/run.profdata util.o")); err == nil {
		t.Error("bolt accepted an object file")
	}
	// In-place optimization (no -o).
	run(t, r, "comt-bolt -profile /p/run.profdata app")
	if a := loadArt(t, f, "/src/app"); !a.LayoutOptimized {
		t.Error("in-place optimization failed")
	}
	if !r.CanRun([]string{"comt-bolt"}) {
		t.Error("CanRun(comt-bolt) = false")
	}
}

func TestInfoModeNoOp(t *testing.T) {
	f := buildFS()
	r := newX86Runner(f)
	before := f.Len()
	run(t, r, "gcc --version")
	if f.Len() != before {
		t.Error("--version modified the file system")
	}
}
