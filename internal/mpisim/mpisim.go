// Package mpisim models MPI communication cost over HPC interconnects
// with an alpha-beta (latency-bandwidth) model.
//
// The paper's LULESH story (§5.2) hinges on exactly this effect: "the MPI
// library in original fails to utilize the system's specialized high-speed
// network due to the lack of dedicated plugins, resulting in significantly
// higher communication overhead." An MPI library artifact either carries
// the fabric plugin (vendor builds) or falls back to the TCP path.
package mpisim

import (
	"fmt"

	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

// Path identifies which network path an MPI library drives on a fabric.
type Path int

// Network paths.
const (
	// PathNative is the fabric's high-speed path, available only to MPI
	// builds carrying the fabric plugin.
	PathNative Path = iota
	// PathFallback is the TCP emulation path generic MPI builds use.
	PathFallback
	// PathShared is intra-node shared memory (single-node runs).
	PathShared
)

// PathFor determines the network path an MPI library artifact gets on a
// fabric: plugin builds ride the native path, everything else falls back.
func PathFor(mpi *toolchain.Artifact, nodes int) Path {
	if nodes <= 1 {
		return PathShared
	}
	if mpi != nil && mpi.MPINetPlugin {
		return PathNative
	}
	return PathFallback
}

// MessageCostUS returns the alpha-beta cost of one message of msgKB
// kilobytes over the fabric on the given path, in microseconds.
func MessageCostUS(f sysprofile.Fabric, path Path, msgKB float64) (float64, error) {
	if msgKB < 0 {
		return 0, fmt.Errorf("mpisim: negative message size %f", msgKB)
	}
	switch path {
	case PathNative:
		return f.AlphaNativeUS + msgKB/f.BWNativeGBs*1e-3*1024, nil
	case PathFallback:
		return f.AlphaFallbackUS + msgKB/f.BWFallbackGBs*1e-3*1024, nil
	case PathShared:
		// Intra-node: fixed cheap cost; never the bottleneck.
		return 0.2 + msgKB/100*1e-3*1024, nil
	default:
		return 0, fmt.Errorf("mpisim: unknown path %d", path)
	}
}

// Penalty returns the slowdown factor of running a workload's message mix
// over the fallback path instead of the native one: a pure function of the
// fabric and the average message size.
func Penalty(f sysprofile.Fabric, msgKB float64) (float64, error) {
	native, err := MessageCostUS(f, PathNative, msgKB)
	if err != nil {
		return 0, err
	}
	fallback, err := MessageCostUS(f, PathFallback, msgKB)
	if err != nil {
		return 0, err
	}
	if native <= 0 {
		return 0, fmt.Errorf("mpisim: non-positive native message cost")
	}
	return fallback / native, nil
}

// CommTime computes the communication time of a run, given the native-path
// communication time budget (seconds) of the workload at the same scale.
// The budget anchors absolute time; the alpha-beta model supplies the
// relative cost of the path actually taken.
func CommTime(f sysprofile.Fabric, mpi *toolchain.Artifact, nodes int, nativeBudgetSec, msgKB float64) (float64, error) {
	path := PathFor(mpi, nodes)
	switch path {
	case PathShared:
		return 0, nil
	case PathNative:
		return nativeBudgetSec, nil
	default:
		p, err := Penalty(f, msgKB)
		if err != nil {
			return 0, err
		}
		return nativeBudgetSec * p, nil
	}
}

// ScaleCommFrac adjusts a 16-node communication fraction to another node
// count with a simple surface-to-volume law: halving the node count
// roughly halves the communication share, and one node has none.
func ScaleCommFrac(commFrac16 float64, nodes int) float64 {
	if nodes <= 1 {
		return 0
	}
	f := commFrac16 * float64(nodes) / 16.0
	if f > 0.95 {
		f = 0.95
	}
	return f
}
