package mpisim

import (
	"testing"

	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

func TestPathFor(t *testing.T) {
	plugin := toolchain.MPILibraryArtifact("libmpi", "phytium", toolchain.ISAArm, 1.15, true)
	generic := toolchain.MPILibraryArtifact("libmpi", "gnu", toolchain.ISAArm, 1.0, false)
	if PathFor(plugin, 16) != PathNative {
		t.Error("vendor MPI should ride the native path")
	}
	if PathFor(generic, 16) != PathFallback {
		t.Error("generic MPI should fall back")
	}
	if PathFor(plugin, 1) != PathShared || PathFor(nil, 1) != PathShared {
		t.Error("single-node runs use shared memory")
	}
	if PathFor(nil, 16) != PathFallback {
		t.Error("no MPI artifact should fall back")
	}
}

func TestMessageCostMonotonicInSize(t *testing.T) {
	f := sysprofile.X86Cluster().Fabric
	small, err := MessageCostUS(f, PathNative, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MessageCostUS(f, PathNative, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Errorf("cost not monotone: %f vs %f", small, big)
	}
	if _, err := MessageCostUS(f, PathNative, -1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := MessageCostUS(f, Path(99), 1); err == nil {
		t.Error("bogus path accepted")
	}
}

func TestPenaltyShapes(t *testing.T) {
	x86 := sysprofile.X86Cluster().Fabric
	arm := sysprofile.ArmCluster().Fabric
	// The LULESH message mix (256 KB): x86 degrades mildly, the ARM
	// proprietary fabric collapses — the paper's §5.2 story.
	px, err := Penalty(x86, 256)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Penalty(arm, 256)
	if err != nil {
		t.Fatal(err)
	}
	if px < 1.0 || px > 1.3 {
		t.Errorf("x86 penalty at 256KB = %f, want mild (1.0-1.3)", px)
	}
	if pa < 2.5 || pa > 4.5 {
		t.Errorf("aarch64 penalty at 256KB = %f, want severe (~3.2)", pa)
	}
	if pa <= px {
		t.Error("aarch64 fallback should be worse than x86's")
	}
	// Latency-bound small messages hurt even more on the ARM fabric.
	paSmall, _ := Penalty(arm, 4)
	if paSmall <= pa {
		t.Errorf("small-message penalty (%f) should exceed large-message (%f)", paSmall, pa)
	}
}

func TestCommTime(t *testing.T) {
	sys := sysprofile.ArmCluster()
	vendor := toolchain.MPILibraryArtifact("libmpi", "phytium", toolchain.ISAArm, 1.15, true)
	generic := toolchain.MPILibraryArtifact("libmpi", "gnu", toolchain.ISAArm, 1.0, false)

	nat, err := CommTime(sys.Fabric, vendor, 16, 10.0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if nat != 10.0 {
		t.Errorf("native comm time = %f, want the budget", nat)
	}
	fb, err := CommTime(sys.Fabric, generic, 16, 10.0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if fb <= 25 || fb >= 45 {
		t.Errorf("fallback comm time = %f, want ~32", fb)
	}
	single, err := CommTime(sys.Fabric, generic, 1, 10.0, 256)
	if err != nil || single != 0 {
		t.Errorf("single node comm = %f, %v", single, err)
	}
}

func TestScaleCommFrac(t *testing.T) {
	if ScaleCommFrac(0.9, 1) != 0 {
		t.Error("1 node should have no comm share")
	}
	if f := ScaleCommFrac(0.9, 16); f != 0.9 {
		t.Errorf("16-node share = %f", f)
	}
	if f := ScaleCommFrac(0.4, 8); f != 0.2 {
		t.Errorf("8-node share = %f", f)
	}
	if f := ScaleCommFrac(0.9, 32); f > 0.95 {
		t.Errorf("share not clamped: %f", f)
	}
}
