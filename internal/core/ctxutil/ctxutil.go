// Package ctxutil holds tiny context-aware primitives shared by every
// layer of the system. It sits below internal/core proper (which pulls
// in the heavy subsystems) so leaf packages like distrib, fleet, and
// remoteexec can import it without cycles.
package ctxutil

import (
	"context"
	"time"
)

// Sleep waits for d or until ctx is done, whichever comes first — the
// cancellation-aware replacement for time.Sleep on retry, backoff, and
// heartbeat paths. It returns ctx.Err() when the wait was cut short and
// nil when the full duration elapsed.
func Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
