package backend

import (
	"strings"
	"testing"

	"comtainer/internal/chrun"
	"comtainer/internal/containerfile"

	"comtainer/internal/core/cache"
	"comtainer/internal/core/frontend"
	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// setup builds the comd app end-to-end on the user side and returns a
// system-side repo holding the extended image plus Sysenv/Rebase images.
func setup(t *testing.T, sys *sysprofile.System) (*oci.Repository, string) {
	t.Helper()
	userRepo := oci.NewRepository()
	if err := sysprofile.PopulateUserSide(userRepo, sys.ISA); err != nil {
		t.Fatal(err)
	}
	app, err := workloads.Find("comd")
	if err != nil {
		t.Fatal(err)
	}
	ctx := fsim.New()
	for name, content := range app.Sources(sys.ISA) {
		ctx.WriteFile("/src/"+name, []byte(content), 0o644)
	}
	b := &containerfile.Builder{
		Repo:     userRepo,
		Context:  ctx,
		Registry: toolchain.GenericRegistry(sys.ISA),
		AptIndex: sysprofile.GenericIndex(sys.ISA),
		Recorder: hijack.NewRecorder(),
	}
	cf, err := containerfile.Parse(app.Containerfile(sys.ISA, true))
	if err != nil {
		t.Fatal(err)
	}
	buildDesc, err := b.Build(cf, "build")
	if err != nil {
		t.Fatal(err)
	}
	distDesc, err := b.Build(cf, "dist")
	if err != nil {
		t.Fatal(err)
	}
	userRepo.Tag("comd.dist", distDesc)
	buildImg, _ := oci.LoadImage(userRepo.Store, buildDesc)
	distImg, _ := oci.LoadImage(userRepo.Store, distDesc)
	models, buildFS, err := frontend.Analyze(buildImg, distImg)
	if err != nil {
		t.Fatal(err)
	}
	extDesc, err := cache.Extend(userRepo, "comd.dist", models, buildFS)
	if err != nil {
		t.Fatal(err)
	}

	sysRepo := oci.NewRepository()
	if err := sysprofile.PopulateSystemSide(sysRepo, sys); err != nil {
		t.Fatal(err)
	}
	if err := sysRepo.PushImage(userRepo.Store, extDesc, cache.ExtendedTag("comd.dist")); err != nil {
		t.Fatal(err)
	}
	return sysRepo, "comd.dist"
}

func TestRebuildProducesVendorArtifacts(t *testing.T) {
	sys := sysprofile.X86Cluster()
	repo, distTag := setup(t, sys)
	rebuilt, report, err := Rebuild(repo, distTag, RebuildOptions{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if report.ChangedCommands == 0 {
		t.Error("no commands adapted")
	}
	img, err := oci.LoadImage(repo.Store, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	data, err := flat.ReadFile(rebuildPrefix + "/app/comd")
	if err != nil {
		t.Fatalf("rebuilt binary missing: %v (paths: %v)", err, flat.Glob("/.comtainer/rebuild/*"))
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if art.Vendor != sys.Vendor || art.March != sys.NativeMarch {
		t.Errorf("rebuilt artifact = vendor %s march %s", art.Vendor, art.March)
	}
	// +coMre tag exists.
	if _, err := repo.Resolve(cache.RebuiltTag(distTag)); err != nil {
		t.Error(err)
	}
}

func TestRebuildRequiresExtendedImage(t *testing.T) {
	sys := sysprofile.X86Cluster()
	repo := oci.NewRepository()
	if err := sysprofile.PopulateSystemSide(repo, sys); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Rebuild(repo, "ghost.dist", RebuildOptions{System: sys}); err == nil {
		t.Error("rebuild without an extended image succeeded")
	}
	if _, _, err := Rebuild(repo, "x", RebuildOptions{}); err == nil {
		t.Error("rebuild without a system succeeded")
	}
}

func TestRedirectInstallsOptimizedStack(t *testing.T) {
	sys := sysprofile.ArmCluster()
	repo, distTag := setup(t, sys)
	if _, _, err := Rebuild(repo, distTag, RebuildOptions{System: sys}); err != nil {
		t.Fatal(err)
	}
	desc, err := Redirect(repo, distTag, RedirectOptions{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	img, err := oci.LoadImage(repo.Store, desc)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// Optimized MPI with the fabric plugin.
	data, err := flat.ReadFile("/usr/lib/libmpi.so.40")
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Optimized || !art.MPINetPlugin {
		t.Errorf("redirected MPI = %+v", art)
	}
	// The application binary landed at its dist path and runs.
	var ref workloads.Ref
	for _, r := range workloads.AllRefs() {
		if r.ID() == "comd" {
			ref = r
		}
	}
	res, err := chrun.RunImage(sys, ref, img, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.LibFraction < 0.99 {
		t.Errorf("LibFraction = %f", res.LibFraction)
	}
	// No cache/rebuild internals leak into the final image.
	if flat.Exists(cache.ModelsPath) || flat.Exists(planPath) {
		t.Error("coMtainer internals leaked into the optimized image")
	}
}

func TestRedirectRequiresRebuild(t *testing.T) {
	sys := sysprofile.X86Cluster()
	repo, distTag := setup(t, sys)
	if _, err := Redirect(repo, distTag, RedirectOptions{System: sys}); err == nil ||
		!strings.Contains(err.Error(), "+coMre") {
		t.Errorf("redirect without rebuild: %v", err)
	}
}

func TestRebuildDeterministic(t *testing.T) {
	sys := sysprofile.X86Cluster()
	repo, distTag := setup(t, sys)
	d1, _, err := Rebuild(repo, distTag, RebuildOptions{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := Rebuild(repo, distTag, RebuildOptions{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Digest != d2.Digest {
		t.Error("rebuild is not deterministic")
	}
}
