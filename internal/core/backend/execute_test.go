package backend

import (
	"fmt"
	"strings"
	"testing"

	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/toolchain"
)

// wideGraph builds a graph with many independent compiles feeding one
// link — the shape that exercises the parallel executor.
func wideGraph(n int) (*model.BuildGraph, *fsim.FS) {
	g := model.NewBuildGraph()
	fs := fsim.New()
	var objIDs []model.NodeID
	linkArgv := []string{"gcc"}
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("/w/u%02d.c", i)
		obj := fmt.Sprintf("/w/u%02d.o", i)
		fs.WriteFile(src, []byte(fmt.Sprintf("int f%d(void){return %d;}\n", i, i)), 0o644)
		s := g.AddSource(src)
		g.AddProduct(obj, model.KindObject,
			&model.CompilationModel{Kind: "cc", Argv: []string{"gcc", "-O2", "-c", src, "-o", obj}, Cwd: "/w", Seq: i},
			[]model.NodeID{s.ID})
		objIDs = append(objIDs, g.Nodes[len(g.Nodes)-1].ID)
		linkArgv = append(linkArgv, obj)
	}
	linkArgv = append(linkArgv, "-o", "/w/app")
	g.AddProduct("/w/app", model.KindExecutable,
		&model.CompilationModel{Kind: "cc", Argv: linkArgv, Cwd: "/w", Seq: n},
		objIDs)
	return g, fs
}

func TestExecuteGraphParallelWideFanOut(t *testing.T) {
	g, fs := wideGraph(40)
	reg := toolchain.GenericRegistry(toolchain.ISAx86)
	if err := executeGraph(g, fs, reg, execOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/w/app")
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Sources) != 40 {
		t.Errorf("linked %d sources, want 40", len(art.Sources))
	}
}

func TestExecuteGraphDeterministicAcrossRuns(t *testing.T) {
	reg := toolchain.GenericRegistry(toolchain.ISAx86)
	run := func() *fsim.FS {
		g, fs := wideGraph(24)
		if err := executeGraph(g, fs, reg, execOptions{}); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Error("parallel execution produced different file systems")
	}
}

func TestExecuteGraphPropagatesErrors(t *testing.T) {
	g := model.NewBuildGraph()
	s := g.AddSource("/w/missing.c")
	g.AddProduct("/w/x.o", model.KindObject,
		&model.CompilationModel{Kind: "cc", Argv: []string{"gcc", "-c", "/w/missing.c", "-o", "/w/x.o"}, Cwd: "/w", Seq: 0},
		[]model.NodeID{s.ID})
	err := executeGraph(g, fsim.New(), toolchain.GenericRegistry(toolchain.ISAx86), execOptions{})
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("err = %v", err)
	}
}

func TestCommandDAGDedupesSharedCommands(t *testing.T) {
	// Two object nodes produced by one `gcc -c a.c b.c` invocation share
	// a Seq; the DAG must hold one command.
	g := model.NewBuildGraph()
	sa := g.AddSource("/w/a.c")
	sb := g.AddSource("/w/b.c")
	cm := &model.CompilationModel{Kind: "cc", Argv: []string{"gcc", "-c", "a.c", "b.c"}, Cwd: "/w", Seq: 7}
	g.AddProduct("/w/a.o", model.KindObject, cm, []model.NodeID{sa.ID})
	g.AddProduct("/w/b.o", model.KindObject, cm, []model.NodeID{sb.ID})
	cmds, err := commandDAG(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || cmds[0].seq != 7 {
		t.Errorf("commands = %+v", cmds)
	}
}

func TestCommandDAGDependencyEdges(t *testing.T) {
	g := model.NewBuildGraph()
	s := g.AddSource("/w/a.c")
	obj := g.AddProduct("/w/a.o", model.KindObject,
		&model.CompilationModel{Kind: "cc", Argv: []string{"gcc", "-c", "a.c"}, Cwd: "/w", Seq: 0},
		[]model.NodeID{s.ID})
	g.AddProduct("/w/app", model.KindExecutable,
		&model.CompilationModel{Kind: "cc", Argv: []string{"gcc", "a.o", "-o", "app"}, Cwd: "/w", Seq: 1},
		[]model.NodeID{obj.ID})
	cmds, err := commandDAG(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("commands = %d", len(cmds))
	}
	if !cmds[1].deps[0] {
		t.Error("link command missing dependency on compile command")
	}
	if len(cmds[0].deps) != 0 {
		t.Error("compile command has spurious deps")
	}
}
