// Package backend implements coMtainer's system side (paper §4.1/§4.2,
// right half of Figure 5): the *rebuild* step re-executes the cached build
// graph inside a Sysenv-based container with system-specific adaptations
// and appends the results as a rebuild layer (+coMre); the *redirect* step
// materializes the final optimized image from the Rebase image, the
// system's (vendor-optimized) packages and the rebuilt artifacts.
package backend

import (
	"encoding/json"
	"fmt"

	"sort"

	"comtainer/internal/actioncache"
	"comtainer/internal/core/adapter"
	"comtainer/internal/core/cache"
	"comtainer/internal/core/model"
	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/remoteexec"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

// Rebuild layer locations.
const (
	rebuildPrefix = "/.comtainer/rebuild"
	planPath      = rebuildPrefix + "/plan.json"
)

// pkgPlan is one package the redirect step must provide. Without the libo
// adapter the original version is reproduced; with it, the system's
// optimized build replaces it.
type pkgPlan struct {
	Name     string `json:"name"`
	Version  string `json:"version"`
	Optimize bool   `json:"optimize,omitempty"`
}

// plan is what the rebuild step hands to the redirect step.
type plan struct {
	// Files maps dist-image paths to rebuilt content stored under
	// rebuildPrefix in the rebuild layer.
	Files []string `json:"files"`
	// Packages are the runtime packages redirect installs.
	Packages []pkgPlan `json:"packages"`
	// DataFiles are dist paths carried over verbatim (data/unknown
	// origin).
	DataFiles []string          `json:"dataFiles"`
	Report    adapter.Report    `json:"report"`
	Image     model.ImageModel  `json:"imageModel"`
	Installed map[string]string `json:"installed"`
}

// RebuildOptions configures a rebuild.
type RebuildOptions struct {
	System *sysprofile.System
	// Adapters to apply, in order. Defaults to adapter.DefaultAdapted().
	Adapters []adapter.Adapter
	// Registry overrides the toolchain registry of the rebuild container
	// (defaults to the system's Sysenv registry).
	Registry *toolchain.Registry
	// SysenvTag names the Sysenv image in the repository.
	SysenvTag string
	// ExtraFiles are placed into the rebuild container before execution
	// (e.g. the PGO profile collected from a trial run).
	ExtraFiles map[string][]byte
	// Memo, when set, replays unchanged build commands from the action
	// cache instead of re-executing them.
	Memo *actioncache.Memoizer
	// Workers bounds concurrent command execution; 0 keeps the default
	// of min(GOMAXPROCS, 8).
	Workers int
	// RemoteExec, when set, routes cache-missed build commands to a
	// remote-execution farm, falling back to local execution on any
	// farm failure.
	RemoteExec *remoteexec.Executor
}

// Rebuild performs coMtainer-rebuild on the extended image derived from
// distTag: adapters transform the models, the build graph re-executes
// under the system toolchain, and the artifacts land in a rebuild layer
// appended to the extended image (tagged +coMre).
func Rebuild(repo *oci.Repository, distTag string, opts RebuildOptions) (oci.Descriptor, *adapter.Report, error) {
	if opts.System == nil {
		return oci.Descriptor{}, nil, fmt.Errorf("backend: rebuild needs a system profile")
	}
	if opts.Adapters == nil {
		opts.Adapters = adapter.DefaultAdapted()
	}
	if opts.Registry == nil {
		opts.Registry = opts.System.Toolchains
	}
	if opts.SysenvTag == "" {
		opts.SysenvTag = sysprofile.TagSysenv
	}

	extDesc, err := repo.Resolve(cache.ExtendedTag(distTag))
	if err != nil {
		return oci.Descriptor{}, nil, err
	}
	extImg, err := oci.LoadImage(repo.Store, extDesc)
	if err != nil {
		return oci.Descriptor{}, nil, err
	}
	models, srcFS, err := cache.Read(extImg)
	if err != nil {
		return oci.Descriptor{}, nil, err
	}

	// Adapters operate on an independent copy of the models.
	report := &adapter.Report{}
	ctx := &adapter.Context{
		System: opts.System,
		Models: models.Clone(),
		SrcFS:  srcFS,
		Report: report,
	}
	report.PerAdapter = map[string]int{}
	for _, ad := range opts.Adapters {
		before := report.ChangedCommands
		if err := ad.Apply(ctx); err != nil {
			return oci.Descriptor{}, report, fmt.Errorf("backend: adapter %s: %w", ad.Name(), err)
		}
		report.PerAdapter[ad.Name()] += report.ChangedCommands - before
	}

	// The rebuild container: Sysenv image + cached sources + extras.
	sysenvImg, err := repo.LoadByTag(opts.SysenvTag)
	if err != nil {
		return oci.Descriptor{}, report, fmt.Errorf("backend: loading Sysenv image: %w", err)
	}
	rebuildFS, err := sysenvImg.Flatten()
	if err != nil {
		return oci.Descriptor{}, report, err
	}
	for _, p := range srcFS.Paths() {
		f, err := srcFS.Stat(p)
		if err != nil {
			return oci.Descriptor{}, report, err
		}
		if f.Type == fsim.TypeRegular {
			rebuildFS.WriteFile(p, f.Data, f.Mode)
		}
	}
	for p, data := range opts.ExtraFiles {
		rebuildFS.WriteFile(p, data, 0o644)
	}

	if err := executeGraph(ctx.Models.Graph, rebuildFS, opts.Registry, execOptions{workers: opts.Workers, memo: opts.Memo, remote: opts.RemoteExec}); err != nil {
		return oci.Descriptor{}, report, err
	}

	// Collect rebuilt artifacts into the rebuild layer. Every package of
	// the image model is reproduced; the ones the libo adapter scheduled
	// get the system's optimized build instead.
	optimize := map[string]bool{}
	for _, name := range report.PackagePlan {
		optimize[name] = true
	}
	layer := fsim.New()
	pl := plan{
		Report:    *report,
		Image:     ctx.Models.Image,
		Installed: ctx.Models.Installed,
	}
	for _, p := range ctx.Models.Image.Packages {
		pl.Packages = append(pl.Packages, pkgPlan{
			Name:     p.Name,
			Version:  p.Version,
			Optimize: optimize[p.Name],
		})
	}
	var distPaths []string
	for distPath := range ctx.Models.Installed {
		distPaths = append(distPaths, distPath)
	}
	sort.Strings(distPaths)
	for _, distPath := range distPaths {
		buildPath := ctx.Models.Installed[distPath]
		data, err := rebuildFS.ReadFile(buildPath)
		if err != nil {
			return oci.Descriptor{}, report, fmt.Errorf("backend: rebuilt product %s missing: %w", buildPath, err)
		}
		layer.WriteFile(rebuildPrefix+distPath, data, 0o755)
		pl.Files = append(pl.Files, distPath)
	}
	for _, fe := range ctx.Models.Image.Files {
		if fe.Origin == model.OriginData || fe.Origin == model.OriginUnknown {
			pl.DataFiles = append(pl.DataFiles, fe.Path)
		}
	}
	blob, err := json.MarshalIndent(pl, "", " ")
	if err != nil {
		return oci.Descriptor{}, report, fmt.Errorf("backend: encoding plan: %w", err)
	}
	layer.WriteFile(planPath, blob, 0o644)

	rebuilt, err := oci.AppendLayer(repo.Store, extDesc, layer, cache.RoleRebuild, "coMtainer rebuild layer")
	if err != nil {
		return oci.Descriptor{}, report, err
	}
	repo.Tag(cache.RebuiltTag(distTag), rebuilt)
	return rebuilt, report, nil
}

// RedirectOptions configures a redirect.
type RedirectOptions struct {
	System *sysprofile.System
	// RebaseTag names the Rebase image in the repository.
	RebaseTag string
	// OptimizedTag is the tag given to the final image; defaults to
	// distTag + ".redirect".
	OptimizedTag string
}

// Redirect performs coMtainer-redirect: it creates a fresh container from
// the Rebase image, installs the (vendor-preferring) runtime packages,
// extracts the rebuilt artifacts and carried data, and commits the final
// optimized image.
func Redirect(repo *oci.Repository, distTag string, opts RedirectOptions) (oci.Descriptor, error) {
	if opts.System == nil {
		return oci.Descriptor{}, fmt.Errorf("backend: redirect needs a system profile")
	}
	if opts.RebaseTag == "" {
		opts.RebaseTag = sysprofile.TagRebase
	}
	if opts.OptimizedTag == "" {
		opts.OptimizedTag = distTag + ".redirect"
	}
	rebuiltImg, err := repo.LoadByTag(cache.RebuiltTag(distTag))
	if err != nil {
		return oci.Descriptor{}, fmt.Errorf("backend: redirect needs a rebuilt image (+coMre): %w", err)
	}
	flat, err := rebuiltImg.Flatten()
	if err != nil {
		return oci.Descriptor{}, err
	}
	blob, err := flat.ReadFile(planPath)
	if err != nil {
		return oci.Descriptor{}, fmt.Errorf("backend: rebuilt image carries no plan: %w", err)
	}
	var pl plan
	if err := json.Unmarshal(blob, &pl); err != nil {
		return oci.Descriptor{}, fmt.Errorf("backend: decoding plan: %w", err)
	}

	rebaseImg, err := repo.LoadByTag(opts.RebaseTag)
	if err != nil {
		return oci.Descriptor{}, fmt.Errorf("backend: loading Rebase image: %w", err)
	}
	redirectFS, err := rebaseImg.Flatten()
	if err != nil {
		return oci.Descriptor{}, err
	}
	baseState := redirectFS.Clone()

	// Install the runtime dependencies. Packages the libo adapter marked
	// come as the system's optimized builds; the rest are reproduced at
	// their original versions (or carried from the image when the system
	// repository cannot serve them).
	db, err := dpkg.Load(redirectFS)
	if err != nil {
		return oci.Descriptor{}, err
	}
	fullIdx := opts.System.AptIndex()
	// Version pins: packages not scheduled for optimized replacement keep
	// their exact image versions, including when pulled in transitively.
	pins := map[string]dpkg.Version{}
	for _, want := range pl.Packages {
		if !want.Optimize {
			pins[want.Name] = dpkg.Version(want.Version)
		}
	}
	pinnedIdx := fullIdx.Pinned(pins)
	for _, want := range pl.Packages {
		var p *dpkg.Package
		ok := false
		idx := pinnedIdx
		if want.Optimize {
			idx = fullIdx
			p, ok = idx.Latest(want.Name)
		} else {
			p, ok = idx.Find(dpkg.Dependency{Name: want.Name, Op: dpkg.OpEQ, Version: dpkg.Version(want.Version)})
		}
		if !ok {
			// Not served by the system: carry the image's own copy.
			if err := carryPackage(flat, redirectFS, &pl.Image, want.Name); err != nil {
				return oci.Descriptor{}, err
			}
			continue
		}
		if cur, installed := db.Installed(want.Name); installed && !cur.Version.Less(p.Version) {
			continue
		}
		if err := db.InstallWithDeps(redirectFS, idx, p); err != nil {
			return oci.Descriptor{}, fmt.Errorf("backend: installing %s: %w", want.Name, err)
		}
	}

	// Rebuilt artifacts at their original dist paths.
	for _, distPath := range pl.Files {
		data, err := flat.ReadFile(rebuildPrefix + distPath)
		if err != nil {
			return oci.Descriptor{}, err
		}
		redirectFS.WriteFile(distPath, data, 0o755)
	}
	// Platform-independent data carried verbatim from the dist image.
	for _, p := range pl.DataFiles {
		if f, err := flat.Stat(p); err == nil {
			c := f.Clone()
			redirectFS.Add(c)
		}
	}

	// Commit: Rebase layers + one diff layer; runtime config carried from
	// the dist image.
	layers, err := rebaseImg.Layers()
	if err != nil {
		return oci.Descriptor{}, err
	}
	diff := fsim.Diff(baseState, redirectFS)
	if diff.Len() > 0 {
		layers = append(layers, diff)
	}
	cfg := oci.ImageConfig{
		Architecture: rebaseImg.Config.Architecture,
		OS:           "linux",
		Config:       rebuiltImg.Config.Config,
	}
	cfg.History = append(cfg.History, oci.HistoryEntry{
		CreatedBy: "coMtainer-redirect",
		Comment:   fmt.Sprintf("optimized for %s", opts.System.Name),
	})
	desc, err := oci.WriteImage(repo.Store, cfg, layers)
	if err != nil {
		return oci.Descriptor{}, err
	}
	repo.Tag(opts.OptimizedTag, desc)
	return desc, nil
}

// carryPackage copies a package's files from the dist image into the
// redirect container when the system repository cannot serve it.
func carryPackage(distFlat, redirectFS *fsim.FS, im *model.ImageModel, name string) error {
	copied := 0
	for _, fe := range im.Files {
		if fe.Package != name {
			continue
		}
		f, err := distFlat.Stat(fe.Path)
		if err != nil {
			continue
		}
		redirectFS.Add(f.Clone())
		copied++
	}
	if copied == 0 {
		return fmt.Errorf("backend: package %s unavailable on the system and absent from the image", name)
	}
	return nil
}
