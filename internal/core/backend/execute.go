package backend

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"comtainer/internal/actioncache"
	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/remoteexec"
	"comtainer/internal/toolchain"
)

// command is one distinct build invocation (nodes sharing a Seq collapse
// into one command) with its dependency edges to other commands.
type command struct {
	seq  int
	argv []string
	cwd  string
	deps map[int]bool // seqs that must complete first
}

// commandDAG projects the node-level build graph onto distinct commands.
func commandDAG(g *model.BuildGraph) ([]*command, error) {
	bySeq := map[int]*command{}
	for _, n := range g.Nodes {
		if n.Cmd == nil {
			continue
		}
		c, ok := bySeq[n.Cmd.Seq]
		if !ok {
			c = &command{seq: n.Cmd.Seq, argv: n.Cmd.Argv, cwd: n.Cmd.Cwd, deps: map[int]bool{}}
			bySeq[n.Cmd.Seq] = c
		}
		for _, depID := range n.Deps {
			dep, ok := g.Node(depID)
			if !ok {
				return nil, fmt.Errorf("backend: node %s references missing dep %d", n.Path, depID)
			}
			if dep.Cmd != nil && dep.Cmd.Seq != n.Cmd.Seq {
				c.deps[dep.Cmd.Seq] = true
			}
		}
	}
	out := make([]*command, 0, len(bySeq))
	for _, c := range bySeq {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// execOptions tunes executeGraph.
type execOptions struct {
	// workers bounds concurrent commands; <= 0 selects
	// min(GOMAXPROCS, 8), the old hardcoded cap.
	workers int
	// memo, when set, replays commands from the action cache.
	memo *actioncache.Memoizer
	// remote, when set, offers cache-missed commands to the build
	// farm; every farm failure falls back to local execution.
	remote *remoteexec.Executor
}

// closures computes each command's transitive dependency set — the
// seqs whose outputs a farm worker must overlay on the base tree
// before executing it. The graph is already verified acyclic.
func closures(cmds []*command) map[int][]int {
	bySeq := make(map[int]*command, len(cmds))
	for _, c := range cmds {
		bySeq[c.seq] = c
	}
	memo := make(map[int]map[int]bool, len(cmds))
	var cl func(int) map[int]bool
	cl = func(seq int) map[int]bool {
		if s, ok := memo[seq]; ok {
			return s
		}
		s := map[int]bool{}
		memo[seq] = s
		for dep := range bySeq[seq].deps {
			s[dep] = true
			for d := range cl(dep) {
				s[d] = true
			}
		}
		return s
	}
	out := make(map[int][]int, len(cmds))
	for _, c := range cmds {
		seqs := make([]int, 0, len(cl(c.seq)))
		for d := range cl(c.seq) {
			seqs = append(seqs, d)
		}
		sort.Ints(seqs)
		out[c.seq] = seqs
	}
	return out
}

func (o execOptions) workerCount(cmds int) int {
	w := o.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w > cmds {
		w = cmds
	}
	return w
}

// executeGraph re-runs every product-generating command of the build
// graph. Scheduling is counter-based: each command tracks how many of
// its dependencies are still outstanding and joins the ready queue the
// moment the count hits zero, so a long-pole command never holds back
// unrelated work the way the previous level-synchronized front did.
// Outputs are disjoint per command, so the resulting file system state
// is deterministic regardless of scheduling order.
func executeGraph(g *model.BuildGraph, fs *fsim.FS, reg *toolchain.Registry, opts execOptions) error {
	if _, err := g.Topo(); err != nil {
		return err
	}
	cmds, err := commandDAG(g)
	if err != nil {
		return err
	}
	if len(cmds) == 0 {
		return nil
	}

	// Remote mode needs a memoizer (it records each command's outputs
	// for the dependency overlays) and the session's base tree pushed
	// up front. A failed push disables the farm for this rebuild —
	// never the rebuild itself.
	var depClosure map[int][]int
	if opts.remote != nil {
		if opts.memo == nil {
			opts.memo = actioncache.NewMemoizer(nil)
		}
		if err := opts.remote.Prepare(fs); err != nil {
			opts.remote = nil
		} else {
			depClosure = closures(cmds)
		}
	}

	// Invert the dependency edges into indegree counters + dependents
	// lists; both are only touched under mu after this.
	indeg := make(map[int]int, len(cmds))
	dependents := make(map[int][]*command)
	for _, c := range cmds {
		indeg[c.seq] = len(c.deps)
		for dep := range c.deps {
			dependents[dep] = append(dependents[dep], c)
		}
	}

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     []*command
		running   int
		remaining = len(cmds)
		firstErr  error
		// outs is each finished command's recorded outputs, the
		// material of farm overlays. Guarded by mu; a command's
		// entry is complete before any dependent becomes ready.
		outs map[int][]actioncache.Output
	)
	if opts.remote != nil {
		outs = make(map[int][]actioncache.Output, len(cmds))
	}
	for _, c := range cmds {
		if indeg[c.seq] == 0 {
			ready = append(ready, c)
		}
	}

	run := func(c *command) error {
		runner := toolchain.NewRunner(fs, reg)
		runner.Memo = opts.memo
		if opts.remote != nil {
			// The overlay: every transitive dependency's outputs, in
			// seq order. Dependencies are terminal by the time c is
			// scheduled, so reading outs here is race-free.
			var overlay []actioncache.Output
			mu.Lock()
			for _, dep := range depClosure[c.seq] {
				overlay = append(overlay, outs[dep]...)
			}
			mu.Unlock()
			runner.Remote = func(argv []string, cwd string) (*toolchain.RemoteResult, error) {
				return opts.remote.Execute(argv, cwd, overlay)
			}
		}
		if err := fs.MkdirAll(c.cwd, 0o755); err != nil {
			return fmt.Errorf("backend: creating cwd for %q: %w", strings.Join(c.argv, " "), err)
		}
		runner.Cwd = fsim.Clean(c.cwd)
		if err := runner.Run(c.argv); err != nil {
			return fmt.Errorf("backend: re-executing %q: %w", strings.Join(c.argv, " "), err)
		}
		if opts.remote != nil && runner.LastResult != nil {
			mu.Lock()
			outs[c.seq] = runner.LastResult.Outputs
			mu.Unlock()
		}
		return nil
	}

	var wg sync.WaitGroup
	for i := 0; i < opts.workerCount(len(cmds)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && running > 0 && remaining > 0 && firstErr == nil {
					cond.Wait()
				}
				if firstErr != nil || remaining == 0 || len(ready) == 0 {
					// Done, failed, or deadlocked (ready empty with
					// nothing running) — either way this worker is
					// finished; wake the rest so they exit too.
					cond.Broadcast()
					mu.Unlock()
					return
				}
				// Pop the lowest seq for a stable, log-friendly order.
				idx := 0
				for i, c := range ready {
					if c.seq < ready[idx].seq {
						idx = i
					}
				}
				c := ready[idx]
				ready = append(ready[:idx], ready[idx+1:]...)
				running++
				mu.Unlock()

				err := run(c)

				mu.Lock()
				running--
				remaining--
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					for _, d := range dependents[c.seq] {
						indeg[d.seq]--
						if indeg[d.seq] == 0 {
							ready = append(ready, d)
						}
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if remaining > 0 {
		return fmt.Errorf("backend: build graph commands deadlocked (%d unrunnable)", remaining)
	}
	return nil
}
