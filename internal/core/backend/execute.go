package backend

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/toolchain"
)

// command is one distinct build invocation (nodes sharing a Seq collapse
// into one command) with its dependency edges to other commands.
type command struct {
	seq  int
	argv []string
	cwd  string
	deps map[int]bool // seqs that must complete first
}

// commandDAG projects the node-level build graph onto distinct commands.
func commandDAG(g *model.BuildGraph) ([]*command, error) {
	bySeq := map[int]*command{}
	for _, n := range g.Nodes {
		if n.Cmd == nil {
			continue
		}
		c, ok := bySeq[n.Cmd.Seq]
		if !ok {
			c = &command{seq: n.Cmd.Seq, argv: n.Cmd.Argv, cwd: n.Cmd.Cwd, deps: map[int]bool{}}
			bySeq[n.Cmd.Seq] = c
		}
		for _, depID := range n.Deps {
			dep, ok := g.Node(depID)
			if !ok {
				return nil, fmt.Errorf("backend: node %s references missing dep %d", n.Path, depID)
			}
			if dep.Cmd != nil && dep.Cmd.Seq != n.Cmd.Seq {
				c.deps[dep.Cmd.Seq] = true
			}
		}
	}
	out := make([]*command, 0, len(bySeq))
	for _, c := range bySeq {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// executeGraph re-runs every product-generating command of the build
// graph. Commands whose dependencies are satisfied run concurrently — the
// rebuild has the whole HPC node to itself, and independent translation
// units compile in parallel exactly as `make -j` would drive them.
// Outputs are disjoint per command, so the resulting file system state is
// deterministic regardless of scheduling.
func executeGraph(g *model.BuildGraph, fs *fsim.FS, reg *toolchain.Registry) error {
	if _, err := g.Topo(); err != nil {
		return err
	}
	cmds, err := commandDAG(g)
	if err != nil {
		return err
	}
	pending := make(map[int]*command, len(cmds))
	for _, c := range cmds {
		pending[c.seq] = c
	}
	done := make(map[int]bool, len(cmds))
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}

	for len(pending) > 0 {
		// Collect the ready front.
		var ready []*command
		for _, c := range pending {
			ok := true
			for dep := range c.deps {
				if !done[dep] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, c)
			}
		}
		if len(ready) == 0 {
			return fmt.Errorf("backend: build graph commands deadlocked (%d unrunnable)", len(pending))
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i].seq < ready[j].seq })

		// Run the front with a bounded worker pool.
		sem := make(chan struct{}, workers)
		errMu := sync.Mutex{}
		var firstErr error
		var wg sync.WaitGroup
		for _, c := range ready {
			wg.Add(1)
			sem <- struct{}{}
			go func(c *command) {
				defer wg.Done()
				defer func() { <-sem }()
				runner := toolchain.NewRunner(fs, reg)
				fs.MkdirAll(c.cwd, 0o755)
				runner.Cwd = fsim.Clean(c.cwd)
				if err := runner.Run(c.argv); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("backend: re-executing %q: %w", strings.Join(c.argv, " "), err)
					}
					errMu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		for _, c := range ready {
			done[c.seq] = true
			delete(pending, c.seq)
		}
	}
	return nil
}
