package backend

import (
	"fmt"
	"sync"
	"testing"

	"comtainer/internal/actioncache"
	"comtainer/internal/core/model"
	"comtainer/internal/digest"
	"comtainer/internal/fsim"
	"comtainer/internal/toolchain"
)

// countingCache wraps a Cache and counts Puts per key, to prove the
// singleflight layer never fills the same entry twice.
type countingCache struct {
	inner actioncache.Cache
	mu    sync.Mutex
	puts  map[digest.Digest]int
}

func newCountingCache(inner actioncache.Cache) *countingCache {
	return &countingCache{inner: inner, puts: map[digest.Digest]int{}}
}

func (c *countingCache) Get(key digest.Digest) ([]byte, bool, error) { return c.inner.Get(key) }

func (c *countingCache) Put(key digest.Digest, val []byte) error {
	c.mu.Lock()
	c.puts[key]++
	c.mu.Unlock()
	return c.inner.Put(key, val)
}

func (c *countingCache) Stats() actioncache.Stats { return c.inner.Stats() }

func (c *countingCache) maxPuts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0
	for _, n := range c.puts {
		if n > max {
			max = n
		}
	}
	return max
}

// stressGraph builds a wide multi-level DAG: `groups` libraries of
// `per` compiles each, every source compiled by `dup` commands with
// IDENTICAL argv (distinct seqs — the shape that exercises
// singleflight), an archive per group, and one link over all archives.
func stressGraph(groups, per, dup int) (*model.BuildGraph, *fsim.FS) {
	g := model.NewBuildGraph()
	fs := fsim.New()
	seq := 0
	linkArgv := []string{"gcc", "-o", "/w/app"}
	var linkDeps []model.NodeID
	for gi := 0; gi < groups; gi++ {
		arArgv := []string{"ar", "rcs", fmt.Sprintf("/w/libg%d.a", gi)}
		var arDeps []model.NodeID
		for pi := 0; pi < per; pi++ {
			src := fmt.Sprintf("/w/g%d_u%02d.c", gi, pi)
			obj := fmt.Sprintf("/w/g%d_u%02d.o", gi, pi)
			fs.WriteFile(src, []byte(fmt.Sprintf("int g%d_f%d(void){return %d;}\n", gi, pi, pi)), 0o644)
			s := g.AddSource(src)
			argv := []string{"gcc", "-O2", "-c", src, "-o", obj}
			// dup distinct commands (distinct seqs, distinct node paths)
			// with IDENTICAL argv, all writing obj with identical
			// content — the shape singleflight must absorb. The graph
			// registers the duplicates under sentinel paths because
			// nodes dedup by path.
			for d := 0; d < dup; d++ {
				nodePath := obj
				if d > 0 {
					nodePath = fmt.Sprintf("%s.dup%d", obj, d)
				}
				n := g.AddProduct(nodePath, model.KindObject,
					&model.CompilationModel{Kind: "cc", Argv: argv, Cwd: "/w", Seq: seq},
					[]model.NodeID{s.ID})
				seq++
				arDeps = append(arDeps, n.ID)
			}
			arArgv = append(arArgv, obj)
		}
		arNode := g.AddProduct(fmt.Sprintf("/w/libg%d.a", gi), model.KindArchive,
			&model.CompilationModel{Kind: "ar", Argv: arArgv, Cwd: "/w", Seq: seq},
			arDeps)
		seq++
		linkArgv = append(linkArgv, fmt.Sprintf("/w/libg%d.a", gi))
		linkDeps = append(linkDeps, arNode.ID)
	}
	g.AddProduct("/w/app", model.KindExecutable,
		&model.CompilationModel{Kind: "cc", Argv: linkArgv, Cwd: "/w", Seq: seq},
		linkDeps)
	return g, fs
}

// TestExecuteGraphStressWithActionCache drives the counter-based
// scheduler over a wide DAG with duplicate-argv commands and the
// action cache on, under -race (via scripts/check.sh): the final fsim
// state must be deterministic, no cache entry may be filled twice, and
// a second run over the same cache must replay everything.
func TestExecuteGraphStressWithActionCache(t *testing.T) {
	reg := toolchain.GenericRegistry(toolchain.ISAx86)
	disk, err := actioncache.NewDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	counting := newCountingCache(disk)

	run := func() (*fsim.FS, actioncache.Stats) {
		g, fs := stressGraph(8, 6, 3) // 144 compiles (48 distinct), 8 archives, 1 link
		memo := actioncache.NewMemoizer(counting)
		if err := executeGraph(g, fs, reg, execOptions{workers: 16, memo: memo}); err != nil {
			t.Fatal(err)
		}
		return fs, memo.Stats()
	}

	cold, coldStats := run()
	if got := counting.maxPuts(); got > 1 {
		t.Errorf("duplicate cache fill under concurrency: a key was Put %d times", got)
	}
	// 48 distinct compiles + 8 archives + 1 link = 57 distinct actions;
	// each must execute exactly once. The 96 duplicate-argv copies must
	// all be absorbed — either as in-flight dedups (when they overlap
	// the executing copy) or as cache hits (when they start later).
	if coldStats.Misses != 57 {
		t.Errorf("cold run executed %d actions, want 57", coldStats.Misses)
	}
	if got := coldStats.Hits + coldStats.Deduped; got != 96 {
		t.Errorf("duplicates absorbed = %d (hits %d + deduped %d), want 96",
			got, coldStats.Hits, coldStats.Deduped)
	}

	warm, warmStats := run()
	if !cold.Equal(warm) {
		t.Error("cold and warm runs produced different file systems")
	}
	if warmStats.Misses != 0 {
		t.Errorf("warm run executed %d commands, want 0", warmStats.Misses)
	}
	if got := counting.maxPuts(); got > 1 {
		t.Errorf("warm run refilled a cache entry: max puts = %d", got)
	}

	// Determinism across repeated warm runs too.
	warm2, _ := run()
	if !warm.Equal(warm2) {
		t.Error("repeated warm runs diverged")
	}
}

// TestExecuteGraphWorkerCap pins workers to 1: the scheduler must
// still complete the whole DAG (no self-deadlock waiting for
// concurrency that cannot happen).
func TestExecuteGraphWorkerCap(t *testing.T) {
	g, fs := wideGraph(12)
	reg := toolchain.GenericRegistry(toolchain.ISAx86)
	if err := executeGraph(g, fs, reg, execOptions{workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/w/app"); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteGraphMkdirAllErrorPropagates covers the former silent
// failure: a command whose cwd collides with a regular file must fail
// the rebuild, not silently replace the file with a directory.
func TestExecuteGraphMkdirAllErrorPropagates(t *testing.T) {
	g := model.NewBuildGraph()
	fs := fsim.New()
	fs.WriteFile("/w", []byte("a file where the cwd should be"), 0o644)
	fs.WriteFile("/src.c", []byte("int main(void){return 0;}\n"), 0o644)
	s := g.AddSource("/src.c")
	g.AddProduct("/x.o", model.KindObject,
		&model.CompilationModel{Kind: "cc", Argv: []string{"gcc", "-c", "/src.c", "-o", "/x.o"}, Cwd: "/w", Seq: 0},
		[]model.NodeID{s.ID})
	err := executeGraph(g, fs, toolchain.GenericRegistry(toolchain.ISAx86), execOptions{})
	if err == nil {
		t.Fatal("cwd over a regular file did not fail")
	}
}
