package adapter

import (
	"strings"
	"testing"

	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

// fixtureModels returns models with two compile commands and one link,
// plus the given source contents in an SrcFS.
func fixtureModels(compileFlags []string, sources map[string]string) (*model.Models, *fsim.FS) {
	g := model.NewBuildGraph()
	srcFS := fsim.New()
	var objIDs []model.NodeID
	seq := 0
	var srcPaths []string
	for p, content := range sources {
		srcFS.WriteFile(p, []byte(content), 0o644)
		srcPaths = append(srcPaths, p)
	}
	// Deterministic order.
	for _, p := range srcFS.Paths() {
		if !strings.HasSuffix(p, ".c") {
			continue
		}
		s := g.AddSource(p)
		obj := strings.TrimSuffix(p, ".c") + ".o"
		argv := append([]string{"gcc"}, compileFlags...)
		argv = append(argv, "-c", p, "-o", obj)
		g.AddProduct(obj, model.KindObject,
			&model.CompilationModel{Kind: "cc", Argv: argv, Cwd: "/w", Seq: seq},
			[]model.NodeID{s.ID})
		seq++
		objIDs = append(objIDs, g.Nodes[len(g.Nodes)-1].ID)
	}
	linkArgv := []string{"gcc"}
	for _, n := range g.Nodes {
		if n.Kind == model.KindObject {
			linkArgv = append(linkArgv, n.Path)
		}
	}
	linkArgv = append(linkArgv, "-o", "/w/app")
	g.AddProduct("/w/app", model.KindExecutable,
		&model.CompilationModel{Kind: "cc", Argv: linkArgv, Cwd: "/w", Seq: seq},
		objIDs)
	m := &model.Models{
		Graph:       g,
		SourcePaths: srcPaths,
		Installed:   map[string]string{"/app/x": "/w/app"},
		BuildISA:    toolchain.ISAx86,
		Image: model.ImageModel{
			Packages: []model.PackageRef{
				{Name: "libopenblas0", Version: "0.3.26+ds-1"},
				{Name: "libc6", Version: "2.39-0ubuntu8"},
				{Name: "exotic-pkg", Version: "1.0"},
			},
		},
	}
	return m, srcFS
}

func apply(t *testing.T, ad Adapter, m *model.Models, srcFS *fsim.FS, sys *sysprofile.System) (*Report, error) {
	t.Helper()
	r := &Report{}
	ctx := &Context{System: sys, Models: m, SrcFS: srcFS, Report: r}
	return r, ad.Apply(ctx)
}

func ccArgvOf(t *testing.T, m *model.Models, path string) []string {
	t.Helper()
	n, ok := m.Graph.ByPath(path)
	if !ok {
		t.Fatalf("no node %s", path)
	}
	return n.Cmd.Argv
}

func TestToolchainAdapter(t *testing.T) {
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": "x", "/w/b.c": "y"})
	r, err := apply(t, Toolchain(), m, srcFS, sysprofile.X86Cluster())
	if err != nil {
		t.Fatal(err)
	}
	if r.ChangedCommands != 3 {
		t.Errorf("ChangedCommands = %d, want 3", r.ChangedCommands)
	}
	argv := strings.Join(ccArgvOf(t, m, "/w/a.o"), " ")
	if !strings.Contains(argv, "-march=native") || !strings.Contains(argv, "-mtune=native") {
		t.Errorf("argv = %s", argv)
	}
}

func TestLiboAdapter(t *testing.T) {
	m, srcFS := fixtureModels(nil, map[string]string{"/w/a.c": "x"})
	r, err := apply(t, Libo(), m, srcFS, sysprofile.X86Cluster())
	if err != nil {
		t.Fatal(err)
	}
	plan := map[string]bool{}
	for _, p := range r.PackagePlan {
		plan[p] = true
	}
	if !plan["libopenblas0"] || !plan["libc6"] {
		t.Errorf("plan = %v", r.PackagePlan)
	}
	if plan["exotic-pkg"] {
		t.Error("unknown package scheduled for system install")
	}
	noted := strings.Join(r.Notes, "\n")
	if !strings.Contains(noted, "optimized") {
		t.Errorf("notes = %q", noted)
	}
}

func TestLTOAdapterIdempotent(t *testing.T) {
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": "x"})
	sys := sysprofile.X86Cluster()
	if _, err := apply(t, LTO(), m, srcFS, sys); err != nil {
		t.Fatal(err)
	}
	argv := strings.Join(ccArgvOf(t, m, "/w/a.o"), " ")
	if !strings.Contains(argv, "-flto") {
		t.Errorf("argv = %s", argv)
	}
	// Second application changes nothing.
	r, err := apply(t, LTO(), m, srcFS, sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChangedCommands != 0 {
		t.Errorf("second LTO pass changed %d commands", r.ChangedCommands)
	}
	if strings.Count(strings.Join(ccArgvOf(t, m, "/w/a.o"), " "), "-flto") != 1 {
		t.Error("-flto duplicated")
	}
}

func TestPGOPhases(t *testing.T) {
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": "x"})
	sys := sysprofile.X86Cluster()
	if _, err := apply(t, PGOInstrument(), m, srcFS, sys); err != nil {
		t.Fatal(err)
	}
	argv := strings.Join(ccArgvOf(t, m, "/w/a.o"), " ")
	if !strings.Contains(argv, "-fprofile-generate") {
		t.Errorf("instrument argv = %s", argv)
	}
	// Phase two replaces, not stacks.
	if _, err := apply(t, PGOUse("/p/app.profdata"), m, srcFS, sys); err != nil {
		t.Fatal(err)
	}
	argv = strings.Join(ccArgvOf(t, m, "/w/a.o"), " ")
	if strings.Contains(argv, "-fprofile-generate") {
		t.Errorf("instrumentation flag survived: %s", argv)
	}
	if !strings.Contains(argv, "-fprofile-use=/p/app.profdata") {
		t.Errorf("use argv = %s", argv)
	}
}

func TestCrossISAStripsForeignFlags(t *testing.T) {
	m, srcFS := fixtureModels([]string{"-O2", "-mavx2", "-march=x86-64-v2"},
		map[string]string{"/w/a.c": "plain portable code"})
	r, err := apply(t, CrossISA(), m, srcFS, sysprofile.ArmCluster())
	if err != nil {
		t.Fatal(err)
	}
	argv := strings.Join(ccArgvOf(t, m, "/w/a.o"), " ")
	if strings.Contains(argv, "avx2") || strings.Contains(argv, "x86-64-v2") {
		t.Errorf("foreign flags survived: %s", argv)
	}
	if r.ChangedCommands == 0 {
		t.Error("no commands reported changed")
	}
	if m.BuildISA != toolchain.ISAArm {
		t.Errorf("BuildISA = %s", m.BuildISA)
	}
}

func TestCrossISAGuardedSources(t *testing.T) {
	guarded := "#ifndef COMT_PORTABLE\n__asm__(\"x\"); /* isa:x86-64 */\n#endif\n"
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": guarded})
	if _, err := apply(t, CrossISA(), m, srcFS, sysprofile.ArmCluster()); err != nil {
		t.Fatal(err)
	}
	argv := strings.Join(ccArgvOf(t, m, "/w/a.o"), " ")
	if !strings.Contains(argv, "-DCOMT_PORTABLE") {
		t.Errorf("guard define not added: %s", argv)
	}
}

func TestCrossISAMandatorySourcesFail(t *testing.T) {
	mandatory := "__asm__(\"x\"); /* isa:x86-64 */\n"
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": mandatory})
	if _, err := apply(t, CrossISA(), m, srcFS, sysprofile.ArmCluster()); err == nil {
		t.Error("mandatory ISA-specific source crossed")
	}
}

func TestCrossISASameISANoOp(t *testing.T) {
	m, srcFS := fixtureModels([]string{"-O2", "-mavx2"}, map[string]string{"/w/a.c": "x"})
	r, err := apply(t, CrossISA(), m, srcFS, sysprofile.X86Cluster())
	if err != nil {
		t.Fatal(err)
	}
	if r.ChangedCommands != 0 {
		t.Error("same-ISA cross adapter rewrote commands")
	}
}

func TestBOLTAdapter(t *testing.T) {
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": "x"})
	sys := sysprofile.X86Cluster()
	if _, err := apply(t, BOLT(""), m, srcFS, sys); err == nil {
		t.Error("BOLT without a profile accepted")
	}
	r, err := apply(t, BOLT("/.comtainer/profile/p.profdata"), m, srcFS, sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChangedCommands != 1 {
		t.Errorf("ChangedCommands = %d", r.ChangedCommands)
	}
	bolted, ok := m.Graph.ByPath("/w/app.bolt")
	if !ok {
		t.Fatal("no bolted node added")
	}
	if bolted.Cmd.Kind != "bolt" || bolted.Cmd.Argv[0] != "comt-bolt" {
		t.Errorf("bolt command = %+v", bolted.Cmd)
	}
	if len(bolted.Deps) != 1 {
		t.Errorf("bolt deps = %v", bolted.Deps)
	}
	// Installed map now points at the optimized binary.
	if m.Installed["/app/x"] != "/w/app.bolt" {
		t.Errorf("Installed = %v", m.Installed)
	}
	if err := m.Graph.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMarchAdapter(t *testing.T) {
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": "x"})
	if _, err := apply(t, March("icelake-server"), m, srcFS, sysprofile.X86Cluster()); err != nil {
		t.Fatal(err)
	}
	argv := strings.Join(ccArgvOf(t, m, "/w/a.o"), " ")
	if !strings.Contains(argv, "-march=icelake-server") {
		t.Errorf("argv = %s", argv)
	}
}

func TestDefaultChains(t *testing.T) {
	if len(DefaultAdapted()) != 2 {
		t.Errorf("DefaultAdapted = %d adapters", len(DefaultAdapted()))
	}
	if len(DefaultOptimized()) != 3 {
		t.Errorf("DefaultOptimized = %d adapters", len(DefaultOptimized()))
	}
	names := map[string]bool{}
	for _, a := range DefaultOptimized() {
		names[a.Name()] = true
	}
	if !names["libo"] || !names["cxxo"] || !names["lto"] {
		t.Errorf("chain names = %v", names)
	}
}

func TestAdapterWorksOnClone(t *testing.T) {
	// The backend hands adapters a clone; verify transforming the clone
	// leaves the original untouched (the paper's independent-copy rule).
	m, srcFS := fixtureModels([]string{"-O2"}, map[string]string{"/w/a.c": "x"})
	clone := m.Clone()
	if _, err := apply(t, Toolchain(), clone, srcFS, sysprofile.X86Cluster()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(ccArgvOf(t, m, "/w/a.o"), " "), "native") {
		t.Error("adapter mutation leaked into the original models")
	}
}
