// Package adapter implements coMtainer's system adapters (paper §4.2):
// plugins that, "akin to compiler optimization passes, operate on
// independent copies of the process models, tailoring transformations to
// specific HPC systems". The built-ins cover the optimizations of the
// paper's evaluation: toolchain retargeting (cxxo), package replacement
// (libo), LTO, PGO, and the §5.5 cross-ISA rebuild.
package adapter

import (
	"fmt"
	"strings"

	"comtainer/internal/cclang"
	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/sysprofile"
)

// Report accumulates what the adapters changed — consumed by logs and by
// the Figure-11 script-diff accounting.
type Report struct {
	Notes []string
	// ChangedCommands counts build commands whose argv was rewritten —
	// each corresponds to one build-script line the user would have had
	// to touch by hand.
	ChangedCommands int
	// PerAdapter attributes the changed-command counts to the adapter
	// that made them (filled in by the backend).
	PerAdapter map[string]int `json:",omitempty"`
	// PackagePlan lists the packages the redirect step must install from
	// the system's (vendor-preferring) repository.
	PackagePlan []string
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Context is what an adapter sees: the target system, its own mutable
// copy of the models, the cached sources, and the shared report.
type Context struct {
	System *sysprofile.System
	Models *model.Models
	SrcFS  *fsim.FS
	Report *Report
}

// Adapter transforms the process models for a target system.
type Adapter interface {
	Name() string
	Apply(ctx *Context) error
}

// rewriteCommands parses each cc node command, lets fn mutate it, and
// re-renders changed ones, counting distinct rewritten invocations.
func rewriteCommands(ctx *Context, fn func(n *model.Node, cmd *cclang.Command) (bool, error)) error {
	seen := map[int]bool{}
	for _, n := range ctx.Models.Graph.Products() {
		if n.Cmd == nil || n.Cmd.Kind != "cc" || seen[n.Cmd.Seq] {
			continue
		}
		seen[n.Cmd.Seq] = true
		cmd, err := n.Cmd.CC()
		if err != nil {
			return err
		}
		changed, err := fn(n, cmd)
		if err != nil {
			return err
		}
		if changed {
			n.Cmd.Argv = cmd.Render()
			ctx.Report.ChangedCommands++
			// The same CompilationModel pointer may be shared by sibling
			// nodes of a multi-output command; Seq dedup covers it.
		}
	}
	return nil
}

// --- cxxo: toolchain retargeting ---

type toolchainAdapter struct{}

// Toolchain returns the cxxo adapter: compile with the system's dedicated
// toolchain, tuned for the node micro-architecture. The vendor compiler is
// picked up automatically because the Sysenv registry binds the standard
// driver names; the adapter's job is the -march/-mtune retune.
func Toolchain() Adapter { return toolchainAdapter{} }

func (toolchainAdapter) Name() string { return "cxxo" }

func (toolchainAdapter) Apply(ctx *Context) error {
	return rewriteCommands(ctx, func(n *model.Node, cmd *cclang.Command) (bool, error) {
		cmd.SetMarch("native")
		cmd.SetMtune("native")
		return true, nil
	})
}

// --- libo: package replacement ---

type liboAdapter struct{}

// Libo returns the library-replacement adapter: every package in the
// image model that the target system offers an optimized build of is
// scheduled for replacement during redirect.
func Libo() Adapter { return liboAdapter{} }

func (liboAdapter) Name() string { return "libo" }

func (liboAdapter) Apply(ctx *Context) error {
	if ctx.Models.IRLocked() {
		// Paper §4.6: IR-level distribution "limits package replacement
		// flexibility since many packages only guarantee API
		// compatibility. Once compiled, the application becomes tightly
		// coupled with specific package versions."
		ctx.Report.Notef("libo: IR-distributed image is version-locked; keeping original package versions")
		return nil
	}
	idx := ctx.System.AptIndex()
	for _, p := range ctx.Models.Image.Packages {
		latest, ok := idx.Latest(p.Name)
		if !ok {
			ctx.Report.Notef("libo: package %s unknown to the system repository, keeping image copy", p.Name)
			continue
		}
		ctx.Report.PackagePlan = append(ctx.Report.PackagePlan, p.Name)
		if latest.Optimized {
			ctx.Report.Notef("libo: replacing %s %s with optimized %s", p.Name, p.Version, latest.Version)
		}
	}
	return nil
}

// --- lto ---

type ltoAdapter struct{}

// LTO returns the link-time-optimization adapter: every compilation emits
// IR and the final links run whole-program optimization. The explicit
// graph lets coMtainer "flexibly control its scope" (paper §4.4).
func LTO() Adapter { return ltoAdapter{} }

func (ltoAdapter) Name() string { return "lto" }

func (ltoAdapter) Apply(ctx *Context) error {
	tc, ok := ctx.System.Toolchains.Lookup("gcc")
	if !ok || !tc.SupportsLTO {
		return fmt.Errorf("adapter lto: system toolchain does not support LTO")
	}
	return rewriteCommands(ctx, func(n *model.Node, cmd *cclang.Command) (bool, error) {
		if cmd.LTO() {
			return false, nil
		}
		if err := cmd.AddFlag("-flto"); err != nil {
			return false, err
		}
		return true, nil
	})
}

// --- pgo ---

type pgoAdapter struct {
	profilePath string
}

// PGOInstrument returns the first-phase PGO adapter: rebuild with
// instrumentation so a trial run can collect a profile.
func PGOInstrument() Adapter { return pgoAdapter{} }

// PGOUse returns the second-phase PGO adapter: rebuild against the
// collected profile at profilePath (inside the rebuild container).
func PGOUse(profilePath string) Adapter { return pgoAdapter{profilePath: profilePath} }

func (p pgoAdapter) Name() string {
	if p.profilePath == "" {
		return "pgo-instrument"
	}
	return "pgo-use"
}

func (p pgoAdapter) Apply(ctx *Context) error {
	tc, ok := ctx.System.Toolchains.Lookup("gcc")
	if !ok || !tc.SupportsPGO {
		return fmt.Errorf("adapter pgo: system toolchain does not support PGO")
	}
	return rewriteCommands(ctx, func(n *model.Node, cmd *cclang.Command) (bool, error) {
		// Clear any previous phase's flags.
		cmd.RemoveFlag("-fprofile-generate")
		for _, t := range cmd.Render() {
			if strings.HasPrefix(t, "-fprofile-use=") || strings.HasPrefix(t, "-fprofile-generate=") {
				cmd.RemoveFlag(t)
			}
		}
		var flag string
		if p.profilePath == "" {
			flag = "-fprofile-generate"
		} else {
			flag = "-fprofile-use=" + p.profilePath
		}
		if err := cmd.AddFlag(flag); err != nil {
			return false, err
		}
		return true, nil
	})
}

// --- cross-ISA ---

type crossISAAdapter struct{}

// CrossISA returns the §5.5 adapter: it patches the recorded build so an
// extended image produced on one ISA rebuilds on another — dropping
// machine flags the target toolchain rejects and switching guarded
// ISA-specific sources onto their portable fallback path. Sources with
// unguarded (mandatory) ISA-specific code make it fail, exactly like most
// images in the paper's first attempt.
func CrossISA() Adapter { return crossISAAdapter{} }

func (crossISAAdapter) Name() string { return "cross-isa" }

func (crossISAAdapter) Apply(ctx *Context) error {
	target := ctx.System.ISA
	if ctx.Models.BuildISA == target {
		ctx.Report.Notef("cross-isa: image already targets %s, nothing to do", target)
		return nil
	}
	if ctx.Models.IRLocked() {
		return fmt.Errorf("adapter cross-isa: image distributes %s-targeted IR, not source; cannot retarget to %s",
			ctx.Models.BuildISA, target)
	}
	tc, ok := ctx.System.Toolchains.Lookup("gcc")
	if !ok {
		return fmt.Errorf("adapter cross-isa: no system toolchain")
	}

	// Pre-scan sources for ISA-specific code.
	needGuard := map[string]bool{} // source path -> must compile with the portability define
	for _, src := range ctx.Models.SourcePaths {
		data, err := ctx.SrcFS.ReadFile(src)
		if err != nil {
			continue // non-regular or absent; the rebuild will complain if it matters
		}
		text := string(data)
		idx := strings.Index(text, "isa:")
		if idx < 0 {
			continue
		}
		marker := strings.TrimSpace(text[idx+4:])
		if f := strings.Fields(marker); len(f) > 0 {
			marker = strings.TrimSuffix(f[0], "*/")
		}
		if marker == target {
			continue
		}
		if !strings.Contains(text, "COMT_PORTABLE") {
			return fmt.Errorf("adapter cross-isa: %s contains unguarded %s-specific code; cannot rebuild for %s",
				src, marker, target)
		}
		needGuard[src] = true
	}

	err := rewriteCommands(ctx, func(n *model.Node, cmd *cclang.Command) (bool, error) {
		changed := false
		// Drop machine flags foreign to the target toolchain.
		var stale []string
		for _, tok := range cmd.Render()[1:] {
			if !strings.HasPrefix(tok, "-m") {
				continue
			}
			val := strings.TrimPrefix(tok, "-m")
			switch {
			case strings.HasPrefix(val, "arch="):
				if _, err := tc.ResolveMarch(strings.TrimPrefix(val, "arch=")); err != nil {
					stale = append(stale, tok)
				}
			case strings.HasPrefix(val, "tune="):
				// Retune is always safe to drop.
			default:
				if !tc.AcceptsMachineFlag(val) {
					stale = append(stale, tok)
				}
			}
		}
		for _, s := range stale {
			cmd.RemoveFlag(s)
			changed = true
		}
		// Route guarded ISA-specific sources onto the portable path.
		for _, dep := range n.Deps {
			depNode, ok := ctx.Models.Graph.Node(dep)
			if !ok || !needGuard[depNode.Path] {
				continue
			}
			already := false
			for _, d := range cmd.Defines() {
				if d == "COMT_PORTABLE" {
					already = true
				}
			}
			if !already {
				if err := cmd.AddFlag("-DCOMT_PORTABLE"); err != nil {
					return false, err
				}
				changed = true
			}
		}
		return changed, nil
	})
	if err != nil {
		return err
	}
	ctx.Models.BuildISA = target
	ctx.Report.Notef("cross-isa: retargeted build graph from %s to %s (%d commands changed)",
		"foreign ISA", target, ctx.Report.ChangedCommands)
	return nil
}

// --- bolt: post-link binary layout optimization ---

type boltAdapter struct {
	profilePath string
}

// BOLT returns the binary-layout-optimization adapter, the "greater space
// for potential performance gains" the paper's §3 points at beyond LTO and
// PGO. It appends a comt-bolt post-processing node after every executable
// link and retargets the install map at the optimized binaries. Like PGO,
// it needs a collected profile in the rebuild container.
func BOLT(profilePath string) Adapter { return boltAdapter{profilePath: profilePath} }

func (boltAdapter) Name() string { return "bolt" }

func (b boltAdapter) Apply(ctx *Context) error {
	if b.profilePath == "" {
		return fmt.Errorf("adapter bolt: a profile path is required")
	}
	g := ctx.Models.Graph
	maxSeq := 0
	for _, n := range g.Products() {
		if n.Cmd != nil && n.Cmd.Seq >= maxSeq {
			maxSeq = n.Cmd.Seq + 1
		}
	}
	// Collect first: adding nodes while ranging would revisit them.
	var exes []*model.Node
	for _, n := range g.Products() {
		if n.Kind == model.KindExecutable && n.Cmd != nil && n.Cmd.Kind == "cc" {
			exes = append(exes, n)
		}
	}
	if len(exes) == 0 {
		ctx.Report.Notef("bolt: no executables in the build graph")
		return nil
	}
	for _, exe := range exes {
		boltPath := exe.Path + ".bolt"
		cm := &model.CompilationModel{
			Kind: "bolt",
			Argv: []string{"comt-bolt", "-profile", b.profilePath, "-o", boltPath, exe.Path},
			Cwd:  exe.Cmd.Cwd,
			Seq:  maxSeq,
		}
		maxSeq++
		g.AddProduct(boltPath, model.KindExecutable, cm, []model.NodeID{exe.ID})
		ctx.Report.ChangedCommands++
		// Rebuilt installs now pick up the optimized binary.
		for distPath, buildPath := range ctx.Models.Installed {
			if buildPath == exe.Path {
				ctx.Models.Installed[distPath] = boltPath
			}
		}
		ctx.Report.Notef("bolt: layout-optimizing %s", exe.Path)
	}
	return nil
}

// --- march-only (ablation) ---

type marchAdapter struct{ arch string }

// March returns an ablation adapter that only pins -march (without the
// vendor toolchain retune), used by the ablation benchmarks.
func March(arch string) Adapter { return marchAdapter{arch: arch} }

func (m marchAdapter) Name() string { return "march" }

func (m marchAdapter) Apply(ctx *Context) error {
	return rewriteCommands(ctx, func(n *model.Node, cmd *cclang.Command) (bool, error) {
		cmd.SetMarch(m.arch)
		return true, nil
	})
}

// DefaultAdapted returns the adapter chain of the paper's "adapted"
// scheme: library replacement plus toolchain retargeting.
func DefaultAdapted() []Adapter { return []Adapter{Libo(), Toolchain()} }

// DefaultOptimized returns the chain of the "optimized" scheme before the
// PGO feedback loop: adapted plus LTO (PGO's two phases are orchestrated
// by the backend's feedback loop).
func DefaultOptimized() []Adapter { return append(DefaultAdapted(), LTO()) }
