// Package core is the façade over the complete coMtainer workflow
// (paper Figures 4 and 5): the user side builds application images,
// analyzes them and publishes extended images; the system side pulls,
// rebuilds with system adapters, redirects into optimized images, and
// runs them. It also provides the native (non-container) build used as
// the evaluation's reference scheme and the automated PGO feedback loop.
package core

import (
	"fmt"
	"strings"

	"comtainer/internal/actioncache"
	"comtainer/internal/chrun"
	"comtainer/internal/containerfile"
	"comtainer/internal/core/adapter"
	"comtainer/internal/core/backend"
	"comtainer/internal/core/cache"
	"comtainer/internal/core/frontend"
	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/oci"
	"comtainer/internal/remoteexec"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

// UserSide is a user-side build environment for one ISA: a local image
// store populated with the base images, the distribution's package
// repository and the stock toolchain.
type UserSide struct {
	Repo     *oci.Repository
	ISA      string
	AptIndex *dpkg.Index
	Registry *toolchain.Registry
	// BuildCache memoizes instruction layers across this user side's
	// builds, replaying hijacker recordings on hits.
	BuildCache *containerfile.BuildCache
}

// NewUserSide creates a user-side environment for an ISA.
func NewUserSide(isa string) (*UserSide, error) {
	repo := oci.NewRepository()
	if err := sysprofile.PopulateUserSide(repo, isa); err != nil {
		return nil, err
	}
	return &UserSide{
		Repo:       repo,
		ISA:        isa,
		AptIndex:   sysprofile.GenericIndex(isa),
		Registry:   toolchain.GenericRegistry(isa),
		BuildCache: containerfile.NewBuildCache(),
	}, nil
}

// contextFor assembles an app's build context: sources under /src, data
// under /data.
func contextFor(app *workloads.App, isa string) *fsim.FS {
	ctx := fsim.New()
	for name, content := range app.Sources(isa) {
		ctx.WriteFile("/src/"+name, []byte(content), 0o644)
	}
	if app.UseMake {
		ctx.WriteFile("/src/Makefile", []byte(app.Makefile(isa)), 0o644)
	}
	for name, data := range app.Data() {
		ctx.WriteFile("/data/"+name, data, 0o644)
	}
	return ctx
}

// BuildResult names the images one user-side build produced.
type BuildResult struct {
	BuildTag    string // the build-stage image (toolchain + raw log)
	DistTag     string // the dist-stage application image
	ExtendedTag string // the coMtainer extended image (+coM); empty for conventional builds
}

// BuildOriginal builds the conventional generic image of an app (the
// evaluation's "original" scheme): the stock base image, the default
// toolchain and software stack, no coMtainer involvement.
func (u *UserSide) BuildOriginal(app *workloads.App) (BuildResult, error) {
	return u.build(app, false)
}

// BuildExtended runs the full user side of the coMtainer workflow: the
// two-stage build on coMtainer's Env/Base images with the hijacker
// recording, then coMtainer-build (front-end analysis + cache layer),
// yielding the extended image.
func (u *UserSide) BuildExtended(app *workloads.App) (BuildResult, error) {
	return u.buildWith(app, true, cache.Options{})
}

// BuildExtendedObfuscated is BuildExtended with source obfuscation: the
// cache layer carries IP-protected sources that still support every
// system-side adaptation (paper §4.6).
func (u *UserSide) BuildExtendedObfuscated(app *workloads.App) (BuildResult, error) {
	return u.buildWith(app, true, cache.Options{Obfuscate: true})
}

// BuildExtendedIR is BuildExtended with IR-level distribution: the cache
// layer carries compiler bitcode instead of sources (paper §4.6's
// alternative). The resulting image recompiles for any toolchain of its
// own ISA, but its packages are version-locked and it cannot cross ISAs.
func (u *UserSide) BuildExtendedIR(app *workloads.App) (BuildResult, error) {
	return u.buildWith(app, true, cache.Options{Format: cache.FormatIR})
}

func (u *UserSide) build(app *workloads.App, comtainer bool) (BuildResult, error) {
	return u.buildWith(app, comtainer, cache.Options{})
}

func (u *UserSide) buildWith(app *workloads.App, comtainer bool, cacheOpts cache.Options) (BuildResult, error) {
	return u.BuildContainerfile(app.Name, app.Containerfile(u.ISA, comtainer),
		contextFor(app, u.ISA), comtainer, cacheOpts)
}

// BuildContainerfile runs the user-side workflow over an arbitrary
// two-stage Containerfile and build context: build both stages, and — when
// comtainer is true — analyze the build and attach the cache layer. The
// Containerfile must follow the paper's convention of a "build" stage and
// a "dist" stage.
func (u *UserSide) BuildContainerfile(name, cfText string, ctx *fsim.FS, comtainer bool, cacheOpts cache.Options) (BuildResult, error) {
	cf, err := containerfile.Parse(cfText)
	if err != nil {
		return BuildResult{}, fmt.Errorf("core: parsing %s Containerfile: %w", name, err)
	}
	if _, ok := cf.StageByName("build"); !ok {
		return BuildResult{}, fmt.Errorf("core: Containerfile for %s has no 'build' stage", name)
	}
	if _, ok := cf.StageByName("dist"); !ok {
		return BuildResult{}, fmt.Errorf("core: Containerfile for %s has no 'dist' stage", name)
	}
	builder := &containerfile.Builder{
		Repo:     u.Repo,
		Context:  ctx,
		Registry: u.Registry,
		AptIndex: u.AptIndex,
		Recorder: hijack.NewRecorder(),
		Cache:    u.BuildCache,
	}
	res := BuildResult{
		BuildTag: name + ".build",
		DistTag:  name + ".dist",
	}
	buildDesc, err := builder.Build(cf, "build")
	if err != nil {
		return BuildResult{}, fmt.Errorf("core: building %s (build stage): %w", name, err)
	}
	u.Repo.Tag(res.BuildTag, buildDesc)
	distDesc, err := builder.Build(cf, "dist")
	if err != nil {
		return BuildResult{}, fmt.Errorf("core: building %s (dist stage): %w", name, err)
	}
	u.Repo.Tag(res.DistTag, distDesc)
	if !comtainer {
		return res, nil
	}

	// coMtainer-build: analyze inside the build container, extend the
	// dist image with the cache layer.
	buildImg, err := oci.LoadImage(u.Repo.Store, buildDesc)
	if err != nil {
		return BuildResult{}, err
	}
	distImg, err := oci.LoadImage(u.Repo.Store, distDesc)
	if err != nil {
		return BuildResult{}, err
	}
	models, buildFS, err := frontend.Analyze(buildImg, distImg)
	if err != nil {
		return BuildResult{}, fmt.Errorf("core: coMtainer-build analysis of %s: %w", name, err)
	}
	if _, err := cache.ExtendWith(u.Repo, res.DistTag, models, buildFS, cacheOpts); err != nil {
		return BuildResult{}, fmt.Errorf("core: extending %s: %w", name, err)
	}
	res.ExtendedTag = cache.ExtendedTag(res.DistTag)
	return res, nil
}

// SystemSide is the system side of the workflow for one cluster: its own
// image store (with the Sysenv/Rebase images) and the system profile.
type SystemSide struct {
	Repo   *oci.Repository
	System *sysprofile.System

	// ActionMemo, when set, memoizes rebuild toolchain commands through
	// the action cache, so repeat adaptations of the same image for the
	// same target replay from cache.
	ActionMemo *actioncache.Memoizer
	// RebuildWorkers bounds rebuild concurrency (0 = default).
	RebuildWorkers int
	// RemoteExec, when set, routes cache-missed rebuild commands to a
	// remote-execution farm (local fallback on any farm failure).
	RemoteExec *remoteexec.Executor
}

// NewSystemSide creates the system-side environment of a cluster.
func NewSystemSide(sys *sysprofile.System) (*SystemSide, error) {
	repo := oci.NewRepository()
	if err := sysprofile.PopulateSystemSide(repo, sys); err != nil {
		return nil, err
	}
	return &SystemSide{Repo: repo, System: sys}, nil
}

// Pull copies an image (by tag) from a remote repository into the system's
// local store — the registry transfer of the workflow.
func (s *SystemSide) Pull(from *oci.Repository, tag string) error {
	desc, err := from.Resolve(tag)
	if err != nil {
		return err
	}
	return s.Repo.PushImage(from.Store, desc, tag)
}

// Rebuild runs coMtainer-rebuild with the given adapters (defaults to the
// "adapted" chain) and returns the +coMre descriptor.
func (s *SystemSide) Rebuild(distTag string, adapters []adapter.Adapter, extra map[string][]byte) (oci.Descriptor, *adapter.Report, error) {
	return s.RebuildWith(distTag, adapters, extra, nil)
}

// RebuildWith is Rebuild with an explicit toolchain registry for the
// rebuild container — used by ablations that rebuild under the *generic*
// toolchain (e.g. measuring library replacement alone).
func (s *SystemSide) RebuildWith(distTag string, adapters []adapter.Adapter, extra map[string][]byte, reg *toolchain.Registry) (oci.Descriptor, *adapter.Report, error) {
	return backend.Rebuild(s.Repo, distTag, backend.RebuildOptions{
		System:     s.System,
		Adapters:   adapters,
		Registry:   reg,
		ExtraFiles: extra,
		Memo:       s.ActionMemo,
		Workers:    s.RebuildWorkers,
		RemoteExec: s.RemoteExec,
	})
}

// Redirect runs coMtainer-redirect, producing the final optimized image
// tagged distTag+".redirect".
func (s *SystemSide) Redirect(distTag string) (oci.Descriptor, error) {
	return backend.Redirect(s.Repo, distTag, backend.RedirectOptions{System: s.System})
}

// Adapt performs rebuild+redirect with the given adapter chain and
// returns the optimized image's tag.
func (s *SystemSide) Adapt(distTag string, adapters []adapter.Adapter) (string, error) {
	if _, _, err := s.Rebuild(distTag, adapters, nil); err != nil {
		return "", err
	}
	if _, err := s.Redirect(distTag); err != nil {
		return "", err
	}
	return distTag + ".redirect", nil
}

// AdaptLLVM performs the artifact-evaluation variant of Adapt: the rebuild
// container uses the redistributable LLVM-based Sysenv image instead of
// the proprietary vendor toolchain. The optimized libraries still apply,
// but the compiler-side gains are diminished — matching the paper's AE
// expectations.
func (s *SystemSide) AdaptLLVM(distTag string, adapters []adapter.Adapter) (string, error) {
	_, _, err := backend.Rebuild(s.Repo, distTag, backend.RebuildOptions{
		System:    s.System,
		Adapters:  adapters,
		Registry:  s.System.LLVMRegistry(),
		SysenvTag: sysprofile.TagSysenvLLVM,
		Memo:      s.ActionMemo,
		Workers:   s.RebuildWorkers,
	})
	if err != nil {
		return "", err
	}
	if _, err := s.Redirect(distTag); err != nil {
		return "", err
	}
	return distTag + ".redirect", nil
}

// profileDropPath is where the PGO loop places the collected profile
// inside the rebuild container.
const profileDropPath = "/.comtainer/profile/default.profdata"

// PGOLoop runs the automated profile-guided-optimization feedback loop of
// §4.4: rebuild instrumented → redirect → trial run (collecting the
// profile) → rebuild with the profile → redirect. The final optimized
// image replaces distTag+".redirect". trainRef and trainNodes define the
// profiling run.
func (s *SystemSide) PGOLoop(distTag string, base []adapter.Adapter, trainRef workloads.Ref, trainNodes int) error {
	instr := append(append([]adapter.Adapter{}, base...), adapter.PGOInstrument())
	if _, _, err := s.Rebuild(distTag, instr, nil); err != nil {
		return fmt.Errorf("core: PGO instrumentation rebuild: %w", err)
	}
	if _, err := s.Redirect(distTag); err != nil {
		return fmt.Errorf("core: PGO instrumentation redirect: %w", err)
	}
	img, err := s.Repo.LoadByTag(distTag + ".redirect")
	if err != nil {
		return err
	}
	run, err := chrun.RunImage(s.System, trainRef, img, trainNodes)
	if err != nil {
		return fmt.Errorf("core: PGO trial run: %w", err)
	}
	if len(run.Profile) == 0 {
		return fmt.Errorf("core: trial run produced no profile (binary not instrumented?)")
	}
	use := append(append([]adapter.Adapter{}, base...), adapter.PGOUse(profileDropPath))
	extra := map[string][]byte{profileDropPath: run.Profile}
	if _, _, err := s.Rebuild(distTag, use, extra); err != nil {
		return fmt.Errorf("core: PGO optimizing rebuild: %w", err)
	}
	if _, err := s.Redirect(distTag); err != nil {
		return fmt.Errorf("core: PGO optimizing redirect: %w", err)
	}
	return nil
}

// PGOBoltLoop runs the PGO feedback loop and additionally post-processes
// the final binaries with the BOLT-style layout optimizer, reusing the
// same collected profile — the binary-level layout optimization the
// paper's §3 identifies as further headroom.
func (s *SystemSide) PGOBoltLoop(distTag string, base []adapter.Adapter, trainRef workloads.Ref, trainNodes int) error {
	instr := append(append([]adapter.Adapter{}, base...), adapter.PGOInstrument())
	if _, _, err := s.Rebuild(distTag, instr, nil); err != nil {
		return fmt.Errorf("core: BOLT instrumentation rebuild: %w", err)
	}
	if _, err := s.Redirect(distTag); err != nil {
		return err
	}
	img, err := s.Repo.LoadByTag(distTag + ".redirect")
	if err != nil {
		return err
	}
	run, err := chrun.RunImage(s.System, trainRef, img, trainNodes)
	if err != nil {
		return fmt.Errorf("core: BOLT trial run: %w", err)
	}
	if len(run.Profile) == 0 {
		return fmt.Errorf("core: trial run produced no profile")
	}
	final := append(append([]adapter.Adapter{}, base...),
		adapter.PGOUse(profileDropPath), adapter.BOLT(profileDropPath))
	extra := map[string][]byte{profileDropPath: run.Profile}
	if _, _, err := s.Rebuild(distTag, final, extra); err != nil {
		return fmt.Errorf("core: BOLT optimizing rebuild: %w", err)
	}
	if _, err := s.Redirect(distTag); err != nil {
		return err
	}
	return nil
}

// Run executes an image from the system's store for a workload.
func (s *SystemSide) Run(tag string, ref workloads.Ref, nodes int) (chrun.Result, error) {
	img, err := s.Repo.LoadByTag(tag)
	if err != nil {
		return chrun.Result{}, err
	}
	return chrun.RunImage(s.System, ref, img, nodes)
}

// NativeBuild compiles an app directly on the HPC system — no containers,
// the vendor toolchain, the full native stack including the vendor C
// runtime. It returns the run root and binary path of the evaluation's
// "native" scheme.
func NativeBuild(sys *sysprofile.System, app *workloads.App) (*fsim.FS, string, error) {
	fs := fsim.New()
	db := dpkg.NewDB()
	idx := sys.AptIndex()
	// Generic core first, then the full vendor stack plus native libc.
	for _, name := range []string{"libc6", "libm6", "libstdc++6", "libgomp1", "zlib1g", "libgfortran5"} {
		p, ok := idx.Latest(name)
		if !ok {
			return nil, "", fmt.Errorf("core: native stack missing %s", name)
		}
		if err := db.InstallWithDeps(fs, idx, p); err != nil {
			return nil, "", err
		}
	}
	for _, name := range app.RuntimePkgs {
		p, ok := idx.Latest(name)
		if !ok {
			return nil, "", fmt.Errorf("core: native stack missing %s", name)
		}
		if err := db.InstallWithDeps(fs, idx, p); err != nil {
			return nil, "", err
		}
	}
	for _, p := range sysprofile.NativePackages(sys) {
		if err := db.Install(fs, p); err != nil {
			return nil, "", err
		}
	}
	// Sources and the hand-run vendor build.
	for name, content := range app.Sources(sys.ISA) {
		fs.WriteFile("/home/user/"+app.Name+"/"+name, []byte(content), 0o644)
	}
	runner := toolchain.NewRunner(fs, sys.Toolchains)
	runner.Cwd = "/home/user/" + app.Name

	ext := ".c"
	cc := "gcc"
	if app.Language == "c++" {
		ext, cc = ".cc", "g++"
	}
	var objs []string
	for i := 0; i < app.NumSrcFiles; i++ {
		src := fmt.Sprintf("%s_%02d%s", app.Name, i, ext)
		obj := fmt.Sprintf("%s_%02d.o", app.Name, i)
		argv := []string{cc, "-O2", "-march=native", "-mtune=native", "-c", src, "-o", obj}
		if app.Portability == workloads.Guarded && sys.ISA == toolchain.ISAArm {
			argv = append(argv[:1], append([]string{"-DCOMT_PORTABLE"}, argv[1:]...)...)
		}
		if err := runner.Run(argv); err != nil {
			return nil, "", fmt.Errorf("core: native compile of %s: %w", src, err)
		}
		objs = append(objs, obj)
	}
	bin := "/home/user/" + app.Name + "/" + app.Name
	link := append([]string{cc}, objs...)
	link = append(link, "-o", bin)
	for _, l := range app.Libs {
		link = append(link, "-l"+l)
	}
	if err := runner.Run(link); err != nil {
		return nil, "", fmt.Errorf("core: native link of %s: %w", app.Name, err)
	}
	if !strings.HasPrefix(bin, "/") {
		return nil, "", fmt.Errorf("core: internal error: relative binary path")
	}
	return fs, bin, nil
}
