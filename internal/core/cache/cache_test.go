package cache

import (
	"strings"
	"testing"

	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
)

func sampleModels() *model.Models {
	g := model.NewBuildGraph()
	s := g.AddSource("/w/src/a.c")
	g.AddProduct("/w/app", model.KindExecutable,
		&model.CompilationModel{Kind: "cc", Argv: []string{"gcc", "a.c", "-o", "/w/app"}, Cwd: "/w/src", Seq: 0},
		[]model.NodeID{s.ID})
	return &model.Models{
		Image:       model.ImageModel{Architecture: "amd64"},
		Graph:       g,
		SourcePaths: []string{"/w/src/a.c"},
		Installed:   map[string]string{"/app/demo": "/w/app"},
		BuildISA:    "x86-64",
	}
}

func sampleBuildFS() *fsim.FS {
	fs := fsim.New()
	fs.WriteFile("/w/src/a.c", []byte("int main(){}\n"), 0o644)
	return fs
}

func distRepo(t *testing.T) (*oci.Repository, string) {
	t.Helper()
	repo := oci.NewRepository()
	layer := fsim.New()
	layer.WriteFile("/app/demo", []byte("binary"), 0o755)
	desc, err := oci.WriteImage(repo.Store, oci.ImageConfig{Architecture: "amd64", OS: "linux"}, []*fsim.FS{layer})
	if err != nil {
		t.Fatal(err)
	}
	repo.Tag("demo.dist", desc)
	return repo, "demo.dist"
}

func TestExtendAndRead(t *testing.T) {
	repo, distTag := distRepo(t)
	m := sampleModels()
	ext, err := Extend(repo, distTag, m, sampleBuildFS())
	if err != nil {
		t.Fatal(err)
	}
	if tag := ExtendedTag(distTag); tag != "demo.dist+coM" {
		t.Errorf("ExtendedTag = %q", tag)
	}
	extImg, err := repo.LoadByTag(ExtendedTag(distTag))
	if err != nil {
		t.Fatal(err)
	}
	if extImg.Desc.Digest != ext.Digest {
		t.Error("tag points at the wrong manifest")
	}
	back, srcFS, err := Read(extImg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.Len() != m.Graph.Len() || back.BuildISA != m.BuildISA {
		t.Errorf("models round trip: %+v", back)
	}
	data, err := srcFS.ReadFile("/w/src/a.c")
	if err != nil || !strings.Contains(string(data), "main") {
		t.Errorf("source round trip: %q, %v", data, err)
	}
	// The original dist image is untouched and still loadable.
	distImg, err := repo.LoadByTag(distTag)
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := distImg.Flatten()
	if flat.Exists(ModelsPath) {
		t.Error("cache leaked into the dist image")
	}
}

func TestCacheLayerSize(t *testing.T) {
	repo, distTag := distRepo(t)
	ext, err := Extend(repo, distTag, sampleModels(), sampleBuildFS())
	if err != nil {
		t.Fatal(err)
	}
	size, err := CacheLayerSize(repo, ext)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Errorf("cache layer size = %d", size)
	}
	// A plain image has no cache layer.
	distDesc, _ := repo.Resolve(distTag)
	if _, err := CacheLayerSize(repo, distDesc); err == nil {
		t.Error("plain image reported a cache layer")
	}
}

func TestReadRejectsPlainImage(t *testing.T) {
	repo, distTag := distRepo(t)
	img, err := repo.LoadByTag(distTag)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(img); err == nil {
		t.Error("Read accepted an image without a cache layer")
	}
}

func TestBuildLayerMissingSource(t *testing.T) {
	m := sampleModels()
	m.SourcePaths = append(m.SourcePaths, "/w/src/ghost.c")
	if _, err := BuildLayer(m, sampleBuildFS()); err == nil {
		t.Error("missing source not detected")
	}
}

func TestReadDetectsTamperedCache(t *testing.T) {
	repo, distTag := distRepo(t)
	m := sampleModels()
	if _, err := Extend(repo, distTag, m, sampleBuildFS()); err != nil {
		t.Fatal(err)
	}
	extImg, _ := repo.LoadByTag(ExtendedTag(distTag))
	// Derive a tampered image whose cache layer lacks a declared source.
	tampered := fsim.New()
	blob, _ := m.Marshal()
	tampered.WriteFile(ModelsPath, blob, 0o644)
	desc, err := oci.AppendLayer(repo.Store, extImg.Desc, tampered, RoleCache, "tamper")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite: a layer that whiteouts the sources dir.
	wh := fsim.New()
	wh.WriteFile(Dir+"/.wh.src", nil, 0)
	desc, err = oci.AppendLayer(repo.Store, desc, wh, RoleCache, "tamper2")
	if err != nil {
		t.Fatal(err)
	}
	img, err := oci.LoadImage(repo.Store, desc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(img); err == nil {
		t.Error("tampered cache (missing declared source) accepted")
	}
}
