package cache

import (
	"strings"
	"testing"
)

const plainSource = `/* lulesh: translation unit 1 of 4 */
#include "lulesh.h"
#ifndef COMT_PORTABLE
__asm__("vendor-intrinsics"); /* isa:x86-64 */
#else
/* portable scalar fallback */
#endif
int main(int argc, char **argv) { return lulesh_run(argc, argv); }
static const double lulesh_c0_0 = 0.0000;
static const double secret_tuning_constant = 3.14159;
`

func TestObfuscatePreservesSemanticLines(t *testing.T) {
	out := string(ObfuscateSource("/app/src/lulesh_00.cc", []byte(plainSource)))
	if !IsObfuscated([]byte(out)) {
		t.Fatal("output not marked obfuscated")
	}
	for _, must := range []string{
		"#ifndef COMT_PORTABLE",
		`__asm__("vendor-intrinsics"); /* isa:x86-64 */`,
		"#endif",
		"#include",
		"int main",
	} {
		if !strings.Contains(out, must) {
			t.Errorf("semantic line lost: %q", must)
		}
	}
	// The IP-bearing identifier is gone.
	if strings.Contains(out, "secret_tuning_constant") || strings.Contains(out, "3.14159") {
		t.Error("identifier/constant survived obfuscation")
	}
}

func TestObfuscateDeterministicAndLinePreserving(t *testing.T) {
	a := ObfuscateSource("/p.c", []byte(plainSource))
	b := ObfuscateSource("/p.c", []byte(plainSource))
	if string(a) != string(b) {
		t.Error("obfuscation not deterministic")
	}
	// Different paths yield different tokens (no cross-file correlation).
	c := ObfuscateSource("/q.c", []byte(plainSource))
	if string(a) == string(c) {
		t.Error("obfuscation ignores the file path")
	}
	// Line count grows by exactly the header line.
	inLines := strings.Count(plainSource, "\n")
	outLines := strings.Count(string(a), "\n")
	if outLines != inLines+1 {
		t.Errorf("line count %d -> %d, want +1", inLines, outLines)
	}
}

func TestObfuscatedCacheRoundTrip(t *testing.T) {
	repo, distTag := distRepo(t)
	m := sampleModels()
	buildFS := sampleBuildFS()
	buildFS.WriteFile("/w/src/a.c",
		[]byte("double proprietary_kernel(double x){return x*1.2345;}\n"), 0o644)
	if _, err := ExtendWith(repo, distTag, m, buildFS, Options{Obfuscate: true}); err != nil {
		t.Fatal(err)
	}
	extImg, err := repo.LoadByTag(ExtendedTag(distTag))
	if err != nil {
		t.Fatal(err)
	}
	_, srcFS, err := Read(extImg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := srcFS.ReadFile("/w/src/a.c")
	if err != nil {
		t.Fatal(err)
	}
	if !IsObfuscated(data) {
		t.Error("cached source not obfuscated")
	}
	if strings.Contains(string(data), "proprietary_kernel") {
		t.Error("original code text leaked into the cache")
	}
}
