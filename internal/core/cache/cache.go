// Package cache implements coMtainer's cache storage (paper §4.2/§4.5):
// it serializes the process models and the collected build-time data
// (source files) into a new OCI layer, appends that layer to the dist
// image to form the *extended image* (manifest tagged with the +coM
// suffix), and reads the data back on the system side.
//
// Because the cache rides as an extra layer, "the injection of additional
// data introduces no changes to the original image".
package cache

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/toolchain"
)

// Cache layer locations inside the extended image. The models document is
// stored gzip-compressed: its content is highly repetitive structured
// data, and the cache layer must stay a small fraction of the image size
// (Table 3).
const (
	Dir        = "/.comtainer/cache"
	ModelsPath = Dir + "/models.json.gz"
	MetaPath   = Dir + "/meta.json"
	SrcPrefix  = Dir + "/src" // + original absolute path
)

// gzipBytes compresses b deterministically (zeroed mtime).
func gzipBytes(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return nil, err
	}
	zw.ModTime = time.Unix(0, 0).UTC()
	if _, err := zw.Write(b); err != nil {
		zw.Close()
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// gunzipBytes decompresses b.
func gunzipBytes(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		zr.Close()
		return nil, err
	}
	return out, zr.Close()
}

// Manifest tag suffixes of the workflow's intermediate images (paper
// artifact appendix: "+coM" after coMtainer-build, "+coMre" after
// coMtainer-rebuild).
const (
	ExtendedSuffix = "+coM"
	RebuiltSuffix  = "+coMre"
)

// Layer roles recorded in manifest annotations.
const (
	RoleCache   = "comtainer.cache"
	RoleRebuild = "comtainer.rebuild"
)

// Meta describes a cache layer.
type Meta struct {
	Version    int    `json:"version"`
	CreatedBy  string `json:"createdBy"`
	Sources    int    `json:"sources"`
	Obfuscated bool   `json:"obfuscated,omitempty"`
	Format     string `json:"format,omitempty"`
}

// formatName names a Format for the meta document.
func formatName(f Format) string {
	if f == FormatIR {
		return model.DistIR
	}
	return model.DistSource
}

// langForPath guesses the language of a source path for IR lowering.
func langForPath(p string) string {
	switch {
	case strings.HasSuffix(p, ".cc"), strings.HasSuffix(p, ".cpp"), strings.HasSuffix(p, ".cxx"):
		return "c++"
	case strings.HasSuffix(p, ".f"), strings.HasSuffix(p, ".f90"), strings.HasSuffix(p, ".F90"):
		return "fortran"
	default:
		return "c"
	}
}

// ExtendedTag returns the index tag of the extended image derived from
// distTag.
func ExtendedTag(distTag string) string { return distTag + ExtendedSuffix }

// RebuiltTag returns the index tag of the rebuilt image derived from
// distTag.
func RebuiltTag(distTag string) string { return distTag + RebuiltSuffix }

// Format selects the distribution form of the cached build inputs.
type Format int

// Distribution formats (paper §4.6: source is the highest abstraction
// level; IR protects sources harder but locks package versions and ISA).
const (
	FormatSource Format = iota
	FormatIR
)

// Options configure cache-layer construction.
type Options struct {
	// Obfuscate rewrites every collected source through ObfuscateSource
	// before it enters the cache layer (paper §4.6: IP protection while
	// keeping system-side adaptation possible). Incompatible with
	// FormatIR (IR is already opaque).
	Obfuscate bool
	// Format selects source (default) or compiler-IR distribution.
	Format Format
}

// BuildLayer assembles the cache layer: the serialized models plus every
// referenced source file, stored under SrcPrefix at its original path.
func BuildLayer(m *model.Models, buildFS *fsim.FS) (*fsim.FS, error) {
	return BuildLayerWith(m, buildFS, Options{})
}

// BuildLayerWith is BuildLayer with explicit options.
func BuildLayerWith(m *model.Models, buildFS *fsim.FS, opts Options) (*fsim.FS, error) {
	if opts.Obfuscate && opts.Format == FormatIR {
		return nil, fmt.Errorf("cache: obfuscation and IR distribution are mutually exclusive")
	}
	if opts.Format == FormatIR {
		m = m.Clone()
		m.Distribution = model.DistIR
	}
	layer := fsim.New()
	blob, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	packed, err := gzipBytes(blob)
	if err != nil {
		return nil, fmt.Errorf("cache: compressing models: %w", err)
	}
	layer.WriteFile(ModelsPath, packed, 0o644)
	for _, src := range m.SourcePaths {
		data, err := buildFS.ReadFile(src)
		if err != nil {
			return nil, fmt.Errorf("cache: collecting source %s: %w", src, err)
		}
		switch {
		case opts.Format == FormatIR:
			bc := toolchain.BitcodeArtifact(src, data, m.BuildISA, langForPath(src))
			data = bc.Encode()
		case opts.Obfuscate:
			data = ObfuscateSource(src, data)
		}
		layer.WriteFile(SrcPrefix+src, data, 0o644)
	}
	meta := Meta{Version: 1, CreatedBy: "coMtainer-build", Sources: len(m.SourcePaths), Obfuscated: opts.Obfuscate, Format: formatName(opts.Format)}
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("cache: encoding meta: %w", err)
	}
	layer.WriteFile(MetaPath, mb, 0o644)
	return layer, nil
}

// Extend appends the cache layer to the image tagged distTag in repo and
// tags the result with the +coM suffix. It returns the extended image's
// manifest descriptor.
func Extend(repo *oci.Repository, distTag string, m *model.Models, buildFS *fsim.FS) (oci.Descriptor, error) {
	return ExtendWith(repo, distTag, m, buildFS, Options{})
}

// ExtendWith is Extend with explicit options.
func ExtendWith(repo *oci.Repository, distTag string, m *model.Models, buildFS *fsim.FS, opts Options) (oci.Descriptor, error) {
	distDesc, err := repo.Resolve(distTag)
	if err != nil {
		return oci.Descriptor{}, err
	}
	layer, err := BuildLayerWith(m, buildFS, opts)
	if err != nil {
		return oci.Descriptor{}, err
	}
	ext, err := oci.AppendLayer(repo.Store, distDesc, layer, RoleCache, "coMtainer cache layer")
	if err != nil {
		return oci.Descriptor{}, err
	}
	repo.Tag(ExtendedTag(distTag), ext)
	return ext, nil
}

// CacheLayerSize returns the byte size of the extended image's cache
// layer blob (the Table-3 "Cache" column).
func CacheLayerSize(repo *oci.Repository, extDesc oci.Descriptor) (int64, error) {
	mfst, err := oci.LoadManifest(repo.Store, extDesc.Digest)
	if err != nil {
		return 0, err
	}
	for i := len(mfst.Layers) - 1; i >= 0; i-- {
		if mfst.Layers[i].Annotations[oci.AnnotationLayerRole] == RoleCache {
			return mfst.Layers[i].Size, nil
		}
	}
	return 0, fmt.Errorf("cache: image has no cache layer")
}

// ContentSize returns the total content bytes of the extended image's
// cache layer (models + sources) — the size accounting Table 3 reports.
func ContentSize(repo *oci.Repository, extDesc oci.Descriptor) (int64, error) {
	img, err := oci.LoadImage(repo.Store, extDesc)
	if err != nil {
		return 0, err
	}
	for i := len(img.Manifest.Layers) - 1; i >= 0; i-- {
		if img.Manifest.Layers[i].Annotations[oci.AnnotationLayerRole] != RoleCache {
			continue
		}
		layerFS, err := img.Layer(i)
		if err != nil {
			return 0, err
		}
		return layerFS.TotalSize(), nil
	}
	return 0, fmt.Errorf("cache: image has no cache layer")
}

// Read loads the models and the source tree from an extended image. The
// returned FS holds the sources at their *original* build-container paths,
// ready to be materialized into a rebuild container.
func Read(extImg *oci.Image) (*model.Models, *fsim.FS, error) {
	flat, err := extImg.Flatten()
	if err != nil {
		return nil, nil, err
	}
	if !flat.Exists(ModelsPath) {
		return nil, nil, fmt.Errorf("cache: image carries no coMtainer cache layer (run coMtainer-build first)")
	}
	packed, err := flat.ReadFile(ModelsPath)
	if err != nil {
		return nil, nil, err
	}
	blob, err := gunzipBytes(packed)
	if err != nil {
		return nil, nil, fmt.Errorf("cache: corrupt models document: %w", err)
	}
	m, err := model.Unmarshal(blob)
	if err != nil {
		return nil, nil, err
	}
	srcFS := fsim.New()
	for _, p := range flat.Paths() {
		if !strings.HasPrefix(p, SrcPrefix+"/") {
			continue
		}
		f, err := flat.Stat(p)
		if err != nil {
			return nil, nil, err
		}
		if f.Type != fsim.TypeRegular {
			continue
		}
		srcFS.WriteFile(strings.TrimPrefix(p, SrcPrefix), f.Data, 0o644)
	}
	// Integrity: every declared source must be present.
	for _, src := range m.SourcePaths {
		if !srcFS.Exists(src) {
			return nil, nil, fmt.Errorf("cache: source %s declared but missing from the cache layer", src)
		}
	}
	return m, srcFS, nil
}
