package cache

import (
	"fmt"
	"strings"

	"comtainer/internal/digest"
)

// Source obfuscation (paper §4.6): "the included sources don't have to be
// in their original form — they can be obfuscated to protect intellectual
// property while still enabling all the system-side adaptation and
// optimizations."
//
// The obfuscator rewrites identifier-bearing declaration lines to
// digest-derived names while preserving everything compilation semantics
// depend on in this simulation: line structure (compile cost), ISA markers
// (inline-assembly portability) and preprocessor guards (the COMT_PORTABLE
// fallback path). The transform is deterministic, so obfuscated rebuilds
// stay reproducible.

// obfuscationHeader marks obfuscated sources.
const obfuscationHeader = "/* coMtainer: obfuscated source */"

// preservedTokens are substrings that must survive obfuscation verbatim —
// they carry build semantics rather than intellectual property.
var preservedTokens = []string{
	"isa:", "COMT_PORTABLE", "#ifndef", "#ifdef", "#else", "#endif",
	"#include", "__asm__", "int main",
}

// mustPreserve reports whether a line carries build semantics.
func mustPreserve(line string) bool {
	for _, tok := range preservedTokens {
		if strings.Contains(line, tok) {
			return true
		}
	}
	return false
}

// ObfuscateSource rewrites one source file. Semantic lines survive;
// everything else is replaced line-for-line with an opaque,
// content-derived token, destroying identifiers and constants while
// keeping the line count (and thus simulated compile cost) intact.
func ObfuscateSource(path string, data []byte) []byte {
	lines := strings.Split(string(data), "\n")
	var b strings.Builder
	b.WriteString(obfuscationHeader + "\n")
	for i, line := range lines {
		if i == len(lines)-1 && line == "" {
			break
		}
		if mustPreserve(line) {
			b.WriteString(line)
			b.WriteByte('\n')
			continue
		}
		if strings.TrimSpace(line) == "" {
			b.WriteByte('\n')
			continue
		}
		tok := digest.FromString(fmt.Sprintf("%s:%d:%s", path, i, line)).Short()
		fmt.Fprintf(&b, "static const int comt_%s_%d = %d;\n", tok, i, i)
	}
	return []byte(b.String())
}

// IsObfuscated reports whether data was produced by ObfuscateSource.
func IsObfuscated(data []byte) bool {
	return strings.HasPrefix(string(data), obfuscationHeader)
}
