package model

import (
	"testing"
	"testing/quick"
)

// sampleGraph builds src -> obj -> (archive, exe).
func sampleGraph() *BuildGraph {
	g := NewBuildGraph()
	s1 := g.AddSource("/app/src/a.c")
	s2 := g.AddSource("/app/src/b.c")
	o1 := g.AddProduct("/app/src/a.o", KindObject,
		&CompilationModel{Kind: "cc", Argv: []string{"gcc", "-O2", "-c", "a.c"}, Cwd: "/app/src", Seq: 0},
		[]NodeID{s1.ID})
	o2 := g.AddProduct("/app/src/b.o", KindObject,
		&CompilationModel{Kind: "cc", Argv: []string{"gcc", "-O2", "-c", "b.c"}, Cwd: "/app/src", Seq: 1},
		[]NodeID{s2.ID})
	ar := g.AddProduct("/app/src/libx.a", KindArchive,
		&CompilationModel{Kind: "ar", Argv: []string{"ar", "rcs", "libx.a", "b.o"}, Cwd: "/app/src", Seq: 2},
		[]NodeID{o2.ID})
	g.AddProduct("/app/bin/app", KindExecutable,
		&CompilationModel{Kind: "cc", Argv: []string{"gcc", "a.o", "libx.a", "-o", "/app/bin/app"}, Cwd: "/app/src", Seq: 3},
		[]NodeID{o1.ID, ar.ID})
	return g
}

func TestGraphBasics(t *testing.T) {
	g := sampleGraph()
	if g.Len() != 6 {
		t.Fatalf("Len = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Sources()) != 2 {
		t.Errorf("Sources = %d", len(g.Sources()))
	}
	if len(g.Products()) != 4 {
		t.Errorf("Products = %d", len(g.Products()))
	}
	n, ok := g.ByPath("/app/bin/app")
	if !ok || n.Kind != KindExecutable {
		t.Errorf("ByPath = %+v, %v", n, ok)
	}
	if _, ok := g.ByPath("/nope"); ok {
		t.Error("ByPath found missing node")
	}
	if _, ok := g.Node(NodeID(99)); ok {
		t.Error("Node(99) found")
	}
}

func TestAddSourceIdempotent(t *testing.T) {
	g := NewBuildGraph()
	a := g.AddSource("/x.c")
	b := g.AddSource("/x.c")
	if a.ID != b.ID || g.Len() != 1 {
		t.Error("AddSource not idempotent")
	}
}

func TestAddProductReplaces(t *testing.T) {
	g := NewBuildGraph()
	s := g.AddSource("/x.c")
	first := &CompilationModel{Kind: "cc", Argv: []string{"gcc", "-O0", "-c", "x.c"}, Seq: 0}
	second := &CompilationModel{Kind: "cc", Argv: []string{"gcc", "-O3", "-c", "x.c"}, Seq: 1}
	g.AddProduct("/x.o", KindObject, first, []NodeID{s.ID})
	n := g.AddProduct("/x.o", KindObject, second, []NodeID{s.ID})
	if n.Cmd.Seq != 1 || g.Len() != 2 {
		t.Error("recompilation did not replace the node command")
	}
}

func TestTopoOrder(t *testing.T) {
	g := sampleGraph()
	order, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Path] = i
	}
	if !(pos["/app/src/a.c"] < pos["/app/src/a.o"] &&
		pos["/app/src/b.o"] < pos["/app/src/libx.a"] &&
		pos["/app/src/libx.a"] < pos["/app/bin/app"]) {
		t.Errorf("topo order wrong: %v", pos)
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewBuildGraph()
	a := g.AddProduct("/a", KindObject, &CompilationModel{Kind: "cc"}, nil)
	b := g.AddProduct("/b", KindObject, &CompilationModel{Kind: "cc"}, []NodeID{a.ID})
	a.Deps = []NodeID{b.ID}
	if _, err := g.Topo(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate missed the cycle")
	}
}

func TestValidateErrors(t *testing.T) {
	g := NewBuildGraph()
	g.AddProduct("/x.o", KindObject, nil, nil)
	if err := g.Validate(); err == nil {
		t.Error("product without command accepted")
	}
	g2 := NewBuildGraph()
	n := g2.AddSource("/s.c")
	n.Deps = []NodeID{42}
	if err := g2.Validate(); err == nil {
		t.Error("dangling dep accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := sampleGraph()
	c := g.Clone()
	n, _ := c.ByPath("/app/src/a.o")
	n.Cmd.Argv[1] = "-O3"
	orig, _ := g.ByPath("/app/src/a.o")
	if orig.Cmd.Argv[1] != "-O2" {
		t.Error("clone shares command argv")
	}
	c.AddSource("/new.c")
	if g.Len() == c.Len() {
		t.Error("clone shares node slice")
	}
}

func TestModelsRoundTrip(t *testing.T) {
	m := &Models{
		Image: ImageModel{
			Architecture: "amd64",
			Entrypoint:   []string{"/app/bin/app"},
			Files: []FileEntry{
				{Path: "/app/bin/app", Origin: OriginBuild, Node: 6, Size: 100},
				{Path: "/usr/lib/libc.so.6", Origin: OriginBase, Package: "libc6", Size: 5},
			},
			Packages: []PackageRef{{Name: "libc6", Version: "2.39"}},
		},
		Graph:       sampleGraph(),
		SourcePaths: []string{"/app/src/a.c", "/app/src/b.c"},
		Installed:   map[string]string{"/app/bin/app": "/app/bin/app"},
		BuildISA:    "x86-64",
	}
	blob, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.Len() != m.Graph.Len() || back.BuildISA != "x86-64" {
		t.Errorf("round trip mismatch: %+v", back)
	}
	// The path index is rebuilt after decoding.
	if _, ok := back.Graph.ByPath("/app/bin/app"); !ok {
		t.Error("ByPath broken after Unmarshal")
	}
	if back.Installed["/app/bin/app"] != "/app/bin/app" {
		t.Error("Installed map lost")
	}
	cm, _ := back.Graph.ByPath("/app/src/a.o")
	cc, err := cm.Cmd.CC()
	if err != nil {
		t.Fatal(err)
	}
	if cc.OptLevel() != "2" {
		t.Errorf("compilation model OptLevel = %q", cc.OptLevel())
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// A decoded graph with a cycle must be rejected.
	bad := `{"graph":{"nodes":[
	  {"id":1,"kind":"object","path":"/a","deps":[2],"cmd":{"kind":"cc","argv":["gcc"],"seq":0}},
	  {"id":2,"kind":"object","path":"/b","deps":[1],"cmd":{"kind":"cc","argv":["gcc"],"seq":1}}
	]}}`
	if _, err := Unmarshal([]byte(bad)); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestCompilationModelKinds(t *testing.T) {
	cc := &CompilationModel{Kind: "cc", Argv: []string{"gcc", "-c", "x.c"}}
	if _, err := cc.CC(); err != nil {
		t.Error(err)
	}
	if _, err := cc.Ar(); err == nil {
		t.Error("cc parsed as ar")
	}
	ar := &CompilationModel{Kind: "ar", Argv: []string{"ar", "rcs", "x.a", "x.o"}}
	if _, err := ar.Ar(); err != nil {
		t.Error(err)
	}
	if _, err := ar.CC(); err == nil {
		t.Error("ar parsed as cc")
	}
	var nilCM *CompilationModel
	if nilCM.Clone() != nil {
		t.Error("nil Clone not nil")
	}
}

func TestImageModelHelpers(t *testing.T) {
	im := ImageModel{Files: []FileEntry{
		{Path: "/a", Origin: OriginBase},
		{Path: "/b", Origin: OriginBuild},
		{Path: "/c", Origin: OriginBuild},
		{Path: "/d", Origin: OriginData},
	}}
	counts := im.CountByOrigin()
	if counts[OriginBuild] != 2 || counts[OriginBase] != 1 || counts[OriginData] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if _, ok := im.File("/b"); !ok {
		t.Error("File(/b) not found")
	}
	if _, ok := im.File("/zz"); ok {
		t.Error("File(/zz) found")
	}
}

func TestKindForPath(t *testing.T) {
	cases := map[string]NodeKind{
		"/x.c": KindSource, "/y.f90": KindSource,
		"/x.o": KindObject, "/lib.a": KindArchive,
		"/lib.so": KindSharedObj, "/app": KindExecutable,
	}
	for p, want := range cases {
		if got := KindForPath(p); got != want {
			t.Errorf("KindForPath(%s) = %s, want %s", p, got, want)
		}
	}
}

func TestPropertyTopoIsLinearExtension(t *testing.T) {
	// For a chain graph of random length, Topo must respect every edge.
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := NewBuildGraph()
		prev := g.AddSource("/s0")
		for i := 1; i < n; i++ {
			prev = g.AddProduct(
				"/p"+string(rune('a'+i%26))+string(rune('0'+i/26)),
				KindObject,
				&CompilationModel{Kind: "cc", Argv: []string{"gcc"}, Seq: i},
				[]NodeID{prev.ID})
		}
		order, err := g.Topo()
		if err != nil {
			return false
		}
		pos := map[NodeID]int{}
		for i, node := range order {
			pos[node.ID] = i
		}
		for _, node := range g.Nodes {
			for _, d := range node.Deps {
				if pos[d] >= pos[node.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
