// Package model defines coMtainer's process models — the "IR" of the
// toolset (paper §4.3): the Image Model classifying every file in the
// application image by origin, the Build Graph Model capturing all data
// transformations of the build as a typed DAG, and the Compilation Models
// describing how each generated node was produced.
package model

import (
	"encoding/json"
	"fmt"
	"sort"

	"comtainer/internal/cclang"
)

// FileOrigin classifies where a file in the application image came from —
// the five categories of the paper's image model.
type FileOrigin string

// The origin categories.
const (
	OriginBase    FileOrigin = "base"    // shipped by the base image
	OriginPackage FileOrigin = "package" // installed by the package manager
	OriginBuild   FileOrigin = "build"   // produced by the build process
	OriginData    FileOrigin = "data"    // platform-independent data
	OriginUnknown FileOrigin = "unknown"
)

// FileEntry is one classified file of the application image.
type FileEntry struct {
	Path    string     `json:"path"`
	Origin  FileOrigin `json:"origin"`
	Package string     `json:"package,omitempty"` // owning package
	Node    NodeID     `json:"node,omitempty"`    // producing build-graph node
	Size    int64      `json:"size"`
}

// PackageRef records one installed package of the image.
type PackageRef struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// ImageModel represents the structure and content of the application
// image.
type ImageModel struct {
	Architecture string       `json:"architecture"`
	Entrypoint   []string     `json:"entrypoint,omitempty"`
	Files        []FileEntry  `json:"files"`
	Packages     []PackageRef `json:"packages"`
}

// File finds the entry for path.
func (im *ImageModel) File(path string) (FileEntry, bool) {
	for _, f := range im.Files {
		if f.Path == path {
			return f, true
		}
	}
	return FileEntry{}, false
}

// CountByOrigin tallies files per origin class.
func (im *ImageModel) CountByOrigin() map[FileOrigin]int {
	out := map[FileOrigin]int{}
	for _, f := range im.Files {
		out[f.Origin]++
	}
	return out
}

// NodeID identifies a build-graph node; 0 is invalid.
type NodeID int

// NodeKind types the build-graph nodes. The graph is extensible — the
// paper models C/C++/Fortran ecosystems with exactly these kinds.
type NodeKind string

// Node kinds.
const (
	KindSource     NodeKind = "source"
	KindObject     NodeKind = "object"
	KindArchive    NodeKind = "archive"
	KindSharedObj  NodeKind = "shared-object"
	KindExecutable NodeKind = "executable"
	KindOther      NodeKind = "other"
)

// CompilationModel captures how one node was generated: the recorded
// command line plus its execution context. Per the paper, .o/.so nodes
// carry structural GCC command-line data; .a nodes represent archive
// contents.
type CompilationModel struct {
	Kind string   `json:"kind"` // "cc" or "ar"
	Argv []string `json:"argv"`
	Cwd  string   `json:"cwd"`
	Seq  int      `json:"seq"` // recording order, identifies the invocation
}

// CC parses the command as a compiler-driver invocation.
func (cm *CompilationModel) CC() (*cclang.Command, error) {
	if cm.Kind != "cc" {
		return nil, fmt.Errorf("model: node command is %q, not a compilation", cm.Kind)
	}
	return cclang.Parse(cm.Argv)
}

// Ar parses the command as an archiver invocation.
func (cm *CompilationModel) Ar() (*cclang.ArchiveCommand, error) {
	if cm.Kind != "ar" {
		return nil, fmt.Errorf("model: node command is %q, not an archive operation", cm.Kind)
	}
	return cclang.ParseArchive(cm.Argv)
}

// Clone deep-copies the compilation model.
func (cm *CompilationModel) Clone() *CompilationModel {
	if cm == nil {
		return nil
	}
	c := *cm
	c.Argv = append([]string(nil), cm.Argv...)
	return &c
}

// Node is one vertex of the build graph.
type Node struct {
	ID   NodeID            `json:"id"`
	Kind NodeKind          `json:"kind"`
	Path string            `json:"path"` // absolute path in the build container
	Deps []NodeID          `json:"deps,omitempty"`
	Cmd  *CompilationModel `json:"cmd,omitempty"` // nil for sources
}

// BuildGraph is the DAG of build-process data transformations.
type BuildGraph struct {
	Nodes  []*Node `json:"nodes"`
	byPath map[string]NodeID
}

// NewBuildGraph returns an empty graph.
func NewBuildGraph() *BuildGraph {
	return &BuildGraph{byPath: make(map[string]NodeID)}
}

// reindex rebuilds the path index (after JSON decoding).
func (g *BuildGraph) reindex() {
	g.byPath = make(map[string]NodeID, len(g.Nodes))
	for _, n := range g.Nodes {
		g.byPath[n.Path] = n.ID
	}
}

// Node returns the node with the given id.
func (g *BuildGraph) Node(id NodeID) (*Node, bool) {
	i := int(id) - 1
	if i < 0 || i >= len(g.Nodes) {
		return nil, false
	}
	return g.Nodes[i], true
}

// ByPath returns the node producing (or representing) path.
func (g *BuildGraph) ByPath(path string) (*Node, bool) {
	id, ok := g.byPath[path]
	if !ok {
		return nil, false
	}
	return g.Node(id)
}

// Len returns the number of nodes.
func (g *BuildGraph) Len() int { return len(g.Nodes) }

// AddSource registers a source node for path, reusing an existing node.
func (g *BuildGraph) AddSource(path string) *Node {
	if n, ok := g.ByPath(path); ok {
		return n
	}
	n := &Node{ID: NodeID(len(g.Nodes) + 1), Kind: KindSource, Path: path}
	g.Nodes = append(g.Nodes, n)
	g.byPath[path] = n.ID
	return n
}

// AddProduct registers a node produced by cmd from deps. Re-generating an
// existing path (e.g. recompilation) replaces its command and deps.
func (g *BuildGraph) AddProduct(path string, kind NodeKind, cmd *CompilationModel, deps []NodeID) *Node {
	if n, ok := g.ByPath(path); ok {
		n.Kind = kind
		n.Cmd = cmd
		n.Deps = deps
		return n
	}
	n := &Node{ID: NodeID(len(g.Nodes) + 1), Kind: kind, Path: path, Cmd: cmd, Deps: deps}
	g.Nodes = append(g.Nodes, n)
	g.byPath[path] = n.ID
	return n
}

// Sources returns all source nodes, sorted by path.
func (g *BuildGraph) Sources() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindSource {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Products returns all non-source nodes in insertion order.
func (g *BuildGraph) Products() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind != KindSource {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural invariants: IDs are dense, dependencies
// exist, products have commands, and the graph is acyclic.
func (g *BuildGraph) Validate() error {
	for i, n := range g.Nodes {
		if int(n.ID) != i+1 {
			return fmt.Errorf("model: node %d has id %d", i, n.ID)
		}
		if n.Kind != KindSource && n.Cmd == nil {
			return fmt.Errorf("model: product node %s has no command", n.Path)
		}
		if n.Kind == KindSource && len(n.Deps) > 0 {
			return fmt.Errorf("model: source node %s has dependencies", n.Path)
		}
		for _, d := range n.Deps {
			if _, ok := g.Node(d); !ok {
				return fmt.Errorf("model: node %s depends on missing node %d", n.Path, d)
			}
		}
	}
	if _, err := g.Topo(); err != nil {
		return err
	}
	return nil
}

// Topo returns the nodes in a topological order (dependencies first), or
// an error if the graph has a cycle.
func (g *BuildGraph) Topo() ([]*Node, error) {
	state := make(map[NodeID]int, len(g.Nodes)) // 0 new, 1 visiting, 2 done
	var order []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n.ID] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("model: build graph cycle through %s", n.Path)
		}
		state[n.ID] = 1
		for _, d := range n.Deps {
			dep, ok := g.Node(d)
			if !ok {
				return fmt.Errorf("model: missing node %d", d)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[n.ID] = 2
		order = append(order, n)
		return nil
	}
	for _, n := range g.Nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Clone deep-copies the graph so adapters can transform an independent
// copy (paper §4.2: adapters "operate on independent copies of the
// process models").
func (g *BuildGraph) Clone() *BuildGraph {
	out := NewBuildGraph()
	for _, n := range g.Nodes {
		c := &Node{
			ID:   n.ID,
			Kind: n.Kind,
			Path: n.Path,
			Deps: append([]NodeID(nil), n.Deps...),
			Cmd:  n.Cmd.Clone(),
		}
		out.Nodes = append(out.Nodes, c)
		out.byPath[c.Path] = c.ID
	}
	return out
}

// Models bundles the three process models plus the source and product
// bookkeeping the cache layer needs.
type Models struct {
	Image ImageModel  `json:"image"`
	Graph *BuildGraph `json:"graph"`
	// SourcePaths lists build-container files the cache layer must carry.
	SourcePaths []string `json:"sourcePaths"`
	// Installed maps dist-image paths to the build-container product path
	// they were copied from (how rebuilt artifacts find their way back).
	Installed map[string]string `json:"installed"`
	// BuildISA records which ISA the recorded build targeted.
	BuildISA string `json:"buildISA"`
	// Distribution records the form the cached build inputs take:
	// "source" (default) or "ir" (compiler bitcode, paper §4.6). IR-mode
	// images are locked to their package versions and their ISA.
	Distribution string `json:"distribution,omitempty"`
}

// Distribution forms.
const (
	DistSource = "source"
	DistIR     = "ir"
)

// IRLocked reports whether the models came from an IR-mode cache, which
// pins package versions (API-only compatibility is not enough once
// compiled) and the build ISA.
func (m *Models) IRLocked() bool { return m.Distribution == DistIR }

// Clone deep-copies the models.
func (m *Models) Clone() *Models {
	out := &Models{
		Image:        m.Image,
		Graph:        m.Graph.Clone(),
		SourcePaths:  append([]string(nil), m.SourcePaths...),
		Installed:    make(map[string]string, len(m.Installed)),
		BuildISA:     m.BuildISA,
		Distribution: m.Distribution,
	}
	out.Image.Files = append([]FileEntry(nil), m.Image.Files...)
	out.Image.Packages = append([]PackageRef(nil), m.Image.Packages...)
	out.Image.Entrypoint = append([]string(nil), m.Image.Entrypoint...)
	for k, v := range m.Installed {
		out.Installed[k] = v
	}
	return out
}

// Marshal serializes the models as compact JSON (the document ships
// inside every extended image, so bytes matter).
func (m *Models) Marshal() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("model: encoding models: %w", err)
	}
	return b, nil
}

// Unmarshal decodes models from JSON and revalidates the graph.
func Unmarshal(data []byte) (*Models, error) {
	var m Models
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("model: decoding models: %w", err)
	}
	if m.Graph == nil {
		m.Graph = NewBuildGraph()
	}
	m.Graph.reindex()
	if err := m.Graph.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// KindForPath infers a node kind from a file path.
func KindForPath(p string) NodeKind {
	switch {
	case cclang.IsSourceFile(p):
		return KindSource
	case cclang.IsObjectFile(p):
		return KindObject
	case cclang.IsArchiveFile(p):
		return KindArchive
	case cclang.IsSharedObject(p):
		return KindSharedObj
	default:
		return KindExecutable
	}
}
