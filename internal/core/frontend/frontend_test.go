package frontend

import (
	"testing"

	"comtainer/internal/containerfile"
	"comtainer/internal/core/model"
	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

// buildPair runs a two-stage build and returns (buildImg, distImg).
func buildPair(t *testing.T, cfText string, extraCtx func(*fsim.FS)) (*oci.Image, *oci.Image) {
	t.Helper()
	repo := oci.NewRepository()
	if err := sysprofile.PopulateUserSide(repo, toolchain.ISAx86); err != nil {
		t.Fatal(err)
	}
	ctx := fsim.New()
	ctx.WriteFile("/src/main.c", []byte("int main(){return 0;}\n"), 0o644)
	ctx.WriteFile("/src/phys.c", []byte("double e(double m){return m*9e16;}\n"), 0o644)
	ctx.WriteFile("/data/input.dat", []byte("grid=64\n"), 0o644)
	if extraCtx != nil {
		extraCtx(ctx)
	}
	b := &containerfile.Builder{
		Repo:     repo,
		Context:  ctx,
		Registry: toolchain.GenericRegistry(toolchain.ISAx86),
		AptIndex: sysprofile.GenericIndex(toolchain.ISAx86),
		Recorder: hijack.NewRecorder(),
	}
	cf, err := containerfile.Parse(cfText)
	if err != nil {
		t.Fatal(err)
	}
	buildDesc, err := b.Build(cf, "build")
	if err != nil {
		t.Fatal(err)
	}
	distDesc, err := b.Build(cf, "dist")
	if err != nil {
		t.Fatal(err)
	}
	buildImg, err := oci.LoadImage(repo.Store, buildDesc)
	if err != nil {
		t.Fatal(err)
	}
	distImg, err := oci.LoadImage(repo.Store, distDesc)
	if err != nil {
		t.Fatal(err)
	}
	return buildImg, distImg
}

const demoCF = `
FROM comt:ubuntu24.env AS build
RUN apt-get install -y build-essential libopenmpi3
COPY src /w/src
WORKDIR /w/src
RUN gcc -O2 -c main.c && gcc -O2 -c phys.c
RUN ar rcs libphys.a phys.o
RUN gcc main.o -L. -lphys -lmpi -o /w/demo
COPY data /w/data

FROM comt:ubuntu24.base AS dist
RUN apt-get install -y libopenmpi3
COPY --from=build /w/demo /app/demo
COPY --from=build /w/data /app/data
ENTRYPOINT ["/app/demo"]
`

func TestAnalyzeGraphShape(t *testing.T) {
	buildImg, distImg := buildPair(t, demoCF, nil)
	m, buildFS, err := Analyze(buildImg, distImg)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: 2 sources, 2 objects, 1 archive, 1 executable.
	if m.Graph.Len() != 6 {
		t.Errorf("graph has %d nodes", m.Graph.Len())
	}
	exe, ok := m.Graph.ByPath("/w/demo")
	if !ok || exe.Kind != model.KindExecutable {
		t.Fatalf("executable node = %+v, %v", exe, ok)
	}
	ar, ok := m.Graph.ByPath("/w/src/libphys.a")
	if !ok || ar.Kind != model.KindArchive {
		t.Fatalf("archive node = %+v", ar)
	}
	// exe depends on main.o and the archive.
	depPaths := map[string]bool{}
	for _, d := range exe.Deps {
		n, _ := m.Graph.Node(d)
		depPaths[n.Path] = true
	}
	if !depPaths["/w/src/main.o"] || !depPaths["/w/src/libphys.a"] {
		t.Errorf("exe deps = %v", depPaths)
	}
	if err := m.Graph.Validate(); err != nil {
		t.Error(err)
	}
	// Sources collected and present.
	if len(m.SourcePaths) != 2 {
		t.Errorf("SourcePaths = %v", m.SourcePaths)
	}
	for _, p := range m.SourcePaths {
		if !buildFS.Exists(p) {
			t.Errorf("source %s missing", p)
		}
	}
	if m.BuildISA != toolchain.ISAx86 {
		t.Errorf("BuildISA = %q", m.BuildISA)
	}
}

func TestAnalyzeClassification(t *testing.T) {
	buildImg, distImg := buildPair(t, demoCF, nil)
	m, _, err := Analyze(buildImg, distImg)
	if err != nil {
		t.Fatal(err)
	}
	// The binary: build origin, mapped back to the build container path.
	fe, ok := m.Image.File("/app/demo")
	if !ok || fe.Origin != model.OriginBuild {
		t.Errorf("/app/demo = %+v", fe)
	}
	if m.Installed["/app/demo"] != "/w/demo" {
		t.Errorf("Installed = %v", m.Installed)
	}
	// Base-image file.
	fe, ok = m.Image.File("/usr/lib/libc.so.6")
	if !ok || fe.Origin != model.OriginBase {
		t.Errorf("libc = %+v", fe)
	}
	// apt-installed file (not in the dist base image).
	fe, ok = m.Image.File("/usr/lib/libmpi.so.40")
	if !ok || fe.Origin != model.OriginPackage || fe.Package != "libopenmpi3" {
		t.Errorf("libmpi = %+v", fe)
	}
	// Data file.
	fe, ok = m.Image.File("/app/data/input.dat")
	if !ok || fe.Origin != model.OriginData {
		t.Errorf("data = %+v", fe)
	}
	// Package list includes both preinstalled and apt-added packages.
	names := map[string]bool{}
	for _, p := range m.Image.Packages {
		names[p.Name] = true
	}
	if !names["libc6"] || !names["libopenmpi3"] {
		t.Errorf("packages = %v", m.Image.Packages)
	}
	counts := m.Image.CountByOrigin()
	if counts[model.OriginBase] == 0 || counts[model.OriginBuild] == 0 {
		t.Errorf("origin counts = %v", counts)
	}
}

func TestAnalyzeRequiresRawLog(t *testing.T) {
	// Build on the stock base image (no Env role) — no log is persisted.
	noEnvCF := `
FROM ubuntu:24.04 AS build
RUN mkdir /w

FROM comt:ubuntu24.base AS dist
ENV X=1
`
	buildImg, distImg := buildPair(t, noEnvCF, nil)
	if _, _, err := Analyze(buildImg, distImg); err == nil {
		t.Error("analysis without a raw build log succeeded")
	}
}

func TestAnalyzeUnknownOrigin(t *testing.T) {
	// An artifact in the dist image that no recorded command produced
	// (here: copied from the context pre-built) classifies as unknown.
	cf := `
FROM comt:ubuntu24.env AS build
COPY src /w/src
WORKDIR /w/src
RUN gcc -O2 -c main.c && gcc main.o -o /w/demo

FROM comt:ubuntu24.base AS dist
COPY --from=build /w/demo /app/demo
COPY prebuilt.bin /app/mystery
`
	mystery := toolchain.LibraryArtifact("libmystery", "unknown", toolchain.ISAx86, 1, false)
	buildImg, distImg := buildPair(t, cf, func(ctx *fsim.FS) {
		ctx.WriteFile("/prebuilt.bin", mystery.Encode(), 0o644)
	})
	m, _, err := Analyze(buildImg, distImg)
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := m.Image.File("/app/mystery")
	if !ok || fe.Origin != model.OriginUnknown {
		t.Errorf("/app/mystery = %+v", fe)
	}
}

func TestAnalyzeSharedObjectNode(t *testing.T) {
	cf := `
FROM comt:ubuntu24.env AS build
COPY src /w/src
WORKDIR /w/src
RUN gcc -O2 -fPIC -c phys.c
RUN gcc -shared phys.o -o libphys.so
RUN gcc -O2 -c main.c && gcc main.o -L. -lphys -o /w/demo

FROM comt:ubuntu24.base AS dist
COPY --from=build /w/demo /app/demo
COPY --from=build /w/src/libphys.so /usr/local/lib/libphys.so
`
	buildImg, distImg := buildPair(t, cf, nil)
	m, _, err := Analyze(buildImg, distImg)
	if err != nil {
		t.Fatal(err)
	}
	so, ok := m.Graph.ByPath("/w/src/libphys.so")
	if !ok || so.Kind != model.KindSharedObj {
		t.Fatalf("shared object node = %+v", so)
	}
	// Both installed products map back.
	if m.Installed["/usr/local/lib/libphys.so"] != "/w/src/libphys.so" {
		t.Errorf("Installed = %v", m.Installed)
	}
	fe, _ := m.Image.File("/usr/local/lib/libphys.so")
	if fe.Origin != model.OriginBuild {
		t.Errorf("libphys.so origin = %s", fe.Origin)
	}
}
