// Package frontend implements coMtainer's user-side analysis (paper §4.2):
// it parses the raw build process recorded by the hijacker together with
// the built images, and produces the process models — the build graph, the
// compilation models and the image model.
package frontend

import (
	"strconv"

	"comtainer/internal/containerfile"
	"fmt"
	"path"
	"sort"
	"strings"

	"comtainer/internal/cclang"
	"comtainer/internal/core/model"
	"comtainer/internal/digest"
	"comtainer/internal/dpkg"
	"comtainer/internal/fsim"
	"comtainer/internal/hijack"
	"comtainer/internal/oci"
	"comtainer/internal/toolchain"
)

// isaFromArch maps OCI architecture names to ISA identifiers.
func isaFromArch(arch string) string {
	if arch == "arm64" {
		return toolchain.ISAArm
	}
	return toolchain.ISAx86
}

// abs resolves p against cwd.
func abs(cwd, p string) string {
	if strings.HasPrefix(p, "/") {
		return fsim.Clean(p)
	}
	return fsim.Clean(path.Join(cwd, p))
}

// Analyze runs the front-end over the build and dist images and returns
// the process models together with the flattened build-container file
// system (which the cache layer reads source content from).
func Analyze(buildImg, distImg *oci.Image) (*model.Models, *fsim.FS, error) {
	buildFS, err := buildImg.Flatten()
	if err != nil {
		return nil, nil, fmt.Errorf("frontend: flattening build image: %w", err)
	}
	invs, err := hijack.Load(buildFS)
	if err != nil {
		return nil, nil, err
	}
	if len(invs) == 0 {
		return nil, nil, fmt.Errorf("frontend: build image carries no raw build log (was it built from a coMtainer Env image?)")
	}

	graph, err := buildGraph(invs)
	if err != nil {
		return nil, nil, err
	}

	m := &model.Models{
		Graph:     graph,
		Installed: map[string]string{},
		BuildISA:  isaFromArch(distImg.Config.Architecture),
	}
	if err := classifyImage(m, distImg, buildFS); err != nil {
		return nil, nil, err
	}

	// Sources the cache layer must carry: all graph leaves.
	seen := map[string]bool{}
	for _, n := range graph.Nodes {
		if n.Kind == model.KindSource || (n.Cmd == nil && len(n.Deps) == 0) {
			if !seen[n.Path] {
				seen[n.Path] = true
				m.SourcePaths = append(m.SourcePaths, n.Path)
			}
		}
	}
	sort.Strings(m.SourcePaths)

	// Every source the graph references must exist in the build image.
	for _, p := range m.SourcePaths {
		if !buildFS.Exists(p) {
			return nil, nil, fmt.Errorf("frontend: build graph references %s, absent from the build image", p)
		}
	}
	if err := graph.Validate(); err != nil {
		return nil, nil, err
	}
	return m, buildFS, nil
}

// buildGraph folds the recorded invocations into the typed DAG.
func buildGraph(invs []hijack.Invocation) (*model.BuildGraph, error) {
	g := model.NewBuildGraph()
	for _, inv := range invs {
		tool := inv.Tool()
		switch {
		case cclang.IsCompilerTool(tool):
			if err := addCompile(g, inv); err != nil {
				return nil, err
			}
		case tool == "ar" || tool == "llvm-ar":
			if err := addArchive(g, inv); err != nil {
				return nil, err
			}
		default:
			// ranlib, make and friends do not transform data.
		}
	}
	return g, nil
}

func addCompile(g *model.BuildGraph, inv hijack.Invocation) error {
	cmd, err := cclang.Parse(inv.Argv)
	if err != nil {
		return fmt.Errorf("frontend: invocation %d: %w", inv.Seq, err)
	}
	if cmd.Mode() == cclang.ModeInfo || cmd.Mode() == cclang.ModePreprocess {
		return nil
	}
	cm := &model.CompilationModel{Kind: "cc", Argv: inv.Argv, Cwd: inv.Cwd, Seq: inv.Seq}

	var deps []model.NodeID
	for _, in := range cmd.Inputs() {
		p := abs(inv.Cwd, in)
		switch {
		case cclang.IsSourceFile(in):
			deps = append(deps, g.AddSource(p).ID)
		default:
			// Objects/archives: usually produced earlier in the log; an
			// unseen one is an opaque prebuilt input the cache must carry.
			if n, ok := g.ByPath(p); ok {
				deps = append(deps, n.ID)
			} else {
				n := g.AddSource(p)
				n.Kind = model.KindSource
				deps = append(deps, n.ID)
			}
		}
	}
	if cmd.Mode() == cclang.ModeCompile {
		// One object per source when -o is absent.
		out, hasOut := cmd.Output()
		if hasOut {
			g.AddProduct(abs(inv.Cwd, out), model.KindObject, cm, deps)
			return nil
		}
		for _, in := range cmd.Inputs() {
			if !cclang.IsSourceFile(in) {
				continue
			}
			src, _ := g.ByPath(abs(inv.Cwd, in))
			g.AddProduct(abs(inv.Cwd, cmd.DefaultOutput(in)), model.KindObject, cm, []model.NodeID{src.ID})
		}
		return nil
	}
	// Link: locally-built libraries referenced via -l/-L become graph
	// dependencies too (system libraries are not part of the build).
	for _, lib := range cmd.Libs() {
		for _, dir := range append(cmd.LibDirs(), ".") {
			for _, ext := range []string{".a", ".so"} {
				p := abs(inv.Cwd, path.Join(dir, "lib"+lib+ext))
				if n, ok := g.ByPath(p); ok {
					deps = append(deps, n.ID)
				}
			}
		}
	}
	// One output.
	out := "a.out"
	if o, ok := cmd.Output(); ok {
		out = o
	}
	kind := model.KindExecutable
	if cmd.Shared() {
		kind = model.KindSharedObj
	}
	g.AddProduct(abs(inv.Cwd, out), kind, cm, deps)
	return nil
}

func addArchive(g *model.BuildGraph, inv hijack.Invocation) error {
	ac, err := cclang.ParseArchive(inv.Argv)
	if err != nil {
		return fmt.Errorf("frontend: invocation %d: %w", inv.Seq, err)
	}
	if !ac.Creates() {
		return nil
	}
	cm := &model.CompilationModel{Kind: "ar", Argv: inv.Argv, Cwd: inv.Cwd, Seq: inv.Seq}
	var deps []model.NodeID
	for _, mpath := range ac.Members {
		p := abs(inv.Cwd, mpath)
		if n, ok := g.ByPath(p); ok {
			deps = append(deps, n.ID)
		} else {
			deps = append(deps, g.AddSource(p).ID)
		}
	}
	g.AddProduct(abs(inv.Cwd, ac.Archive), model.KindArchive, cm, deps)
	return nil
}

// classifyImage fills in the image model: every dist file gets one of the
// five origin classes; build products are matched to graph nodes by
// content digest, yielding the Installed map the backend uses to place
// rebuilt artifacts.
func classifyImage(m *model.Models, distImg *oci.Image, buildFS *fsim.FS) error {
	distFS, err := distImg.Flatten()
	if err != nil {
		return fmt.Errorf("frontend: flattening dist image: %w", err)
	}
	layers, err := distImg.Layers()
	if err != nil {
		return err
	}
	// The builder labels how many leading layers come from the base image
	// (instruction layers sit above them); older images without the label
	// fall back to everything-below-the-top.
	baseCount := len(layers) - 1
	if v := distImg.Config.Config.Labels[containerfile.BaseLayersLabel]; v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 && n <= len(layers) {
			baseCount = n
		}
	}
	var baseFS *fsim.FS
	if baseCount > 0 {
		baseFS = fsim.ApplyAll(layers[:baseCount])
	} else {
		baseFS = fsim.New()
	}
	db, err := dpkg.Load(distFS)
	if err != nil {
		return err
	}

	// Index build products by content digest.
	productByDigest := map[digest.Digest]string{}
	for _, n := range m.Graph.Products() {
		if data, err := buildFS.ReadFile(n.Path); err == nil {
			productByDigest[digest.FromBytes(data)] = n.Path
		}
	}

	m.Image.Architecture = distImg.Config.Architecture
	m.Image.Entrypoint = distImg.Config.Config.Entrypoint
	for _, name := range db.Names() {
		p, _ := db.Installed(name)
		m.Image.Packages = append(m.Image.Packages, model.PackageRef{Name: p.Name, Version: string(p.Version)})
	}

	err = distFS.Walk(func(f *fsim.File) error {
		if f.Type == fsim.TypeDir {
			return nil
		}
		entry := model.FileEntry{Path: f.Path, Size: f.Size()}
		switch {
		case inBase(baseFS, f):
			entry.Origin = model.OriginBase
			if owner, ok := db.OwnerOf(f.Path); ok {
				entry.Package = owner
			}
		case fileOwned(db, f.Path):
			entry.Origin = model.OriginPackage
			owner, _ := db.OwnerOf(f.Path)
			entry.Package = owner
		default:
			if f.Type == fsim.TypeRegular && toolchain.IsArtifact(f.Data) {
				if buildPath, ok := productByDigest[digest.FromBytes(f.Data)]; ok {
					entry.Origin = model.OriginBuild
					if n, ok := m.Graph.ByPath(buildPath); ok {
						entry.Node = n.ID
					}
					m.Installed[f.Path] = buildPath
				} else {
					entry.Origin = model.OriginUnknown
				}
			} else if f.Type == fsim.TypeRegular {
				entry.Origin = model.OriginData
			} else {
				entry.Origin = model.OriginUnknown
			}
		}
		m.Image.Files = append(m.Image.Files, entry)
		return nil
	})
	if err != nil {
		return err
	}
	// dpkg metadata files count as package-manager origin even though the
	// dist stage rewrites them on install.
	for i := range m.Image.Files {
		if strings.HasPrefix(m.Image.Files[i].Path, "/var/lib/dpkg/") {
			m.Image.Files[i].Origin = model.OriginPackage
			m.Image.Files[i].Package = ""
		}
	}
	return nil
}

// inBase reports whether f exists identically in the base state.
func inBase(baseFS *fsim.FS, f *fsim.File) bool {
	b, err := baseFS.Stat(f.Path)
	if err != nil {
		return false
	}
	return b.Type == f.Type && string(b.Data) == string(f.Data) && b.Target == f.Target
}

func fileOwned(db *dpkg.DB, p string) bool {
	_, ok := db.OwnerOf(p)
	return ok
}
