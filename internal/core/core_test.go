package core

import (
	"strings"
	"testing"

	"comtainer/internal/chrun"
	"comtainer/internal/core/adapter"
	"comtainer/internal/core/cache"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
	"comtainer/internal/workloads"
)

func mustApp(t *testing.T, name string) *workloads.App {
	t.Helper()
	app, err := workloads.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func refFor(t *testing.T, id string) workloads.Ref {
	t.Helper()
	for _, r := range workloads.AllRefs() {
		if r.ID() == id {
			return r
		}
	}
	t.Fatalf("no workload %s", id)
	return workloads.Ref{}
}

// fullWorkflow runs user build + system adapt for one app and returns the
// system side with all images in place.
func fullWorkflow(t *testing.T, sys *sysprofile.System, appName string, adapters []adapter.Adapter) (*SystemSide, string) {
	t.Helper()
	user, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, appName)
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	system, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	optTag, err := system.Adapt(res.DistTag, adapters)
	if err != nil {
		t.Fatal(err)
	}
	return system, optTag
}

func TestUserSideBuildExtended(t *testing.T) {
	user, err := NewUserSide(toolchain.ISAx86)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "lulesh")
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtendedTag != "lulesh.dist+coM" {
		t.Errorf("ExtendedTag = %q", res.ExtendedTag)
	}
	// The extended image shares every dist layer and adds exactly one.
	distImg, err := user.Repo.LoadByTag(res.DistTag)
	if err != nil {
		t.Fatal(err)
	}
	extImg, err := user.Repo.LoadByTag(res.ExtendedTag)
	if err != nil {
		t.Fatal(err)
	}
	if len(extImg.Manifest.Layers) != len(distImg.Manifest.Layers)+1 {
		t.Errorf("extended layers = %d, dist = %d", len(extImg.Manifest.Layers), len(distImg.Manifest.Layers))
	}
	for i := range distImg.Manifest.Layers {
		if extImg.Manifest.Layers[i].Digest != distImg.Manifest.Layers[i].Digest {
			t.Errorf("layer %d not shared", i)
		}
	}
	// The cache layer carries models and all sources.
	models, srcFS, err := cache.Read(extImg)
	if err != nil {
		t.Fatal(err)
	}
	if models.Graph.Len() == 0 {
		t.Error("empty build graph")
	}
	if len(models.SourcePaths) < app.NumSrcFiles {
		t.Errorf("SourcePaths = %v", models.SourcePaths)
	}
	for _, p := range models.SourcePaths {
		if !srcFS.Exists(p) {
			t.Errorf("source %s missing from cache", p)
		}
	}
	// The dist binary is classified as a build product and mapped back.
	if _, ok := models.Installed[app.BinPath()]; !ok {
		t.Errorf("Installed map misses %s: %v", app.BinPath(), models.Installed)
	}
}

func TestBuildOriginalHasNoCache(t *testing.T) {
	user, err := NewUserSide(toolchain.ISAx86)
	if err != nil {
		t.Fatal(err)
	}
	res, err := user.BuildOriginal(mustApp(t, "comd"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtendedTag != "" {
		t.Error("conventional build produced an extended tag")
	}
	img, err := user.Repo.LoadByTag(res.DistTag)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Exists(cache.ModelsPath) {
		t.Error("conventional image carries a cache layer")
	}
}

func TestFullWorkflowAdaptedBeatsOriginal(t *testing.T) {
	sys := sysprofile.X86Cluster()
	system, optTag := fullWorkflow(t, sys, "lulesh", adapter.DefaultAdapted())
	ref := refFor(t, "lulesh")

	// Original scheme: the conventional generic image.
	user, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := user.BuildOriginal(mustApp(t, "lulesh"))
	if err != nil {
		t.Fatal(err)
	}
	if err := system.Pull(user.Repo, orig.DistTag); err != nil {
		// Same tag may collide with the adapted flow's dist tag; re-tag.
		t.Fatal(err)
	}
	origImg, err := oci.LoadImage(system.Repo.Store, mustResolve(t, user.Repo, orig.DistTag))
	if err != nil {
		// The blobs were pulled; load via the local store.
		t.Fatal(err)
	}
	tOrig, err := chrun.RunImage(sys, ref, origImg, 16)
	if err != nil {
		t.Fatal(err)
	}
	tOpt, err := system.Run(optTag, ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tOpt.Seconds >= tOrig.Seconds {
		t.Errorf("adapted (%.2fs) not faster than original (%.2fs)", tOpt.Seconds, tOrig.Seconds)
	}
	// The adapted binary was produced by the vendor toolchain at the
	// node's micro-architecture.
	if tOpt.Binary.Vendor != sys.Vendor || tOpt.Binary.March != sys.NativeMarch {
		t.Errorf("adapted binary = %+v", tOpt.Binary)
	}
	// Its libraries resolved as optimized.
	if tOpt.LibFraction < 0.99 {
		t.Errorf("adapted LibFraction = %f", tOpt.LibFraction)
	}
	if tOrig.LibFraction > 0 {
		t.Errorf("original LibFraction = %f", tOrig.LibFraction)
	}
}

func mustResolve(t *testing.T, repo *oci.Repository, tag string) oci.Descriptor {
	t.Helper()
	d, err := repo.Resolve(tag)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAdaptedMatchesNative(t *testing.T) {
	for _, sys := range sysprofile.Both() {
		system, optTag := fullWorkflow(t, sys, "comd", adapter.DefaultAdapted())
		ref := refFor(t, "comd")
		tAdapted, err := system.Run(optTag, ref, 16)
		if err != nil {
			t.Fatal(err)
		}
		nativeFS, binPath, err := NativeBuild(sys, ref.App)
		if err != nil {
			t.Fatal(err)
		}
		tNative, err := chrun.RunFS(sys, ref, nativeFS, binPath, 16)
		if err != nil {
			t.Fatal(err)
		}
		if tAdapted.Seconds < tNative.Seconds {
			t.Errorf("%s: adapted (%.3f) beat native (%.3f)", sys.Name, tAdapted.Seconds, tNative.Seconds)
		}
		if tAdapted.Seconds > tNative.Seconds*1.06 {
			t.Errorf("%s: adapted (%.3f) not comparable to native (%.3f)", sys.Name, tAdapted.Seconds, tNative.Seconds)
		}
	}
}

func TestLTOAdapterProducesLTOBinary(t *testing.T) {
	sys := sysprofile.X86Cluster()
	system, optTag := fullWorkflow(t, sys, "hpccg", adapter.DefaultOptimized())
	ref := refFor(t, "hpccg")
	res, err := system.Run(optTag, ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Binary.LTO {
		t.Error("optimized binary lacks LTO")
	}
	if res.LTOFactor == 1.0 {
		t.Error("LTO factor not applied")
	}
}

func TestPGOLoop(t *testing.T) {
	sys := sysprofile.X86Cluster()
	user, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "minimd")
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	system, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	ref := refFor(t, "minimd")
	if err := system.PGOLoop(res.DistTag, adapter.DefaultOptimized(), ref, 16); err != nil {
		t.Fatal(err)
	}
	final, err := system.Run(res.DistTag+".redirect", ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Binary.PGOOptimized {
		t.Error("final binary not PGO-optimized")
	}
	if final.Binary.PGOInstrumented {
		t.Error("final binary still instrumented")
	}
	if final.Binary.ProfileData == "" {
		t.Error("final binary lost its profile reference")
	}
	if !final.Binary.LTO {
		t.Error("PGO loop dropped LTO")
	}
}

func TestPGOBoltLoop(t *testing.T) {
	sys := sysprofile.X86Cluster()
	user, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "openmx")
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	ref := refFor(t, "openmx.pt13")

	pgoSide, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := pgoSide.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	if err := pgoSide.PGOLoop(res.DistTag, adapter.DefaultOptimized(), ref, 16); err != nil {
		t.Fatal(err)
	}
	pgoRun, err := pgoSide.Run(res.DistTag+".redirect", ref, 16)
	if err != nil {
		t.Fatal(err)
	}

	boltSide, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := boltSide.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	if err := boltSide.PGOBoltLoop(res.DistTag, adapter.DefaultOptimized(), ref, 16); err != nil {
		t.Fatal(err)
	}
	boltRun, err := boltSide.Run(res.DistTag+".redirect", ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !boltRun.Binary.LayoutOptimized {
		t.Error("final binary not layout-optimized")
	}
	if !boltRun.Binary.PGOOptimized || !boltRun.Binary.LTO {
		t.Errorf("BOLT loop dropped earlier optimizations: %+v", boltRun.Binary)
	}
	// For a PGO-friendly workload, layout optimization adds on top of PGO.
	if boltRun.Seconds >= pgoRun.Seconds {
		t.Errorf("BOLT (%.2f) not faster than PGO-only (%.2f)", boltRun.Seconds, pgoRun.Seconds)
	}
	if boltRun.LayoutFactor <= 1.0 {
		t.Errorf("LayoutFactor = %f", boltRun.LayoutFactor)
	}
}

func TestCrossISAWorkflow(t *testing.T) {
	// Build on x86-64, rebuild+redirect on the AArch64 system (§5.5).
	x86User, err := NewUserSide(toolchain.ISAx86)
	if err != nil {
		t.Fatal(err)
	}
	armSys := sysprofile.ArmCluster()
	system, err := NewSystemSide(armSys)
	if err != nil {
		t.Fatal(err)
	}

	// A guarded app crosses with the CrossISA adapter.
	app := mustApp(t, "lulesh")
	res, err := x86User.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	if err := system.Pull(x86User.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	chain := append([]adapter.Adapter{adapter.CrossISA()}, adapter.DefaultAdapted()...)
	optTag, err := system.Adapt(res.DistTag, chain)
	if err != nil {
		t.Fatalf("cross-ISA adapt failed: %v", err)
	}
	run, err := system.Run(optTag, refFor(t, "lulesh"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if run.Binary.TargetISA != toolchain.ISAArm {
		t.Errorf("cross-rebuilt binary targets %s", run.Binary.TargetISA)
	}

	// A mandatory-ISA app must fail.
	hpl := mustApp(t, "hpl")
	res2, err := x86User.BuildExtended(hpl)
	if err != nil {
		t.Fatal(err)
	}
	if err := system.Pull(x86User.Repo, res2.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	_, err = system.Adapt(res2.DistTag, chain)
	if err == nil || !strings.Contains(err.Error(), "unguarded") {
		t.Errorf("mandatory-ISA app crossed ISAs: %v", err)
	}

	// Without the CrossISA adapter, the rebuild itself fails on the
	// foreign machine flags or sources.
	_, _, err = system.Rebuild(res.DistTag, adapter.DefaultAdapted(), nil)
	if err == nil {
		t.Error("x86 extended image rebuilt on aarch64 without the cross-ISA adapter")
	}
}

func TestLLVMArtifactEvaluationPath(t *testing.T) {
	// The AE ships LLVM-based Sysenv images; adaptation still works, the
	// libraries still deliver, but the compiler gain is diminished
	// compared to the vendor toolchain.
	sys := sysprofile.X86Cluster()
	user, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "openmx")
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	ref := refFor(t, "openmx.pt13")

	vendorSide, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := vendorSide.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	vendorTag, err := vendorSide.Adapt(res.DistTag, adapter.DefaultAdapted())
	if err != nil {
		t.Fatal(err)
	}
	vendorRun, err := vendorSide.Run(vendorTag, ref, 16)
	if err != nil {
		t.Fatal(err)
	}

	llvmSide, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := llvmSide.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	llvmTag, err := llvmSide.AdaptLLVM(res.DistTag, adapter.DefaultAdapted())
	if err != nil {
		t.Fatalf("LLVM adapt: %v", err)
	}
	llvmRun, err := llvmSide.Run(llvmTag, ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if llvmRun.Binary.Vendor != "llvm" {
		t.Errorf("LLVM rebuild vendor = %q", llvmRun.Binary.Vendor)
	}
	if llvmRun.Binary.March != sys.NativeMarch {
		t.Errorf("LLVM -march=native resolved to %q, want %q", llvmRun.Binary.March, sys.NativeMarch)
	}
	// Libraries are still the optimized stack...
	if llvmRun.LibFraction < 0.99 {
		t.Errorf("LLVM adapt LibFraction = %f", llvmRun.LibFraction)
	}
	// ...but the compiler gain is diminished: slower than the vendor
	// rebuild, faster than nothing.
	if !(llvmRun.Seconds > vendorRun.Seconds) {
		t.Errorf("LLVM (%.2f) not slower than vendor (%.2f)", llvmRun.Seconds, vendorRun.Seconds)
	}
	if llvmRun.CCFactor <= 1.0 || llvmRun.CCFactor >= vendorRun.CCFactor {
		t.Errorf("LLVM CCFactor = %.3f, vendor = %.3f", llvmRun.CCFactor, vendorRun.CCFactor)
	}
}

func TestObfuscatedWorkflowEndToEnd(t *testing.T) {
	// Paper §4.6: obfuscated sources must still enable every system-side
	// adaptation — including the cross-ISA guarded fallback.
	x86User, err := NewUserSide(toolchain.ISAx86)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "lulesh")
	res, err := x86User.BuildExtendedObfuscated(app)
	if err != nil {
		t.Fatal(err)
	}
	// The cache carries no original source text.
	extImg, err := x86User.Repo.LoadByTag(res.ExtendedTag)
	if err != nil {
		t.Fatal(err)
	}
	_, srcFS, err := cache.Read(extImg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range srcFS.Paths() {
		data, err := srcFS.ReadFile(p)
		if err != nil {
			continue
		}
		if !cache.IsObfuscated(data) {
			t.Errorf("%s not obfuscated", p)
		}
		if strings.Contains(string(data), "lulesh_c0_0") {
			t.Errorf("%s leaked original identifiers", p)
		}
	}
	// Same-ISA adaptation works on the obfuscated cache.
	x86sys, err := NewSystemSide(sysprofile.X86Cluster())
	if err != nil {
		t.Fatal(err)
	}
	if err := x86sys.Pull(x86User.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	optTag, err := x86sys.Adapt(res.DistTag, adapter.DefaultOptimized())
	if err != nil {
		t.Fatalf("adapt on obfuscated cache: %v", err)
	}
	out, err := x86sys.Run(optTag, refFor(t, "lulesh"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if out.Binary.Vendor != "intellic" || !out.Binary.LTO {
		t.Errorf("obfuscated rebuild binary = %+v", out.Binary)
	}
	// And the cross-ISA adapter still sees the portability guard.
	armSys, err := NewSystemSide(sysprofile.ArmCluster())
	if err != nil {
		t.Fatal(err)
	}
	if err := armSys.Pull(x86User.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	chain := append([]adapter.Adapter{adapter.CrossISA()}, adapter.DefaultAdapted()...)
	if _, err := armSys.Adapt(res.DistTag, chain); err != nil {
		t.Fatalf("cross-ISA on obfuscated cache: %v", err)
	}
}

func TestMakeDrivenBuildWorkflow(t *testing.T) {
	// A realistic HPC build: `RUN make` drives the compiler, the hijacker
	// records the spawned gcc commands, and the whole adaptation pipeline
	// works on the recorded graph.
	sys := sysprofile.X86Cluster()
	user, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	ctx := fsim.New()
	ctx.WriteFile("/src/solver.c", []byte("double solve(double x){return x;}\nint main(){return 0;}\n"), 0o644)
	ctx.WriteFile("/src/io.c", []byte("int out(void){return 0;}\n"), 0o644)
	ctx.WriteFile("/src/Makefile", []byte(`CC := gcc
CFLAGS := -O2
OBJS := solver.o io.o

app: $(OBJS)
	$(CC) $(CFLAGS) $^ -lm -o /app/solver

%.o: %.c
	$(CC) $(CFLAGS) -c $< -o $@
`), 0o644)
	cf := `FROM comt:ubuntu24.env AS build
RUN apt-get install -y build-essential
COPY src /w
WORKDIR /w
RUN make

FROM comt:ubuntu24.base AS dist
COPY --from=build /app/solver /app/solver
ENTRYPOINT ["/app/solver"]
`
	res, err := user.BuildContainerfile("solver", cf, ctx, true, cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The recorded graph has 2 sources, 2 objects, 1 executable.
	extImg, err := user.Repo.LoadByTag(res.ExtendedTag)
	if err != nil {
		t.Fatal(err)
	}
	models, _, err := cache.Read(extImg)
	if err != nil {
		t.Fatal(err)
	}
	if models.Graph.Len() != 5 {
		t.Errorf("graph nodes = %d, want 5", models.Graph.Len())
	}
	if _, ok := models.Graph.ByPath("/app/solver"); !ok {
		t.Errorf("executable node missing; have %v", models.SourcePaths)
	}
	// And the system side rebuilds it with the vendor toolchain.
	system, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	if _, _, err := system.Rebuild(res.DistTag, adapter.DefaultAdapted(), nil); err != nil {
		t.Fatalf("rebuild of make-driven graph: %v", err)
	}
	desc, err := system.Redirect(res.DistTag)
	if err != nil {
		t.Fatal(err)
	}
	img, err := oci.LoadImage(system.Repo.Store, desc)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	data, err := flat.ReadFile("/app/solver")
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if art.Vendor != sys.Vendor || len(art.Sources) != 2 {
		t.Errorf("rebuilt make-driven binary = %+v", art)
	}
}

func TestCrossISAMultiArchPublish(t *testing.T) {
	// The §5.5 vision: after a cross-ISA rebuild, both per-ISA images can
	// be published under one multi-architecture manifest list.
	x86Sys := sysprofile.X86Cluster()
	armSys := sysprofile.ArmCluster()
	user, err := NewUserSide(toolchain.ISAx86)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "comd")
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	// Adapt for x86 locally and cross-adapt for ARM.
	x86Side, err := NewSystemSide(x86Sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := x86Side.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	x86Tag, err := x86Side.Adapt(res.DistTag, adapter.DefaultAdapted())
	if err != nil {
		t.Fatal(err)
	}
	armSide, err := NewSystemSide(armSys)
	if err != nil {
		t.Fatal(err)
	}
	if err := armSide.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	chain := append([]adapter.Adapter{adapter.CrossISA()}, adapter.DefaultAdapted()...)
	armTag, err := armSide.Adapt(res.DistTag, chain)
	if err != nil {
		t.Fatal(err)
	}

	// Publish a fat manifest in a shared store.
	shared := oci.NewRepository()
	x86Desc := mustResolve(t, x86Side.Repo, x86Tag)
	if err := shared.PushImage(x86Side.Repo.Store, x86Desc, "comd-x86"); err != nil {
		t.Fatal(err)
	}
	armDesc := mustResolve(t, armSide.Repo, armTag)
	if err := shared.PushImage(armSide.Repo.Store, armDesc, "comd-arm"); err != nil {
		t.Fatal(err)
	}
	x86Desc.Platform = &oci.Platform{Architecture: "amd64", OS: "linux"}
	armDesc.Platform = &oci.Platform{Architecture: "arm64", OS: "linux"}
	list, err := oci.WriteManifestList(shared.Store, []oci.Descriptor{x86Desc, armDesc})
	if err != nil {
		t.Fatal(err)
	}

	// Each cluster resolves its own platform and runs the result.
	ref := refFor(t, "comd")
	for _, tc := range []struct {
		sys  *sysprofile.System
		arch string
	}{{x86Sys, "amd64"}, {armSys, "arm64"}} {
		desc, err := oci.ResolvePlatform(shared.Store, list, tc.arch)
		if err != nil {
			t.Fatal(err)
		}
		img, err := oci.LoadImage(shared.Store, desc)
		if err != nil {
			t.Fatal(err)
		}
		run, err := chrun.RunImage(tc.sys, ref, img, 16)
		if err != nil {
			t.Fatalf("%s: %v", tc.arch, err)
		}
		if run.Binary.TargetISA != tc.sys.ISA {
			t.Errorf("%s resolved a %s binary", tc.arch, run.Binary.TargetISA)
		}
	}
}

func TestIRDistributionWorkflow(t *testing.T) {
	// Paper §4.6: IR distribution still enables toolchain-level
	// adaptation, but locks package versions and the ISA.
	sys := sysprofile.X86Cluster()
	user, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "openmx")
	irRes, err := user.BuildExtendedIR(app)
	if err != nil {
		t.Fatal(err)
	}
	// The cache carries bitcode, not source.
	extImg, err := user.Repo.LoadByTag(irRes.ExtendedTag)
	if err != nil {
		t.Fatal(err)
	}
	models, srcFS, err := cache.Read(extImg)
	if err != nil {
		t.Fatal(err)
	}
	if !models.IRLocked() {
		t.Error("IR cache not marked locked")
	}
	sawBitcode := false
	for _, p := range models.SourcePaths {
		data, err := srcFS.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if toolchain.IsArtifact(data) {
			art, err := toolchain.Decode(data)
			if err != nil || art.Kind != toolchain.KindBitcode {
				t.Errorf("%s: not bitcode: %v", p, err)
			}
			sawBitcode = true
		} else if strings.HasSuffix(p, ".c") || strings.HasSuffix(p, ".cc") {
			t.Errorf("%s shipped as plain source in IR mode", p)
		}
	}
	if !sawBitcode {
		t.Fatal("no bitcode in the cache")
	}

	// Adapt on the same ISA: toolchain gains apply, packages stay locked.
	system, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := system.Pull(user.Repo, irRes.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	optTag, err := system.Adapt(irRes.DistTag, adapter.DefaultAdapted())
	if err != nil {
		t.Fatalf("IR adapt: %v", err)
	}
	ref := refFor(t, "openmx.pt13")
	irRun, err := system.Run(optTag, ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if irRun.Binary.Vendor != sys.Vendor {
		t.Errorf("IR rebuild vendor = %q", irRun.Binary.Vendor)
	}
	if irRun.LibFraction != 0 {
		t.Errorf("IR-locked image got optimized libraries: fraction %f", irRun.LibFraction)
	}

	// Source-mode adaptation of the same app is strictly faster (libs
	// replaced too).
	srcUser, err := NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	srcRes, err := srcUser.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	srcSystem, err := NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcSystem.Pull(srcUser.Repo, srcRes.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	srcTag, err := srcSystem.Adapt(srcRes.DistTag, adapter.DefaultAdapted())
	if err != nil {
		t.Fatal(err)
	}
	srcRun, err := srcSystem.Run(srcTag, ref, 16)
	if err != nil {
		t.Fatal(err)
	}
	if srcRun.Seconds >= irRun.Seconds {
		t.Errorf("source-mode adapted (%.2f) not faster than IR-mode (%.2f)", srcRun.Seconds, irRun.Seconds)
	}

	// Cross-ISA on IR fails with a precise diagnosis.
	armSystem, err := NewSystemSide(sysprofile.ArmCluster())
	if err != nil {
		t.Fatal(err)
	}
	if err := armSystem.Pull(user.Repo, irRes.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	chain := append([]adapter.Adapter{adapter.CrossISA()}, adapter.DefaultAdapted()...)
	if _, err := armSystem.Adapt(irRes.DistTag, chain); err == nil ||
		!strings.Contains(err.Error(), "IR") {
		t.Errorf("IR cross-ISA: %v", err)
	}
}

func TestNativeBuildFailsForWrongISAExtras(t *testing.T) {
	// Mandatory apps still build natively on their own ISA.
	sys := sysprofile.X86Cluster()
	fs, bin, err := NativeBuild(sys, mustApp(t, "hpl"))
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Exists(bin) {
		t.Error("native binary missing")
	}
}

func TestRedirectImageLayoutCompatible(t *testing.T) {
	// Paper AD: the redirected image "should have a file system layout
	// compatible with the original dist image".
	sys := sysprofile.X86Cluster()
	system, optTag := fullWorkflow(t, sys, "lammps", adapter.DefaultAdapted())
	img, err := system.Repo.LoadByTag(optTag)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	app := mustApp(t, "lammps")
	if !flat.Exists(app.BinPath()) {
		t.Error("redirected image misses the application binary")
	}
	if !flat.Exists("/app/data/potentials.dat") {
		t.Error("redirected image misses bundled data")
	}
	if got := img.Config.Config.Entrypoint; len(got) == 0 || got[0] != app.BinPath() {
		t.Errorf("redirected entrypoint = %v", got)
	}
	// Runtime libs are the vendor builds now.
	data, err := flat.ReadFile("/usr/lib/libfftw3.so.3")
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Optimized {
		t.Error("redirect did not install the optimized fftw")
	}
}
