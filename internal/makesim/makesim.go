// Package makesim implements the subset of GNU make that HPC application
// builds lean on: explicit rules, prerequisites, recipe lines, `=`/`:=`
// variable assignment, `$(VAR)` references, the automatic variables `$@`,
// `$<` and `$^`, pattern rules (`%.o: %.c`), and `.PHONY`.
//
// Real HPC images run `make` in their build stage; the compiler commands
// make spawns are what coMtainer's hijacker records. The build engine
// wires this interpreter in so a `RUN make` behaves exactly like that:
// recipes are expanded and handed, command by command, to the container's
// command executor.
package makesim

import (
	"fmt"
	"sort"
	"strings"

	"comtainer/internal/fsim"
	"comtainer/internal/shell"
)

// Rule is one makefile rule.
type Rule struct {
	Target  string
	Prereqs []string
	Recipe  []string // unexpanded recipe lines
	Pattern bool     // target contains %
}

// Makefile is a parsed makefile.
type Makefile struct {
	Vars  map[string]string
	Rules []*Rule
	Phony map[string]bool
	// DefaultTarget is the first non-pattern, non-special target.
	DefaultTarget string
}

// Parse parses makefile text. Variable values are expanded at parse time
// for `:=` and lazily (at use) for `=`; since our builds assign before
// use, both expand eagerly here, which matches observed behavior for the
// supported subset.
func Parse(text string) (*Makefile, error) {
	mf := &Makefile{Vars: map[string]string{}, Phony: map[string]bool{}}
	var current *Rule
	lineNo := 0
	for _, raw := range strings.Split(text, "\n") {
		lineNo++
		// Recipe lines are tab-prefixed and belong to the current rule.
		if strings.HasPrefix(raw, "\t") {
			if current == nil {
				return nil, fmt.Errorf("makesim: line %d: recipe with no target", lineNo)
			}
			line := strings.TrimSpace(raw)
			if line != "" {
				current.Recipe = append(current.Recipe, line)
			}
			continue
		}
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			current = nil
			continue
		}
		// Variable assignment?
		if name, value, op, ok := splitAssign(line); ok {
			_ = op // `=` and `:=` both expand eagerly in this subset
			mf.Vars[name] = mf.Expand(value)
			current = nil
			continue
		}
		// Rule line: target(s): prereqs.
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("makesim: line %d: expected rule or assignment: %q", lineNo, line)
		}
		targets := strings.Fields(mf.Expand(line[:colon]))
		prereqs := strings.Fields(mf.Expand(line[colon+1:]))
		if len(targets) == 0 {
			return nil, fmt.Errorf("makesim: line %d: rule with no target", lineNo)
		}
		if targets[0] == ".PHONY" {
			for _, p := range prereqs {
				mf.Phony[p] = true
			}
			current = nil
			continue
		}
		for i, t := range targets {
			r := &Rule{Target: t, Prereqs: prereqs, Pattern: strings.Contains(t, "%")}
			mf.Rules = append(mf.Rules, r)
			if i == 0 {
				current = r
			}
			if mf.DefaultTarget == "" && !r.Pattern && !strings.HasPrefix(t, ".") {
				mf.DefaultTarget = t
			}
		}
	}
	return mf, nil
}

// splitAssign recognizes NAME = value / NAME := value (not rule colons).
func splitAssign(line string) (name, value, op string, ok bool) {
	for _, candidate := range []string{":=", "="} {
		i := strings.Index(line, candidate)
		if i <= 0 {
			continue
		}
		// Reject "target: prereq" being mistaken for ":=" -- `:=` check
		// runs first, and a plain '=' must not follow a colon.
		n := strings.TrimSpace(line[:i])
		if strings.ContainsAny(n, " \t:") {
			continue
		}
		return n, strings.TrimSpace(line[i+len(candidate):]), candidate, true
	}
	return "", "", "", false
}

// Expand resolves $(VAR) and ${VAR} references (recursively) and the
// escaped dollar `$$`.
func (mf *Makefile) Expand(s string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		if c != '$' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(s) {
			b.WriteByte('$')
			break
		}
		switch s[i+1] {
		case '$':
			b.WriteByte('$')
			i += 2
		case '(', '{':
			closer := byte(')')
			if s[i+1] == '{' {
				closer = '}'
			}
			end := strings.IndexByte(s[i+2:], closer)
			if end < 0 {
				b.WriteString(s[i:])
				i = len(s)
				continue
			}
			name := s[i+2 : i+2+end]
			b.WriteString(mf.Expand(mf.Vars[name]))
			i += end + 3
		default:
			// Single-char var like $@ handled by the executor; preserve.
			b.WriteByte('$')
			b.WriteByte(s[i+1])
			i += 2
		}
	}
	return b.String()
}

// Executor runs one expanded recipe command (argv) in the build container.
type Executor func(argv []string) error

// Runner executes makefile targets against a container file system.
type Runner struct {
	MF   *Makefile
	FS   *fsim.FS
	Cwd  string
	Exec Executor
	// built tracks targets completed in this run (make's "already up to
	// date" — without mtimes, each target builds at most once per run).
	built map[string]bool
}

// NewRunner returns a Runner for mf rooted at cwd.
func NewRunner(mf *Makefile, fs *fsim.FS, cwd string, exec Executor) *Runner {
	return &Runner{MF: mf, FS: fs, Cwd: cwd, Exec: exec, built: map[string]bool{}}
}

// abs resolves p against the runner's cwd.
func (r *Runner) abs(p string) string {
	if strings.HasPrefix(p, "/") {
		return fsim.Clean(p)
	}
	return fsim.Clean(r.Cwd + "/" + p)
}

// findRule locates the rule for target: exact match first, then the best
// (longest-stem... shortest-stem is GNU's choice; with our simple
// patterns, first match) pattern rule whose stem resolves.
func (r *Runner) findRule(target string) (*Rule, string, bool) {
	for _, rule := range r.MF.Rules {
		if !rule.Pattern && rule.Target == target {
			return rule, "", true
		}
	}
	for _, rule := range r.MF.Rules {
		if !rule.Pattern {
			continue
		}
		pre, post, _ := strings.Cut(rule.Target, "%")
		if strings.HasPrefix(target, pre) && strings.HasSuffix(target, post) &&
			len(target) >= len(pre)+len(post) {
			stem := target[len(pre) : len(target)-len(post)]
			return rule, stem, true
		}
	}
	return nil, "", false
}

// substStem replaces % with stem in every prereq of a pattern rule.
func substStem(prereqs []string, stem string) []string {
	out := make([]string, len(prereqs))
	for i, p := range prereqs {
		out[i] = strings.ReplaceAll(p, "%", stem)
	}
	return out
}

// Build makes target (empty = the default target), recursively building
// prerequisites first.
func (r *Runner) Build(target string) error {
	if target == "" {
		target = r.MF.DefaultTarget
	}
	if target == "" {
		return fmt.Errorf("makesim: no targets")
	}
	return r.build(target, nil)
}

func (r *Runner) build(target string, chain []string) error {
	if r.built[target] {
		return nil
	}
	for _, c := range chain {
		if c == target {
			return fmt.Errorf("makesim: circular dependency: %s -> %s",
				strings.Join(chain, " -> "), target)
		}
	}
	rule, stem, ok := r.findRule(target)
	if !ok {
		// No rule: acceptable iff the file already exists (a source).
		if r.FS.Exists(r.abs(target)) {
			r.built[target] = true
			return nil
		}
		return fmt.Errorf("makesim: no rule to make target '%s'", target)
	}
	prereqs := rule.Prereqs
	if rule.Pattern {
		prereqs = substStem(rule.Prereqs, stem)
	}
	for _, p := range prereqs {
		if err := r.build(p, append(chain, target)); err != nil {
			return err
		}
	}
	for _, line := range rule.Recipe {
		cmdText := r.expandAutomatics(rule, target, prereqs, line)
		cmds, err := shell.Parse(cmdText, shell.MapEnv(r.MF.Vars))
		if err != nil {
			return fmt.Errorf("makesim: target %s: %w", target, err)
		}
		for _, cmd := range cmds {
			if len(cmd.Argv) == 0 {
				continue
			}
			if err := r.Exec(cmd.Argv); err != nil {
				return fmt.Errorf("makesim: target %s: %w", target, err)
			}
		}
	}
	// Like real make, a recipe is not required to materialize its target
	// (it may write elsewhere); the target is simply considered made.
	r.built[target] = true
	return nil
}

// expandAutomatics substitutes $@, $<, $^ and then $(VAR) references.
func (r *Runner) expandAutomatics(rule *Rule, target string, prereqs []string, line string) string {
	first := ""
	if len(prereqs) > 0 {
		first = prereqs[0]
	}
	line = strings.ReplaceAll(line, "$@", target)
	line = strings.ReplaceAll(line, "$<", first)
	line = strings.ReplaceAll(line, "$^", strings.Join(prereqs, " "))
	return r.MF.Expand(line)
}

// Targets lists the non-pattern targets, sorted (for diagnostics).
func (mf *Makefile) Targets() []string {
	var out []string
	for _, r := range mf.Rules {
		if !r.Pattern {
			out = append(out, r.Target)
		}
	}
	sort.Strings(out)
	return out
}
