package makesim

import (
	"strings"
	"testing"

	"comtainer/internal/fsim"
)

const demoMakefile = `# demo build
CC := gcc
CFLAGS = -O2 -Wall
OBJS := main.o phys.o

.PHONY: all clean

all: app

app: $(OBJS)
	$(CC) $(CFLAGS) $^ -o $@

%.o: %.c
	$(CC) $(CFLAGS) -c $< -o $@

clean:
	rm -f app $(OBJS)
`

func TestParse(t *testing.T) {
	mf, err := Parse(demoMakefile)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Vars["CC"] != "gcc" {
		t.Errorf("CC = %q", mf.Vars["CC"])
	}
	if mf.Vars["OBJS"] != "main.o phys.o" {
		t.Errorf("OBJS = %q", mf.Vars["OBJS"])
	}
	if mf.DefaultTarget != "all" {
		t.Errorf("default = %q", mf.DefaultTarget)
	}
	if !mf.Phony["all"] || !mf.Phony["clean"] {
		t.Errorf("phony = %v", mf.Phony)
	}
	targets := strings.Join(mf.Targets(), " ")
	for _, want := range []string{"all", "app", "clean"} {
		if !strings.Contains(targets, want) {
			t.Errorf("targets missing %s: %s", want, targets)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"\techo orphan recipe\n",
		"not a rule or assignment\n",
		": no-target\n",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestExpand(t *testing.T) {
	mf := &Makefile{Vars: map[string]string{"A": "x", "B": "$(A)y", "C": "${B}z"}}
	if got := mf.Expand("$(C)"); got != "xyz" {
		t.Errorf("Expand = %q", got)
	}
	if got := mf.Expand("$$HOME $(MISSING)"); got != "$HOME " {
		t.Errorf("Expand = %q", got)
	}
}

// recordingExec collects the argv sequence and simulates creating files
// from -o arguments.
type recordingExec struct {
	fs   *fsim.FS
	cwd  string
	cmds [][]string
}

func (e *recordingExec) run(argv []string) error {
	e.cmds = append(e.cmds, argv)
	for i, a := range argv {
		if a == "-o" && i+1 < len(argv) {
			p := argv[i+1]
			if !strings.HasPrefix(p, "/") {
				p = e.cwd + "/" + p
			}
			e.fs.WriteFile(p, []byte("built"), 0o755)
		}
	}
	return nil
}

func TestBuildOrderAndAutomaticVars(t *testing.T) {
	fs := fsim.New()
	fs.WriteFile("/w/main.c", []byte("int main(){}"), 0o644)
	fs.WriteFile("/w/phys.c", []byte("void f(){}"), 0o644)
	mf, err := Parse(demoMakefile)
	if err != nil {
		t.Fatal(err)
	}
	exec := &recordingExec{fs: fs, cwd: "/w"}
	r := NewRunner(mf, fs, "/w", exec.run)
	if err := r.Build(""); err != nil {
		t.Fatal(err)
	}
	if len(exec.cmds) != 3 {
		t.Fatalf("ran %d commands: %v", len(exec.cmds), exec.cmds)
	}
	// Pattern-rule compiles first (order of prereqs), then link.
	c0 := strings.Join(exec.cmds[0], " ")
	if c0 != "gcc -O2 -Wall -c main.c -o main.o" {
		t.Errorf("cmd0 = %q", c0)
	}
	link := strings.Join(exec.cmds[2], " ")
	if link != "gcc -O2 -Wall main.o phys.o -o app" {
		t.Errorf("link = %q", link)
	}
	// Each target builds once even when referenced again.
	if err := r.Build("app"); err != nil {
		t.Fatal(err)
	}
	if len(exec.cmds) != 3 {
		t.Error("rebuild re-ran recipes")
	}
}

func TestMissingRule(t *testing.T) {
	fs := fsim.New()
	mf, _ := Parse("app: missing.o\n\tgcc missing.o -o app\n")
	r := NewRunner(mf, fs, "/w", func([]string) error { return nil })
	err := r.Build("app")
	if err == nil || !strings.Contains(err.Error(), "no rule to make target 'missing.o'") {
		t.Errorf("err = %v", err)
	}
}

func TestSourcePrereqNeedsNoRule(t *testing.T) {
	fs := fsim.New()
	fs.WriteFile("/w/a.c", []byte("x"), 0o644)
	mf, _ := Parse("a.o: a.c\n\tgcc -c a.c -o a.o\n")
	exec := &recordingExec{fs: fs, cwd: "/w"}
	r := NewRunner(mf, fs, "/w", exec.run)
	if err := r.Build("a.o"); err != nil {
		t.Fatal(err)
	}
	if len(exec.cmds) != 1 {
		t.Errorf("cmds = %v", exec.cmds)
	}
}

func TestCircularDependency(t *testing.T) {
	mf, _ := Parse("a: b\n\ttouch a\nb: a\n\ttouch b\n")
	r := NewRunner(mf, fsim.New(), "/", func([]string) error { return nil })
	if err := r.Build("a"); err == nil || !strings.Contains(err.Error(), "circular") {
		t.Errorf("err = %v", err)
	}
}

func TestRecipeNeedNotProduceTarget(t *testing.T) {
	// Real make does not verify the recipe materialized its target (it
	// may install elsewhere, as `app: ... -o /app/solver` does).
	fs := fsim.New()
	mf, _ := Parse("out.bin:\n\techo doing nothing\n")
	r := NewRunner(mf, fs, "/w", func([]string) error { return nil })
	if err := r.Build("out.bin"); err != nil {
		t.Errorf("err = %v", err)
	}
	mf2, _ := Parse(".PHONY: go\ngo:\n\techo fine\n")
	r2 := NewRunner(mf2, fs, "/w", func([]string) error { return nil })
	if err := r2.Build("go"); err != nil {
		t.Error(err)
	}
}
