// Package hijack implements the command-line recorder of coMtainer's Env
// image.
//
// The paper (§4.5): "The recording is performed by a simple command line
// hijacker program that logs the arguments, environment variables, etc.,
// and transparently forwards the execution to the real program via execvp.
// The hijacking is achieved by replacing the default programs in the Env
// image with symbolic links to the hijacker program."
//
// Here the build engine plays the role of execvp: every toolchain command a
// RUN instruction executes passes through a Recorder before being forwarded
// to the simulated toolchain. The accumulated raw build process is written
// into the build container's file system as JSON lines, where the coMtainer
// front-end later parses it into the process models.
package hijack

import (
	"bufio"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"comtainer/internal/fsim"
)

// LogPath is where the raw build process log lives inside a build
// container whose base is a coMtainer Env image.
const LogPath = "/.comtainer/rawlog.jsonl"

// Invocation is one recorded command execution.
type Invocation struct {
	Seq  int               `json:"seq"`
	Argv []string          `json:"argv"`
	Cwd  string            `json:"cwd"`
	Env  map[string]string `json:"env,omitempty"`
	// Stage records which build stage ran the command.
	Stage string `json:"stage,omitempty"`
}

// Tool returns the base name of the invoked program.
func (inv Invocation) Tool() string {
	if len(inv.Argv) == 0 {
		return ""
	}
	t := inv.Argv[0]
	if i := strings.LastIndexByte(t, '/'); i >= 0 {
		t = t[i+1:]
	}
	return t
}

// Recorder accumulates invocations during a build.
type Recorder struct {
	invocations []Invocation
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one invocation, assigning its sequence number. Only the
// environment variables relevant to compilation are retained, mirroring
// what the real hijacker logs.
func (r *Recorder) Record(argv []string, cwd, stage string, env map[string]string) {
	kept := map[string]string{}
	for k, v := range env {
		switch {
		case k == "PATH", k == "CC", k == "CXX", k == "FC", k == "LD_LIBRARY_PATH",
			strings.HasPrefix(k, "CFLAGS"), strings.HasPrefix(k, "CXXFLAGS"),
			strings.HasPrefix(k, "LDFLAGS"), strings.HasPrefix(k, "FFLAGS"),
			strings.HasPrefix(k, "COMT_"):
			kept[k] = v
		}
	}
	if len(kept) == 0 {
		kept = nil
	}
	r.invocations = append(r.invocations, Invocation{
		Seq:   len(r.invocations),
		Argv:  append([]string(nil), argv...),
		Cwd:   cwd,
		Env:   kept,
		Stage: stage,
	})
}

// Invocations returns the recorded history in order.
func (r *Recorder) Invocations() []Invocation {
	return append([]Invocation(nil), r.invocations...)
}

// Len returns the number of recorded invocations.
func (r *Recorder) Len() int { return len(r.invocations) }

// Save writes the log as JSON lines to LogPath in fsys.
func (r *Recorder) Save(fsys *fsim.FS) error {
	var b strings.Builder
	for _, inv := range r.invocations {
		line, err := json.Marshal(inv)
		if err != nil {
			return fmt.Errorf("hijack: encoding invocation %d: %w", inv.Seq, err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	fsys.WriteFile(LogPath, []byte(b.String()), 0o644)
	return nil
}

// Load reads a raw build log from fsys. A missing log yields an empty
// slice, distinguishing "no compilations" from parse errors.
func Load(fsys *fsim.FS) ([]Invocation, error) {
	if !fsys.Exists(LogPath) {
		return nil, nil
	}
	data, err := fsys.ReadFile(LogPath)
	if err != nil {
		return nil, err
	}
	var out []Invocation
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var inv Invocation
		if err := json.Unmarshal(sc.Bytes(), &inv); err != nil {
			return nil, fmt.Errorf("hijack: corrupt log line %q: %w", sc.Text(), err)
		}
		out = append(out, inv)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
