package hijack

import (
	"reflect"
	"testing"

	"comtainer/internal/fsim"
)

func TestRecordAndRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Record([]string{"gcc", "-O2", "-c", "main.c"}, "/app/src", "build",
		map[string]string{"CC": "gcc", "HOME": "/root", "CFLAGS": "-O2"})
	r.Record([]string{"ar", "rcs", "lib.a", "main.o"}, "/app/src", "build", nil)
	r.Record([]string{"/usr/bin/g++", "main.o", "-o", "app"}, "/app", "build", nil)

	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	invs := r.Invocations()
	if invs[0].Seq != 0 || invs[2].Seq != 2 {
		t.Error("sequence numbers wrong")
	}
	// Irrelevant env dropped, relevant kept.
	if _, ok := invs[0].Env["HOME"]; ok {
		t.Error("HOME retained")
	}
	if invs[0].Env["CFLAGS"] != "-O2" {
		t.Error("CFLAGS dropped")
	}
	if invs[2].Tool() != "g++" {
		t.Errorf("Tool = %q", invs[2].Tool())
	}

	fsys := fsim.New()
	if err := r.Save(fsys); err != nil {
		t.Fatal(err)
	}
	back, err := Load(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("loaded %d invocations", len(back))
	}
	if !reflect.DeepEqual(back[0].Argv, invs[0].Argv) || back[0].Cwd != "/app/src" {
		t.Errorf("round trip: %+v", back[0])
	}
}

func TestLoadMissingLog(t *testing.T) {
	invs, err := Load(fsim.New())
	if err != nil || invs != nil {
		t.Errorf("Load(empty) = %v, %v", invs, err)
	}
}

func TestLoadCorruptLog(t *testing.T) {
	fsys := fsim.New()
	fsys.WriteFile(LogPath, []byte("{not json\n"), 0o644)
	if _, err := Load(fsys); err == nil {
		t.Error("corrupt log accepted")
	}
}

func TestRecorderCopiesArgv(t *testing.T) {
	r := NewRecorder()
	argv := []string{"gcc", "-c", "a.c"}
	r.Record(argv, "/", "s", nil)
	argv[0] = "mutated"
	if r.Invocations()[0].Argv[0] != "gcc" {
		t.Error("recorder aliased caller's argv")
	}
}
