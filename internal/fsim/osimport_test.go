package fsim

import (
	"os"
	"path/filepath"
	"testing"
)

func TestImportExportRoundTrip(t *testing.T) {
	src := t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "app", "src"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "app", "src", "main.c"), []byte("int main(){}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "run.sh"), []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink("app/src/main.c", filepath.Join(src, "main-link")); err != nil {
		t.Fatal(err)
	}

	f, err := ImportDir(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadFile("/app/src/main.c")
	if err != nil || string(data) != "int main(){}\n" {
		t.Errorf("imported content = %q, %v", data, err)
	}
	st, err := f.Stat("/run.sh")
	if err != nil || st.Mode != 0o755 {
		t.Errorf("mode = %v, %v", st, err)
	}
	if resolved, err := f.ResolveSymlink("/main-link"); err != nil || resolved != "/app/src/main.c" {
		t.Errorf("symlink = %q, %v", resolved, err)
	}

	dst := t.TempDir()
	if err := f.ExportDir(dst); err != nil {
		t.Fatal(err)
	}
	back, err := ImportDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(back) {
		t.Errorf("round trip mismatch:\nin=%v\nout=%v", f.Paths(), back.Paths())
	}
}

func TestImportMissingDir(t *testing.T) {
	if _, err := ImportDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("ImportDir(missing) succeeded")
	}
}
