// Package fsim implements a POSIX file system simulator.
//
// coMtainer needs to know the final file system state of a container image
// after all of its layers have been applied (paper §4.5: "parsing OCI images
// requires a POSIX file system simulator to compute the final file system
// state after applying all image layers"). An FS is an in-memory tree of
// regular files, directories and symlinks keyed by clean absolute paths.
// Layers are themselves FS values; whiteout entries (the OCI ".wh." naming
// convention) mark deletions, and Apply/Diff convert between layer stacks
// and flattened states.
//
// An FS is safe for concurrent use: the parallel rebuild executor compiles
// independent build-graph nodes against one shared container file system.
// File values are immutable once inserted — mutators always install fresh
// entries — so pointers returned by Stat/Walk remain race-free snapshots.
package fsim

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
	"unsafe"
)

// FileType discriminates the kinds of entries an FS can hold.
type FileType uint8

// The supported entry kinds.
const (
	TypeRegular FileType = iota
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileType(%d)", uint8(t))
	}
}

// File is a single file system entry. Data is nil for directories; Target
// is empty except for symlinks. Mode holds only permission bits — the type
// is carried by Type. Treat a File as immutable once it has been added to
// an FS.
type File struct {
	Path   string
	Type   FileType
	Mode   fs.FileMode
	Data   []byte
	Target string
}

// Clone returns a deep copy of f.
func (f *File) Clone() *File {
	c := *f
	if f.Data != nil {
		c.Data = append([]byte(nil), f.Data...)
	}
	return &c
}

// Size returns the length of the file's data.
func (f *File) Size() int64 { return int64(len(f.Data)) }

// Whiteout naming conventions from the OCI image spec.
const (
	WhiteoutPrefix = ".wh."
	OpaqueWhiteout = ".wh..wh..opq"
)

// ErrNotExist is returned when a path is absent.
var ErrNotExist = errors.New("fsim: file does not exist")

// ErrExist is returned when a path unexpectedly exists.
var ErrExist = errors.New("fsim: file already exists")

// FS is an in-memory file system. The zero value is not usable; call New.
type FS struct {
	mu    sync.RWMutex
	files map[string]*File
}

// New returns an empty file system containing only the root directory.
func New() *FS {
	f := &FS{files: make(map[string]*File)}
	f.files["/"] = &File{Path: "/", Type: TypeDir, Mode: 0o755}
	return f
}

// Clean normalizes p to a clean absolute slash path.
func Clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// Len returns the number of entries, excluding the root directory.
func (f *FS) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.files) - 1
}

// Exists reports whether path p is present.
func (f *FS) Exists(p string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.files[Clean(p)]
	return ok
}

// Stat returns the entry at p. The returned File is a shared snapshot and
// must not be modified.
func (f *FS) Stat(p string) (*File, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.statLocked(p)
}

//comtainer:allow guardedby -- caller holds f.mu; the Locked suffix is the contract, and lockset analysis is intraprocedural
func (f *FS) statLocked(p string) (*File, error) {
	file, ok := f.files[Clean(p)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, Clean(p))
	}
	return file, nil
}

// ReadFile returns the contents of the regular file at p. The returned
// slice is shared and must not be modified.
func (f *FS) ReadFile(p string) ([]byte, error) {
	file, err := f.Stat(p)
	if err != nil {
		return nil, err
	}
	if file.Type != TypeRegular {
		return nil, fmt.Errorf("fsim: %s is a %s, not a regular file", file.Path, file.Type)
	}
	return file.Data, nil
}

// mkParentsLocked creates any missing parent directories of p with mode 0755.
//
//comtainer:allow guardedby -- caller holds f.mu; the Locked suffix is the contract, and lockset analysis is intraprocedural
func (f *FS) mkParentsLocked(p string) {
	dir := path.Dir(p)
	for dir != "/" {
		if _, ok := f.files[dir]; !ok {
			f.files[dir] = &File{Path: dir, Type: TypeDir, Mode: 0o755}
		}
		dir = path.Dir(dir)
	}
}

// WriteFile creates or replaces a regular file at p, creating parents.
func (f *FS) WriteFile(p string, data []byte, mode fs.FileMode) {
	p = Clean(p)
	if p == "/" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mkParentsLocked(p)
	f.files[p] = &File{Path: p, Type: TypeRegular, Mode: mode.Perm(), Data: append([]byte(nil), data...)}
}

// MkdirAll creates directory p and any missing parents. It fails if p
// or any ancestor already exists as a non-directory, like os.MkdirAll
// (the previous behavior silently replaced such entries).
func (f *FS) MkdirAll(p string, mode fs.FileMode) error {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for q := p; q != "/"; q = path.Dir(q) {
		if existing, ok := f.files[q]; ok && existing.Type != TypeDir {
			return fmt.Errorf("fsim: mkdir %s: %s exists as a %s, not a directory", p, q, existing.Type)
		}
	}
	f.mkParentsLocked(p)
	if _, ok := f.files[p]; !ok {
		f.files[p] = &File{Path: p, Type: TypeDir, Mode: mode.Perm()}
	}
	return nil
}

// Symlink creates a symlink at p pointing at target, creating parents.
func (f *FS) Symlink(target, p string) {
	p = Clean(p)
	if p == "/" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mkParentsLocked(p)
	f.files[p] = &File{Path: p, Type: TypeSymlink, Mode: 0o777, Target: target}
}

// Add inserts a pre-built File, creating parents. The file's Path is
// cleaned in place; the FS takes ownership of the File, which must not be
// modified afterwards.
func (f *FS) Add(file *File) {
	file.Path = Clean(file.Path)
	if file.Path == "/" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mkParentsLocked(file.Path)
	f.files[file.Path] = file
}

// Remove deletes the entry at p. Removing a directory removes its entire
// subtree. Removing the root or a missing path returns an error.
func (f *FS) Remove(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.removeLocked(p)
}

//comtainer:allow guardedby -- caller holds f.mu; the Locked suffix is the contract, and lockset analysis is intraprocedural
func (f *FS) removeLocked(p string) error {
	p = Clean(p)
	if p == "/" {
		return errors.New("fsim: cannot remove root")
	}
	file, ok := f.files[p]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	delete(f.files, p)
	if file.Type == TypeDir {
		prefix := p + "/"
		for q := range f.files {
			if strings.HasPrefix(q, prefix) {
				delete(f.files, q)
			}
		}
	}
	return nil
}

// ReadDir returns the immediate children of directory p, sorted by path.
func (f *FS) ReadDir(p string) ([]*File, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p = Clean(p)
	dir, ok := f.files[p]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if dir.Type != TypeDir {
		return nil, fmt.Errorf("fsim: %s is not a directory", p)
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	var out []*File
	for q, file := range f.files {
		if q == p || !strings.HasPrefix(q, prefix) {
			continue
		}
		rest := q[len(prefix):]
		if strings.Contains(rest, "/") {
			continue
		}
		out = append(out, file)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Paths returns every path in the FS (excluding root), sorted.
func (f *FS) Paths() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.pathsLocked()
}

//comtainer:allow guardedby -- caller holds f.mu; the Locked suffix is the contract, and lockset analysis is intraprocedural
func (f *FS) pathsLocked() []string {
	out := make([]string, 0, len(f.files)-1)
	for p := range f.files {
		if p == "/" {
			continue
		}
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Walk visits every entry except the root in sorted path order. The
// callback runs without the FS lock held, so it may call back into the
// same FS; entries added or removed mid-walk may or may not be visited.
// If fn returns an error the walk stops and returns it.
func (f *FS) Walk(fn func(*File) error) error {
	for _, p := range f.Paths() {
		file, err := f.Stat(p)
		if err != nil {
			continue // removed mid-walk
		}
		if err := fn(file); err != nil {
			return err
		}
	}
	return nil
}

// Glob returns sorted paths whose base name matches the pattern (path.Match
// syntax) anywhere in the tree, or whose full path matches when the pattern
// contains a slash.
func (f *FS) Glob(pattern string) []string {
	var out []string
	full := strings.Contains(pattern, "/")
	for _, p := range f.Paths() {
		subject := path.Base(p)
		if full {
			subject = p
		}
		if ok, err := path.Match(pattern, subject); err == nil && ok {
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a deep copy of the file system.
func (f *FS) Clone() *FS {
	f.mu.RLock()
	defer f.mu.RUnlock()
	c := &FS{files: make(map[string]*File, len(f.files))}
	for p, file := range f.files {
		c.files[p] = file.Clone()
	}
	return c
}

// lockPair acquires the read locks of two file systems in address order,
// avoiding deadlock between concurrent Equal(a, b) and Equal(b, a).
func lockPair(a, b *FS) func() {
	if a == b {
		a.mu.RLock()
		return a.mu.RUnlock
	}
	first, second := a, b
	if uintptr(unsafe.Pointer(a)) > uintptr(unsafe.Pointer(b)) {
		first, second = b, a
	}
	first.mu.RLock()
	second.mu.RLock()
	return func() {
		second.mu.RUnlock()
		first.mu.RUnlock()
	}
}

// Equal reports whether two file systems hold identical entries.
func (f *FS) Equal(other *FS) bool {
	unlock := lockPair(f, other)
	defer unlock()
	if len(f.files) != len(other.files) {
		return false
	}
	for p, a := range f.files {
		b, ok := other.files[p]
		if !ok {
			return false
		}
		if a.Type != b.Type || a.Mode != b.Mode || a.Target != b.Target ||
			string(a.Data) != string(b.Data) {
			return false
		}
	}
	return true
}

// TotalSize returns the sum of regular file sizes in bytes.
func (f *FS) TotalSize() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var n int64
	for _, file := range f.files {
		n += file.Size()
	}
	return n
}

// ResolveSymlink follows symlinks at p up to 40 hops and returns the final
// path. Relative targets are resolved against the link's directory.
func (f *FS) ResolveSymlink(p string) (string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p = Clean(p)
	for i := 0; i < 40; i++ {
		file, ok := f.files[p]
		if !ok {
			return "", fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		if file.Type != TypeSymlink {
			return p, nil
		}
		if path.IsAbs(file.Target) {
			p = Clean(file.Target)
		} else {
			p = Clean(path.Join(path.Dir(p), file.Target))
		}
	}
	return "", fmt.Errorf("fsim: too many symlink hops resolving %s", p)
}

// isWhiteout reports whether base is a whiteout marker and, if so, whether
// it is the opaque-directory marker.
func isWhiteout(base string) (whiteout, opaque bool) {
	if base == OpaqueWhiteout {
		return true, true
	}
	return strings.HasPrefix(base, WhiteoutPrefix), false
}

// Apply layers `layer` on top of base and returns the combined state,
// honouring OCI whiteout semantics: an entry named ".wh.x" deletes x from
// the lower state; ".wh..wh..opq" in a directory hides all lower entries of
// that directory. Neither input is modified.
func Apply(base, layer *FS) *FS {
	out := base.Clone()
	// Opaque markers first: they clear lower content before this layer's
	// own entries for the directory are added.
	var adds []*File
	for _, p := range layer.Paths() {
		file, err := layer.Stat(p)
		if err != nil {
			continue
		}
		baseName := path.Base(p)
		wh, opaque := isWhiteout(baseName)
		switch {
		case opaque:
			dir := path.Dir(p)
			if d, err := out.Stat(dir); err == nil && d.Type == TypeDir {
				prefix := dir + "/"
				if dir == "/" {
					prefix = "/"
				}
				out.mu.Lock()
				for q := range out.files {
					if q != dir && strings.HasPrefix(q, prefix) {
						delete(out.files, q)
					}
				}
				out.mu.Unlock()
			}
		case wh:
			target := path.Join(path.Dir(p), strings.TrimPrefix(baseName, WhiteoutPrefix))
			// Whiteout of a missing path is a no-op by the OCI spec, and
			// Remove on an in-memory FS has no other failure mode here.
			//comtainer:allow errpropagate -- whiteout of a missing path is a spec-mandated no-op
			_ = out.Remove(target)
		default:
			adds = append(adds, file)
		}
	}
	for _, file := range adds {
		// Replacing a directory with a non-directory removes the subtree.
		if existing, err := out.Stat(file.Path); err == nil && existing.Type == TypeDir && file.Type != TypeDir {
			//comtainer:allow errpropagate -- Stat just proved the path exists; Remove cannot fail
			_ = out.Remove(file.Path)
		}
		out.Add(file.Clone())
	}
	return out
}

// ApplyAll applies layers in order on top of an empty file system.
func ApplyAll(layers []*FS) *FS {
	state := New()
	for _, l := range layers {
		state = Apply(state, l)
	}
	return state
}

// Diff computes a layer that, applied to base, reproduces derived:
// Apply(base, Diff(base, derived)).Equal(derived) holds for states whose
// paths do not themselves use the whiteout naming convention. Deletions
// become whiteout entries.
func Diff(base, derived *FS) *FS {
	unlock := lockPair(base, derived)
	layer := New()
	// Additions and modifications.
	var adds []*File
	var whiteouts []string
	for p, d := range derived.files {
		if p == "/" {
			continue
		}
		b, ok := base.files[p]
		if ok && b.Type == d.Type && b.Mode == d.Mode && b.Target == d.Target &&
			string(b.Data) == string(d.Data) {
			continue
		}
		adds = append(adds, d.Clone())
	}
	// Deletions: entries in base absent from derived. Skip entries whose
	// ancestor directory is itself deleted (a single whiteout suffices).
	for p := range base.files {
		if p == "/" {
			continue
		}
		if _, ok := derived.files[p]; ok {
			continue
		}
		parent := path.Dir(p)
		covered := false
		for parent != "/" {
			if _, inBase := base.files[parent]; inBase {
				if _, inDerived := derived.files[parent]; !inDerived {
					covered = true
					break
				}
			}
			parent = path.Dir(parent)
		}
		if covered {
			continue
		}
		whiteouts = append(whiteouts, path.Join(path.Dir(p), WhiteoutPrefix+path.Base(p)))
	}
	unlock()
	for _, a := range adds {
		layer.Add(a)
	}
	for _, wh := range whiteouts {
		layer.WriteFile(wh, nil, 0o000)
	}
	return layer
}

// Squash merges two layers into one equivalent layer: for any base,
// Apply(Apply(base, a), b) == Apply(base, Squash(a, b)).
func Squash(a, b *FS) *FS {
	empty := New()
	combined := Apply(Apply(empty, a), b)
	// Diff against empty gives adds; deletions crossing a/b boundaries
	// must be preserved as whiteouts from both layers.
	out := Diff(empty, combined)
	carryWhiteouts := func(layer *FS) {
		for _, p := range layer.Paths() {
			wh, _ := isWhiteout(path.Base(p))
			if !wh {
				continue
			}
			file, err := layer.Stat(p)
			if err != nil {
				continue
			}
			target := path.Join(path.Dir(p), strings.TrimPrefix(path.Base(p), WhiteoutPrefix))
			if path.Base(p) == OpaqueWhiteout {
				out.Add(file.Clone())
				continue
			}
			if !combined.Exists(target) {
				out.Add(file.Clone())
			}
		}
	}
	carryWhiteouts(a)
	carryWhiteouts(b)
	return out
}
