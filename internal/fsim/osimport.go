package fsim

import (
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// ImportDir reads a real directory tree from the host into a new FS,
// rooted at "/". Symlinks are preserved as symlinks; irregular files
// (sockets, devices) are rejected. It is how the CLI tools ingest a build
// context from disk.
func ImportDir(dir string) (*FS, error) {
	out := New()
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("fsim: resolving %s: %w", dir, err)
	}
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		target := Clean("/" + filepath.ToSlash(rel))
		info, err := d.Info()
		if err != nil {
			return err
		}
		switch {
		case d.IsDir():
			if err := out.MkdirAll(target, info.Mode().Perm()); err != nil {
				return err
			}
		case info.Mode()&fs.ModeSymlink != 0:
			link, err := os.Readlink(p)
			if err != nil {
				return fmt.Errorf("fsim: reading symlink %s: %w", p, err)
			}
			out.Symlink(filepath.ToSlash(link), target)
		case info.Mode().IsRegular():
			data, err := os.ReadFile(p)
			if err != nil {
				return fmt.Errorf("fsim: reading %s: %w", p, err)
			}
			out.WriteFile(target, data, info.Mode().Perm())
		default:
			return fmt.Errorf("fsim: %s: unsupported file type %s", p, info.Mode())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SafeJoin joins an in-image path onto a host root directory,
// guaranteeing the result stays lexically inside root. The image path is
// cleaned as a rooted slash path first (so ".." components cannot climb),
// and the joined result is verified to still have root as an ancestor —
// the defense tar extractors and layer exporters must apply before
// touching the host file system.
func SafeJoin(root, name string) (string, error) {
	cleaned := path.Clean("/" + filepath.ToSlash(name))
	hostPath := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(cleaned, "/")))
	if hostPath != root && !strings.HasPrefix(hostPath, root+string(filepath.Separator)) {
		return "", fmt.Errorf("fsim: path %q escapes root %q", name, root)
	}
	return hostPath, nil
}

// ExportDir writes the FS content under dir on the host — the inverse of
// ImportDir, used to unpack flattened images for external inspection.
//
// Two containment guards run per entry: SafeJoin keeps each target
// lexically under dir, and the parent directory of every write is
// resolved through EvalSymlinks and checked against the export root, so
// an image carrying a symlinked ancestor ("/a" -> "/etc", then
// "/a/passwd") cannot redirect writes outside dir.
func (f *FS) ExportDir(dir string) error {
	root, err := filepath.Abs(dir)
	if err != nil {
		return fmt.Errorf("fsim: resolving export root %s: %w", dir, err)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("fsim: creating export root: %w", err)
	}
	resolvedRoot, err := filepath.EvalSymlinks(root)
	if err != nil {
		return fmt.Errorf("fsim: resolving export root %s: %w", dir, err)
	}
	for _, p := range f.Paths() {
		file, err := f.Stat(p)
		if err != nil {
			continue
		}
		hostPath, err := SafeJoin(root, p)
		if err != nil {
			return fmt.Errorf("fsim: exporting %s: %w", p, err)
		}
		switch file.Type {
		case TypeDir:
			if err := makeContainedDir(resolvedRoot, hostPath); err != nil {
				return fmt.Errorf("fsim: exporting %s: %w", p, err)
			}
		case TypeSymlink:
			if err := makeContainedDir(resolvedRoot, filepath.Dir(hostPath)); err != nil {
				return fmt.Errorf("fsim: exporting %s: %w", p, err)
			}
			if err := os.Symlink(file.Target, hostPath); err != nil && !os.IsExist(err) {
				return fmt.Errorf("fsim: exporting symlink %s: %w", p, err)
			}
		case TypeRegular:
			if err := makeContainedDir(resolvedRoot, filepath.Dir(hostPath)); err != nil {
				return fmt.Errorf("fsim: exporting %s: %w", p, err)
			}
			mode := file.Mode.Perm()
			if mode == 0 {
				mode = 0o644
			}
			if err := os.WriteFile(hostPath, file.Data, mode); err != nil {
				return fmt.Errorf("fsim: exporting %s: %w", p, err)
			}
		}
	}
	return nil
}

// makeContainedDir verifies that dir, with symlinks resolved the way
// the kernel will resolve them at write time, still lives under
// resolvedRoot, then creates the resolved directory. The check must run
// before creation: MkdirAll follows a pre-existing symlink at any
// ancestor, so creating first would already have written outside the
// root by the time a post-hoc check fired.
func makeContainedDir(resolvedRoot, dir string) error {
	real, err := resolveWithin(dir)
	if err != nil {
		return err
	}
	if real != resolvedRoot && !strings.HasPrefix(real, resolvedRoot+string(filepath.Separator)) {
		return fmt.Errorf("directory resolves outside the export root (symlinked ancestor?): %s", dir)
	}
	return os.MkdirAll(real, 0o755)
}

// resolveWithin resolves p component by component, following symlinks —
// including dangling ones whose targets do not exist yet — exactly as
// the kernel would when the path is later opened. Components that do
// not exist resolve to themselves. A chain of more than 40 links is
// treated as a cycle.
func resolveWithin(p string) (string, error) {
	sep := string(filepath.Separator)
	split := func(abs string) []string {
		return strings.Split(strings.TrimPrefix(filepath.Clean(abs), sep), sep)
	}
	comps := split(p)
	cur := sep
	links := 0
	for i := 0; i < len(comps); i++ {
		c := comps[i]
		switch c {
		case "", ".":
			continue
		case "..":
			cur = filepath.Dir(cur)
			continue
		}
		next := filepath.Join(cur, c)
		fi, err := os.Lstat(next)
		if err != nil || fi.Mode()&os.ModeSymlink == 0 {
			cur = next
			continue
		}
		links++
		if links > 40 {
			return "", fmt.Errorf("fsim: too many symlinks resolving %s", p)
		}
		target, err := os.Readlink(next)
		if err != nil {
			return "", err
		}
		if !filepath.IsAbs(target) {
			target = filepath.Join(cur, target)
		}
		// Restart resolution at the link target, keeping the
		// unconsumed trailing components.
		comps = append(split(target), comps[i+1:]...)
		cur = sep
		i = -1
	}
	return cur, nil
}
