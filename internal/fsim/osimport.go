package fsim

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// ImportDir reads a real directory tree from the host into a new FS,
// rooted at "/". Symlinks are preserved as symlinks; irregular files
// (sockets, devices) are rejected. It is how the CLI tools ingest a build
// context from disk.
func ImportDir(dir string) (*FS, error) {
	out := New()
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("fsim: resolving %s: %w", dir, err)
	}
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		target := Clean("/" + filepath.ToSlash(rel))
		info, err := d.Info()
		if err != nil {
			return err
		}
		switch {
		case d.IsDir():
			if err := out.MkdirAll(target, info.Mode().Perm()); err != nil {
				return err
			}
		case info.Mode()&fs.ModeSymlink != 0:
			link, err := os.Readlink(p)
			if err != nil {
				return fmt.Errorf("fsim: reading symlink %s: %w", p, err)
			}
			out.Symlink(filepath.ToSlash(link), target)
		case info.Mode().IsRegular():
			data, err := os.ReadFile(p)
			if err != nil {
				return fmt.Errorf("fsim: reading %s: %w", p, err)
			}
			out.WriteFile(target, data, info.Mode().Perm())
		default:
			return fmt.Errorf("fsim: %s: unsupported file type %s", p, info.Mode())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExportDir writes the FS content under dir on the host — the inverse of
// ImportDir, used to unpack flattened images for external inspection.
func (f *FS) ExportDir(dir string) error {
	for _, p := range f.Paths() {
		file, err := f.Stat(p)
		if err != nil {
			continue
		}
		hostPath := filepath.Join(dir, filepath.FromSlash(strings.TrimPrefix(p, "/")))
		switch file.Type {
		case TypeDir:
			if err := os.MkdirAll(hostPath, 0o755); err != nil {
				return fmt.Errorf("fsim: exporting %s: %w", p, err)
			}
		case TypeSymlink:
			if err := os.MkdirAll(filepath.Dir(hostPath), 0o755); err != nil {
				return err
			}
			if err := os.Symlink(file.Target, hostPath); err != nil && !os.IsExist(err) {
				return fmt.Errorf("fsim: exporting symlink %s: %w", p, err)
			}
		case TypeRegular:
			if err := os.MkdirAll(filepath.Dir(hostPath), 0o755); err != nil {
				return err
			}
			mode := file.Mode.Perm()
			if mode == 0 {
				mode = 0o644
			}
			if err := os.WriteFile(hostPath, file.Data, mode); err != nil {
				return fmt.Errorf("fsim: exporting %s: %w", p, err)
			}
		}
	}
	return nil
}
