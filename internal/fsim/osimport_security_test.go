package fsim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSafeJoin(t *testing.T) {
	root := filepath.Join(string(filepath.Separator), "export", "root")
	good := []struct{ in, want string }{
		{"/a/b", filepath.Join(root, "a", "b")},
		{"a/b", filepath.Join(root, "a", "b")},
		{"/", root},
		{"/a/../b", filepath.Join(root, "b")},
		// Rooted cleaning: a leading .. cannot climb above "/".
		{"/../x", filepath.Join(root, "x")},
		{"../x", filepath.Join(root, "x")},
	}
	for _, c := range good {
		got, err := SafeJoin(root, c.in)
		if err != nil {
			t.Errorf("SafeJoin(%q, %q): unexpected error %v", root, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("SafeJoin(%q, %q) = %q, want %q", root, c.in, got, c.want)
		}
	}
}

// TestExportDirSymlinkAncestorEscape: an image carrying a symlink to
// outside the export root plus a file beneath that symlink must not be
// able to write through it.
func TestExportDirSymlinkAncestorEscape(t *testing.T) {
	base := t.TempDir()
	outside := filepath.Join(base, "outside")
	if err := os.MkdirAll(outside, 0o755); err != nil {
		t.Fatal(err)
	}
	export := filepath.Join(base, "export")

	fs := New()
	fs.Symlink("../outside", "/a")
	fs.WriteFile("/a/payload", []byte("owned"), 0o644)

	err := fs.ExportDir(export)
	if err == nil {
		t.Fatal("ExportDir succeeded despite a symlinked ancestor escaping the root")
	}
	if !strings.Contains(err.Error(), "export root") {
		t.Errorf("error %q does not mention the export root", err)
	}
	if _, statErr := os.Stat(filepath.Join(outside, "payload")); statErr == nil {
		t.Error("payload was written outside the export root")
	}
}

// TestExportDirSymlinkInsideRootOK: symlinks that stay inside the
// export tree keep working.
func TestExportDirSymlinkInsideRootOK(t *testing.T) {
	export := filepath.Join(t.TempDir(), "export")

	fs := New()
	fs.MkdirAll("/real", 0o755)
	fs.Symlink("real", "/alias")
	fs.WriteFile("/alias/file", []byte("ok"), 0o644)
	fs.WriteFile("/real/other", []byte("ok"), 0o644)

	if err := fs.ExportDir(export); err != nil {
		t.Fatalf("ExportDir failed on an internal symlink: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(export, "real", "file"))
	if err != nil || string(got) != "ok" {
		t.Errorf("write through internal symlink lost: %v %q", err, got)
	}
}
