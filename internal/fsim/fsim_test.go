package fsim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteAndRead(t *testing.T) {
	f := New()
	f.WriteFile("/app/bin/lulesh", []byte("ELF..."), 0o755)
	got, err := f.ReadFile("/app/bin/lulesh")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ELF..." {
		t.Errorf("ReadFile = %q", got)
	}
	// Parents auto-created.
	for _, p := range []string{"/app", "/app/bin"} {
		file, err := f.Stat(p)
		if err != nil {
			t.Fatalf("Stat(%s): %v", p, err)
		}
		if file.Type != TypeDir {
			t.Errorf("%s is %s, want dir", p, file.Type)
		}
	}
}

func TestCleanPaths(t *testing.T) {
	f := New()
	f.WriteFile("usr//lib/../lib/libc.so", []byte("x"), 0o644)
	if !f.Exists("/usr/lib/libc.so") {
		t.Error("path not normalized")
	}
}

func TestReadFileWrongType(t *testing.T) {
	f := New()
	f.MkdirAll("/etc", 0o755)
	if _, err := f.ReadFile("/etc"); err == nil {
		t.Error("ReadFile(dir) succeeded")
	}
	if _, err := f.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("ReadFile(missing) err = %v, want ErrNotExist", err)
	}
}

func TestRemoveSubtree(t *testing.T) {
	f := New()
	f.WriteFile("/a/b/c", []byte("1"), 0o644)
	f.WriteFile("/a/b/d", []byte("2"), 0o644)
	f.WriteFile("/a/e", []byte("3"), 0o644)
	if err := f.Remove("/a/b"); err != nil {
		t.Fatal(err)
	}
	if f.Exists("/a/b/c") || f.Exists("/a/b/d") || f.Exists("/a/b") {
		t.Error("subtree not removed")
	}
	if !f.Exists("/a/e") {
		t.Error("sibling removed")
	}
	if err := f.Remove("/"); err == nil {
		t.Error("removed root")
	}
	if err := f.Remove("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove(missing) = %v", err)
	}
}

func TestReadDir(t *testing.T) {
	f := New()
	f.WriteFile("/d/z", nil, 0o644)
	f.WriteFile("/d/a", nil, 0o644)
	f.WriteFile("/d/sub/deep", nil, 0o644)
	entries, err := f.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Path)
	}
	want := []string{"/d/a", "/d/sub", "/d/z"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("ReadDir = %v, want %v", names, want)
	}
	root, err := f.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 1 || root[0].Path != "/d" {
		t.Errorf("ReadDir(/) = %v", root)
	}
}

func TestGlob(t *testing.T) {
	f := New()
	f.WriteFile("/src/main.c", nil, 0o644)
	f.WriteFile("/src/util.c", nil, 0o644)
	f.WriteFile("/src/util.h", nil, 0o644)
	if got := f.Glob("*.c"); len(got) != 2 {
		t.Errorf("Glob(*.c) = %v", got)
	}
	if got := f.Glob("/src/*.h"); len(got) != 1 || got[0] != "/src/util.h" {
		t.Errorf("Glob(/src/*.h) = %v", got)
	}
}

func TestSymlinkResolve(t *testing.T) {
	f := New()
	f.WriteFile("/usr/bin/gcc-12", []byte("real"), 0o755)
	f.Symlink("gcc-12", "/usr/bin/gcc")
	f.Symlink("/usr/bin/gcc", "/usr/local/bin/cc")
	got, err := f.ResolveSymlink("/usr/local/bin/cc")
	if err != nil {
		t.Fatal(err)
	}
	if got != "/usr/bin/gcc-12" {
		t.Errorf("ResolveSymlink = %s", got)
	}
	// Cycle detection.
	f.Symlink("/x/b", "/x/a")
	f.Symlink("/x/a", "/x/b")
	if _, err := f.ResolveSymlink("/x/a"); err == nil {
		t.Error("symlink cycle not detected")
	}
}

func TestCloneIsolation(t *testing.T) {
	f := New()
	f.WriteFile("/f", []byte("orig"), 0o644)
	c := f.Clone()
	c.WriteFile("/f", []byte("changed"), 0o644)
	c.WriteFile("/new", nil, 0o644)
	got, _ := f.ReadFile("/f")
	if string(got) != "orig" {
		t.Error("clone mutation leaked to original")
	}
	if f.Exists("/new") {
		t.Error("clone addition leaked")
	}
}

func TestApplyWhiteout(t *testing.T) {
	base := New()
	base.WriteFile("/etc/conf", []byte("old"), 0o644)
	base.WriteFile("/usr/lib/libm.so", []byte("m"), 0o644)

	layer := New()
	layer.WriteFile("/etc/.wh.conf", nil, 0)
	layer.WriteFile("/usr/lib/libblas.so", []byte("blas"), 0o644)

	out := Apply(base, layer)
	if out.Exists("/etc/conf") {
		t.Error("whiteout did not delete /etc/conf")
	}
	if !out.Exists("/usr/lib/libm.so") || !out.Exists("/usr/lib/libblas.so") {
		t.Error("apply lost files")
	}
	if out.Exists("/etc/.wh.conf") {
		t.Error("whiteout marker leaked into state")
	}
	// Inputs untouched.
	if !base.Exists("/etc/conf") {
		t.Error("Apply mutated base")
	}
}

func TestApplyOpaque(t *testing.T) {
	base := New()
	base.WriteFile("/opt/tool/a", nil, 0o644)
	base.WriteFile("/opt/tool/b", nil, 0o644)
	layer := New()
	layer.WriteFile("/opt/tool/"+OpaqueWhiteout, nil, 0)
	layer.WriteFile("/opt/tool/c", nil, 0o644)
	out := Apply(base, layer)
	if out.Exists("/opt/tool/a") || out.Exists("/opt/tool/b") {
		t.Error("opaque whiteout did not clear directory")
	}
	if !out.Exists("/opt/tool/c") {
		t.Error("layer's own entry missing after opaque")
	}
}

func TestApplyFileReplacesDir(t *testing.T) {
	base := New()
	base.WriteFile("/x/inner", nil, 0o644)
	layer := New()
	layer.WriteFile("/x", []byte("now a file"), 0o644)
	out := Apply(base, layer)
	st, err := out.Stat("/x")
	if err != nil || st.Type != TypeRegular {
		t.Fatalf("Stat(/x) = %v, %v", st, err)
	}
	if out.Exists("/x/inner") {
		t.Error("subtree survived dir→file replacement")
	}
}

func TestDiffRoundTrip(t *testing.T) {
	base := New()
	base.WriteFile("/keep", []byte("k"), 0o644)
	base.WriteFile("/change", []byte("v1"), 0o644)
	base.WriteFile("/del/one", []byte("1"), 0o644)
	base.WriteFile("/del/two", []byte("2"), 0o644)

	derived := base.Clone()
	derived.WriteFile("/change", []byte("v2"), 0o644)
	derived.WriteFile("/added", []byte("a"), 0o644)
	if err := derived.Remove("/del"); err != nil {
		t.Fatal(err)
	}

	layer := Diff(base, derived)
	if !Apply(base, layer).Equal(derived) {
		t.Error("Apply(base, Diff(base, derived)) != derived")
	}
	// The deleted directory should produce one whiteout, not three.
	whCount := 0
	for _, p := range layer.Paths() {
		if strings.HasSuffix(p, ".wh.del") {
			whCount++
		}
	}
	if whCount != 1 {
		t.Errorf("whiteout count for /del = %d, want 1", whCount)
	}
}

func TestSquashEquivalence(t *testing.T) {
	base := New()
	base.WriteFile("/a", []byte("a"), 0o644)
	base.WriteFile("/b", []byte("b"), 0o644)

	l1 := New()
	l1.WriteFile("/c", []byte("c"), 0o644)
	l1.WriteFile("/.wh.a", nil, 0)

	l2 := New()
	l2.WriteFile("/c", []byte("c2"), 0o644)
	l2.WriteFile("/.wh.b", nil, 0)

	sequential := Apply(Apply(base, l1), l2)
	squashed := Apply(base, Squash(l1, l2))
	if !sequential.Equal(squashed) {
		t.Errorf("squash mismatch:\nsequential=%v\nsquashed=%v",
			sequential.Paths(), squashed.Paths())
	}
}

// randomFS builds a deterministic pseudo-random FS from a seed.
func randomFS(seed int64, n int) *FS {
	rng := rand.New(rand.NewSource(seed))
	f := New()
	dirs := []string{"/", "/usr", "/usr/lib", "/etc", "/app", "/app/src"}
	for i := 0; i < n; i++ {
		d := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("f%02d", rng.Intn(30))
		switch rng.Intn(3) {
		case 0:
			f.WriteFile(d+"/"+name, []byte(fmt.Sprintf("data%d", rng.Int63())), 0o644)
		case 1:
			f.MkdirAll(d+"/"+name+"_dir", 0o755)
		case 2:
			f.Symlink("/usr/lib", d+"/"+name+"_ln")
		}
	}
	return f
}

func TestPropertyDiffApplyRoundTrip(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		base := randomFS(seedA, 25)
		derived := randomFS(seedB, 25)
		layer := Diff(base, derived)
		return Apply(base, layer).Equal(derived)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyApplyAssociativeViaSquash(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		base := randomFS(s1, 15)
		a := Diff(New(), randomFS(s2, 10))
		b := Diff(New(), randomFS(s3, 10))
		seq := Apply(Apply(base, a), b)
		sq := Apply(base, Squash(a, b))
		return seq.Equal(sq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		fs := randomFS(seed, 30)
		return fs.Equal(fs.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTotalSize(t *testing.T) {
	f := New()
	f.WriteFile("/a", make([]byte, 100), 0o644)
	f.WriteFile("/b", make([]byte, 23), 0o644)
	f.MkdirAll("/d", 0o755)
	if got := f.TotalSize(); got != 123 {
		t.Errorf("TotalSize = %d, want 123", got)
	}
}
