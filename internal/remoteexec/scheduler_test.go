package remoteexec

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"comtainer/internal/digest"
)

var testPlatform = Platform{ISA: "x86", System: "x86-64", Toolchains: "fp-test"}

func testSpec() TaskSpec {
	return TaskSpec{
		Argv:     []string{"cc", "-c", "main.c"},
		Cwd:      "/src",
		Platform: testPlatform,
		Repo:     DefaultRepo,
	}
}

// farm serves sched under httptest and wraps the JSON round trips.
type farm struct {
	t  *testing.T
	ts *httptest.Server
	hc *http.Client
}

func newFarm(t *testing.T, sched *Scheduler) *farm {
	t.Helper()
	ts := httptest.NewServer(sched.Handler())
	t.Cleanup(ts.Close)
	return &farm{t: t, ts: ts, hc: ts.Client()}
}

func (f *farm) url(path string) string { return f.ts.URL + APIPrefix + path }

func (f *farm) do(method, path string, in, out any) error {
	return doJSON(context.Background(), f.hc, method, f.url(path), in, out)
}

func (f *farm) must(method, path string, in, out any) {
	f.t.Helper()
	if err := f.do(method, path, in, out); err != nil {
		f.t.Fatalf("%s %s: %v", method, path, err)
	}
}

func (f *farm) register(name string, slots int) string {
	f.t.Helper()
	var resp RegisterResponse
	f.must(http.MethodPost, "/workers", RegisterRequest{Name: name, Slots: slots, Platform: testPlatform}, &resp)
	return resp.WorkerID
}

func (f *farm) submit() string {
	f.t.Helper()
	var resp SubmitResponse
	f.must(http.MethodPost, "/tasks", testSpec(), &resp)
	if resp.NoWorker || resp.TaskID == "" {
		f.t.Fatalf("submit: expected a task ID, got %+v", resp)
	}
	return resp.TaskID
}

func (f *farm) lease(worker string, wait time.Duration) *LeasedTask {
	f.t.Helper()
	var resp LeaseResponse
	f.must(http.MethodPost, "/lease?worker="+worker+"&wait="+itoa(wait), nil, &resp)
	return resp.Task
}

func (f *farm) taskStatus(id string, wait time.Duration) TaskStatus {
	f.t.Helper()
	var st TaskStatus
	f.must(http.MethodGet, "/tasks/"+id+"?wait="+itoa(wait), nil, &st)
	return st
}

func itoa(d time.Duration) string {
	ms := d.Milliseconds()
	if ms <= 0 {
		return "0"
	}
	digits := ""
	for ; ms > 0; ms /= 10 {
		digits = string(rune('0'+ms%10)) + digits
	}
	return digits
}

// TestSubmitZeroWorkerFarm covers the local-fallback contract: a farm
// with no (compatible) workers declines at submit time rather than
// queueing a task nobody will ever lease.
func TestSubmitZeroWorkerFarm(t *testing.T) {
	f := newFarm(t, NewScheduler())
	var resp SubmitResponse
	f.must(http.MethodPost, "/tasks", testSpec(), &resp)
	if !resp.NoWorker {
		t.Fatalf("empty farm accepted a task: %+v", resp)
	}

	// A worker on the wrong platform is just as useless.
	other := testPlatform
	other.Toolchains = "fp-other"
	var reg RegisterResponse
	f.must(http.MethodPost, "/workers", RegisterRequest{Name: "alien", Slots: 1, Platform: other}, &reg)
	f.must(http.MethodPost, "/tasks", testSpec(), &resp)
	if !resp.NoWorker {
		t.Fatalf("incompatible-only farm accepted a task: %+v", resp)
	}
}

// TestWorkerRegistersMidFlight covers a worker joining while the
// executor is mid-DAG: submits that declined with NoWorker start
// succeeding as soon as a compatible worker registers, and the new
// worker drains the queue.
func TestWorkerRegistersMidFlight(t *testing.T) {
	f := newFarm(t, NewScheduler())
	var resp SubmitResponse
	f.must(http.MethodPost, "/tasks", testSpec(), &resp)
	if !resp.NoWorker {
		t.Fatalf("empty farm accepted a task: %+v", resp)
	}

	wid := f.register("late-joiner", 2)
	tid := f.submit()
	lt := f.lease(wid, 0)
	if lt == nil || lt.ID != tid {
		t.Fatalf("lease after mid-flight registration: got %+v, want task %s", lt, tid)
	}
	var st TaskStatus
	f.must(http.MethodPost, "/tasks/"+tid+"/result",
		ResultReport{WorkerID: wid, Payload: digest.FromBytes([]byte("r1"))}, &st)
	if st.State != StateDone {
		t.Fatalf("task state %q after result, want %q", st.State, StateDone)
	}
}

// TestDuplicateResultIdempotent covers exactly-once semantics at the
// control plane: once a task is terminal, later reports — retries, or
// a reassigned-away worker finishing anyway — are acknowledged without
// overwriting the recorded result.
func TestDuplicateResultIdempotent(t *testing.T) {
	f := newFarm(t, NewScheduler())
	wid := f.register("w", 1)
	tid := f.submit()
	if lt := f.lease(wid, 0); lt == nil || lt.ID != tid {
		t.Fatalf("lease: got %+v, want task %s", lt, tid)
	}

	first := digest.FromBytes([]byte("result-1"))
	second := digest.FromBytes([]byte("result-2"))
	var st TaskStatus
	f.must(http.MethodPost, "/tasks/"+tid+"/result", ResultReport{WorkerID: wid, Payload: first}, &st)
	if st.State != StateDone || st.Payload != first {
		t.Fatalf("first report: state %q payload %s", st.State, st.Payload)
	}
	// Duplicate from the same worker, then a conflicting report from an
	// unknown worker: both must be dropped on the floor.
	f.must(http.MethodPost, "/tasks/"+tid+"/result", ResultReport{WorkerID: wid, Payload: second}, &st)
	if st.State != StateDone || st.Payload != first {
		t.Fatalf("duplicate report overwrote result: state %q payload %s", st.State, st.Payload)
	}
	f.must(http.MethodPost, "/tasks/"+tid+"/result", ResultReport{WorkerID: "ghost", Error: "late failure"}, &st)
	if st.State != StateDone || st.Payload != first || st.Error != "" {
		t.Fatalf("post-terminal error report mutated task: %+v", st)
	}
	if got := f.taskStatus(tid, 0); got.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", got.Attempts)
	}
}

// TestHeartbeatMissReassigns covers the failure model's core promise: a
// task leased to a worker that stops heartbeating is requeued within
// the heartbeat window and a healthy worker picks it up.
func TestHeartbeatMissReassigns(t *testing.T) {
	sched := NewScheduler()
	sched.HeartbeatTimeout = 150 * time.Millisecond
	f := newFarm(t, sched)

	dead := f.register("flaky", 1)
	tid := f.submit()
	if lt := f.lease(dead, 0); lt == nil || lt.ID != tid {
		t.Fatalf("initial lease: got %+v, want task %s", lt, tid)
	}
	// "flaky" now goes silent. A healthy worker registers and polls;
	// its leases drive expiry, so the task must come back to it.
	alive := f.register("healthy", 1)
	var got *LeasedTask
	deadline := time.Now().Add(5 * time.Second)
	for got == nil && time.Now().Before(deadline) {
		got = f.lease(alive, 100*time.Millisecond)
	}
	if got == nil || got.ID != tid {
		t.Fatalf("task not reassigned to healthy worker, got %+v", got)
	}
	if st := f.taskStatus(tid, 0); st.State != StateRunning || st.Attempts != 2 {
		t.Fatalf("reassigned task: state %q attempts %d, want running/2", st.State, st.Attempts)
	}
	var st TaskStatus
	f.must(http.MethodPost, "/tasks/"+tid+"/result",
		ResultReport{WorkerID: alive, Payload: digest.FromBytes([]byte("ok"))}, &st)
	if st.State != StateDone {
		t.Fatalf("state %q after healthy result, want %q", st.State, StateDone)
	}

	// The silent worker is gone: its next heartbeat is told to
	// re-register.
	err := f.do(http.MethodPost, "/workers/"+dead+"/heartbeat", nil, &struct{}{})
	if !isStatus(err, http.StatusGone) {
		t.Fatalf("heartbeat of expired worker: %v, want 410", err)
	}
}

// TestAttemptBudgetFails covers the reassignment bound: a task whose
// every attempt ends in a worker failure is failed back to the
// executor instead of looping forever.
func TestAttemptBudgetFails(t *testing.T) {
	sched := NewScheduler()
	sched.MaxAttempts = 2
	f := newFarm(t, sched)
	wid := f.register("w", 1)
	tid := f.submit()

	for attempt := 1; ; attempt++ {
		lt := f.lease(wid, 0)
		if lt == nil {
			t.Fatalf("attempt %d: no lease", attempt)
		}
		var st TaskStatus
		f.must(http.MethodPost, "/tasks/"+tid+"/result",
			ResultReport{WorkerID: wid, Error: "compiler exploded"}, &st)
		if st.State == StateFailed {
			if attempt != 2 {
				t.Fatalf("failed after %d attempts, want 2", attempt)
			}
			if st.Error == "" {
				t.Fatal("failed task carries no error")
			}
			return
		}
		if attempt > 2 {
			t.Fatalf("task still %q after %d attempts", st.State, attempt)
		}
	}
}

// TestQueuedTasksFailWhenFarmEmpties covers executor liveness: queued
// tasks whose platform no live worker can serve fail promptly instead
// of pinning the executor to its full poll timeout.
func TestQueuedTasksFailWhenFarmEmpties(t *testing.T) {
	sched := NewScheduler()
	sched.HeartbeatTimeout = 100 * time.Millisecond
	f := newFarm(t, sched)
	wid := f.register("only", 1)
	running := f.submit()
	queued := f.submit()
	if lt := f.lease(wid, 0); lt == nil || lt.ID != running {
		t.Fatalf("lease: got %+v, want %s", lt, running)
	}
	// The only worker dies. Status polls drive expiry: the running task
	// requeues, then both queued tasks fail for want of workers.
	for _, tid := range []string{running, queued} {
		var st TaskStatus
		deadline := time.Now().Add(5 * time.Second)
		for {
			st = f.taskStatus(tid, 200*time.Millisecond)
			if st.Terminal() || time.Now().After(deadline) {
				break
			}
		}
		if st.State != StateFailed {
			t.Fatalf("task %s: state %q, want %q", tid, st.State, StateFailed)
		}
	}
}

func (f *farm) leaseBatch(worker string, max int, wait time.Duration) []*LeasedTask {
	f.t.Helper()
	var resp LeaseResponse
	f.must(http.MethodPost, "/lease?worker="+worker+"&max="+strconv.Itoa(max)+"&wait="+itoa(wait), nil, &resp)
	if resp.Task != nil && (len(resp.Tasks) == 0 || resp.Tasks[0].ID != resp.Task.ID) {
		f.t.Fatalf("lease response Task %v does not mirror Tasks[0] of %v", resp.Task, resp.Tasks)
	}
	return resp.Leased()
}

// TestLeaseBatchFillsSlotsPlusLookahead: a lone worker's batched poll
// is granted its free slots plus exactly one lookahead task — and no
// more, however large the queue or the requested budget.
func TestLeaseBatchFillsSlotsPlusLookahead(t *testing.T) {
	f := newFarm(t, NewScheduler())
	w := f.register("solo", 2)
	for i := 0; i < 5; i++ {
		f.submit()
	}
	got := f.leaseBatch(w, 4, 0)
	if len(got) != 3 {
		t.Fatalf("batch lease granted %d tasks, want 2 slots + 1 lookahead = 3", len(got))
	}
	// The lookahead is already out: the next poll gets nothing until
	// something is reported back.
	if again := f.leaseBatch(w, 4, 0); len(again) != 0 {
		t.Fatalf("second batch lease granted %d tasks while over capacity", len(again))
	}
	// Reporting one task frees a slot; the queue drains further.
	f.must(http.MethodPost, "/tasks/"+got[0].ID+"/result", ResultReport{WorkerID: w, Payload: digest.FromBytes([]byte("r"))}, nil)
	if next := f.leaseBatch(w, 4, 0); len(next) != 1 {
		t.Fatalf("post-report batch lease granted %d tasks, want 1", len(next))
	}
}

// TestLeaseBatchLeavesWorkForIdlePeer: lookahead must never starve an
// idle compatible worker — the batch stops at capacity while a peer
// has a free slot.
func TestLeaseBatchLeavesWorkForIdlePeer(t *testing.T) {
	f := newFarm(t, NewScheduler())
	w1 := f.register("first", 1)
	w2 := f.register("second", 1)
	for i := 0; i < 3; i++ {
		f.submit()
	}
	if got := f.leaseBatch(w1, 4, 0); len(got) != 1 {
		t.Fatalf("w1 granted %d tasks with an idle peer, want exactly its 1 slot", len(got))
	}
	// With w1 now saturated, w2 fills its slot and may take the
	// remaining task as lookahead.
	if got := f.leaseBatch(w2, 4, 0); len(got) != 2 {
		t.Fatalf("w2 granted %d tasks, want 1 slot + 1 lookahead", len(got))
	}
}

// TestLeaseSingleTaskCompat: a poll without ?max= behaves exactly as
// before batching — one task, mirrored in both response fields.
func TestLeaseSingleTaskCompat(t *testing.T) {
	f := newFarm(t, NewScheduler())
	w := f.register("legacy", 4)
	f.submit()
	f.submit()
	var resp LeaseResponse
	f.must(http.MethodPost, "/lease?worker="+w+"&wait=0", nil, &resp)
	if resp.Task == nil || len(resp.Tasks) != 1 || resp.Tasks[0].ID != resp.Task.ID {
		t.Fatalf("single lease response = %+v, want one task mirrored in Task and Tasks", resp)
	}
}
