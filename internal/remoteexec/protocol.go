// Package remoteexec is the build farm for rebuild actions: an
// executor-worker protocol over HTTP (stdlib-only, in the registry's
// style) that moves cache-miss toolchain commands from the rebuilding
// client onto a pool of registered workers.
//
// The pieces:
//
//   - Scheduler: an HTTP service (mounted beside a registry's /v2/
//     tree, or standalone) where workers register, heartbeat and lease
//     tasks, and executors submit ready actions from the rebuild DAG
//     and long-poll their completion. Assignment is capacity-aware:
//     a worker only holds as many tasks as it has free slots, and
//     tasks carry platform properties (ISA, toolchain-registry
//     fingerprint) a worker must match.
//
//   - Worker: registers with its slot count and platform, leases
//     tasks, materializes the executor's file-system snapshot from
//     registry blobs (moved through the distrib client), runs the
//     command through toolchain.Runner, publishes the observed
//     inputs/outputs as a payload blob, and writes the action-cache
//     entries through to the shared actioncache.RemoteCache so every
//     farm execution warms the fleet cache.
//
//   - Executor: the client side wired into backend.executeGraph via
//     toolchain.Runner's Remote hook. It pushes the rebuild
//     file system once per session as a content-addressed tree, ships
//     each ready action (plus an overlay of its transitive
//     dependencies' outputs), and re-observes the returned inputs
//     against its own file system before recording the result — the
//     local action cache stays executor-authoritative.
//
// Failure model: workers that miss heartbeats are expired lazily by
// the scheduler's long-poll loops and their in-flight tasks requeued
// (bounded attempts); a farm with no compatible worker declines at
// submit time; every farm error degrades to local execution, so a
// rebuild never fails because the farm did.
package remoteexec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"comtainer/internal/actioncache"
	"comtainer/internal/digest"
)

// APIPrefix roots every farm endpoint, so a scheduler can share a mux
// with a registry's /v2/ tree.
const APIPrefix = "/farm/v1"

// DefaultRepo is the registry repository holding execution blobs
// (tree snapshots, overlays, result payloads).
const DefaultRepo = "comtainer-exec"

// Platform is the execution compatibility contract between a task and
// a worker: the ISA the toolchain targets and the fingerprint of the
// toolchain registry the command must run under. System is
// informational (status output); only ISA and Toolchains gate
// assignment.
type Platform struct {
	ISA        string `json:"isa"`
	System     string `json:"system,omitempty"`
	Toolchains string `json:"toolchains"`
}

// Compatible reports whether a worker with platform w can run a task
// demanding platform t.
func (w Platform) Compatible(t Platform) bool {
	return w.ISA == t.ISA && w.Toolchains == t.Toolchains
}

// RegisterRequest is a worker announcing itself.
type RegisterRequest struct {
	Name     string   `json:"name"`
	Slots    int      `json:"slots"`
	Platform Platform `json:"platform"`
}

// RegisterResponse carries the scheduler-assigned worker identity and
// the heartbeat interval the worker must honor.
type RegisterResponse struct {
	WorkerID        string `json:"workerId"`
	HeartbeatMillis int64  `json:"heartbeatMillis"`
}

// TaskSpec is one rebuild command shipped to the farm.
type TaskSpec struct {
	Argv []string `json:"argv"`
	Cwd  string   `json:"cwd"`
	// Platform the command must execute under.
	Platform Platform `json:"platform"`
	// Repo is the registry repository holding BaseTree and Overlay.
	Repo string `json:"repo"`
	// BaseTree is the digest of the session's file-system snapshot
	// (see tree.go), pushed once per rebuild.
	BaseTree digest.Digest `json:"baseTree"`
	// Overlay, when non-empty, is the digest of a payload blob whose
	// outputs (the transitive dependencies' products) are applied on
	// top of the base tree before execution.
	Overlay digest.Digest `json:"overlay,omitempty"`
}

// SubmitResponse answers a task submission. NoWorker means the farm
// currently has no live worker compatible with the task's platform;
// the executor runs the command locally instead.
type SubmitResponse struct {
	TaskID   string `json:"taskId,omitempty"`
	NoWorker bool   `json:"noWorker,omitempty"`
}

// LeasedTask is a task handed to a worker.
type LeasedTask struct {
	ID   string   `json:"id"`
	Spec TaskSpec `json:"spec"`
}

// LeaseResponse answers a worker's lease poll. Tasks carries the
// batch granted against the poll's ?max= budget (oldest first); Task
// duplicates the first entry so pre-batch workers keep functioning
// against a new scheduler. Both empty means the poll timed out with
// nothing assignable.
type LeaseResponse struct {
	Task  *LeasedTask   `json:"task,omitempty"`
	Tasks []*LeasedTask `json:"tasks,omitempty"`
}

// Leased returns the granted batch, normalizing a single-task
// (pre-batch scheduler) response into a one-element slice.
func (r LeaseResponse) Leased() []*LeasedTask {
	if len(r.Tasks) > 0 {
		return r.Tasks
	}
	if r.Task != nil {
		return []*LeasedTask{r.Task}
	}
	return nil
}

// ResultReport is a worker reporting a finished task. A successful
// execution carries the digest of the payload blob (pushed to the
// task's Repo before reporting); a failed one carries Error.
type ResultReport struct {
	WorkerID string        `json:"workerId"`
	Payload  digest.Digest `json:"payload,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Task states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// TaskStatus is the executor-visible state of a submitted task.
type TaskStatus struct {
	ID       string        `json:"id"`
	State    string        `json:"state"`
	Attempts int           `json:"attempts"`
	Payload  digest.Digest `json:"payload,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Terminal reports whether the task has reached a final state.
func (s TaskStatus) Terminal() bool { return s.State == StateDone || s.State == StateFailed }

// WorkerStatus is one worker's row in the farm status.
type WorkerStatus struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Slots    int      `json:"slots"`
	Inflight int      `json:"inflight"`
	Platform Platform `json:"platform"`
}

// FarmStatus is the scheduler's aggregate view.
type FarmStatus struct {
	Workers []WorkerStatus `json:"workers"`
	Queued  int            `json:"queued"`
	Running int            `json:"running"`
	Done    int            `json:"done"`
	Failed  int            `json:"failed"`
}

// Payload is the input/output record of one executed action (and,
// with Inputs empty, the overlay format for dependency outputs). The
// worker observes Inputs on its materialized snapshot; the executor
// re-observes them against its own file system before caching, so a
// worker can never poison the executor's cache with stale states.
type Payload struct {
	Inputs  []actioncache.Input  `json:"inputs,omitempty"`
	Outputs []actioncache.Output `json:"outputs,omitempty"`
	// Cacheable marks payloads produced through the action-cache
	// protocol (manifest+result observed); overlays leave it false.
	Cacheable bool `json:"cacheable,omitempty"`
}

const payloadMagic = "#!COMT-EXEC-PAYLOAD\n"

// EncodePayload serializes p with a magic prefix.
func EncodePayload(p Payload) []byte {
	b, err := json.Marshal(p)
	if err != nil {
		panic("remoteexec: marshaling payload: " + err.Error())
	}
	return append([]byte(payloadMagic), b...)
}

// DecodePayload parses bytes produced by EncodePayload.
func DecodePayload(b []byte) (Payload, error) {
	var p Payload
	rest, ok := strings.CutPrefix(string(b), payloadMagic)
	if !ok {
		return p, fmt.Errorf("remoteexec: missing %q magic", strings.TrimSpace(payloadMagic))
	}
	if err := json.Unmarshal([]byte(rest), &p); err != nil {
		return p, fmt.Errorf("remoteexec: decoding payload: %w", err)
	}
	return p, nil
}

// --- small HTTP/JSON plumbing shared by worker and executor ---

// httpError is a non-2xx scheduler response.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// isStatus reports whether err is an httpError with the given status.
func isStatus(err error, status int) bool {
	var he *httpError
	return errors.As(err, &he) && he.status == status
}

// doJSON performs one request with a JSON body (nil in = no body) and
// decodes the JSON response into out (nil out = discard). Non-2xx
// statuses become errors carrying the response text.
func doJSON(ctx context.Context, hc *http.Client, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("remoteexec: marshaling request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &httpError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("remoteexec: %s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(msg))),
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("remoteexec: decoding %s response: %w", url, err)
	}
	return nil
}
