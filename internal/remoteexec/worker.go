package remoteexec

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sync"
	"time"

	"comtainer/internal/actioncache"
	"comtainer/internal/core/ctxutil"
	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/fsim"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

// leaseWaitMillis is how long a worker's lease poll parks on the
// scheduler before coming back empty.
const leaseWaitMillis = 1000

// reportAttempts bounds result-report retries. The report is the
// acknowledgement handshake: a worker keeps resubmitting until the
// scheduler confirms, so an acknowledged result is never lost, and an
// unacknowledged one is re-executed (same content-addressed payload)
// after heartbeat expiry.
const reportAttempts = 5

// Worker executes farm tasks: it registers with the scheduler,
// heartbeats, leases ready actions, runs them on a materialized
// snapshot of the executor's file system, and publishes the results
// as payload blobs — writing the action-cache entries through to the
// shared remote cache along the way.
type Worker struct {
	// Scheduler is the farm base URL (the host also serving /farm/v1).
	Scheduler string
	// Client moves blobs to/from the registry; its HTTP client also
	// carries the scheduler traffic, so a fault-injecting transport
	// wraps every wire interaction at once.
	Client *distrib.Client
	// Name labels the worker in status output.
	Name string
	// Slots is how many tasks run concurrently (min 1).
	Slots int
	// Platform is what the worker advertises at registration.
	Platform Platform
	// Registry is the toolchain registry commands execute under; its
	// fingerprint must match Platform.Toolchains.
	Registry *toolchain.Registry
	// Cache, when set, receives every action-cache entry this worker
	// produces (usually an actioncache.RemoteCache), so farm
	// executions warm the fleet-wide cache. Entries already present
	// there short-circuit execution entirely.
	Cache actioncache.Cache
	// ExecDelay simulates per-action compute time — the knob the
	// scaling benchmark turns to make wall-clock speedup observable.
	ExecDelay time.Duration

	treeMu sync.Mutex
	trees  map[digest.Digest]*fsim.FS

	overlayMu sync.Mutex
	overlays  map[digest.Digest]Payload // prefetched, consumed on use
}

// NewWorker returns a worker for the farm at scheduler, executing
// under reg on behalf of sys. The same URL serves blob traffic.
func NewWorker(scheduler string, sys *sysprofile.System, reg *toolchain.Registry) *Worker {
	return &Worker{
		Scheduler: scheduler,
		Client:    distrib.NewClient(scheduler),
		Name:      sys.Name,
		Slots:     1,
		Platform:  Platform{ISA: sys.ISA, System: sys.Name, Toolchains: reg.Fingerprint()},
		Registry:  reg,
	}
}

func (w *Worker) httpClient() *http.Client {
	if w.Client != nil && w.Client.HTTP != nil {
		return w.Client.HTTP
	}
	return http.DefaultClient
}

// Run registers and serves until ctx is cancelled (returning
// ctx.Err()) or the scheduler expires the worker (returning the
// expiry error). Heartbeat and slot loops are joined before return.
func (w *Worker) Run(ctx context.Context) error {
	var reg RegisterResponse
	req := RegisterRequest{Name: w.Name, Slots: w.Slots, Platform: w.Platform}
	if err := doJSON(ctx, w.httpClient(), http.MethodPost, w.Scheduler+APIPrefix+"/workers", req, &reg); err != nil {
		return fmt.Errorf("remoteexec: registering worker: %w", err)
	}
	interval := time.Duration(reg.HeartbeatMillis) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	slots := w.Slots
	if slots <= 0 {
		slots = 1
	}
	errc := make(chan error, slots+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.heartbeatLoop(ctx, reg.WorkerID, interval); err != nil {
			errc <- err
			cancel()
		}
	}()
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.slotLoop(ctx, reg.WorkerID); err != nil {
				errc <- err
				cancel()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return ctx.Err()
}

// heartbeatLoop beats at the registered interval. Transient delivery
// failures are retried on the next beat (the expiry window leaves
// room for two losses); a 410 means the scheduler already expired us
// and is fatal — the operator restarts the worker.
func (w *Worker) heartbeatLoop(ctx context.Context, id string, interval time.Duration) error {
	url := w.Scheduler + APIPrefix + "/workers/" + id + "/heartbeat"
	for {
		if err := ctxutil.Sleep(ctx, interval); err != nil {
			return err
		}
		err := doJSON(ctx, w.httpClient(), http.MethodPost, url, struct{}{}, nil)
		if isStatus(err, http.StatusGone) {
			return fmt.Errorf("remoteexec: worker %s expired by scheduler: %w", id, err)
		}
	}
}

// slotLoop is one execution slot: lease a small batch, execute each
// task while prefetching the next one's inputs, report, repeat. The
// batch (?max=2: the running task plus one lookahead) pipelines the
// network — snapshot and overlay of task N+1 download while task N
// computes — without hoarding: the scheduler only grants lookahead no
// idle peer could take.
func (w *Worker) slotLoop(ctx context.Context, id string) error {
	leaseURL := fmt.Sprintf("%s%s/lease?worker=%s&wait=%d&max=2", w.Scheduler, APIPrefix, id, leaseWaitMillis)
	var pending []*LeasedTask
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(pending) == 0 {
			var lr LeaseResponse
			if err := doJSON(ctx, w.httpClient(), http.MethodPost, leaseURL, nil, &lr); err != nil {
				if isStatus(err, http.StatusGone) {
					return fmt.Errorf("remoteexec: worker %s expired by scheduler: %w", id, err)
				}
				if err := ctxutil.Sleep(ctx, 50*time.Millisecond); err != nil {
					return err
				}
				continue
			}
			pending = lr.Leased()
			continue
		}
		t := pending[0]
		pending = pending[1:]
		var pf sync.WaitGroup
		if len(pending) > 0 {
			next := pending[0]
			pf.Add(1)
			go func() {
				defer pf.Done()
				w.prefetchTask(ctx, next)
			}()
		}
		rep := ResultReport{WorkerID: id}
		payload, err := w.executeTask(ctx, t)
		pf.Wait()
		if err != nil {
			if ctx.Err() != nil {
				// Killed mid-action: report nothing; heartbeat expiry
				// requeues the task on a surviving worker.
				return ctx.Err()
			}
			rep.Error = err.Error()
		} else {
			rep.Payload = payload
		}
		if err := w.report(ctx, t.ID, rep); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// prefetchTask warms the inputs of an upcoming task — the memoized
// base snapshot and the overlay payload — so execution starts without
// waiting on the wire. Best-effort: a failed prefetch just means
// executeTask fetches for real.
func (w *Worker) prefetchTask(ctx context.Context, t *LeasedTask) {
	repo := t.Spec.Repo
	if repo == "" {
		repo = DefaultRepo
	}
	if fsys, err := w.baseFS(ctx, repo, t.Spec.BaseTree); err == nil {
		_ = fsys // memoized under treeMu; the clone is discarded
	}
	if t.Spec.Overlay == "" {
		return
	}
	p, err := FetchPayload(ctx, w.Client, repo, t.Spec.Overlay)
	if err != nil {
		return
	}
	w.overlayMu.Lock()
	if w.overlays == nil {
		w.overlays = make(map[digest.Digest]Payload)
	}
	w.overlays[t.Spec.Overlay] = p
	w.overlayMu.Unlock()
}

// fetchOverlay returns (and consumes) a prefetched overlay payload,
// falling back to the registry. Single use keeps the stash bounded by
// the lookahead depth.
func (w *Worker) fetchOverlay(ctx context.Context, repo string, d digest.Digest) (Payload, error) {
	w.overlayMu.Lock()
	p, ok := w.overlays[d]
	if ok {
		delete(w.overlays, d)
	}
	w.overlayMu.Unlock()
	if ok {
		return p, nil
	}
	return FetchPayload(ctx, w.Client, repo, d)
}

// report resubmits until the scheduler acknowledges (idempotent on
// its side) or the attempt budget runs out.
func (w *Worker) report(ctx context.Context, taskID string, rep ResultReport) error {
	url := w.Scheduler + APIPrefix + "/tasks/" + taskID + "/result"
	var last error
	for attempt := 0; attempt < reportAttempts; attempt++ {
		if attempt > 0 {
			if err := ctxutil.Sleep(ctx, time.Duration(attempt)*50*time.Millisecond); err != nil {
				return err
			}
		}
		var st TaskStatus
		last = doJSON(ctx, w.httpClient(), http.MethodPost, url, rep, &st)
		if last == nil {
			return nil
		}
		if isStatus(last, http.StatusNotFound) {
			return last
		}
	}
	return last
}

// baseFS materializes (and memoizes) the session snapshot td; callers
// receive a private clone to mutate.
func (w *Worker) baseFS(ctx context.Context, repo string, td digest.Digest) (*fsim.FS, error) {
	w.treeMu.Lock()
	defer w.treeMu.Unlock()
	if cached, ok := w.trees[td]; ok {
		return cached.Clone(), nil
	}
	fsys, err := FetchTree(ctx, w.Client, repo, td)
	if err != nil {
		return nil, err
	}
	if w.trees == nil {
		w.trees = make(map[digest.Digest]*fsim.FS)
	}
	w.trees[td] = fsys
	return fsys.Clone(), nil
}

// executeTask runs one leased action and publishes its payload blob,
// returning the blob digest the result report carries.
func (w *Worker) executeTask(ctx context.Context, t *LeasedTask) (digest.Digest, error) {
	repo := t.Spec.Repo
	if repo == "" {
		repo = DefaultRepo
	}
	fsys, err := w.baseFS(ctx, repo, t.Spec.BaseTree)
	if err != nil {
		return "", err
	}
	if t.Spec.Overlay != "" {
		ov, err := w.fetchOverlay(ctx, repo, t.Spec.Overlay)
		if err != nil {
			return "", err
		}
		for _, out := range ov.Outputs {
			fsys.WriteFile(out.Path, out.Data, fs.FileMode(out.Mode))
		}
	}
	if w.ExecDelay > 0 {
		if err := ctxutil.Sleep(ctx, w.ExecDelay); err != nil {
			return "", err
		}
	}

	capture := &captureCache{next: w.Cache}
	runner := toolchain.NewRunner(fsys, w.Registry)
	runner.Memo = actioncache.NewMemoizer(capture)
	if err := fsys.MkdirAll(t.Spec.Cwd, 0o755); err != nil {
		return "", fmt.Errorf("remoteexec: creating cwd %s: %w", t.Spec.Cwd, err)
	}
	runner.Cwd = fsim.Clean(t.Spec.Cwd)
	if err := runner.Run(t.Spec.Argv); err != nil {
		return "", fmt.Errorf("remoteexec: executing task %s: %w", t.ID, err)
	}
	p, err := capture.payload()
	if err != nil {
		return "", fmt.Errorf("remoteexec: task %s: %w", t.ID, err)
	}
	return PushPayload(ctx, w.Client, repo, p)
}

// captureCache sits under the worker's per-task memoizer: it records
// the manifest and result documents flowing through (in either
// direction — a shared-cache hit Gets them, a fresh execution Puts
// them) and forwards writes to the shared remote tier so the farm
// warms the fleet cache. One instance serves exactly one action.
type captureCache struct {
	next actioncache.Cache

	mu       sync.Mutex
	manifest []byte
	result   []byte
}

func (c *captureCache) Get(key digest.Digest) ([]byte, bool, error) {
	if c.next == nil {
		return nil, false, nil
	}
	val, ok, err := c.next.Get(key)
	if ok && err == nil {
		c.note(val)
	}
	return val, ok, err
}

func (c *captureCache) Put(key digest.Digest, val []byte) error {
	c.note(val)
	if c.next == nil {
		return nil
	}
	return c.next.Put(key, val)
}

func (c *captureCache) Stats() actioncache.Stats {
	if c.next == nil {
		return actioncache.Stats{}
	}
	return c.next.Stats()
}

// note files val under manifest or result by its magic prefix.
func (c *captureCache) note(val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := actioncache.DecodeManifest(val); err == nil {
		c.manifest = append([]byte(nil), val...)
		return
	}
	if _, err := actioncache.DecodeResult(val); err == nil {
		c.result = append([]byte(nil), val...)
	}
}

// payload assembles the task's wire result from the captured cache
// documents.
func (c *captureCache) payload() (Payload, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manifest == nil || c.result == nil {
		return Payload{}, fmt.Errorf("command produced no action-cache documents (not cacheable?)")
	}
	man, err := actioncache.DecodeManifest(c.manifest)
	if err != nil {
		return Payload{}, err
	}
	res, err := actioncache.DecodeResult(c.result)
	if err != nil {
		return Payload{}, err
	}
	return Payload{Inputs: man.Inputs, Outputs: res.Outputs, Cacheable: true}, nil
}
