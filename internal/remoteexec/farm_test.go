// End-to-end and chaos tests of the build farm: full rebuilds routed
// through real workers over HTTP, with fault injection on the worker's
// wire and workers killed mid-action. External test package so the
// farm can be driven through core.SystemSide exactly as the CLI does.
package remoteexec_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"comtainer/internal/actioncache"
	"comtainer/internal/core"
	"comtainer/internal/core/adapter"
	"comtainer/internal/faultinject"
	"comtainer/internal/oci"
	"comtainer/internal/registry"
	"comtainer/internal/remoteexec"
	"comtainer/internal/sysprofile"
	"comtainer/internal/workloads"
)

// testFarm is a combined scheduler+registry endpoint plus its worker
// fleet, torn down (workers joined) via t.Cleanup.
type testFarm struct {
	t     *testing.T
	sched *remoteexec.Scheduler
	srv   *registry.Server
	ts    *httptest.Server
	wg    sync.WaitGroup
}

func startFarm(t *testing.T, sched *remoteexec.Scheduler) *testFarm {
	t.Helper()
	f := &testFarm{t: t, sched: sched, srv: registry.NewServer()}
	mux := http.NewServeMux()
	mux.Handle(remoteexec.APIPrefix+"/", sched.Handler())
	mux.Handle("/", f.srv.Handler())
	f.ts = httptest.NewServer(mux)
	t.Cleanup(func() {
		f.wg.Wait()
		f.ts.Close()
	})
	return f
}

// startWorker launches a worker (with the shared remote action cache
// wired in) and waits until the scheduler has registered it. The
// returned cancel kills the worker; all workers are joined at cleanup.
func (f *testFarm) startWorker(sys *sysprofile.System, mutate func(*remoteexec.Worker)) context.CancelFunc {
	f.t.Helper()
	w := remoteexec.NewWorker(f.ts.URL, sys, sys.Toolchains)
	w.Cache = actioncache.NewRemoteCacheClient(w.Client, "")
	if mutate != nil {
		mutate(w)
	}
	before := len(f.sched.Status().Workers)
	ctx, cancel := context.WithCancel(context.Background())
	f.t.Cleanup(cancel)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		_ = w.Run(ctx) // lifecycle errors surface as farm-level fallback
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(f.sched.Status().Workers) <= before {
		if time.Now().After(deadline) {
			f.t.Fatalf("worker %s did not register in time", w.Name)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cancel
}

// actionTags lists the farm registry's action-cache tags ("ac-<hex>"),
// i.e. the manifest/result documents workers wrote through.
func (f *testFarm) actionTags() []string {
	var out []string
	for _, key := range f.srv.Tags() {
		if strings.Contains(key, ":ac-") {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// buildApp builds one workload's extended image on a fresh user side.
func buildApp(t *testing.T, sys *sysprofile.System, name string) (*core.UserSide, core.BuildResult) {
	t.Helper()
	user, err := core.NewUserSide(sys.ISA)
	if err != nil {
		t.Fatal(err)
	}
	app, err := workloads.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := user.BuildExtended(app)
	if err != nil {
		t.Fatal(err)
	}
	return user, res
}

// rebuild pulls and rebuilds the app on a fresh system side, wiring in
// the given executor (nil = all-local), and returns the +coMre digest.
func rebuild(t *testing.T, sys *sysprofile.System, user *core.UserSide, res core.BuildResult, farm *remoteexec.Executor) oci.Descriptor {
	t.Helper()
	system, err := core.NewSystemSide(sys)
	if err != nil {
		t.Fatal(err)
	}
	system.RebuildWorkers = 4
	system.RemoteExec = farm
	if err := system.Pull(user.Repo, res.ExtendedTag); err != nil {
		t.Fatal(err)
	}
	desc, _, err := system.Rebuild(res.DistTag, adapter.DefaultAdapted(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// TestFarmRebuildEndToEnd routes an uncached rebuild entirely through
// farm workers and checks the result is byte-identical to a local
// rebuild, with every cacheable action executed remotely and its
// cache documents written through to the registry exactly once.
func TestFarmRebuildEndToEnd(t *testing.T) {
	sys := sysprofile.X86Cluster()
	user, res := buildApp(t, sys, "hpccg")
	local := rebuild(t, sys, user, res, nil)

	f := startFarm(t, remoteexec.NewScheduler())
	f.startWorker(sys, nil)
	f.startWorker(sys, nil)

	exec := remoteexec.NewExecutor(f.ts.URL, sys, sys.Toolchains)
	remote := rebuild(t, sys, user, res, exec)
	if remote.Digest != local.Digest {
		t.Fatalf("remote rebuild digest %s differs from local %s", remote.Digest, local.Digest)
	}
	st := exec.Stats()
	if st.Remote == 0 || st.Local != 0 || st.Errors != 0 {
		t.Fatalf("executor stats %s: want every action remote", st)
	}
	tags := f.actionTags()
	// Each remotely executed action writes exactly one manifest and one
	// result document; content addressing makes re-writes idempotent.
	if len(tags) != int(2*st.Remote) {
		t.Fatalf("%d action-cache tags for %d remote actions, want exactly 2 per action:\n%s",
			len(tags), st.Remote, strings.Join(tags, "\n"))
	}

	// A second identical rebuild replays from the farm's shared action
	// cache: same digest, same tag set — nothing duplicated.
	exec2 := remoteexec.NewExecutor(f.ts.URL, sys, sys.Toolchains)
	again := rebuild(t, sys, user, res, exec2)
	if again.Digest != local.Digest {
		t.Fatalf("repeat remote rebuild digest %s differs from local %s", again.Digest, local.Digest)
	}
	if got := f.actionTags(); strings.Join(got, ",") != strings.Join(tags, ",") {
		t.Fatalf("repeat rebuild changed the action-cache tag set:\nbefore: %v\nafter:  %v", tags, got)
	}
}

// TestFarmZeroWorkersFallsBackLocal checks the executor degrades to
// local execution when the farm has no workers at all — the rebuild
// still completes and produces the same image.
func TestFarmZeroWorkersFallsBackLocal(t *testing.T) {
	sys := sysprofile.X86Cluster()
	user, res := buildApp(t, sys, "hpccg")
	local := rebuild(t, sys, user, res, nil)

	f := startFarm(t, remoteexec.NewScheduler())
	exec := remoteexec.NewExecutor(f.ts.URL, sys, sys.Toolchains)
	remote := rebuild(t, sys, user, res, exec)
	if remote.Digest != local.Digest {
		t.Fatalf("fallback rebuild digest %s differs from local %s", remote.Digest, local.Digest)
	}
	st := exec.Stats()
	if st.Remote != 0 || st.Local == 0 {
		t.Fatalf("executor stats %s: want every action local", st)
	}
}

// TestChaosWorkerKilledMidAction kills a worker while it holds leased
// actions. The scheduler must notice the missed heartbeats, requeue
// the worker's in-flight tasks onto the survivor, and the DAG must
// complete with the action cache holding each result exactly once.
func TestChaosWorkerKilledMidAction(t *testing.T) {
	sys := sysprofile.X86Cluster()
	user, res := buildApp(t, sys, "hpccg")
	local := rebuild(t, sys, user, res, nil)

	sched := remoteexec.NewScheduler()
	sched.HeartbeatTimeout = 300 * time.Millisecond
	f := startFarm(t, sched)
	slow := func(w *remoteexec.Worker) {
		w.Slots = 2
		w.ExecDelay = 150 * time.Millisecond
	}
	killVictim := f.startWorker(sys, slow)
	f.startWorker(sys, slow)

	// Kill the victim as soon as it holds a task: its lease dies with
	// it, unreported, and must come back via heartbeat expiry.
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if st := f.sched.Status(); st.Running > 0 {
				killVictim()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	exec := remoteexec.NewExecutor(f.ts.URL, sys, sys.Toolchains)
	remote := rebuild(t, sys, user, res, exec)
	<-done
	if remote.Digest != local.Digest {
		t.Fatalf("post-chaos rebuild digest %s differs from local %s", remote.Digest, local.Digest)
	}
	st := exec.Stats()
	if st.Remote == 0 {
		t.Fatalf("executor stats %s: no action survived on the farm", st)
	}
	farm := f.sched.Status()
	if farm.Queued != 0 || farm.Running != 0 {
		t.Fatalf("farm left non-terminal tasks behind: %+v", farm)
	}
	// Exactly-once: requeued actions re-executed on the survivor write
	// the same content-addressed documents; no duplicates, no losses
	// among the remotely completed set.
	if tags := f.actionTags(); len(tags) < int(2*st.Remote) {
		t.Fatalf("%d action-cache tags for %d remote actions, want at least 2 per action", len(tags), st.Remote)
	}
}

// lossyUploads faults result reports and all blob traffic (payload
// uploads included) while letting registration, heartbeats and leases
// through clean, so the chaos targets the result path specifically.
type lossyUploads struct {
	faulty, clean http.RoundTripper
}

func (l lossyUploads) RoundTrip(req *http.Request) (*http.Response, error) {
	p := req.URL.Path
	if strings.Contains(p, "/result") || strings.Contains(p, "/v2/") {
		return l.faulty.RoundTrip(req)
	}
	return l.clean.RoundTrip(req)
}

// TestChaosLossyResultUploads runs a worker whose result reports and
// blob transfers (payload uploads, snapshot fetches) fail with
// injected drops, 503s and truncations, alongside one healthy worker.
// Worker-side report retries and scheduler-side requeues must absorb
// the faults: the DAG completes and matches the local rebuild.
func TestChaosLossyResultUploads(t *testing.T) {
	sys := sysprofile.X86Cluster()
	user, res := buildApp(t, sys, "hpccg")
	local := rebuild(t, sys, user, res, nil)

	sched := remoteexec.NewScheduler()
	sched.HeartbeatTimeout = 500 * time.Millisecond
	// Generous attempt budget: the lossy worker may burn several.
	sched.MaxAttempts = 10
	f := startFarm(t, sched)
	plan := faultinject.NewPlan(42).
		Rate(faultinject.Drop, 0.10).
		Rate(faultinject.HTTP500, 0.05).
		Rate(faultinject.Truncate, 0.05)
	f.startWorker(sys, func(w *remoteexec.Worker) {
		w.Name = "lossy"
		w.Client.HTTP = &http.Client{Transport: lossyUploads{
			faulty: faultinject.NewTransport(http.DefaultTransport, plan),
			clean:  http.DefaultTransport,
		}}
	})
	f.startWorker(sys, func(w *remoteexec.Worker) { w.Name = "clean" })

	exec := remoteexec.NewExecutor(f.ts.URL, sys, sys.Toolchains)
	remote := rebuild(t, sys, user, res, exec)
	if remote.Digest != local.Digest {
		t.Fatalf("post-chaos rebuild digest %s differs from local %s", remote.Digest, local.Digest)
	}
	st := exec.Stats()
	if st.Remote == 0 {
		t.Fatalf("executor stats %s: no action survived on the farm", st)
	}
	farm := f.sched.Status()
	if farm.Queued != 0 || farm.Running != 0 {
		t.Fatalf("farm left non-terminal tasks behind: %+v", farm)
	}
	if tags := f.actionTags(); len(tags) < int(2*st.Remote) {
		t.Fatalf("%d action-cache tags for %d remote actions, want at least 2 per action", len(tags), st.Remote)
	}
}
