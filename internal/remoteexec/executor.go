package remoteexec

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"comtainer/internal/actioncache"
	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/fsim"
	"comtainer/internal/sysprofile"
	"comtainer/internal/toolchain"
)

// DefaultExecTimeout bounds one action's full farm round trip
// (overlay push, submit, completion wait, payload fetch) when the
// executor has no explicit Timeout. On expiry the action falls back
// to local execution; the rebuild never blocks on a wedged farm.
const DefaultExecTimeout = 2 * time.Minute

// statusWaitMillis is the long-poll window of one completion check.
const statusWaitMillis = 2000

// ExecStats counts where a rebuild's cache-miss actions ran.
type ExecStats struct {
	// Remote actions completed on farm workers.
	Remote int64
	// Local actions that fell back to local execution (farm declined,
	// failed, or was never prepared).
	Local int64
	// Errors counts farm round trips that ended in an error (a subset
	// of Local).
	Errors int64
}

func (s ExecStats) String() string {
	return fmt.Sprintf("%d remote, %d local (%d farm errors)", s.Remote, s.Local, s.Errors)
}

// Executor is the client side of the farm, wired into the rebuild
// scheduler through toolchain.Runner's Remote hook. Prepare ships the
// rebuild file system once as a content-addressed tree; Execute ships
// one ready action (with an overlay of its transitive dependencies'
// outputs) and returns the worker-observed result, or (nil, nil) to
// signal "run it locally". Safe for concurrent use.
type Executor struct {
	// Scheduler is the farm base URL (also serving /v2/ blob traffic).
	Scheduler string
	// Client moves the snapshot, overlays and payloads.
	Client *distrib.Client
	// Repo is the registry repository for execution blobs
	// (DefaultRepo when empty).
	Repo string
	// Platform every shipped task demands.
	Platform Platform
	// Timeout bounds each action's farm round trip
	// (DefaultExecTimeout when zero; negative disables).
	Timeout time.Duration

	mu       sync.Mutex
	prepared bool
	baseTree digest.Digest

	remote, local, errs atomic.Int64
}

// NewExecutor returns an executor submitting to the farm at
// scheduler, demanding sys's ISA under reg's toolchain fingerprint.
func NewExecutor(scheduler string, sys *sysprofile.System, reg *toolchain.Registry) *Executor {
	return &Executor{
		Scheduler: scheduler,
		Client:    distrib.NewClient(scheduler),
		Platform:  Platform{ISA: sys.ISA, System: sys.Name, Toolchains: reg.Fingerprint()},
	}
}

func (e *Executor) repo() string {
	if e.Repo != "" {
		return e.Repo
	}
	return DefaultRepo
}

func (e *Executor) httpClient() *http.Client {
	if e.Client != nil && e.Client.HTTP != nil {
		return e.Client.HTTP
	}
	return http.DefaultClient
}

func (e *Executor) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	d := e.Timeout
	if d == 0 {
		d = DefaultExecTimeout
	}
	if d < 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// Stats snapshots the executor's routing counters.
func (e *Executor) Stats() ExecStats {
	return ExecStats{Remote: e.remote.Load(), Local: e.local.Load(), Errors: e.errs.Load()}
}

// Prepare publishes fsys as the session's base tree under the default
// per-op deadline. Until it succeeds every Execute declines, so a
// failed Prepare degrades the whole rebuild to local execution.
func (e *Executor) Prepare(fsys *fsim.FS) error {
	//comtainer:allow ctxflow -- Prepare is called from the ctx-free rebuild path; the root is bounded by the per-op Timeout opCtx applies, and ctx-aware callers use PrepareContext
	return e.PrepareContext(context.Background(), fsys)
}

// PrepareContext is Prepare honoring ctx.
func (e *Executor) PrepareContext(ctx context.Context, fsys *fsim.FS) error {
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	td, err := PushTree(ctx, e.Client, e.repo(), fsys)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.baseTree = td
	e.prepared = true
	e.mu.Unlock()
	return nil
}

// Execute offers one cache-missed command to the farm under the
// default per-op deadline. overlay is the outputs of the command's
// transitive dependencies, applied over the base tree on the worker.
// Any farm-side problem — no compatible worker, exhausted attempts,
// timeouts, transport failures — returns (nil, nil): the caller runs
// the command locally and the rebuild proceeds.
func (e *Executor) Execute(argv []string, cwd string, overlay []actioncache.Output) (*toolchain.RemoteResult, error) {
	//comtainer:allow ctxflow -- Execute implements toolchain.RemoteExec, a ctx-free hook invoked from the rebuild DAG workers; the root is bounded by the per-op Timeout opCtx applies, and ctx-aware callers use ExecuteContext
	return e.ExecuteContext(context.Background(), argv, cwd, overlay)
}

// ExecuteContext is Execute honoring ctx.
func (e *Executor) ExecuteContext(ctx context.Context, argv []string, cwd string, overlay []actioncache.Output) (*toolchain.RemoteResult, error) {
	e.mu.Lock()
	prepared, base := e.prepared, e.baseTree
	e.mu.Unlock()
	if !prepared {
		e.local.Add(1)
		return nil, nil
	}
	ctx, cancel := e.opCtx(ctx)
	defer cancel()
	rr, err := e.tryFarm(ctx, argv, cwd, overlay, base)
	if err != nil || rr == nil {
		if err != nil {
			e.errs.Add(1)
		}
		e.local.Add(1)
		return nil, nil
	}
	e.remote.Add(1)
	return rr, nil
}

// tryFarm performs one full farm round trip. A nil, nil return means
// the farm declined cleanly (no compatible worker).
func (e *Executor) tryFarm(ctx context.Context, argv []string, cwd string, overlay []actioncache.Output, base digest.Digest) (*toolchain.RemoteResult, error) {
	spec := TaskSpec{
		Argv:     argv,
		Cwd:      cwd,
		Platform: e.Platform,
		Repo:     e.repo(),
		BaseTree: base,
	}
	if len(overlay) > 0 {
		od, err := PushPayload(ctx, e.Client, e.repo(), Payload{Outputs: overlay})
		if err != nil {
			return nil, err
		}
		spec.Overlay = od
	}
	var sub SubmitResponse
	if err := doJSON(ctx, e.httpClient(), http.MethodPost, e.Scheduler+APIPrefix+"/tasks", spec, &sub); err != nil {
		return nil, err
	}
	if sub.NoWorker {
		return nil, nil
	}
	statusURL := fmt.Sprintf("%s%s/tasks/%s?wait=%d", e.Scheduler, APIPrefix, sub.TaskID, statusWaitMillis)
	for {
		var st TaskStatus
		if err := doJSON(ctx, e.httpClient(), http.MethodGet, statusURL, nil, &st); err != nil {
			return nil, err
		}
		switch st.State {
		case StateDone:
			p, err := FetchPayload(ctx, e.Client, e.repo(), st.Payload)
			if err != nil {
				return nil, err
			}
			if !p.Cacheable {
				return nil, fmt.Errorf("remoteexec: task %s returned a non-cacheable payload", st.ID)
			}
			return &toolchain.RemoteResult{Inputs: p.Inputs, Outputs: p.Outputs}, nil
		case StateFailed:
			return nil, fmt.Errorf("remoteexec: task %s failed on the farm: %s", st.ID, st.Error)
		}
		// Still queued/running: the long poll already waited; check
		// ctx before the next round so a cancelled rebuild stops.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}
