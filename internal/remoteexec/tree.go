package remoteexec

import (
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"comtainer/internal/digest"
	"comtainer/internal/distrib"
	"comtainer/internal/fsim"
	"comtainer/internal/oci"
)

// This file is the snapshot format the executor ships its rebuild file
// system in: a tree document listing every path with its type, mode
// and (for regular files) content digest, plus one content-addressed
// blob per distinct file content. Workers fetch the tree once per
// rebuild session and clone the materialized FS per task, so the
// session's base image crosses the wire exactly once per worker no
// matter how many actions it executes.

// TreeEntry is one path of a snapshot.
type TreeEntry struct {
	Path string `json:"path"`
	// Type is "f" (regular), "d" (directory) or "l" (symlink).
	Type string `json:"type"`
	Mode uint32 `json:"mode,omitempty"`
	// Data is the content blob digest of a regular file.
	Data digest.Digest `json:"data,omitempty"`
	// Target is a symlink's target.
	Target string `json:"target,omitempty"`
}

// Tree is a full file-system snapshot, entries sorted by path.
type Tree struct {
	Entries []TreeEntry `json:"entries"`
}

const treeMagic = "#!COMT-EXEC-TREE\n"

// EncodeTree serializes t with a magic prefix.
func EncodeTree(t Tree) []byte {
	b, err := json.Marshal(t)
	if err != nil {
		panic("remoteexec: marshaling tree: " + err.Error())
	}
	return append([]byte(treeMagic), b...)
}

// DecodeTree parses bytes produced by EncodeTree.
func DecodeTree(b []byte) (Tree, error) {
	var t Tree
	rest, ok := strings.CutPrefix(string(b), treeMagic)
	if !ok {
		return t, fmt.Errorf("remoteexec: missing %q magic", strings.TrimSpace(treeMagic))
	}
	if err := json.Unmarshal([]byte(rest), &t); err != nil {
		return t, fmt.Errorf("remoteexec: decoding tree: %w", err)
	}
	return t, nil
}

// SnapshotTree captures fsys as a tree document plus the content
// blobs it references (keyed by digest, deduplicated).
func SnapshotTree(fsys *fsim.FS) (Tree, map[digest.Digest][]byte, error) {
	blobs := map[digest.Digest][]byte{}
	var t Tree
	err := fsys.Walk(func(f *fsim.File) error {
		e := TreeEntry{Path: f.Path, Mode: uint32(f.Mode)}
		switch f.Type {
		case fsim.TypeRegular:
			e.Type = "f"
			d := digest.FromBytes(f.Data)
			e.Data = d
			blobs[d] = f.Data
		case fsim.TypeDir:
			e.Type = "d"
		case fsim.TypeSymlink:
			e.Type = "l"
			e.Target = f.Target
		default:
			return nil
		}
		t.Entries = append(t.Entries, e)
		return nil
	})
	if err != nil {
		return Tree{}, nil, err
	}
	sort.Slice(t.Entries, func(i, j int) bool { return t.Entries[i].Path < t.Entries[j].Path })
	return t, blobs, nil
}

// PushTree snapshots fsys and publishes it to repo through client:
// every distinct content blob, then the tree document itself. Returns
// the tree blob's digest — the handle a TaskSpec carries.
func PushTree(ctx context.Context, client *distrib.Client, repo string, fsys *fsim.FS) (digest.Digest, error) {
	t, blobs, err := SnapshotTree(fsys)
	if err != nil {
		return "", fmt.Errorf("remoteexec: snapshotting tree: %w", err)
	}
	src := oci.NewStore()
	for _, data := range blobs {
		src.Put(data)
	}
	enc := EncodeTree(t)
	td := src.Put(enc)
	for d := range blobs {
		if err := client.PushBlob(ctx, repo, src, d); err != nil {
			return "", fmt.Errorf("remoteexec: pushing tree blob %s: %w", d.Short(), err)
		}
	}
	if err := client.PushBlob(ctx, repo, src, td); err != nil {
		return "", fmt.Errorf("remoteexec: pushing tree document: %w", err)
	}
	return td, nil
}

// FetchTree retrieves the snapshot td from repo and materializes it
// as a fresh FS.
func FetchTree(ctx context.Context, client *distrib.Client, repo string, td digest.Digest) (*fsim.FS, error) {
	mem := oci.NewStore()
	if err := client.FetchBlob(ctx, mem, repo, td); err != nil {
		return nil, fmt.Errorf("remoteexec: fetching tree document %s: %w", td.Short(), err)
	}
	raw, err := mem.Get(td)
	if err != nil {
		return nil, err
	}
	t, err := DecodeTree(raw)
	if err != nil {
		return nil, err
	}
	out := fsim.New()
	for _, e := range t.Entries {
		switch e.Type {
		case "f":
			if !mem.Has(e.Data) {
				if err := client.FetchBlob(ctx, mem, repo, e.Data); err != nil {
					return nil, fmt.Errorf("remoteexec: fetching content %s for %s: %w", e.Data.Short(), e.Path, err)
				}
			}
			data, err := mem.Get(e.Data)
			if err != nil {
				return nil, err
			}
			out.WriteFile(e.Path, data, fs.FileMode(e.Mode))
		case "d":
			if err := out.MkdirAll(e.Path, fs.FileMode(e.Mode)); err != nil {
				return nil, err
			}
		case "l":
			out.Symlink(e.Target, e.Path)
		default:
			return nil, fmt.Errorf("remoteexec: tree entry %s has unknown type %q", e.Path, e.Type)
		}
	}
	return out, nil
}

// PushPayload publishes p as a content blob in repo, returning its
// digest.
func PushPayload(ctx context.Context, client *distrib.Client, repo string, p Payload) (digest.Digest, error) {
	src := oci.NewStore()
	enc := EncodePayload(p)
	d := src.Put(enc)
	if err := client.PushBlob(ctx, repo, src, d); err != nil {
		return "", fmt.Errorf("remoteexec: pushing payload %s: %w", d.Short(), err)
	}
	return d, nil
}

// FetchPayload retrieves and decodes the payload blob d from repo.
func FetchPayload(ctx context.Context, client *distrib.Client, repo string, d digest.Digest) (Payload, error) {
	mem := oci.NewStore()
	if err := client.FetchBlob(ctx, mem, repo, d); err != nil {
		return Payload{}, fmt.Errorf("remoteexec: fetching payload %s: %w", d.Short(), err)
	}
	raw, err := mem.Get(d)
	if err != nil {
		return Payload{}, err
	}
	return DecodePayload(raw)
}
