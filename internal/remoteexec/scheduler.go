package remoteexec

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"comtainer/internal/core/ctxutil"
)

// Scheduler default tuning.
const (
	// DefaultHeartbeatTimeout is how long a silent worker stays alive.
	DefaultHeartbeatTimeout = 3 * time.Second
	// DefaultMaxAttempts bounds how often a task is reassigned after
	// worker failures before it is failed back to the executor.
	DefaultMaxAttempts = 3
	// maxPollWait caps the long-poll duration of the lease and status
	// endpoints; clients poll again for longer waits.
	maxPollWait = 10 * time.Second
	// pollTick is the re-check interval inside a long poll. Expiry of
	// dead workers rides on this tick, so the scheduler needs no
	// background goroutine of its own: as long as anyone is polling
	// (and an executor with pending tasks always is), failed workers
	// are detected within one tick.
	pollTick = 10 * time.Millisecond
)

// schedWorker is the scheduler's view of one registered worker.
type schedWorker struct {
	id       string
	name     string
	slots    int
	platform Platform
	lastBeat time.Time
	inflight map[string]bool // task IDs leased to this worker
}

// schedTask is one submitted task and its lifecycle state.
type schedTask struct {
	id       string
	spec     TaskSpec
	state    string
	attempts int
	worker   string // current assignee while running
	payload  ResultReport
}

func (t *schedTask) status() TaskStatus {
	return TaskStatus{
		ID:       t.id,
		State:    t.state,
		Attempts: t.attempts,
		Payload:  t.payload.Payload,
		Error:    t.payload.Error,
	}
}

// Scheduler is the farm's control plane. All state is in memory and
// guarded by one mutex; the HTTP surface (Handler) is the only API.
// Safe for concurrent use.
type Scheduler struct {
	// HeartbeatTimeout expires workers silent for longer than this
	// (DefaultHeartbeatTimeout when zero).
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds reassignment of a task after worker failures
	// (DefaultMaxAttempts when zero).
	MaxAttempts int

	mu      sync.Mutex
	workers map[string]*schedWorker
	tasks   map[string]*schedTask
	queue   []string // queued task IDs, FIFO
	nextID  int
}

// NewScheduler returns an empty farm scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{
		workers: make(map[string]*schedWorker),
		tasks:   make(map[string]*schedTask),
	}
}

func (s *Scheduler) heartbeatTimeout() time.Duration {
	if s.HeartbeatTimeout > 0 {
		return s.HeartbeatTimeout
	}
	return DefaultHeartbeatTimeout
}

func (s *Scheduler) maxAttempts() int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return DefaultMaxAttempts
}

// expireLocked drops workers that missed their heartbeat window and
// requeues (or fails) their in-flight tasks; queued tasks whose
// platform no live worker can serve fail immediately so executors
// fall back to local execution instead of waiting out their poll.
// Callers hold s.mu.
func (s *Scheduler) expireLocked(now time.Time) {
	cutoff := now.Add(-s.heartbeatTimeout())
	for id, w := range s.workers {
		if w.lastBeat.After(cutoff) {
			continue
		}
		delete(s.workers, id)
		for tid := range w.inflight {
			t, ok := s.tasks[tid]
			if !ok || t.state != StateRunning || t.worker != id {
				continue
			}
			s.requeueLocked(t, fmt.Sprintf("worker %s (%s) missed heartbeats", id, w.name))
		}
	}
	for _, tid := range append([]string(nil), s.queue...) {
		t := s.tasks[tid]
		if t == nil || t.state != StateQueued {
			continue
		}
		if !s.hasCompatibleLocked(t.spec.Platform) {
			s.failLocked(t, "no compatible worker remaining")
		}
	}
}

// requeueLocked returns a running task to the queue, or fails it when
// its attempt budget is spent.
func (s *Scheduler) requeueLocked(t *schedTask, why string) {
	t.worker = ""
	if t.attempts >= s.maxAttempts() {
		s.failLocked(t, fmt.Sprintf("%s after %d attempts", why, t.attempts))
		return
	}
	t.state = StateQueued
	s.queue = append(s.queue, t.id)
}

// failLocked moves a task to its terminal failed state (removing it
// from the queue if present).
func (s *Scheduler) failLocked(t *schedTask, why string) {
	t.state = StateFailed
	t.worker = ""
	t.payload.Error = why
	for i, id := range s.queue {
		if id == t.id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
}

func (s *Scheduler) hasCompatibleLocked(p Platform) bool {
	for _, w := range s.workers {
		if w.platform.Compatible(p) {
			return true
		}
	}
	return false
}

// Status snapshots the farm for monitoring and tests.
func (s *Scheduler) Status() FarmStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(time.Now())
	var st FarmStatus
	for _, w := range s.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, Name: w.name, Slots: w.slots,
			Inflight: len(w.inflight), Platform: w.platform,
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	for _, t := range s.tasks {
		switch t.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		}
	}
	return st
}

// Handler returns the HTTP handler serving the farm API under
// APIPrefix. Mount it on the same mux as a registry's /v2/ tree to
// run a combined scheduler+blob endpoint.
func (s *Scheduler) Handler() http.Handler {
	return http.HandlerFunc(s.route)
}

func (s *Scheduler) route(w http.ResponseWriter, r *http.Request) {
	p, ok := strings.CutPrefix(r.URL.Path, APIPrefix+"/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	parts := strings.Split(strings.Trim(p, "/"), "/")
	switch {
	case len(parts) == 1 && parts[0] == "workers" && r.Method == http.MethodPost:
		s.handleRegister(w, r)
	case len(parts) == 3 && parts[0] == "workers" && parts[2] == "heartbeat" && r.Method == http.MethodPost:
		s.handleHeartbeat(w, r, parts[1])
	case len(parts) == 1 && parts[0] == "lease" && r.Method == http.MethodPost:
		s.handleLease(w, r)
	case len(parts) == 1 && parts[0] == "tasks" && r.Method == http.MethodPost:
		s.handleSubmit(w, r)
	case len(parts) == 2 && parts[0] == "tasks" && r.Method == http.MethodGet:
		s.handleTaskStatus(w, r, parts[1])
	case len(parts) == 3 && parts[0] == "tasks" && parts[2] == "result" && r.Method == http.MethodPost:
		s.handleResult(w, r, parts[1])
	case len(parts) == 1 && parts[0] == "status" && r.Method == http.MethodGet:
		writeJSON(w, s.Status())
	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "malformed request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// pollWait parses the ?wait= duration of a long poll, clamped to
// [0, maxPollWait].
func pollWait(r *http.Request) time.Duration {
	ms, err := strconv.Atoi(r.URL.Query().Get("wait"))
	if err != nil || ms < 0 {
		return 0
	}
	d := time.Duration(ms) * time.Millisecond
	if d > maxPollWait {
		d = maxPollWait
	}
	return d
}

func (s *Scheduler) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("w%d", s.nextID)
	s.workers[id] = &schedWorker{
		id: id, name: req.Name, slots: req.Slots,
		platform: req.Platform, lastBeat: time.Now(),
		inflight: make(map[string]bool),
	}
	s.mu.Unlock()
	// Workers must beat well inside the expiry window; a third leaves
	// room for two lost beats.
	writeJSON(w, RegisterResponse{WorkerID: id, HeartbeatMillis: s.heartbeatTimeout().Milliseconds() / 3})
}

func (s *Scheduler) handleHeartbeat(w http.ResponseWriter, r *http.Request, id string) {
	s.mu.Lock()
	wk, ok := s.workers[id]
	if ok {
		wk.lastBeat = time.Now()
	}
	s.mu.Unlock()
	if !ok {
		// Expired while silent: the worker must re-register.
		http.Error(w, "unknown worker (expired?)", http.StatusGone)
		return
	}
	writeJSON(w, struct{}{})
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec TaskSpec
	if !readJSON(w, r, &spec) {
		return
	}
	if len(spec.Argv) == 0 {
		http.Error(w, "task has empty argv", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.expireLocked(time.Now())
	if !s.hasCompatibleLocked(spec.Platform) {
		s.mu.Unlock()
		writeJSON(w, SubmitResponse{NoWorker: true})
		return
	}
	s.nextID++
	t := &schedTask{id: fmt.Sprintf("t%d", s.nextID), spec: spec, state: StateQueued}
	s.tasks[t.id] = t
	s.queue = append(s.queue, t.id)
	s.mu.Unlock()
	writeJSON(w, SubmitResponse{TaskID: t.id})
}

// maxLeaseBatch caps how many tasks one lease poll may request.
const maxLeaseBatch = 16

// leaseMax parses the ?max= batch budget of a lease poll, clamped to
// [1, maxLeaseBatch].
func leaseMax(r *http.Request) int {
	n, err := strconv.Atoi(r.URL.Query().Get("max"))
	if err != nil || n < 1 {
		return 1
	}
	if n > maxLeaseBatch {
		return maxLeaseBatch
	}
	return n
}

// handleLease hands the polling worker up to ?max= of the oldest
// queued tasks its platform can run, long-polling up to ?wait= for
// one to appear. The lease also counts as a heartbeat. As soon as
// anything is assignable the poll returns — a partial batch beats a
// parked worker.
func (s *Scheduler) handleLease(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("worker")
	max := leaseMax(r)
	deadline := time.Now().Add(pollWait(r))
	ctx := r.Context()
	for {
		s.mu.Lock()
		now := time.Now()
		wk, ok := s.workers[id]
		if !ok {
			s.mu.Unlock()
			http.Error(w, "unknown worker (expired?)", http.StatusGone)
			return
		}
		wk.lastBeat = now
		s.expireLocked(now)
		leased := s.assignLocked(wk, max)
		s.mu.Unlock()
		if len(leased) > 0 {
			writeJSON(w, LeaseResponse{Task: leased[0], Tasks: leased})
			return
		}
		if time.Now().After(deadline) {
			writeJSON(w, LeaseResponse{})
			return
		}
		if err := ctxutil.Sleep(ctx, pollTick); err != nil {
			return
		}
	}
}

// assignLocked moves up to max queued tasks compatible with wk into
// its in-flight set, FIFO. Assignment stays capacity-aware: tasks are
// granted against free slots, plus at most ONE task beyond capacity
// (the prefetch lookahead the worker pipelines its next snapshot
// with) — and only for work no other live worker could start right
// now, so lookahead never starves an idle peer. Callers hold s.mu.
func (s *Scheduler) assignLocked(wk *schedWorker, max int) []*LeasedTask {
	var out []*LeasedTask
	i := 0
	for i < len(s.queue) && len(out) < max {
		t := s.tasks[s.queue[i]]
		if t == nil || t.state != StateQueued || !wk.platform.Compatible(t.spec.Platform) {
			i++
			continue
		}
		if len(wk.inflight) >= wk.slots {
			if len(wk.inflight) > wk.slots {
				break // lookahead already granted
			}
			if s.otherFreeCompatibleLocked(wk.id, t.spec.Platform) {
				break // an idle peer should take this instead
			}
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		t.state = StateRunning
		t.worker = wk.id
		t.attempts++
		wk.inflight[t.id] = true
		out = append(out, &LeasedTask{ID: t.id, Spec: t.spec})
	}
	return out
}

// otherFreeCompatibleLocked reports whether a live worker other than
// self has a free slot for platform p. Callers hold s.mu.
func (s *Scheduler) otherFreeCompatibleLocked(self string, p Platform) bool {
	for id, w := range s.workers {
		if id != self && len(w.inflight) < w.slots && w.platform.Compatible(p) {
			return true
		}
	}
	return false
}

// handleResult records a worker's report. Reports are idempotent:
// once a task is terminal, later reports (duplicates, or a
// reassigned-away worker finishing anyway) are acknowledged and
// dropped — first result wins, and because payloads are
// content-addressed a duplicate carries identical bytes anyway.
func (s *Scheduler) handleResult(w http.ResponseWriter, r *http.Request, tid string) {
	var rep ResultReport
	if !readJSON(w, r, &rep) {
		return
	}
	s.mu.Lock()
	t, ok := s.tasks[tid]
	if !ok {
		s.mu.Unlock()
		http.Error(w, "unknown task", http.StatusNotFound)
		return
	}
	if wk, live := s.workers[rep.WorkerID]; live {
		wk.lastBeat = time.Now()
		delete(wk.inflight, tid)
	}
	switch {
	case t.state == StateDone || t.state == StateFailed:
		// Idempotent: already terminal.
	case rep.Error != "":
		t.payload = ResultReport{}
		s.requeueLocked(t, rep.Error)
	default:
		t.state = StateDone
		t.worker = ""
		t.payload = rep
	}
	st := t.status()
	s.mu.Unlock()
	writeJSON(w, st)
}

// handleTaskStatus long-polls a task until it is terminal or ?wait=
// elapses. The poll drives worker expiry, so an executor waiting on a
// task stuck on a dead worker sees the requeue/failure promptly.
func (s *Scheduler) handleTaskStatus(w http.ResponseWriter, r *http.Request, tid string) {
	deadline := time.Now().Add(pollWait(r))
	ctx := r.Context()
	for {
		s.mu.Lock()
		t, ok := s.tasks[tid]
		if !ok {
			s.mu.Unlock()
			http.Error(w, "unknown task", http.StatusNotFound)
			return
		}
		s.expireLocked(time.Now())
		st := t.status()
		s.mu.Unlock()
		if st.State == StateDone || st.State == StateFailed || time.Now().After(deadline) {
			writeJSON(w, st)
			return
		}
		if err := ctxutil.Sleep(ctx, pollTick); err != nil {
			return
		}
	}
}
