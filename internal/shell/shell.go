// Package shell implements the minimal POSIX-ish command-line parsing the
// Containerfile build engine needs to execute RUN instructions: word
// splitting with single/double quotes and backslash escapes, $VAR/${VAR}
// expansion, comments, and command lists joined by && and ;.
//
// It is deliberately not a full shell — build scripts in the evaluation
// workloads use only this subset, mirroring how real Dockerfiles drive
// compilers with straightforward command sequences.
package shell

import (
	"fmt"
	"strings"
)

// Command is a single simple command: an argv vector.
type Command struct {
	Argv []string
}

// String re-renders the command, quoting words containing whitespace.
func (c Command) String() string {
	parts := make([]string, len(c.Argv))
	for i, w := range c.Argv {
		if strings.ContainsAny(w, " \t'\"") {
			parts[i] = "'" + strings.ReplaceAll(w, "'", `'\''`) + "'"
		} else {
			parts[i] = w
		}
	}
	return strings.Join(parts, " ")
}

// Env supplies variable values for expansion.
type Env interface {
	Lookup(name string) (string, bool)
}

// MapEnv is a map-backed Env.
type MapEnv map[string]string

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (string, bool) {
	v, ok := m[name]
	return v, ok
}

// Parse splits line into a list of simple commands separated by && or ;,
// expanding variables from env. Comments introduced by an unquoted # at a
// word boundary run to end of line.
func Parse(line string, env Env) ([]Command, error) {
	words, seps, err := tokenize(line, env)
	if err != nil {
		return nil, err
	}
	var out []Command
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			out = append(out, Command{Argv: cur})
			cur = nil
		}
	}
	for i, w := range words {
		if seps[i] {
			flush()
			continue
		}
		cur = append(cur, w)
	}
	flush()
	return out, nil
}

// isVarChar reports whether c can appear in a variable name.
func isVarChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// expandInto appends the expansion of a $-form starting at s[i] (where
// s[i] == '$') to b and returns the index after the consumed form.
func expandInto(b *strings.Builder, s string, i int, env Env) (int, error) {
	i++ // skip '$'
	if i >= len(s) {
		b.WriteByte('$')
		return i, nil
	}
	if s[i] == '{' {
		end := strings.IndexByte(s[i:], '}')
		if end < 0 {
			return 0, fmt.Errorf("shell: unterminated ${ in %q", s)
		}
		name := s[i+1 : i+end]
		if name == "" {
			return 0, fmt.Errorf("shell: empty ${} in %q", s)
		}
		if v, ok := env.Lookup(name); ok {
			b.WriteString(v)
		}
		return i + end + 1, nil
	}
	start := i
	for i < len(s) && isVarChar(s[i]) {
		i++
	}
	if start == i {
		// Lone '$' with no name.
		b.WriteByte('$')
		return i, nil
	}
	if v, ok := env.Lookup(s[start:i]); ok {
		b.WriteString(v)
	}
	return i, nil
}

// tokenize splits line into words; seps[i] is true when words[i] is a
// command separator (&& or ;) rather than an argument.
func tokenize(line string, env Env) (words []string, seps []bool, err error) {
	if env == nil {
		env = MapEnv(nil)
	}
	var b strings.Builder
	inWord := false
	emit := func(sep bool) {
		if sep {
			words = append(words, "&&")
			seps = append(seps, true)
			return
		}
		if inWord {
			words = append(words, b.String())
			seps = append(seps, false)
			b.Reset()
			inWord = false
		}
	}
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			emit(false)
			i++
		case c == '#' && !inWord:
			// Comment to end of line.
			i = len(line)
		case c == ';':
			emit(false)
			emit(true)
			i++
		case c == '&' && i+1 < len(line) && line[i+1] == '&':
			emit(false)
			emit(true)
			i += 2
		case c == '&':
			return nil, nil, fmt.Errorf("shell: background execution (&) not supported in %q", line)
		case c == '|' || c == '<' || c == '>':
			return nil, nil, fmt.Errorf("shell: redirection/pipes (%c) not supported in %q", c, line)
		case c == '\'':
			// Single quotes: literal until closing quote.
			end := strings.IndexByte(line[i+1:], '\'')
			if end < 0 {
				return nil, nil, fmt.Errorf("shell: unterminated single quote in %q", line)
			}
			b.WriteString(line[i+1 : i+1+end])
			inWord = true
			i += end + 2
		case c == '"':
			// Double quotes: expansion allowed, no word splitting.
			i++
			for i < len(line) && line[i] != '"' {
				switch line[i] {
				case '\\':
					if i+1 < len(line) {
						b.WriteByte(line[i+1])
						i += 2
					} else {
						i++
					}
				case '$':
					i, err = expandInto(&b, line, i, env)
					if err != nil {
						return nil, nil, err
					}
				default:
					b.WriteByte(line[i])
					i++
				}
			}
			if i >= len(line) {
				return nil, nil, fmt.Errorf("shell: unterminated double quote in %q", line)
			}
			inWord = true
			i++
		case c == '\\':
			if i+1 < len(line) {
				b.WriteByte(line[i+1])
				inWord = true
				i += 2
			} else {
				i++
			}
		case c == '$':
			// Unquoted expansion: the result undergoes word splitting, and
			// an empty expansion produces no word.
			var tmp strings.Builder
			i, err = expandInto(&tmp, line, i, env)
			if err != nil {
				return nil, nil, err
			}
			s := tmp.String()
			if !strings.ContainsAny(s, " \t\n") {
				b.WriteString(s)
				if s != "" {
					inWord = true
				}
				continue
			}
			fields := strings.Fields(s)
			leadingWS := s[0] == ' ' || s[0] == '\t' || s[0] == '\n'
			trailingWS := s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\n'
			if leadingWS {
				emit(false)
			}
			for fi, f := range fields {
				b.WriteString(f)
				inWord = true
				if fi < len(fields)-1 || trailingWS {
					emit(false)
				}
			}
		default:
			b.WriteByte(c)
			inWord = true
			i++
		}
	}
	emit(false)
	return words, seps, nil
}
