package shell

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, line string, env Env) []Command {
	t.Helper()
	cmds, err := Parse(line, env)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	return cmds
}

func TestSimpleCommand(t *testing.T) {
	cmds := mustParse(t, "gcc -O2 -c main.c -o main.o", nil)
	if len(cmds) != 1 {
		t.Fatalf("got %d commands", len(cmds))
	}
	want := []string{"gcc", "-O2", "-c", "main.c", "-o", "main.o"}
	if !reflect.DeepEqual(cmds[0].Argv, want) {
		t.Errorf("argv = %v", cmds[0].Argv)
	}
}

func TestAndList(t *testing.T) {
	cmds := mustParse(t, "make clean && make -j8 ; make install", nil)
	if len(cmds) != 3 {
		t.Fatalf("got %d commands: %v", len(cmds), cmds)
	}
	if cmds[1].Argv[1] != "-j8" {
		t.Errorf("second command = %v", cmds[1].Argv)
	}
}

func TestQuoting(t *testing.T) {
	cmds := mustParse(t, `echo 'hello world' "two  spaces" a\ b`, nil)
	want := []string{"echo", "hello world", "two  spaces", "a b"}
	if !reflect.DeepEqual(cmds[0].Argv, want) {
		t.Errorf("argv = %q", cmds[0].Argv)
	}
}

func TestSingleQuotesNoExpansion(t *testing.T) {
	env := MapEnv{"CC": "gcc"}
	cmds := mustParse(t, `echo '$CC' "$CC"`, env)
	if cmds[0].Argv[1] != "$CC" {
		t.Errorf("single-quoted = %q, want literal", cmds[0].Argv[1])
	}
	if cmds[0].Argv[2] != "gcc" {
		t.Errorf("double-quoted = %q, want expanded", cmds[0].Argv[2])
	}
}

func TestVariableExpansion(t *testing.T) {
	env := MapEnv{"CC": "g++", "CFLAGS": "-O2 -march=x86-64", "PREFIX": "/usr"}
	cmds := mustParse(t, "$CC $CFLAGS -o ${PREFIX}/bin/app main.cc", env)
	want := []string{"g++", "-O2", "-march=x86-64", "-o", "/usr/bin/app", "main.cc"}
	if !reflect.DeepEqual(cmds[0].Argv, want) {
		t.Errorf("argv = %q", cmds[0].Argv)
	}
}

func TestUndefinedVarExpandsEmpty(t *testing.T) {
	cmds := mustParse(t, "echo a${NOPE}b", MapEnv{})
	if cmds[0].Argv[1] != "ab" {
		t.Errorf("argv = %q", cmds[0].Argv)
	}
	// A word that is entirely an unset variable vanishes.
	cmds = mustParse(t, "echo $NOPE tail", MapEnv{})
	want := []string{"echo", "tail"}
	if !reflect.DeepEqual(cmds[0].Argv, want) {
		t.Errorf("argv = %q", cmds[0].Argv)
	}
}

func TestComments(t *testing.T) {
	cmds := mustParse(t, "make all # build everything", nil)
	want := []string{"make", "all"}
	if !reflect.DeepEqual(cmds[0].Argv, want) {
		t.Errorf("argv = %q", cmds[0].Argv)
	}
}

func TestLoneDollar(t *testing.T) {
	cmds := mustParse(t, "echo $ $.x", nil)
	want := []string{"echo", "$", "$.x"}
	if !reflect.DeepEqual(cmds[0].Argv, want) {
		t.Errorf("argv = %q", cmds[0].Argv)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"echo 'unterminated",
		`echo "unterminated`,
		"echo ${UNTERMINATED",
		"echo ${}",
		"cat < in.txt",
		"prog > out.txt",
		"a | b",
		"run &",
	}
	for _, line := range bad {
		if _, err := Parse(line, nil); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
}

func TestEmptyAndSeparatorsOnly(t *testing.T) {
	if cmds := mustParse(t, "   ", nil); len(cmds) != 0 {
		t.Errorf("blank line produced commands: %v", cmds)
	}
	if cmds := mustParse(t, " && ; ", nil); len(cmds) != 0 {
		t.Errorf("separators-only line produced commands: %v", cmds)
	}
}

func TestCommandString(t *testing.T) {
	c := Command{Argv: []string{"gcc", "-DNAME=a b", "main.c"}}
	round := mustParse(t, c.String(), nil)
	if !reflect.DeepEqual(round[0].Argv, c.Argv) {
		t.Errorf("String round trip: %q -> %q", c.Argv, round[0].Argv)
	}
}

func TestMultilineContinuations(t *testing.T) {
	// Build engines join continuation lines with \n; the tokenizer treats
	// newlines as whitespace.
	cmds := mustParse(t, "gcc -c a.c\n  -o a.o", nil)
	want := []string{"gcc", "-c", "a.c", "-o", "a.o"}
	if !reflect.DeepEqual(cmds[0].Argv, want) {
		t.Errorf("argv = %q", cmds[0].Argv)
	}
}
